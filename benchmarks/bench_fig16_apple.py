"""Figure 16: decode latency on Apple M2 Ultra.

Paper shape: hand-optimized llama.cpp is very strong on Apple GPUs; Relax
stays competitive with it; HF compile and vLLM have no Apple support and
HF eager trails.
"""

import pytest

from repro.baselines import ALL_LLM_BASELINES
from repro.bench import print_table
from repro.models import GEMMA_7B, LLAMA3_8B, QWEN2_7B
from repro.runtime import M2_ULTRA

DEVICE = M2_ULTRA
BATCHES = [1, 4, 8, 16, 32, 64]
CONTEXT = 1024
MODELS = [LLAMA3_8B, GEMMA_7B, QWEN2_7B]


@pytest.mark.parametrize("cfg", MODELS, ids=[m.name for m in MODELS])
def test_fig16_decode_latency(relax_llm, cfg, benchmark):
    relax = relax_llm(cfg, DEVICE)
    rows = {"Relax": [relax.decode_step_time(b, CONTEXT) * 1000 for b in BATCHES]}
    supported = []
    for system in ALL_LLM_BASELINES:
        if system.supports(DEVICE):
            supported.append(system.name)
            rows[system.name] = [
                system.decode_step_time(cfg, DEVICE, b, CONTEXT) * 1000
                for b in BATCHES
            ]
    print_table(
        f"Figure 16 — {cfg.name} decode step latency on {DEVICE.name} "
        f"(context {CONTEXT})",
        "batch size", BATCHES, rows, "ms",
        notes=[
            "paper: competitive with hand-optimized llama.cpp; "
            "vLLM / torch.compile lack Apple GPU support",
        ],
    )
    # Coverage shape: vLLM and HF compile must be absent on Metal.
    assert "vLLM" not in supported
    assert "HF (compile)" not in supported
    # Competitive with llama.cpp: within 35% at every batch size.
    for col in range(len(BATCHES)):
        assert rows["Relax"][col] <= rows["llama.cpp"][col] * 1.35
    # And clearly ahead of the framework baseline.
    assert rows["Relax"][0] < rows["HF (eager)"][0]

    benchmark.pedantic(
        lambda: relax.run_decode(1, CONTEXT), rounds=3, iterations=1,
        warmup_rounds=1,
    )
