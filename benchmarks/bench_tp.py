"""Tensor-parallel scaling curves: latency/throughput vs TP width with a
compute-vs-communication breakdown.

Serves the paper-scale models through ``build_llama(cfg, tp=N)`` on a
:class:`repro.dist.MeshExecutor` of N analytical devices and sweeps the
mesh width.  Two directional claims are asserted (the same shape every
Megatron-style system shows):

* decode TPOT *decreases* with N on an NVLink-class interconnect —
  per-rank weight traffic shrinks ~1/N and the two ring all-reduces per
  block stay cheap;
* the communication *fraction* of each step grows with N — the ring
  all-reduce term ``2·(N−1)/N · bytes/bw`` approaches a constant while
  compute keeps shrinking.

Usage::

    python benchmarks/bench_tp.py                          # full sweep
    python benchmarks/bench_tp.py --device rtx4090 --tp 1,2,4
    python benchmarks/bench_tp.py --out artifacts/tp.json  # CI artifact
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.bench import RelaxLLM, print_table  # noqa: E402
from repro.dist import NVLINK, PCIE  # noqa: E402
from repro.models import LLAMA2_7B, LLAMA3_8B  # noqa: E402
from repro.runtime import ALL_DEVICES  # noqa: E402

DEVICES = {
    "rtx4090": "NVIDIA RTX 4090",
    "7900xtx": "AMD Radeon 7900 XTX",
}
MODELS = {m.name.lower(): m for m in (LLAMA3_8B, LLAMA2_7B)}
LINKS = {"nvlink": NVLINK, "pcie": PCIE}

BATCH = 8
CONTEXT = 1024
PREFILL_LEN = 512


def measure(cfg, device, tp, interconnect):
    """One (model, device, tp, link) point: steady-state decode and
    prefill step with the comm share of each."""
    llm = RelaxLLM(cfg, device, tp=tp, interconnect=interconnect)

    def step(fn):
        fn()  # warm: captures graphs, settles allocator
        before = llm.vm.stats.copy()
        fn()
        return llm.vm.stats.delta(before)

    decode = step(lambda: llm.run_decode(BATCH, CONTEXT))
    prefill = step(lambda: llm.run_prefill(1, PREFILL_LEN))
    return {
        "tp": tp,
        "tpot_s": decode.time_s,
        "decode_comm_s": decode.comm_time_s,
        "decode_comm_fraction": (
            decode.comm_time_s / decode.time_s if decode.time_s else 0.0
        ),
        "decode_compute_s": decode.time_s - decode.comm_time_s,
        "decode_throughput_tokens_per_s": (
            BATCH / decode.time_s if decode.time_s else 0.0
        ),
        "prefill_s": prefill.time_s,
        "prefill_comm_s": prefill.comm_time_s,
        "prefill_comm_fraction": (
            prefill.comm_time_s / prefill.time_s if prefill.time_s else 0.0
        ),
    }


def check_directional(points):
    """The two asserted claims, on the NVLink series only."""
    nv = sorted(points["nvlink"], key=lambda p: p["tp"])
    for lo, hi in zip(nv, nv[1:]):
        assert hi["tpot_s"] < lo["tpot_s"], (
            f"decode TPOT must decrease with TP on NVLink: "
            f"tp={lo['tp']} {lo['tpot_s']:.6f}s -> "
            f"tp={hi['tp']} {hi['tpot_s']:.6f}s"
        )
        assert hi["decode_comm_fraction"] > lo["decode_comm_fraction"], (
            f"comm fraction must grow with TP: "
            f"tp={lo['tp']} {lo['decode_comm_fraction']:.4f} -> "
            f"tp={hi['tp']} {hi['decode_comm_fraction']:.4f}"
        )
    if "pcie" in points:
        for nv_p, pcie_p in zip(nv, sorted(points["pcie"],
                                           key=lambda p: p["tp"])):
            if nv_p["tp"] > 1:
                assert (pcie_p["decode_comm_fraction"]
                        > nv_p["decode_comm_fraction"]), (
                    f"PCIe must pay a larger comm share than NVLink at "
                    f"tp={nv_p['tp']}"
                )


def run_model(cfg, device, tps, links):
    points = {
        link_name: [measure(cfg, device, tp, link) for tp in tps]
        for link_name, link in links.items()
    }
    rows = {}
    for link_name, series in points.items():
        rows[f"TPOT ({link_name})"] = [p["tpot_s"] * 1e3 for p in series]
        rows[f"compute ({link_name})"] = [
            p["decode_compute_s"] * 1e3 for p in series
        ]
        rows[f"comm ({link_name})"] = [
            p["decode_comm_s"] * 1e3 for p in series
        ]
        rows[f"comm frac ({link_name})"] = [
            p["decode_comm_fraction"] for p in series
        ]
    print_table(
        f"TP scaling — {cfg.name} on {device.name} "
        f"(decode batch {BATCH}, context {CONTEXT})",
        "tp", list(tps), rows, "",
        notes=[
            "TPOT rows are ms/token; comm frac is the communication "
            "share of the step",
        ],
    )
    check_directional(points)
    return points


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Tensor-parallel scaling curves (repro.dist)")
    parser.add_argument("--device", choices=sorted(DEVICES), default=None,
                        help="one device model (default: both)")
    parser.add_argument("--model", choices=sorted(MODELS), default=None,
                        help="one model config (default: both)")
    parser.add_argument("--tp", default="1,2,4,8",
                        help="comma-separated mesh widths (default 1,2,4,8)")
    parser.add_argument("--links", default="nvlink,pcie",
                        help="comma-separated interconnects")
    parser.add_argument("--out", default=None,
                        help="write the scaling curves as JSON")
    args = parser.parse_args(argv)

    tps = sorted({int(t) for t in args.tp.split(",")})
    if 1 not in tps:
        tps = [1] + tps  # the directional check needs the tp=1 anchor
    links = {name: LINKS[name] for name in args.links.split(",")}
    device_keys = [args.device] if args.device else sorted(DEVICES)
    model_keys = [args.model] if args.model else sorted(MODELS)

    results = {}
    for dkey in device_keys:
        device = ALL_DEVICES[DEVICES[dkey]]
        for mkey in model_keys:
            cfg = MODELS[mkey]
            points = run_model(cfg, device, tps, links)
            results[f"{dkey}/{mkey}"] = points
    print("\ndirectional checks passed: TPOT falls and comm fraction "
          "grows with TP on every NVLink series")

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            json.dump(
                {
                    "batch": BATCH,
                    "context": CONTEXT,
                    "prefill_len": PREFILL_LEN,
                    "tp": tps,
                    "results": results,
                },
                f, indent=2, sort_keys=True,
            )
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
