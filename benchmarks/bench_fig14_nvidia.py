"""Figure 14: decode latency of Llama3-8B / Gemma1.1-7B / Qwen2-7B on
NVIDIA RTX 4090 across batch sizes, Relax vs HF eager / HF compile / vLLM /
llama.cpp.

Paper shape to reproduce: Relax is competitive at every batch size and
reduces decode token latency by up to ~27% (its largest wins against the
eager baseline); HF compile is unavailable for Qwen2; llama.cpp is weaker
on NVIDIA than on Apple.
"""

import pytest

from repro.baselines import ALL_LLM_BASELINES, HF_COMPILE
from repro.bench import best_competitor, print_table
from repro.models import GEMMA_7B, LLAMA3_8B, QWEN2_7B
from repro.runtime import RTX_4090

DEVICE = RTX_4090
BATCHES = [1, 4, 8, 16, 32, 64]
CONTEXT = 1024
MODELS = [LLAMA3_8B, GEMMA_7B, QWEN2_7B]


def _series(relax_llm, cfg):
    relax = relax_llm(cfg, DEVICE)
    rows = {"Relax": [relax.decode_step_time(b, CONTEXT) * 1000 for b in BATCHES]}
    for system in ALL_LLM_BASELINES:
        if system is HF_COMPILE and cfg is QWEN2_7B:
            # The paper omits torch.compile for Qwen2 (unsupported).
            rows[system.name] = [None] * len(BATCHES)
            continue
        if system.supports(DEVICE):
            rows[system.name] = [
                system.decode_step_time(cfg, DEVICE, b, CONTEXT) * 1000
                for b in BATCHES
            ]
    return rows


@pytest.mark.parametrize("cfg", MODELS, ids=[m.name for m in MODELS])
def test_fig14_decode_latency(relax_llm, cfg, benchmark):
    rows = _series(relax_llm, cfg)
    print_table(
        f"Figure 14 — {cfg.name} decode step latency on {DEVICE.name} "
        f"(context {CONTEXT})",
        "batch size", BATCHES, rows, "ms",
        notes=[
            "paper: Relax competitive across batch sizes, up to 27% lower "
            "token latency",
        ],
    )
    # Shape checks: Relax within 10% of the best competitor everywhere, and
    # strictly ahead of the eager baseline at batch 1.
    for col in range(len(BATCHES)):
        best = best_competitor(rows, col, exclude="Relax")
        assert rows["Relax"][col] <= best * 1.10, (
            f"Relax not competitive at batch {BATCHES[col]}"
        )
    eager_gain = rows["HF (eager)"][0] / rows["Relax"][0]
    assert eager_gain >= 1.08, "expected a clear win over eager at batch 1"
    assert eager_gain <= 1.45, "win over eager should be bounded (~27% paper)"

    relax = relax_llm(cfg, DEVICE)
    benchmark.pedantic(
        lambda: relax.run_decode(1, CONTEXT), rounds=3, iterations=1,
        warmup_rounds=1,
    )
