"""Table 2: Llama3-8B activation memory with and without static memory
planning, over successive prefills (lengths 128/256/512/1024, batch 1) and
successive decodes (batches 1/16/32/64).

Paper numbers: prefill 192.7 MiB -> 149.7 MiB (-22%); decode 150.0 MiB ->
88.2 MiB (-41%).  Mechanism: planning with declared upper bounds allocates
one static set of storages reused across *all* input lengths and batch
sizes; without planning, the runtime pool recycles only exact-size blocks,
so every new dynamic shape allocates fresh memory.

We report transient (activation) allocation totals — escaping results (KV
caches, logits) are accounted separately, as the paper's activation-memory
metric excludes weights and the KV cache itself.
"""

from repro.bench import RelaxLLM, print_table
from repro.models import LLAMA3_8B
from repro.runtime import RTX_4090

DEVICE = RTX_4090
PREFILL_LENGTHS = [128, 256, 512, 1024]
DECODE_BATCHES = [1, 16, 32, 64]
MIB = 1 << 20


def _prefill_workload(runner: RelaxLLM) -> float:
    runner.vm.reset_stats()
    for length in PREFILL_LENGTHS:
        runner.run_prefill(1, length)
    return runner.vm.stats.transient_bytes_total / MIB


def _decode_workload(runner: RelaxLLM) -> float:
    runner.vm.reset_stats()
    for batch in DECODE_BATCHES:
        runner.run_decode(batch, 512)
    return runner.vm.stats.transient_bytes_total / MIB


def test_table2_memory_planning(relax_llm, benchmark):
    # Upper bounds are declared per deployment scenario (paper §4.3: "e.g.
    # annotated by users, such as the inherent context lengths in LLMs"):
    # the prefill study runs batch 1 up to length 1024, the decode study
    # batch up to 64 at a fixed context.
    prefill_bounds = {"b": 1, "s": 1024, "m": 1024}
    decode_bounds = {"b": 64, "s": 1, "m": 512}
    planned_prefill = relax_llm(
        LLAMA3_8B, DEVICE, sym_var_upper_bounds=prefill_bounds
    )
    planned_decode = relax_llm(
        LLAMA3_8B, DEVICE, sym_var_upper_bounds=decode_bounds
    )
    pooled = relax_llm(
        LLAMA3_8B, DEVICE, sym_var_upper_bounds=decode_bounds,
        enable_memory_planning=False, enable_cuda_graph=False,
    )

    rows = {
        "Relax w/o planning": [_prefill_workload(pooled), _decode_workload(pooled)],
        "Relax w/ planning": [
            _prefill_workload(planned_prefill),
            _decode_workload(planned_decode),
        ],
    }
    planned = planned_decode
    print_table(
        "Table 2 — Llama3-8B activation memory (MiB allocated) with/without "
        "static memory planning",
        "workload", ["prefill 128..1024", "decode b=1..64"], rows, "",
        notes=[
            "paper: prefill 192.7 -> 149.7 MiB (-22%); decode 150.0 -> 88.2 "
            "MiB (-41%)",
        ],
    )

    prefill_saving = 1 - rows["Relax w/ planning"][0] / rows["Relax w/o planning"][0]
    decode_saving = 1 - rows["Relax w/ planning"][1] / rows["Relax w/o planning"][1]
    print(f"  measured savings: prefill {prefill_saving:.0%}, decode {decode_saving:.0%}")
    # Shape: static planning reduces allocated activation memory on both
    # workloads (paper: 22% prefill, 41% decode).  Our runtime pool
    # recycles exact sizes only, so the prefill saving comes out larger
    # than the paper's; the decode saving lands on the paper's ~40%.
    assert prefill_saving >= 0.15
    assert decode_saving >= 0.25

    benchmark.pedantic(lambda: planned.run_decode(1, 512), rounds=3, iterations=1)


def test_table2_planning_reuses_across_shapes(relax_llm, benchmark):
    """Mechanism: with planning + bounds, repeating the mixed-shape
    workload allocates nothing new; without planning, every new shape
    allocates."""
    bounds = {"b": 1, "s": 1024, "m": 1024}
    planned = relax_llm(LLAMA3_8B, DEVICE, sym_var_upper_bounds=bounds)

    _prefill_workload(planned)
    planned.vm.reset_stats()
    for length in PREFILL_LENGTHS:
        planned.run_prefill(1, length)
    # Second pass over the same shapes: storages all cached.
    transient_second = planned.vm.stats.transient_bytes_total
    assert transient_second == 0, "static plan must be fully reused"

    benchmark.pedantic(lambda: planned.run_prefill(1, 128), rounds=3, iterations=1)
