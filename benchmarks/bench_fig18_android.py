"""Figure 18: single-sequence generation of 4-bit quantized LLMs on the
Samsung S24 — Relax (compiler-generated OpenCL GPU kernels) vs llama.cpp
(CPU-only on Android, lacking GPU kernels).

Paper shape: Relax delivers up to 55% more throughput, precisely because
compilation generates mobile-GPU code automatically where the hand-written
baseline has none.
"""

import dataclasses

import pytest

from repro.baselines import LLAMA_CPP
from repro.bench import print_table
from repro.models import LLAMA2_7B, PHI3_MINI, REDPAJAMA_3B
from repro.runtime import SAMSUNG_S24

DEVICE = SAMSUNG_S24
CONTEXT = 256
BOUNDS = {"b": 1, "s": 512, "m": 768}


def _quant(cfg):
    return dataclasses.replace(
        cfg, name=f"{cfg.name}-q4", quantize_bits=4, context_length=2048
    )


MODELS = [_quant(LLAMA2_7B), _quant(PHI3_MINI), _quant(REDPAJAMA_3B)]


def test_fig18_android_throughput(relax_llm, benchmark):
    rows = {"Relax (GPU)": [], "llama.cpp (CPU)": []}
    for cfg in MODELS:
        runner = relax_llm(cfg, DEVICE, sym_var_upper_bounds=BOUNDS)
        rows["Relax (GPU)"].append(runner.decode_throughput(1, CONTEXT))
        # llama.cpp on Android falls back to CPU (no OpenCL kernels).
        step = LLAMA_CPP.decode_step_time(cfg, DEVICE, 1, CONTEXT)
        rows["llama.cpp (CPU)"].append(1.0 / step)

    print_table(
        "Figure 18 — single-sequence throughput (tokens/s) on Samsung S24",
        "model", [cfg.name for cfg in MODELS], rows, "",
        notes=["paper: Relax up to 55% more throughput (llama.cpp is CPU-only)"],
    )

    gains = [
        relax / cpp
        for relax, cpp in zip(rows["Relax (GPU)"], rows["llama.cpp (CPU)"])
    ]
    print(f"  measured gains: {['%.2fx' % g for g in gains]}")
    assert all(g > 1.10 for g in gains), "Relax GPU path must beat CPU llama.cpp"
    assert max(gains) >= 1.35, "expected a gain in the paper's up-to-55% region"
    assert max(gains) <= 2.2, "gain should stay in a plausible band"

    runner = relax_llm(MODELS[0], DEVICE, sym_var_upper_bounds=BOUNDS)
    benchmark.pedantic(lambda: runner.run_decode(1, CONTEXT), rounds=3, iterations=1)
