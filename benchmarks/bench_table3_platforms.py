"""Table 3: single-sequence throughput (tokens/s) of 4-bit quantized models
on emerging platforms — iPhone 14 Pro, Samsung S23, Orange Pi 5, Steam
Deck, Jetson Orin, and in-browser WebGPU.

Paper rows (tokens/s):

    device        Llama   Phi3   RedPajama
    iPhone 14 Pro   5.1*  13.8   19.5
    Samsung S23     7.9*  13.1   20.5
    Orange Pi 5     2.3    5.0    6.1
    Steam Deck     14.0   20.2   22.9
    Jetson Orin    32.0   59.1   65.2
    WebGPU (M3)    37.8   68.0   68.6

    * 3-bit / 4-bit Llama2-7B on the phones to fit VRAM (paper footnote);
      Llama3-8B elsewhere.

Shape checks: every platform sustains generation (the paper's point is
these deployments *exist* at usable speed), the device ordering matches,
and the 7/8B model is the slowest of the three models everywhere.
"""

import dataclasses

import pytest

from repro.baselines import kv_cache_bytes, weights_bytes
from repro.bench import print_table
from repro.models import LLAMA2_7B, LLAMA3_8B, PHI3_MINI, REDPAJAMA_3B
from repro.runtime import (
    IPHONE_14_PRO,
    JETSON_ORIN,
    ORANGE_PI_5,
    SAMSUNG_S23,
    STEAM_DECK,
    WEBGPU_M3_MAX,
)

CONTEXT = 256
BOUNDS = {"b": 1, "s": 512, "m": 768}


def _quant(cfg, bits=4):
    return dataclasses.replace(
        cfg, name=f"{cfg.name}-q{bits}", quantize_bits=bits, context_length=2048
    )


#: (device, big-model override, paper row) — phones run Llama2 at 3/4 bits.
PLATFORMS = [
    (IPHONE_14_PRO, _quant(LLAMA2_7B, 3), (5.1, 13.8, 19.5)),
    (SAMSUNG_S23, _quant(LLAMA2_7B, 4), (7.9, 13.1, 20.5)),
    (ORANGE_PI_5, _quant(LLAMA3_8B, 4), (2.3, 5.0, 6.1)),
    (STEAM_DECK, _quant(LLAMA3_8B, 4), (14.0, 20.2, 22.9)),
    (JETSON_ORIN, _quant(LLAMA3_8B, 4), (32.0, 59.1, 65.2)),
    (WEBGPU_M3_MAX, _quant(LLAMA3_8B, 4), (37.8, 68.0, 68.6)),
]


def test_table3_emerging_platforms(relax_llm, benchmark):
    phi3 = _quant(PHI3_MINI, 4)
    redpajama = _quant(REDPAJAMA_3B, 4)

    rows = {}
    paper_rows = {}
    for device, llama_cfg, paper in PLATFORMS:
        measured = []
        for cfg in (llama_cfg, phi3, redpajama):
            runner = relax_llm(cfg, device, sym_var_upper_bounds=BOUNDS)
            measured.append(runner.decode_throughput(1, CONTEXT))
        rows[device.name] = measured
        paper_rows[device.name] = paper

    print_table(
        "Table 3 — single-sequence throughput (tokens/s), 4-bit models on "
        "emerging platforms",
        "device", ["Llama", "Phi3", "RedPajama"], rows, "",
        notes=[
            f"paper: {name}: {p}" for name, p in paper_rows.items()
        ],
    )

    for device, llama_cfg, paper in PLATFORMS:
        measured = rows[device.name]
        # Usable generation everywhere; within 2x of the paper's numbers
        # (absolute clocks are modeled; see DESIGN.md §2).
        for got, want in zip(measured, paper):
            assert got > 1.0, f"{device.name}: generation not usable"
            assert want / 2 <= got <= want * 2, (
                f"{device.name}: {got:.1f} vs paper {want}"
            )
        # Per-device ordering: the 7/8B model is slowest, RedPajama-3B is
        # fastest or close to Phi3.
        assert measured[0] == min(measured)

    # Cross-device ordering on the big model: Pi < phones < Deck < Jetson.
    assert rows[ORANGE_PI_5.name][0] < rows[SAMSUNG_S23.name][0]
    assert rows[SAMSUNG_S23.name][0] < rows[STEAM_DECK.name][0]
    assert rows[STEAM_DECK.name][0] < rows[JETSON_ORIN.name][0]

    runner = relax_llm(_quant(PHI3_MINI, 4), JETSON_ORIN, sym_var_upper_bounds=BOUNDS)
    benchmark.pedantic(lambda: runner.run_decode(1, CONTEXT), rounds=3, iterations=1)


def test_table3_memory_fits_vram(relax_llm, benchmark):
    """§5.3: 'Without memory planning that pre-allocates all needed memory
    and keeps it within the budget, these models are not even runnable on
    some of the environments' — check the planned total (weights + caches +
    activations) fits each device's VRAM."""
    for device, llama_cfg, _ in PLATFORMS:
        runner = relax_llm(llama_cfg, device, sym_var_upper_bounds=BOUNDS)
        runner.vm.reset_stats()
        runner.run_decode(1, CONTEXT)
        stats = runner.vm.stats
        total = (
            weights_bytes(llama_cfg)
            + kv_cache_bytes(llama_cfg, 1, BOUNDS["m"])
            + stats.allocated_bytes_total
        )
        assert total < device.vram_bytes, (
            f"{device.name}: planned footprint {total / (1 << 30):.2f} GiB "
            f"exceeds VRAM"
        )

    runner = relax_llm(
        PLATFORMS[0][1], IPHONE_14_PRO, sym_var_upper_bounds=BOUNDS
    )
    benchmark.pedantic(lambda: runner.run_decode(1, CONTEXT), rounds=3, iterations=1)
