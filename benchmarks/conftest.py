"""Shared fixtures for the experiment benchmarks.

Compiled Relax models are cached per (config, device, pipeline options) for
the whole session, so the sweep benchmarks pay each compile once.
"""

from __future__ import annotations

import pytest

from repro.bench import RelaxLLM

_CACHE = {}


@pytest.fixture(scope="session")
def relax_llm():
    """Factory returning (and caching) compiled RelaxLLM instances."""

    def get(cfg, device, **kwargs):
        def freeze(value):
            if isinstance(value, dict):
                return tuple(sorted(value.items()))
            return value

        key = (cfg.name, cfg.quantize_bits, device.name,
               tuple(sorted((k, freeze(v)) for k, v in kwargs.items())))
        if key not in _CACHE:
            _CACHE[key] = RelaxLLM(cfg, device, **kwargs)
        return _CACHE[key]

    return get


def pytest_configure(config):
    # Benchmarks print their tables; keep them visible under -q.
    config.option.verbose = max(config.option.verbose, 0)
