"""Figure 20: LLaVA generation time — 32 tokens for an image input — on
NVIDIA RTX 4090 and Apple M2 Ultra, vs HF Transformers, vLLM and llama.cpp.

Paper shape: Relax achieves competitive optimized performance on both
platforms, supporting the CLIP vision encoder together with the LLM's
prefill and decode phases; vLLM has no Apple support.
"""

import pytest

from repro.baselines import (
    HF_EAGER,
    LLAMA_CPP,
    VLLM,
    decoder_step_ops,
    encoder_ops,
    llama_like,
)
from repro.bench import RelaxLlava, best_competitor, print_table
from repro.models import LLAVA_7B
from repro.runtime import M2_ULTRA, RTX_4090

N_TOKENS = 32
N_PATCHES = LLAVA_7B.vision.num_patches

_VIT_CFG = llama_like(
    "clip-vit", hidden=LLAVA_7B.vision.hidden_size,
    layers=LLAVA_7B.vision.num_layers, heads=LLAVA_7B.vision.num_heads,
    ffn=LLAVA_7B.vision.ffn_dim, vocab=1,
)

_RELAX_CACHE = {}


def _relax_generate(device) -> float:
    if device.name not in _RELAX_CACHE:
        _RELAX_CACHE[device.name] = RelaxLlava(LLAVA_7B, device)
    return _RELAX_CACHE[device.name].generation_time(N_TOKENS)


def _baseline_generate(system, device) -> float:
    llm = LLAVA_7B.llm
    total = system.run_trace(encoder_ops(_VIT_CFG, 1, N_PATCHES), device)
    total += system.prefill_time(llm, device, 1, N_PATCHES)
    first = system.decode_step_time(llm, device, 1, N_PATCHES)
    last = system.decode_step_time(llm, device, 1, N_PATCHES + N_TOKENS - 1)
    return total + N_TOKENS * (first + last) / 2.0


@pytest.mark.parametrize("device", [RTX_4090, M2_ULTRA],
                         ids=["rtx4090", "m2ultra"])
def test_fig20_llava_generation(device, benchmark):
    rows = {"Relax": [_relax_generate(device)]}
    for system in (HF_EAGER, VLLM, LLAMA_CPP):
        if system.supports(device):
            rows[system.name] = [_baseline_generate(system, device)]
    print_table(
        f"Figure 20 — LLaVA 32-token generation time (image input) on "
        f"{device.name}",
        "", ["seconds"], rows, "s",
        notes=["paper: Relax competitive on both platforms; vLLM lacks "
               "Apple support"],
    )

    if device is RTX_4090:
        assert "vLLM" in rows
    else:
        assert "vLLM" not in rows
    best = best_competitor(rows, 0, exclude="Relax")
    # Competitive: within 15% of the best baseline on both platforms, and
    # faster than the eager framework baseline.
    assert rows["Relax"][0] <= best * 1.15
    assert rows["Relax"][0] < rows["HF (eager)"][0]

    runner = _RELAX_CACHE[device.name]
    benchmark.pedantic(
        lambda: runner.vm.run(
            "decode",
            *_decode_args(runner),
        ),
        rounds=3, iterations=1,
    )


def _decode_args(runner: RelaxLlava):
    from repro.runtime import NDArray

    tokens = NDArray.abstract((1, 1), "i64")
    return [tokens] + runner._llm_caches(1, N_PATCHES + 8) + runner.params
