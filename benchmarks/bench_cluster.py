"""Data-parallel cluster sweep: routing policy × replica count.

Serves one shared-prefix-heavy trace (a few prompt families, long
common prefixes — the system-prompt / few-shot regime) through
``repro.serve.ClusterEngine`` at dp ∈ {1, 2, 4} under each routing
policy, on both primary device models.  Two directional claims are
asserted at every dp > 1 (the same shape any prefix-aware router
shows — e.g. SGLang's cache-aware scheduling):

* ``prefix_affinity`` achieves a prefix-cache hit rate **at least** as
  high as ``round_robin`` — routing a family's prompts to the replica
  already holding its prefix blocks turns round-robin's per-replica
  cold misses into hits;
* ``prefix_affinity`` achieves a **strictly lower mean TTFT** — the
  matched prefix tokens skip prefill work on the critical path.

Usage::

    python benchmarks/bench_cluster.py                      # full sweep
    python benchmarks/bench_cluster.py --device rtx4090
    python benchmarks/bench_cluster.py --out artifacts/cluster.json
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.bench import print_table  # noqa: E402
from repro.models import TINY_LLAMA  # noqa: E402
from repro.runtime import ALL_DEVICES  # noqa: E402
from repro.serve import (  # noqa: E402
    ClusterConfig,
    EngineConfig,
    SchedulerConfig,
    WorkloadConfig,
    generate,
    serve_cluster,
)

DEVICES = {
    "rtx4090": "NVIDIA RTX 4090",
    "7900xtx": "AMD Radeon 7900 XTX",
}
POLICIES = ("round_robin", "least_loaded", "prefix_affinity")

#: Shared-prefix heavy trace: 4 prompt families, 96-token common
#: prefixes, short private suffixes — most prefill work is the prefix.
WORKLOAD = WorkloadConfig(
    num_requests=96,
    seed=0,
    arrival="poisson",
    arrival_rate=400.0,
    prompt_min=112,
    prompt_max=160,
    output_min=8,
    output_max=16,
    prefix_families=4,
    prefix_len=96,
)

#: Constrained per-replica engine: a small KV pool and a tight token
#: budget, so prefill cost (and what the prefix cache saves) dominates.
ENGINE = EngineConfig(
    num_blocks=192,
    scheduler=SchedulerConfig(
        max_num_seqs=8,
        max_num_batched_tokens=128,
    ),
)


def measure(device, requests, dp, policy):
    report = serve_cluster(
        TINY_LLAMA, device, requests,
        ClusterConfig(dp=dp, policy=policy, engine=ENGINE),
    )
    s = report.summary
    return {
        "dp": dp,
        "policy": policy,
        "ttft_mean_s": s["ttft_s"]["mean"],
        "ttft_p99_s": s["ttft_s"]["p99"],
        "tpot_mean_s": s["tpot_s"]["mean"],
        "hit_rate": s["prefix_cache"]["hit_rate"],
        "cached_token_fraction": s["prefix_cache"]["cached_token_fraction"],
        "makespan_s": s["makespan_s"],
        "throughput_tokens_per_s": s["throughput_tokens_per_s"],
        "goodput_requests_per_s": s["goodput_requests_per_s"],
        "load_balance_entropy": s["routing"]["load_balance_entropy"],
        "assignments": s["routing"]["assignments"],
    }


def check_directional(points):
    """prefix_affinity vs round_robin, per dp > 1: hit rate >= and mean
    TTFT strictly <."""
    by_key = {(p["dp"], p["policy"]): p for p in points}
    for dp in sorted({p["dp"] for p in points}):
        if dp == 1:
            continue
        rr = by_key[(dp, "round_robin")]
        aff = by_key[(dp, "prefix_affinity")]
        assert aff["hit_rate"] >= rr["hit_rate"], (
            f"dp={dp}: prefix_affinity hit rate {aff['hit_rate']:.3f} "
            f"must be >= round_robin {rr['hit_rate']:.3f}"
        )
        assert aff["ttft_mean_s"] < rr["ttft_mean_s"], (
            f"dp={dp}: prefix_affinity mean TTFT "
            f"{aff['ttft_mean_s']:.6f}s must be strictly below "
            f"round_robin {rr['ttft_mean_s']:.6f}s"
        )


def run_device(device, dps):
    requests = generate(WORKLOAD)
    points = [
        measure(device, requests, dp, policy)
        for dp in dps
        for policy in POLICIES
    ]
    cols = [f"dp{p['dp']}/{p['policy'][:3]}" for p in points]
    rows = {
        "ttft mean (ms)": [p["ttft_mean_s"] * 1e3 for p in points],
        "ttft p99 (ms)": [p["ttft_p99_s"] * 1e3 for p in points],
        "cache hit rate": [p["hit_rate"] for p in points],
        "cached tok frac": [p["cached_token_fraction"] for p in points],
        "balance entropy": [p["load_balance_entropy"] for p in points],
    }
    print_table(
        f"DP cluster routing — {TINY_LLAMA.name} on {device.name} "
        f"({WORKLOAD.num_requests} reqs, {WORKLOAD.prefix_families} "
        f"families x {WORKLOAD.prefix_len}-token prefixes)",
        "config", cols, rows, "",
        notes=[
            "rou=round_robin, lea=least_loaded, pre=prefix_affinity",
        ],
    )
    check_directional(points)
    return points


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="DP-cluster routing-policy sweep (repro.serve.cluster)")
    parser.add_argument("--device", choices=sorted(DEVICES), default=None,
                        help="one device model (default: both)")
    parser.add_argument("--dp", default="1,2,4",
                        help="comma-separated replica counts (default 1,2,4)")
    parser.add_argument("--out", default=None,
                        help="write the sweep results as JSON")
    args = parser.parse_args(argv)

    dps = sorted({int(d) for d in args.dp.split(",")})
    device_keys = [args.device] if args.device else sorted(DEVICES)

    results = {}
    for dkey in device_keys:
        device = ALL_DEVICES[DEVICES[dkey]]
        results[dkey] = run_device(device, dps)
    print("\ndirectional checks passed: prefix_affinity >= round_robin on "
          "cache hit rate with strictly lower mean TTFT at every dp > 1")

    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as f:
            json.dump(
                {
                    "workload": WORKLOAD.to_dict(),
                    "engine": {
                        "num_blocks": ENGINE.num_blocks,
                        "max_num_seqs": ENGINE.scheduler.max_num_seqs,
                        "max_num_batched_tokens":
                            ENGINE.scheduler.max_num_batched_tokens,
                    },
                    "dp": dps,
                    "results": results,
                },
                f, indent=2, sort_keys=True,
            )
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
