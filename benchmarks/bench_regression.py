"""Serving KPI regression gate against a committed baseline.

Runs a small set of deterministic serving scenarios (the engine is a
seeded discrete-event simulation — same seed, same platform, same
numbers) and compares the key performance indicators against the
committed baseline ``benchmarks/BENCH_serving.json``.  CI runs this
after the test suite; a regression beyond tolerance fails the build, so
scheduler/KV/speculation changes cannot silently trade away throughput
or latency.

The comparison is **direction-aware**: only changes in the *bad*
direction fail (throughput lower, latency higher, peak pool demand
higher, more preemptions).  Improvements print as such and pass — the
baseline is then refreshed intentionally with ``--update``, which keeps
the diff reviewable (the new numbers appear in the PR).

Usage::

    python benchmarks/bench_regression.py                # gate (exit 1 on regression)
    python benchmarks/bench_regression.py --update       # rewrite the baseline
    python benchmarks/bench_regression.py --tolerance 0.1
    python benchmarks/bench_regression.py --inject-regression 1.5
        # self-test: perturb measurements in the bad direction and
        # verify the gate trips (CI runs this and asserts exit != 0)
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.models import TINY_LLAMA, TINY_LLAMA_TP  # noqa: E402
from repro.runtime import ALL_DEVICES  # noqa: E402
from repro.serve import (  # noqa: E402
    ClusterConfig,
    EngineConfig,
    SchedulerConfig,
    SpecConfig,
    WorkloadConfig,
    serve_cluster,
    serve_workload,
)

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_serving.json")
DEVICE = ALL_DEVICES["NVIDIA RTX 4090"]
SEED = 0

#: KPI -> direction: +1 means higher is better, -1 lower is better.
KPI_DIRECTION = {
    "throughput_tokens_per_s": +1,
    "goodput_requests_per_s": +1,
    "makespan_s": -1,
    "ttft_p50_s": -1,
    "ttft_p99_s": -1,
    "tpot_p50_s": -1,
    "peak_required_blocks": -1,
    "preemptions": -1,
    # Cluster (dp) scenarios only:
    "prefix_cache_hit_rate": +1,
    "load_balance_entropy": +1,
}


def _workload(**over):
    base = dict(
        num_requests=24, seed=SEED, arrival="poisson", arrival_rate=16.0,
        prompt_min=8, prompt_max=48, output_min=4, output_max=24,
    )
    base.update(over)
    return WorkloadConfig(**base)


def _engine(**over):
    base = dict(
        page_size=4,
        num_blocks=128,
        scheduler=SchedulerConfig(
            max_num_seqs=8, max_num_batched_tokens=128, prefill_chunk=32,
        ),
    )
    base.update(over)
    return EngineConfig(**base)


def scenario_plain():
    return serve_workload(TINY_LLAMA, DEVICE, _workload(),
                          _engine(enable_prefix_caching=False))


def scenario_prefix():
    return serve_workload(
        TINY_LLAMA, DEVICE,
        _workload(prefix_families=3, prefix_len=6),
        _engine(),
    )


def scenario_spec():
    return serve_workload(
        TINY_LLAMA, DEVICE, _workload(),
        _engine(enable_prefix_caching=False,
                spec=SpecConfig(num_spec_tokens=2, draft_quality=0.8)),
    )


def scenario_pressure():
    # Pool sized to force swap preemptions: peak demand and preemption
    # counts become regression-sensitive KPIs here.
    return serve_workload(
        TINY_LLAMA, DEVICE,
        _workload(num_requests=16, arrival_rate=200.0,
                  prompt_min=4, prompt_max=20, output_min=2, output_max=24),
        _engine(num_blocks=10, enable_prefix_caching=False,
                scheduler=SchedulerConfig(
                    max_num_seqs=8, max_num_batched_tokens=128,
                    prefill_chunk=16)),
    )


def scenario_tp():
    # Tensor-parallel serving on a 2-device mesh: the whole stack above
    # the VM (scheduler, paging, batching) runs unchanged; the KPIs pin
    # the lockstep-mesh timing and the per-shard pool accounting.
    return serve_workload(
        TINY_LLAMA_TP, DEVICE, _workload(),
        _engine(enable_prefix_caching=False, tp=2),
    )


def scenario_dp():
    # Data-parallel cluster: 2 replicas behind the prefix-affinity
    # router over a shared-prefix trace.  The KPIs pin router
    # determinism (assignment-sensitive makespan/TTFT), fleet cache
    # effectiveness and load-balance entropy.
    return serve_cluster(
        TINY_LLAMA, DEVICE,
        _workload(num_requests=32, arrival_rate=64.0,
                  prefix_families=3, prefix_len=6),
        ClusterConfig(dp=2, policy="prefix_affinity", engine=_engine()),
    )


SCENARIOS = {
    "plain": scenario_plain,
    "prefix": scenario_prefix,
    "spec": scenario_spec,
    "pressure": scenario_pressure,
    "tp": scenario_tp,
    "dp": scenario_dp,
}


def kpis(report):
    s = report.summary
    out = {
        "throughput_tokens_per_s": s["throughput_tokens_per_s"],
        "goodput_requests_per_s": s["goodput_requests_per_s"],
        "makespan_s": s["makespan_s"],
        "ttft_p50_s": s["ttft_s"]["p50"],
        "ttft_p99_s": s["ttft_s"]["p99"],
        "tpot_p50_s": s["tpot_s"]["p50"],
        "preemptions": s["preemptions"],
    }
    if "kv_pool" in s:
        out["peak_required_blocks"] = s["kv_pool"]["peak_required_blocks"]
    else:
        # Cluster report: per-replica pools; gate on the fleet max.
        out["peak_required_blocks"] = max(
            r.summary["kv_pool"]["peak_required_blocks"]
            for r in report.replica_reports
        )
        out["prefix_cache_hit_rate"] = s["prefix_cache"]["hit_rate"]
        out["load_balance_entropy"] = (
            s["routing"]["load_balance_entropy"]
        )
    return out


def inject_regression(measured, factor):
    """Perturb every KPI in its *bad* direction by ``factor`` — the CI
    self-test that proves the gate actually trips."""
    out = {}
    for scenario, vals in measured.items():
        out[scenario] = {
            k: (v / factor if KPI_DIRECTION[k] > 0 else v * factor)
            if isinstance(v, (int, float)) else v
            for k, v in vals.items()
        }
    return out


def compare(baseline, measured, tolerance):
    """Direction-aware comparison; returns (regressions, improvements),
    each a list of ``(scenario, kpi, base, cur, rel_change)``."""
    regressions, improvements = [], []
    for scenario, base_vals in sorted(baseline.items()):
        cur_vals = measured.get(scenario)
        if cur_vals is None:
            regressions.append((scenario, "<missing>", None, None, None))
            continue
        for kpi, base in sorted(base_vals.items()):
            direction = KPI_DIRECTION.get(kpi)
            cur = cur_vals.get(kpi)
            if direction is None or base is None or cur is None:
                continue
            if base == 0:
                # Zero baselines (e.g. preemptions in uncontended
                # scenarios): any bad-direction change is a regression.
                if direction < 0 and cur > 0:
                    regressions.append((scenario, kpi, base, cur, None))
                elif direction > 0 and cur > 0:
                    improvements.append((scenario, kpi, base, cur, None))
                continue
            rel = (cur - base) / abs(base)
            bad = -rel if direction > 0 else rel
            if bad > tolerance:
                regressions.append((scenario, kpi, base, cur, rel))
            elif bad < -tolerance:
                improvements.append((scenario, kpi, base, cur, rel))
    return regressions, improvements


def _fmt_row(scenario, kpi, base, cur, rel):
    rel_s = f"{rel * 100:+.1f}%" if rel is not None else "n/a"
    return (f"  {scenario:<10} {kpi:<26} "
            f"baseline={base} current={cur} ({rel_s})")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Serving KPI regression gate vs BENCH_serving.json")
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative slack before a bad-direction "
                             "change fails (default 2%%; the simulation "
                             "itself is deterministic)")
    parser.add_argument("--scenario", action="append", default=None,
                        choices=sorted(SCENARIOS),
                        help="run a subset (repeatable)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with current numbers")
    parser.add_argument("--inject-regression", type=float, default=None,
                        metavar="FACTOR",
                        help="perturb measurements in the bad direction "
                             "by FACTOR (gate self-test)")
    parser.add_argument("--out", default=None,
                        help="write measured KPIs JSON here")
    args = parser.parse_args(argv)

    names = args.scenario or sorted(SCENARIOS)
    measured = {}
    for name in names:
        print(f"running scenario: {name}")
        measured[name] = kpis(SCENARIOS[name]())
    if args.inject_regression:
        measured = inject_regression(measured, args.inject_regression)

    if args.out:
        if os.path.dirname(args.out):
            os.makedirs(os.path.dirname(args.out), exist_ok=True)
        with open(args.out, "w") as f:
            json.dump({"version": 1, "scenarios": measured}, f,
                      indent=2, sort_keys=True)
        print(f"measured KPIs -> {args.out}")

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump({"version": 1, "scenarios": measured}, f,
                      indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated -> {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 2
    with open(args.baseline) as f:
        baseline = json.load(f)["scenarios"]
    baseline = {k: v for k, v in baseline.items() if k in set(names)}

    regressions, improvements = compare(baseline, measured, args.tolerance)
    for row in improvements:
        print("improvement:")
        print(_fmt_row(*row))
    if regressions:
        print(f"REGRESSION beyond {args.tolerance * 100:.1f}% tolerance:")
        for row in regressions:
            print(_fmt_row(*row))
        return 1
    print(f"OK: {len(names)} scenarios within "
          f"{args.tolerance * 100:.1f}% of baseline"
          + (f" ({len(improvements)} improved)" if improvements else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
