"""Figure 17: ablation of the composable optimizations on Llama3-8B /
RTX 4090 — operator fusion, partial library dispatch, CUDA Graph
offloading — across batch sizes.

Paper shape: partial library lowering contributes the most (up to ~27% at
large batch, where it lowers the heavy matmuls to cuBLAS); operator fusion
helps by reducing launched kernels and global-memory traffic; CUDA Graph
adds ~1–2% by eliminating per-kernel launch overhead.
"""

import os

import pytest

from repro.bench import dump_results, print_pass_timings, print_table, results_payload
from repro.models import LLAMA3_8B
from repro.runtime import RTX_4090

DEVICE = RTX_4090
BATCHES = [1, 8, 32, 64]
CONTEXT = 1024

CONFIGS = {
    "Relax (all)": {},
    "w/o fusion": {"enable_fusion": False},
    "w/o library": {"enable_library_dispatch": False},
    "w/o CUDA Graph": {"enable_cuda_graph": False},
    "w/o all three": {
        "enable_fusion": False,
        "enable_library_dispatch": False,
        "enable_cuda_graph": False,
    },
}


def test_fig17_optimization_ablation(relax_llm, benchmark):
    rows = {}
    reports = {}
    op_profiles = {}
    for label, kwargs in CONFIGS.items():
        runner = relax_llm(LLAMA3_8B, DEVICE, **kwargs)
        rows[label] = [
            runner.decode_step_time(b, CONTEXT) * 1000 for b in BATCHES
        ]
        reports[label] = runner.compile_report
        # Per-op runtime breakdown of one steady-state decode step (traced
        # on a fresh VM, so the measured series above stays untouched).
        op_profiles[label] = runner.op_profile(BATCHES[-1], CONTEXT).op_table()
    title = (
        f"Figure 17 — Llama3-8B optimization ablation on {DEVICE.name} "
        f"(decode ms, context {CONTEXT})"
    )
    print_table(
        title, "batch size", BATCHES, rows, "ms",
        notes=[
            "paper: library dispatch contributes most (<=27%, large batch); "
            "fusion reduces kernels; CUDA Graph ~1-2%",
        ],
    )
    # Per-pass compile cost from the Timing instrument: toggled-off passes
    # show as '—' in their ablation column.
    print_pass_timings(
        "Figure 17 — per-pass compile wall time by configuration", reports
    )
    out_path = os.environ.get(
        "REPRO_RESULTS_JSON",
        os.path.join(os.path.dirname(__file__), "artifacts", "fig17_ablation.json"),
    )
    dump_results(out_path, results_payload(
        title, BATCHES, rows, unit="ms", pipeline_reports=reports,
        op_profiles=op_profiles,
    ))
    for label, report in reports.items():
        assert report.executed, f"{label}: pipeline report is empty"
        assert all(r.duration_s is not None for r in report.executed), (
            f"{label}: Timing instrument left gaps in the report"
        )

    full = rows["Relax (all)"]
    # Library dispatch matters most at large batch (compute-bound GEMMs).
    lib_gain_large = rows["w/o library"][-1] / full[-1]
    assert lib_gain_large >= 1.10, "library dispatch should matter at batch 64"
    assert lib_gain_large <= 1.45, "library gain should stay near paper's 27%"
    lib_gain_small = rows["w/o library"][0] / full[0]
    assert lib_gain_small < lib_gain_large, (
        "library gain must grow with batch size (matvec codegen at batch 1)"
    )
    # Fusion always helps.
    for col in range(len(BATCHES)):
        assert rows["w/o fusion"][col] > full[col]
    # CUDA Graph: small but positive gain.
    graph_gain = rows["w/o CUDA Graph"][0] / full[0]
    assert 1.0 < graph_gain <= 1.15, f"CUDA Graph gain {graph_gain:.3f} out of range"
    # Everything off is the worst configuration.
    for col in range(len(BATCHES)):
        assert rows["w/o all three"][col] >= max(
            rows["w/o fusion"][col], rows["w/o library"][col]
        ) * 0.99

    runner = relax_llm(LLAMA3_8B, DEVICE)
    benchmark.pedantic(
        lambda: runner.run_decode(8, CONTEXT), rounds=3, iterations=1,
        warmup_rounds=1,
    )


def test_fig17_kernel_launch_accounting(relax_llm, benchmark):
    """Mechanism check: fusion reduces launches; CUDA Graph removes
    per-kernel launch overhead at replay."""
    full = relax_llm(LLAMA3_8B, DEVICE)
    nofuse = relax_llm(LLAMA3_8B, DEVICE, enable_fusion=False)
    nograph = relax_llm(LLAMA3_8B, DEVICE, enable_cuda_graph=False)

    def launches(runner):
        runner.run_decode(1, CONTEXT)
        runner.vm.reset_stats()
        runner.run_decode(1, CONTEXT)
        return runner.vm.stats

    s_full = launches(full)
    s_nofuse = launches(nofuse)
    s_nograph = launches(nograph)
    total_full = s_full.kernel_launches + s_full.lib_calls
    total_nofuse = s_nofuse.kernel_launches + s_nofuse.lib_calls
    assert total_full < total_nofuse, "fusion must reduce kernel count"
    assert s_full.launch_overhead_s == 0.0, "replay pays no per-kernel launch"
    assert s_nograph.launch_overhead_s > 0.0
    assert s_full.graph_replays == 1

    benchmark.pedantic(lambda: full.run_decode(1, CONTEXT), rounds=3, iterations=1)
