"""Figure 15: decode latency on AMD Radeon 7900 XTX.

Paper shape: Relax consistently competitive, with its largest advantage at
batch size 1 (up to 1.50x) — compiler-generated matrix-vector kernels beat
the less-tuned ROCm library path that every baseline leans on.
"""

import pytest

from repro.baselines import ALL_LLM_BASELINES, HF_COMPILE
from repro.bench import best_competitor, print_table
from repro.models import GEMMA_7B, LLAMA3_8B, QWEN2_7B
from repro.runtime import RADEON_7900XTX

DEVICE = RADEON_7900XTX
BATCHES = [1, 4, 8, 16, 32, 64]
CONTEXT = 1024
MODELS = [LLAMA3_8B, GEMMA_7B, QWEN2_7B]


@pytest.mark.parametrize("cfg", MODELS, ids=[m.name for m in MODELS])
def test_fig15_decode_latency(relax_llm, cfg, benchmark):
    relax = relax_llm(cfg, DEVICE)
    rows = {"Relax": [relax.decode_step_time(b, CONTEXT) * 1000 for b in BATCHES]}
    for system in ALL_LLM_BASELINES:
        if system is HF_COMPILE and cfg is QWEN2_7B:
            rows[system.name] = [None] * len(BATCHES)
            continue
        if system.supports(DEVICE):
            rows[system.name] = [
                system.decode_step_time(cfg, DEVICE, b, CONTEXT) * 1000
                for b in BATCHES
            ]
    print_table(
        f"Figure 15 — {cfg.name} decode step latency on {DEVICE.name} "
        f"(context {CONTEXT})",
        "batch size", BATCHES, rows, "ms",
        notes=["paper: up to 1.50x over baselines at batch size 1"],
    )

    # Batch-1 advantage: generated matvec kernels vs the weaker ROCm
    # library path the frameworks lean on (paper: up to 1.50x).
    eager_ratio = rows["HF (eager)"][0] / rows["Relax"][0]
    assert eager_ratio >= 1.18, "expected a clear batch-1 win over eager on AMD"
    assert eager_ratio <= 1.60, "batch-1 advantage should stay near the paper's 1.5x"
    for col in range(len(BATCHES)):
        best = best_competitor(rows, col, exclude="Relax")
        assert rows["Relax"][col] <= best * 1.10

    benchmark.pedantic(
        lambda: relax.run_decode(1, CONTEXT), rounds=3, iterations=1,
        warmup_rounds=1,
    )
