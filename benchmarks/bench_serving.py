"""Serving benchmark: throughput vs latency curves per device model.

Sweeps request arrival rate and serves the same seeded workload on each
device's analytical model, producing the classic serving-paper plot data:
as offered load rises, throughput saturates and TTFT/TPOT blow up.  The
engine runs the real compiled Executable per iteration (abstract-mode
VM), so the curves reflect kernel launches, CUDA-graph capture/replay
and library dispatch on each device — not a closed-form model.

Run directly (no pytest-benchmark needed)::

    python benchmarks/bench_serving.py

or under pytest, which executes the same sweep at smoke scale.
"""

import os
from dataclasses import replace

from repro.bench import (
    compile_cache_stats,
    dump_results,
    print_table,
    results_payload,
)
from repro.models import TINY_DENOISE, TINY_LLAMA, TINY_WHISPER
from repro.runtime import ALL_DEVICES
from repro.serve import (
    EngineConfig,
    SchedulerConfig,
    ServingEngine,
    SpecConfig,
    WorkloadConfig,
    generate,
)

DEVICES = ["NVIDIA RTX 4090", "AMD Radeon 7900 XTX"]
RATES = [4.0, 16.0, 64.0, 256.0]
SEED = 0


def _engine_config() -> EngineConfig:
    return EngineConfig(
        page_size=16,
        num_blocks=256,
        scheduler=SchedulerConfig(
            max_num_seqs=16, max_num_batched_tokens=256, prefill_chunk=64,
        ),
    )


def _workload(rate: float, num_requests: int) -> WorkloadConfig:
    return WorkloadConfig(
        num_requests=num_requests, seed=SEED, arrival="poisson",
        arrival_rate=rate, prompt_min=16, prompt_max=64,
        output_min=8, output_max=32,
    )


def sweep(num_requests: int = 64, rates=RATES, devices=DEVICES):
    """Returns {device: {rate: summary}} — one engine per device, so the
    compile cache turns the rate sweep into one compile per device."""
    out = {}
    for device_name in devices:
        device = ALL_DEVICES[device_name]
        engine = ServingEngine(TINY_LLAMA, device, _engine_config())
        per_rate = {}
        for rate in rates:
            report = engine.run(generate(_workload(rate, num_requests)))
            per_rate[rate] = report.summary
        out[device_name] = per_rate
    return out


def payload_from_sweep(results, rates):
    rows = {}
    for device_name, per_rate in results.items():
        rows[f"{device_name} tok/s"] = [
            per_rate[r]["throughput_tokens_per_s"] for r in rates
        ]
        rows[f"{device_name} TTFT p50 ms"] = [
            per_rate[r]["ttft_s"]["p50"] * 1e3 for r in rates
        ]
        rows[f"{device_name} TTFT p99 ms"] = [
            per_rate[r]["ttft_s"]["p99"] * 1e3 for r in rates
        ]
        rows[f"{device_name} TPOT p50 ms"] = [
            per_rate[r]["tpot_s"]["p50"] * 1e3 for r in rates
        ]
        rows[f"{device_name} goodput req/s"] = [
            per_rate[r]["goodput_requests_per_s"] for r in rates
        ]
    return results_payload(
        "Serving: throughput vs latency under rising request rate "
        f"(tiny-llama, seed {SEED})",
        [f"{r} req/s" for r in rates],
        rows,
        unit="mixed",
        compile_cache=compile_cache_stats(),
    )


def _prefix_engine_config(enable_cache: bool) -> EngineConfig:
    return EngineConfig(
        page_size=4,
        num_blocks=256,
        enable_prefix_caching=enable_cache,
        scheduler=SchedulerConfig(
            max_num_seqs=16, max_num_batched_tokens=256,
        ),
    )


def _prefix_workload(num_requests: int = 32) -> WorkloadConfig:
    """Few long shared prefixes, short private suffixes — the workload
    shape (system prompts, few-shot exemplars) prefix caching targets."""
    return WorkloadConfig(
        num_requests=num_requests, seed=SEED, arrival="poisson",
        arrival_rate=200.0, prompt_min=36, prompt_max=48,
        output_min=8, output_max=24, prefix_families=2, prefix_len=32,
    )


def prefix_sweep(num_requests: int = 32, devices=DEVICES):
    """Same seeded shared-prefix workload with caching on vs off.

    Returns {device: {"on": summary, "off": summary}}."""
    out = {}
    requests = generate(_prefix_workload(num_requests))
    for device_name in devices:
        device = ALL_DEVICES[device_name]
        per_mode = {}
        for mode, enable in (("on", True), ("off", False)):
            engine = ServingEngine(
                TINY_LLAMA, device, _prefix_engine_config(enable)
            )
            per_mode[mode] = engine.run(requests).summary
        out[device_name] = per_mode
    return out


def payload_from_prefix_sweep(results):
    rows = {}
    for device_name, per_mode in results.items():
        on, off = per_mode["on"], per_mode["off"]
        rows[f"{device_name} TTFT mean ms"] = [
            off["ttft_s"]["mean"] * 1e3, on["ttft_s"]["mean"] * 1e3,
        ]
        rows[f"{device_name} peak required blocks"] = [
            off["kv_pool"]["peak_required_blocks"],
            on["kv_pool"]["peak_required_blocks"],
        ]
        rows[f"{device_name} cache hit rate"] = [
            0.0, on["prefix_cache"]["hit_rate"],
        ]
        rows[f"{device_name} cached token fraction"] = [
            0.0, on["prefix_cache"]["cached_token_fraction"],
        ]
        rows[f"{device_name} COW copies"] = [
            off["kv_pool"]["cow_copies"], on["kv_pool"]["cow_copies"],
        ]
    return results_payload(
        "Serving: shared-prefix workload with prefix caching off vs on "
        f"(tiny-llama, seed {SEED})",
        ["cache off", "cache on"],
        rows,
        unit="mixed",
        compile_cache=compile_cache_stats(),
    )


def _hetero_engine_config() -> EngineConfig:
    return EngineConfig(
        page_size=4,
        num_blocks=256,
        scheduler=SchedulerConfig(
            max_num_seqs=16, max_num_batched_tokens=64, prefill_chunk=8,
        ),
    )


def _hetero_workload(rate: float, num_requests: int) -> WorkloadConfig:
    """Mixed traffic: half LLM chat, a quarter streaming transcription,
    a quarter iterative denoise — all arriving on one engine."""
    return WorkloadConfig(
        num_requests=num_requests, seed=SEED, arrival="poisson",
        arrival_rate=rate, prompt_min=4, prompt_max=12,
        output_min=4, output_max=12,
        whisper_fraction=0.25, denoise_fraction=0.25,
    )


def hetero_sweep(num_requests: int = 48, rates=RATES, devices=DEVICES):
    """Mixed Llama + Whisper + denoise stream on one engine per device.

    Returns {device: {rate: summary}}; every summary carries the
    ``per_type`` breakdown."""
    out = {}
    for device_name in devices:
        device = ALL_DEVICES[device_name]
        engine = ServingEngine(
            TINY_LLAMA, device, _hetero_engine_config(),
            whisper_config=TINY_WHISPER, denoise_config=TINY_DENOISE,
        )
        per_rate = {}
        for rate in rates:
            report = engine.run(
                generate(_hetero_workload(rate, num_requests))
            )
            per_rate[rate] = report.summary
        out[device_name] = per_rate
    return out


def _ms(v):
    return None if v is None else v * 1e3


def payload_from_hetero_sweep(results, rates):
    rows = {}
    for device_name, per_rate in results.items():
        rows[f"{device_name} tok/s"] = [
            per_rate[r]["throughput_tokens_per_s"] for r in rates
        ]
        for kind in ("llm", "whisper", "denoise"):
            per_type = {r: per_rate[r]["per_type"][kind] for r in rates}
            rows[f"{device_name} {kind} TTFT p50 ms"] = [
                _ms(per_type[r]["ttft_s"]["p50"]) for r in rates
            ]
            rows[f"{device_name} {kind} TPOT p50 ms"] = [
                _ms(per_type[r]["tpot_s"]["p50"]) for r in rates
            ]
        # Denoise "step latency" is the inter-step gap distribution.
        for pct in ("p50", "p99"):
            rows[f"{device_name} denoise step {pct} ms"] = [
                _ms(per_rate[r]["per_type"]["denoise"]["itl_s"][pct])
                for r in rates
            ]
    return results_payload(
        "Serving: heterogeneous Llama + Whisper + denoise mix under "
        f"rising request rate (tiny models, seed {SEED})",
        [f"{r} req/s" for r in rates],
        rows,
        unit="mixed",
        compile_cache=compile_cache_stats(),
    )


#: Mid-size config for the speculative sweep.  TINY_LLAMA is too small
#: to show the speculation trade-off — per-call overhead dominates and a
#: draft step costs ~2/3 of a target step.  At this size the draft costs
#: ~7% of the target and ragged verification of s tokens is near the
#: price of a 1-token decode, which is the regime speculative decoding
#: actually targets; it still compiles in well under a second.
SPEC_BENCH = replace(
    TINY_LLAMA, name="spec-bench", hidden_size=1024,
    intermediate_size=2816, num_layers=4, num_heads=8, num_kv_heads=2,
    vocab_size=4096, context_length=64,
)
SPEC_QUALITIES = [0.3, 0.5, 0.7, 0.9]
SPEC_TOKENS = 3


def _spec_engine_config(quality=None) -> EngineConfig:
    return EngineConfig(
        page_size=4,
        num_blocks=512,
        scheduler=SchedulerConfig(
            max_num_seqs=16, max_num_batched_tokens=128, prefill_chunk=32,
        ),
        spec=(
            None if quality is None else SpecConfig(
                num_spec_tokens=SPEC_TOKENS, draft_quality=quality,
                seed=SEED,
            )
        ),
    )


def _spec_workload(num_requests: int) -> WorkloadConfig:
    return WorkloadConfig(
        num_requests=num_requests, seed=SEED, arrival="poisson",
        arrival_rate=50.0, prompt_min=8, prompt_max=24,
        output_min=8, output_max=24,
    )


def spec_sweep(num_requests: int = 24, qualities=SPEC_QUALITIES,
               devices=DEVICES):
    """TPOT vs draft quality: one vanilla baseline plus one speculative
    run per acceptance level, per device.  The compiled draft/target pair
    is cached, so the quality sweep compiles once per device.

    Returns {device: {"vanilla": summary, quality: summary}}."""
    out = {}
    requests = generate(_spec_workload(num_requests))
    for device_name in devices:
        device = ALL_DEVICES[device_name]
        per_mode = {}
        engine = ServingEngine(SPEC_BENCH, device, _spec_engine_config())
        per_mode["vanilla"] = engine.run(requests).summary
        for quality in qualities:
            engine = ServingEngine(
                SPEC_BENCH, device, _spec_engine_config(quality)
            )
            per_mode[quality] = engine.run(requests).summary
        out[device_name] = per_mode
    return out


def payload_from_spec_sweep(results, qualities):
    rows = {}
    for device_name, per_mode in results.items():
        vanilla = per_mode["vanilla"]["tpot_s"]["mean"]
        rows[f"{device_name} TPOT mean ms"] = [_ms(vanilla)] + [
            _ms(per_mode[q]["tpot_s"]["mean"]) for q in qualities
        ]
        rows[f"{device_name} TPOT vs vanilla"] = [1.0] + [
            per_mode[q]["tpot_s"]["mean"] / vanilla for q in qualities
        ]
        rows[f"{device_name} acceptance rate"] = [None] + [
            per_mode[q]["spec_decode"]["acceptance_rate"]
            for q in qualities
        ]
        rows[f"{device_name} per-position acceptance"] = [None] + [
            per_mode[q]["spec_decode"]["per_position_acceptance"]
            for q in qualities
        ]
    return results_payload(
        "Serving: speculative decoding TPOT vs draft acceptance rate "
        f"(spec-bench, k={SPEC_TOKENS}, seed {SEED})",
        ["vanilla"] + [f"q={q}" for q in qualities],
        rows,
        unit="mixed",
        compile_cache=compile_cache_stats(),
    )


def test_serving_throughput_latency_smoke():
    """Tier-agnostic smoke: small sweep, invariants only."""
    rates = [8.0, 128.0]
    results = sweep(num_requests=16, rates=rates)
    assert len(results) == len(DEVICES)
    for device_name, per_rate in results.items():
        for rate in rates:
            s = per_rate[rate]
            assert s["num_finished"] == 16
            assert s["kv_pool"]["leaked_blocks"] == 0
        # Higher offered load cannot lower total token throughput at
        # these (unsaturated to saturated) scales.
        assert (
            per_rate[rates[-1]]["throughput_tokens_per_s"]
            >= per_rate[rates[0]]["throughput_tokens_per_s"]
        )
    payload = payload_from_sweep(results, rates)
    assert payload["compile_cache"]["misses"] >= len(DEVICES)


def test_serving_hetero_mix_smoke():
    """Mixed-type smoke: every type finishes on every device, per-type
    metrics are populated, the pool stays leak-free."""
    rates = [8.0, 128.0]
    results = hetero_sweep(num_requests=16, rates=rates)
    assert len(results) == len(DEVICES)
    for device_name, per_rate in results.items():
        for rate in rates:
            s = per_rate[rate]
            assert s["num_finished"] == 16
            assert s["kv_pool"]["leaked_blocks"] == 0
            per_type = s["per_type"]
            assert set(per_type) == {"llm", "whisper", "denoise"}
            for kind, row in per_type.items():
                assert row["num_finished"] == row["num_requests"] > 0
                assert row["ttft_s"]["p50"] > 0
    payload = payload_from_hetero_sweep(results, rates)
    assert payload["rows"]


def test_prefix_caching_improves_ttft_and_memory():
    """Acceptance: with caching on, mean TTFT is strictly lower AND peak
    required pool utilization is lower — on every device model."""
    results = prefix_sweep()
    for device_name, per_mode in results.items():
        on, off = per_mode["on"], per_mode["off"]
        assert on["num_finished"] == off["num_finished"] == 32
        assert on["kv_pool"]["leaked_blocks"] == 0
        assert off["kv_pool"]["leaked_blocks"] == 0
        assert on["ttft_s"]["mean"] < off["ttft_s"]["mean"], device_name
        assert (
            on["kv_pool"]["peak_required_blocks"]
            < off["kv_pool"]["peak_required_blocks"]
        ), device_name
        assert on["prefix_cache"]["hit_rate"] > 0.5


def test_speculative_decoding_lowers_tpot_at_high_acceptance():
    """Acceptance: at draft quality >= 0.7 the speculative mean TPOT is
    strictly lower than vanilla — on every device model — and measured
    per-position acceptance lands on the configured quality."""
    qualities = [0.3, 0.7, 0.9]
    results = spec_sweep(num_requests=16, qualities=qualities)
    for device_name, per_mode in results.items():
        vanilla = per_mode["vanilla"]
        assert vanilla["kv_pool"]["leaked_blocks"] == 0
        assert "spec_decode" not in vanilla
        for quality in qualities:
            s = per_mode[quality]
            assert s["num_finished"] == vanilla["num_finished"] == 16
            assert s["kv_pool"]["leaked_blocks"] == 0
            sd = s["spec_decode"]
            assert sd["proposed"] > 0
            assert abs(sd["per_position_acceptance"] - quality) < 0.1, (
                device_name, quality)
            if quality >= 0.7:
                assert (
                    s["tpot_s"]["mean"] < vanilla["tpot_s"]["mean"]
                ), (device_name, quality)
        # More drafts accepted => faster decode: TPOT is monotone
        # non-increasing in draft quality.
        tpots = [per_mode[q]["tpot_s"]["mean"] for q in qualities]
        assert tpots == sorted(tpots, reverse=True), device_name
    payload = payload_from_spec_sweep(results, qualities)
    assert payload["rows"]


def main() -> None:
    results = sweep()
    payload = payload_from_sweep(results, RATES)
    print_table(
        payload["title"],
        "series",
        payload["columns"],
        payload["rows"],
        "",
        notes=[
            "one compile per device — the rate sweep hits the compile "
            f"cache ({compile_cache_stats()})",
        ],
    )
    out = os.path.join(
        os.path.dirname(__file__), "artifacts", "serving.json"
    )
    dump_results(out, payload)
    print(f"wrote {out}")

    prefix_payload = payload_from_prefix_sweep(prefix_sweep())
    print_table(
        prefix_payload["title"],
        "series",
        prefix_payload["columns"],
        prefix_payload["rows"],
        "",
        notes=["same seeded workload, caching toggled per run"],
    )
    prefix_out = os.path.join(
        os.path.dirname(__file__), "artifacts", "serving_prefix.json"
    )
    dump_results(prefix_out, prefix_payload)
    print(f"wrote {prefix_out}")

    hetero_payload = payload_from_hetero_sweep(hetero_sweep(), RATES)
    print_table(
        hetero_payload["title"],
        "series",
        hetero_payload["columns"],
        hetero_payload["rows"],
        "",
        notes=[
            "one engine serves all three request types; denoise step "
            "latency = inter-step gap percentiles",
        ],
    )
    hetero_out = os.path.join(
        os.path.dirname(__file__), "artifacts", "serving_hetero.json"
    )
    dump_results(hetero_out, hetero_payload)
    print(f"wrote {hetero_out}")

    spec_payload = payload_from_spec_sweep(spec_sweep(), SPEC_QUALITIES)
    print_table(
        spec_payload["title"],
        "series",
        spec_payload["columns"],
        spec_payload["rows"],
        "",
        notes=[
            "same seeded workload per cell; draft/target pair compiled "
            "once per device via the pair cache",
        ],
    )
    spec_out = os.path.join(
        os.path.dirname(__file__), "artifacts", "accept_rate.json"
    )
    dump_results(spec_out, spec_payload)
    print(f"wrote {spec_out}")


if __name__ == "__main__":
    main()
