"""Extra ablations beyond the paper's Figure 17, covering design choices
DESIGN.md calls out:

1. **Memory planning x CUDA Graph interaction** (§4.3/§4.5): CUDA Graph
   offloading *requires* a static memory plan; without planning the pass
   must refuse, and the combination planning+graph is what delivers the
   stable steady state.
2. **Upper bound declaration ablation**: without declared symbolic bounds,
   planning degrades to symbolic-equality reuse (still correct, still
   reusing across provably-equal sizes) but cannot produce the static plan
   CUDA Graph needs.
3. **Workspace lifting** (§4.4): lifted workspaces join global memory
   planning; without the lifting pass the tensor-program allocation stays
   invisible to the planner.
"""

import pytest

from repro.bench import RelaxLLM, print_table
from repro.models import LLAMA3_8B
from repro.runtime import RTX_4090

DEVICE = RTX_4090
CONTEXT = 512
BOUNDS = {"b": 8, "s": 512, "m": 512}


def test_ablation_planning_enables_cuda_graph(relax_llm, benchmark):
    planned = relax_llm(LLAMA3_8B, DEVICE, sym_var_upper_bounds=BOUNDS)
    unplanned = relax_llm(
        LLAMA3_8B, DEVICE, sym_var_upper_bounds=BOUNDS,
        enable_memory_planning=False,
    )
    unbounded = relax_llm(LLAMA3_8B, DEVICE, sym_var_upper_bounds={})

    # Static plan -> decode is graph-offloaded; otherwise not.
    assert planned.exe.functions["decode"].attrs.get("cuda_graph") is True
    assert not unplanned.exe.functions["decode"].attrs.get("cuda_graph")
    assert not unbounded.exe.functions["decode"].attrs.get("cuda_graph")

    rows = {
        "planning + graph": [planned.decode_step_time(1, CONTEXT) * 1000],
        "no planning": [unplanned.decode_step_time(1, CONTEXT) * 1000],
        "no declared bounds": [unbounded.decode_step_time(1, CONTEXT) * 1000],
    }
    print_table(
        "Extra ablation — planning/CUDA Graph interaction (Llama3-8B decode "
        f"ms, {DEVICE.name})",
        "config", ["batch 1"], rows, "ms",
        notes=["CUDA Graph requires the static plan (§4.5); without bounds "
               "planning stays symbolic and capture is refused"],
    )
    assert rows["planning + graph"][0] <= rows["no planning"][0]
    assert rows["planning + graph"][0] <= rows["no declared bounds"][0]

    benchmark.pedantic(lambda: planned.run_decode(1, CONTEXT), rounds=3, iterations=1)


def test_ablation_symbolic_reuse_without_bounds(relax_llm, benchmark):
    """Even without declared bounds, symbolic-equality reuse (Fig. 10)
    determines the allocation plan *ahead of time*: the number of storages
    is fixed at compile time and far smaller than the number of tensors,
    matching (never exceeding) what the runtime pool discovers dynamically
    — the paper's predictability argument (§4.3), minus the static sizing
    that bounds would add."""
    from repro.runtime import AllocStorage, AllocTensor

    unbounded = relax_llm(LLAMA3_8B, DEVICE, sym_var_upper_bounds={})
    unplanned = relax_llm(
        LLAMA3_8B, DEVICE, sym_var_upper_bounds={},
        enable_memory_planning=False,
    )

    decode_planned = unbounded.exe.functions["decode"].body
    decode_pooled = unplanned.exe.functions["decode"].body
    plan_storages = sum(isinstance(i, AllocStorage) for i in decode_planned)
    tensor_count = sum(isinstance(i, AllocTensor) for i in decode_pooled)
    print(f"\nstatic plan: {plan_storages} storages for {tensor_count} tensors")
    assert plan_storages < tensor_count / 2, "plan must reuse heavily"
    assert unbounded.exe.functions["decode"].attrs.get("memory_planned") == "symbolic"

    # Runtime behaviour: the symbolic plan allocates no more than the pool.
    unbounded.run_decode(1, CONTEXT)
    unbounded.vm.reset_stats()
    unplanned.run_decode(1, CONTEXT)
    unplanned.vm.reset_stats()
    unbounded.run_decode(1, CONTEXT)
    unplanned.run_decode(1, CONTEXT)
    assert unbounded.vm.stats.allocations <= unplanned.vm.stats.allocations

    benchmark.pedantic(lambda: unbounded.run_decode(1, CONTEXT), rounds=3, iterations=1)


def test_ablation_workspace_lifting_joins_planning(benchmark):
    """§4.4: a lifted Stream-K-style workspace participates in global
    memory planning; its allocation is shared with other activations."""
    import numpy as np

    from repro import sym, tir, transform
    from repro.core import BlockBuilder, TensorAnn, Call
    from repro.transform import PassContext, alloc_storage_op

    n = sym.SymVar("n")
    f = tir.TirBuilder("mm_split_k")
    a = f.arg("A", (n, 64), "f32")
    y = f.out("Y", (n, 64), "f32")
    ws = f.alloc("workspace", (n, 64), "f32", scope="global")
    i, j = f.spatial(n, 64)
    k = f.reduce(32)
    f.store(ws, [i, j], a[i, (j + k) % 64], combiner="sum", init=0.0)
    i, j = f.spatial(n, 64)
    f.store(y, [i, j], ws[i, j] * 0.5)
    prim = f.build()

    bb = BlockBuilder()
    gv = bb.add_func(prim, "mm_split_k")
    with bb.function("main", {"x": TensorAnn(("n", 64), "f32")}) as frame:
        (x,) = frame.params
        nn_ = bb.shape_var("n")
        from repro import ops

        with bb.dataflow():
            h = bb.emit(ops.exp(x))  # a transient with the same size
            out = bb.call_tir(gv, [h], TensorAnn((nn_, 64), "f32"))
            gvv = bb.emit_output(out)
        bb.emit_func_output(gvv)
    mod = bb.get()

    ctx = PassContext(device=DEVICE, sym_var_upper_bounds={"n": 128},
                      enable_library_dispatch=False)
    lowered = transform.optimize(mod, ctx)
    bindings = lowered["main"].body.blocks[0].bindings
    storages = [
        b for b in bindings
        if isinstance(b.value, Call) and b.value.op is alloc_storage_op
        and not b.value.attrs.get("escapes")
    ]
    # The exp intermediate and the lifted workspace share one transient
    # storage (equal upper-bound sizes, non-overlapping lifetimes)... or at
    # most two chunks when lifetimes overlap; never three.
    assert 1 <= len(storages) <= 2

    # And numerics survive the whole pipeline.
    exe = transform.build(mod, DEVICE, sym_var_upper_bounds={"n": 128},
                          enable_library_dispatch=False)
    from repro.runtime import NDArray, VirtualMachine

    vm = VirtualMachine(exe, DEVICE, concrete=True)
    x = np.random.default_rng(0).standard_normal((4, 64)).astype(np.float32)
    got = vm.run("main", NDArray.from_numpy(x)).numpy()
    e = np.exp(x)
    want = np.stack(
        [sum(e[:, (j + k) % 64] for k in range(32)) * 0.5 for j in range(64)],
        axis=1,
    )
    np.testing.assert_allclose(got, want, rtol=1e-4)

    benchmark.pedantic(
        lambda: vm.run("main", NDArray.from_numpy(x)), rounds=3, iterations=1
    )
