"""Figure 19: transcription time of a 30-second speech file with
Whisper-large-v3 on NVIDIA RTX 4090 and Apple M2 Ultra, vs HF Transformers,
WhisperX, Faster Whisper and whisper.cpp.

Paper shape: Relax is ~14% faster than the best baseline on the 4090 and
competitive on the Apple GPU; WhisperX and Faster Whisper have no Apple
GPU support.
"""

import os

import pytest

from repro.baselines import (
    FASTER_WHISPER,
    WHISPER_CPP,
    WHISPER_HF,
    WHISPER_X,
    cross_decoder_step_ops,
    cross_kv_ops,
    encoder_ops,
    llama_like,
)
from repro.bench import (
    RelaxWhisper,
    best_competitor,
    dump_results,
    print_pass_timings,
    print_table,
    results_payload,
)
from repro.models import WHISPER_LARGE_V3
from repro.runtime import M2_ULTRA, RTX_4090

DEVICES = [RTX_4090, M2_ULTRA]

FRAMES = 3000  # 30 s of audio
N_TOKENS = 200  # transcript length
ENC_LEN = FRAMES // 2

_ENC_CFG = llama_like(
    "whisper-enc", hidden=WHISPER_LARGE_V3.d_model,
    layers=WHISPER_LARGE_V3.encoder_layers, heads=WHISPER_LARGE_V3.num_heads,
    ffn=WHISPER_LARGE_V3.ffn_dim, vocab=WHISPER_LARGE_V3.vocab_size,
)
_DEC_CFG = llama_like(
    "whisper-dec", hidden=WHISPER_LARGE_V3.d_model,
    layers=WHISPER_LARGE_V3.decoder_layers, heads=WHISPER_LARGE_V3.num_heads,
    ffn=WHISPER_LARGE_V3.ffn_dim, vocab=WHISPER_LARGE_V3.vocab_size,
)

_RELAX_CACHE = {}

# Accumulated across the device-parametrized test below; serialized to
# the shared results JSON once every device column is filled.
_RESULTS_ROWS = {}


def _relax_transcribe(device) -> float:
    if device.name not in _RELAX_CACHE:
        _RELAX_CACHE[device.name] = RelaxWhisper(WHISPER_LARGE_V3, device)
    return _RELAX_CACHE[device.name].transcribe_time(FRAMES, N_TOKENS)


def _baseline_transcribe(system, device) -> float:
    total = system.run_trace(encoder_ops(_ENC_CFG, 1, ENC_LEN), device)
    total += system.run_trace(cross_kv_ops(_DEC_CFG, 1, ENC_LEN), device)
    first = system.run_trace(
        cross_decoder_step_ops(_DEC_CFG, 1, 1, 0, ENC_LEN), device
    )
    last = system.run_trace(
        cross_decoder_step_ops(_DEC_CFG, 1, 1, N_TOKENS - 1, ENC_LEN), device
    )
    return total + N_TOKENS * (first + last) / 2.0


@pytest.mark.parametrize("device", DEVICES, ids=["rtx4090", "m2ultra"])
def test_fig19_whisper_transcription(device, benchmark):
    baselines = [WHISPER_HF, WHISPER_X, FASTER_WHISPER, WHISPER_CPP]
    rows = {"Relax": [_relax_transcribe(device)]}
    for system in baselines:
        if system.supports(device):
            rows[system.name] = [_baseline_transcribe(system, device)]
    print_table(
        f"Figure 19 — Whisper-large-v3, 30 s transcription time on "
        f"{device.name}",
        "", ["seconds"], rows, "s",
        notes=["paper: Relax ~14% faster on the 4090; WhisperX / Faster "
               "Whisper have no Apple GPU support"],
    )

    if device is RTX_4090:
        assert "WhisperX" in rows and "Faster Whisper" in rows
        best = best_competitor(rows, 0, exclude="Relax")
        ratio = best / rows["Relax"][0]
        print(f"  speedup over best baseline: {ratio:.2f}x (paper ~1.14x)")
        assert 1.00 <= ratio <= 1.40
    else:
        # Apple: only HF eager and whisper.cpp remain.  The hand-written
        # Metal kernels keep an edge (as llama.cpp does in Fig. 16); Relax
        # stays competitive (within ~30%) and well ahead of the framework.
        assert "WhisperX" not in rows and "Faster Whisper" not in rows
        assert rows["Relax"][0] <= rows["whisper.cpp"][0] * 1.30
        assert rows["Relax"][0] < rows["HF (eager)"][0]

    col = DEVICES.index(device)
    for name, values in rows.items():
        _RESULTS_ROWS.setdefault(name, [None] * len(DEVICES))[col] = values[0]
    if all(v is not None for v in _RESULTS_ROWS["Relax"]):
        reports = {
            d.name: _RELAX_CACHE[d.name].compile_report for d in DEVICES
        }
        print_pass_timings(
            "Figure 19 — Whisper per-pass compile wall time by device",
            reports,
        )
        out_path = os.environ.get(
            "REPRO_RESULTS_JSON",
            os.path.join(os.path.dirname(__file__), "artifacts",
                         "fig19_whisper.json"),
        )
        dump_results(out_path, results_payload(
            "Figure 19 — Whisper-large-v3, 30 s transcription time",
            [d.name for d in DEVICES],
            _RESULTS_ROWS,
            unit="s",
            pipeline_reports=reports,
        ))
        for label, report in reports.items():
            assert report.executed, f"{label}: pipeline report is empty"

    runner = _RELAX_CACHE[device.name]
    benchmark.pedantic(
        lambda: runner.decode_step_time(1, 64, ENC_LEN), rounds=3, iterations=1
    )
