"""Speculative decoding: determinism + statistics lockdown suite.

Three invariant families pin the draft/verify mode:

1. **Pre-PR byte identity** — a non-speculative run's summary JSON and
   Perfetto trace hash to the exact values captured *before* speculative
   decoding existed, across three canonical configs (plain, pool
   pressure, prefix sharing) and both device models.  Speculation is a
   strictly additive feature: with ``spec=None`` not one byte moves.

2. **Token-stream equality** — speculation may change *when* tokens are
   produced, never *which*: every request's output token stream under
   speculative decoding equals its vanilla stream, across all configs,
   widths, and the adaptive controller.

3. **Acceptance statistics** — each verified position is an independent
   Bernoulli(draft_quality) draw in hash space, so the measured
   per-position acceptance rate converges to the workload's configured
   draft quality under a pinned seed.

Rollback leak-freedom rides along everywhere: the engine runs
``check_no_leaks`` (exact refcount accounting) after every run, and
these tests assert the reported leak count on both vanilla and
speculative runs.
"""

import hashlib
import json

import pytest

from repro.models import TINY_LLAMA
from repro.runtime.device import ALL_DEVICES
from repro.serve import (
    EngineConfig,
    SchedulerConfig,
    SpecConfig,
    WorkloadConfig,
    serve_workload,
)
from repro.serve.spec import TokenOracle

DEVICES = ["NVIDIA RTX 4090", "AMD Radeon 7900 XTX"]
CONFIGS = ["plain", "pressure", "prefix"]


def _engine_config(name, spec=None):
    if name == "plain":
        return EngineConfig(
            page_size=4, num_blocks=128,
            scheduler=SchedulerConfig(max_num_seqs=8,
                                      max_num_batched_tokens=64,
                                      prefill_chunk=16),
            spec=spec,
        )
    if name == "pressure":
        return EngineConfig(
            page_size=4, num_blocks=24,
            scheduler=SchedulerConfig(max_num_seqs=4,
                                      max_num_batched_tokens=32,
                                      prefill_chunk=8),
            spec=spec,
        )
    if name == "prefix":
        return EngineConfig(
            page_size=4, num_blocks=128, enable_prefix_caching=True,
            scheduler=SchedulerConfig(max_num_seqs=8,
                                      max_num_batched_tokens=64,
                                      prefill_chunk=16),
            spec=spec,
        )
    raise ValueError(name)


def _workload(name):
    if name == "plain":
        return WorkloadConfig(num_requests=10, seed=0, arrival="poisson",
                              arrival_rate=100.0, prompt_min=4,
                              prompt_max=12, output_min=4, output_max=12)
    if name == "pressure":
        return WorkloadConfig(num_requests=8, seed=1, arrival="poisson",
                              arrival_rate=400.0, prompt_min=8,
                              prompt_max=16, output_min=6, output_max=12)
    if name == "prefix":
        return WorkloadConfig(num_requests=8, seed=2, arrival="poisson",
                              arrival_rate=200.0, prompt_min=12,
                              prompt_max=20, output_min=4, output_max=10,
                              prefix_families=2, prefix_len=8)
    raise ValueError(name)


# (config, device) -> (summary sha256, perfetto trace sha256), captured
# on the pre-speculation engine.  Regenerate ONLY for an intentional
# report-format change — never to absorb a speculative-mode leak.
BASELINE_HASHES = {
    ("plain", "NVIDIA RTX 4090"): (
        "e70ce3a4a07d22be6c8e342872fb71e4ec3f72bb3e7d23e70fb8028e8acc8cfd",
        "a7808942ab599d653838fa2b35c8891249df4acdee54c7983e022a5053bb992c"),
    ("plain", "AMD Radeon 7900 XTX"): (
        "4386fe484afd7678142b9ac5cfa5e1aec8bade0d757dda919a79ed8abe3f6f06",
        "c1b74cd7f485d16d365a04b5dc9e36b3bae26b6e83a6fd1d0f7a56bff68448f8"),
    ("pressure", "NVIDIA RTX 4090"): (
        "5c3505d59101410e690e3a95432cce953a3adea8b36a4028849b075eb3c0a05d",
        "9a0c5728d370fa681a38f9b168062ac464795ece5300086935e0726acef514c5"),
    ("pressure", "AMD Radeon 7900 XTX"): (
        "4b79dadac18e142a93f954e2de807e94276275f7a7a231695389ecfd48bf5781",
        "c266f4a71e89e05d7a1420cf942836a84e74a64cc99791cf97e24a98b54b51c1"),
    ("prefix", "NVIDIA RTX 4090"): (
        "75e676a3a0483d77c5afbdd7912d8221951892ea0c421c77ec67bf74ba107aaa",
        "af7e8fdf8c6a141559442edbc610e9a0285bae5fe7f18f0964d50711b3a8c546"),
    ("prefix", "AMD Radeon 7900 XTX"): (
        "b658591147b4f9efe66818c29f7e6000ea6611cb416fa120965578f871aabe33",
        "851910ad9959cb646f1df949bcb6d278c17a70d357d49022707590bfbef1c9b2"),
}

# Engine runs are deterministic, so reports are shared across tests
# (SpecConfig is frozen/hashable; None = vanilla).
_REPORTS = {}


def _run(config, device, spec=None):
    key = (config, device, spec)
    if key not in _REPORTS:
        _REPORTS[key] = serve_workload(
            TINY_LLAMA, ALL_DEVICES[device], _workload(config),
            _engine_config(config, spec=spec),
        )
    return _REPORTS[key]


def _streams(report):
    return {r.req_id: list(r.output_tokens) for r in report.requests}


# ---------------------------------------------------------------------------
# 1. Pre-PR byte identity of non-speculative runs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("config", CONFIGS)
def test_vanilla_run_byte_identical_to_pre_spec_engine(config, device):
    report = _run(config, device)
    summary_hash = hashlib.sha256(
        report.to_json(sort_keys=True).encode()).hexdigest()
    trace_hash = hashlib.sha256(
        json.dumps(report.chrome_trace(), sort_keys=True).encode()
    ).hexdigest()
    want = BASELINE_HASHES[(config, device)]
    assert (summary_hash, trace_hash) == want, (
        f"{config}/{device}: non-speculative serving output drifted from "
        f"the pre-speculation engine"
    )


def test_vanilla_reports_carry_no_spec_keys():
    report = _run("plain", DEVICES[0])
    assert "spec_decode" not in report.summary
    for rec in report.iterations:
        assert "spec_batch" not in rec
        assert "spec_proposed" not in rec
    for ev in report.trace_events:
        assert ev["name"] != "spec_decode"
    for row in report.to_dict()["requests"]:
        assert "spec_proposed" not in row


# ---------------------------------------------------------------------------
# 2. Token-stream equality: speculation changes *when*, never *which*
# ---------------------------------------------------------------------------

_SPEC = SpecConfig(num_spec_tokens=3, draft_quality=0.7, seed=0)


@pytest.mark.parametrize("device", DEVICES)
@pytest.mark.parametrize("config", CONFIGS)
def test_spec_streams_equal_vanilla(config, device):
    vanilla = _run(config, device)
    spec = _run(config, device, spec=_SPEC)
    assert _streams(spec) == _streams(vanilla)
    # Every finished request emitted exactly its requested output.
    for r in spec.requests:
        assert len(r.output_tokens) == r.output_len
        assert r.finish_s is not None
    # Rollback leak-freedom: the engine's exact-refcount check passed
    # (it raises otherwise) on both runs.
    assert spec.summary["kv_pool"]["leaked_blocks"] == 0
    assert vanilla.summary["kv_pool"]["leaked_blocks"] == 0
    # The speculative run actually speculated.
    assert spec.summary["spec_decode"]["proposed"] > 0


@pytest.mark.parametrize("k", [1, 5])
def test_spec_streams_equal_across_widths(k):
    vanilla = _run("plain", DEVICES[0])
    spec = _run("plain", DEVICES[0],
                spec=SpecConfig(num_spec_tokens=k, draft_quality=0.7, seed=0))
    assert _streams(spec) == _streams(vanilla)


def test_spec_streams_equal_under_adaptive_controller():
    """The acceptance-aware controller only reshapes *widths*; token
    identity is positional, so streams must not move."""
    vanilla = _run("plain", DEVICES[0])
    spec = _run("plain", DEVICES[0],
                spec=SpecConfig(num_spec_tokens=4, draft_quality=0.3,
                                seed=0, adaptive=True, adapt_window=8))
    assert _streams(spec) == _streams(vanilla)
    assert spec.summary["spec_decode"]["adaptive"] is True


def test_spec_streams_equal_under_recompute_eviction():
    """Preempt-by-recompute replays prefill over already-emitted tokens;
    positional token identity must survive the replay interleaved with
    speculative bursts."""
    econf = EngineConfig(
        page_size=4, num_blocks=24,
        scheduler=SchedulerConfig(max_num_seqs=4, max_num_batched_tokens=32,
                                  prefill_chunk=8, eviction="recompute"),
    )
    wl = _workload("pressure")
    dev = ALL_DEVICES[DEVICES[0]]
    vanilla = serve_workload(TINY_LLAMA, dev, wl, econf)
    sconf = EngineConfig(
        page_size=4, num_blocks=24,
        scheduler=SchedulerConfig(max_num_seqs=4, max_num_batched_tokens=32,
                                  prefill_chunk=8, eviction="recompute"),
        spec=_SPEC,
    )
    spec = serve_workload(TINY_LLAMA, dev, wl, sconf)
    assert _streams(spec) == _streams(vanilla)
    assert spec.summary["kv_pool"]["leaked_blocks"] == 0


def test_spec_run_is_deterministic():
    a = serve_workload(TINY_LLAMA, ALL_DEVICES[DEVICES[0]],
                       _workload("plain"),
                       _engine_config("plain", spec=_SPEC))
    b = _run("plain", DEVICES[0], spec=_SPEC)
    assert a.to_json(sort_keys=True) == b.to_json(sort_keys=True)
    assert (json.dumps(a.chrome_trace(), sort_keys=True)
            == json.dumps(b.chrome_trace(), sort_keys=True))


# ---------------------------------------------------------------------------
# 3. Acceptance statistics converge to the configured draft quality
# ---------------------------------------------------------------------------

_CONVERGENCE_WL = WorkloadConfig(
    num_requests=24, seed=7, arrival="poisson", arrival_rate=200.0,
    prompt_min=4, prompt_max=10, output_min=16, output_max=24,
)


def _acceptance_run(quality, k=4):
    econf = EngineConfig(
        page_size=4, num_blocks=256,
        scheduler=SchedulerConfig(max_num_seqs=16,
                                  max_num_batched_tokens=128,
                                  prefill_chunk=32),
        spec=SpecConfig(num_spec_tokens=k, draft_quality=quality, seed=11),
    )
    return serve_workload(TINY_LLAMA, ALL_DEVICES[DEVICES[0]],
                          _CONVERGENCE_WL, econf)


@pytest.mark.parametrize("quality", [0.4, 0.7, 0.9])
def test_per_position_acceptance_converges_to_draft_quality(quality):
    sd = _acceptance_run(quality).summary["spec_decode"]
    assert sd["checked"] >= 200  # enough Bernoulli draws to mean anything
    measured = sd["per_position_acceptance"]
    # Pinned seed => deterministic; the band is the statistical-noise
    # allowance for ~a few hundred draws, not flake tolerance.
    assert abs(measured - quality) < 0.07, (
        f"measured {measured:.3f}, configured {quality}"
    )
    # Greedy prefix matching truncates at the first miss, so drafting
    # efficiency sits at or below the per-position rate.
    assert sd["acceptance_rate"] <= measured + 1e-9


def test_acceptance_extremes():
    perfect = _acceptance_run(1.0).summary["spec_decode"]
    assert perfect["accepted"] == perfect["proposed"] > 0
    assert perfect["acceptance_rate"] == 1.0
    hopeless = _acceptance_run(0.0).summary["spec_decode"]
    assert hopeless["accepted"] == 0
    assert hopeless["per_position_acceptance"] == 0.0


def test_acceptance_statistics_consistent_per_request():
    report = _acceptance_run(0.7)
    summary = report.summary["spec_decode"]
    assert summary["proposed"] == sum(
        r.spec_proposed for r in report.requests)
    assert summary["accepted"] == sum(
        r.spec_accepted for r in report.requests)
    for row in report.to_dict()["requests"]:
        if "spec_proposed" in row:
            assert 0 <= row["spec_accepted"] <= row["spec_proposed"]
    # Iteration records and trace agree with the totals.
    assert summary["proposed"] == sum(
        rec.get("spec_proposed", 0) for rec in report.iterations)
    assert summary["accepted"] == sum(
        ev["args"]["accepted"] for ev in report.trace_events
        if ev["name"] == "spec_decode")


# ---------------------------------------------------------------------------
# Token oracle unit behaviour
# ---------------------------------------------------------------------------


def test_oracle_is_a_pure_function():
    a = TokenOracle(seed=3, vocab_size=101, draft_quality=0.5)
    b = TokenOracle(seed=3, vocab_size=101, draft_quality=0.5)
    for req in (0, 1, 17):
        for pos in range(50):
            assert a.target_token(req, pos) == b.target_token(req, pos)
            assert a.draft_matches(req, pos) == b.draft_matches(req, pos)
    c = TokenOracle(seed=4, vocab_size=101, draft_quality=0.5)
    assert any(a.target_token(0, p) != c.target_token(0, p)
               for p in range(50))


def test_oracle_draft_token_matches_iff_agreement():
    o = TokenOracle(seed=0, vocab_size=64, draft_quality=0.5)
    hits = 0
    for pos in range(400):
        t, d = o.target_token(5, pos), o.draft_token(5, pos)
        if o.draft_matches(5, pos):
            assert d == t
            hits += 1
        else:
            assert d != t
        assert 0 <= d < 64
    assert abs(hits / 400 - 0.5) < 0.08


def test_spec_config_validation():
    with pytest.raises(ValueError):
        SpecConfig(num_spec_tokens=0)
    with pytest.raises(ValueError):
        SpecConfig(draft_quality=1.5)
    with pytest.raises(ValueError):
        SpecConfig(adapt_window=0)
