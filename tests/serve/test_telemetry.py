"""Serve-layer telemetry: determinism contract + component lockdown.

Four invariant families:

1. **Telemetry-off byte identity** — ``EngineConfig.telemetry=None``
   (the default) emits the exact bytes of the untelemetered engine;
   enabling telemetry must not change a single core-summary value,
   request metric, iteration record or pre-existing trace event.
2. **Telemetry-on determinism** — two fresh same-seed telemetered runs
   produce byte-identical telemetry JSON and Prometheus text (sliding
   windows slide on the analytical clock; nothing reads wall time).
3. **Component behaviour** — the metrics registry (labels, histogram
   windows, exposition format), the SLO monitor (stall / storm /
   violation anomalies) and the span recorder (lifecycle nesting).
4. **Perfetto schema** — telemetered serve timelines (request lifecycle
   spans + counter tracks + merged VM kernel events) pass the chrome
   trace validator, and lifecycle spans nest inside their request's
   root span on the shared clock.
"""

import json

import pytest

from repro.models import TINY_DENOISE, TINY_LLAMA, TINY_WHISPER
from repro.obs import validate_chrome_trace
from repro.obs.spans import SpanRecorder
from repro.runtime import TEST_DEVICE
from repro.runtime.device import ALL_DEVICES
from repro.serve import (
    EngineConfig,
    MetricsRegistry,
    SchedulerConfig,
    ServingEngine,
    SLOConfig,
    SLOMonitor,
    SpecConfig,
    TelemetryConfig,
    WorkloadConfig,
    generate,
    serve_workload,
)
from repro.serve.metrics import RequestMetrics
from repro.serve.telemetry import Histogram

DEVICE = ALL_DEVICES["NVIDIA RTX 4090"]


def _engine_config(telemetry=None, spec=None, num_blocks=128):
    return EngineConfig(
        page_size=4, num_blocks=num_blocks,
        scheduler=SchedulerConfig(max_num_seqs=8,
                                  max_num_batched_tokens=64,
                                  prefill_chunk=16),
        spec=spec, telemetry=telemetry,
    )


def _workload(**over):
    base = dict(num_requests=10, seed=0, arrival="poisson",
                arrival_rate=100.0, prompt_min=4, prompt_max=12,
                output_min=4, output_max=12)
    base.update(over)
    return WorkloadConfig(**base)


def _run(telemetry=None, spec=None, num_blocks=128, **wl):
    return serve_workload(TINY_LLAMA, DEVICE, _workload(**wl),
                          _engine_config(telemetry, spec, num_blocks))


# ---------------------------------------------------------------------------
# 1. Telemetry-off byte identity / telemetry-on additivity
# ---------------------------------------------------------------------------


def test_telemetry_defaults_off_and_changes_nothing():
    plain = _run()
    told = _run(telemetry=TelemetryConfig())

    assert plain.telemetry is None
    assert "telemetry" not in plain.to_dict()
    assert "telemetry" not in plain.summary
    assert "refcount_audit" not in plain.summary["kv_pool"]

    # The telemetered run adds keys but never changes existing bytes:
    # stripping the gated additions yields the identical document.
    d = told.to_dict()
    assert told.telemetry is not None
    assert "telemetry" in d
    del d["telemetry"]
    del d["summary"]["telemetry"]
    del d["summary"]["kv_pool"]["refcount_audit"]
    assert json.dumps(d, sort_keys=True) == plain.to_json(sort_keys=True)

    # Pre-existing trace events are untouched; telemetry only appends.
    plain_trace = plain.chrome_trace()["traceEvents"]
    told_trace = told.chrome_trace()["traceEvents"]
    assert told_trace[: len(plain_trace)] == plain_trace
    assert len(told_trace) > len(plain_trace)


def test_refcount_audit_always_on_report_and_clean():
    # Satellite: the audit itself is unconditional (the summary
    # placement is what the telemetry flag gates).
    for report in (_run(), _run(telemetry=TelemetryConfig())):
        audit = report.refcount_audit
        assert audit is not None
        assert audit["leaked_blocks"] == 0
        assert audit["tracked_sequences"] == 0
        assert audit["used_blocks"] == audit["expected_used_blocks"]
        # Reference traffic balances: every allocate was freed except
        # the survivors (padding page + cache-held blocks).
        assert (audit["allocated_total"] - audit["freed_total"]
                == audit["used_blocks"])
    told = _run(telemetry=TelemetryConfig())
    assert told.summary["kv_pool"]["refcount_audit"] == told.refcount_audit


# ---------------------------------------------------------------------------
# 2. Telemetry-on determinism
# ---------------------------------------------------------------------------


def test_telemetry_deterministic_across_same_seed_runs():
    cfg = TelemetryConfig(window_s=0.01)
    a = _run(telemetry=cfg, spec=SpecConfig(num_spec_tokens=2))
    b = _run(telemetry=cfg, spec=SpecConfig(num_spec_tokens=2))
    assert (json.dumps(a.telemetry.to_dict(), sort_keys=True)
            == json.dumps(b.telemetry.to_dict(), sort_keys=True))
    assert a.telemetry.to_prometheus() == b.telemetry.to_prometheus()
    assert (json.dumps(a.chrome_trace(), sort_keys=True)
            == json.dumps(b.chrome_trace(), sort_keys=True))


def test_telemetry_counters_match_engine_truth():
    report = _run(telemetry=TelemetryConfig(),
                  spec=SpecConfig(num_spec_tokens=2))
    counters = report.telemetry.registry.to_dict()["counters"]
    s = report.summary
    assert counters["iterations_total"] == len(report.iterations)
    total_tokens = sum(v for k, v in counters.items()
                       if k.startswith("tokens_total"))
    assert total_tokens == s["total_output_tokens"]
    assert counters["spec_proposed_total"] == s["spec_decode"]["proposed"]
    assert counters["spec_accepted_total"] == s["spec_decode"]["accepted"]
    assert (counters["spec_rollback_tokens_total"]
            == s["spec_decode"]["proposed"] - s["spec_decode"]["accepted"])
    finished = sum(v for k, v in counters.items()
                   if k.startswith("requests_finished_total"))
    assert finished == s["num_finished"]


def test_preemption_telemetry_under_pool_pressure():
    report = serve_workload(
        TINY_LLAMA, TEST_DEVICE,
        _workload(num_requests=16, seed=0, arrival_rate=200.0,
                  prompt_min=4, prompt_max=20, output_min=2,
                  output_max=24),
        EngineConfig(
            page_size=4, num_blocks=10,
            scheduler=SchedulerConfig(max_num_seqs=8,
                                      max_num_batched_tokens=128,
                                      prefill_chunk=16),
            telemetry=TelemetryConfig(),
        ),
    )
    assert report.summary["preemptions"] > 0
    counters = report.telemetry.registry.to_dict()["counters"]
    preempts = sum(v for k, v in counters.items()
                   if k.startswith("preemptions_total"))
    assert preempts == report.summary["preemptions"]
    names = {s["name"] for s in report.telemetry.spans.to_dicts()}
    assert any(n.startswith("preempted[") for n in names)


# ---------------------------------------------------------------------------
# 3a. Metrics registry
# ---------------------------------------------------------------------------


def test_registry_get_or_create_and_labels():
    reg = MetricsRegistry()
    c1 = reg.counter("reqs_total", "requests", kind="llm")
    c2 = reg.counter("reqs_total", "requests", kind="llm")
    c3 = reg.counter("reqs_total", "requests", kind="whisper")
    assert c1 is c2 and c1 is not c3
    c1.inc(2)
    c3.inc()
    d = reg.to_dict()["counters"]
    assert d['reqs_total{kind="llm"}'] == 2
    assert d['reqs_total{kind="whisper"}'] == 1


def test_registry_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_counter_rejects_decrease():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_histogram_sliding_window_prunes_on_analytical_clock():
    h = Histogram("lat", window_s=1.0)
    h.observe(10.0, ts_s=0.0)
    h.observe(20.0, ts_s=0.5)
    h.observe(30.0, ts_s=2.0)  # evicts ts 0.0 and 0.5 (cutoff 1.0)
    snap = h.snapshot()
    assert snap["count"] == 3           # cumulative survives the window
    assert snap["sum"] == 60.0
    assert snap["window_count"] == 1
    assert snap["p50"] == 30.0 and snap["min"] == 30.0


def test_histogram_no_window_keeps_everything():
    h = Histogram("lat")
    for i in range(100):
        h.observe(float(i), ts_s=float(i))
    snap = h.snapshot()
    assert snap["window_count"] == 100
    assert snap["p50"] == 49.0


def test_prometheus_exposition_format():
    reg = MetricsRegistry(prefix="repro_serve")
    reg.counter("reqs_total", "finished requests", kind="llm").inc(3)
    reg.gauge("queue_depth", "waiting").set(5)
    h = reg.histogram("ttft_seconds", "time to first token")
    h.observe(0.5, 0.0)
    h.observe(1.5, 1.0)
    text = reg.to_prometheus()
    lines = text.splitlines()
    assert "# TYPE repro_serve_reqs_total counter" in lines
    assert 'repro_serve_reqs_total{kind="llm"} 3.0' in lines
    assert "# TYPE repro_serve_queue_depth gauge" in lines
    assert "repro_serve_queue_depth 5.0" in lines
    assert "# TYPE repro_serve_ttft_seconds summary" in lines
    assert 'repro_serve_ttft_seconds{quantile="0.5"} 0.5' in lines
    assert "repro_serve_ttft_seconds_sum 2.0" in lines
    assert "repro_serve_ttft_seconds_count 2" in lines
    assert text.endswith("\n")
    # HELP precedes TYPE precedes samples for each metric.
    assert (lines.index("# HELP repro_serve_reqs_total finished requests")
            < lines.index("# TYPE repro_serve_reqs_total counter"))


# ---------------------------------------------------------------------------
# 3b. SLO monitor
# ---------------------------------------------------------------------------


def _metrics(req_id, ttft, tpot, arrival=0.0, n_tokens=4):
    m = RequestMetrics(req_id=req_id, arrival_s=arrival, prompt_len=8,
                       output_len=n_tokens)
    t0 = arrival + ttft
    m.token_times = [t0 + i * tpot for i in range(n_tokens)]
    m.finish_s = m.token_times[-1]
    return m


def test_slo_stall_anomaly_fires_once_at_threshold():
    mon = SLOMonitor(SLOConfig(stall_iterations=3), slo_ttft_s=1.0,
                     slo_tpot_s=0.1)
    for i in range(5):
        mon.on_iteration(i, t_s=float(i), committed=0, preemptions=0,
                         queue_depth=2)
    stalls = [a for a in mon.anomalies if a["kind"] == "stall"]
    assert len(stalls) == 1
    assert stalls[0]["iteration"] == 2  # exactly at the threshold
    # Progress resets the streak; a fresh stall can fire again.
    mon.on_iteration(5, 5.0, committed=3, preemptions=0, queue_depth=0)
    for i in range(6, 9):
        mon.on_iteration(i, float(i), committed=0, preemptions=0,
                         queue_depth=1)
    assert len([a for a in mon.anomalies if a["kind"] == "stall"]) == 2


def test_slo_preemption_storm_edge_triggered():
    mon = SLOMonitor(SLOConfig(storm_preemptions=4, window_requests=8),
                     slo_ttft_s=1.0, slo_tpot_s=0.1)
    for i in range(4):
        mon.on_iteration(i, float(i), committed=0, preemptions=2,
                         queue_depth=4)
    storms = [a for a in mon.anomalies if a["kind"] == "preemption_storm"]
    assert len(storms) == 1  # stays open, does not re-fire every step
    assert storms[0]["window_preemptions"] >= 4


def test_slo_attainment_and_violation_records():
    mon = SLOMonitor(SLOConfig(window_requests=4), slo_ttft_s=1.0,
                     slo_tpot_s=0.1)
    mon.on_finish(_metrics(0, ttft=0.5, tpot=0.05), t_s=1.0, iteration=0)
    mon.on_finish(_metrics(1, ttft=2.0, tpot=0.05), t_s=2.0, iteration=1)
    mon.on_finish(_metrics(2, ttft=0.5, tpot=0.5), t_s=3.0, iteration=2)
    assert mon.window_ttft_attainment == pytest.approx(2 / 3)
    assert mon.window_tpot_attainment == pytest.approx(2 / 3)
    assert mon.violations == 2
    kinds = [a["kind"] for a in mon.anomalies]
    assert kinds.count("slo_violation") == 2
    snap = mon.snapshot()
    json.dumps(snap)  # JSON-ready
    assert snap["anomaly_counts"] == {"slo_violation": 2}
    assert snap["window_ttft_s"]["p50"] == 0.5


def test_slo_one_token_request_vacuously_meets_tpot():
    mon = SLOMonitor(SLOConfig(), slo_ttft_s=1.0, slo_tpot_s=0.1)
    mon.on_finish(_metrics(0, ttft=0.2, tpot=0.0, n_tokens=1), 1.0, 0)
    assert mon.violations == 0
    assert mon.window_tpot_attainment is None  # nothing to measure


# ---------------------------------------------------------------------------
# 3c. Span recorder
# ---------------------------------------------------------------------------


def test_span_lifecycle_with_queueing_and_phases():
    rec = SpanRecorder()
    rec.admitted(7, arrival_s=0.0, t=1.0, kind="llm")
    rec.activity(7, "prefill", 1.0, 2.0)
    rec.activity(7, "prefill", 2.0, 3.0)   # merges into one segment
    rec.activity(7, "decode", 3.0, 4.0)    # closes prefill
    rec.finished(7, 5.0, output_tokens=3)
    spans = {(s.name, s.depth): s for s in rec.spans}
    assert spans[("queued", 0)].start_s == 0.0
    assert spans[("queued", 0)].end_s == 1.0
    assert spans[("prefill", 1)].start_s == 1.0
    assert spans[("prefill", 1)].end_s == 3.0  # merged, not two segments
    # The decode segment ends at its last recorded activity (4.0), not
    # at the finish call — no activity was claimed over [4, 5].
    assert spans[("decode", 1)].end_s == 4.0
    root = spans[("request", 0)]
    assert (root.start_s, root.end_s) == (1.0, 5.0)
    assert root.args["output_tokens"] == 3


def test_span_preemption_and_resume():
    rec = SpanRecorder()
    rec.admitted(1, arrival_s=0.0, t=0.0)
    rec.activity(1, "decode", 0.0, 1.0)
    rec.preempted(1, 1.0, "swap", swapped_tokens=8)
    rec.resumed(1, 3.0)
    rec.activity(1, "decode", 3.0, 4.0)
    rec.finished(1, 4.0)
    names = [s.name for s in rec.spans]
    assert "preempted[swap]" in names
    pre = next(s for s in rec.spans if s.name == "preempted[swap]")
    assert (pre.start_s, pre.end_s) == (1.0, 3.0)
    # Two decode segments: preemption closed the first.
    assert names.count("decode") == 2


def test_span_recompute_readmission_closes_preemption():
    rec = SpanRecorder()
    rec.admitted(2, arrival_s=0.0, t=0.0)
    rec.activity(2, "decode", 0.0, 1.0)
    rec.preempted(2, 1.0, "recompute")
    rec.admitted(2, arrival_s=0.0, t=2.5)  # re-admission, not a new root
    rec.finished(2, 3.0)
    assert [s.name for s in rec.spans].count("request") == 1
    assert [s.name for s in rec.spans].count("queued") == 0  # only once,
    # and admission at t=0 == arrival produced no queued span at all
    pre = next(s for s in rec.spans if s.name == "preempted[recompute]")
    assert (pre.start_s, pre.end_s) == (1.0, 2.5)


def test_span_finalize_closes_dangling():
    rec = SpanRecorder()
    rec.admitted(3, arrival_s=0.0, t=0.5)
    rec.activity(3, "prefill", 0.5, 1.0)
    rec.finalize(2.0)
    root = next(s for s in rec.spans if s.name == "request")
    assert root.end_s == 2.0
    assert root.args["unfinished"] is True
    assert not rec._open_phase and not rec._open_root


# ---------------------------------------------------------------------------
# 4. Perfetto schema over serve-engine timelines
# ---------------------------------------------------------------------------


def _lifecycle_nesting_ok(trace):
    events = trace["traceEvents"]
    roots = {}
    for e in events:
        if e.get("cat") == "lifecycle" and e["name"] == "request":
            roots[e["tid"]] = (e["ts"], e["ts"] + e["dur"])
    children = [e for e in events
                if e.get("cat") == "lifecycle"
                and e["name"] not in ("request", "queued")]
    assert children, "no lifecycle child spans emitted"
    for e in children:
        lo, hi = roots[e["tid"]]
        assert lo - 1e-6 <= e["ts"] and e["ts"] + e["dur"] <= hi + 1e-6, (
            f"span {e['name']} of request {e['tid']} escapes its root"
        )
    return roots


def test_telemetered_trace_validates_and_spans_nest():
    report = _run(telemetry=TelemetryConfig())
    trace = validate_chrome_trace(report.chrome_trace())
    roots = _lifecycle_nesting_ok(trace)
    assert len(roots) == report.summary["num_finished"]
    counter_names = {e["name"] for e in trace["traceEvents"]
                     if e["ph"] == "C"}
    assert {"sched_queue", "batch_occupancy", "token_budget_util",
            "kv_pressure"} <= counter_names


def test_merged_export_spans_counters_and_kernels_shared_clock():
    # Acceptance scenario: mixed LLM + Whisper + denoise workload with
    # speculation, kernel capture on — one Perfetto file carries request
    # lifecycle spans (pid 1), scheduler/pool counter tracks (pid 0) and
    # per-op VM kernel events (pid 2) on the same engine clock.
    sched = SchedulerConfig(max_num_seqs=8, max_num_batched_tokens=64,
                            prefill_chunk=8)
    engine = ServingEngine(
        TINY_LLAMA, TEST_DEVICE,
        EngineConfig(page_size=4, num_blocks=96, scheduler=sched,
                     spec=SpecConfig(num_spec_tokens=2),
                     telemetry=TelemetryConfig(capture_kernels=True)),
        whisper_config=TINY_WHISPER,
        denoise_config=TINY_DENOISE,
    )
    wl = generate(WorkloadConfig(
        num_requests=12, seed=1, arrival_rate=100.0,
        prompt_min=4, prompt_max=12, output_min=2, output_max=8,
        whisper_fraction=0.25, denoise_fraction=0.25,
    ))
    assert {r.kind for r in wl} == {"llm", "whisper", "denoise"}
    report = engine.run(wl)
    trace = validate_chrome_trace(report.chrome_trace())
    events = trace["traceEvents"]
    _lifecycle_nesting_ok(trace)

    kernels = [e for e in events if e["pid"] == 2 and e["ph"] == "X"]
    assert kernels, "kernel capture produced no merged VM events"
    vm_threads = {e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["pid"] == 2
                  and e["name"] == "thread_name"}
    assert vm_threads == {"vm[llm]", "vm[draft]", "vm[whisper]",
                          "vm[denoise]"}
    # Shared clock: every kernel lies inside the run's makespan (with
    # sub-microsecond slack for the trailing event's duration).
    end_us = report.summary["makespan_s"] * 1e6
    for e in kernels:
        assert -1e-6 <= e["ts"] <= end_us + 1.0
    # The draft VM's kernels only exist because speculation ran.
    draft_tid = next(e["tid"] for e in events
                     if e["ph"] == "M" and e["pid"] == 2
                     and e["args"]["name"] == "vm[draft]")
    assert any(e["tid"] == draft_tid for e in kernels)
    # Lifecycle spans cover the heterogeneous phases too.
    lifecycle = {e["name"] for e in events if e.get("cat") == "lifecycle"}
    assert {"request", "spec_decode"} <= lifecycle
    assert lifecycle & {"encode", "cross_project", "denoise"}


def test_kernel_capture_restores_vm_tracers():
    engine = ServingEngine(
        TINY_LLAMA, DEVICE,
        _engine_config(TelemetryConfig(capture_kernels=True)),
    )
    assert all(vm.tracer is None for vm in engine._vms)
    engine.run(generate(_workload()))
    assert all(vm.tracer is None for vm in engine._vms)
