"""Property tests for the KV block allocator and page tables."""

import random

import numpy as np
import pytest

from repro.serve import (
    BlockAllocator,
    CacheError,
    ContinuousBatchingScheduler,
    OutOfBlocks,
    PagedKVCache,
    Phase,
    RequestState,
    SchedulerConfig,
)
from repro.serve.metrics import RequestMetrics
from repro.serve.workload import Request


def _random_schedule(seed, num_blocks=24, page_size=4, steps=400):
    """Drive a PagedKVCache through a random add/append/release script;
    returns the cache with every sequence released again."""
    rng = random.Random(seed)
    kv = PagedKVCache(num_blocks, page_size)
    live = []
    next_id = 0
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.35 or not live:
            kv.add_sequence(next_id)
            live.append(next_id)
            next_id += 1
        elif roll < 0.8:
            seq = rng.choice(live)
            n = rng.randint(1, 2 * page_size)
            if kv.can_append(seq, n):
                kv.append(seq, n)
            else:
                with pytest.raises(OutOfBlocks):
                    kv.append(seq, n)
        elif roll < 0.9:
            seq = rng.choice(live)
            kv.release_sequence(seq)
            live.remove(seq)
        else:
            seq = rng.choice(live)
            kv.release_sequence(seq)
            live.remove(seq)
    for seq in live:
        kv.release_sequence(seq)
    return kv


@pytest.mark.parametrize("seed", range(12))
def test_no_block_leaked_after_any_schedule(seed):
    kv = _random_schedule(seed)
    kv.check_no_leaks()  # raises on leak or broken accounting


def test_failed_append_has_no_side_effects():
    kv = PagedKVCache(4, page_size=2)  # 3 usable after padding
    kv.add_sequence(0)
    kv.append(0, 4)  # 2 blocks
    kv.add_sequence(1)
    free_before = kv.num_free_blocks
    length_before = kv.length(0)
    with pytest.raises(OutOfBlocks):
        kv.append(1, 6)  # needs 3 blocks, only 1 free
    assert kv.num_free_blocks == free_before
    assert kv.length(0) == length_before
    assert kv.length(1) == 0


def test_freed_block_reuse_is_deterministic():
    """LIFO free list: identical alloc/free scripts yield identical ids."""

    def script():
        alloc = BlockAllocator(16)
        ids = [alloc.allocate() for _ in range(8)]
        for i in (6, 2, 4):
            alloc.free(ids[i])
        return ids + [alloc.allocate() for _ in range(5)]

    assert script() == script()
    # And the most-recently-freed block comes back first.
    alloc = BlockAllocator(4)
    a, b = alloc.allocate(), alloc.allocate()
    alloc.free(a)
    alloc.free(b)
    assert alloc.allocate() == b
    assert alloc.allocate() == a


def test_double_free_detected():
    alloc = BlockAllocator(2)
    blk = alloc.allocate()
    alloc.free(blk)
    with pytest.raises(CacheError):
        alloc.free(blk)


def _state(req_id, prompt_len=8, output_len=4, arrival=0.0):
    req = Request(req_id=req_id, arrival_s=arrival, prompt_len=prompt_len,
                  output_len=output_len)
    return RequestState(
        request=req,
        metrics=RequestMetrics(req_id=req_id, arrival_s=arrival,
                               prompt_len=prompt_len, output_len=output_len),
    )


@pytest.mark.parametrize("eviction", ["swap", "recompute"])
@pytest.mark.parametrize("seed", range(6))
def test_eviction_never_drops_blocks_of_scheduled_sequence(seed, eviction):
    """Across randomized overloaded schedules, a sequence that decodes in
    an iteration is never also preempted in it, and block accounting
    stays exact (allocated == sum of per-sequence tables + padding)."""
    rng = random.Random(seed)
    kv = PagedKVCache(10, page_size=4)
    sched = ContinuousBatchingScheduler(
        SchedulerConfig(max_num_seqs=6, max_num_batched_tokens=64,
                        prefill_chunk=8, eviction=eviction),
        kv,
    )
    next_id = 0
    for step in range(60):
        for _ in range(rng.randint(0, 2)):
            sched.add_request(_state(next_id,
                                     prompt_len=rng.randint(4, 16),
                                     output_len=rng.randint(2, 12)))
            next_id += 1
        it = sched.schedule()
        decoded = {s.seq_id for s in it.decode}
        preempted = {s.seq_id for s, _, _ in it.preempted}
        assert not decoded & preempted
        # Every decoded sequence still owns its blocks after planning.
        for state in it.decode:
            assert kv.has_sequence(state.seq_id)
            assert kv.length(state.seq_id) >= 1
        # Exact accounting at every step.
        tracked = sum(
            len(kv.blocks(s.seq_id))
            for s in sched.running
            if kv.has_sequence(s.seq_id)
        )
        assert kv.allocator.num_used == tracked + 1  # + padding block
        # Tick: pretend every scheduled token completed.
        for state in list(it.decode):
            state.generated += 1
            if state.done:
                sched.finish(state)
        for state, _, _ in it.prefill:
            if (state.phase is Phase.DECODE and state.generated == 0):
                state.generated = 1
                if state.done:
                    sched.finish(state)
    # Drain everything; nothing may leak.
    for state in list(sched.running):
        sched.finish(state)
    sched.waiting.clear()
    sched.swapped.clear()
    kv.check_no_leaks()


def test_block_table_padding_points_at_padding_page():
    kv = PagedKVCache(8, page_size=2)
    kv.add_sequence(0)
    kv.add_sequence(1)
    kv.append(0, 5)  # 3 blocks
    kv.append(1, 1)  # 1 block
    table = kv.block_table([0, 1])
    assert table.shape == (2, 3)
    assert table.dtype == np.int64
    assert (table[1, 1:] == kv.padding_block).all()
    assert kv.lengths([0, 1]).tolist() == [5, 1]


def test_fragmentation_and_utilization_accounting():
    kv = PagedKVCache(8, page_size=4)
    assert kv.fragmentation() == 0.0
    kv.add_sequence(0)
    kv.append(0, 5)  # 2 blocks, 8 slots, 5 tokens -> 3/8 wasted
    assert kv.fragmentation() == pytest.approx(3 / 8)
    assert kv.utilization() == pytest.approx(3 / 8)  # padding + 2 of 8
    kv.release_sequence(0)
    kv.check_no_leaks()


# ---------------------------------------------------------------------------
# Shared ownership: refcounts, COW forks, exact accounting
# ---------------------------------------------------------------------------


def test_share_and_free_keep_exact_refcounts():
    alloc = BlockAllocator(4)
    blk = alloc.allocate()
    assert alloc.refcount(blk) == 1
    assert alloc.share(blk) == 2
    assert alloc.share(blk) == 3
    assert alloc.total_refs == 3
    assert alloc.free(blk) == 2
    assert alloc.free(blk) == 1
    assert alloc.num_used == 1  # still allocated until the last ref drops
    assert alloc.free(blk) == 0
    assert alloc.num_used == 0
    alloc.check_no_leaks()
    with pytest.raises(CacheError):
        alloc.share(blk)  # unallocated


def test_fork_for_write_semantics():
    alloc = BlockAllocator(4)
    blk = alloc.allocate()
    # Exclusive owner: fork is the identity (no copy needed).
    assert alloc.fork_for_write(blk) == blk
    alloc.share(blk)
    fork = alloc.fork_for_write(blk)
    assert fork != blk
    assert alloc.refcount(blk) == 1   # the other owner keeps the original
    assert alloc.refcount(fork) == 1  # the writer got a private copy
    alloc.free(blk)
    alloc.free(fork)
    alloc.check_no_leaks()


def test_check_no_leaks_catches_leaked_shared_block():
    alloc = BlockAllocator(4)
    blk = alloc.allocate()
    alloc.share(blk)   # two owners
    alloc.free(blk)    # only one released
    with pytest.raises(CacheError, match="leaked"):
        alloc.check_no_leaks()
    assert alloc.free(blk) == 0
    alloc.check_no_leaks()


def test_refcounted_scripts_keep_lifo_determinism():
    """Interleaving share/fork/free with allocation must not perturb the
    LIFO reuse order: the same script always yields the same ids."""

    def script():
        alloc = BlockAllocator(12)
        ids = [alloc.allocate() for _ in range(6)]
        alloc.share(ids[1])
        alloc.share(ids[3])
        out = [alloc.fork_for_write(ids[3])]   # forks: ids[3] shared
        alloc.free(ids[5])
        alloc.free(ids[1])                      # still held by the share
        out.append(alloc.allocate())
        alloc.free(ids[1])                      # now actually freed
        out.append(alloc.allocate())
        return ids + out

    assert script() == script()


def test_cow_append_into_shared_tail_page():
    kv = PagedKVCache(8, page_size=4)
    kv.add_sequence(0)
    kv.append(0, 7)  # 2 blocks, tail page partially used
    tail = kv.blocks(0)[-1]
    kv.allocator.share(tail)  # someone else (e.g. a cache) holds the tail
    # The append must fork: one block for COW even though no page boundary
    # is crossed.
    assert kv.blocks_needed(0, 1) == 1
    before = kv.cow_copies
    kv.append(0, 1)
    assert kv.cow_copies == before + 1
    assert kv.blocks(0)[-1] != tail
    assert kv.allocator.refcount(tail) == 1  # other owner keeps the page
    kv.release_sequence(0)
    assert kv.allocator.free(tail) == 0
    kv.check_no_leaks()


def test_attach_shared_and_release_report_private_vs_shared():
    kv = PagedKVCache(8, page_size=4)
    kv.add_sequence(0)
    kv.append(0, 8)  # two full pages
    shared_blocks = kv.blocks(0)
    kv.add_sequence(1)
    kv.attach_shared(1, shared_blocks, 8)
    assert kv.length(1) == 8
    kv.append(1, 3)  # one private block, no COW (page boundary)
    rel = kv.release_sequence(1)
    assert rel.freed_blocks == 1
    assert rel.private_tokens == 3
    assert rel.shared_tokens == 8
    rel0 = kv.release_sequence(0)
    assert rel0.freed_blocks == 2
    assert rel0.private_tokens == 8
    kv.check_no_leaks()


def test_attach_shared_rejects_bad_calls():
    kv = PagedKVCache(8, page_size=4)
    kv.add_sequence(0)
    kv.append(0, 4)
    blocks = kv.blocks(0)
    kv.add_sequence(1)
    with pytest.raises(CacheError):
        kv.attach_shared(1, blocks, 5)  # 5 tokens don't fit 1 block
    kv.append(1, 1)
    with pytest.raises(CacheError):
        kv.attach_shared(1, blocks, 4)  # non-empty sequence
    kv.release_sequence(0)
    kv.release_sequence(1)
    kv.check_no_leaks()


@pytest.mark.parametrize("seed", range(8))
def test_random_shared_schedules_keep_exact_accounting(seed):
    """Random add/append/attach/release scripts with sharing: total refs
    always equal padding + per-sequence block counts, and everything
    drains leak-free."""
    rng = random.Random(seed)
    kv = PagedKVCache(32, page_size=4)
    live = []
    next_id = 0
    for _ in range(300):
        roll = rng.random()
        if roll < 0.3 or not live:
            kv.add_sequence(next_id)
            live.append(next_id)
            next_id += 1
        elif roll < 0.55:
            seq = rng.choice(live)
            n = rng.randint(1, 6)
            if kv.can_append(seq, n):
                kv.append(seq, n)
        elif roll < 0.75 and len(live) >= 1:
            # Fork a new sequence off a donor's full prompt pages.
            donor = rng.choice(live)
            full = (kv.length(donor) // 4) * 4
            if full:
                blocks = kv.blocks(donor)[: full // 4]
                kv.add_sequence(next_id)
                kv.attach_shared(next_id, blocks, full)
                live.append(next_id)
                next_id += 1
        else:
            seq = rng.choice(live)
            kv.release_sequence(seq)
            live.remove(seq)
        expected_refs = 1 + sum(len(kv.blocks(s)) for s in live)
        assert kv.allocator.total_refs == expected_refs
    for seq in live:
        kv.release_sequence(seq)
    kv.check_no_leaks()


# ---------------------------------------------------------------------------
# Speculative rollback: exact tail-page release, LIFO determinism
# ---------------------------------------------------------------------------


def test_rollback_releases_exactly_the_tail_blocks():
    kv = PagedKVCache(8, page_size=4)
    kv.add_sequence(0)
    kv.append(0, 6)                 # 2 blocks, tail half full
    kept = list(kv.blocks(0))
    kv.append(0, 5)                 # speculative burst -> 11 tokens, 3 blocks
    assert kv.rollback(0, 4) == 1   # back to 7 tokens -> 2 blocks
    assert kv.length(0) == 7
    assert kv.blocks(0) == kept     # surviving blocks untouched
    assert kv.rollback(0, 0) == 0   # no-op rollback is legal
    kv.rollback(0, 7)               # all the way to empty is legal too
    assert kv.length(0) == 0
    assert kv.blocks(0) == []
    kv.release_sequence(0)
    kv.check_no_leaks()


def test_rollback_error_cases():
    kv = PagedKVCache(8, page_size=4)
    kv.add_sequence(0)
    kv.append(0, 4)
    with pytest.raises(CacheError):
        kv.rollback(0, -1)
    with pytest.raises(CacheError):
        kv.rollback(0, 5)           # exceeds sequence length
    assert kv.length(0) == 4        # failed rollback has no side effects
    kv.release_sequence(0)
    kv.check_no_leaks()


def test_rollback_frees_tail_blocks_in_reverse_order():
    """Rollback mirrors append on the LIFO free list: the blocks it frees
    come back out of the allocator in append order."""
    kv = PagedKVCache(16, page_size=2)
    kv.add_sequence(0)
    kv.append(0, 8)                 # 4 blocks
    grown = list(kv.blocks(0))
    kv.rollback(0, 6)               # drop the last 3
    kv.add_sequence(1)
    kv.append(1, 6)
    assert kv.blocks(1) == grown[1:]
    kv.release_sequence(0)
    kv.release_sequence(1)
    kv.check_no_leaks()


def test_rollback_then_reappend_reuses_identical_blocks():
    """A rejected speculative burst leaves zero trace: re-appending the
    same number of tokens lands on the very same block ids."""
    kv = PagedKVCache(16, page_size=4)
    kv.add_sequence(0)
    kv.append(0, 4)
    kv.append(0, 9)                 # burst crossing two page boundaries
    burst = list(kv.blocks(0))
    kv.rollback(0, 9)
    kv.append(0, 9)
    assert kv.blocks(0) == burst
    kv.release_sequence(0)
    kv.check_no_leaks()


def test_rollback_of_shared_tail_keeps_other_owner():
    kv = PagedKVCache(8, page_size=4)
    kv.add_sequence(0)
    kv.append(0, 8)                 # 2 full blocks
    tail = kv.blocks(0)[-1]
    kv.allocator.share(tail)        # e.g. the prefix cache holds the page
    assert kv.rollback(0, 4) == 1   # the sequence drops its ref...
    assert kv.allocator.refcount(tail) == 1   # ...the block survives
    kv.release_sequence(0)
    assert kv.allocator.free(tail) == 0
    kv.check_no_leaks()


def _spec_traffic_script(seed, num_blocks=32, page_size=4, steps=300):
    """Random interleaving of speculative bursts (optimistic append of
    1 + k tokens, then greedy-match rollback of the k - n rejected ones),
    plain appends, COW forks off shared prompt pages, and releases.
    Exact refcount accounting is asserted after every step; returns the
    full block-table trajectory for determinism comparison."""
    rng = random.Random(seed)
    kv = PagedKVCache(num_blocks, page_size)
    live = []
    next_id = 0
    trajectory = []
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.25 or not live:
            kv.add_sequence(next_id)
            live.append(next_id)
            next_id += 1
        elif roll < 0.55:
            seq = rng.choice(live)
            k = rng.randint(1, 2 * page_size)
            if kv.can_append(seq, 1 + k):
                kv.append(seq, 1 + k)
                n = rng.randint(0, k)       # accepted prefix length
                kv.rollback(seq, k - n)
        elif roll < 0.7:
            seq = rng.choice(live)
            n = rng.randint(1, page_size)
            if kv.can_append(seq, n):
                kv.append(seq, n)
        elif roll < 0.85:
            donor = rng.choice(live)
            full = (kv.length(donor) // page_size) * page_size
            if full:
                blocks = kv.blocks(donor)[: full // page_size]
                kv.add_sequence(next_id)
                kv.attach_shared(next_id, blocks, full)
                live.append(next_id)
                next_id += 1
        else:
            seq = rng.choice(live)
            kv.release_sequence(seq)
            live.remove(seq)
        expected_refs = 1 + sum(len(kv.blocks(s)) for s in live)
        assert kv.allocator.total_refs == expected_refs
        trajectory.append(sorted((s, tuple(kv.blocks(s))) for s in live))
    for seq in live:
        kv.release_sequence(seq)
    kv.check_no_leaks()
    return trajectory


@pytest.mark.parametrize("seed", range(10))
def test_spec_traffic_keeps_lifo_reuse_determinism(seed):
    """Interleaved speculative-append/rollback/COW-fork traffic never
    perturbs block-id reuse: the same script yields the same block
    tables at every step, and drains leak-free."""
    assert _spec_traffic_script(seed) == _spec_traffic_script(seed)
