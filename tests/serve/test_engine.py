"""End-to-end serving engine: determinism, leaks, metrics, Perfetto."""

import json

import pytest

from repro.models import TINY_LLAMA
from repro.obs import validate_chrome_trace
from repro.runtime import TEST_DEVICE
from repro.serve import (
    CacheError,
    EngineConfig,
    Request,
    SchedulerConfig,
    ServingEngine,
    WorkloadConfig,
    generate,
)


def _engine(policy="swap", num_blocks=64, **sched_kwargs):
    sched = SchedulerConfig(
        max_num_seqs=8, max_num_batched_tokens=128, prefill_chunk=16,
        eviction=policy, **sched_kwargs,
    )
    return ServingEngine(
        TINY_LLAMA, TEST_DEVICE,
        EngineConfig(page_size=4, num_blocks=num_blocks, scheduler=sched),
    )


def _workload(seed=0, n=24, rate=200.0, out_max=12):
    return WorkloadConfig(
        num_requests=n, seed=seed, arrival_rate=rate,
        prompt_min=4, prompt_max=20, output_min=2, output_max=out_max,
    )


def test_same_seed_runs_are_bit_identical():
    r1 = _engine().run(generate(_workload()))
    r2 = _engine().run(generate(_workload()))
    assert r1.to_json(sort_keys=True) == r2.to_json(sort_keys=True)
    assert (
        json.dumps(r1.chrome_trace(), sort_keys=True)
        == json.dumps(r2.chrome_trace(), sort_keys=True)
    )
    r3 = _engine().run(generate(_workload(seed=1)))
    assert r1.to_json(sort_keys=True) != r3.to_json(sort_keys=True)


def test_all_requests_finish_with_full_metrics_and_no_leaks():
    requests = generate(_workload())
    report = _engine().run(requests)
    s = report.summary
    assert s["num_finished"] == len(requests)
    assert s["kv_pool"]["leaked_blocks"] == 0
    for key in ("ttft_s", "tpot_s", "itl_s"):
        assert set(s[key]) == {"mean", "p50", "p90", "p99"}
        assert s[key]["p50"] > 0
        assert s[key]["mean"] > 0
    assert s["throughput_tokens_per_s"] > 0
    assert s["goodput_requests_per_s"] >= 0
    for m in report.requests:
        assert m.finish_s is not None
        assert len(m.token_times) == m.output_len
        assert m.token_times == sorted(m.token_times)
        assert m.ttft is not None and m.ttft >= 0
    # The clock is the VM's analytical clock plus swap time.
    assert s["makespan_s"] >= report.stats.time_s - 1e-12


@pytest.mark.parametrize("policy", ["swap", "recompute"])
def test_preemption_under_memory_pressure(policy):
    report = _engine(policy=policy, num_blocks=10).run(
        generate(_workload(n=16, out_max=24))
    )
    s = report.summary
    assert s["num_finished"] == 16
    assert s["preemptions"] > 0
    assert s["kv_pool"]["leaked_blocks"] == 0
    if policy == "swap":
        assert s["swap_time_s"] > 0
    else:
        assert s["swap_time_s"] == 0


def test_perfetto_export_validates_with_one_track_per_request(tmp_path):
    requests = generate(_workload(n=6))
    report = _engine().run(requests)
    path = tmp_path / "serve_trace.json"
    trace = report.export_chrome_trace(str(path))
    validate_chrome_trace(trace)  # schema validator must accept it
    on_disk = json.loads(path.read_text())
    assert on_disk == trace
    events = trace["traceEvents"]
    # One named thread track per request on the requests process.
    names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 1
    }
    assert set(names) == {r.req_id for r in requests}
    # Every request decodes at least once on its own track.
    for r in requests:
        assert any(
            e["ph"] == "X" and e["pid"] == 1 and e["tid"] == r.req_id
            for e in events
        )
    # Engine track slices cover the whole makespan.
    iter_slices = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
    total_us = sum(e["dur"] for e in iter_slices)
    assert total_us <= report.summary["makespan_s"] * 1e6 + 1e-3


def test_chunked_prefill_interleaves_with_decode():
    """With chunking, some iteration runs decode and prefill together."""
    report = _engine().run(generate(_workload(n=12, rate=1000.0)))
    assert any(
        it["decode_batch"] > 0 and it["prefill_tokens"] > 0
        for it in report.iterations
    )
    # Token budget respected everywhere.
    assert all(
        it["num_batched_tokens"] <= 128 for it in report.iterations
    )


def test_stall_on_impossible_request_is_an_error():
    engine = _engine(num_blocks=3)  # 2 usable blocks = 8 tokens
    wl = WorkloadConfig(num_requests=1, seed=0, arrival_rate=100.0,
                        prompt_min=32, prompt_max=32, output_min=2,
                        output_max=2)
    with pytest.raises(CacheError):
        engine.run(generate(wl))


def test_iteration_deltas_sum_to_vm_totals():
    """The engine's per-iteration accounting telescopes to the VM clock."""
    engine = _engine()
    start = engine.vm.stats.copy()
    report = engine.run(generate(_workload(n=10)))
    vm_time = engine.vm.stats.delta(start).time_s
    swap = report.summary["swap_time_s"]
    iter_time = sum(it["dur_s"] for it in report.iterations)
    assert iter_time == pytest.approx(vm_time + swap, abs=1e-9)


# ---------------------------------------------------------------------------
# Prefix caching
# ---------------------------------------------------------------------------


def _prefix_engine(enable=True, num_blocks=96, policy="swap",
                   num_seqs=8, **eng_kwargs):
    sched = SchedulerConfig(
        max_num_seqs=num_seqs, max_num_batched_tokens=128, prefill_chunk=16,
        eviction=policy,
    )
    return ServingEngine(
        TINY_LLAMA, TEST_DEVICE,
        EngineConfig(page_size=4, num_blocks=num_blocks, scheduler=sched,
                     enable_prefix_caching=enable, **eng_kwargs),
    )


def _prefix_workload(seed=0, n=24, families=3, prefix_len=10, rate=200.0):
    return WorkloadConfig(
        num_requests=n, seed=seed, arrival_rate=rate,
        prompt_min=12, prompt_max=32, output_min=2, output_max=8,
        prefix_families=families, prefix_len=prefix_len,
    )


def test_prefix_cached_runs_are_bit_identical_and_leak_free():
    wl = generate(_prefix_workload())
    r1 = _prefix_engine().run(wl)
    r2 = _prefix_engine().run(wl)
    assert r1.to_json(sort_keys=True) == r2.to_json(sort_keys=True)
    assert (
        json.dumps(r1.chrome_trace(), sort_keys=True)
        == json.dumps(r2.chrome_trace(), sort_keys=True)
    )
    s = r1.summary
    assert s["num_finished"] == len(wl)
    assert s["kv_pool"]["leaked_blocks"] == 0
    # Shared prompts actually hit the cache.
    pc = s["prefix_cache"]
    assert pc["hits"] > 0
    assert 0 < pc["hit_rate"] <= 1
    assert 0 < pc["cached_token_fraction"] < 1
    assert pc["matched_tokens"] > 0


def test_prefix_cache_lowers_prefill_work_and_ttft():
    wl = generate(_prefix_workload())
    on = _prefix_engine(True).run(wl)
    off = _prefix_engine(False).run(wl)
    assert "prefix_cache" not in off.summary
    # Cached tokens are never prefilled: strictly less prefill work.
    prefill_on = sum(it["prefill_tokens"] for it in on.iterations)
    prefill_off = sum(it["prefill_tokens"] for it in off.iterations)
    assert prefill_on < prefill_off
    assert on.summary["ttft_s"]["mean"] < off.summary["ttft_s"]["mean"]
    # Both runs drain leak-free and finish everything.
    assert on.summary["num_finished"] == off.summary["num_finished"] == len(wl)


def test_identical_prompts_trigger_copy_on_write():
    """Duplicate page-aligned prompts: the second request matches all but
    the last token, and its first prefill writes into the shared tail
    page — which must fork, not mutate the cached copy."""
    prompt = tuple(range(1000, 1016))  # 16 tokens = 4 full pages
    reqs = [
        Request(req_id=i, arrival_s=float(i), prompt_len=16, output_len=2,
                prompt_tokens=prompt)
        for i in range(3)
    ]
    report = _prefix_engine().run(reqs)
    s = report.summary
    assert s["num_finished"] == 3
    assert s["kv_pool"]["cow_copies"] >= 2  # one fork per follower
    assert s["prefix_cache"]["hits"] == 2
    # Followers match 15 of 16 tokens (one must remain to produce logits).
    assert s["prefix_cache"]["matched_tokens"] == 30
    per_req = {r.req_id: r.cached_prompt_tokens for r in report.requests}
    assert per_req == {0: 0, 1: 15, 2: 15}


def test_cache_hit_instants_appear_on_request_tracks():
    wl = generate(_prefix_workload())
    report = _prefix_engine().run(wl)
    hits = [
        e for e in report.trace_events
        if e["ph"] == "i" and e["name"] == "prefix_cache_hit"
    ]
    assert hits, "no prefix_cache_hit instants recorded"
    for e in hits:
        assert e["pid"] == 1
        assert e["args"]["cached_tokens"] > 0
    assert sum(e["args"]["cached_tokens"] for e in hits) == (
        report.summary["prefix_cache"]["matched_tokens"]
    )
    # Iteration records agree with the trace.
    assert sum(it["cached_tokens"] for it in report.iterations) == (
        report.summary["prefix_cache"]["matched_tokens"]
    )


@pytest.mark.parametrize("policy", ["swap", "recompute"])
def test_preemption_with_sharing_stays_leak_free(policy):
    """Memory pressure + prefix sharing: preempted victims release only
    their references, swap costing charges only private tokens, and the
    pool drains exactly."""
    wl = generate(_prefix_workload(n=20, rate=500.0))
    report = _prefix_engine(num_blocks=14, policy=policy).run(wl)
    s = report.summary
    assert s["num_finished"] == len(wl)
    assert s["preemptions"] > 0
    assert s["kv_pool"]["leaked_blocks"] == 0
    if policy == "recompute":
        assert s["swap_time_s"] == 0


def test_peak_required_blocks_counts_cache_as_reclaimable():
    wl = generate(_prefix_workload())
    on = _prefix_engine(True).run(wl)
    off = _prefix_engine(False).run(wl)
    pool_on, pool_off = on.summary["kv_pool"], off.summary["kv_pool"]
    # Required never exceeds raw, and equals it with caching off.
    assert pool_on["peak_required_blocks"] <= pool_on["peak_used_blocks"]
    assert pool_off["peak_required_blocks"] == pool_off["peak_used_blocks"]
    assert pool_on["peak_required_blocks"] <= pool_off["peak_required_blocks"]


class TestSteppableAPI:
    """submit()/step()/drain()/report() — the protocol run() wraps."""

    def test_stepwise_run_matches_run_wrapper(self):
        requests = generate(_workload())
        baseline = _engine().run(requests)
        engine = _engine()
        engine.submit(requests)
        steps = 0
        while engine.has_work:
            engine.step()
            steps += 1
        report = engine.report()
        assert report.to_json(sort_keys=True) == baseline.to_json(
            sort_keys=True)
        assert steps >= len(baseline.iterations)

    def test_incremental_submit_matches_upfront_submit(self):
        requests = generate(_workload())
        baseline = _engine().run(requests)
        engine = _engine()
        # Feed arrivals in two batches, as the cluster router does: the
        # later batch lands before the clock reaches its arrival times.
        engine.submit(requests[:12])
        engine.step()
        engine.submit(requests[12:])
        engine.drain()
        report = engine.report()
        assert report.to_json(sort_keys=True) == baseline.to_json(
            sort_keys=True)

    def test_step_without_submit_raises(self):
        with pytest.raises(RuntimeError, match="submit"):
            _engine().step()

    def test_report_without_run_raises(self):
        with pytest.raises(RuntimeError, match="no active run"):
            _engine().report()

    def test_report_before_drain_raises(self):
        engine = _engine()
        engine.submit(generate(_workload()))
        with pytest.raises(RuntimeError, match="drain"):
            engine.report()
        engine.drain()
        engine.report()  # and now it works

    def test_duplicate_req_id_rejected(self):
        engine = _engine()
        requests = generate(_workload())
        engine.submit(requests)
        with pytest.raises(ValueError, match="already submitted"):
            engine.submit([requests[0]])

    def test_report_ends_the_run(self):
        engine = _engine()
        engine.submit(generate(_workload(n=4)))
        engine.drain()
        engine.report()
        assert engine.active_run is None
        with pytest.raises(RuntimeError, match="no active run"):
            engine.report()

    def test_clock_is_monotonic_across_steps(self):
        engine = _engine()
        engine.submit(generate(_workload(n=8)))
        last = engine.clock
        while engine.has_work:
            engine.step()
            assert engine.clock >= last
            last = engine.clock
