"""Tensor-parallel serving: the engine above the mesh runs unchanged.

``EngineConfig(tp=N)`` swaps the single VM for a :class:`MeshVM` over N
per-shard VMs in lockstep; everything above it — scheduler, paged KV
accounting, prefix cache, speculative decoding — is SPMD-oblivious.
These tests pin the contract: same-seed runs stay byte-identical, the
scheduling outcome matches tp=1 request-for-request (only timing moves),
per-shard pools balance, and the communication observability (summary
key + per-shard Perfetto tracks) appears only behind the telemetry gate.
"""

import json

import pytest

from repro.models import TINY_LLAMA_TP
from repro.runtime import TEST_DEVICE
from repro.serve import (
    EngineConfig,
    SchedulerConfig,
    ServingEngine,
    SpecConfig,
    TelemetryConfig,
    WorkloadConfig,
    generate,
)


def _engine(tp=2, num_blocks=64, spec=None, telemetry=None):
    sched = SchedulerConfig(
        max_num_seqs=8, max_num_batched_tokens=128, prefill_chunk=16,
    )
    return ServingEngine(
        TINY_LLAMA_TP, TEST_DEVICE,
        EngineConfig(page_size=4, num_blocks=num_blocks, scheduler=sched,
                     tp=tp, spec=spec, telemetry=telemetry,
                     enable_prefix_caching=False),
    )


def _workload(seed=0, n=16):
    return WorkloadConfig(
        num_requests=n, seed=seed, arrival_rate=200.0,
        prompt_min=4, prompt_max=20, output_min=2, output_max=12,
    )


def test_tp_run_finishes_clean():
    # run() ends with the per-shard pool audit (MeshVM.check_no_leaks);
    # reaching the report means the ranks balanced block-for-block.
    report = _engine().run(generate(_workload()))
    s = report.summary
    assert s["num_finished"] == 16
    assert s["kv_pool"]["leaked_blocks"] == 0


def test_tp_same_seed_runs_are_bit_identical():
    r1 = _engine().run(generate(_workload()))
    r2 = _engine().run(generate(_workload()))
    assert r1.to_json(sort_keys=True) == r2.to_json(sort_keys=True)
    assert (
        json.dumps(r1.chrome_trace(), sort_keys=True)
        == json.dumps(r2.chrome_trace(), sort_keys=True)
    )


def test_tp_matches_tp1_scheduling_outcome():
    # The mesh only changes *when* steps finish, never *what* they
    # compute or how the scheduler batches: every request produces the
    # same token counts with the same preemption history as tp=1.
    one = _engine(tp=1).run(generate(_workload()))
    two = _engine(tp=2).run(generate(_workload()))
    assert len(one.requests) == len(two.requests)
    for a, b in zip(one.requests, two.requests):
        assert (a.req_id, a.prompt_len, a.output_len, a.preemptions) == (
            b.req_id, b.prompt_len, b.output_len, b.preemptions)
    assert one.summary["num_finished"] == two.summary["num_finished"]
    # Sharded decode is faster on the modeled device at equal batch.
    assert two.summary["makespan_s"] != one.summary["makespan_s"]


def test_tp_charges_comm_time_tp1_does_not():
    one = _engine(tp=1).run(generate(_workload()))
    two = _engine(tp=2).run(generate(_workload()))
    assert two.stats.comm_time_s > 0
    assert one.stats.comm_time_s == 0
    # The summary surfaces comm time only when it exists, so tp=1
    # serialization is byte-identical to the pre-mesh engine.
    assert "comm_time_s" in two.summary["vm"]
    assert "comm_time_s" not in one.summary["vm"]


def test_tp_comm_fraction_is_telemetry_gated():
    plain = _engine().run(generate(_workload()))
    assert "comm_fraction" not in plain.summary
    told = _engine(telemetry=TelemetryConfig()).run(generate(_workload()))
    assert 0 < told.summary["comm_fraction"] < 1


def test_tp_per_shard_counter_tracks_in_trace():
    told = _engine(telemetry=TelemetryConfig()).run(generate(_workload()))
    trace = json.dumps(told.chrome_trace())
    for rank in range(2):
        assert f"shard{rank}_comm" in trace
        assert f"shard{rank}_kv_pressure" in trace
    # Single-VM runs must not grow shard tracks.
    one = _engine(tp=1, telemetry=TelemetryConfig()).run(
        generate(_workload()))
    assert "shard0_comm" not in json.dumps(one.chrome_trace())


def test_tp_speculative_decoding_composes():
    spec = SpecConfig(num_spec_tokens=2, draft_quality=0.8)
    r1 = _engine(spec=spec).run(generate(_workload()))
    r2 = _engine(spec=spec).run(generate(_workload()))
    s = r1.summary["spec_decode"]
    assert s["proposed"] > 0 and s["accepted"] > 0
    assert r1.summary["num_finished"] == 16
    assert r1.to_json(sort_keys=True) == r2.to_json(sort_keys=True)


def test_tp_must_divide_kv_heads():
    with pytest.raises(ValueError, match="num_kv_heads"):
        _engine(tp=8).run(generate(_workload(n=2)))
