"""Radix prefix cache: matching, sharing, LRU eviction, accounting."""

import pytest

from repro.serve import CacheError, PagedKVCache, PrefixCache


def _kv(num_blocks=16, page_size=4):
    kv = PagedKVCache(num_blocks, page_size)
    cache = PrefixCache(kv)
    return kv, cache


def _prefill(kv, cache, seq_id, tokens):
    """Simulate a finished prompt prefill: append + publish full pages."""
    kv.add_sequence(seq_id)
    kv.append(seq_id, len(tokens))
    cache.insert(tokens, kv.blocks(seq_id))


def test_match_walks_full_pages_only():
    kv, cache = _kv()
    prompt = tuple(range(10))  # 2 full pages + 2 leftover tokens
    _prefill(kv, cache, 0, prompt)
    assert cache.num_nodes == 2  # only full pages are indexed
    blocks, matched = cache.match(prompt)
    assert matched == 8
    assert blocks == kv.blocks(0)[:2]
    # A prompt diverging inside the second page matches one page.
    other = tuple(range(4)) + (99,) * 6
    _, matched = cache.match(other)
    assert matched == 4
    # A prompt diverging in the first page matches nothing.
    assert cache.match((99,) * 8) == ([], 0)


def test_max_tokens_cap_can_split_a_page():
    kv, cache = _kv()
    prompt = tuple(range(8))
    _prefill(kv, cache, 0, prompt)
    blocks, matched = cache.match(prompt, max_tokens=7)
    assert matched == 7
    assert len(blocks) == 2  # 7 tokens still span both pages
    blocks, matched = cache.match(prompt, max_tokens=3)
    assert matched == 3
    assert len(blocks) == 1


def test_attach_shares_blocks_and_records_stats():
    kv, cache = _kv()
    prompt = tuple(range(8))
    _prefill(kv, cache, 0, prompt)
    shared = kv.blocks(0)
    kv.add_sequence(1)
    got = cache.attach(1, prompt, max_tokens=7)
    assert got == 7
    assert kv.length(1) == 7
    assert kv.blocks(1) == shared
    # seq 0 + seq 1 + cache each hold one reference.
    assert all(kv.allocator.refcount(b) == 3 for b in shared)
    assert cache.stats.lookups == 1 and cache.stats.hits == 1
    assert cache.stats.matched_tokens == 7
    # A miss with record=True counts the lookup but attaches nothing.
    kv.add_sequence(2)
    assert cache.attach(2, (99,) * 8) == 0
    assert cache.stats.lookups == 2 and cache.stats.hits == 1
    # record=False (swap-in re-attachment) leaves stats alone.
    kv.release_sequence(1)
    kv.add_sequence(3)
    assert cache.attach(3, prompt, max_tokens=7, record=False) == 7
    assert cache.stats.lookups == 2
    for s in (0, 2, 3):
        kv.release_sequence(s)
    kv.check_no_leaks()


def test_insert_dedupes_existing_chunks():
    kv, cache = _kv()
    prompt = tuple(range(8))
    _prefill(kv, cache, 0, prompt)
    first = cache.cached_blocks()
    # A second sequence with the same prompt publishes nothing new.
    kv.add_sequence(1)
    kv.append(1, 8)
    created = cache.insert(prompt, kv.blocks(1))
    assert created == 0
    assert sorted(cache.cached_blocks()) == sorted(first)
    assert cache.stats.inserts == 2  # only the two original nodes
    kv.release_sequence(0)
    kv.release_sequence(1)
    kv.check_no_leaks()


def test_reclaim_order_is_deterministic_lru():
    kv, cache = _kv(num_blocks=32)
    a = tuple(range(8))
    b = (50, 51, 52, 53, 54, 55, 56, 57)
    _prefill(kv, cache, 0, a)
    _prefill(kv, cache, 1, b)   # B inserted later -> fresher
    kv.release_sequence(0)
    kv.release_sequence(1)
    a_blocks = set(cache.match(a)[0])
    # Touch A after B: now B is the LRU family.
    kv.add_sequence(2)
    cache.attach(2, a, max_tokens=7, record=False)
    kv.release_sequence(2)
    freed = cache.reclaim(2)
    assert freed == 2
    # Family B is gone, family A survives.
    assert cache.match(b) == ([], 0)
    _, matched = cache.match(a)
    assert matched == 8
    assert set(cache.cached_blocks()) == a_blocks
    assert cache.stats.evictions == 2


def test_reclaim_never_touches_shared_blocks():
    kv, cache = _kv(num_blocks=16)
    prompt = tuple(range(8))
    _prefill(kv, cache, 0, prompt)
    # seq 0 still references every cached block: nothing is evictable.
    assert cache.evictable_count() == 0
    assert cache.reclaim(4) == 0
    assert cache.num_nodes == 2
    kv.release_sequence(0)
    assert cache.evictable_count() == 2
    assert cache.reclaim(4) == 2  # only 2 exist
    kv.check_no_leaks()


def test_pool_pressure_reclaims_through_append():
    """Appending past the free list reclaims cached blocks on demand."""
    kv, cache = _kv(num_blocks=6, page_size=4)  # 5 usable after padding
    prompt = tuple(range(8))
    _prefill(kv, cache, 0, prompt)   # 2 blocks, cached
    kv.release_sequence(0)           # now cache-only (evictable)
    assert kv.num_free_blocks == 3
    assert kv.num_available_blocks == 5
    kv.add_sequence(1)
    kv.append(1, 18)  # 5 blocks: must reclaim both cached blocks
    assert cache.num_nodes == 0
    assert cache.stats.evictions == 2
    kv.release_sequence(1)
    kv.check_no_leaks()


def test_evictable_count_excludes_attached_and_excluded_blocks():
    kv, cache = _kv()
    prompt = tuple(range(8))
    _prefill(kv, cache, 0, prompt)
    kv.release_sequence(0)
    assert kv.num_reclaimable_blocks == 2
    blocks, matched = cache.match(prompt, max_tokens=7)
    assert cache.evictable_count(exclude=blocks) == 0
    kv.add_sequence(1)
    cache.attach(1, prompt, max_tokens=7)
    assert cache.evictable_count() == 0  # attached blocks are pinned
    kv.release_sequence(1)
    assert cache.evictable_count() == 2
    cache.clear()
    kv.check_no_leaks()


def test_clear_refuses_while_shared_then_succeeds():
    kv, cache = _kv()
    prompt = tuple(range(4))
    _prefill(kv, cache, 0, prompt)
    with pytest.raises(CacheError):
        cache.clear()  # seq 0 still shares the block
    kv.release_sequence(0)
    assert cache.clear() == 1
    kv.check_no_leaks()
    # After clear the allocator is fully drained except padding.
    assert kv.allocator.num_used == 1


def test_check_no_leaks_accounts_for_cached_blocks():
    kv, cache = _kv()
    prompt = tuple(range(8))
    _prefill(kv, cache, 0, prompt)
    kv.release_sequence(0)
    kv.check_no_leaks()  # cached blocks with exactly one ref are fine
    # A cached block with a stray extra reference is a leak.
    kv.allocator.share(cache.cached_blocks()[0])
    with pytest.raises(CacheError):
        kv.check_no_leaks()
