"""Scheduler fairness across heterogeneous request types.

Drives the scheduler directly (no VM — the engine's token emission is
mimicked by a tiny driver) so FCFS admission, chunked-budget sharing and
preemption-ordering properties can be asserted on exact iterations when
LLM, Whisper and denoise requests contend for the same block pool.
"""

import pytest

from repro.serve import (
    CacheError,
    ContinuousBatchingScheduler,
    PagedKVCache,
    Phase,
    RequestMetrics,
    RequestState,
    SchedulerConfig,
    Request,
    stream_seq_id,
)
from repro.serve.program import CROSS_STREAM


def _state(req_id, kind="llm", prompt=8, out=4, arrival=0.0):
    r = Request(req_id=req_id, arrival_s=arrival, prompt_len=prompt,
                output_len=out, kind=kind)
    return RequestState(
        request=r,
        metrics=RequestMetrics(req_id=req_id, arrival_s=arrival,
                               prompt_len=prompt, output_len=out, kind=kind),
    )


def _sched(num_blocks=64, page=4, **kwargs):
    kv = PagedKVCache(num_blocks, page)
    defaults = dict(max_num_seqs=8, max_num_batched_tokens=32,
                    prefill_chunk=4, eviction="swap")
    defaults.update(kwargs)
    return ContinuousBatchingScheduler(SchedulerConfig(**defaults), kv), kv


def _drive(sched, max_iters=500):
    """Run the scheduler to completion the way the engine would,
    collecting the kind of every preemption victim."""
    victim_kinds = []
    for _ in range(max_iters):
        if not sched.has_unfinished():
            return victim_kinds
        it = sched.schedule()
        assert not it.empty, "scheduler stalled"
        victim_kinds.extend(s.request.kind for s, _, _ in it.preempted)
        for state in it.decode:
            state.generated += 1
            if state.done:
                sched.finish(state)
        for state, _ in it.steps:
            state.generated += 1
            if state.done:
                sched.finish(state)
    raise AssertionError("scheduler did not converge")


def test_fcfs_admission_is_type_blind():
    sched, kv = _sched()
    states = [
        _state(0, "llm"),
        _state(1, "whisper"),
        _state(2, "denoise", prompt=0),
        _state(3, "llm"),
    ]
    for s in states:
        sched.add_request(s)
    sched.schedule()
    # Admission strictly follows queue order; no type is reordered ahead.
    assert [s.seq_id for s in sched.running] == [0, 1, 2, 3]
    # Denoise holds no chunked work: it is immediately a stepper.
    assert states[2].phase is Phase.DECODE
    assert states[0].phase is Phase.PREFILL
    assert states[1].phase is Phase.PREFILL


def test_chunked_budget_is_shared_across_types():
    sched, kv = _sched(max_num_batched_tokens=8)
    llm = _state(0, "llm", prompt=8)
    whisper = _state(1, "whisper", prompt=8)
    sched.add_request(llm)
    sched.add_request(whisper)
    it = sched.schedule()
    # One iteration's budget (8) is split between the LLM prefill chunk
    # and the Whisper encode chunk instead of serving the LLM first.
    assert [(s.seq_id, past, n) for s, past, n in it.prefill] == [(0, 0, 4)]
    assert [(s.seq_id, name, past, n) for s, name, past, n in it.chunks] \
        == [(1, "encode", 0, 4)]
    assert it.num_batched_tokens == 8
    it2 = sched.schedule()
    assert [(s.seq_id, past, n) for s, past, n in it2.prefill] == [(0, 4, 4)]
    assert [(s.seq_id, name, past, n) for s, name, past, n in it2.chunks] \
        == [(1, "encode", 4, 4)]
    # Third iteration: the LLM decodes while Whisper's atomic cross-KV
    # projection (t = 4 <= budget) runs in one chunk.
    it3 = sched.schedule()
    assert [s.seq_id for s in it3.decode] == [0]
    assert [(s.seq_id, name, past, n) for s, name, past, n in it3.chunks] \
        == [(1, "cross_project", 0, 4)]


def test_atomic_cross_projection_needs_full_budget():
    # Budget 4 covers the encode chunks but not the atomic projection of
    # t = 8 encoder positions: the request must wait, never run partially.
    sched, kv = _sched(max_num_batched_tokens=4, prefill_chunk=4)
    w = _state(0, "whisper", prompt=16)
    sched.add_request(w)
    for _ in range(4):  # 16 frames / 4-token chunks
        it = sched.schedule()
        assert all(name == "encode" for _, name, _, _ in it.chunks)
    for _ in range(3):
        it = sched.schedule()
        assert it.chunks == []  # 8 > 4: projection never scheduled
        assert w.phase is Phase.PREFILL
    big = ContinuousBatchingScheduler(
        SchedulerConfig(max_num_seqs=8, max_num_batched_tokens=8,
                        prefill_chunk=4), kv)
    big.waiting = sched.waiting
    big.running = sched.running
    it = big.schedule()
    assert [(name, past, n) for _, name, past, n in it.chunks] \
        == [("cross_project", 0, 8)]
    assert w.phase is Phase.DECODE


def test_encode_chunks_stay_even():
    # chunk_multiple=2: an odd budget remainder must round down, not
    # split a stacked frame pair.
    sched, kv = _sched(max_num_batched_tokens=32, prefill_chunk=3)
    w = _state(0, "whisper", prompt=8)
    sched.add_request(w)
    seen = []
    for _ in range(8):
        it = sched.schedule()
        seen.extend(n for _, name, _, n in it.chunks if name == "encode")
        if sum(seen) == 8:
            break
    assert sum(seen) == 8
    assert all(n % 2 == 0 for n in seen[:-1])


@pytest.mark.parametrize("eviction", ["swap", "recompute"])
def test_only_llm_requests_are_preemption_victims(eviction):
    # A tight pool forces evictions while an (unevictable) Whisper
    # request holds write-once cross KV: every victim must be an LLM.
    sched, kv = _sched(num_blocks=8, max_num_batched_tokens=16,
                       eviction=eviction)
    states = [_state(0, "whisper", prompt=8, out=6)]
    states += [_state(i, "llm", prompt=8, out=8) for i in range(1, 4)]
    states.append(_state(4, "denoise", prompt=0, out=4))
    for s in states:
        sched.add_request(s)
    victims = _drive(sched)
    assert victims, "expected pool pressure to force preemptions"
    assert set(victims) == {"llm"}
    kv.check_no_leaks()
    assert states[0].metrics.preemptions == 0
    assert states[4].metrics.preemptions == 0


def test_cross_stream_lives_and_dies_with_the_request():
    sched, kv = _sched(max_num_batched_tokens=32)
    w = _state(0, "whisper", prompt=8, out=2)
    sched.add_request(w)
    cross = stream_seq_id(0, CROSS_STREAM)
    assert cross != 0
    # Encode chunks hold no KV; the projection creates the cross stream.
    while not kv.has_sequence(cross):
        it = sched.schedule()
        assert not it.empty
    assert kv.length(cross) == 4  # t = frames // 2
    assert kv.has_sequence(0)     # self stream from admission
    _drive(sched)
    assert not kv.has_sequence(cross)
    assert not kv.has_sequence(0)
    kv.check_no_leaks()


def test_unevictable_admission_is_gated_on_lifetime_kv():
    # Two whisper requests whose combined lifetime KV (cross + self
    # streams) exceeds the pool are admitted one at a time: unevictable
    # blocks can never be preempted away, so over-admitting would wedge
    # the pool.  FCFS: the LLM behind the gated whisper also waits.
    sched, kv = _sched(num_blocks=5, max_num_batched_tokens=64)
    # lifetime(whisper, frames=8, out=8) = cross ceil(4/4) + self
    # ceil(8/4) = 3 blocks; two of them exceed the 4 usable blocks.
    w1, w2 = (_state(i, "whisper", prompt=8, out=8) for i in (0, 1))
    llm = _state(2, "llm", prompt=4, out=2)
    for s in (w1, w2, llm):
        sched.add_request(s)
    assert w1.program.lifetime_kv_blocks(4) == 3
    sched.schedule()
    assert [s.seq_id for s in sched.running] == [0]
    assert sched.unevictable_blocks == 3
    victims = _drive(sched)
    assert victims == []
    assert sched.unevictable_blocks == 0
    kv.check_no_leaks()


def test_impossible_decode_growth_fails_fast_instead_of_thrashing():
    # A request whose prompt fits but whose prompt + output KV exceeds
    # the whole pool (minus the pinned padding page) used to livelock
    # under the swap policy: self-preempt, swap back in, repeat forever.
    # It must raise instead.
    sched, kv = _sched(num_blocks=6, eviction="swap",
                       max_num_batched_tokens=64)
    # 5 usable blocks = 20 tokens; this request grows to 12 + 12 = 24.
    sched.add_request(_state(0, "llm", prompt=12, out=12))
    with pytest.raises(CacheError, match="usable"):
        _drive(sched)


def test_denoise_requests_use_no_kv():
    sched, kv = _sched(num_blocks=4)
    d = _state(0, "denoise", prompt=0, out=5)
    sched.add_request(d)
    it = sched.schedule()
    assert [(s.seq_id, ctx) for s, ctx in it.steps] == [(0, 0)]
    assert not kv.has_sequence(0)
    _drive(sched)
    assert d.generated == 5
    kv.check_no_leaks()
