"""DP cluster router: determinism, policies, dp=1 identity, aggregation."""

import json

import pytest

from repro.models import TINY_LLAMA
from repro.obs import validate_chrome_trace
from repro.runtime import TEST_DEVICE
from repro.serve import (
    ClusterConfig,
    EngineConfig,
    Request,
    SchedulerConfig,
    WorkloadConfig,
    generate,
    make_policy,
    serve_cluster,
    serve_workload,
)
from repro.serve.cli import main as cli_main


def _engine_config(num_blocks=64, **sched_kwargs):
    sched = SchedulerConfig(
        max_num_seqs=8, max_num_batched_tokens=128, prefill_chunk=16,
        **sched_kwargs,
    )
    return EngineConfig(page_size=4, num_blocks=num_blocks, scheduler=sched)


def _workload(seed=0, n=24, rate=200.0):
    return WorkloadConfig(
        num_requests=n, seed=seed, arrival_rate=rate,
        prompt_min=16, prompt_max=40, output_min=2, output_max=12,
        prefix_families=3, prefix_len=12,
    )


def _serve(requests, dp, policy, **cluster_kwargs):
    return serve_cluster(
        TINY_LLAMA, TEST_DEVICE, requests,
        ClusterConfig(dp=dp, policy=policy, engine=_engine_config(),
                      **cluster_kwargs),
    )


def _family_trace():
    """Two prompt families with 32-token shared prefixes.  The first
    two arrivals overlap (so least-loaded fallback spreads them); the
    rest are spaced out so every replica is idle — and its prefix cache
    warm — when the router decides."""
    fam_a = tuple(range(1, 33))
    fam_b = tuple(range(101, 133))
    reqs = []
    times = [0.0, 1e-4, 1.0, 1.01, 2.0, 2.01]
    for i, t in enumerate(times):
        prefix = fam_a if i % 2 == 0 else fam_b
        tokens = prefix + tuple(1000 + 10 * i + j for j in range(8))
        reqs.append(Request(
            req_id=i, arrival_s=t, prompt_len=len(tokens),
            output_len=4, prompt_tokens=tokens,
        ))
    return reqs


class TestRouting:
    def test_round_robin_cycles_in_arrival_order(self):
        report = _serve(_family_trace(), dp=3, policy="round_robin")
        assert report.assignments == [
            (0, 0), (1, 1), (2, 2), (3, 0), (4, 1), (5, 2)]

    def test_least_loaded_spreads_simultaneous_arrivals(self):
        reqs = [
            Request(req_id=i, arrival_s=0.0, prompt_len=16, output_len=4)
            for i in range(4)
        ]
        report = _serve(reqs, dp=2, policy="least_loaded")
        # All four arrive at t=0: in-flight feedback alternates replicas.
        assert [idx for _, idx in report.assignments] == [0, 1, 0, 1]

    def test_prefix_affinity_keeps_each_family_on_one_replica(self):
        report = _serve(_family_trace(), dp=2, policy="prefix_affinity")
        owner = dict(report.assignments)
        fam_a_replicas = {owner[i] for i in (0, 2, 4)}
        fam_b_replicas = {owner[i] for i in (1, 3, 5)}
        # After the cold start each family sticks to the replica that
        # cached its prefix, and the two families land on different
        # replicas (the overlapping cold arrivals forced the split).
        assert len(fam_a_replicas) == 1
        assert len(fam_b_replicas) == 1
        assert fam_a_replicas != fam_b_replicas

    def test_prefix_affinity_beats_round_robin_on_hit_rate(self):
        requests = generate(_workload(n=32, rate=400.0))
        aff = _serve(requests, dp=2, policy="prefix_affinity")
        rr = _serve(requests, dp=2, policy="round_robin")
        assert (aff.summary["prefix_cache"]["hit_rate"]
                >= rr.summary["prefix_cache"]["hit_rate"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_policy("fastest_fingers")
        with pytest.raises(ValueError, match="unknown routing policy"):
            ClusterConfig(dp=2, policy="fastest_fingers")

    def test_dp_must_be_positive(self):
        with pytest.raises(ValueError, match="dp must be >= 1"):
            ClusterConfig(dp=0)


class TestDeterminismAndIdentity:
    def test_same_trace_same_assignments_and_report(self):
        r1 = _serve(generate(_workload()), dp=2, policy="prefix_affinity")
        r2 = _serve(generate(_workload()), dp=2, policy="prefix_affinity")
        assert r1.assignments == r2.assignments
        assert r1.to_json(sort_keys=True) == r2.to_json(sort_keys=True)
        r3 = _serve(generate(_workload(seed=1)), dp=2,
                    policy="prefix_affinity")
        assert r1.to_json(sort_keys=True) != r3.to_json(sort_keys=True)

    def test_dp1_replica_report_byte_identical_to_single_engine(self):
        requests = generate(_workload())
        single = serve_workload(
            TINY_LLAMA, TEST_DEVICE, requests, _engine_config())
        crep = _serve(requests, dp=1, policy="round_robin")
        replica = crep.replica_reports[0]
        assert (single.to_json(sort_keys=True)
                == replica.to_json(sort_keys=True))
        assert (json.dumps(single.chrome_trace(), sort_keys=True)
                == json.dumps(replica.chrome_trace(), sort_keys=True))
        # Vacuous balance: one replica is always perfectly balanced.
        assert crep.summary["routing"]["load_balance_entropy"] == 1.0


class TestAggregation:
    def test_fleet_summary_merges_replica_counters(self):
        requests = generate(_workload())
        report = _serve(requests, dp=2, policy="prefix_affinity")
        s = report.summary
        assert s["num_requests"] == len(requests)
        assert s["num_finished"] == len(requests)
        counts = s["routing"]["assignments"]
        assert sum(counts) == len(requests)
        assert len(counts) == 2
        assert 0.0 <= s["routing"]["load_balance_entropy"] <= 1.0
        assert len(s["per_replica"]) == 2
        assert (sum(r["num_requests"] for r in s["per_replica"])
                == len(requests))
        # Fleet cache counters are the per-replica sums, rates recomputed.
        reps = [r.summary["prefix_cache"] for r in report.replica_reports]
        assert s["prefix_cache"]["lookups"] == sum(
            r["lookups"] for r in reps)
        assert s["prefix_cache"]["hits"] == sum(r["hits"] for r in reps)
        assert s["fleet_slo"]["finished"] == len(requests)

    def test_unrouted_replicas_still_report(self):
        # Two spaced same-family requests at dp=3: affinity parks both
        # on one replica; the idle replicas report an empty run.
        fam = tuple(range(1, 33))
        reqs = [
            Request(req_id=i, arrival_s=float(i), prompt_len=36,
                    output_len=4, prompt_tokens=fam + (500 + i, 501, 502, 503))
            for i in range(2)
        ]
        report = _serve(reqs, dp=3, policy="prefix_affinity")
        assert len(report.replica_reports) == 3
        assert report.summary["num_requests"] == 2
        idle = [r for r in report.summary["per_replica"]
                if r["num_requests"] == 0]
        assert len(idle) == 2

    def test_merged_trace_one_process_block_per_replica(self):
        report = _serve(generate(_workload()), dp=2,
                        policy="round_robin")
        trace = validate_chrome_trace(report.chrome_trace())
        pids = {ev["pid"] for ev in trace["traceEvents"]}
        # Replica i owns pid block [16*i, 16*(i+1)).
        assert any(pid < 16 for pid in pids)
        assert any(16 <= pid < 32 for pid in pids)
        assert all(pid < 32 for pid in pids)
        names = {
            ev["args"]["name"]
            for ev in trace["traceEvents"]
            if ev.get("ph") == "M" and ev.get("name") == "process_name"
        }
        assert any(n.startswith("replica0 ") for n in names)
        assert any(n.startswith("replica1 ") for n in names)


class TestClusterCLIValidation:
    def test_rejects_nonpositive_dp(self):
        with pytest.raises(SystemExit, match="--dp must be >= 1"):
            cli_main(["--dp", "0"])

    def test_rejects_unknown_route(self):
        with pytest.raises(SystemExit, match="not a routing policy"):
            cli_main(["--route", "hashring"])

    def test_rejects_telemetry_with_dp(self):
        with pytest.raises(SystemExit, match="--telemetry"):
            cli_main(["--dp", "2", "--telemetry", "t.json"])
        with pytest.raises(SystemExit, match="--prometheus"):
            cli_main(["--dp", "2", "--prometheus", "m.prom"])

    def test_rejects_hetero_mix_with_dp(self):
        with pytest.raises(SystemExit, match="LLM-only"):
            cli_main(["--dp", "2", "--whisper-frac", "0.5"])
        with pytest.raises(SystemExit, match="LLM-only"):
            cli_main(["--dp", "2", "--denoise-frac", "0.5"])

    def test_route_aliases_accept_short_and_full_names(self):
        from repro.serve.cli import ROUTE_ALIASES, build_parser

        assert ROUTE_ALIASES["rr"] == "round_robin"
        assert ROUTE_ALIASES["lb"] == "least_loaded"
        assert ROUTE_ALIASES["affinity"] == "prefix_affinity"
        args = build_parser().parse_args(["--dp", "2", "--route", "lb"])
        assert args.dp == 2 and args.route == "lb"
