"""Heterogeneous serving: mixed LLM + Whisper + denoise on one engine."""

import json

import pytest

from repro.models import TINY_DENOISE, TINY_LLAMA, TINY_WHISPER
from repro.obs import validate_chrome_trace
from repro.runtime import TEST_DEVICE
from repro.serve import (
    EngineConfig,
    SchedulerConfig,
    ServingEngine,
    WorkloadConfig,
    generate,
)


def _engine(num_blocks=64, policy="swap", **sched_kwargs):
    sched = SchedulerConfig(
        max_num_seqs=8, max_num_batched_tokens=64, prefill_chunk=8,
        eviction=policy, **sched_kwargs,
    )
    return ServingEngine(
        TINY_LLAMA, TEST_DEVICE,
        EngineConfig(page_size=4, num_blocks=num_blocks, scheduler=sched),
        whisper_config=TINY_WHISPER,
        denoise_config=TINY_DENOISE,
    )


def _workload(seed=1, n=24, rate=100.0, **kwargs):
    defaults = dict(
        num_requests=n, seed=seed, arrival_rate=rate,
        prompt_min=4, prompt_max=16, output_min=2, output_max=10,
        whisper_fraction=0.3, denoise_fraction=0.2,
    )
    defaults.update(kwargs)
    return WorkloadConfig(**defaults)


def test_mixed_run_finishes_with_per_type_metrics():
    wl = generate(_workload())
    kinds = {r.kind for r in wl}
    assert kinds == {"llm", "whisper", "denoise"}
    report = _engine().run(wl)
    s = report.summary
    assert s["num_finished"] == len(wl)
    assert s["kv_pool"]["leaked_blocks"] == 0
    per_type = s["per_type"]
    assert set(per_type) == kinds
    for kind in kinds:
        row = per_type[kind]
        assert row["num_finished"] == sum(1 for r in wl if r.kind == kind)
        assert row["ttft_s"]["p50"] > 0
        assert row["tpot_s"]["p50"] is None or row["tpot_s"]["p50"] > 0
    # Request dicts carry the kind tag for non-LLM requests only.
    by_id = {d["req_id"]: d for d in report.to_dict()["requests"]}
    for r in wl:
        if r.kind == "llm":
            assert "kind" not in by_id[r.req_id]
        else:
            assert by_id[r.req_id]["kind"] == r.kind


def test_mixed_runs_are_deterministic():
    wl = generate(_workload())
    r1 = _engine().run(wl)
    r2 = _engine().run(wl)
    assert r1.to_json(sort_keys=True) == r2.to_json(sort_keys=True)
    assert (
        json.dumps(r1.chrome_trace(), sort_keys=True)
        == json.dumps(r2.chrome_trace(), sort_keys=True)
    )


@pytest.mark.parametrize("policy", ["swap", "recompute"])
def test_mixed_pressure_preempts_only_llms_and_stays_leak_free(policy):
    # Effectively simultaneous arrivals: the pool (11 usable blocks)
    # must thrash under 8 concurrent sequences of up to 44 KV tokens.
    wl = generate(_workload(seed=3, n=16, rate=1e6, prompt_max=20,
                            output_min=2, output_max=24,
                            whisper_fraction=0.25, denoise_fraction=0.25))
    report = _engine(num_blocks=12, policy=policy).run(wl)
    s = report.summary
    assert s["num_finished"] == len(wl)
    assert s["preemptions"] > 0
    assert s["kv_pool"]["leaked_blocks"] == 0
    # Write-once cross KV makes whisper (and KV-free denoise) requests
    # ineligible as preemption victims.
    for m in report.requests:
        if m.kind != "llm":
            assert m.preemptions == 0


def test_hetero_trace_has_phase_slices_per_request(tmp_path):
    wl = generate(_workload(n=12))
    report = _engine().run(wl)
    trace = report.export_chrome_trace(str(tmp_path / "hetero.json"))
    validate_chrome_trace(trace)
    events = trace["traceEvents"]

    def names_for(req_id):
        return {e["name"] for e in events
                if e["ph"] == "X" and e["pid"] == 1 and e["tid"] == req_id}

    for r in wl:
        if r.kind == "whisper":
            assert {"encode", "cross_project", "decode"} <= names_for(r.req_id)
        elif r.kind == "denoise":
            assert names_for(r.req_id) == {"denoise"}
        else:
            assert "decode" in names_for(r.req_id)
    # Heterogeneous iteration records expose step/chunk counts.
    assert any(it.get("steps", 0) > 0 for it in report.iterations)
    assert any(it.get("chunk_tokens", 0) > 0 for it in report.iterations)


def test_llm_only_reports_keep_the_legacy_schema():
    wl = generate(_workload(whisper_fraction=0.0, denoise_fraction=0.0))
    report = _engine().run(wl)
    d = report.to_dict()
    assert "per_type" not in d["summary"]
    assert all("kind" not in r for r in d["requests"])
    assert all("steps" not in it and "chunk_tokens" not in it
               for it in d["iterations"])


def test_requests_without_a_runner_are_rejected():
    engine = ServingEngine(
        TINY_LLAMA, TEST_DEVICE,
        EngineConfig(page_size=4, num_blocks=64),
    )
    wl = generate(_workload(n=8, whisper_fraction=1.0,
                            denoise_fraction=0.0))
    assert all(r.kind == "whisper" for r in wl)
    with pytest.raises(ValueError, match="whisper"):
        engine.run(wl)
