"""Workload generator determinism/round-trip and metric definitions."""

import pytest

from repro.serve import (
    RequestMetrics,
    WorkloadConfig,
    generate,
    percentile,
    summarize,
    workload_from_json,
    workload_to_json,
)


def test_one_seed_reproduces_the_whole_trace():
    cfg = WorkloadConfig(num_requests=50, seed=7, arrival="gamma",
                         arrival_cv=3.0)
    assert generate(cfg) == generate(cfg)
    assert generate(cfg) != generate(WorkloadConfig(num_requests=50, seed=8,
                                                    arrival="gamma",
                                                    arrival_cv=3.0))


def test_json_round_trip_is_exact():
    cfg = WorkloadConfig(num_requests=20, seed=3, arrival="poisson",
                         arrival_rate=11.5)
    requests = generate(cfg)
    text = workload_to_json(cfg, requests)
    cfg2, requests2 = workload_from_json(text)
    assert cfg2 == cfg
    assert requests2 == requests
    # Regenerating from the deserialized config also matches.
    assert generate(cfg2) == requests


def test_arrival_processes():
    poisson = WorkloadConfig(num_requests=2000, seed=0, arrival="poisson",
                             arrival_rate=10.0)
    arrivals = [r.arrival_s for r in generate(poisson)]
    gaps = [b - a for a, b in zip([0.0] + arrivals, arrivals)]
    mean = sum(gaps) / len(gaps)
    assert mean == pytest.approx(0.1, rel=0.1)
    # Gamma with cv=3 is burstier: higher variance at the same mean.
    bursty = WorkloadConfig(num_requests=2000, seed=0, arrival="gamma",
                            arrival_rate=10.0, arrival_cv=3.0)
    bgaps = [r.arrival_s for r in generate(bursty)]
    bgaps = [b - a for a, b in zip([0.0] + bgaps, bgaps)]
    bmean = sum(bgaps) / len(bgaps)
    assert bmean == pytest.approx(0.1, rel=0.15)
    var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    bvar = sum((g - bmean) ** 2 for g in bgaps) / len(bgaps)
    assert bvar > 3 * var

    with pytest.raises(ValueError):
        generate(WorkloadConfig(arrival="uniform"))


def test_length_ranges_respected():
    cfg = WorkloadConfig(num_requests=300, seed=1, prompt_min=3,
                         prompt_max=9, output_min=2, output_max=5)
    for r in generate(cfg):
        assert 3 <= r.prompt_len <= 9
        assert 2 <= r.output_len <= 5


def test_shared_prefix_mode_materializes_family_prompts():
    cfg = WorkloadConfig(num_requests=40, seed=2, prompt_min=10,
                         prompt_max=24, prefix_families=3, prefix_len=8)
    requests = generate(cfg)
    prefixes = set()
    for r in requests:
        assert r.prompt_tokens is not None
        assert len(r.prompt_tokens) == r.prompt_len
        prefixes.add(r.prompt_tokens[:8])
    # Exactly the configured number of distinct family prefixes appears.
    assert len(prefixes) == 3
    # Legacy mode never materializes token ids.
    for r in generate(WorkloadConfig(num_requests=5, seed=2)):
        assert r.prompt_tokens is None


def test_shared_prefix_mode_preserves_legacy_streams():
    """Prefix draws happen after the legacy draws, so the length/arrival
    trace for a seed is identical with and without prefix mode."""
    legacy = generate(WorkloadConfig(num_requests=30, seed=9))
    shared = generate(WorkloadConfig(num_requests=30, seed=9,
                                     prefix_families=2, prefix_len=4))
    for a, b in zip(legacy, shared):
        assert (a.arrival_s, a.prompt_len, a.output_len) == (
            b.arrival_s, b.prompt_len, b.output_len)


def test_shared_prefix_json_round_trip_is_exact():
    cfg = WorkloadConfig(num_requests=12, seed=5, prompt_min=10,
                         prompt_max=20, prefix_families=2, prefix_len=6)
    requests = generate(cfg)
    cfg2, requests2 = workload_from_json(workload_to_json(cfg, requests))
    assert cfg2 == cfg
    assert requests2 == requests
    assert generate(cfg2) == requests


def test_shared_prefix_mode_validates_config():
    with pytest.raises(ValueError):
        generate(WorkloadConfig(prefix_families=2, prefix_len=0))
    with pytest.raises(ValueError):
        # prefix_len must leave at least one private suffix token.
        generate(WorkloadConfig(prompt_min=8, prefix_families=2,
                                prefix_len=8))


def test_hetero_mix_draws_preserve_legacy_streams():
    base = WorkloadConfig(num_requests=40, seed=11)
    mixed = WorkloadConfig(num_requests=40, seed=11,
                           whisper_fraction=0.25, denoise_fraction=0.25)
    legacy = generate(base)
    hetero = generate(mixed)
    kinds = {r.kind for r in hetero}
    assert kinds == {"llm", "whisper", "denoise"}
    for old, new in zip(legacy, hetero):
        # Arrivals come from the same stream in the same order; LLM
        # requests keep their exact legacy lengths.
        assert new.arrival_s == old.arrival_s
        if new.kind == "llm":
            assert (new.prompt_len, new.output_len) == \
                (old.prompt_len, old.output_len)
        elif new.kind == "whisper":
            assert new.prompt_len % 2 == 0
            assert 8 <= new.prompt_len <= 12
            assert new.output_len == old.output_len
        else:
            assert new.prompt_len == 0
            assert 4 <= new.output_len <= 16


def test_hetero_mix_round_trips_and_validates():
    cfg = WorkloadConfig(num_requests=12, seed=2, whisper_fraction=0.5)
    requests = generate(cfg)
    cfg2, rt = workload_from_json(workload_to_json(cfg, requests))
    assert cfg2 == cfg and rt == requests
    # Pure-LLM requests serialize without a "kind" key (legacy format).
    assert all("kind" not in r.to_dict()
               for r in generate(WorkloadConfig(num_requests=4)))
    with pytest.raises(ValueError):
        generate(WorkloadConfig(whisper_fraction=0.7, denoise_fraction=0.7))
    with pytest.raises(ValueError):
        generate(WorkloadConfig(whisper_fraction=0.2, prefix_families=2,
                                prefix_len=4))


def test_nearest_rank_percentile():
    data = [10.0, 20.0, 30.0, 40.0]
    assert percentile(data, 50) == 20.0
    assert percentile(data, 75) == 30.0
    assert percentile(data, 100) == 40.0
    assert percentile(data, 1) == 10.0
    # Always an actual data point, never interpolated.
    assert percentile(data, 60) in data


def test_percentile_empty_series_is_none():
    # None, not NaN: NaN silently poisons JSON artifacts and forced
    # every caller to guard.
    for p in (0, 1, 50, 99, 100):
        assert percentile([], p) is None


def test_percentile_single_sample_is_that_sample():
    # Nearest rank is well defined for n = 1: every percentile is the
    # one sample (rank clamps to 1).
    for p in (0, 1, 50, 99, 100):
        assert percentile([7.25], p) == 7.25


def test_summarize_with_no_finished_requests_is_json_safe():
    import json

    unfinished = RequestMetrics(req_id=0, arrival_s=0.0, prompt_len=4,
                                output_len=4)
    s = summarize([unfinished])
    assert s["num_finished"] == 0
    for key in ("ttft_s", "tpot_s", "itl_s"):
        assert s[key] == {"mean": None, "p50": None, "p90": None,
                          "p99": None}
    # Round-trips through strict JSON (NaN would need allow_nan).
    json.loads(json.dumps(s, allow_nan=False))


def test_summarize_single_request_needs_no_guards():
    m = _metrics(0.0, [0.5, 0.6])
    s = summarize([m])
    assert s["ttft_s"]["p50"] == pytest.approx(0.5)
    assert s["ttft_s"]["p99"] == pytest.approx(0.5)
    assert s["tpot_s"]["mean"] == pytest.approx(0.1)


def test_per_type_breakdown_gated_on_heterogeneous_runs():
    llm = _metrics(0.0, [0.1, 0.2])
    assert "per_type" not in summarize([llm])

    whisper = _metrics(0.0, [0.3, 0.4, 0.5])
    whisper.kind = "whisper"
    s = summarize([llm, whisper])
    assert set(s["per_type"]) == {"llm", "whisper"}
    row = s["per_type"]["whisper"]
    assert row["num_requests"] == row["num_finished"] == 1
    assert row["total_output_tokens"] == 3
    assert row["ttft_s"]["p50"] == pytest.approx(0.3)
    assert s["per_type"]["llm"]["total_output_tokens"] == 2


def test_per_type_breakdown_emits_declared_but_absent_kinds():
    """``kinds=`` names every type the *workload* contained; a type whose
    requests never reached the engine still appears with zero counts and
    ``None`` distribution fields instead of vanishing (sweep consumers
    diff summaries and rely on a stable key set)."""
    import json

    llm = _metrics(0.0, [0.1, 0.2])
    s = summarize([llm], kinds=["llm", "whisper"])
    assert set(s["per_type"]) == {"llm", "whisper"}
    row = s["per_type"]["whisper"]
    assert row["num_requests"] == row["num_finished"] == 0
    assert row["total_output_tokens"] == 0
    assert row["preemptions"] == 0
    for key in ("ttft_s", "tpot_s", "itl_s"):
        assert row[key] == {"mean": None, "p50": None, "p90": None,
                            "p99": None}
    json.loads(json.dumps(s, allow_nan=False))
    # Declaring only the kinds actually present keeps the homogeneous
    # gate: an LLM-only run stays byte-identical to the legacy format.
    assert "per_type" not in summarize([llm], kinds=["llm"])


def _metrics(arrival, token_times):
    m = RequestMetrics(req_id=0, arrival_s=arrival, prompt_len=4,
                       output_len=len(token_times))
    m.token_times = list(token_times)
    m.finish_s = token_times[-1]
    return m


def test_request_metric_definitions():
    m = _metrics(1.0, [1.5, 1.6, 1.8, 2.1])
    assert m.ttft == pytest.approx(0.5)
    # TPOT: span after first token / (tokens - 1).
    assert m.tpot == pytest.approx((2.1 - 1.5) / 3)
    assert m.itl == pytest.approx([0.1, 0.2, 0.3])
    assert m.e2e_latency == pytest.approx(1.1)


def test_goodput_counts_only_within_slo():
    fast = _metrics(0.0, [0.1, 0.15, 0.2])
    slow_ttft = _metrics(0.0, [5.0, 5.1, 5.2])
    slow_tpot = _metrics(0.0, [0.1, 1.1, 2.1])
    s = summarize([fast, slow_ttft, slow_tpot],
                  slo_ttft_s=1.0, slo_tpot_s=0.5)
    assert s["num_finished"] == 3
    assert s["slo"]["attained"] == 1
    makespan = s["makespan_s"]
    assert s["goodput_requests_per_s"] == pytest.approx(1 / makespan)
    assert s["throughput_requests_per_s"] == pytest.approx(3 / makespan)
