"""Paper-configuration smoke tests (abstract mode).

Every model the evaluation uses compiles through the full pipeline at its
real size and executes a decode step; these guard the model zoo against
regressions that only appear at scale (symbolic-shape plumbing, GQA
configs, tied embeddings, quantized packing arithmetic).
"""

import dataclasses

import numpy as np
import pytest

from repro import transform
from repro.models import (
    GEMMA_7B,
    LLAMA2_7B,
    LLAMA3_8B,
    PHI3_MINI,
    QWEN2_7B,
    REDPAJAMA_3B,
    build_llama,
)
from repro.runtime import NDArray, RTX_4090, VirtualMachine

CONFIGS = [LLAMA3_8B, GEMMA_7B, QWEN2_7B, PHI3_MINI, LLAMA2_7B, REDPAJAMA_3B]


@pytest.mark.parametrize("cfg", CONFIGS, ids=[c.name for c in CONFIGS])
def test_paper_config_compiles_and_decodes(cfg):
    exported = build_llama(cfg)
    # Parameter count sanity (within 25% of the model's nominal size).
    nominal = {
        "Llama3-8B": 8.0e9, "Gemma1.1-7B": 8.5e9, "Qwen2-7B": 7.6e9,
        "Phi3-mini-4k": 3.8e9, "Llama2-7B": 6.7e9, "RedPajama-3B": 2.8e9,
    }[cfg.name]
    params = exported.module.num_parameters()
    assert nominal * 0.75 < params < nominal * 1.3, f"{params/1e9:.2f}B"

    exe = transform.build(
        exported.mod, RTX_4090,
        sym_var_upper_bounds={"b": 8, "s": 256, "m": 256},
    )
    vm = VirtualMachine(exe, RTX_4090, concrete=False)
    weights = exported.abstract_params()
    caches = [
        NDArray.abstract((1, 64, cfg.num_kv_heads, cfg.head_dim), cfg.dtype)
        for _ in range(2 * cfg.num_layers)
    ]
    out = vm.run("decode", NDArray.abstract((1, 1), "i64"), *caches, *weights)
    logits = out[0]
    assert logits.shape == (1, 1, cfg.vocab_size)
    assert out[1].shape[1] == 65  # cache grew by one

    # Static plan + graph capture in place for the decode loop.
    assert exe.functions["decode"].attrs.get("memory_planned") == "static"
    assert exe.functions["decode"].attrs.get("cuda_graph") is True

    # Steady state replays.
    vm.run("decode", NDArray.abstract((1, 1), "i64"), *caches, *weights)
    assert vm.stats.graph_replays >= 1


def test_quantized_paper_config():
    cfg = dataclasses.replace(
        LLAMA3_8B, name="Llama3-8B-q4", quantize_bits=4, context_length=2048
    )
    exported = build_llama(cfg)
    # Quantized weights: ~4.5 bits/param on projections, fp16 embeddings —
    # roughly a third of the 16 GB fp16 footprint.
    fp16_bytes = 2 * 8.03e9
    assert exported.param_bytes() < fp16_bytes * 0.45

    exe = transform.build(
        exported.mod, RTX_4090, sym_var_upper_bounds={"b": 1, "s": 64, "m": 128},
    )
    vm = VirtualMachine(exe, RTX_4090, concrete=False)
    caches = [
        NDArray.abstract((1, 32, cfg.num_kv_heads, cfg.head_dim), cfg.dtype)
        for _ in range(2 * cfg.num_layers)
    ]
    out = vm.run("decode", NDArray.abstract((1, 1), "i64"), *caches,
                 *exported.abstract_params())
    assert out[0].shape == (1, 1, cfg.vocab_size)
    # All matmul projections run as fused dequant-matmuls, never library
    # GEMMs; only norms (2/layer) + attention (1/layer) + final norm may
    # dispatch.
    assert vm.stats.lib_calls <= 3 * cfg.num_layers + 2
