"""Whisper (encoder-decoder) and LLaVA (multimodal) end-to-end tests."""

import numpy as np
import pytest

from repro import transform
from repro.models import (
    TINY_LLAVA,
    TINY_WHISPER,
    build_llava,
    build_whisper,
)
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine

RNG = np.random.default_rng(23)


@pytest.fixture(scope="module")
def whisper_vm():
    exported = build_whisper(TINY_WHISPER)
    exported.module.initialize(seed=4, scale=0.1)
    exe = transform.build(exported.mod, TEST_DEVICE, enable_library_dispatch=False)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    return vm, exported.concrete_params()


@pytest.fixture(scope="module")
def llava_vm():
    exported = build_llava(TINY_LLAVA)
    exported.module.initialize(seed=5, scale=0.1)
    exe = transform.build(exported.mod, TEST_DEVICE, enable_library_dispatch=False)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    return vm, exported.concrete_params()


def _empty_whisper_caches(batch):
    cfg = TINY_WHISPER
    return [
        NDArray.from_numpy(
            np.zeros((batch, 0, cfg.num_heads, cfg.head_dim), np.float32)
        )
        for _ in range(2 * cfg.decoder_layers)
    ]


class TestWhisper:
    def test_encode_shapes(self, whisper_vm):
        vm, params = whisper_vm
        cfg = TINY_WHISPER
        mel = RNG.standard_normal((2, 12, cfg.n_mel)).astype(np.float32)
        cross = vm.run("encode", NDArray.from_numpy(mel), *params)
        assert len(cross) == 2 * cfg.decoder_layers
        # 2x temporal downsampling in the frontend.
        assert cross[0].shape == (2, 6, cfg.num_heads, cfg.head_dim)

    def test_decode_steps_grow_cache(self, whisper_vm):
        vm, params = whisper_vm
        cfg = TINY_WHISPER
        mel = RNG.standard_normal((1, 12, cfg.n_mel)).astype(np.float32)
        cross = list(vm.run("encode", NDArray.from_numpy(mel), *params))
        caches = _empty_whisper_caches(1)
        for step in range(3):
            tok = NDArray.from_numpy(np.array([[step + 1]], dtype=np.int64))
            out = vm.run("decode", tok, *caches, *cross, *params)
            logits, caches = out[0], list(out[1:])
            assert logits.shape == (1, 1, cfg.vocab_size)
            assert caches[0].shape[1] == step + 1
            assert np.isfinite(logits.numpy()).all()

    def test_decode_depends_on_audio(self, whisper_vm):
        """Cross-attention must actually flow: different audio, different
        logits for the same token."""
        vm, params = whisper_vm
        cfg = TINY_WHISPER
        tok = NDArray.from_numpy(np.array([[3]], dtype=np.int64))

        def logits_for(seed):
            mel = np.random.default_rng(seed).standard_normal(
                (1, 12, cfg.n_mel)
            ).astype(np.float32)
            cross = list(vm.run("encode", NDArray.from_numpy(mel), *params))
            out = vm.run("decode", tok, *_empty_whisper_caches(1), *cross, *params)
            return out[0].numpy()

        a, b = logits_for(0), logits_for(1)
        assert not np.allclose(a, b)

    def test_variable_audio_length(self, whisper_vm):
        """One compile serves different audio lengths (symbolic frames)."""
        vm, params = whisper_vm
        cfg = TINY_WHISPER
        for frames in (4, 8, 12):
            mel = RNG.standard_normal((1, frames, cfg.n_mel)).astype(np.float32)
            cross = vm.run("encode", NDArray.from_numpy(mel), *params)
            assert cross[0].shape[1] == frames // 2


class TestLlava:
    def test_image_embeddings_shape(self, llava_vm):
        vm, params = llava_vm
        vis, llm = TINY_LLAVA.vision, TINY_LLAVA.llm
        patches = RNG.standard_normal(
            (1, vis.num_patches, vis.patch_dim)
        ).astype(np.float32)
        embeds = vm.run("encode_image", NDArray.from_numpy(patches), *params)
        assert embeds.shape == (1, vis.num_patches, llm.hidden_size)

    def test_full_multimodal_generation(self, llava_vm):
        """encode image -> prefill embeddings -> decode text tokens."""
        vm, params = llava_vm
        vis, llm = TINY_LLAVA.vision, TINY_LLAVA.llm
        patches = RNG.standard_normal(
            (1, vis.num_patches, vis.patch_dim)
        ).astype(np.float32)
        embeds = vm.run("encode_image", NDArray.from_numpy(patches), *params)

        caches = [
            NDArray.from_numpy(
                np.zeros((1, 0, llm.num_kv_heads, llm.head_dim), np.float32)
            )
            for _ in range(2 * llm.num_layers)
        ]
        out = vm.run("prefill_embeds", embeds, *caches, *params)
        logits, caches = out[0], list(out[1:])
        assert caches[0].shape[1] == vis.num_patches

        for _ in range(2):
            tok = int(logits.numpy()[0, -1].argmax())
            out = vm.run(
                "decode",
                NDArray.from_numpy(np.array([[tok]], dtype=np.int64)),
                *caches, *params,
            )
            logits, caches = out[0], list(out[1:])
        assert np.isfinite(logits.numpy()).all()

    def test_image_changes_generation(self, llava_vm):
        vm, params = llava_vm
        vis, llm = TINY_LLAVA.vision, TINY_LLAVA.llm

        def first_logits(seed):
            patches = np.random.default_rng(seed).standard_normal(
                (1, vis.num_patches, vis.patch_dim)
            ).astype(np.float32)
            embeds = vm.run("encode_image", NDArray.from_numpy(patches), *params)
            caches = [
                NDArray.from_numpy(
                    np.zeros((1, 0, llm.num_kv_heads, llm.head_dim), np.float32)
                )
                for _ in range(2 * llm.num_layers)
            ]
            out = vm.run("prefill_embeds", embeds, *caches, *params)
            return out[0].numpy()

        assert not np.allclose(first_logits(0), first_logits(1))
