"""End-to-end 4-bit quantized model vs dequantized NumPy reference."""

import dataclasses

import numpy as np
import pytest

from repro import transform
from repro.frontend import dequantize_weight
from repro.models import TINY_LLAMA, ReferenceLlama, build_llama, empty_caches
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine

RNG = np.random.default_rng(19)

TINY_Q4 = dataclasses.replace(
    TINY_LLAMA, name="tiny-llama-q4", quantize_bits=4, quantize_group=8
)


def _quantize_initialize(module):
    """Initialize every QuantizedLinear from a float weight (so a NumPy
    reference with the dequantized weights exists)."""
    from repro.frontend import QuantizedLinear

    rng = np.random.default_rng(3)
    reference_weights = {}

    def walk(mod, prefix):
        for name, value in vars(mod).items():
            path = f"{prefix}.{name}" if prefix else name
            if isinstance(value, QuantizedLinear):
                weight = rng.standard_normal(
                    (value.in_features, value.out_features)
                ).astype(np.float32) * 0.15
                value.load_float_weight(weight)
                reference_weights[f"{path}.weight"] = dequantize_weight(
                    value.packed.data, value.scales.data,
                    value.bits, value.group_size, value.out_features,
                )
            elif hasattr(value, "__dict__") and not isinstance(value, np.ndarray):
                if not isinstance(value, (int, float, str, bool, type(None))):
                    walk(value, path)
            if isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if hasattr(item, "__dict__"):
                        walk(item, f"{path}.{i}")

    walk(module, "")
    # Remaining (fp) parameters: embeddings and norms.
    for name, param in module.named_parameters():
        if param.data is None:
            param.initialize(rng, scale=0.15)
    return reference_weights


def test_quantized_model_matches_dequantized_reference():
    exported = build_llama(TINY_Q4)
    ref_weights = _quantize_initialize(exported.module)

    exe = transform.build(exported.mod, TEST_DEVICE,
                          enable_library_dispatch=False)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    params = exported.concrete_params()

    # Build the reference table: dequantized projections + fp the rest.
    table = dict(ref_weights)
    for name, param in exported.param_order:
        if name not in table and not name.endswith((".packed", ".scales")):
            table[name] = param.data
    reference = ReferenceLlama(TINY_Q4, table)

    tokens = RNG.integers(0, TINY_Q4.vocab_size, size=(1, 4), dtype=np.int64)
    caches = empty_caches(TINY_Q4, 1, concrete=True)
    result = vm.run("prefill", NDArray.from_numpy(tokens), *caches, *params)
    logits = result[0].numpy()

    ref_logits, _ = reference.forward(tokens, [c.numpy() for c in caches])
    np.testing.assert_allclose(logits, ref_logits, rtol=1e-3, atol=1e-3)


def test_quantized_model_fuses_decodes():
    exported = build_llama(TINY_Q4)
    exe = transform.build(exported.mod, TEST_DEVICE,
                          enable_library_dispatch=False,
                          enable_cuda_graph=False)
    fused = [f for f in exe.tir_funcs.values() if f.attrs.get("fused")]
    # Every quantized projection fuses its decode into the matmul.
    assert fused
    decode_names = [n for n in exe.tir_funcs if n.startswith("decode_q")]
    assert not decode_names, "no standalone decode kernels should remain"


def test_quantized_weights_are_smaller():
    exported_fp = build_llama(TINY_LLAMA)
    exported_q4 = build_llama(TINY_Q4)
    fp_bytes = exported_fp.param_bytes()
    q4_bytes = exported_q4.param_bytes()
    assert q4_bytes < fp_bytes
