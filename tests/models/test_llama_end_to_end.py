"""Compile tiny transformer configs end-to-end and check against NumPy."""

import numpy as np
import pytest

from repro import transform
from repro.models import (
    TINY_GEMMA,
    TINY_LLAMA,
    TINY_NEOX,
    TINY_QWEN,
    ReferenceLlama,
    build_llama,
    empty_caches,
)
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine

RNG = np.random.default_rng(17)


def _compile(cfg, **kwargs):
    exported = build_llama(cfg)
    exported.module.initialize(seed=5, scale=0.1)
    exe = transform.build(exported.mod, TEST_DEVICE, **kwargs)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    params = exported.concrete_params()
    reference = ReferenceLlama(
        cfg, {name: p.data for name, p in exported.param_order}
    )
    return vm, params, reference


def _run(vm, fn, tokens, caches, params):
    args = [NDArray.from_numpy(tokens)] + caches + params
    result = vm.run(fn, *args)
    logits = result[0].numpy()
    new_caches = list(result[1:])
    return logits, new_caches


@pytest.mark.parametrize(
    "cfg",
    [TINY_LLAMA, TINY_NEOX, TINY_GEMMA, TINY_QWEN],
    ids=["llama", "neox", "gemma", "qwen"],
)
def test_prefill_matches_reference(cfg):
    vm, params, reference = _compile(cfg, enable_library_dispatch=False)
    tokens = RNG.integers(0, cfg.vocab_size, size=(2, 5), dtype=np.int64)
    caches = empty_caches(cfg, batch=2, concrete=True)
    logits, _ = _run(vm, "prefill", tokens, caches, params)
    ref_logits, _ = reference.forward(tokens, [c.numpy() for c in caches])
    np.testing.assert_allclose(logits, ref_logits, rtol=1e-3, atol=1e-4)


def test_decode_with_cache_matches_reference():
    cfg = TINY_LLAMA
    vm, params, reference = _compile(cfg, enable_library_dispatch=False)
    tokens = RNG.integers(0, cfg.vocab_size, size=(1, 4), dtype=np.int64)
    caches = empty_caches(cfg, batch=1, concrete=True)

    # Prefill, then two decode steps, validating logits at each step.
    logits, caches_vm = _run(vm, "prefill", tokens, caches, params)
    ref_logits, ref_caches = reference.forward(tokens, [np.zeros((1, 0, cfg.num_kv_heads, cfg.head_dim), np.float32)] * (2 * cfg.num_layers))
    np.testing.assert_allclose(logits, ref_logits, rtol=1e-3, atol=1e-4)

    for step in range(2):
        next_tok = RNG.integers(0, cfg.vocab_size, size=(1, 1), dtype=np.int64)
        logits, caches_vm = _run(vm, "decode", next_tok, caches_vm, params)
        ref_logits, ref_caches = reference.forward(next_tok, ref_caches)
        np.testing.assert_allclose(logits, ref_logits, rtol=1e-3, atol=1e-4)
        assert caches_vm[0].shape[1] == 4 + step + 1


def test_decode_incremental_equals_full_prefill():
    """Decoding token-by-token must match prefilling the whole sequence."""
    cfg = TINY_LLAMA
    vm, params, reference = _compile(cfg, enable_library_dispatch=False)
    seq = RNG.integers(0, cfg.vocab_size, size=(1, 6), dtype=np.int64)

    full_logits, _ = _run(
        vm, "prefill", seq, empty_caches(cfg, 1, True), params
    )

    logits, caches = _run(
        vm, "prefill", seq[:, :1], empty_caches(cfg, 1, True), params
    )
    for t in range(1, 6):
        logits, caches = _run(vm, "decode", seq[:, t:t + 1], caches, params)
    np.testing.assert_allclose(logits, full_logits, rtol=1e-3, atol=1e-4)


def test_compiles_once_runs_any_batch_and_length():
    cfg = TINY_LLAMA
    vm, params, _ = _compile(cfg, enable_library_dispatch=False)
    for batch, seqlen in [(1, 3), (2, 5), (4, 2)]:
        tokens = RNG.integers(0, cfg.vocab_size, size=(batch, seqlen), dtype=np.int64)
        logits, caches = _run(
            vm, "prefill", tokens, empty_caches(cfg, batch, True), params
        )
        assert logits.shape == (batch, 1, cfg.vocab_size)
        assert caches[0].shape == (batch, seqlen, cfg.num_kv_heads, cfg.head_dim)


def test_library_path_matches_codegen_path():
    cfg = TINY_LLAMA
    vm_lib, params, reference = _compile(cfg, enable_library_dispatch=True)
    tokens = RNG.integers(0, cfg.vocab_size, size=(1, 4), dtype=np.int64)
    caches = empty_caches(cfg, 1, True)
    logits, _ = _run(vm_lib, "prefill", tokens, caches, params)
    ref_logits, _ = reference.forward(tokens, [c.numpy() for c in caches])
    np.testing.assert_allclose(logits, ref_logits, rtol=1e-3, atol=1e-4)
    assert vm_lib.stats.lib_calls > 0
