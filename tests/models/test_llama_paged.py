"""Paged entries: decode_paged matches dense decode on ragged batches,
and prefill_paged is bit-identical to the dense prefill entry."""

import numpy as np
import pytest

from repro import transform
from repro.models import TINY_LLAMA, build_llama, empty_caches
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine

RNG = np.random.default_rng(23)
PAGE = 4


def _compile(page_size=PAGE, **kwargs):
    exported = build_llama(TINY_LLAMA, page_size=page_size)
    exported.module.initialize(seed=5, scale=0.1)
    exe = transform.build(exported.mod, TEST_DEVICE, **kwargs)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    return vm, exported.concrete_params()


def _paginate(caches_per_seq, lens, num_pages=16):
    """Pack per-sequence dense caches into one shared page pool."""
    cfg = TINY_LLAMA
    b = len(lens)
    w = max(-(-L // PAGE) for L in lens)
    kv, d = cfg.num_kv_heads, cfg.head_dim
    pools = [
        np.zeros((num_pages, PAGE, kv, d), np.float32)
        for _ in range(2 * cfg.num_layers)
    ]
    table = np.zeros((b, w), np.int64)  # padding slots point at page 0
    next_free = 1
    for i, L in enumerate(lens):
        for blk in range(-(-L // PAGE)):
            pg = next_free
            next_free += 1
            table[i, blk] = pg
            lo, hi = blk * PAGE, min((blk + 1) * PAGE, L)
            for j, cache in enumerate(caches_per_seq[i]):
                pools[j][pg, : hi - lo] = cache[0, lo:hi]
    return pools, table


def _dense_decode(vm, params, prompts, next_toks):
    logits, caches = [], []
    for p, t in zip(prompts, next_toks):
        args = [NDArray.from_numpy(p)] + empty_caches(TINY_LLAMA, 1, True) + params
        res = vm.run("prefill", *args)
        caches.append([c.numpy() for c in res[1:]])
        res = vm.run("decode", NDArray.from_numpy(t), *res[1:], *params)
        logits.append(res[0].numpy())
    return logits, caches


@pytest.mark.parametrize("dispatch", [False, True], ids=["codegen", "library"])
def test_ragged_paged_decode_matches_dense(dispatch):
    cfg = TINY_LLAMA
    vm, params = _compile(enable_library_dispatch=dispatch)
    lens = [3, 6, 1]
    prompts = [
        RNG.integers(0, cfg.vocab_size, size=(1, L), dtype=np.int64)
        for L in lens
    ]
    next_toks = [
        RNG.integers(0, cfg.vocab_size, size=(1, 1), dtype=np.int64)
        for _ in lens
    ]
    dense_logits, dense_caches = _dense_decode(vm, params, prompts, next_toks)
    pools, table = _paginate(dense_caches, lens)

    res = vm.run(
        "decode_paged",
        NDArray.from_numpy(np.concatenate(next_toks, axis=0)),
        NDArray.from_numpy(table),
        NDArray.from_numpy(np.asarray(lens, np.int64)),
        *[NDArray.from_numpy(p) for p in pools],
        *params,
    )
    paged_logits = res[0].numpy()
    new_slices = res[1:]
    assert paged_logits.shape == (3, 1, cfg.vocab_size)
    # One (b, 1, h_kv, d) K and V slice per layer for the engine to append.
    assert len(new_slices) == 2 * cfg.num_layers
    assert new_slices[0].shape == (3, 1, cfg.num_kv_heads, cfg.head_dim)
    for i in range(len(lens)):
        np.testing.assert_allclose(
            paged_logits[i : i + 1], dense_logits[i], rtol=1e-3, atol=1e-4
        )


def test_new_kv_slices_match_dense_append():
    """The returned k/v slices are exactly what dense decode appends."""
    cfg = TINY_LLAMA
    vm, params = _compile(enable_library_dispatch=False)
    L = 5
    prompt = RNG.integers(0, cfg.vocab_size, size=(1, L), dtype=np.int64)
    tok = RNG.integers(0, cfg.vocab_size, size=(1, 1), dtype=np.int64)
    dense_logits, dense_caches = _dense_decode(vm, params, [prompt], [tok])
    # Dense decode again to capture the appended row.
    res = vm.run(
        "prefill",
        NDArray.from_numpy(prompt),
        *empty_caches(cfg, 1, True),
        *params,
    )
    res = vm.run("decode", NDArray.from_numpy(tok), *res[1:], *params)
    appended = [c.numpy()[:, L:, :, :] for c in res[1:]]

    pools, table = _paginate(dense_caches, [L])
    paged = vm.run(
        "decode_paged",
        NDArray.from_numpy(tok),
        NDArray.from_numpy(table),
        NDArray.from_numpy(np.asarray([L], np.int64)),
        *[NDArray.from_numpy(p) for p in pools],
        *params,
    )
    for got, expect in zip(paged[1:], appended):
        np.testing.assert_allclose(got.numpy(), expect, rtol=1e-3, atol=1e-4)


def test_decode_paged_only_exported_with_page_size():
    assert "decode_paged" not in dict(build_llama(TINY_LLAMA).mod.functions())
    assert "decode_paged" in dict(
        build_llama(TINY_LLAMA, page_size=8).mod.functions()
    )


def test_prefill_paged_only_exported_with_page_size():
    assert "prefill_paged" not in dict(build_llama(TINY_LLAMA).mod.functions())
    assert "prefill_paged" in dict(
        build_llama(TINY_LLAMA, page_size=8).mod.functions()
    )


# ---------------------------------------------------------------------------
# prefill_paged: bit-exact against the dense prefill entry
# ---------------------------------------------------------------------------


def _run_prefill_paged(vm, params, pools, blocks, toks, past):
    """One prefill_paged call + write-back of the new K/V into the pool."""
    w = len(blocks)
    table = np.asarray([blocks], np.int64)
    res = vm.run(
        "prefill_paged",
        NDArray.from_numpy(toks),
        NDArray.from_numpy(table),
        NDArray.from_numpy(np.zeros(past, np.int64)),
        *[NDArray.from_numpy(p) for p in pools],
        *params,
    )
    chunk = toks.shape[1]
    for j, sl in enumerate(res[1:]):
        sl = sl.numpy()
        for t in range(chunk):
            pos = past + t
            pools[j][blocks[pos // PAGE], pos % PAGE] = sl[0, t]
    return res[0].numpy()


@pytest.mark.parametrize("dispatch", [False, True], ids=["codegen", "library"])
def test_prefill_paged_is_bit_identical_to_dense(dispatch):
    """One-shot and chunked paged prefill produce the *exact* bits of the
    dense prefill entry — logits and every K/V value — on both lowering
    paths.  Exactness (not closeness) is what lets the engine switch
    entries without perturbing same-seed runs."""
    cfg = TINY_LLAMA
    vm, params = _compile(enable_library_dispatch=dispatch)
    L = 11
    chunks = [4, 4, 3]  # split mid-page and across pages
    prompt = RNG.integers(0, cfg.vocab_size, size=(1, L), dtype=np.int64)

    # Dense reference, chunked identically.
    caches = empty_caches(cfg, 1, True)
    dense_logits = []
    pos = 0
    for c in chunks:
        res = vm.run("prefill", NDArray.from_numpy(prompt[:, pos:pos + c]),
                     *caches, *params)
        dense_logits.append(res[0].numpy())
        caches = list(res[1:])
        pos += c
    dense_caches = [c.numpy() for c in caches]

    # Paged: write K/V straight into the page pool chunk by chunk.
    kv, d = cfg.num_kv_heads, cfg.head_dim
    pools = [np.zeros((8, PAGE, kv, d), np.float32)
             for _ in range(2 * cfg.num_layers)]
    blocks, next_free = [], 1  # page 0 is the padding page
    pos = 0
    for ci, c in enumerate(chunks):
        while len(blocks) < -(-(pos + c) // PAGE):
            blocks.append(next_free)
            next_free += 1
        logits = _run_prefill_paged(vm, params, pools, blocks,
                                    prompt[:, pos:pos + c], pos)
        assert np.array_equal(logits, dense_logits[ci]), (
            f"chunk {ci} logits differ ({'library' if dispatch else 'codegen'})"
        )
        pos += c

    # Every stored K/V value is bit-identical to the dense cache.
    for j in range(2 * cfg.num_layers):
        for gpos in range(L):
            got = pools[j][blocks[gpos // PAGE], gpos % PAGE]
            assert np.array_equal(got, dense_caches[j][0, gpos])


def test_prefill_paged_one_shot_matches_chunked():
    """m = 0 entry (whole prompt in one call) equals the chunked path."""
    cfg = TINY_LLAMA
    vm, params = _compile(enable_library_dispatch=False)
    L = 7
    prompt = RNG.integers(0, cfg.vocab_size, size=(1, L), dtype=np.int64)
    kv, d = cfg.num_kv_heads, cfg.head_dim

    def pool_set():
        return [np.zeros((8, PAGE, kv, d), np.float32)
                for _ in range(2 * cfg.num_layers)]

    one = pool_set()
    l_one = _run_prefill_paged(vm, params, one, [1, 2], prompt, 0)

    two = pool_set()
    _run_prefill_paged(vm, params, two, [1], prompt[:, :4], 0)
    l_two = _run_prefill_paged(vm, params, two, [1, 2], prompt[:, 4:], 4)

    assert np.array_equal(l_one, l_two)
    for a, b in zip(one, two):
        assert np.array_equal(a, b)
