"""Paged Whisper decode must be bit-identical to the dense fig19 path.

Mirrors ``test_llama_paged.py``: the dense decode (growing concat caches +
contiguous cross K/V) is the oracle; the paged path gathers self-attention
KV through a block table with ``paged_prefill`` and cross-attention KV
through a second block table with ``paged_cross_attention``.  Both streams
live in the same per-layer pools.  Logits and every stored K/V element are
compared with ``np.array_equal`` on both lowering paths.
"""

import numpy as np
import pytest

from repro import transform
from repro.models import TINY_WHISPER, build_whisper
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine

PAGE = 4
CFG = TINY_WHISPER
FRAMES = 12
T_ENC = FRAMES // 2  # 2x frontend downsampling
POOL_PAGES = 8
L_DECODE = 7  # decode steps; spans two self-stream pages


def _build(dispatch):
    exported = build_whisper(CFG, page_size=PAGE)
    exported.module.initialize(seed=4, scale=0.1)
    exe = transform.build(
        exported.mod, TEST_DEVICE, enable_library_dispatch=dispatch
    )
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    return vm, exported.concrete_params()


def _empty_caches():
    return [
        NDArray.from_numpy(
            np.zeros((1, 0, CFG.num_heads, CFG.head_dim), np.float32)
        )
        for _ in range(2 * CFG.decoder_layers)
    ]


@pytest.mark.parametrize("dispatch", [False, True], ids=["codegen", "library"])
def test_paged_decode_bit_identical(dispatch):
    vm, params = _build(dispatch)
    rng = np.random.default_rng(11)
    mel = rng.standard_normal((1, FRAMES, CFG.n_mel)).astype(np.float32)

    # Dense oracle: encode -> per-layer cross K/V, then decode with concat
    # caches.
    cross_dense = [a.numpy() for a in vm.run("encode", NDArray.from_numpy(mel), *params)]

    # Paged path, stage 1: chunked encode + cross projection must
    # reproduce the fused dense encode exactly.
    hidden = vm.run("encode_chunk", NDArray.from_numpy(mel), *params)
    cross_paged = [a.numpy() for a in vm.run("cross_project", hidden, *params)]
    assert len(cross_paged) == 2 * CFG.decoder_layers
    for dense, paged in zip(cross_dense, cross_paged):
        assert np.array_equal(dense, paged)

    # Stage 2: write the cross K/V into pool pages once (the engine's
    # cross stream: allocated at admission, never appended).  Page 0 stays
    # zeroed as the padding target; cross stream takes pages 1..2, the
    # self stream grows into pages 3..4.
    h, d = CFG.num_heads, CFG.head_dim
    pools = [
        np.zeros((POOL_PAGES, PAGE, h, d), np.float32)
        for _ in range(2 * CFG.decoder_layers)
    ]
    n_cross = -(-T_ENC // PAGE)
    cross_blocks = list(range(1, 1 + n_cross))
    self_blocks = list(range(1 + n_cross, 1 + n_cross + 2))
    for i in range(2 * CFG.decoder_layers):
        for j, blk in enumerate(cross_blocks):
            lo, hi = j * PAGE, min((j + 1) * PAGE, T_ENC)
            pools[i][blk, : hi - lo] = cross_paged[i][0, lo:hi]
    cross_table = np.array([cross_blocks], dtype=np.int64)
    enc = np.zeros(T_ENC, dtype=np.int64)

    # Stage 3: step the decoders in lockstep and demand bit-identity on
    # logits and on every K/V element stored in the pool.
    caches = _empty_caches()
    tokens = rng.integers(1, CFG.vocab_size, size=L_DECODE)
    for m, token in enumerate(tokens):
        tok = NDArray.from_numpy(np.array([[token]], dtype=np.int64))

        out_d = vm.run("decode", tok, *caches, *[NDArray.from_numpy(c) for c in cross_dense], *params)
        logits_d, caches = out_d[0], list(out_d[1:])

        w = m // PAGE + 1
        table = np.array([self_blocks[:w]], dtype=np.int64)
        out_p = vm.run(
            "decode_paged", tok,
            NDArray.from_numpy(table),
            NDArray.from_numpy(np.zeros(m, dtype=np.int64)),
            NDArray.from_numpy(cross_table),
            NDArray.from_numpy(enc),
            *[NDArray.from_numpy(p) for p in pools],
            *params,
        )
        logits_p, slices = out_p[0], list(out_p[1:])
        assert np.array_equal(logits_d.numpy(), logits_p.numpy())

        for i in range(2 * CFG.decoder_layers):
            sl = slices[i].numpy()
            assert sl.shape == (1, 1, h, d)
            pools[i][self_blocks[m // PAGE], m % PAGE] = sl[0, 0]
            dense_cache = caches[i].numpy()
            for pos in range(m + 1):
                assert np.array_equal(
                    pools[i][self_blocks[pos // PAGE], pos % PAGE],
                    dense_cache[0, pos],
                )


def test_paged_exports_are_gated():
    """Without page_size the serving entry points are not exported."""
    dense_only = build_whisper(CFG)
    names = {n for n, _ in dense_only.mod.functions()}
    assert names == {"encode", "decode"}

    paged = build_whisper(CFG, page_size=PAGE)
    names = {n for n, _ in paged.mod.functions()}
    assert names == {"encode", "decode", "encode_chunk", "cross_project",
                     "decode_paged"}
