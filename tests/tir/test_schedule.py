"""Tensor program transformations: inlining, workspace rewrite, binding."""

import numpy as np

from repro import sym, tir


def _chain_func():
    """out = (a * 2 + 1) via an intermediate buffer."""
    n = sym.SymVar("n")
    f = tir.TirBuilder("chain")
    a = f.arg("A", (n,), "f32")
    out = f.out("O", (n,), "f32")
    tmp = f.alloc("tmp", (n,), "f32")
    i = f.spatial(n)
    f.store(tmp, [i], a[i] * 2.0)
    i = f.spatial(n)
    f.store(out, [i], tmp[i] + 1.0)
    return f.build()


class TestInlineProducers:
    def test_inline_removes_intermediate(self):
        func = _chain_func()
        fused = tir.inline_producers(func)
        assert len(fused.stages) == 1
        assert fused.intermediate_buffers() == []

    def test_inline_preserves_semantics(self):
        func = _chain_func()
        fused = tir.inline_producers(func)
        x = np.arange(5, dtype=np.float32)
        (want,) = tir.call_prim_func(func, [x], [(5,)])
        (got,) = tir.call_prim_func(fused, [x], [(5,)])
        np.testing.assert_allclose(got, want)

    def test_inline_injective_into_matmul(self):
        # decode (injective producer) inlines into the FMA read — the core
        # of Fig. 9's fused_decode_q4_mm.
        n = sym.SymVar("n")
        f = tir.TirBuilder("decode_mm")
        data = f.arg("D", (4, 8), "f32")
        x = f.arg("X", (n, 4), "f32")
        y = f.out("Y", (n, 8), "f32")
        w = f.alloc("W", (4, 8), "f32")
        k, j = f.spatial(4, 8)
        f.store(w, [k, j], data[k, j] * 0.5)
        i, j = f.spatial(n, 8)
        k = f.reduce(4)
        f.store(y, [i, j], x[i, k] * w[k, j], combiner="sum", init=0.0)
        func = f.build()

        fused = tir.inline_producers(func)
        assert len(fused.stages) == 1
        assert fused.intermediate_buffers() == []

        rng = np.random.default_rng(0)
        d = rng.standard_normal((4, 8)).astype(np.float32)
        xv = rng.standard_normal((3, 4)).astype(np.float32)
        (got,) = tir.call_prim_func(fused, [d, xv], [(3, 8)])
        np.testing.assert_allclose(got, xv @ (d * 0.5), rtol=1e-5)

    def test_reduction_producer_not_inlined(self):
        # matmul -> relu: the reduction output stays materialized (local).
        n = sym.SymVar("n")
        f = tir.TirBuilder("mm_relu")
        x = f.arg("X", (n, 4), "f32")
        w = f.arg("W", (4, 6), "f32")
        out = f.out("O", (n, 6), "f32")
        tmp = f.alloc("tmp", (n, 6), "f32")
        i, j = f.spatial(n, 6)
        k = f.reduce(4)
        f.store(tmp, [i, j], x[i, k] * w[k, j], combiner="sum", init=0.0)
        i, j = f.spatial(n, 6)
        f.store(out, [i, j], tir.vmax(tmp[i, j], 0.0))
        func = f.build()
        fused = tir.inline_producers(func)
        assert len(fused.stages) == 2  # reduction stage survives

        rng = np.random.default_rng(1)
        xv = rng.standard_normal((2, 4)).astype(np.float32)
        wv = rng.standard_normal((4, 6)).astype(np.float32)
        (got,) = tir.call_prim_func(fused, [xv, wv], [(2, 6)])
        np.testing.assert_allclose(got, np.maximum(xv @ wv, 0), rtol=1e-5)

    def test_workspace_never_inlined(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("ws")
        a = f.arg("A", (n,), "f32")
        out = f.out("O", (n,), "f32")
        ws = f.alloc("w", (n,), "f32", scope="global")
        i = f.spatial(n)
        f.store(ws, [i], a[i] * 2.0)
        i = f.spatial(n)
        f.store(out, [i], ws[i] + 1.0)
        func = f.build()
        fused = tir.inline_producers(func)
        assert len(fused.stages) == 2
        assert len(fused.workspace_buffers()) == 1


class TestWorkspaceParam:
    def _split_k(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("split_k")
        a = f.arg("A", (n, 8), "f32")
        y = f.out("Y", (n,), "f32")
        ws = f.alloc("workspace", (n, 2), "f32", scope="global")
        i, s = f.spatial(n, 2)
        k = f.reduce(4)
        f.store(ws, [i, s], a[i, s * 4 + k], combiner="sum", init=0.0)
        i = f.spatial(n)
        s = f.reduce(2)
        f.store(y, [i], ws[i, s], combiner="sum", init=0.0)
        return f.build()

    def test_workspace_becomes_param(self):
        func = self._split_k()
        ws = func.workspace_buffers()[0]
        lifted = tir.replace_workspace_with_param(func, ws)
        assert len(lifted.params) == len(func.params) + 1
        assert lifted.workspace_buffers() == []
        # Param order: inputs, workspace, outputs.
        assert lifted.params[1].name == "workspace"
        assert lifted.params[1].scope == "param"

    def test_lifted_semantics_match(self):
        func = self._split_k()
        ws = func.workspace_buffers()[0]
        lifted = tir.replace_workspace_with_param(func, ws)
        x = np.arange(16, dtype=np.float32).reshape(2, 8)
        (want,) = tir.call_prim_func(func, [x], [(2,)])
        ws_buf = np.zeros((2, 2), dtype=np.float32)
        y = np.zeros((2,), dtype=np.float32)
        tir.run_prim_func(lifted, [x, ws_buf, y])
        np.testing.assert_allclose(y, want)

    def test_rejects_non_workspace(self):
        func = self._split_k()
        import pytest

        with pytest.raises(ValueError):
            tir.replace_workspace_with_param(func, func.params[0])


class TestBindSymbolic:
    def test_bind_makes_static(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("scale")
        a = f.arg("A", (n, 4), "f32")
        b = f.out("B", (n, 4), "f32")
        i, j = f.spatial(n, 4)
        f.store(b, [i, j], a[i, j] * 3.0)
        func = f.build()
        bound = tir.bind_symbolic(func, {n: 7}, name="scale_n7")
        assert bound.name == "scale_n7"
        assert bound.free_sym_vars() == []
        assert sym.as_static_int(bound.params[0].shape[0]) == 7

    def test_bound_func_runs(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("scale")
        a = f.arg("A", (n,), "f32")
        b = f.out("B", (n,), "f32")
        i = f.spatial(n)
        f.store(b, [i], a[i] * 3.0)
        func = f.build()
        bound = tir.bind_symbolic(func, {n: 4})
        x = np.ones(4, dtype=np.float32)
        (got,) = tir.call_prim_func(bound, [x], [(4,)])
        np.testing.assert_allclose(got, x * 3.0)

    def test_partial_binding_keeps_other_vars(self):
        n, m = sym.SymVar("n"), sym.SymVar("m")
        f = tir.TirBuilder("two")
        a = f.arg("A", (n, m), "f32")
        b = f.out("B", (n, m), "f32")
        i, j = f.spatial(n, m)
        f.store(b, [i, j], a[i, j])
        func = f.build()
        bound = tir.bind_symbolic(func, {m: 5})
        names = [v.name for v in bound.free_sym_vars()]
        assert names == ["n"]
