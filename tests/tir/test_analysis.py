"""Pattern-kind analysis (Algorithm 1), workspace detection and costs."""

import numpy as np

from repro import sym, tir
from repro.tir import PatternKind


def _ewise():
    n = sym.SymVar("n")
    f = tir.TirBuilder("relu")
    a = f.arg("A", (n, 4), "f32")
    b = f.out("B", (n, 4), "f32")
    i, j = f.spatial(n, 4)
    f.store(b, [i, j], tir.vmax(a[i, j], 0.0))
    return f.build()


def _broadcast():
    n = sym.SymVar("n")
    f = tir.TirBuilder("bcast")
    a = f.arg("A", (4,), "f32")
    b = f.out("B", (n, 4), "f32")
    i, j = f.spatial(n, 4)
    f.store(b, [i, j], a[j] * 2.0)
    return f.build()


def _ewise_plus_broadcast():
    # Algorithm 1's special case: C[i,j] = A[i,j] + B[j] is ElementWise.
    n = sym.SymVar("n")
    f = tir.TirBuilder("bias_add")
    a = f.arg("A", (n, 4), "f32")
    b = f.arg("B", (4,), "f32")
    c = f.out("C", (n, 4), "f32")
    i, j = f.spatial(n, 4)
    f.store(c, [i, j], a[i, j] + b[j])
    return f.build()


def _transpose():
    n = sym.SymVar("n")
    f = tir.TirBuilder("transpose")
    a = f.arg("A", (n, 4), "f32")
    b = f.out("B", (4, n), "f32")
    i, j = f.spatial(4, n)
    f.store(b, [i, j], a[j, i])
    return f.build()


def _matmul():
    n = sym.SymVar("n")
    f = tir.TirBuilder("mm")
    x = f.arg("X", (n, 8), "f32")
    w = f.arg("W", (8, 6), "f32")
    y = f.out("Y", (n, 6), "f32")
    i, j = f.spatial(n, 6)
    k = f.reduce(8)
    f.store(y, [i, j], x[i, k] * w[k, j], combiner="sum", init=0.0)
    return f.build()


def _rowsum():
    n = sym.SymVar("n")
    f = tir.TirBuilder("rowsum")
    a = f.arg("A", (n, 8), "f32")
    b = f.out("B", (n,), "f32")
    i = f.spatial(n)
    k = f.reduce(8)
    f.store(b, [i], a[i, k], combiner="sum", init=0.0)
    return f.build()


def _data_dependent_gather():
    # C[i] = A[B[i]] — read index depends on a buffer value, so the read
    # indices use a variable outside the write loop vars: Opaque.
    f = tir.TirBuilder("gather_dyn")
    a = f.arg("A", (8,), "f32")
    c = f.out("C", (4,), "f32")
    i = f.spatial(4)
    hidden = sym.SymVar("h")  # not a loop var: models value-dependence
    f.store(c, [i], a[hidden])
    return f.build()


class TestPatternKind:
    def test_element_wise(self):
        assert tir.pattern_kind(_ewise()) == PatternKind.ELEMENT_WISE

    def test_broadcast(self):
        assert tir.pattern_kind(_broadcast()) == PatternKind.BROADCAST

    def test_ewise_plus_broadcast_promotes(self):
        assert tir.pattern_kind(_ewise_plus_broadcast()) == PatternKind.ELEMENT_WISE

    def test_injective_transpose(self):
        assert tir.pattern_kind(_transpose()) == PatternKind.INJECTIVE

    def test_matmul_is_out_ewise_fusible(self):
        assert tir.pattern_kind(_matmul()) == PatternKind.OUT_EWISE_FUSIBLE

    def test_reduction(self):
        assert tir.pattern_kind(_rowsum()) == PatternKind.REDUCTION

    def test_opaque_for_data_dependent(self):
        assert tir.pattern_kind(_data_dependent_gather()) == PatternKind.OPAQUE

    def test_generator_is_injective(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("iota")
        out = f.out("O", (n,), "i32")
        i = f.spatial(n)
        f.store(out, [i], tir.cast("i32", tir.IndexValue(i)))
        assert tir.pattern_kind(f.build()) == PatternKind.INJECTIVE

    def test_multi_stage_injective_chain(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("chain")
        a = f.arg("A", (n,), "f32")
        out = f.out("O", (n,), "f32")
        tmp = f.alloc("tmp", (n,), "f32")
        i = f.spatial(n)
        f.store(tmp, [i], a[i] * 2.0)
        i = f.spatial(n)
        f.store(out, [i], tmp[i] + 1.0)
        assert tir.pattern_kind(f.build()) == PatternKind.ELEMENT_WISE

    def test_decode_plus_matmul_stays_fusible(self):
        # Fused decode+mm (Fig. 9 yellow) remains OutputEwiseFusible.
        n = sym.SymVar("n")
        f = tir.TirBuilder("fused_decode_mm")
        data = f.arg("data", (8, 1), "u32")
        x = f.arg("X", (n, 8), "f32")
        y = f.out("Y", (n, 8), "f32")
        w = f.alloc("W", (8, 8), "f32")
        k, j = f.spatial(8, 8)
        f.store(w, [k, j], tir.cast("f32", (data[k, j // 8] >> tir.IndexValue(j % 8)) & 1))
        i, j = f.spatial(n, 8)
        k = f.reduce(8)
        f.store(y, [i, j], x[i, k] * w[k, j], combiner="sum", init=0.0)
        assert tir.pattern_kind(f.build()) == PatternKind.OUT_EWISE_FUSIBLE


class TestWorkspace:
    def test_detect_global_workspace(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("split_k")
        a = f.arg("A", (n, 8), "f32")
        y = f.out("Y", (n,), "f32")
        ws = f.alloc("workspace", (n, 2), "f32", scope="global")
        i, s = f.spatial(n, 2)
        k = f.reduce(4)
        f.store(ws, [i, s], a[i, s * 4 + k], combiner="sum", init=0.0)
        i = f.spatial(n)
        s = f.reduce(2)
        f.store(y, [i], ws[i, s], combiner="sum", init=0.0)
        func = f.build()
        workspaces = tir.detect_workspaces(func)
        assert len(workspaces) == 1
        assert workspaces[0].name == "workspace"

    def test_local_intermediate_is_not_workspace(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("chain")
        a = f.arg("A", (n,), "f32")
        out = f.out("O", (n,), "f32")
        tmp = f.alloc("tmp", (n,), "f32")
        i = f.spatial(n)
        f.store(tmp, [i], a[i] * 2.0)
        i = f.spatial(n)
        f.store(out, [i], tmp[i] + 1.0)
        assert tir.detect_workspaces(f.build()) == []


class TestCost:
    def test_matmul_flops(self):
        func = _matmul()
        n_var = func.free_sym_vars()[0]
        flops = tir.count_flops(func, {n_var: 10})
        # n*6*8 iterations, 1 mul + 1 combiner add per iteration.
        assert flops == 10 * 6 * 8 * 2

    def test_bytes_counts_params(self):
        func = _ewise()
        n_var = func.free_sym_vars()[0]
        nbytes = tir.count_bytes(func, {n_var: 10})
        assert nbytes == 2 * 10 * 4 * 4  # two (10,4) f32 buffers

    def test_global_workspace_counted_twice(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("ws")
        a = f.arg("A", (n,), "f32")
        out = f.out("O", (n,), "f32")
        ws = f.alloc("w", (n,), "f32", scope="global")
        i = f.spatial(n)
        f.store(ws, [i], a[i] * 2.0)
        i = f.spatial(n)
        f.store(out, [i], ws[i] + 1.0)
        func = f.build()
        assert tir.count_bytes(func, {n: 8}) == (8 * 4) * 2 + (8 * 4) * 2

    def test_symbolic_flops(self):
        func = _matmul()
        n_var = func.free_sym_vars()[0]
        expr = tir.symbolic_flops(func)
        assert sym.evaluate(expr, {n_var: 5}) == 5 * 6 * 8 * 2


class TestFreeSymVars:
    def test_free_vars_exclude_loop_vars(self):
        func = _matmul()
        names = [v.name for v in func.free_sym_vars()]
        assert names == ["n"]

    def test_sym_param_fill(self):
        n, m = sym.SymVar("n"), sym.SymVar("m")
        f = tir.TirBuilder("fill")
        out = f.out("O", (n,), "i64")
        f.sym_param(m)
        i = f.spatial(n)
        f.store(out, [i], tir.IndexValue(m))
        func = f.build()
        names = {v.name for v in func.free_sym_vars()}
        assert names == {"n", "m"}
