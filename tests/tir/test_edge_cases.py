"""TIR edge cases: extra combiners, zero-extent loops, printer, builder."""

import numpy as np
import pytest

from repro import sym, tir


class TestCombiners:
    def test_prod(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("rowprod")
        a = f.arg("A", (n, 4), "f32")
        b = f.out("B", (n,), "f32")
        i = f.spatial(n)
        k = f.reduce(4)
        f.store(b, [i], a[i, k], combiner="prod", init=1.0)
        func = f.build()
        x = np.random.default_rng(0).uniform(0.5, 2.0, (3, 4)).astype(np.float32)
        (out,) = tir.call_prim_func(func, [x], [(3,)])
        np.testing.assert_allclose(out, x.prod(axis=1), rtol=1e-5)

    def test_min_with_init(self):
        f = tir.TirBuilder("rowmin")
        a = f.arg("A", (2, 3), "f32")
        b = f.out("B", (2,), "f32")
        i = f.spatial(2)
        k = f.reduce(3)
        f.store(b, [i], a[i, k], combiner="min", init=0.0)
        func = f.build()
        x = np.array([[1.0, 2.0, 3.0], [-5.0, 4.0, 2.0]], dtype=np.float32)
        (out,) = tir.call_prim_func(func, [x], [(2,)])
        np.testing.assert_allclose(out, np.minimum(x.min(axis=1), 0.0))

    def test_invalid_combiner_rejected(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("bad")
        a = f.arg("A", (n,), "f32")
        b = f.out("B", (), "f32")
        k = f.reduce(4)
        with pytest.raises(ValueError, match="combiner"):
            f.store(b, [], a[k], combiner="xor")

    def test_combiner_without_reduce_rejected(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("bad")
        a = f.arg("A", (n,), "f32")
        b = f.out("B", (n,), "f32")
        i = f.spatial(n)
        with pytest.raises(ValueError, match="no reduction"):
            f.store(b, [i], a[i], combiner="sum")


class TestZeroExtent:
    def test_empty_spatial_loop(self):
        """Zero-extent loops write nothing (the empty-KV-cache case)."""
        n = sym.SymVar("n")
        f = tir.TirBuilder("copy")
        a = f.arg("A", (n, 2), "f32")
        b = f.out("B", (n, 2), "f32")
        i, j = f.spatial(n, 2)
        f.store(b, [i, j], a[i, j])
        func = f.build()
        x = np.zeros((0, 2), dtype=np.float32)
        (out,) = tir.call_prim_func(func, [x], [(0, 2)])
        assert out.shape == (0, 2)


class TestBuilderErrors:
    def test_pending_loops_rejected(self):
        f = tir.TirBuilder("bad")
        f.out("B", (2,), "f32")
        f.spatial(2)
        with pytest.raises(RuntimeError, match="never stored"):
            f.build()

    def test_no_outputs_rejected(self):
        f = tir.TirBuilder("bad")
        f.arg("A", (2,), "f32")
        with pytest.raises(RuntimeError, match="no outputs"):
            f.build()

    def test_wrong_index_arity_rejected(self):
        f = tir.TirBuilder("bad")
        a = f.arg("A", (2, 2), "f32")
        with pytest.raises(ValueError, match="indices"):
            a[0]  # one index for a 2-d buffer

    def test_stage_output_arity_rejected(self):
        f = tir.TirBuilder("bad")
        a = f.arg("A", (2, 2), "f32")
        b = f.out("B", (2, 2), "f32")
        i = f.spatial(2)
        with pytest.raises(ValueError, match="writes"):
            f.store(b, [i], a[i, i])

    def test_invalid_scope_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            tir.Buffer("x", (2,), "f32", scope="registers")


class TestPrinter:
    def test_prim_func_text(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("mm")
        x = f.arg("X", (n, 4), "f32")
        w = f.arg("W", (4, 2), "f32")
        y = f.out("Y", (n, 2), "f32")
        tmp = f.alloc("tmp", (n, 2), "f32")
        i, j = f.spatial(n, 2)
        k = f.reduce(4)
        f.store(tmp, [i, j], x[i, k] * w[k, j], combiner="sum", init=0.0)
        i, j = f.spatial(n, 2)
        f.store(y, [i, j], tir.vmax(tmp[i, j], 0.0))
        text = tir.format_prim_func(f.build())
        assert "def mm(" in text
        assert "alloc_buffer" in text
        assert "# reduce" in text
        assert "+=" in text
        assert "grid(" in text

    def test_sym_params_printed(self):
        m = sym.SymVar("m")
        f = tir.TirBuilder("fill")
        out = f.out("O", (4,), "i64")
        f.sym_param(m)
        i = f.spatial(4)
        f.store(out, [i], tir.IndexValue(m))
        text = tir.format_prim_func(f.build())
        assert "symbolic params: m" in text


class TestValueExprs:
    def test_value_convert_errors(self):
        with pytest.raises(TypeError):
            tir.Value.convert(True)
        with pytest.raises(TypeError):
            tir.Value.convert("nope")

    def test_value_convert_primexpr(self):
        n = sym.SymVar("n")
        v = tir.Value.convert(n + 1)
        assert isinstance(v, tir.IndexValue)

    def test_unknown_ops_rejected(self):
        with pytest.raises(ValueError):
            tir.BinValue("xor", 1, 2)
        with pytest.raises(ValueError):
            tir.UnaryValue("gamma", 1.0)
        with pytest.raises(ValueError):
            tir.Cmp("approx", 1, 2)

    def test_count_arith_ops(self):
        f = tir.TirBuilder("t")
        a = f.arg("A", (2,), "f32")
        expr = a[0] * 2.0 + tir.exp(a[1])
        assert tir.count_arith_ops(expr) == 3  # mul, add, exp

    def test_operator_coverage(self):
        a = tir.FloatConst(2.0)
        b = tir.IntConst(3)
        for expr in (a + b, a - b, a * b, a / b, -a, b >> 1, b << 1,
                     b & 1, b | 1, 1 + a, 2.0 - a, 3 * a, 4 / a):
            assert isinstance(expr, tir.BinValue)
