"""Tensor program interpreter tests against NumPy references."""

import numpy as np
import pytest

from repro import sym, tir


def _mm_func(n=None):
    n = n if n is not None else sym.SymVar("n")
    f = tir.TirBuilder("mm")
    x = f.arg("X", (n, 8), "f32")
    w = f.arg("W", (8, 6), "f32")
    y = f.out("Y", (n, 6), "f32")
    i, j = f.spatial(n, 6)
    k = f.reduce(8)
    f.store(y, [i, j], x[i, k] * w[k, j], combiner="sum", init=0.0)
    return f.build()


def test_matmul_symbolic_batch():
    func = _mm_func()
    rng = np.random.default_rng(0)
    for n in (1, 3, 7):
        x = rng.standard_normal((n, 8)).astype(np.float32)
        w = rng.standard_normal((8, 6)).astype(np.float32)
        (y,) = tir.call_prim_func(func, [x, w], [(n, 6)])
        np.testing.assert_allclose(y, x @ w, rtol=1e-5)


def test_elementwise_add():
    n = sym.SymVar("n")
    f = tir.TirBuilder("add")
    a = f.arg("A", (n, 4), "f32")
    b = f.arg("B", (n, 4), "f32")
    c = f.out("C", (n, 4), "f32")
    i, j = f.spatial(n, 4)
    f.store(c, [i, j], a[i, j] + b[i, j])
    func = f.build()
    x = np.arange(12, dtype=np.float32).reshape(3, 4)
    y = np.ones((3, 4), dtype=np.float32)
    (out,) = tir.call_prim_func(func, [x, y], [(3, 4)])
    np.testing.assert_allclose(out, x + y)


def test_broadcast_add():
    n = sym.SymVar("n")
    f = tir.TirBuilder("bias_add")
    a = f.arg("A", (n, 4), "f32")
    b = f.arg("B", (4,), "f32")
    c = f.out("C", (n, 4), "f32")
    i, j = f.spatial(n, 4)
    f.store(c, [i, j], a[i, j] + b[j])
    func = f.build()
    x = np.arange(8, dtype=np.float32).reshape(2, 4)
    bias = np.array([10, 20, 30, 40], dtype=np.float32)
    (out,) = tir.call_prim_func(func, [x, bias], [(2, 4)])
    np.testing.assert_allclose(out, x + bias)


def test_transpose_injective_write():
    n = sym.SymVar("n")
    f = tir.TirBuilder("transpose")
    a = f.arg("A", (n, 3), "f32")
    b = f.out("B", (3, n), "f32")
    i, j = f.spatial(n, 3)
    f.store(b, [j, i], a[i, j])
    func = f.build()
    x = np.arange(6, dtype=np.float32).reshape(2, 3)
    (out,) = tir.call_prim_func(func, [x], [(3, 2)])
    np.testing.assert_allclose(out, x.T)


def test_flatten_floordiv_mod_reads():
    n = sym.SymVar("n")
    f = tir.TirBuilder("flatten")
    a = f.arg("A", (n, 4), "f32")
    b = f.out("B", (n * 4,), "f32")
    k = f.spatial(n * 4)
    f.store(b, [k], a[k // 4, k % 4])
    func = f.build()
    x = np.arange(12, dtype=np.float32).reshape(3, 4)
    (out,) = tir.call_prim_func(func, [x], [(12,)])
    np.testing.assert_allclose(out, x.reshape(-1))


def test_reduce_max():
    n = sym.SymVar("n")
    f = tir.TirBuilder("rowmax")
    a = f.arg("A", (n, 5), "f32")
    b = f.out("B", (n,), "f32")
    i = f.spatial(n)
    j = f.reduce(5)
    f.store(b, [i], a[i, j], combiner="max")
    func = f.build()
    x = np.random.default_rng(1).standard_normal((4, 5)).astype(np.float32)
    (out,) = tir.call_prim_func(func, [x], [(4,)])
    np.testing.assert_allclose(out, x.max(axis=1))


def test_multi_stage_softmax():
    n = sym.SymVar("n")
    f = tir.TirBuilder("softmax")
    a = f.arg("A", (n, 6), "f32")
    out = f.out("O", (n, 6), "f32")
    mx = f.alloc("mx", (n,), "f32")
    sm = f.alloc("sm", (n,), "f32")
    i = f.spatial(n)
    j = f.reduce(6)
    f.store(mx, [i], a[i, j], combiner="max")
    i = f.spatial(n)
    j = f.reduce(6)
    f.store(sm, [i], tir.exp(a[i, j] - mx[i]), combiner="sum", init=0.0)
    i, j = f.spatial(n, 6)
    f.store(out, [i, j], tir.exp(a[i, j] - mx[i]) / sm[i])
    func = f.build()
    x = np.random.default_rng(2).standard_normal((3, 6)).astype(np.float32)
    (got,) = tir.call_prim_func(func, [x], [(3, 6)])
    e = np.exp(x - x.max(axis=1, keepdims=True))
    np.testing.assert_allclose(got, e / e.sum(axis=1, keepdims=True), rtol=1e-5)


def test_quantize_decode_bit_ops():
    # The Fig. 9 decode_q4 pattern: unpack 8 4-bit values per uint32.
    f = tir.TirBuilder("decode_q4")
    data = f.arg("data", (4, 2), "u32")  # 4 rows, 16 packed values
    scale = f.arg("scale", (4,), "f32")
    w = f.out("W", (4, 16), "f32")
    k, j = f.spatial(4, 16)
    nibble = tir.cast(
        "i32", (data[k, j // 8] >> tir.IndexValue((j % 8) * 4)) & 15
    )
    f.store(w, [k, j], tir.cast("f32", nibble - 7) * scale[k])
    func = f.build()

    rng = np.random.default_rng(3)
    packed = rng.integers(0, 2**32, size=(4, 2), dtype=np.uint32)
    scales = rng.standard_normal(4).astype(np.float32)
    (got,) = tir.call_prim_func(func, [packed, scales], [(4, 16)])

    expect = np.zeros((4, 16), dtype=np.float32)
    for kk in range(4):
        for jj in range(16):
            nib = (int(packed[kk, jj // 8]) >> ((jj % 8) * 4)) & 15
            expect[kk, jj] = (nib - 7) * scales[kk]
    np.testing.assert_allclose(got, expect, rtol=1e-6)


def test_iota_generator_stage():
    n = sym.SymVar("n")
    f = tir.TirBuilder("iota")
    out = f.out("O", (n,), "i32")
    i = f.spatial(n)
    f.store(out, [i], tir.cast("i32", tir.IndexValue(i * 2)))
    func = f.build()
    (got,) = tir.call_prim_func(func, [], [(5,)])
    np.testing.assert_array_equal(got, np.arange(5, dtype=np.int32) * 2)


def test_explicit_sym_param():
    # A fill whose value depends on an explicit symbolic parameter (Fig. 8).
    n, m = sym.SymVar("n"), sym.SymVar("m")
    f = tir.TirBuilder("fill_m")
    out = f.out("O", (n,), "i64")
    f.sym_param(m)
    i = f.spatial(n)
    f.store(out, [i], tir.IndexValue(m))
    func = f.build()
    (got,) = tir.call_prim_func(func, [], [(3,)], sym_bindings={m: 42})
    np.testing.assert_array_equal(got, np.full(3, 42, dtype=np.int64))


def test_shape_mismatch_raises():
    func = _mm_func()
    x = np.zeros((3, 8), dtype=np.float32)
    w = np.zeros((7, 6), dtype=np.float32)  # wrong K
    y = np.zeros((3, 6), dtype=np.float32)
    with pytest.raises(tir.TirInterpreterError):
        tir.run_prim_func(func, [x, w, y])


def test_wrong_arg_count_raises():
    func = _mm_func()
    with pytest.raises(tir.TirInterpreterError):
        tir.run_prim_func(func, [np.zeros((3, 8), dtype=np.float32)])


def test_select_and_relu():
    n = sym.SymVar("n")
    f = tir.TirBuilder("relu")
    a = f.arg("A", (n,), "f32")
    b = f.out("B", (n,), "f32")
    i = f.spatial(n)
    f.store(b, [i], tir.vmax(a[i], 0.0))
    func = f.build()
    x = np.array([-1.0, 2.0, -3.0, 4.0], dtype=np.float32)
    (out,) = tir.call_prim_func(func, [x], [(4,)])
    np.testing.assert_allclose(out, np.maximum(x, 0))
