"""Shape manipulation and reduction operators."""

import numpy as np
import pytest

from repro import ops, sym
from repro.core import ShapeExpr, TensorAnn, TupleAnn

from .helpers import run_legalized, var_of

RNG = np.random.default_rng(7)


class TestReshape:
    def test_fig3_reshape(self):
        # Figure 3: reshape((n, 2, 2) -> (n, 4)) with the target as a
        # first-class symbolic shape value.
        n = sym.SymVar("n")
        x = RNG.standard_normal((3, 2, 2)).astype(np.float32)
        xv = var_of(x, shape=(n, 2, 2))
        call = ops.reshape(xv, ShapeExpr([n, 4]))
        ann = call.op.deduce(call)
        assert sym.prove_equal(ann.shape[0], n)
        assert sym.as_static_int(ann.shape[1]) == 4
        got = run_legalized(call, [x])
        np.testing.assert_allclose(got, x.reshape(3, 4))

    def test_static_mismatch_rejected(self):
        x = var_of(np.zeros((3, 4), np.float32))
        call = ops.reshape(x, ShapeExpr([5, 2]))
        with pytest.raises(ValueError):
            call.op.deduce(call)

    def test_reshape_2d_to_3d(self):
        x = RNG.standard_normal((4, 6)).astype(np.float32)
        call = ops.reshape(var_of(x), ShapeExpr([4, 2, 3]))
        got = run_legalized(call, [x])
        np.testing.assert_allclose(got, x.reshape(4, 2, 3))


class TestFlatten:
    def test_flatten_symbolic_count(self):
        # Figure 3: flatten((n, 4)) has n*4 elements.
        n = sym.SymVar("n")
        x = RNG.standard_normal((3, 4)).astype(np.float32)
        call = ops.flatten(var_of(x, shape=(n, 4)))
        ann = call.op.deduce(call)
        assert sym.prove_equal(ann.shape[0], n * 4)
        got = run_legalized(call, [x])
        np.testing.assert_allclose(got, x.reshape(-1))


class TestPermuteTakeEtc:
    def test_permute(self):
        x = RNG.standard_normal((2, 3, 4)).astype(np.float32)
        call = ops.permute_dims(var_of(x), (2, 0, 1))
        got = run_legalized(call, [x])
        np.testing.assert_allclose(got, x.transpose(2, 0, 1))

    def test_permute_bad_axes(self):
        call = ops.permute_dims(var_of(np.zeros((2, 3), np.float32)), (0, 0))
        with pytest.raises(ValueError):
            call.op.deduce(call)

    def test_expand_squeeze_roundtrip(self):
        x = RNG.standard_normal((2, 3)).astype(np.float32)
        ex = ops.expand_dims(var_of(x), 1)
        got = run_legalized(ex, [x])
        np.testing.assert_allclose(got, x[:, None, :])
        sq = ops.squeeze(var_of(got), 1)
        got2 = run_legalized(sq, [got])
        np.testing.assert_allclose(got2, x)

    def test_squeeze_non_unit_rejected(self):
        call = ops.squeeze(var_of(np.zeros((2, 3), np.float32)), 1)
        with pytest.raises(ValueError):
            call.op.deduce(call)

    def test_broadcast_to(self):
        x = RNG.standard_normal((1, 3)).astype(np.float32)
        call = ops.broadcast_to(var_of(x), ShapeExpr([4, 3]))
        got = run_legalized(call, [x])
        np.testing.assert_allclose(got, np.broadcast_to(x, (4, 3)))

    def test_take_embedding(self):
        table = RNG.standard_normal((10, 4)).astype(np.float32)
        idx = np.array([1, 5, 5, 2], dtype=np.int64)
        call = ops.take(var_of(table, name="t"), var_of(idx, name="i"))
        ann = call.op.deduce(call)
        assert sym.as_static_int(ann.shape[0]) == 4
        got = run_legalized(call, [table, idx])
        np.testing.assert_allclose(got, table[idx])

    def test_take_symbolic_indices(self):
        n = sym.SymVar("n")
        table = RNG.standard_normal((10, 4)).astype(np.float32)
        idx = np.array([0, 9], dtype=np.int64)
        call = ops.take(
            var_of(table, name="t"), var_of(idx, shape=(n,), name="i")
        )
        ann = call.op.deduce(call)
        assert sym.prove_equal(ann.shape[0], n)
        got = run_legalized(call, [table, idx])
        np.testing.assert_allclose(got, table[idx])

    def test_take_axis1(self):
        x = RNG.standard_normal((3, 8)).astype(np.float32)
        idx = np.array([7, 0], dtype=np.int64)
        call = ops.take(var_of(x, name="x"), var_of(idx, name="i"), axis=1)
        got = run_legalized(call, [x, idx])
        np.testing.assert_allclose(got, x[:, idx])


class TestConcatSplit:
    def test_concat_axis0_symbolic(self):
        n, m = sym.SymVar("n"), sym.SymVar("m")
        a = RNG.standard_normal((2, 4)).astype(np.float32)
        b = RNG.standard_normal((3, 4)).astype(np.float32)
        call = ops.concat(
            [var_of(a, shape=(n, 4), name="a"), var_of(b, shape=(m, 4), name="b")],
            axis=0,
        )
        ann = call.op.deduce(call)
        assert sym.prove_equal(ann.shape[0], n + m)
        got = run_legalized(call, [a, b])
        np.testing.assert_allclose(got, np.concatenate([a, b], axis=0))

    def test_concat_kv_cache_pattern(self):
        # Decode-step pattern: (b, m, d) cache ++ (b, 1, d) new = (b, m+1, d).
        m = sym.SymVar("m")
        cache = RNG.standard_normal((2, 5, 4)).astype(np.float32)
        new = RNG.standard_normal((2, 1, 4)).astype(np.float32)
        call = ops.concat(
            [var_of(cache, shape=(2, m, 4), name="c"), var_of(new, name="n")],
            axis=1,
        )
        ann = call.op.deduce(call)
        assert sym.prove_equal(ann.shape[1], m + 1)
        got = run_legalized(call, [cache, new])
        np.testing.assert_allclose(got, np.concatenate([cache, new], axis=1))

    def test_concat_mismatch_rejected(self):
        a = var_of(np.zeros((2, 4), np.float32), name="a")
        b = var_of(np.zeros((2, 5), np.float32), name="b")
        call = ops.concat([a, b], axis=0)
        with pytest.raises(ValueError):
            call.op.deduce(call)

    def test_split_deduce(self):
        n = sym.SymVar("n")
        x = var_of(np.zeros((4, 6), np.float32), shape=(n, 6))
        call = ops.split(x, 3, axis=1)
        ann = call.op.deduce(call)
        assert isinstance(ann, TupleAnn)
        assert len(ann.fields) == 3
        assert sym.as_static_int(sym.simplify(ann.fields[0].shape[1])) == 2
        assert sym.prove_equal(ann.fields[0].shape[0], n)


class TestReduce:
    def test_sum_axis(self):
        x = RNG.standard_normal((3, 5)).astype(np.float32)
        got = run_legalized(ops.sum_(var_of(x), axis=1), [x])
        np.testing.assert_allclose(got, x.sum(axis=1), rtol=1e-5)

    def test_sum_all(self):
        x = RNG.standard_normal((3, 5)).astype(np.float32)
        got = run_legalized(ops.sum_(var_of(x)), [x])
        np.testing.assert_allclose(got, x.sum(), rtol=1e-5)

    def test_sum_keepdims(self):
        x = RNG.standard_normal((3, 5)).astype(np.float32)
        call = ops.sum_(var_of(x), axis=1, keepdims=True)
        ann = call.op.deduce(call)
        assert sym.as_static_int(ann.shape[1]) == 1
        got = run_legalized(call, [x])
        np.testing.assert_allclose(got, x.sum(axis=1, keepdims=True), rtol=1e-5)

    def test_max_min(self):
        x = RNG.standard_normal((3, 5)).astype(np.float32)
        np.testing.assert_allclose(
            run_legalized(ops.max_(var_of(x), axis=0), [x]), x.max(axis=0)
        )
        np.testing.assert_allclose(
            run_legalized(ops.min_(var_of(x), axis=0), [x]), x.min(axis=0)
        )

    def test_mean(self):
        x = RNG.standard_normal((3, 5)).astype(np.float32)
        got = run_legalized(ops.mean(var_of(x), axis=1), [x])
        np.testing.assert_allclose(got, x.mean(axis=1), rtol=1e-5)

    def test_negative_axis(self):
        x = RNG.standard_normal((3, 5)).astype(np.float32)
        got = run_legalized(ops.sum_(var_of(x), axis=-1), [x])
        np.testing.assert_allclose(got, x.sum(axis=-1), rtol=1e-5)

    def test_bad_axis_rejected(self):
        call = ops.sum_(var_of(np.zeros((3,), np.float32)), axis=2)
        with pytest.raises(ValueError):
            call.op.deduce(call)
