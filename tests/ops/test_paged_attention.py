"""paged_attention: legalization vs library kernel vs dense reference."""

import numpy as np
import pytest

from repro import ops
from repro.core.expr import Call
from repro.runtime.library import REGISTRY

from .helpers import run_legalized, var_of

RNG = np.random.default_rng(11)


def _case(b=2, s=1, h=4, h_kv=2, d=8, page=4, w=3, num_pages=8,
          lengths=None):
    q = RNG.standard_normal((b, s, h, d), dtype=np.float32)
    kp = RNG.standard_normal((num_pages, page, h_kv, d), dtype=np.float32)
    vp = RNG.standard_normal((num_pages, page, h_kv, d), dtype=np.float32)
    kc = RNG.standard_normal((b, s, h_kv, d), dtype=np.float32)
    vc = RNG.standard_normal((b, s, h_kv, d), dtype=np.float32)
    table = RNG.integers(0, num_pages, size=(b, w)).astype(np.int64)
    if lengths is None:
        lengths = RNG.integers(0, w * page + 1, size=(b,)).astype(np.int64)
    else:
        lengths = np.asarray(lengths, np.int64)
    return q, kp, vp, table, lengths, kc, vc


def _dense_reference(q, kp, vp, table, lengths, kc, vc):
    """Per-sequence dense attention over the gathered context."""
    b, s, h, d = q.shape
    page, h_kv = kp.shape[1], kp.shape[2]
    group = h // h_kv
    out = np.zeros_like(q)
    for i in range(b):
        k_past = kp[table[i]].reshape(-1, h_kv, d)[: lengths[i]]
        v_past = vp[table[i]].reshape(-1, h_kv, d)[: lengths[i]]
        for head in range(h):
            g = head // group
            k_all = np.concatenate([k_past[:, g, :], kc[i, :, g, :]])
            v_all = np.concatenate([v_past[:, g, :], vc[i, :, g, :]])
            L = lengths[i]
            for t in range(s):
                ctx = L + t + 1  # paged prefix + causal current block
                scores = q[i, t, head, :] @ k_all[:ctx].T / np.sqrt(d)
                e = np.exp(scores - scores.max())
                out[i, t, head, :] = (e / e.sum()) @ v_all[:ctx]
    return out


def _run_op(q, kp, vp, table, lengths, kc, vc):
    args = [
        var_of(q, name="q"),
        var_of(kp, name="kp"),
        var_of(vp, name="vp"),
        var_of(table, name="bt"),
        var_of(lengths, name="ln"),
        var_of(kc, name="kc"),
        var_of(vc, name="vc"),
    ]
    call = ops.paged_attention(*args)
    return call, run_legalized(call, [q, kp, vp, table, lengths, kc, vc])


def test_legalized_matches_dense_reference():
    arrays = _case()
    _, got = _run_op(*arrays)
    np.testing.assert_allclose(got, _dense_reference(*arrays),
                               rtol=1e-4, atol=1e-5)


def test_legalized_matches_library_kernel():
    arrays = _case(b=1, s=2, h=2, h_kv=1, d=4, page=2, w=2, num_pages=4)
    _, got = _run_op(*arrays)
    kernel = REGISTRY.get("flashinfer.paged_attention")
    lib_out = np.zeros_like(arrays[0])
    kernel.compute(list(arrays), [lib_out])
    np.testing.assert_allclose(got, lib_out, rtol=1e-4, atol=1e-5)
    np.testing.assert_allclose(lib_out, _dense_reference(*arrays),
                               rtol=1e-4, atol=1e-5)


def test_empty_paged_prefix_is_pure_causal_attention():
    """lengths == 0 must reduce to dense causal attention over k_cur."""
    arrays = _case(b=2, s=3, lengths=[0, 0])
    q, kp, vp, table, lengths, kc, vc = arrays
    _, got = _run_op(*arrays)
    dense = ops.attention
    from .helpers import run_legalized as rl, var_of as vo

    call = dense(vo(q, name="q"), vo(kc, name="k"), vo(vc, name="v"))
    expect = rl(call, [q, kc, vc])
    np.testing.assert_allclose(got, expect, rtol=1e-4, atol=1e-5)


def test_padding_slots_do_not_leak():
    """Whatever garbage sits in padded block-table slots must not affect
    the output — only entries below ``lengths`` participate."""
    q, kp, vp, table, lengths, kc, vc = _case(lengths=[5, 5])
    _, base = _run_op(q, kp, vp, table, lengths, kc, vc)
    # Repoint every block past the valid prefix at a different page.
    page = kp.shape[1]
    blocks_used = -(-5 // page)
    table2 = table.copy()
    table2[:, blocks_used:] = (table[:, blocks_used:] + 1) % kp.shape[0]
    _, redirected = _run_op(q, kp, vp, table2, lengths, kc, vc)
    np.testing.assert_allclose(base, redirected, rtol=0, atol=0)


def test_deduce_validates_integer_dtypes():
    q, kp, vp, table, lengths, kc, vc = _case()
    bad_table = table.astype(np.float32)
    with pytest.raises(Exception):
        call = ops.paged_attention(
            var_of(q), var_of(kp), var_of(vp), var_of(bad_table),
            var_of(lengths), var_of(kc), var_of(vc),
        )
        call.op.deduce(call)


def test_op_metadata():
    q, kp, vp, table, lengths, kc, vc = _case()
    call, _ = _run_op(q, kp, vp, table, lengths, kc, vc)
    assert isinstance(call, Call)
    legalized = call.op.legalize(call)
    assert legalized.prim_func.attrs.get("op_kind") == "attention"
    assert REGISTRY.available("flashinfer.paged_attention", "cuda")
    assert not REGISTRY.available("flashinfer.paged_attention", "metal")
