"""Elementwise / binary / matmul operators: deduction and legalization."""

import math

import numpy as np
import pytest

from repro import ops, sym
from repro.core import TensorAnn

from .helpers import run_legalized, var_of


RNG = np.random.default_rng(42)


class TestUnary:
    @pytest.mark.parametrize(
        "make,ref",
        [
            (ops.exp, np.exp),
            (ops.log, np.log),
            (ops.sqrt, np.sqrt),
            (ops.rsqrt, lambda x: 1 / np.sqrt(x)),
            (ops.tanh, np.tanh),
            (ops.sigmoid, lambda x: 1 / (1 + np.exp(-x))),
            (ops.relu, lambda x: np.maximum(x, 0)),
            (ops.negative, lambda x: -x),
            (ops.abs_, np.abs),
        ],
    )
    def test_unary_matches_numpy(self, make, ref):
        x = RNG.standard_normal((3, 5)).astype(np.float32)
        if make is ops.log:
            x = np.abs(x) + 1.0
        elif make is ops.sqrt:
            x = np.abs(x)
        elif make is ops.rsqrt:
            x = np.abs(x) + 1.0
        call = make(var_of(x))
        got = run_legalized(call, [x])
        np.testing.assert_allclose(got, ref(x), rtol=1e-5, atol=1e-6)

    def test_silu(self):
        x = RNG.standard_normal((4,)).astype(np.float32)
        got = run_legalized(ops.silu(var_of(x)), [x])
        np.testing.assert_allclose(got, x / (1 + np.exp(-x)), rtol=1e-5)

    def test_gelu(self):
        x = RNG.standard_normal((4,)).astype(np.float32)
        got = run_legalized(ops.gelu(var_of(x)), [x])
        want = np.array([v * 0.5 * (1 + math.erf(v / math.sqrt(2))) for v in x])
        np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_astype(self):
        x = RNG.standard_normal((4,)).astype(np.float32)
        call = ops.astype(var_of(x), "f16")
        assert call.op.deduce(call).dtype == "f16"
        got = run_legalized(call, [x])
        assert got.dtype == np.float16

    def test_unary_symbolic_shape_deduction(self):
        n = sym.SymVar("n")
        x = var_of(np.zeros((3, 4), np.float32), shape=(n, 4))
        ann = ops.exp(x).op.deduce(ops.exp(x))
        assert sym.prove_equal(ann.shape[0], n)


class TestBinary:
    def test_add_same_shape(self):
        a = RNG.standard_normal((2, 3)).astype(np.float32)
        b = RNG.standard_normal((2, 3)).astype(np.float32)
        got = run_legalized(ops.add(var_of(a), var_of(b)), [a, b])
        np.testing.assert_allclose(got, a + b, rtol=1e-6)

    def test_broadcast_row(self):
        a = RNG.standard_normal((2, 3)).astype(np.float32)
        b = RNG.standard_normal((3,)).astype(np.float32)
        got = run_legalized(ops.multiply(var_of(a), var_of(b)), [a, b])
        np.testing.assert_allclose(got, a * b, rtol=1e-6)

    def test_broadcast_static_one(self):
        a = RNG.standard_normal((2, 1)).astype(np.float32)
        b = RNG.standard_normal((2, 4)).astype(np.float32)
        got = run_legalized(ops.add(var_of(a), var_of(b)), [a, b])
        np.testing.assert_allclose(got, a + b, rtol=1e-6)

    def test_symbolic_broadcast_deduce(self):
        n = sym.SymVar("n")
        a = var_of(np.zeros((3, 4), np.float32), shape=(n, 4), name="a")
        b = var_of(np.zeros((4,), np.float32), name="b")
        ann = ops.add(a, b).op.deduce(ops.add(a, b))
        assert sym.prove_equal(ann.shape[0], n)

    def test_incompatible_dims_rejected(self):
        a = var_of(np.zeros((3, 4), np.float32), name="a")
        b = var_of(np.zeros((3, 5), np.float32), name="b")
        with pytest.raises(ValueError):
            ops.add(a, b).op.deduce(ops.add(a, b))

    def test_symbolic_dims_must_prove_equal(self):
        n, m = sym.SymVar("n"), sym.SymVar("m")
        a = var_of(np.zeros((3, 4), np.float32), shape=(n, 4), name="a")
        b = var_of(np.zeros((3, 4), np.float32), shape=(m, 4), name="b")
        with pytest.raises(ValueError):
            ops.add(a, b).op.deduce(ops.add(a, b))

    def test_dtype_mismatch_rejected(self):
        a = var_of(np.zeros((3,), np.float32), name="a")
        b = var_of(np.zeros((3,), np.int32), name="b")
        with pytest.raises(TypeError):
            ops.add(a, b).op.deduce(ops.add(a, b))

    def test_divide_maximum_minimum_power(self):
        a = np.abs(RNG.standard_normal((5,))).astype(np.float32) + 1.0
        b = np.abs(RNG.standard_normal((5,))).astype(np.float32) + 1.0
        np.testing.assert_allclose(
            run_legalized(ops.divide(var_of(a), var_of(b)), [a, b]), a / b, rtol=1e-6
        )
        np.testing.assert_allclose(
            run_legalized(ops.maximum(var_of(a), var_of(b)), [a, b]),
            np.maximum(a, b),
        )
        np.testing.assert_allclose(
            run_legalized(ops.minimum(var_of(a), var_of(b)), [a, b]),
            np.minimum(a, b),
        )
        np.testing.assert_allclose(
            run_legalized(ops.power(var_of(a), var_of(b)), [a, b]),
            np.power(a, b),
            rtol=1e-5,
        )


class TestMatmul:
    def test_2d(self):
        a = RNG.standard_normal((3, 4)).astype(np.float32)
        b = RNG.standard_normal((4, 5)).astype(np.float32)
        got = run_legalized(ops.matmul(var_of(a, name="a"), var_of(b, name="b")), [a, b])
        np.testing.assert_allclose(got, a @ b, rtol=1e-5)

    def test_symbolic_rows(self):
        n = sym.SymVar("n")
        a = RNG.standard_normal((3, 4)).astype(np.float32)
        b = RNG.standard_normal((4, 5)).astype(np.float32)
        call = ops.matmul(var_of(a, shape=(n, 4), name="a"), var_of(b, name="b"))
        ann = call.op.deduce(call)
        assert sym.prove_equal(ann.shape[0], n)
        got = run_legalized(call, [a, b])
        np.testing.assert_allclose(got, a @ b, rtol=1e-5)

    def test_batched(self):
        a = RNG.standard_normal((2, 3, 4)).astype(np.float32)
        b = RNG.standard_normal((2, 4, 5)).astype(np.float32)
        got = run_legalized(ops.matmul(var_of(a, name="a"), var_of(b, name="b")), [a, b])
        np.testing.assert_allclose(got, a @ b, rtol=1e-5)

    def test_batched_broadcast(self):
        a = RNG.standard_normal((2, 3, 4)).astype(np.float32)
        b = RNG.standard_normal((4, 5)).astype(np.float32)
        got = run_legalized(ops.matmul(var_of(a, name="a"), var_of(b, name="b")), [a, b])
        np.testing.assert_allclose(got, a @ b, rtol=1e-5)

    def test_4d_attention_shape(self):
        # (b, h, s, d) @ (b, h, d, s2): the attention-scores matmul.
        a = RNG.standard_normal((2, 2, 3, 4)).astype(np.float32)
        b = RNG.standard_normal((2, 2, 4, 6)).astype(np.float32)
        got = run_legalized(ops.matmul(var_of(a, name="a"), var_of(b, name="b")), [a, b])
        np.testing.assert_allclose(got, a @ b, rtol=1e-5)

    def test_contraction_mismatch_rejected(self):
        a = var_of(np.zeros((3, 4), np.float32), name="a")
        b = var_of(np.zeros((5, 6), np.float32), name="b")
        with pytest.raises(ValueError):
            ops.matmul(a, b).op.deduce(ops.matmul(a, b))

    def test_out_dtype(self):
        a = RNG.standard_normal((2, 3)).astype(np.float16)
        b = RNG.standard_normal((3, 2)).astype(np.float16)
        call = ops.matmul(var_of(a, name="a"), var_of(b, name="b"), out_dtype="f32")
        assert call.op.deduce(call).dtype == "f32"
        got = run_legalized(call, [a, b])
        assert got.dtype == np.float32

    def test_matmul_pattern_is_fusible(self):
        from repro import tir
        from repro.ops import finalize_prim_func

        a = var_of(np.zeros((3, 4), np.float32), name="a")
        b = var_of(np.zeros((4, 5), np.float32), name="b")
        call = ops.matmul(a, b)
        legalized = call.op.legalize(call)
        func = finalize_prim_func(legalized.prim_func)
        assert tir.pattern_kind(func) == tir.PatternKind.OUT_EWISE_FUSIBLE
