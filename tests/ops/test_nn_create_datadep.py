"""NN ops (softmax, norms, RoPE, masks), creation ops and data-dependent ops."""

import numpy as np
import pytest

from repro import ops, sym, tir
from repro.core import TensorAnn
from repro.ops import finalize_prim_func

from .helpers import run_legalized, var_of

RNG = np.random.default_rng(11)


def _softmax_ref(x):
    e = np.exp(x - x.max(axis=-1, keepdims=True))
    return e / e.sum(axis=-1, keepdims=True)


class TestSoftmax:
    def test_2d(self):
        x = RNG.standard_normal((3, 6)).astype(np.float32)
        got = run_legalized(ops.softmax(var_of(x)), [x])
        np.testing.assert_allclose(got, _softmax_ref(x), rtol=1e-5)

    def test_4d_attention_scores(self):
        x = RNG.standard_normal((2, 2, 3, 5)).astype(np.float32)
        got = run_legalized(ops.softmax(var_of(x)), [x])
        np.testing.assert_allclose(got, _softmax_ref(x), rtol=1e-5)

    def test_1d(self):
        x = RNG.standard_normal((7,)).astype(np.float32)
        got = run_legalized(ops.softmax(var_of(x)), [x])
        np.testing.assert_allclose(got, _softmax_ref(x), rtol=1e-5)


class TestNorms:
    def test_rms_norm(self):
        x = RNG.standard_normal((3, 8)).astype(np.float32)
        w = RNG.standard_normal((8,)).astype(np.float32)
        got = run_legalized(
            ops.rms_norm(var_of(x, name="x"), var_of(w, name="w"), eps=1e-5),
            [x, w],
        )
        want = x / np.sqrt((x**2).mean(axis=-1, keepdims=True) + 1e-5) * w
        np.testing.assert_allclose(got, want, rtol=1e-4)

    def test_layer_norm(self):
        x = RNG.standard_normal((3, 8)).astype(np.float32)
        g = RNG.standard_normal((8,)).astype(np.float32)
        b = RNG.standard_normal((8,)).astype(np.float32)
        got = run_legalized(
            ops.layer_norm(var_of(x, name="x"), var_of(g, name="g"), var_of(b, name="b")),
            [x, g, b],
        )
        mu = x.mean(axis=-1, keepdims=True)
        var = ((x - mu) ** 2).mean(axis=-1, keepdims=True)
        want = (x - mu) / np.sqrt(var + 1e-5) * g + b
        np.testing.assert_allclose(got, want, rtol=1e-4)

    def test_rms_norm_symbolic_rows(self):
        n = sym.SymVar("n")
        x = RNG.standard_normal((4, 8)).astype(np.float32)
        w = np.ones(8, dtype=np.float32)
        call = ops.rms_norm(var_of(x, shape=(n, 8), name="x"), var_of(w, name="w"))
        ann = call.op.deduce(call)
        assert sym.prove_equal(ann.shape[0], n)
        got = run_legalized(call, [x, w])
        want = x / np.sqrt((x**2).mean(axis=-1, keepdims=True) + 1e-5)
        np.testing.assert_allclose(got, want, rtol=1e-4)


def _rope_ref(x, offset, theta=10000.0):
    b, s, h, d = x.shape
    half = d // 2
    pos = np.arange(s)[:, None] + offset
    freqs = theta ** (-2.0 * (np.arange(d) % half) / (2 * half))
    angle = (pos * freqs).astype(np.float32)  # (s, d)
    rotated = np.concatenate([-x[..., half:], x[..., :half]], axis=-1)
    return x * np.cos(angle)[None, :, None, :] + rotated * np.sin(angle)[None, :, None, :]


class TestRope:
    def test_rope_zero_offset(self):
        x = RNG.standard_normal((2, 3, 2, 8)).astype(np.float32)
        got = run_legalized(ops.rope(var_of(x)), [x])
        np.testing.assert_allclose(got, _rope_ref(x, 0), rtol=1e-4, atol=1e-5)

    def test_rope_static_offset(self):
        x = RNG.standard_normal((1, 2, 2, 8)).astype(np.float32)
        got = run_legalized(ops.rope(var_of(x), offset=5), [x])
        np.testing.assert_allclose(got, _rope_ref(x, 5), rtol=1e-4, atol=1e-5)

    def test_rope_symbolic_offset_needs_sym_param(self):
        # The decode-phase pattern: offset is the (symbolic) KV length m,
        # not inferable from any buffer shape -> explicit symbolic param
        # (the Fig. 8 extra-argument pattern).
        m = sym.SymVar("m")
        x = RNG.standard_normal((1, 1, 2, 8)).astype(np.float32)
        call = ops.rope(var_of(x), offset=m)
        legalized = call.op.legalize(call)
        func = finalize_prim_func(legalized.prim_func)
        assert [v.name for v in func.sym_params] == ["m"]
        got = run_legalized(call, [x], sym_bindings={m: 5})
        np.testing.assert_allclose(got, _rope_ref(x, 5), rtol=1e-4, atol=1e-5)


class TestCausalMask:
    def test_square_mask(self):
        call = ops.causal_mask(4, 4)
        got = run_legalized(call, [])
        want = np.where(np.tril(np.ones((4, 4))), 0.0, -1e9).astype(np.float32)
        np.testing.assert_allclose(got, want)

    def test_prefill_with_history(self):
        # 2 queries attending to 5 keys: queries align to the end.
        call = ops.causal_mask(2, 5)
        got = run_legalized(call, [])
        want = np.full((2, 5), -1e9, dtype=np.float32)
        want[0, :4] = 0.0
        want[1, :5] = 0.0
        np.testing.assert_allclose(got, want)

    def test_symbolic_sizes(self):
        s, m = sym.SymVar("s"), sym.SymVar("m")
        call = ops.causal_mask(s, m)
        legalized = call.op.legalize(call)
        func = finalize_prim_func(legalized.prim_func)
        # Both dims appear on the output buffer: inferable, no sym params.
        assert func.sym_params == []
        got = run_legalized(call, [], sym_bindings={s: 3, m: 3})
        want = np.where(np.tril(np.ones((3, 3))), 0.0, -1e9).astype(np.float32)
        np.testing.assert_allclose(got, want)


class TestCreate:
    def test_zeros_ones_full(self):
        got = run_legalized(ops.full((2, 3), 2.5, "f32"), [])
        np.testing.assert_allclose(got, np.full((2, 3), 2.5, np.float32))
        got = run_legalized(ops.zeros((4,), "f32"), [])
        np.testing.assert_allclose(got, np.zeros(4, np.float32))

    def test_symbolic_fill_needs_sym_param(self):
        n = sym.SymVar("n")
        call = ops.full((n,), 1.0, "f32")
        legalized = call.op.legalize(call)
        func = finalize_prim_func(legalized.prim_func)
        # n appears on the output buffer so it is inferable.
        assert func.sym_params == []
        got = run_legalized(call, [], sym_bindings={n: 5})
        np.testing.assert_allclose(got, np.ones(5, np.float32))

    def test_arange(self):
        got = run_legalized(ops.arange(5), [])
        np.testing.assert_array_equal(got, np.arange(5))

    def test_arange_symbolic_start(self):
        m = sym.SymVar("m")
        call = ops.arange(3, start=m)
        legalized = call.op.legalize(call)
        func = finalize_prim_func(legalized.prim_func)
        assert [v.name for v in func.sym_params] == ["m"]
        got = run_legalized(call, [], sym_bindings={m: 10})
        np.testing.assert_array_equal(got, np.array([10, 11, 12]))


class TestDataDependent:
    def test_unique_deduces_coarse(self):
        # Figure 3's unique: ndim known, length unknown.
        n = sym.SymVar("n")
        x = var_of(np.zeros((4,), np.float32), shape=(n,))
        call = ops.unique(x)
        ann = call.op.deduce(call)
        assert isinstance(ann, TensorAnn)
        assert ann.shape is None and ann.ndim == 1 and ann.dtype == "f32"

    def test_unique_has_no_tensor_program(self):
        assert ops.unique(var_of(np.zeros(3, np.float32))).op.legalize is None
        assert ops.unique_op.extern_name == "vm.builtin.unique"

    def test_argmax(self):
        x = RNG.standard_normal((3, 7)).astype(np.float32)
        got = run_legalized(ops.argmax(var_of(x)), [x])
        np.testing.assert_array_equal(got, x.argmax(axis=-1))

    def test_argmax_1d(self):
        x = RNG.standard_normal((9,)).astype(np.float32)
        got = run_legalized(ops.argmax(var_of(x)), [x])
        assert got.shape == (1,)
        assert got[0] == x.argmax()


class TestPatternKinds:
    """End-to-end: legalized ops classify as the paper expects (§4.2)."""

    def _kind(self, call):
        legalized = call.op.legalize(call)
        return tir.pattern_kind(finalize_prim_func(legalized.prim_func))

    def test_elementwise_ops(self):
        x = var_of(np.zeros((3, 4), np.float32))
        assert self._kind(ops.relu(x)) == tir.PatternKind.ELEMENT_WISE
        assert self._kind(ops.exp(x)) == tir.PatternKind.ELEMENT_WISE

    def test_broadcast_binary(self):
        a = var_of(np.zeros((3, 4), np.float32), name="a")
        b = var_of(np.zeros((4,), np.float32), name="b")
        assert self._kind(ops.add(a, b)) == tir.PatternKind.ELEMENT_WISE

    def test_injective_ops(self):
        x = var_of(np.zeros((3, 4), np.float32))
        assert self._kind(ops.flatten(x)) == tir.PatternKind.INJECTIVE
        assert self._kind(ops.permute_dims(x, (1, 0))) == tir.PatternKind.INJECTIVE

    def test_reduction_ops(self):
        x = var_of(np.zeros((3, 4), np.float32))
        assert self._kind(ops.sum_(x, axis=1)) == tir.PatternKind.REDUCTION

    def test_take_is_opaque(self):
        t = var_of(np.zeros((5, 2), np.float32), name="t")
        i = var_of(np.zeros((3,), np.int64), name="i")
        assert self._kind(ops.take(t, i)) == tir.PatternKind.OPAQUE

    def test_softmax_is_opaque(self):
        x = var_of(np.zeros((3, 4), np.float32))
        assert self._kind(ops.softmax(x)) == tir.PatternKind.OPAQUE
