"""Shared helpers: legalize an operator call and execute it on NumPy data."""

import numpy as np

from repro import dtypes, sym, tir
from repro.core import TensorAnn, Var
from repro.ops import finalize_prim_func


def var_of(array: np.ndarray, shape=None, name="x") -> Var:
    """Graph variable annotated with (optionally symbolic) shape."""
    dtype = dtypes.from_numpy(array.dtype)
    ann_shape = shape if shape is not None else tuple(int(d) for d in array.shape)
    return Var(name, TensorAnn(ann_shape, dtype))


def run_legalized(call, arrays, sym_bindings=None):
    """Legalize ``call`` and run the tensor program on ``arrays``.

    ``call.args`` must be Vars created by :func:`var_of` in the same order
    as ``arrays`` (extra non-tensor args like ShapeExpr are skipped).
    Returns the output array.
    """
    op = call.op
    legalized = op.legalize(call)
    func = finalize_prim_func(legalized.prim_func)

    bindings = dict(sym_bindings or {})
    # Infer single-variable symbolic dims from the concrete input arrays.
    tensor_args = [a for a in call.args if isinstance(a, Var)]
    for arg, arr in zip(tensor_args, arrays):
        ann = arg.ann
        if isinstance(ann, TensorAnn) and ann.shape is not None:
            for dim, actual in zip(ann.shape, arr.shape):
                if isinstance(dim, sym.SymVar) and dim not in bindings:
                    bindings[dim] = int(actual)
    out_ann = legalized.out_ann
    out_shape = tuple(
        sym.evaluate(d, bindings) if not sym.is_static(d) else sym.as_static_int(sym.simplify(d))
        for d in out_ann.shape
    )
    out = np.zeros(out_shape, dtype=dtypes.to_numpy(out_ann.dtype))
    tir.run_prim_func(func, list(arrays) + [out], sym_bindings=bindings)
    return out
