"""nn.Module frontend: parameter traversal, export, layer numerics."""

import numpy as np
import pytest

from repro import transform
from repro.core import TensorAnn
from repro.frontend import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    RMSNorm,
    export_module,
)
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine


class TwoLayer(Module):
    def __init__(self):
        self.fc1 = Linear(8, 16, bias=True)
        self.fc2 = Linear(16, 4)
        self.norm = RMSNorm(4)

    def forward(self, bb, x):
        from repro import ops

        h = self.fc1.forward(bb, x)
        h = bb.emit(ops.relu(h))
        h = self.fc2.forward(bb, h)
        return self.norm.forward(bb, h)


class TestModuleTree:
    def test_named_parameters_order(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_parameters()]
        assert names == [
            "fc1.weight", "fc1.bias", "fc2.weight", "norm.weight"
        ]

    def test_list_submodules(self):
        class Stack(Module):
            def __init__(self):
                self.layers = [Linear(4, 4) for _ in range(3)]

        names = [name for name, _ in Stack().named_parameters()]
        assert names == ["layers.0.weight", "layers.1.weight", "layers.2.weight"]

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 8 * 16 + 16 + 16 * 4 + 4

    def test_initialize_fills_all(self):
        model = TwoLayer()
        model.initialize(seed=0)
        assert all(p.data is not None for p in model.parameters())

    def test_parameter_outside_export_raises(self):
        param = Parameter((2, 2))
        with pytest.raises(RuntimeError):
            _ = param.var


class TestExport:
    def _export(self):
        model = TwoLayer()
        model.initialize(seed=3, scale=0.3)
        return export_module(
            model,
            {"main": ({"x": TensorAnn(("n", 8), "f32")}, model.forward)},
        )

    def test_signature_layout(self):
        exported = self._export()
        func = exported.mod["main"]
        assert len(func.params) == 1 + 4  # x + four parameters
        assert func.params[0].name_hint == "x"
        assert func.params[1].name_hint == "p_fc1_weight"

    def test_numerics_match_numpy(self):
        exported = self._export()
        exe = transform.build(exported.mod, TEST_DEVICE,
                              enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.random.default_rng(5).standard_normal((3, 8)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x), *exported.concrete_params())

        p = {name: param.data for name, param in exported.param_order}
        h = np.maximum(x @ p["fc1.weight"] + p["fc1.bias"], 0) @ p["fc2.weight"]
        want = h / np.sqrt((h**2).mean(-1, keepdims=True) + 1e-5) * p["norm.weight"]
        np.testing.assert_allclose(out.numpy(), want, rtol=1e-4)

    def test_abstract_params_shapes(self):
        exported = self._export()
        arrays = exported.abstract_params()
        assert [a.shape for a in arrays] == [(8, 16), (16,), (16, 4), (4,)]
        assert not arrays[0].is_concrete

    def test_concrete_params_require_data(self):
        model = TwoLayer()
        exported = export_module(
            model, {"main": ({"x": TensorAnn((2, 8), "f32")}, model.forward)}
        )
        with pytest.raises(RuntimeError, match="no data"):
            exported.concrete_params()

    def test_param_var_cleared_after_export(self):
        exported = self._export()
        for _, param in exported.param_order:
            with pytest.raises(RuntimeError):
                _ = param.var

    def test_two_functions_share_weight_list(self):
        model = TwoLayer()
        model.initialize(seed=1)

        def fwd(bb, x):
            return model.forward(bb, x)

        exported = export_module(model, {
            "f1": ({"x": TensorAnn(("n", 8), "f32")}, fwd),
            "f2": ({"x": TensorAnn((2, 8), "f32")}, fwd),
        })
        assert "f1" in exported.mod and "f2" in exported.mod
        # Same parameter count appended to both signatures.
        assert len(exported.mod["f1"].params) == len(exported.mod["f2"].params)


class TestLayers:
    def test_embedding_lookup(self):
        emb = Embedding(10, 4)
        emb.initialize(seed=0)

        def fwd(bb, ids):
            return emb.forward(bb, ids)

        exported = export_module(
            emb, {"main": ({"ids": TensorAnn(("n",), "i64")}, fwd)}
        )
        exe = transform.build(exported.mod, TEST_DEVICE,
                              enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        ids = np.array([3, 9, 0], dtype=np.int64)
        out = vm.run("main", NDArray.from_numpy(ids), *exported.concrete_params())
        np.testing.assert_allclose(out.numpy(), emb.weight.data[ids])

    def test_layer_norm_numerics(self):
        ln = LayerNorm(6)
        ln.initialize(seed=2)

        def fwd(bb, x):
            return ln.forward(bb, x)

        exported = export_module(
            ln, {"main": ({"x": TensorAnn((4, 6), "f32")}, fwd)}
        )
        exe = transform.build(exported.mod, TEST_DEVICE,
                              enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.random.default_rng(1).standard_normal((4, 6)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x), *exported.concrete_params())
        mu = x.mean(-1, keepdims=True)
        var = ((x - mu) ** 2).mean(-1, keepdims=True)
        want = (x - mu) / np.sqrt(var + 1e-5) * ln.gamma.data + ln.beta.data
        np.testing.assert_allclose(out.numpy(), want, rtol=1e-4, atol=1e-5)
