"""Group quantization: packing, decode tensor program, QuantizedLinear."""

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import tir, transform
from repro.core import TensorAnn
from repro.frontend import (
    QuantizedLinear,
    decode_prim_func,
    dequantize_weight,
    export_module,
    quantize_weight,
)
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine


class TestPacking:
    @pytest.mark.parametrize("bits", [2, 3, 4, 8])
    def test_roundtrip_error_bounded(self, bits):
        rng = np.random.default_rng(bits)
        weight = rng.standard_normal((8, 32)).astype(np.float32)
        packed, scales = quantize_weight(weight, bits, group_size=16)
        restored = dequantize_weight(packed, scales, bits, 16, 32)
        # Quantization error is bounded by half a step per group.
        max_err = np.abs(restored - weight).max()
        step = scales.max()
        assert max_err <= step * 0.51 + 1e-6

    def test_packed_shapes(self):
        packed, scales = quantize_weight(np.zeros((4, 32), np.float32), 4, 8)
        assert packed.shape == (4, 4)  # 8 nibbles per u32
        assert scales.shape == (4, 4)
        assert packed.dtype == np.uint32

    def test_zero_weight_scale_safe(self):
        packed, scales = quantize_weight(np.zeros((2, 8), np.float32), 4, 8)
        restored = dequantize_weight(packed, scales, 4, 8, 8)
        np.testing.assert_allclose(restored, 0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        bits=st.sampled_from([2, 4, 8]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_decode_prim_func_matches_reference(self, bits, seed):
        """The decode tensor program and the NumPy dequantizer agree."""
        k, n, group = 4, 16, 8
        rng = np.random.default_rng(seed)
        weight = rng.standard_normal((k, n)).astype(np.float32)
        packed, scales = quantize_weight(weight, bits, group)
        func = decode_prim_func(k, n, bits, group, "f32")
        (got,) = tir.call_prim_func(func, [packed, scales], [(k, n)])
        want = dequantize_weight(packed, scales, bits, group, n)
        np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_decode_is_injective(self):
        func = decode_prim_func(8, 16, 4, 8)
        assert tir.pattern_kind(func) == tir.PatternKind.INJECTIVE


class TestQuantizedLinear:
    def _exported(self):
        layer = QuantizedLinear(16, 8, bits=4, group_size=8)
        rng = np.random.default_rng(0)
        weight = rng.standard_normal((16, 8)).astype(np.float32) * 0.5
        layer.load_float_weight(weight)

        def fwd(bb, x):
            return layer.forward(bb, x)

        exported = export_module(
            layer, {"main": ({"x": TensorAnn(("n", 16), "f32")}, fwd)}
        )
        return exported, layer, weight

    def test_end_to_end_matches_dequantized(self):
        exported, layer, weight = self._exported()
        exe = transform.build(exported.mod, TEST_DEVICE,
                              enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.random.default_rng(1).standard_normal((3, 16)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x), *exported.concrete_params())
        w_ref = dequantize_weight(layer.packed.data, layer.scales.data, 4, 8, 8)
        np.testing.assert_allclose(out.numpy(), x @ w_ref, rtol=1e-4)
        # ... and approximates the float weight.
        assert np.abs(out.numpy() - x @ weight).max() < 0.5

    def test_decode_fuses_into_matmul(self):
        exported, _, _ = self._exported()
        exe = transform.build(exported.mod, TEST_DEVICE,
                              enable_library_dispatch=False,
                              enable_cuda_graph=False)
        fused = [f for f in exe.tir_funcs.values() if f.attrs.get("fused")]
        assert fused, "decode+matmul must fuse"
        assert all(len(f.stages) == 1 for f in fused), "decode inlined into FMA"

    def test_no_library_dispatch_for_quantized_matmul(self):
        exported, _, _ = self._exported()
        exe = transform.build(exported.mod, TEST_DEVICE,
                              enable_library_dispatch=True,
                              enable_cuda_graph=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("main", NDArray.abstract((4, 16), "f32"),
               *exported.abstract_params())
        assert vm.stats.lib_calls == 0, (
            "quantized matmul must stay on the fused generated kernel"
        )

    def test_parameter_shapes(self):
        layer = QuantizedLinear(64, 128, bits=4, group_size=32)
        assert layer.packed.shape == (64, 16)
        assert layer.scales.shape == (64, 4)
