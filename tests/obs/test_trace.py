"""Tracing VM: exact accounting, provenance on every kernel, zero cost off."""

import numpy as np

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, const
from repro.obs import TraceRecorder
from repro.runtime import TEST_DEVICE, VirtualMachine
from repro.runtime.ndarray import NDArray


def _build(n_bound=64, **flags):
    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 4), "f32")}) as frame:
        (x,) = frame.params
        w = const(np.ones((4, 4), np.float32))
        with bb.dataflow():
            h = bb.emit(ops.matmul(x, w))
            h = bb.emit(ops.relu(h))
            h = bb.emit(ops.silu(h))
            gv = bb.emit_output(h)
        bb.emit_func_output(gv)
    return transform.build(bb.get(), TEST_DEVICE,
                           sym_var_upper_bounds={"n": n_bound}, **flags)


def _run(vm, n=8):
    x = NDArray.from_numpy(np.ones((n, 4), np.float32))
    return vm.run("main", x)


class TestExactAccounting:
    def test_event_durations_sum_to_clock(self):
        vm = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        vm.tracer = TraceRecorder()
        _run(vm)
        _run(vm)  # second run: graph replay path
        assert abs(vm.tracer.total_time_s() - vm.stats.time_s) < 1e-9

    def test_disabled_tracing_is_bit_identical(self):
        plain = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        traced = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        traced.tracer = TraceRecorder()
        for _ in range(2):
            _run(plain)
            _run(traced)
        assert plain.stats.time_s == traced.stats.time_s
        assert plain.stats.peak_bytes == traced.stats.peak_bytes
        assert plain.stats.kernel_launches == traced.stats.kernel_launches

    def test_kernel_and_launch_split(self):
        vm = VirtualMachine(_build(enable_cuda_graph=False), TEST_DEVICE,
                            concrete=True)
        vm.tracer = TraceRecorder()
        _run(vm)
        kernels = vm.tracer.kernel_events()
        assert kernels
        for e in kernels:
            if e.kind == "builtin":
                continue
            assert e.args["roofline_s"] >= 0.0
            assert abs(e.args["roofline_s"] + e.args["launch_s"] - e.dur_s) < 1e-12
            # Outside graph replay, every launch pays the overhead.
            assert e.args["launch_s"] == TEST_DEVICE.kernel_launch_overhead


class TestProvenance:
    def test_every_kernel_event_has_provenance(self):
        vm = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        vm.tracer = TraceRecorder()
        _run(vm)
        kernels = [e for e in vm.tracer.kernel_events()
                   if e.kind in ("kernel", "library")]
        assert kernels
        for e in kernels:
            assert e.prov, f"kernel event {e.name!r} lost its provenance"

    def test_fused_kernel_carries_merged_chain(self):
        vm = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        vm.tracer = TraceRecorder()
        _run(vm)
        chains = [e.prov for e in vm.tracer.events if len(e.prov) > 1]
        assert chains, "fusion should produce at least one multi-site chain"


class TestStructuredEvents:
    def test_capture_then_replay_events(self):
        vm = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        vm.tracer = TraceRecorder()
        _run(vm)
        _run(vm)
        kinds = [e.kind for e in vm.tracer.events]
        assert "graph_capture" in kinds
        assert "graph_replay" in kinds
        replay = next(e for e in vm.tracer.events if e.kind == "graph_replay")
        assert replay.args["kernels"] > 0

    def test_alloc_events_carry_sizes(self):
        vm = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        vm.tracer = TraceRecorder()
        _run(vm)
        allocs = [e for e in vm.tracer.events if e.kind == "alloc"]
        assert allocs
        for e in allocs:
            assert e.args["size"] > 0

    def test_pool_free_events_without_planning(self):
        vm = VirtualMachine(_build(enable_memory_planning=False),
                            TEST_DEVICE, concrete=True)
        vm.tracer = TraceRecorder()
        _run(vm)
        kinds = {e.kind for e in vm.tracer.events}
        assert "free" in kinds, "kill instructions should emit free events"

    def test_symbolic_bindings_recorded(self):
        vm = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        vm.tracer = TraceRecorder()
        _run(vm, n=8)
        syms = [e.args.get("sym") for e in vm.tracer.events
                if e.kind == "kernel" and e.args.get("sym")]
        assert any(s.get("n") == 8 for s in syms), (
            "kernel events should record the concrete binding of n"
        )

    def test_capture_outputs(self):
        vm = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        vm.tracer = TraceRecorder(capture_outputs=True)
        out = _run(vm)
        captured = [e for e in vm.tracer.events if e.outputs is not None]
        assert captured
        final = captured[-1].outputs[0]
        np.testing.assert_allclose(final, out.numpy())

    def test_ts_monotonic_and_event_dicts_json_clean(self):
        import json

        vm = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        vm.tracer = TraceRecorder(capture_outputs=True)
        _run(vm)
        last = -1.0
        for e in vm.tracer.events:
            assert e.ts_s >= last
            last = e.ts_s
        json.dumps([e.to_dict() for e in vm.tracer.events])  # must not raise

    def test_clear_resets_events(self):
        vm = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        vm.tracer = TraceRecorder()
        _run(vm)
        assert vm.tracer.events
        vm.tracer.clear()
        assert vm.tracer.events == []
