"""Shared nearest-rank statistics helpers (repro.obs.stats).

This is the single percentile/distribution implementation behind the
serving summaries, the telemetry registry, the SLO monitor and the obs
report layer — regressions here would silently move every "p99" the
repo reports, including the baseline-hash-pinned serving summaries, so
the definition is locked down exactly.
"""

import math

import pytest

from repro.obs.stats import dist, extended_dist, percentile


# ---------------------------------------------------------------------------
# percentile: nearest-rank definition
# ---------------------------------------------------------------------------


def test_percentile_empty_is_none():
    assert percentile([], 50) is None
    assert percentile([], 99) is None


def test_percentile_single_sample_is_that_sample():
    for p in (0, 1, 50, 90, 99, 100):
        assert percentile([7.5], p) == 7.5


def test_percentile_returns_actual_data_points():
    values = [0.3, 0.1, 0.9, 0.5, 0.7]
    for p in (10, 25, 50, 75, 90, 99):
        assert percentile(values, p) in values


def test_percentile_nearest_rank_exact():
    # Canonical nearest-rank example: rank = ceil(p/100 * n).
    values = [15, 20, 35, 40, 50]
    assert percentile(values, 5) == 15
    assert percentile(values, 30) == 20
    assert percentile(values, 40) == 20
    assert percentile(values, 50) == 35
    assert percentile(values, 100) == 50


def test_percentile_order_invariant():
    values = [5.0, 1.0, 4.0, 2.0, 3.0]
    assert percentile(values, 50) == percentile(sorted(values), 50) == 3.0


def test_percentile_never_interpolates():
    # p50 of [1, 2] is 1 under nearest-rank (rank ceil(0.5*2)=1), not 1.5.
    assert percentile([1.0, 2.0], 50) == 1.0
    assert percentile([1.0, 2.0], 51) == 2.0


# ---------------------------------------------------------------------------
# dist / extended_dist shapes
# ---------------------------------------------------------------------------


def test_dist_shape_and_values():
    d = dist([2.0, 1.0, 3.0])
    assert set(d) == {"mean", "p50", "p90", "p99"}
    assert d["mean"] == pytest.approx(2.0)
    assert d["p50"] == 2.0
    assert d["p99"] == 3.0


def test_dist_empty_all_none():
    d = dist([])
    assert d == {"mean": None, "p50": None, "p90": None, "p99": None}


def test_dist_mean_sums_in_observed_order():
    # Float addition is not associative: the mean must be computed over
    # the series as observed (the serving summaries' byte format is
    # pinned on this), never over the sorted copy.
    values = [0.1, 0.7, 1e-9, 0.3, 1e9, -1e9, 0.2]
    assert dist(values)["mean"] == sum(values) / len(values)


def test_dist_custom_percentiles():
    d = dist([1.0, 2.0, 3.0, 4.0], percentiles={"p25": 25.0, "p75": 75.0})
    assert set(d) == {"mean", "p25", "p75"}
    assert d["p25"] == 1.0
    assert d["p75"] == 3.0


def test_extended_dist_adds_count_sum_min_max():
    d = extended_dist([3.0, 1.0, 2.0])
    assert d["count"] == 3
    assert d["sum"] == pytest.approx(6.0)
    assert d["min"] == 1.0
    assert d["max"] == 3.0
    assert d["p50"] == 2.0


def test_extended_dist_empty():
    d = extended_dist([])
    assert d["count"] == 0
    assert d["sum"] == 0.0
    assert d["min"] is None and d["max"] is None
    assert d["p99"] is None


def test_extended_dist_sum_is_compensated():
    # fsum: the cumulative sum must not lose small terms to cancellation.
    values = [1e16, 1.0, -1e16]
    assert extended_dist(values)["sum"] == 1.0
    assert math.fsum(values) == 1.0


def test_serve_metrics_reexports_shared_percentile():
    from repro.obs import stats
    from repro.serve import metrics

    assert metrics.percentile is stats.percentile
