"""Provenance: site helpers, seeding in the builder, threading to the VM."""

import numpy as np

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, const
from repro.core.printer import format_function
from repro.obs import provenance as prov
from repro.runtime import TEST_DEVICE, disassemble


class TestHelpers:
    def test_site_and_render(self):
        assert prov.site("matmul", "lv0") == "matmul@lv0"
        assert prov.render(("a@x", "b@y")) == "a@x+b@y"

    def test_merge_dedups_in_order(self):
        class E:
            def __init__(self, p):
                self.provenance = p

        merged = prov.merge(E(("a@x",)), ("b@y", "a@x"), ["c@z"])
        assert merged == ("a@x", "b@y", "c@z")


def _module():
    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 4), "f32")}) as frame:
        (x,) = frame.params
        w = const(np.ones((4, 4), np.float32))
        with bb.dataflow():
            h = bb.emit(ops.matmul(x, w))
            h = bb.emit(ops.relu(h))
            h = bb.emit(ops.silu(h))
            gv = bb.emit_output(h)
        bb.emit_func_output(gv)
    return bb.get()


class TestSeeding:
    def test_builder_stamps_op_calls(self):
        mod = _module()
        func = next(f for _, f in mod.functions())
        sites = [
            b.value.provenance
            for block in func.body.blocks
            for b in block.bindings
        ]
        assert ("matmul@lv",) in sites or any(
            s and s[0].startswith("matmul@") for s in sites
        )


class TestThreadingToVM:
    def test_disasm_shows_provenance_on_calls_and_allocs(self):
        exe = transform.build(_module(), TEST_DEVICE,
                              sym_var_upper_bounds={"n": 64})
        text = disassemble(exe)
        assert "; from matmul@" in text
        # Allocations inherit the op that produces into them.
        alloc_lines = [l for l in text.splitlines() if "alloc_storage" in l]
        assert alloc_lines
        assert all("; from" in l for l in alloc_lines)

    def test_fused_group_merges_chains(self):
        exe = transform.build(_module(), TEST_DEVICE,
                              sym_var_upper_bounds={"n": 64})
        text = disassemble(exe)
        assert "+" in text.split("; from", 1)[1], (
            "fusion should merge member sites into one chain"
        )

    def test_lowered_printer_annotates_bindings(self):
        from repro.core import Function
        from repro.transform import PassContext, optimize

        ctx = PassContext(device=TEST_DEVICE,
                          sym_var_upper_bounds={"n": 64})
        lowered = optimize(_module(), ctx)
        texts = [
            format_function(f, n) for n, f in lowered.functions()
            if isinstance(f, Function)
        ]
        assert any("# from" in t for t in texts)
