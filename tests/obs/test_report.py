"""Reports: op tables, memory timeline, Chrome trace export, profiler VM."""

import json

import numpy as np
import pytest

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, const
from repro.obs import (
    MemoryTimeline,
    OpTable,
    TraceEvent,
    VirtualMachineProfiler,
    chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.runtime import TEST_DEVICE
from repro.runtime.ndarray import NDArray


def _build(**flags):
    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 4), "f32")}) as frame:
        (x,) = frame.params
        w = const(np.ones((4, 4), np.float32))
        with bb.dataflow():
            h = bb.emit(ops.matmul(x, w))
            h = bb.emit(ops.relu(h))
            gv = bb.emit_output(h)
        bb.emit_func_output(gv)
    return transform.build(bb.get(), TEST_DEVICE,
                           sym_var_upper_bounds={"n": 64}, **flags)


def _profiled(**kwargs):
    vm = VirtualMachineProfiler(_build(), TEST_DEVICE, concrete=True, **kwargs)
    x = NDArray.from_numpy(np.ones((8, 4), np.float32))
    vm.run("main", x)
    return vm


class TestOpTable:
    def test_percentages_total_100(self):
        table = _profiled().op_table()
        assert table.rows
        assert abs(sum(r["pct"] for r in table.rows) - 100.0) < 1e-6
        assert abs(sum(r["time_s"] for r in table.rows)
                   - table.total_time_s) < 1e-12

    def test_sorted_hottest_first(self):
        rows = _profiled().op_table().rows
        times = [r["time_s"] for r in rows]
        assert times == sorted(times, reverse=True)

    def test_group_by_op_uses_provenance(self):
        table = _profiled().op_table(by="op")
        names = [r["name"] for r in table.rows if r["kind"] in
                 ("kernel", "library")]
        assert any("@" in n for n in names), names

    def test_overhead_rows_bracketed_without_provenance(self):
        rows = _profiled().op_table().rows
        brackets = [r for r in rows if r["name"].startswith("[")]
        assert brackets, "alloc/capture overhead should aggregate into rows"
        for r in brackets:
            assert r["provenance"] == ""

    def test_render_and_to_dict(self):
        table = _profiled().op_table()
        text = table.render(max_rows=3)
        assert "total:" in text
        d = json.loads(json.dumps(table.to_dict()))
        assert d["rows"][0]["calls"] >= 1

    def test_unknown_grouping_rejected(self):
        with pytest.raises(ValueError):
            OpTable.from_events([], by="color")


class TestMemoryTimeline:
    def test_peak_matches_stats(self):
        vm = _profiled()
        timeline = vm.memory_timeline()
        assert timeline.peak_bytes == vm.stats.peak_bytes
        assert timeline.points

    def test_peak_attribution_covers_peak(self):
        timeline = _profiled().memory_timeline()
        assert sum(timeline.peak_by_op().values()) == timeline.peak_bytes
        # Every attributed chain names a source op site.
        for key in timeline.peak_by_op():
            assert "@" in key

    def test_pool_mode_frees_lower_the_curve(self):
        vm = VirtualMachineProfiler(
            _build(enable_memory_planning=False), TEST_DEVICE, concrete=True)
        x = NDArray.from_numpy(np.ones((8, 4), np.float32))
        vm.run("main", x)
        timeline = vm.memory_timeline()
        final = timeline.points[-1][1]
        assert final < timeline.peak_bytes, (
            "kills should release intermediates below the peak"
        )

    def test_to_dict_json_round_trip(self):
        timeline = _profiled().memory_timeline()
        d = json.loads(json.dumps(timeline.to_dict()))
        assert d["peak_bytes"] == timeline.peak_bytes
        assert len(d["points"]) == len(timeline.points)

    def test_manual_event_walk(self):
        events = [
            TraceEvent("alloc", "storage", 0.0, 0.0, ("a@x",), {"size": 100}),
            TraceEvent("alloc", "storage", 1.0, 0.0, ("b@y",), {"size": 50}),
            TraceEvent("free", "storage", 2.0, 0.0, ("a@x",), {"size": 100}),
        ]
        tl = MemoryTimeline.from_events(events)
        assert tl.peak_bytes == 150
        assert tl.peak_ts_s == 1.0
        assert tl.points[-1] == (2.0, 50)
        assert tl.peak_by_op() == {"a@x": 100, "b@y": 50}


class TestChromeTrace:
    def test_trace_validates(self):
        vm = _profiled()
        trace = validate_chrome_trace(chrome_trace(vm.events))
        slices = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert slices
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert counters, "memory counter track missing"

    def test_slice_durations_microseconds(self):
        vm = _profiled()
        trace = chrome_trace(vm.events)
        total_us = sum(e.get("dur", 0.0) for e in trace["traceEvents"]
                       if e.get("ph") == "X")
        assert abs(total_us - vm.stats.time_s * 1e6) < 1e-3

    def test_export_writes_valid_json(self, tmp_path):
        vm = _profiled()
        path = tmp_path / "trace.json"
        export_chrome_trace(vm.events, str(path))
        loaded = json.loads(path.read_text())
        validate_chrome_trace(loaded)
        assert loaded["traceEvents"]

    @pytest.mark.parametrize("bad", [
        [],
        {"traceEvents": "nope"},
        {"traceEvents": [{"ph": "Z", "name": "x", "ts": 0}]},
        {"traceEvents": [{"ph": "X", "name": "x", "ts": 0}]},  # no dur
        {"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]},  # no name
        {"traceEvents": [{"ph": "C", "name": "x", "ts": 0}]},  # no args
    ])
    def test_validation_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)


class TestVirtualMachineProfiler:
    def test_results_match_plain_vm(self):
        from repro.runtime import VirtualMachine

        x = np.random.default_rng(0).standard_normal((8, 4)).astype(np.float32)
        plain = VirtualMachine(_build(), TEST_DEVICE, concrete=True)
        out_plain = plain.run("main", NDArray.from_numpy(x))
        prof = VirtualMachineProfiler(_build(), TEST_DEVICE, concrete=True)
        out_prof = prof.run("main", NDArray.from_numpy(x))
        np.testing.assert_array_equal(out_plain.numpy(), out_prof.numpy())
        assert plain.stats.time_s == prof.stats.time_s

    def test_report_is_json_ready(self):
        report = _profiled().report()
        d = json.loads(json.dumps(report))
        assert set(d) == {"stats", "op_table", "kernel_dur_s", "memory",
                          "events"}
        assert d["stats"]["kernel_launches"] >= 1
        # Compute-event duration distribution (kernels + library/builtin
        # calls) uses the shared nearest-rank stats.
        dur = d["kernel_dur_s"]
        assert dur["count"] >= d["stats"]["kernel_launches"]
        assert dur["min"] <= dur["p50"] <= dur["p99"] <= dur["max"]

    def test_reset_clears_stats_and_events(self):
        vm = _profiled()
        vm.reset()
        assert vm.events == []
        assert vm.stats.time_s == 0.0
