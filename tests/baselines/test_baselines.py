"""Baseline policy simulators: traces, coverage matrix, scaling shapes."""

import pytest

from repro.baselines import (
    ALL_LLM_BASELINES,
    FASTER_WHISPER,
    HF_COMPILE,
    HF_EAGER,
    LLAMA_CPP,
    VLLM,
    WHISPER_X,
    cross_decoder_step_ops,
    cross_kv_ops,
    decoder_step_ops,
    encoder_ops,
    kv_cache_bytes,
    llama_like,
    weights_bytes,
)
from repro.models import LLAMA3_8B, LLAMA2_7B
from repro.runtime import (
    M2_ULTRA,
    ORANGE_PI_5,
    RADEON_7900XTX,
    RTX_4090,
    SAMSUNG_S24,
)
import dataclasses


class TestTraces:
    def test_op_count_scales_with_layers(self):
        small = llama_like("s", 64, layers=2, heads=2, ffn=128, vocab=100)
        big = llama_like("b", 64, layers=8, heads=2, ffn=128, vocab=100)
        assert len(decoder_step_ops(big, 1, 1, 0)) > len(decoder_step_ops(small, 1, 1, 0))

    def test_flops_scale_with_batch(self):
        ops1 = decoder_step_ops(LLAMA3_8B, 1, 1, 128)
        ops8 = decoder_step_ops(LLAMA3_8B, 8, 1, 128)
        assert sum(o.flops for o in ops8) > sum(o.flops for o in ops1) * 6

    def test_bytes_scale_with_context(self):
        short = decoder_step_ops(LLAMA3_8B, 1, 1, 128)
        long = decoder_step_ops(LLAMA3_8B, 1, 1, 2048)
        assert sum(o.bytes for o in long) > sum(o.bytes for o in short)

    def test_quantization_shrinks_weight_bytes(self):
        q4 = dataclasses.replace(LLAMA2_7B, quantize_bits=4)
        assert weights_bytes(q4) < weights_bytes(LLAMA2_7B) * 0.45

    def test_weights_bytes_scale(self):
        # Llama3-8B fp16 is ~16 GB.
        assert 14e9 < weights_bytes(LLAMA3_8B) < 18e9

    def test_kv_cache_bytes(self):
        # 2 * b * len * kv_heads * head_dim * 2B * layers
        got = kv_cache_bytes(LLAMA3_8B, 1, 1024)
        assert got == 2 * 1 * 1024 * 8 * 128 * 2 * 32

    def test_cross_decoder_adds_cross_attention(self):
        cfg = llama_like("dec", 64, 2, 2, 128, 100)
        plain = decoder_step_ops(cfg, 1, 1, 4)
        cross = cross_decoder_step_ops(cfg, 1, 1, 4, cross_len=64)
        assert len(cross) > len(plain)
        assert sum(o.flops for o in cross) > sum(o.flops for o in plain)

    def test_cross_kv_ops_count(self):
        cfg = llama_like("dec", 64, 3, 2, 128, 100)
        assert len(cross_kv_ops(cfg, 1, 64)) == 6  # k and v per layer

    def test_encoder_drops_lm_head(self):
        cfg = llama_like("enc", 64, 2, 2, 128, 50000)
        enc = encoder_ops(cfg, 1, 16)
        dec = decoder_step_ops(cfg, 1, 16, 0)
        assert len(enc) == len(dec) - 1


class TestCoverageMatrix:
    """The paper's platform-support story (§5.1, Figs. 14-16)."""

    def test_cuda_has_all_baselines(self):
        assert all(s.supports(RTX_4090) for s in ALL_LLM_BASELINES)

    def test_rocm_support(self):
        assert HF_EAGER.supports(RADEON_7900XTX)
        assert VLLM.supports(RADEON_7900XTX)
        assert HF_COMPILE.supports(RADEON_7900XTX)

    def test_apple_gaps(self):
        assert HF_EAGER.supports(M2_ULTRA)
        assert LLAMA_CPP.supports(M2_ULTRA)
        assert not VLLM.supports(M2_ULTRA)
        assert not HF_COMPILE.supports(M2_ULTRA)
        assert not WHISPER_X.supports(M2_ULTRA)
        assert not FASTER_WHISPER.supports(M2_ULTRA)

    def test_android_cpu_fallback(self):
        # llama.cpp "supports" Android by falling back to the CPU.
        assert LLAMA_CPP.supports(SAMSUNG_S24)
        assert LLAMA_CPP._effective_device(SAMSUNG_S24).backend == "cpu"
        assert not HF_EAGER.supports(ORANGE_PI_5)


class TestPolicyShapes:
    def test_eager_pays_per_op_overhead(self):
        cfg = LLAMA3_8B
        eager = HF_EAGER.decode_step_time(cfg, RTX_4090, 1, 256)
        compiled = HF_COMPILE.decode_step_time(cfg, RTX_4090, 1, 256)
        assert eager > compiled  # same work, more host overhead

    def test_static_cache_bucket_boundary(self):
        cfg = LLAMA3_8B  # context_length 8192
        # Crossing a power-of-two bucket boundary doubles the static-cache
        # cost (the recompile-bucket behaviour of torch.compile's static KV
        # cache); a dynamic-cache system scales smoothly.
        below = HF_COMPILE.decode_step_time(cfg, RTX_4090, 1, 511)
        above = HF_COMPILE.decode_step_time(cfg, RTX_4090, 1, 512)
        assert above > below * 1.01, "bucket boundary must cost a step"
        # Within a bucket the cost is flat (static cache)...
        assert HF_COMPILE.decode_step_time(cfg, RTX_4090, 1, 700) == above
        # ...while a dynamic-cache system scales smoothly with live length.
        dyn_below = VLLM.decode_step_time(cfg, RTX_4090, 1, 511)
        dyn_above = VLLM.decode_step_time(cfg, RTX_4090, 1, 512)
        assert dyn_above < dyn_below * 1.001

    def test_llamacpp_backend_sensitivity(self):
        cfg = LLAMA3_8B
        cuda = LLAMA_CPP.decode_step_time(cfg, RTX_4090, 1, 256)
        metal = LLAMA_CPP.decode_step_time(cfg, M2_ULTRA, 1, 256)
        # Hand-written kernels are closer to roofline on Metal: despite the
        # 4090's higher raw bandwidth, the efficiency gap narrows the ratio.
        raw_ratio = M2_ULTRA.mem_bandwidth / RTX_4090.mem_bandwidth
        assert cuda / metal > raw_ratio

    def test_decode_time_monotone_in_batch(self):
        cfg = LLAMA3_8B
        for system in ALL_LLM_BASELINES:
            times = [
                system.decode_step_time(cfg, RTX_4090, b, 256)
                for b in (1, 8, 64)
            ]
            assert times[0] < times[1] < times[2], system.name

    def test_prefill_scales_with_length(self):
        for system in (HF_EAGER, VLLM):
            short = system.prefill_time(LLAMA3_8B, RTX_4090, 1, 128)
            long = system.prefill_time(LLAMA3_8B, RTX_4090, 1, 1024)
            assert long > short * 2
