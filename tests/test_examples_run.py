"""Every example script must run to completion (they double as docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate what they show"
