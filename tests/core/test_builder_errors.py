"""BlockBuilder misuse and cross-level call validation."""

import numpy as np
import pytest

from repro import ops, sym
from repro.core import (
    BlockBuilder,
    Call,
    GlobalVar,
    ShapeExpr,
    TensorAnn,
    call_dps_library,
    call_tir,
)


class TestBuilderMisuse:
    def test_nested_function_rejected(self):
        bb = BlockBuilder()
        with pytest.raises(RuntimeError, match="nested"):
            with bb.function("a", {"x": TensorAnn((2,), "f32")}):
                with bb.function("b", {"y": TensorAnn((2,), "f32")}):
                    pass

    def test_nested_dataflow_rejected(self):
        bb = BlockBuilder()
        with pytest.raises(RuntimeError, match="nest"):
            with bb.function("a", {"x": TensorAnn((2,), "f32")}) as frame:
                with bb.dataflow():
                    with bb.dataflow():
                        pass
                bb.emit_func_output(frame.params[0])

    def test_emit_outside_function_rejected(self):
        bb = BlockBuilder()
        from repro.core import Var

        with pytest.raises(RuntimeError, match="no function scope"):
            bb.emit(ops.relu(Var("x", TensorAnn((2,), "f32"))))

    def test_output_inside_dataflow_rejected(self):
        bb = BlockBuilder()
        with pytest.raises(RuntimeError, match="close the dataflow"):
            with bb.function("a", {"x": TensorAnn((2,), "f32")}) as frame:
                with bb.dataflow():
                    bb.emit_func_output(frame.params[0])

    def test_get_while_building_rejected(self):
        bb = BlockBuilder()
        frame = bb.function("a", {"x": TensorAnn((2,), "f32")})
        frame.__enter__()
        with pytest.raises(RuntimeError, match="under construction"):
            bb.get()
        bb.emit_func_output(frame.params[0])
        frame.__exit__(None, None, None)

    def test_fresh_names_unique(self):
        bb = BlockBuilder()
        with bb.function("a", {"x": TensorAnn((2,), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                v1 = bb.emit(ops.relu(x))
                v2 = bb.emit(ops.relu(x))
                gv = bb.emit_output(v2)
            bb.emit_func_output(gv)
        names = [
            b.var.name_hint
            for b in bb.get()["a"].body.blocks[0].bindings
        ]
        assert len(set(names)) == len(names)


class TestCrossLevelValidation:
    def test_call_tir_requires_global_var(self):
        x = ops  # noqa: F841
        from repro.core import Var

        v = Var("v", TensorAnn((2,), "f32"))
        with pytest.raises(TypeError, match="GlobalVar"):
            call_tir(v, [v], TensorAnn((2,), "f32"))

    def test_out_ann_requires_shape(self):
        gv = GlobalVar("f")
        with pytest.raises(ValueError, match="output shape"):
            call_tir(gv, [], TensorAnn(ndim=1, dtype="f32"))

    def test_out_ann_requires_dtype(self):
        gv = GlobalVar("f")
        with pytest.raises(ValueError, match="dtype"):
            call_tir(gv, [], TensorAnn((2,)))

    def test_out_ann_must_be_tensor(self):
        from repro.core import ObjectAnn

        with pytest.raises(TypeError, match="TensorAnn"):
            call_dps_library("lib.fn", [], ObjectAnn())

    def test_sym_args_must_be_shape_expr(self):
        gv = GlobalVar("f")
        with pytest.raises(TypeError, match="ShapeExpr"):
            call_tir(gv, [], TensorAnn((2,), "f32"), sym_args=42)

    def test_unresolved_out_ann_rejected(self):
        gv = GlobalVar("f")
        with pytest.raises(ValueError, match="unresolved"):
            call_tir(gv, [], TensorAnn(("n",), "f32"))

    def test_multi_output_tuple_ann(self):
        from repro.core import TupleAnn, deduce_call

        gv = GlobalVar("f")
        n = sym.SymVar("n")
        call = call_tir(
            gv, [], [TensorAnn((n,), "f32"), TensorAnn((n, 2), "f32")]
        )
        ann = deduce_call(call)
        assert isinstance(ann, TupleAnn)
        assert len(ann.fields) == 2


class TestVMCodegenErrors:
    def test_unlegalized_op_rejected(self):
        from repro import transform
        from repro.core import Var
        from repro.transform import PassContext, VMCodegen, VMCodegenError

        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn((2,), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                out = bb.emit(ops.relu(x))  # never legalized
                gv = bb.emit_output(out)
            bb.emit_func_output(gv)
        with pytest.raises(VMCodegenError, match="survived to codegen"):
            VMCodegen()(bb.get(), PassContext())

    def test_unbound_sym_var_rejected(self):
        """A symbolic variable with no runtime source is a codegen error."""
        from repro.transform import PassContext, VMCodegen, VMCodegenError
        from repro.core import Function, SeqExpr, Var
        from repro.transform import alloc_tensor

        rogue = sym.SymVar("rogue")
        alloc = alloc_tensor((rogue,), "f32")
        alloc.ann = TensorAnn((rogue,), "f32")
        v = Var("v", alloc.ann)
        from repro.core import BindingBlock, IRModule, VarBinding

        func = Function([], SeqExpr([BindingBlock([VarBinding(v, alloc)])], v),
                        None, None, "f")
        with pytest.raises(VMCodegenError, match="no runtime value source"):
            VMCodegen()(IRModule({"f": func}), PassContext())
