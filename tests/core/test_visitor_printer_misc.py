"""Visitor/mutator infrastructure, printer coverage, dtypes."""

import numpy as np
import pytest

from repro import dtypes, ops, sym
from repro.core import (
    BlockBuilder,
    Call,
    ExprMutator,
    ExprVisitor,
    If,
    SeqExpr,
    TensorAnn,
    Var,
    const,
    format_expr,
    format_function,
    shape,
)


def _sample_function():
    bb = BlockBuilder()
    with bb.function("f", {"x": TensorAnn(("n", 4), "f32")}) as frame:
        (x,) = frame.params
        with bb.dataflow():
            a = bb.emit(ops.relu(x))
            b = bb.emit(ops.exp(a))
            gv = bb.emit_output(b)
        bb.emit_func_output(gv)
    return bb.get()["f"]


class TestVisitor:
    def test_visitor_sees_all_calls(self):
        func = _sample_function()
        calls = []

        class Collector(ExprVisitor):
            def visit_call(self, call):
                calls.append(call.op.name)
                self.generic_visit(call)

        Collector().visit(func)
        assert calls == ["relu", "exp"]

    def test_mutator_rewires_uses(self):
        """Replacing the first call must re-point the second call's arg."""
        func = _sample_function()

        class ReluToSigmoid(ExprMutator):
            def visit_call(self, call):
                call = super().visit_call(call)
                if isinstance(call, Call) and getattr(call.op, "name", "") == "relu":
                    new = ops.sigmoid(call.args[0])
                    new.ann = call.ann
                    return new
                return call

        out = ReluToSigmoid().visit_function(func)
        bindings = out.body.blocks[0].bindings
        assert bindings[0].value.op.name == "sigmoid"
        # The exp call must reference the *new* binding variable.
        assert bindings[1].value.args[0] is bindings[0].var

    def test_mutator_identity_returns_same_object(self):
        func = _sample_function()
        assert ExprMutator().visit_function(func) is func


class TestPrinter:
    def test_function_text(self):
        text = format_function(_sample_function())
        assert "def f(" in text
        assert "with dataflow():" in text
        assert "relu(" in text and "exp(" in text
        assert "return gv" in text

    def test_expr_forms(self):
        n = sym.SymVar("n")
        x = Var("x", TensorAnn((n,), "f32"))
        assert format_expr(x) == "x"
        assert format_expr(shape(n, 4)) == "shape(n, 4)"
        assert "const(3" in format_expr(const(np.int64(3)))
        t = ops.split(x, 2)  # call with attrs
        assert "split" in format_expr(t) and "sections=2" in format_expr(t)

    def test_if_and_tuple_forms(self):
        from repro.core import PrimValue, Tuple, TupleGetItem

        x = Var("x")
        cond = Var("c")
        branch = If(cond, x, x)
        assert "if c then" in format_expr(branch)
        tup = Tuple([x, x])
        assert format_expr(tup) == "(x, x)"
        assert format_expr(TupleGetItem(tup, 1)) == "(x, x)[1]"
        assert format_expr(PrimValue(sym.SymVar("k"))) == "prim(k)"

    def test_match_cast_printed(self):
        bb = BlockBuilder()
        m = sym.SymVar("m")
        with bb.function("f", {"x": TensorAnn(("n",), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                u = bb.emit(ops.unique(x))
                c = bb.match_cast(u, TensorAnn((m,), "f32"))
                gv = bb.emit_output(c)
            bb.emit_func_output(gv)
        text = format_function(bb.get()["f"])
        assert "match_cast(" in text


class TestDtypes:
    def test_roundtrip_all(self):
        for name in ("f64", "f32", "f16", "i64", "i32", "i16", "i8",
                     "u64", "u32", "u16", "u8", "bool"):
            np_dtype = dtypes.to_numpy(name)
            assert dtypes.from_numpy(np_dtype) == name

    def test_itemsizes(self):
        assert dtypes.itemsize("f16") == 2
        assert dtypes.itemsize("f32") == 4
        assert dtypes.itemsize("u32") == 4
        assert dtypes.itemsize("bool") == 1

    def test_predicates(self):
        assert dtypes.is_float("f16") and not dtypes.is_float("i32")
        assert dtypes.is_integer("u8") and not dtypes.is_integer("f64")

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            dtypes.check_dtype("float32")
        with pytest.raises(ValueError):
            dtypes.from_numpy(np.complex64)

    def test_is_valid(self):
        assert dtypes.is_valid_dtype("f32")
        assert not dtypes.is_valid_dtype("q4")


class TestDeductionEdgeCases:
    def test_join_annotations(self):
        from repro.core import join_annotations, ObjectAnn

        n = sym.SymVar("n")
        a = TensorAnn((n, 4), "f32")
        b = TensorAnn((n, 4), "f32")
        assert join_annotations(a, b).shape is not None
        c = TensorAnn((8, 4), "f32")
        joined = join_annotations(a, c)
        assert joined.shape is None and joined.ndim == 2
        d = TensorAnn((4,), "i32")
        joined = join_annotations(a, d)
        assert joined.dtype is None and joined.ndim == -1
        assert isinstance(join_annotations(a, ObjectAnn()), ObjectAnn)

    def test_if_branch_join(self):
        bb = BlockBuilder()
        with bb.function(
            "f",
            {
                "c": TensorAnn((), "bool"),
                "a": TensorAnn(("n", 4), "f32"),
                "b": TensorAnn((8, 4), "f32"),
            },
        ) as frame:
            c, a, b = frame.params
            branch = If(c, a, b)
            out = bb.emit(branch)
            bb.emit_func_output(out)
        func = bb.get()["f"]
        ann = func.body.blocks[0].bindings[0].var.ann
        assert ann.shape is None and ann.ndim == 2 and ann.dtype == "f32"

    def test_extern_call_with_sinfo(self):
        from repro.core import Call, ExternFunc, deduce_call

        x = Var("x", TensorAnn((4,), "f32"))
        call = Call(ExternFunc("my.routine"), [x],
                    sinfo_args=(TensorAnn((4,), "f32"),))
        ann = deduce_call(call)
        assert isinstance(ann, TensorAnn) and ann.shape is not None
