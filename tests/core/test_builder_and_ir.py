"""BlockBuilder construction, cross-level calls, deduction, verification."""

import numpy as np
import pytest

from repro import core, sym, tir
from repro.core import (
    BlockBuilder,
    CallableAnn,
    ObjectAnn,
    ShapeAnn,
    TensorAnn,
    WellFormedError,
    well_formed,
)


def _mm_prim_func():
    n = sym.SymVar("n")
    f = tir.TirBuilder("mm")
    x = f.arg("X", (n, 128), "f32")
    w = f.arg("W", (128, 256), "f32")
    y = f.out("Y", (n, 256), "f32")
    i, j = f.spatial(n, 256)
    k = f.reduce(128)
    f.store(y, [i, j], x[i, k] * w[k, j], combiner="sum", init=0.0)
    return f.build()


def build_fig4_module():
    """The paper's Figure 4: graph-level main calling mm via call_tir."""
    bb = BlockBuilder()
    mm = bb.add_func(_mm_prim_func(), "mm")
    with bb.function(
        "main",
        {
            "x": TensorAnn(("n", 128), "f32"),
            "w": TensorAnn((128, 256), "f32"),
        },
    ) as frame:
        x, w = frame.params
        n = bb.shape_var("n")
        with bb.dataflow():
            lv0 = bb.call_tir(mm, [x, w], TensorAnn((n, 256), "f32"))
            gv = bb.emit_output(lv0)
        bb.emit_func_output(gv)
    return bb.get()


class TestBlockBuilder:
    def test_fig4_module_well_formed(self):
        mod = build_fig4_module()
        assert well_formed(mod)
        assert "main" in mod and "mm" in mod

    def test_call_tir_annotation_deduced(self):
        mod = build_fig4_module()
        main = mod["main"]
        block = main.body.blocks[0]
        lv0 = block.bindings[0].var
        assert isinstance(lv0.ann, TensorAnn)
        assert lv0.ann.dtype == "f32"
        n = main.params[0].ann.shape[0]
        assert sym.prove_equal(lv0.ann.shape[0], n)
        assert sym.as_static_int(lv0.ann.shape[1]) == 256

    def test_shared_sym_var_across_params(self):
        bb = BlockBuilder()
        with bb.function(
            "f",
            {
                "a": TensorAnn(("n", 2), "f32"),
                "b": TensorAnn(("n", 2), "f32"),
            },
        ) as frame:
            a, b = frame.params
            bb.emit_func_output(a)
        mod = bb.get()
        f = mod["f"]
        assert f.params[0].ann.shape[0] is f.params[1].ann.shape[0]

    def test_dataflow_vars_are_dataflow(self):
        mod = build_fig4_module()
        main = mod["main"]
        block = main.body.blocks[0]
        assert isinstance(block.bindings[0].var, core.DataflowVar)
        assert not isinstance(block.bindings[1].var, core.DataflowVar)

    def test_match_cast_introduces_sym_var(self):
        # Figure 3: match_cast after a data-dependent operator.
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n",), "f32")}) as frame:
            (x,) = frame.params
            m = core.sym_var("m")
            with bb.dataflow():
                lv = bb.match_cast(x, TensorAnn((m,), "f32"))
                gv = bb.emit_output(lv)
            bb.emit_func_output(gv)
        mod = bb.get()
        assert well_formed(mod)
        binding = mod["f"].body.blocks[0].bindings[0]
        assert isinstance(binding, core.MatchCast)
        assert sym.prove_equal(binding.var.ann.shape[0], m)

    def test_match_cast_incompatible_rejected(self):
        bb = BlockBuilder()
        with pytest.raises(core.DeductionError):
            with bb.function("f", {"x": TensorAnn((4,), "f32")}) as frame:
                (x,) = frame.params
                bb.match_cast(x, TensorAnn((5,), "f32"))
                bb.emit_func_output(x)

    def test_emit_output_outside_dataflow_rejected(self):
        bb = BlockBuilder()
        with pytest.raises(RuntimeError):
            with bb.function("f", {"x": TensorAnn((4,), "f32")}) as frame:
                (x,) = frame.params
                bb.emit_output(x)
                bb.emit_func_output(x)

    def test_missing_output_rejected(self):
        bb = BlockBuilder()
        with pytest.raises(RuntimeError):
            with bb.function("f", {"x": TensorAnn((4,), "f32")}):
                pass
        # builder is reusable after the failure
        with bb.function("g", {"x": TensorAnn((4,), "f32")}) as frame:
            bb.emit_func_output(frame.params[0])

    def test_tuple_and_getitem(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n",), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                t = bb.emit(core.Tuple([x, x]))
                first = bb.emit(core.TupleGetItem(t, 0))
                gv = bb.emit_output(first)
            bb.emit_func_output(gv)
        mod = bb.get()
        f = mod["f"]
        bindings = f.body.blocks[0].bindings
        assert isinstance(bindings[0].var.ann, core.TupleAnn)
        assert isinstance(bindings[1].var.ann, TensorAnn)

    def test_call_dps_library(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n", 4), "f32")}) as frame:
            (x,) = frame.params
            n = bb.shape_var("n")
            with bb.dataflow():
                lv = bb.call_dps_library(
                    "cutlass.rms_norm", [x], TensorAnn((n, 4), "f32")
                )
                gv = bb.emit_output(lv)
            bb.emit_func_output(gv)
        mod = bb.get()
        assert well_formed(mod)
        call = mod["f"].body.blocks[0].bindings[0].value
        assert core.is_call_to(call, core.call_dps_library_op)
        callee, args, sym_args = core.call_tir_parts(call)
        assert callee.global_symbol == "cutlass.rms_norm"
        assert len(args) == 1 and sym_args is None


class TestInterproceduralDeduction:
    def test_subgraph_call_deduction(self):
        # A graph-level function calling another graph-level function:
        # annotations at the call site come from the callee signature.
        bb = BlockBuilder()
        with bb.function("inner", {"x": TensorAnn(("k", 2), "f32")}) as frame:
            (x,) = frame.params
            bb.emit_func_output(x)
        inner_gv = bb.mod.get_global_var("inner")
        with bb.function("outer", {"y": TensorAnn(("n", 2), "f32")}) as frame:
            (y,) = frame.params
            n = bb.shape_var("n")
            with bb.dataflow():
                lv = bb.emit(core.Call(inner_gv, [y]))
                gv = bb.emit_output(lv)
            bb.emit_func_output(gv)
        mod = bb.get()
        lv = mod["outer"].body.blocks[0].bindings[0].var
        assert sym.prove_equal(lv.ann.shape[0], n)

    def test_first_class_function_var(self):
        # Calling through a Var with a Callable annotation (Fig. 7's f0).
        ctx = sym.ShapeVarContext()
        callable_ann = CallableAnn(
            [ShapeAnn(["n", "m"]).resolve(ctx)],
            TensorAnn(("n * m",), "f32").resolve(ctx),
        )
        bb = BlockBuilder()
        with bb.function("f", {"fn": callable_ann}) as frame:
            (fn,) = frame.params
            n = core.sym_var("n")
            with bb.dataflow():
                lv = bb.emit(core.Call(fn, [core.shape(n, 4)]))
                gv = bb.emit_output(lv)
            bb.emit_func_output(gv)
        mod = bb.get()
        lv = mod["f"].body.blocks[0].bindings[0].var
        assert sym.prove_equal(lv.ann.shape[0], n * 4)


class TestWellFormed:
    def test_unbound_var_rejected(self):
        stray = core.Var("stray", TensorAnn((1,), "f32"))
        func = core.Function(
            params=[],
            body=core.SeqExpr([], stray),
            ret_ann=ObjectAnn(),
        )
        mod = core.IRModule({"f": func})
        with pytest.raises(WellFormedError):
            well_formed(mod)

    def test_dataflow_var_escape_rejected(self):
        x = core.Var("x", TensorAnn((1,), "f32"))
        dvar = core.DataflowVar("d", TensorAnn((1,), "f32"))
        block = core.DataflowBlock([core.VarBinding(dvar, x)])
        func = core.Function([x], core.SeqExpr([block], dvar), ObjectAnn())
        mod = core.IRModule({"f": func})
        with pytest.raises(WellFormedError):
            well_formed(mod)

    def test_out_of_scope_sym_var_rejected(self):
        x = core.Var("x", TensorAnn((4,), "f32"))
        rogue = sym.SymVar("rogue")
        v = core.Var("v", TensorAnn((rogue,), "f32"))
        block = core.BindingBlock([core.VarBinding(v, x)])
        func = core.Function([x], core.SeqExpr([block], v), ObjectAnn())
        mod = core.IRModule({"f": func})
        with pytest.raises(WellFormedError):
            well_formed(mod)

    def test_unknown_global_rejected(self):
        x = core.Var("x", TensorAnn((4,), "f32"))
        call = core.Call(core.GlobalVar("nope"), [x])
        v = core.Var("v")
        block = core.BindingBlock([core.VarBinding(v, call)])
        func = core.Function([x], core.SeqExpr([block], v), ObjectAnn())
        mod = core.IRModule({"f": func})
        with pytest.raises(WellFormedError):
            well_formed(mod)

    def test_fig4_module_passes(self):
        assert well_formed(build_fig4_module())


class TestPrinter:
    def test_module_prints(self):
        mod = build_fig4_module()
        text = core.format_module(mod)
        assert "def main" in text
        assert "call_tir" in text
        assert "with dataflow():" in text
        assert "@tensorir_function" in text
        assert "grid" in text

    def test_expr_forms(self):
        n = sym.SymVar("n")
        assert core.format_expr(core.shape(n, 4)) == "shape(n, 4)"
        c = core.const(np.float32(1.5))
        assert "const" in core.format_expr(c)


class TestIRModule:
    def test_add_unique(self):
        mod = core.IRModule()
        f1 = core.Function([], core.SeqExpr([], core.const(np.float32(0))), None)
        g1 = mod.add_unique("f", f1)
        g2 = mod.add_unique("f", f1)
        assert g1.name_hint == "f"
        assert g2.name_hint == "f_1"

    def test_copy_is_shallow_but_independent(self):
        mod = build_fig4_module()
        clone = mod.copy()
        clone.remove("mm")
        assert "mm" in mod and "mm" not in clone

    def test_getitem_by_global_var(self):
        mod = build_fig4_module()
        gv = mod.get_global_var("main")
        assert mod[gv] is mod["main"]

    def test_missing_function_raises(self):
        mod = core.IRModule()
        with pytest.raises(KeyError):
            mod["nope"]
        with pytest.raises(KeyError):
            mod.remove("nope")
