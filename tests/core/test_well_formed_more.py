"""Structural validation of cross-level calls and misc op error paths."""

import numpy as np
import pytest

from repro import ops, sym
from repro.core import (
    BindingBlock,
    Call,
    ExternFunc,
    Function,
    GlobalVar,
    IRModule,
    ObjectAnn,
    SeqExpr,
    ShapeExpr,
    TensorAnn,
    Tuple,
    Var,
    VarBinding,
    WellFormedError,
    call_dps_library_op,
    call_tir_op,
    well_formed,
)


def _wrap(call: Call, extra_funcs=None) -> IRModule:
    v = Var("v", ObjectAnn())
    func = Function([], SeqExpr([BindingBlock([VarBinding(v, call)])], v),
                    ObjectAnn(), None, "f")
    mod = IRModule({"f": func})
    for name, f in (extra_funcs or {}).items():
        mod.add(name, f)
    return mod


def _dummy_prim():
    from repro import tir

    f = tir.TirBuilder("k")
    a = f.arg("A", (2,), "f32")
    b = f.out("B", (2,), "f32")
    i = f.spatial(2)
    f.store(b, [i], a[i])
    return f.build()


class TestCrossLevelStructure:
    def test_call_tir_args_must_be_tuple(self):
        gv = GlobalVar("k")
        call = Call(call_tir_op, [gv, Var("x")], sinfo_args=(TensorAnn((2,), "f32"),))
        mod = _wrap(call, {"k": _dummy_prim()})
        with pytest.raises(WellFormedError, match="malformed"):
            well_formed(mod, check_sym_scope=False)

    def test_call_tir_callee_must_be_global(self):
        call = Call(
            call_tir_op,
            [ExternFunc("k"), Tuple([])],
            sinfo_args=(TensorAnn((2,), "f32"),),
        )
        with pytest.raises(WellFormedError, match="GlobalVar"):
            well_formed(_wrap(call), check_sym_scope=False)

    def test_call_dps_library_callee_must_be_extern(self):
        gv = GlobalVar("k")
        call = Call(
            call_dps_library_op,
            [gv, Tuple([])],
            sinfo_args=(TensorAnn((2,), "f32"),),
        )
        with pytest.raises(WellFormedError, match="ExternFunc"):
            well_formed(_wrap(call, {"k": _dummy_prim()}), check_sym_scope=False)

    def test_missing_sinfo_rejected(self):
        gv = GlobalVar("k")
        call = Call(call_tir_op, [gv, Tuple([])])
        with pytest.raises(WellFormedError, match="output annotation"):
            well_formed(_wrap(call, {"k": _dummy_prim()}), check_sym_scope=False)

    def test_trailing_sym_args_must_be_shape(self):
        gv = GlobalVar("k")
        s = Var("s", ObjectAnn())
        v = Var("v", ObjectAnn())
        call = Call(call_tir_op, [gv, Tuple([]), s],
                    sinfo_args=(TensorAnn((2,), "f32"),))
        func = Function([s], SeqExpr([BindingBlock([VarBinding(v, call)])], v),
                        ObjectAnn(), None, "f")
        mod = IRModule({"f": func, "k": _dummy_prim()})
        with pytest.raises(WellFormedError, match="ShapeExpr"):
            well_formed(mod, check_sym_scope=False)


class TestOpErrorPaths:
    def test_attention_requires_static_heads(self):
        h = sym.SymVar("h")
        q = Var("q", TensorAnn((1, 1, h, 8), "f32"))
        k = Var("k", TensorAnn((1, 4, h, 8), "f32"))
        v = Var("v", TensorAnn((1, 4, h, 8), "f32"))
        call = ops.attention(q, k, v)
        with pytest.raises(ValueError, match="static"):
            call.op.legalize(call)

    def test_rope_requires_4d(self):
        x = Var("x", TensorAnn((2, 8), "f32"))
        call = ops.rope(x)
        with pytest.raises(ValueError, match="rope expects"):
            call.op.legalize(call)

    def test_matmul_requires_tensor_args(self):
        s = Var("s", ObjectAnn())
        with pytest.raises(TypeError, match="tensor"):
            call = ops.matmul(s, s)
            call.op.deduce(call)

    def test_reshape_requires_shape_value_to_legalize(self):
        x = Var("x", TensorAnn((4,), "f32"))
        coarse = Var("target", ObjectAnn())
        call = ops.reshape(x, coarse)
        with pytest.raises(ValueError, match="ShapeExpr"):
            call.op.legalize(call)

    def test_unresolved_annotation_analysis_rejected(self):
        t = TensorAnn(("n", 4), "f32")  # quoted, unresolved
        with pytest.raises(ValueError, match="unresolved"):
            t.free_sym_vars()
        with pytest.raises(ValueError, match="unresolved"):
            t.num_elements()


class TestCallableResolveIsolation:
    def test_nested_callable_scope_is_fresh(self):
        """Resolving a Callable's quoted dims must not leak variables into
        the enclosing function's shape context (§4.1 isolation)."""
        from repro.core import CallableAnn, ShapeAnn

        ctx = sym.ShapeVarContext()
        outer_n = ctx.get("n")
        ann = CallableAnn([ShapeAnn(["n"])], TensorAnn(("n",), "f32"))
        resolved = ann.resolve(ctx)
        inner_n = resolved.params[0].values[0]
        assert inner_n is not outer_n  # distinct scopes
        # But the callable's own param/ret share the same inner variable.
        assert resolved.ret.shape[0] is inner_n
