"""Structural annotations (Table 1) and signature unification (Fig. 7)."""

import pytest

from repro import sym
from repro.core import (
    CallableAnn,
    ObjectAnn,
    PrimAnn,
    ShapeAnn,
    TensorAnn,
    TupleAnn,
    unify_call,
)


class TestConstruction:
    def test_tensor_symbolic(self):
        n = sym.SymVar("n")
        t = TensorAnn((n, 4), "f32")
        assert t.ndim == 2
        assert t.dtype == "f32"
        assert [v.name for v in t.free_sym_vars()] == ["n"]

    def test_tensor_unknown_dims(self):
        t = TensorAnn(ndim=2, dtype="f32")
        assert t.shape is None and t.ndim == 2
        t2 = TensorAnn(dtype="f32")
        assert t2.ndim == -1

    def test_tensor_quoted_dims_resolve(self):
        t = TensorAnn(("n", 4), "f32")
        assert not t.is_resolved()
        ctx = sym.ShapeVarContext()
        r = t.resolve(ctx)
        assert r.is_resolved()
        assert r.shape[0] is ctx.get("n")

    def test_tensor_quoted_expression(self):
        ctx = sym.ShapeVarContext()
        t = TensorAnn(("n * 4",), "f32").resolve(ctx)
        assert sym.prove_equal(t.shape[0], ctx.get("n") * 4)

    def test_shape_ann(self):
        n = sym.SymVar("n")
        s = ShapeAnn([n, 4])
        assert s.ndim == 2
        s2 = ShapeAnn(ndim=2)
        assert s2.values is None and s2.ndim == 2

    def test_ndim_conflict_rejected(self):
        with pytest.raises(ValueError):
            TensorAnn((1, 2), "f32", ndim=3)
        with pytest.raises(ValueError):
            ShapeAnn([1, 2], ndim=3)

    def test_tuple_requires_annotations(self):
        with pytest.raises(TypeError):
            TupleAnn([42])

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            TensorAnn((1,), "float99")

    def test_size_helpers(self):
        n = sym.SymVar("n")
        t = TensorAnn((n, 4), "f32")
        assert sym.evaluate(t.num_elements(), {n: 3}) == 12
        assert sym.evaluate(t.size_bytes(), {n: 3}) == 48

    def test_size_requires_shape(self):
        with pytest.raises(ValueError):
            TensorAnn(ndim=2, dtype="f32").num_elements()


class TestLattice:
    def test_object_is_top(self):
        assert ObjectAnn().is_base_of(TensorAnn((1,), "f32"))
        assert ObjectAnn().is_base_of(ShapeAnn([1]))

    def test_tensor_base_of_equal_shape(self):
        n = sym.SymVar("n")
        a = TensorAnn((n * 2,), "f32")
        b = TensorAnn((2 * n,), "f32")
        assert a.is_base_of(b)
        assert b.is_base_of(a)

    def test_coarse_base_of_fine(self):
        fine = TensorAnn((3, 4), "f32")
        coarse = TensorAnn(ndim=2, dtype="f32")
        assert coarse.is_base_of(fine)
        assert not fine.is_base_of(coarse)

    def test_dtype_mismatch(self):
        assert not TensorAnn((3,), "f32").is_base_of(TensorAnn((3,), "i32"))

    def test_possibly_matches_static_conflict(self):
        a = TensorAnn((3, 4), "f32")
        b = TensorAnn((3, 5), "f32")
        assert not a.possibly_matches(b)

    def test_possibly_matches_symbolic(self):
        n, m = sym.SymVar("n"), sym.SymVar("m")
        assert TensorAnn((n,), "f32").possibly_matches(TensorAnn((m,), "f32"))

    def test_possibly_matches_cross_kind(self):
        assert not TensorAnn((3,), "f32").possibly_matches(ShapeAnn([3]))
        assert TensorAnn((3,), "f32").possibly_matches(ObjectAnn())

    def test_erased(self):
        n = sym.SymVar("n")
        e = TensorAnn((n, 4), "f32").erased()
        assert e.shape is None and e.ndim == 2 and e.dtype == "f32"
        s = ShapeAnn([n]).erased()
        assert s.values is None and s.ndim == 1

    def test_tuple_lattice(self):
        a = TupleAnn([TensorAnn((3,), "f32"), ObjectAnn()])
        b = TupleAnn([TensorAnn((3,), "f32"), TensorAnn((1,), "f32")])
        assert a.is_base_of(b)
        assert not b.is_base_of(a)

    def test_substitute_syms(self):
        n, m = sym.SymVar("n"), sym.SymVar("m")
        t = TensorAnn((n, m), "f32").substitute_syms({n: m})
        assert sym.prove_equal(t.shape[0], m)


class TestUnifyCall:
    def _subfn_sig(self):
        # subfn(s: Shape(["n", "m"])) -> Tensor(("n * m",), "f32")  (Fig. 7)
        ctx = sym.ShapeVarContext()
        param = ShapeAnn(["n", "m"]).resolve(ctx)
        ret = TensorAnn(("n * m",), "f32").resolve(ctx)
        return CallableAnn([param], ret)

    def test_fig7_symbolic_arg(self):
        # subfn(shape(n, 4)) : Tensor((n * 4,), "f32")
        sig = self._subfn_sig()
        n = sym.SymVar("n")
        out = unify_call(sig, [ShapeAnn([n, 4])])
        assert isinstance(out, TensorAnn)
        assert sym.prove_equal(out.shape[0], n * 4)

    def test_fig7_static_arg(self):
        # subfn(shape(3, 4)) : Tensor((12,), "f32")
        sig = self._subfn_sig()
        out = unify_call(sig, [ShapeAnn([3, 4])])
        assert sym.as_static_int(out.shape[0]) == 12

    def test_fig7_expression_arg(self):
        # subfn(shape(n + 1, 4)) : Tensor(((n + 1) * 4,), "f32")
        sig = self._subfn_sig()
        n = sym.SymVar("n")
        out = unify_call(sig, [ShapeAnn([n + 1, 4])])
        assert sym.prove_equal(out.shape[0], (n + 1) * 4)

    def test_fig7_coarse_arg_erases(self):
        # subfn(y: Shape(ndim=2)) : Tensor(ndim=1, dtype="f32")
        sig = self._subfn_sig()
        out = unify_call(sig, [ShapeAnn(ndim=2)])
        assert isinstance(out, TensorAnn)
        assert out.shape is None and out.ndim == 1 and out.dtype == "f32"

    def test_tensor_param_binding(self):
        ctx = sym.ShapeVarContext()
        sig = CallableAnn(
            [TensorAnn(("n", 4), "f32").resolve(ctx)],
            TensorAnn(("n",), "f32").resolve(ctx),
        )
        m = sym.SymVar("m")
        out = unify_call(sig, [TensorAnn((m * 2, 4), "f32")])
        assert sym.prove_equal(out.shape[0], m * 2)

    def test_expression_param_annotation(self):
        # Fig. 8: parameter annotation contains an expression (n * 2) plus
        # an extra Shape(["n"]) parameter supplying n.
        ctx = sym.ShapeVarContext()
        sig = CallableAnn(
            [
                TensorAnn(("n * 2",), "f32").resolve(ctx),
                ShapeAnn(["n"]).resolve(ctx),
            ],
            TensorAnn(("n * 2",), "f32").resolve(ctx),
        )
        k = sym.SymVar("k")
        out = unify_call(
            sig, [TensorAnn((k * 2,), "f32"), ShapeAnn([k])]
        )
        assert sym.prove_equal(out.shape[0], k * 2)

    def test_arity_mismatch(self):
        sig = self._subfn_sig()
        with pytest.raises(ValueError):
            unify_call(sig, [])

    def test_unknown_params_erases_ret(self):
        n = sym.SymVar("n")
        sig = CallableAnn(None, TensorAnn((n,), "f32"))
        out = unify_call(sig, [ObjectAnn()])
        assert out.shape is None

    def test_tuple_param_binding(self):
        ctx = sym.ShapeVarContext()
        sig = CallableAnn(
            [TupleAnn([TensorAnn(("n",), "f32"), TensorAnn(("m",), "f32")]).resolve(ctx)],
            TensorAnn(("n + m",), "f32").resolve(ctx),
        )
        a, b = sym.SymVar("a"), sym.SymVar("b")
        out = unify_call(
            sig,
            [TupleAnn([TensorAnn((a,), "f32"), TensorAnn((b,), "f32")])],
        )
        assert sym.prove_equal(out.shape[0], a + b)

    def test_prim_value_binding(self):
        ctx = sym.ShapeVarContext()
        n = ctx.get("n")
        sig = CallableAnn([PrimAnn("i64", n)], TensorAnn((n,), "f32"))
        k = sym.SymVar("k")
        out = unify_call(sig, [PrimAnn("i64", k + 1)])
        assert sym.prove_equal(out.shape[0], k + 1)
