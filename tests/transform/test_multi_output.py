"""Multi-output cross-level calls: split through the full pipeline."""

import numpy as np
import pytest

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, TupleAnn
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine

RNG = np.random.default_rng(41)


def _split_module(sections=2, axis=1):
    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 8), "f32")}) as frame:
        (x,) = frame.params
        with bb.dataflow():
            parts = bb.emit(ops.split(x, sections, axis=axis))
            from repro.core import TupleGetItem

            first = bb.emit(TupleGetItem(parts, 0))
            second = bb.emit(TupleGetItem(parts, 1))
            summed = bb.emit(ops.add(first, second))
            gv = bb.emit_output(summed)
        bb.emit_func_output(gv)
    return bb.get()


class TestSplitPipeline:
    def test_deduction_through_tuple(self):
        mod = _split_module()
        bindings = mod["main"].body.blocks[0].bindings
        assert isinstance(bindings[0].var.ann, TupleAnn)
        assert bindings[3].var.ann.dtype == "f32"

    def test_end_to_end_numerics(self):
        mod = _split_module()
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = RNG.standard_normal((3, 8)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_allclose(out.numpy(), x[:, :4] + x[:, 4:], rtol=1e-6)

    def test_split_axis0_symbolic(self):
        bb = BlockBuilder()
        with bb.function("main", {"x": TensorAnn((4, "m"), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                parts = bb.emit(ops.split(x, 2, axis=0))
                from repro.core import TupleGetItem

                diff = bb.emit(ops.subtract(
                    bb.emit(TupleGetItem(parts, 0)),
                    bb.emit(TupleGetItem(parts, 1)),
                ))
                gv = bb.emit_output(diff)
            bb.emit_func_output(gv)
        exe = transform.build(bb.get(), TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        for m in (3, 7):
            x = RNG.standard_normal((4, m)).astype(np.float32)
            out = vm.run("main", NDArray.from_numpy(x))
            np.testing.assert_allclose(out.numpy(), x[:2] - x[2:], rtol=1e-6)

    def test_multi_output_kernel_is_single_launch(self):
        mod = _split_module()
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False,
                              enable_cuda_graph=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("main", NDArray.abstract((4, 8), "f32"))
        # split (1 kernel, 2 outputs) + add (1 kernel).
        assert vm.stats.kernel_launches == 2
