"""FoldConstant and shape_of (Fig. 3's get_shape_value)."""

import numpy as np
import pytest

from repro import ops, sym, transform
from repro.core import (
    BlockBuilder,
    Call,
    Constant,
    ShapeAnn,
    ShapeExpr,
    TensorAnn,
    const,
    shape,
)
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.transform import FoldConstant, PassContext


class TestFoldConstant:
    def test_constant_chain_folds(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n", 4), "f32")}) as frame:
            (x,) = frame.params
            w = const(np.full((4,), 2.0, np.float32))
            with bb.dataflow():
                doubled = bb.emit(ops.multiply(w, w))  # constant * constant
                out = bb.emit(ops.add(x, doubled))
                gv = bb.emit_output(out)
            bb.emit_func_output(gv)
        mod = bb.get()
        out = FoldConstant()(mod, PassContext())
        bindings = out["f"].body.blocks[0].bindings
        # The multiply binding is now a Constant.
        first = bindings[0].value
        assert isinstance(first, Constant)
        np.testing.assert_allclose(first.data, 4.0)

    def test_symbolic_calls_untouched(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n", 4), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                out = bb.emit(ops.relu(x))
                gv = bb.emit_output(out)
            bb.emit_func_output(gv)
        mod = bb.get()
        out = FoldConstant()(mod, PassContext())
        assert isinstance(out["f"].body.blocks[0].bindings[0].value, Call)

    def test_folded_mask_matches_runtime(self):
        """A static causal mask folds to a constant; numerics unchanged."""
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn((4, 4), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                mask = bb.emit(ops.causal_mask(4, 4))
                out = bb.emit(ops.add(x, mask))
                gv = bb.emit_output(out)
            bb.emit_func_output(gv)
        mod = bb.get()
        folded = FoldConstant()(mod, PassContext())
        assert isinstance(folded["f"].body.blocks[0].bindings[0].value, Constant)

        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.zeros((4, 4), np.float32)
        out = vm.run("f", NDArray.from_numpy(x)).numpy()
        want = np.where(np.tril(np.ones((4, 4))), 0.0, -1e9)
        np.testing.assert_allclose(out, want)

    def test_fold_in_default_pipeline(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn((2, 2), "f32")}) as frame:
            (x,) = frame.params
            a = const(np.eye(2, dtype=np.float32))
            with bb.dataflow():
                sq = bb.emit(ops.matmul(a, a))  # I @ I folds
                out = bb.emit(ops.add(x, sq))
                gv = bb.emit_output(out)
            bb.emit_func_output(gv)
        exe = transform.build(bb.get(), TEST_DEVICE, enable_library_dispatch=False,
                              enable_cuda_graph=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("f", NDArray.abstract((2, 2), "f32"))
        # Only the add remains as a kernel.
        assert vm.stats.kernel_launches == 1


class TestShapeOf:
    def test_deduce_symbolic(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n", 4), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                s = bb.emit(ops.shape_of(x))
                gv = bb.emit_output(s)
            bb.emit_func_output(gv)
        func = bb.get()["f"]
        ann = func.body.blocks[0].bindings[0].var.ann
        assert isinstance(ann, ShapeAnn)
        n = func.params[0].ann.shape[0]
        assert sym.prove_equal(ann.values[0], n)

    def test_fig3_get_shape_value_flow(self):
        """n = shape_of(x)[...] feeding a reshape, end to end."""
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n", 2, 2), "f32")}) as frame:
            (x,) = frame.params
            n = bb.shape_var("n")
            with bb.dataflow():
                s = bb.emit(ops.shape_of(x))
                # Shapes are first-class: reuse the deduced n dimension.
                lv0 = bb.emit(ops.reshape(x, shape(n, 4)))
                gv = bb.emit_output(lv0)
            bb.emit_func_output(gv)
        mod = bb.get()
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.arange(12, dtype=np.float32).reshape(3, 2, 2)
        out = vm.run("f", NDArray.from_numpy(x))
        np.testing.assert_allclose(out.numpy(), x.reshape(3, 4))

    def test_runtime_shape_value(self):
        """shape_of returns a runtime ShapeTuple usable as a result."""
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n", 4), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                s = bb.emit(ops.shape_of(x))
                gv = bb.emit_output(s)
            bb.emit_func_output(gv)
        exe = transform.build(bb.get(), TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        out = vm.run("f", NDArray.from_numpy(np.zeros((5, 4), np.float32)))
        assert tuple(out) == (5, 4)

    def test_coarse_operand_uses_builtin(self):
        """With a rank-only operand the shape is read at runtime."""
        from repro.core import MatchCast, Var

        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(ndim=2, dtype="f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                s = bb.emit(ops.shape_of(x))
                gv = bb.emit_output(s)
            bb.emit_func_output(gv)
        mod = bb.get()
        ann = mod["f"].body.blocks[0].bindings[0].var.ann
        assert ann.values is None and ann.ndim == 2
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        out = vm.run("f", NDArray.from_numpy(np.zeros((7, 3), np.float32)))
        assert tuple(out) == (7, 3)
