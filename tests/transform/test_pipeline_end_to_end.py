"""End-to-end: BlockBuilder model -> full pipeline -> VM -> NumPy check."""

import numpy as np
import pytest

from repro import ops, sym, transform
from repro.core import BlockBuilder, TensorAnn
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine

RNG = np.random.default_rng(0)


def _build_mlp_module():
    """main(x: (n, 8)) = relu(x @ w1) @ w2 + b, all through high-level ops."""
    w1 = RNG.standard_normal((8, 16)).astype(np.float32)
    w2 = RNG.standard_normal((16, 4)).astype(np.float32)
    b = RNG.standard_normal((4,)).astype(np.float32)

    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 8), "f32")}) as frame:
        (x,) = frame.params
        from repro.core import const

        with bb.dataflow():
            h = bb.emit(ops.matmul(x, const(w1)))
            h = bb.emit(ops.relu(h))
            out = bb.emit(ops.matmul(h, const(w2)))
            out = bb.emit(ops.add(out, const(b)))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    return bb.get(), (w1, w2, b)


def _reference(x, w1, w2, b):
    return np.maximum(x @ w1, 0) @ w2 + b


@pytest.mark.parametrize("library", [False, True], ids=["codegen", "library"])
@pytest.mark.parametrize("fusion", [False, True], ids=["nofuse", "fuse"])
def test_mlp_numerics_all_configs(library, fusion):
    mod, (w1, w2, b) = _build_mlp_module()
    exe = transform.build(
        mod,
        TEST_DEVICE,
        enable_library_dispatch=library,
        enable_fusion=fusion,
    )
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    for n in (1, 3, 6):
        x = RNG.standard_normal((n, 8)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_allclose(
            out.numpy(), _reference(x, w1, w2, b), rtol=2e-4, atol=1e-5
        )


def test_fusion_reduces_kernel_launches():
    mod, _ = _build_mlp_module()
    x = NDArray.abstract((4, 8), "f32")

    def launches(fusion):
        exe = transform.build(
            mod, TEST_DEVICE, enable_fusion=fusion,
            enable_library_dispatch=False, enable_cuda_graph=False,
        )
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("main", x)
        return vm.stats.kernel_launches

    assert launches(True) < launches(False)


def test_library_dispatch_uses_lib_calls():
    mod, _ = _build_mlp_module()
    exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=True)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
    vm.run("main", NDArray.abstract((4, 8), "f32"))
    assert vm.stats.lib_calls >= 2  # both matmuls go to cublas


def test_memory_planning_reuses_storage():
    mod, _ = _build_mlp_module()
    x = NDArray.abstract((4, 8), "f32")

    def allocations(planning):
        exe = transform.build(
            mod, TEST_DEVICE, enable_memory_planning=planning,
            enable_library_dispatch=False, enable_cuda_graph=False,
            sym_var_upper_bounds={"n": 64},
        )
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("main", x)
        first = vm.stats.allocations
        vm.run("main", NDArray.abstract((8, 8), "f32"))  # different n
        return first, vm.stats.allocations

    first_planned, total_planned = allocations(True)
    first_pooled, total_pooled = allocations(False)
    # Planned: allocations happen once (upper bound), second call reuses.
    assert total_planned == first_planned
    # Pooled: the new shape forces fresh allocations.
    assert total_pooled > first_pooled


def test_cuda_graph_capture_and_replay():
    mod, _ = _build_mlp_module()
    exe = transform.build(
        mod, TEST_DEVICE, sym_var_upper_bounds={"n": 64},
    )
    main = exe.functions["main"]
    assert main.attrs.get("cuda_graph") is True
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
    vm.run("main", NDArray.abstract((4, 8), "f32"))
    assert vm.stats.graph_captures == 1
    # n is bounded -> excluded from the capture key: a different n replays.
    vm.run("main", NDArray.abstract((8, 8), "f32"))
    assert vm.stats.graph_replays == 1


def test_cuda_graph_requires_static_planning():
    mod, _ = _build_mlp_module()
    exe = transform.build(mod, TEST_DEVICE)  # no upper bounds declared
    assert not exe.functions["main"].attrs.get("cuda_graph")


def test_symbolic_decode_step_pattern():
    """The KV-append pattern: concat((b, m, d), (b, 1, d)) -> (b, m+1, d)."""
    bb = BlockBuilder()
    with bb.function(
        "step",
        {
            "cache": TensorAnn((2, "m", 4), "f32"),
            "new": TensorAnn((2, 1, 4), "f32"),
        },
    ) as frame:
        cache, new = frame.params
        with bb.dataflow():
            out = bb.emit(ops.concat([cache, new], axis=1))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    mod = bb.get()
    exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)

    cache = RNG.standard_normal((2, 3, 4)).astype(np.float32)
    new = RNG.standard_normal((2, 1, 4)).astype(np.float32)
    out = vm.run("step", NDArray.from_numpy(cache), NDArray.from_numpy(new))
    assert out.shape == (2, 4, 4)
    np.testing.assert_allclose(out.numpy(), np.concatenate([cache, new], axis=1))
