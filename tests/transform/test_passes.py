"""Per-pass tests: DCE, legalize, fusion, workspace lifting, memory plan."""

import numpy as np
import pytest

from repro import core, ops, sym, tir, transform
from repro.core import BlockBuilder, Function, SeqExpr, TensorAnn, const
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.transform import PassContext

RNG = np.random.default_rng(3)


def _lookup_factory(mod):
    def lookup(gvar):
        target = mod[gvar.name_hint] if gvar.name_hint in mod else None
        return target.signature_ann() if isinstance(target, Function) else None

    return lookup


class TestDeadCode:
    def _module_with_dead_binding(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n", 4), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                live = bb.emit(ops.relu(x))
                bb.emit(ops.exp(x))  # dead
                gv = bb.emit_output(live)
            bb.emit_func_output(gv)
        return bb.get()

    def test_dead_binding_removed(self):
        mod = self._module_with_dead_binding()
        out = transform.DeadCodeElimination()(mod, PassContext())
        bindings = out["f"].body.blocks[0].bindings
        assert len(bindings) == 2  # relu + output alias

    def test_transitively_dead_chain_removed(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n",), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                a = bb.emit(ops.exp(x))
                bb.emit(ops.relu(a))  # dead, makes `a` dead too
                gv = bb.emit_output(x)
            bb.emit_func_output(gv)
        mod = bb.get()
        out = transform.DeadCodeElimination()(mod, PassContext())
        assert len(out["f"].body.blocks[0].bindings) == 1

    def test_non_dataflow_blocks_untouched(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n",), "f32")}) as frame:
            (x,) = frame.params
            bb.emit(ops.exp(x))  # outside dataflow: conservatively kept
            bb.emit_func_output(x)
        mod = bb.get()
        out = transform.DeadCodeElimination()(mod, PassContext())
        assert len(out["f"].body.blocks[0].bindings) == 1


class TestLegalize:
    def test_all_ops_become_call_tir(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n", 4), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                a = bb.emit(ops.relu(x))
                b = bb.emit(ops.flatten(a))
                gv = bb.emit_output(b)
            bb.emit_func_output(gv)
        mod = bb.get()
        out = transform.LegalizeOps()(mod, PassContext())
        func = out["f"]
        calls = [
            b.value
            for b in func.body.blocks[0].bindings
            if isinstance(b.value, core.Call)
        ]
        assert all(core.is_call_to(c, core.call_tir_op) for c in calls[:2])
        assert any(isinstance(f, tir.PrimFunc) for _, f in out.functions())

    def test_annotations_preserved_after_legalize(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n", 4), "f32")}) as frame:
            (x,) = frame.params
            n = bb.shape_var("n")
            with bb.dataflow():
                a = bb.emit(ops.flatten(x))
                gv = bb.emit_output(a)
            bb.emit_func_output(gv)
        mod = bb.get()
        out = transform.LegalizeOps()(mod, PassContext())
        binding = out["f"].body.blocks[0].bindings[0]
        # The symbolic relation n*4 survives legalization (the paper's core
        # requirement: incremental transforms preserve symbolic shapes).
        assert sym.prove_equal(binding.var.ann.shape[0], n * 4)

    def test_data_dependent_becomes_extern(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n",), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                u = bb.emit(ops.unique(x))
                gv = bb.emit_output(u)
            bb.emit_func_output(gv)
        mod = bb.get()
        out = transform.LegalizeOps()(mod, PassContext())
        call = out["f"].body.blocks[0].bindings[0].value
        assert isinstance(call.op, core.ExternFunc)
        assert call.op.global_symbol == "vm.builtin.unique"


class TestFuseOps:
    def _mm_relu_module(self):
        bb = BlockBuilder()
        with bb.function(
            "main",
            {"x": TensorAnn(("n", 8), "f32"), "w": TensorAnn((8, 4), "f32")},
        ) as frame:
            x, w = frame.params
            with bb.dataflow():
                h = bb.emit(ops.matmul(x, w))
                r = bb.emit(ops.relu(h))
                gv = bb.emit_output(r)
            bb.emit_func_output(gv)
        return bb.get()

    def _legalized(self, mod):
        ctx = PassContext()
        mod = transform.LegalizeOps()(mod, ctx)
        mod = transform.AnnotatePatternKind()(mod, ctx)
        return mod, ctx

    def test_matmul_relu_fused(self):
        mod, ctx = self._legalized(self._mm_relu_module())
        fused = transform.FuseOps()(mod, ctx)
        names = [n for n, f in fused.relax_functions()]
        assert any(n.startswith("fused_") for n in names)
        sub = [f for n, f in fused.relax_functions() if n.startswith("fused_")][0]
        assert sub.attrs.get("fusion_group")

    def test_fuse_tensorir_merges_and_inlines(self):
        mod, ctx = self._legalized(self._mm_relu_module())
        fused = transform.FuseOps()(mod, ctx)
        merged = transform.FuseTensorIR()(fused, ctx)
        # The subgraph function is gone; a merged PrimFunc exists.
        assert not any(
            f.attrs.get("fusion_group") for _, f in merged.relax_functions()
        )
        prims = [f for _, f in merged.tir_functions()]
        fused_prims = [f for f in prims if f.attrs.get("fused")]
        assert len(fused_prims) == 1
        # matmul + relu: reduction stage + epilogue stage.
        assert len(fused_prims[0].stages) == 2

    def test_fused_numerics(self):
        mod, ctx = self._legalized(self._mm_relu_module())
        fused = transform.FuseTensorIR()(transform.FuseOps()(mod, ctx), ctx)
        exe = transform.build(
            fused, TEST_DEVICE, enable_library_dispatch=False,
        )
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = RNG.standard_normal((3, 8)).astype(np.float32)
        w = RNG.standard_normal((8, 4)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x), NDArray.from_numpy(w))
        np.testing.assert_allclose(out.numpy(), np.maximum(x @ w, 0), rtol=1e-5)

    def test_opaque_not_fused(self):
        bb = BlockBuilder()
        with bb.function("main", {"x": TensorAnn(("n", 8), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                s = bb.emit(ops.softmax(x))  # opaque multi-stage
                r = bb.emit(ops.relu(s))
                gv = bb.emit_output(r)
            bb.emit_func_output(gv)
        mod, ctx = self._legalized(bb.get())
        fused = transform.FuseOps()(mod, ctx)
        assert not any(
            n.startswith("fused_") for n, _ in fused.relax_functions()
        )

    def test_multi_use_producer_not_fused(self):
        bb = BlockBuilder()
        with bb.function(
            "main",
            {"x": TensorAnn(("n", 8), "f32"), "w": TensorAnn((8, 8), "f32")},
        ) as frame:
            x, w = frame.params
            with bb.dataflow():
                h = bb.emit(ops.matmul(x, w))
                a = bb.emit(ops.relu(h))
                b = bb.emit(ops.exp(h))  # h used twice
                c = bb.emit(ops.add(a, b))
                gv = bb.emit_output(c)
            bb.emit_func_output(gv)
        mod, ctx = self._legalized(bb.get())
        fused = transform.FuseOps()(mod, ctx)
        # relu/exp cannot absorb the shared matmul; but relu+exp feed add:
        # add's producers are single-use elementwise -> they fuse together.
        for name, func in fused.relax_functions():
            if name.startswith("fused_"):
                assert "matmul" not in name

    def test_fig8_extra_symbolic_parameter(self):
        """flatten -> add -> relu: fused group params carry expression
        shapes (2*n) plus an extra Shape parameter binding n (Fig. 8)."""
        bb = BlockBuilder()
        with bb.function("main", {"x": TensorAnn(("n", 2), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                flat = bb.emit(ops.flatten(x))
                a = bb.emit(ops.add(flat, flat))
                r = bb.emit(ops.relu(a))
                gv = bb.emit_output(r)
            bb.emit_func_output(gv)
        mod, ctx = self._legalized(bb.get())
        fused = transform.FuseOps()(mod, ctx)
        subs = [f for n, f in fused.relax_functions() if n.startswith("fused_")]
        assert subs, "expected a fused subgraph function"
        # Numerics still correct end to end.
        done = transform.FuseTensorIR()(fused, ctx)
        exe = transform.build(done, TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = RNG.standard_normal((3, 2)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_allclose(
            out.numpy(), np.maximum(x.reshape(-1) * 2, 0), rtol=1e-6
        )


class TestWorkspaceLifting:
    def _split_k_module(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("mm_split_k")
        a = f.arg("A", (n, 8), "f32")
        y = f.out("Y", (n,), "f32")
        ws = f.alloc("workspace", (n, 2), "f32", scope="global")
        i, s = f.spatial(n, 2)
        k = f.reduce(4)
        f.store(ws, [i, s], a[i, s * 4 + k], combiner="sum", init=0.0)
        i = f.spatial(n)
        s = f.reduce(2)
        f.store(y, [i], ws[i, s], combiner="sum", init=0.0)
        prim = f.build()

        bb = BlockBuilder()
        gv = bb.add_func(prim, "mm_split_k")
        with bb.function("main", {"x": TensorAnn(("n", 8), "f32")}) as frame:
            (x,) = frame.params
            nn = bb.shape_var("n")
            with bb.dataflow():
                out = bb.call_tir(gv, [x], TensorAnn((nn,), "f32"))
                g = bb.emit_output(out)
            bb.emit_func_output(g)
        return bb.get()

    def test_workspace_lifted_to_graph(self):
        mod = self._split_k_module()
        ctx = PassContext()
        lifted = transform.WorkspaceLifting()(mod, ctx)
        bindings = lifted["main"].body.blocks[0].bindings
        allocs = [
            b for b in bindings
            if isinstance(b.value, core.Call)
            and b.value.op is transform.alloc_tensor_op
        ]
        assert len(allocs) == 1
        # The rewritten tensor program has no workspace left.
        lifted_prims = [
            f for n, f in lifted.tir_functions() if n.endswith("_lifted")
        ]
        assert lifted_prims and lifted_prims[0].workspace_buffers() == []

    def test_lifted_numerics(self):
        mod = self._split_k_module()
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = RNG.standard_normal((5, 8)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_allclose(out.numpy(), x.sum(axis=1), rtol=1e-5)

    def test_lifted_workspace_is_planned(self):
        mod = self._split_k_module()
        ctx = PassContext(sym_var_upper_bounds={"n": 64})
        lowered = transform.optimize(mod, ctx)
        assert lowered["main"].attrs.get("memory_planned") == "static"


class TestMemoryPlanFig10:
    def test_transpose_chain_uses_two_storages(self):
        """Figure 10: exp -> transpose -> relu -> transpose over (n, 2):
        four intermediate tensors, two storage chunks after planning."""
        bb = BlockBuilder()
        with bb.function("main", {"x": TensorAnn(("n", 2), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                a = bb.emit(ops.exp(x))
                b = bb.emit(ops.permute_dims(a, (1, 0)))
                c = bb.emit(ops.relu(b))
                d = bb.emit(ops.permute_dims(c, (1, 0)))
                gv = bb.emit_output(d)
            bb.emit_func_output(gv)
        mod = bb.get()
        ctx = PassContext(enable_fusion=False, enable_library_dispatch=False)
        lowered = transform.optimize(mod, ctx)
        bindings = lowered["main"].body.blocks[0].bindings
        storages = [
            b for b in bindings
            if isinstance(b.value, core.Call)
            and b.value.op is transform.alloc_storage_op
        ]
        transient = [b for b in storages if not b.value.attrs.get("escapes")]
        escaping = [b for b in storages if b.value.attrs.get("escapes")]
        # The three *intermediate* tensors share two chunks — (2, n) and
        # (n, 2) have provably equal symbolic sizes (Fig. 10's claim).  The
        # returned tensor gets a dedicated (escaping) storage so results
        # survive the call.
        assert len(transient) == 2
        assert len(escaping) == 1

    def test_planned_numerics(self):
        bb = BlockBuilder()
        with bb.function("main", {"x": TensorAnn(("n", 2), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                a = bb.emit(ops.exp(x))
                b = bb.emit(ops.permute_dims(a, (1, 0)))
                c = bb.emit(ops.relu(b))
                d = bb.emit(ops.permute_dims(c, (1, 0)))
                gv = bb.emit_output(d)
            bb.emit_func_output(gv)
        mod = bb.get()
        exe = transform.build(
            mod, TEST_DEVICE, enable_fusion=False, enable_library_dispatch=False
        )
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = RNG.standard_normal((4, 2)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_allclose(out.numpy(), np.maximum(np.exp(x), 0), rtol=1e-5)


class TestMatchCastThroughPipeline:
    def test_unique_then_match_cast(self):
        """Figure 3's full story: data-dependent unique, match_cast to a
        fresh symbolic length, then a shape-tracked exp."""
        bb = BlockBuilder()
        with bb.function("main", {"x": TensorAnn(("n",), "f32")}) as frame:
            (x,) = frame.params
            m = core.sym_var("m")
            with bb.dataflow():
                u = bb.emit(ops.unique(x))
                cast = bb.match_cast(u, TensorAnn((m,), "f32"))
                e = bb.emit(ops.exp(cast))
                gv = bb.emit_output(e)
            bb.emit_func_output(gv)
        mod = bb.get()
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.array([3.0, 1.0, 3.0, 2.0, 1.0], dtype=np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_allclose(out.numpy(), np.exp(np.unique(x)), rtol=1e-6)

    def test_match_cast_alias_not_killed_before_use(self):
        """InsertKills regression (found by the differential fuzzer,
        seeds 297/337): a match_cast var aliases its source's register,
        so using the cast var must count as a use of the source — the
        unoptimized pipeline used to kill the source right after the
        cast's shape check and feed a dead register to the next op."""
        bb = BlockBuilder()
        n = core.sym_var("n")
        with bb.function("main", {"x": TensorAnn(("n",), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                lv = bb.emit(ops.expand_dims(x, axis=1))
                cast = bb.match_cast(lv, TensorAnn((n, 1), "f32"))
                flat = bb.emit(ops.reshape(cast, (n * 1,)))
                gv = bb.emit_output(flat)
            bb.emit_func_output(gv)
        mod = bb.get()
        # The reference configuration: no planning, pool allocs + kills.
        exe = transform.build(
            mod, TEST_DEVICE, sym_var_upper_bounds={"n": 16},
            enable_library_dispatch=False, enable_fusion=False,
            enable_memory_planning=False, enable_cuda_graph=False,
            enable_autotuning=False,
        )
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = RNG.standard_normal((5,)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_array_equal(out.numpy(), x)


class TestVerifyEachPass:
    def test_pipeline_is_well_formed_after_every_pass(self):
        """PassContext(verify_each_pass=True) runs the verifier between
        stages — the pipeline must keep the IR invariants at every step."""
        from repro.models import TINY_LLAMA, build_llama
        from repro.runtime import TEST_DEVICE

        exported = build_llama(TINY_LLAMA)
        ctx = PassContext(
            device=TEST_DEVICE,
            sym_var_upper_bounds={"b": 4, "s": 16, "m": 16},
            verify_each_pass=True,
        )
        lowered = transform.optimize(exported.mod, ctx)
        assert lowered["decode"].attrs.get("memory_planned") == "static"
