"""Backward constraint propagation (the Axon-style extension, paper §6)."""

import numpy as np
import pytest

from repro import ops, sym, transform
from repro.core import BlockBuilder, TensorAnn
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.transform import PassContext, RefineShapes


def _coarse_chain_module():
    """unique (coarse) -> exp -> relu -> match_cast((n,)): the cast asserts
    the result still has the *input's* length (all elements distinct), and
    that in-scope constraint flows backwards through the chain."""
    bb = BlockBuilder()
    with bb.function("f", {"x": TensorAnn(("n",), "f32")}) as frame:
        (x,) = frame.params
        n = bb.shape_var("n")
        with bb.dataflow():
            u = bb.emit(ops.unique(x))        # Tensor(ndim=1) — coarse
            e = bb.emit(ops.exp(u))           # coarse propagates forward
            r = bb.emit(ops.relu(e))          # still coarse
            c = bb.match_cast(r, TensorAnn((n,), "f32"))
            gv = bb.emit_output(c)
        bb.emit_func_output(gv)
    return bb.get(), n


class TestRefineShapes:
    def test_backward_propagation_through_chain(self):
        mod, m = _coarse_chain_module()  # m is the signature's n here
        bindings = mod["f"].body.blocks[0].bindings
        # Before: forward-only deduction left the chain coarse.
        assert bindings[1].var.ann.shape is None  # exp
        assert bindings[2].var.ann.shape is None  # relu

        RefineShapes()(mod, PassContext())
        # After: the match_cast constraint reached both intermediates.
        assert sym.prove_equal(bindings[2].var.ann.shape[0], m)
        assert sym.prove_equal(bindings[1].var.ann.shape[0], m)
        # ...and unique's result itself (relu's operand's producer's value).
        assert sym.prove_equal(bindings[0].var.ann.shape[0], m)

    def test_params_never_refined(self):
        bb = BlockBuilder()
        m = sym.SymVar("m")
        with bb.function("f", {"x": TensorAnn(ndim=1, dtype="f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                c = bb.match_cast(x, TensorAnn((m,), "f32"))
                gv = bb.emit_output(c)
            bb.emit_func_output(gv)
        mod = bb.get()
        RefineShapes()(mod, PassContext())
        # The public signature stays coarse.
        assert mod["f"].params[0].ann.shape is None

    def test_already_fine_annotations_untouched(self):
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn(("n", 4), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                e = bb.emit(ops.exp(x))
                gv = bb.emit_output(e)
            bb.emit_func_output(gv)
        mod = bb.get()
        before = mod["f"].body.blocks[0].bindings[0].var.ann
        RefineShapes()(mod, PassContext())
        after = mod["f"].body.blocks[0].bindings[0].var.ann
        assert after is before

    def test_refined_module_compiles_and_runs(self):
        """Refinement must not break the pipeline; the refined annotations
        are consistent with runtime behaviour."""
        mod, _ = _coarse_chain_module()
        RefineShapes()(mod, PassContext())
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        # All-distinct input: the match_cast's (n,) assertion holds.
        x = np.array([2.0, 1.0, 4.0, 3.0], dtype=np.float32)
        out = vm.run("f", NDArray.from_numpy(x))
        np.testing.assert_allclose(
            out.numpy(), np.maximum(np.exp(np.unique(x)), 0), rtol=1e-6
        )

    def test_fresh_var_constraint_blocked_by_scope(self):
        """A match_cast-introduced variable must not flow above its own
        introduction (it has no runtime value there)."""
        bb = BlockBuilder()
        m = sym.SymVar("m")
        with bb.function("f", {"x": TensorAnn(("n",), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                u = bb.emit(ops.unique(x))
                e = bb.emit(ops.exp(u))
                c = bb.match_cast(e, TensorAnn((m,), "f32"))
                gv = bb.emit_output(c)
            bb.emit_func_output(gv)
        mod = bb.get()
        RefineShapes()(mod, PassContext())
        bindings = mod["f"].body.blocks[0].bindings
        assert bindings[1].var.ann.shape is None  # exp stays coarse
        # ...and the module still verifies (no out-of-scope variables).
        from repro.core import well_formed

        well_formed(mod)
        # Such a program genuinely cannot legalize (no shape to generate
        # exp's kernel from) — which is why the paper's Fig. 3 places the
        # match_cast *before* the dependent operators.
        with pytest.raises(ValueError, match="match_cast"):
            transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)

    def test_binary_not_propagated(self):
        """add() has broadcast semantics: equality is NOT provable, so no
        refinement happens (soundness)."""
        bb = BlockBuilder()
        m = sym.SymVar("m")
        with bb.function("f", {"x": TensorAnn(("n",), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                u = bb.emit(ops.unique(x))
                s = bb.emit(ops.add(u, u))
                c = bb.match_cast(s, TensorAnn((m,), "f32"))
                gv = bb.emit_output(c)
            bb.emit_func_output(gv)
        mod = bb.get()
        RefineShapes()(mod, PassContext())
        bindings = mod["f"].body.blocks[0].bindings
        assert bindings[0].var.ann.shape is None  # unique stays coarse
