"""Cross-validations between independent implementations.

The repo has several deliberately redundant computation paths — generated
tensor programs vs library kernels, concrete vs abstract mode, first run vs
graph replay.  These tests pit them against each other: any divergence
means one of the paths drifted.
"""

import numpy as np
import pytest

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn
from repro.models import TINY_LLAMA, build_llama, empty_caches
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine

RNG = np.random.default_rng(31)


def _attention_module(h, kv, causal):
    bb = BlockBuilder()
    d = 8
    with bb.function(
        "f",
        {
            "q": TensorAnn(("b", "s", h, d), "f32"),
            "k": TensorAnn(("b", "m", kv, d), "f32"),
            "v": TensorAnn(("b", "m", kv, d), "f32"),
        },
    ) as frame:
        q, k, v = frame.params
        with bb.dataflow():
            out = bb.emit(ops.attention(q, k, v, causal=causal))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    return bb.get()


class TestGeneratedVsLibraryAttention:
    @pytest.mark.parametrize("h,kv", [(4, 4), (4, 2), (4, 1)],
                             ids=["mha", "gqa2", "mqa"])
    @pytest.mark.parametrize("s,m", [(1, 6), (4, 4)], ids=["decode", "prefill"])
    def test_paths_agree(self, h, kv, s, m):
        """The generated multi-stage attention kernel and the FlashAttention
        registry kernel must compute the same thing (incl. GQA grouping and
        causal masking)."""
        d = 8
        q = RNG.standard_normal((2, s, h, d)).astype(np.float32)
        k = RNG.standard_normal((2, m, kv, d)).astype(np.float32)
        v = RNG.standard_normal((2, m, kv, d)).astype(np.float32)
        args = [NDArray.from_numpy(a) for a in (q, k, v)]

        outs = {}
        for library in (False, True):
            mod = _attention_module(h, kv, causal=True)
            exe = transform.build(mod, TEST_DEVICE,
                                  enable_library_dispatch=library)
            vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
            outs[library] = vm.run("f", *args).numpy()
            if library:
                assert vm.stats.lib_calls == 1
        np.testing.assert_allclose(outs[True], outs[False], rtol=1e-4,
                                   atol=1e-5)

    def test_non_causal_stays_generated(self):
        """Non-causal attention (Whisper cross-attention) must not dispatch
        to the causal-only library kernel."""
        mod = _attention_module(2, 2, causal=False)
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=True)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("f", NDArray.abstract((1, 3, 2, 8), "f32"),
               NDArray.abstract((1, 5, 2, 8), "f32"),
               NDArray.abstract((1, 5, 2, 8), "f32"))
        assert vm.stats.lib_calls == 0


class TestAbstractConcreteParity:
    def test_same_instruction_stream(self):
        """Both modes execute identical instruction counts and shapes."""
        exported = build_llama(TINY_LLAMA)
        exported.module.initialize(seed=0, scale=0.1)
        exe = transform.build(exported.mod, TEST_DEVICE,
                              enable_library_dispatch=False)

        tokens = np.array([[1, 2, 3]], dtype=np.int64)

        vm_c = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        out_c = vm_c.run("prefill", NDArray.from_numpy(tokens),
                         *empty_caches(TINY_LLAMA, 1, True),
                         *exported.concrete_params())

        vm_a = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        out_a = vm_a.run("prefill", NDArray.abstract((1, 3), "i64"),
                         *empty_caches(TINY_LLAMA, 1, False),
                         *exported.abstract_params())

        assert vm_c.stats.kernel_launches == vm_a.stats.kernel_launches
        assert vm_c.stats.allocations == vm_a.stats.allocations
        assert vm_c.stats.time_s == pytest.approx(vm_a.stats.time_s)
        for c, a in zip(out_c, out_a):
            assert c.shape == a.shape
        assert not out_a[0].is_concrete and out_c[0].is_concrete


class TestGraphReplayNumerics:
    def test_replayed_decode_matches_fresh_vm(self):
        """Graph replay (steady state) must compute the same logits as a
        fresh un-replayed execution."""
        exported = build_llama(TINY_LLAMA)
        exported.module.initialize(seed=7, scale=0.1)
        exe = transform.build(
            exported.mod, TEST_DEVICE,
            sym_var_upper_bounds={"b": 2, "s": 16, "m": 16},
        )
        params = exported.concrete_params()
        tokens = np.array([[5]], dtype=np.int64)
        caches = empty_caches(TINY_LLAMA, 1, True)

        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        first = vm.run("decode", NDArray.from_numpy(tokens), *caches, *params)
        replay = vm.run("decode", NDArray.from_numpy(tokens), *caches, *params)
        assert vm.stats.graph_replays >= 1
        np.testing.assert_allclose(first[0].numpy(), replay[0].numpy())

        fresh = VirtualMachine(exe, TEST_DEVICE, concrete=True,
                               enable_cuda_graph=False)
        plain = fresh.run("decode", NDArray.from_numpy(tokens), *caches, *params)
        np.testing.assert_allclose(replay[0].numpy(), plain[0].numpy())


class TestBigModulePrinting:
    def test_format_module_smoke(self):
        from repro.core import format_module

        exported = build_llama(TINY_LLAMA)
        text = format_module(exported.mod)
        assert "def prefill" in text and "def decode" in text
        # Lowered module prints too (memory ops, DPS calls).
        from repro.transform import PassContext, optimize

        lowered = optimize(exported.mod,
                           PassContext(enable_library_dispatch=False))
        text = format_module(lowered)
        assert "memory.alloc" in text
        assert "vm.call_tir_dps" in text
        assert "@tensorir_function" in text
