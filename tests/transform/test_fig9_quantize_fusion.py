"""Figure 9 case study: fusing a *customized* quantization-decode tensor
program into a matmul — the flagship demonstration of cross-level fusion.

The decode has no graph-level operator; it exists only as a loop-level
tensor program.  Analysis feedback classifies it Injective, FuseOps groups
it with the matmul, and FuseTensorIR merges both into one kernel whose
weight decode is inlined into the FMA read — no materialized f32 weight
matrix, which is what makes 4-bit LLMs fit on phones (§5.3).
"""

import numpy as np
import pytest

from repro import core, ops, sym, tir, transform
from repro.core import BlockBuilder, TensorAnn
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.transform import PassContext

K, N = 16, 8  # weight is (K, N), packed as (K, N // 8) uint32


def _decode_q4_prim():
    """W[k, j] = ((data[k, j//8] >> (j%8*4)) & 15 - 7) * scale[k] (Fig. 9)."""
    f = tir.TirBuilder("decode_q4")
    data = f.arg("Wdata", (K, N // 8), "u32")
    scale = f.arg("Wscale", (K,), "f32")
    w = f.out("W", (K, N), "f32")
    k, j = f.spatial(K, N)
    nibble = tir.cast("i32", (data[k, j // 8] >> tir.IndexValue((j % 8) * 4)) & 15)
    f.store(w, [k, j], tir.cast("f32", nibble - 7) * scale[k])
    return f.build()


def _mm_prim():
    n = sym.SymVar("n")
    f = tir.TirBuilder("mm")
    x = f.arg("X", (n, K), "f32")
    w = f.arg("W", (K, N), "f32")
    y = f.out("Y", (n, N), "f32")
    f.attr("op_kind", "matmul")
    i, j = f.spatial(n, N)
    kk = f.reduce(K)
    f.store(y, [i, j], x[i, kk] * w[kk, j], combiner="sum", init=0.0)
    return f.build()


def _build_module():
    bb = BlockBuilder()
    decode_gv = bb.add_func(_decode_q4_prim(), "decode_q4")
    mm_gv = bb.add_func(_mm_prim(), "mm")
    with bb.function(
        "main",
        {
            "x": TensorAnn(("n", K), "f32"),
            "Wdata": TensorAnn((K, N // 8), "u32"),
            "Wscale": TensorAnn((K,), "f32"),
        },
    ) as frame:
        x, wdata, wscale = frame.params
        n = bb.shape_var("n")
        with bb.dataflow():
            w = bb.call_tir(decode_gv, [wdata, wscale], TensorAnn((K, N), "f32"))
            out = bb.call_tir(mm_gv, [x, w], TensorAnn((n, N), "f32"))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    return bb.get()


def _reference(x, wdata, wscale):
    w = np.zeros((K, N), dtype=np.float32)
    for k in range(K):
        for j in range(N):
            nib = (int(wdata[k, j // 8]) >> ((j % 8) * 4)) & 15
            w[k, j] = (nib - 7) * wscale[k]
    return x @ w


def test_pattern_analysis_classifies_decode():
    mod = _build_module()
    ctx = PassContext()
    transform.AnnotatePatternKind()(mod, ctx)
    assert mod["decode_q4"].attrs["compute_pattern"] == tir.PatternKind.INJECTIVE
    assert mod["mm"].attrs["compute_pattern"] == tir.PatternKind.OUT_EWISE_FUSIBLE


def test_fuse_ops_groups_decode_with_mm():
    mod = _build_module()
    ctx = PassContext()
    transform.AnnotatePatternKind()(mod, ctx)
    fused = transform.FuseOps()(mod, ctx)
    subs = [n for n, f in fused.relax_functions() if n.startswith("fused_")]
    assert len(subs) == 1


def test_fuse_tensorir_inlines_decode_into_matmul():
    mod = _build_module()
    ctx = PassContext()
    transform.AnnotatePatternKind()(mod, ctx)
    merged = transform.FuseTensorIR()(transform.FuseOps()(mod, ctx), ctx)
    fused_prims = [f for _, f in merged.tir_functions() if f.attrs.get("fused")]
    assert len(fused_prims) == 1
    prim = fused_prims[0]
    # Decode inlined into the FMA: a single reduction stage, no
    # materialized intermediate weight buffer.
    assert len(prim.stages) == 1
    assert prim.intermediate_buffers() == []
    assert prim.attrs.get("op_kind") == "matmul"
    # Still classified fusable at its output.
    assert tir.pattern_kind(prim) == tir.PatternKind.OUT_EWISE_FUSIBLE


def test_fused_numerics_match_dequantized_reference():
    mod = _build_module()
    exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    rng = np.random.default_rng(9)
    wdata = rng.integers(0, 2**32, size=(K, N // 8), dtype=np.uint32)
    wscale = rng.standard_normal(K).astype(np.float32)
    for n in (1, 4):
        x = rng.standard_normal((n, K)).astype(np.float32)
        out = vm.run(
            "main",
            NDArray.from_numpy(x),
            NDArray.from_numpy(wdata),
            NDArray.from_numpy(wscale),
        )
        np.testing.assert_allclose(out.numpy(), _reference(x, wdata, wscale), rtol=1e-5)


def test_fusion_reduces_memory_traffic():
    """The fused kernel never writes the f32 weight to global memory."""
    mod = _build_module()

    def traffic(fusion):
        exe = transform.build(
            mod, TEST_DEVICE, enable_fusion=fusion,
            enable_library_dispatch=False, enable_cuda_graph=False,
        )
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run(
            "main",
            NDArray.abstract((4, K), "f32"),
            NDArray.abstract((K, N // 8), "u32"),
            NDArray.abstract((K,), "f32"),
        )
        return vm.stats.kernel_launches, vm.stats.allocated_bytes_total

    fused_launches, fused_bytes = traffic(True)
    plain_launches, plain_bytes = traffic(False)
    assert fused_launches < plain_launches
    assert fused_bytes < plain_bytes  # no (K, N) f32 intermediate allocation
