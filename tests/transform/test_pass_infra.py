"""Instrumented pass infrastructure: registry, scoped PassContext,
PassInstrument lifecycle, built-in instruments, and the PipelineReport."""

import io
import json

import numpy as np
import pytest

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, const
from repro.core.printer import format_module
from repro.core.well_formed import WellFormedError
from repro.models import TINY_LLAMA, build_llama
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.transform import (
    IRStats,
    LambdaPass,
    PassContext,
    PassInstrument,
    PrintIRDiff,
    Timing,
    WellFormedVerifier,
)

RNG = np.random.default_rng(7)

WEIGHT = np.asarray(RNG.standard_normal((8, 8)), dtype=np.float32)


def _simple_module():
    """relu(x @ w) + exp(x @ w): enough structure for fusion, dispatch,
    planning and graph capture to all have something to do."""
    bb = BlockBuilder()
    w = const(WEIGHT)
    with bb.function("main", {"x": TensorAnn(("n", 8), "f32")}) as frame:
        (x,) = frame.params
        with bb.dataflow():
            mm = bb.emit(ops.matmul(x, w))
            r = bb.emit(ops.relu(mm))
            e = bb.emit(ops.exp(mm))
            out = bb.emit(ops.add(r, e))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    return bb.get()


class TestRegistry:
    def test_all_pipeline_passes_registered(self):
        names = transform.registered_passes()
        for name in transform.DEFAULT_PIPELINE:
            assert name in names
        assert "VMCodegen" in names
        assert "RefineShapes" in names

    def test_get_pass_builds_instances(self):
        p = transform.get_pass("FuseOps")
        assert isinstance(p, transform.FuseOps)
        with pytest.raises(KeyError, match="no pass named"):
            transform.get_pass("NoSuchPass")

    def test_metadata_declared(self):
        meta = transform.pass_metadata("FuseOps")
        assert meta == {"name": "FuseOps", "opt_level": 1,
                        "required": False, "opt_flag": "enable_fusion"}
        assert transform.pass_metadata("LegalizeOps")["required"] is True
        assert transform.pass_metadata("TuneTir")["opt_flag"] == "enable_autotuning"

    def test_pipeline_override_by_name(self):
        pipe = transform.build_pipeline(
            ["FoldConstant", "LegalizeOps"], skip=["FoldConstant"]
        )
        assert [p.name for p in pipe.passes] == ["LegalizeOps"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @transform.register_pass
            class Impostor(transform.Pass):
                name = "FuseOps"


class TestScopedContext:
    def test_current_returns_scoped_context(self):
        outer = PassContext()
        inner = PassContext()
        with outer:
            assert PassContext.current() is outer
            with inner:
                assert PassContext.current() is inner
            assert PassContext.current() is outer
        assert PassContext.current() is not outer  # fresh default

    def test_enter_exit_hooks_fire_once(self):
        events = []

        class Recorder(PassInstrument):
            def enter_pass_ctx(self, ctx):
                events.append("enter")

            def exit_pass_ctx(self, ctx):
                events.append("exit")

        ctx = PassContext(instruments=[Recorder()])
        with ctx:
            with ctx:  # re-entrant (build() inside a user scope)
                pass
        assert events == ["enter", "exit"]

    def test_scoped_build_uses_active_context(self):
        mod = _simple_module()
        timing = Timing()
        with PassContext(instruments=[timing]) as ctx:
            exe = transform.build(mod)
        assert timing.records, "scoped instruments must observe build()"
        assert exe.pipeline_report is ctx.report


class TestGoldenOutput:
    def test_instrumented_pipeline_is_identical(self):
        """Acceptance: optimize() under Timing+IRStats returns an identical
        IRModule to the uninstrumented run, while producing a report with
        one entry per executed pass."""
        exported = build_llama(TINY_LLAMA)
        bounds = {"b": 4, "s": 16, "m": 16}
        plain = transform.optimize(
            exported.mod,
            PassContext(device=TEST_DEVICE, sym_var_upper_bounds=bounds),
        )
        ctx = PassContext(
            device=TEST_DEVICE, sym_var_upper_bounds=bounds,
            instruments=[Timing(), IRStats()],
        )
        instrumented, report = transform.optimize(
            exported.mod, ctx, return_report=True
        )
        assert format_module(plain) == format_module(instrumented)
        executed = report.executed
        assert len(executed) == len(transform.DEFAULT_PIPELINE) - 1  # TuneTir off
        for record in executed:
            assert record.duration_s is not None
            assert record.metrics["ir_after"]["relax_functions"] >= 1
        assert [r.name for r in report.skipped] == ["TuneTir"]

    def test_report_serializes(self):
        mod = _simple_module()
        ctx = PassContext(instruments=[Timing(), IRStats()])
        transform.optimize(mod, ctx)
        payload = json.loads(json.dumps(ctx.report.to_dict()))
        assert len(payload["passes"]) == len(transform.DEFAULT_PIPELINE)
        assert payload["total_duration_s"] > 0
        text = ctx.report.format()
        assert "FoldConstant" in text and "skipped" in text


FLAG_TO_PASS = {
    "enable_fusion": "FuseOps",
    "enable_library_dispatch": "LibraryDispatch",
    "enable_memory_planning": "MemoryPlan",
    "enable_cuda_graph": "CUDAGraphOffload",
    "enable_autotuning": "TuneTir",
}


class TestAblationFlags:
    """Each enable_* toggle removes exactly its pass from the executed
    sequence (observable via the Timing instrument) without changing the
    computed result."""

    def _run(self, mod, **flags):
        timing = Timing()
        ctx = PassContext(device=TEST_DEVICE, instruments=[timing], **flags)
        exe = transform.build(mod, ctx=ctx)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True,
                            enable_cuda_graph=ctx.enable_cuda_graph)
        x = RNG.standard_normal((5, 8)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x)).numpy()
        return timing.executed_names(), ctx.report, out, x

    @pytest.mark.parametrize("flag", sorted(FLAG_TO_PASS))
    def test_toggle_removes_pass_and_preserves_output(self, flag):
        pass_name = FLAG_TO_PASS[flag]
        mod_on, mod_off = _simple_module(), _simple_module()
        on_default = PassContext().flag(flag)

        executed_on, _, out_on, x_on = self._run(mod_on, **{flag: True})
        executed_off, report_off, out_off, x_off = self._run(
            mod_off, **{flag: False}
        )
        assert pass_name in executed_on
        assert pass_name not in executed_off
        skipped = {r.name: r.skipped_by for r in report_off.skipped}
        assert skipped.get(pass_name) == f"flag:{flag}"
        if not on_default:
            # autotuning defaults off; make sure default == off sequence
            assert executed_off == self._run(_simple_module())[0]

        for x, out in ((x_on, out_on), (x_off, out_off)):
            mm = x @ WEIGHT
            expected = np.maximum(mm, 0) + np.exp(mm)
            np.testing.assert_allclose(out, expected, rtol=2e-5)


class TestInstrumentVeto:
    def test_should_run_skips_optional_pass(self):
        class NoFusion(PassInstrument):
            name = "no_fusion"

            def should_run(self, mod, pass_, ctx):
                return pass_.name != "FuseOps"

        mod = _simple_module()
        ctx = PassContext(instruments=[NoFusion(), Timing()])
        transform.optimize(mod, ctx)
        skipped = {r.name: r.skipped_by for r in ctx.report.skipped}
        assert skipped["FuseOps"] == "instrument:no_fusion"

    def test_required_passes_are_immune(self):
        class VetoAll(PassInstrument):
            name = "veto_all"

            def should_run(self, mod, pass_, ctx):
                return False

        mod = _simple_module()
        ctx = PassContext(instruments=[VetoAll()])
        transform.optimize(mod, ctx)
        executed = set(ctx.report.executed_names())
        assert "LegalizeOps" in executed and "LowerCallTIR" in executed
        assert "FuseOps" not in executed

    def test_opt_level_gates_optional_passes(self):
        mod = _simple_module()
        ctx = PassContext(opt_level=0)
        transform.optimize(mod, ctx)
        executed = set(ctx.report.executed_names())
        assert executed == {
            "LegalizeOps", "FuseTensorIR", "ScheduleRules",
            "WorkspaceLifting", "LowerCallTIR", "InsertKills",
        }


class TestWellFormedVerifier:
    def _ill_forming_pass(self):
        """A pass that rebinds main's body to use an unbound variable."""
        from repro.core import Function, SeqExpr, Var
        from repro.core.expr import BindingBlock, VarBinding

        def corrupt(mod, ctx):
            out = mod.copy()
            name, func = next(out.relax_functions())
            rogue = Var("rogue", TensorAnn(("n", 8), "f32"))
            binding = VarBinding(Var("y", None), ops.relu(rogue))
            body = SeqExpr([BindingBlock([binding])], binding.var)
            out.add(name, Function(func.params, body, func.ret_ann,
                                   func.attrs, func.name))
            return out

        return LambdaPass(corrupt, name="CorruptingPass")

    def test_failure_names_the_pass(self):
        mod = _simple_module()
        ctx = PassContext(instruments=[WellFormedVerifier()])
        with pytest.raises(WellFormedError, match="CorruptingPass"):
            self._ill_forming_pass()(mod, ctx)

    def test_sym_scope_checked_by_default(self):
        """The old verify_each_pass flag hard-coded check_sym_scope=False,
        masking symbolic-scope violations; the instrument checks them."""
        from repro import core
        from repro.core import Function, SeqExpr, Var
        from repro.core.expr import BindingBlock, VarBinding

        def leak_sym_var(mod, ctx):
            out = mod.copy()
            name, func = next(out.relax_functions())
            # Annotation mentions a symbolic var never introduced in scope.
            leaked = TensorAnn(("phantom", 8), "f32")
            (x,) = func.params
            binding = VarBinding(Var("y", leaked), ops.relu(x))
            body = SeqExpr([BindingBlock([binding])], binding.var)
            out.add(name, Function(func.params, body, func.ret_ann,
                                   func.attrs, func.name))
            return out

        mod = _simple_module()
        leak = LambdaPass(leak_sym_var, name="LeakyPass")
        strict = PassContext(instruments=[WellFormedVerifier()])
        with pytest.raises(WellFormedError, match="LeakyPass"):
            leak(mod, strict)
        lax = PassContext(
            instruments=[WellFormedVerifier(check_sym_scope=False)]
        )
        leak(_simple_module(), lax)  # masked, as the old flag behaved

    def test_legacy_flag_installs_verifier(self):
        ctx = PassContext(verify_each_pass=True)
        assert any(isinstance(i, WellFormedVerifier) for i in ctx.instruments)


class TestPrintIRDiff:
    def test_prints_only_changed_passes(self):
        mod = _simple_module()
        stream = io.StringIO()
        ctx = PassContext(instruments=[PrintIRDiff(stream=stream)])
        transform.optimize(mod, ctx)
        text = stream.getvalue()
        assert "after LegalizeOps" in text
        # FoldConstant has nothing to fold here -> no diff printed.
        assert "after FoldConstant" not in text

    def test_only_filter(self):
        mod = _simple_module()
        stream = io.StringIO()
        ctx = PassContext(
            instruments=[PrintIRDiff(only=["FuseOps"], stream=stream)]
        )
        transform.optimize(mod, ctx)
        text = stream.getvalue()
        assert "after FuseOps" in text
        assert "after LegalizeOps" not in text


class TestCompileAndLoad:
    def test_context_threads_to_vm(self):
        """compile_and_load constructs one context for build() and the VM:
        the VM's cuda-graph setting always matches the compiled artifact."""
        mod = _simple_module()
        vm = transform.compile_and_load(mod, TEST_DEVICE,
                                        enable_cuda_graph=False)
        assert vm.enable_cuda_graph is False
        assert getattr(vm.exe, "pipeline_report", None) is not None
        x = RNG.standard_normal((3, 8)).astype(np.float32)
        vm.run("main", NDArray.from_numpy(x))

    def test_explicit_context(self):
        mod = _simple_module()
        ctx = PassContext(device=TEST_DEVICE, enable_fusion=False,
                          instruments=[Timing()])
        vm = transform.compile_and_load(mod, ctx=ctx)
        assert "FuseOps" not in ctx.report.executed_names()
        assert vm.enable_cuda_graph is True
