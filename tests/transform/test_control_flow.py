"""Graph-level control flow (If) through the full pipeline."""

import numpy as np
import pytest

from repro import ops, transform
from repro.core import (
    BindingBlock,
    BlockBuilder,
    DataflowBlock,
    Function,
    If,
    SeqExpr,
    TensorAnn,
    Var,
    VarBinding,
)
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine


def _branching_module():
    """out = relu(x) if flag else sigmoid(x) — branches hold op calls."""
    from repro import sym

    n = sym.SymVar("n")
    x = Var("x", TensorAnn((n, 4), "f32"))
    flag = Var("flag", TensorAnn((), "bool"))

    def branch(op_fn):
        v = Var("bv")
        call = op_fn(x)
        block = DataflowBlock([VarBinding(v, call)])
        seq = SeqExpr([block], v)
        return seq

    out_var = Var("out")
    cond_block = BindingBlock(
        [VarBinding(out_var, If(flag, branch(ops.relu), branch(ops.sigmoid)))]
    )
    func = Function(
        [x, flag], SeqExpr([cond_block], out_var), None, None, "main"
    )
    from repro.core import IRModule, rededuce_function

    mod = IRModule({"main": func})
    rededuce_function(func)
    func.ret_ann = out_var.ann
    return mod


class TestIfThroughPipeline:
    def test_both_branches_execute_correctly(self):
        mod = _branching_module()
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32)

        out_true = vm.run(
            "main", NDArray.from_numpy(x), NDArray.from_numpy(np.bool_(True))
        )
        np.testing.assert_allclose(out_true.numpy(), np.maximum(x, 0))

        out_false = vm.run(
            "main", NDArray.from_numpy(x), NDArray.from_numpy(np.bool_(False))
        )
        np.testing.assert_allclose(
            out_false.numpy(), 1 / (1 + np.exp(-x)), rtol=1e-5
        )

    def test_only_taken_branch_launches(self):
        mod = _branching_module()
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False,
                              enable_cuda_graph=False)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.zeros((2, 4), np.float32)
        vm.run("main", NDArray.from_numpy(x), NDArray.from_numpy(np.bool_(True)))
        assert vm.stats.kernel_launches == 1

    def test_if_function_not_graph_offloaded(self):
        """Control flow disqualifies CUDA Graph capture (§4.5)."""
        mod = _branching_module()
        exe = transform.build(mod, TEST_DEVICE, sym_var_upper_bounds={"n": 16})
        assert not exe.functions["main"].attrs.get("cuda_graph")

    def test_branch_annotation_join(self):
        mod = _branching_module()
        func = mod["main"]
        ann = func.ret_ann
        assert isinstance(ann, TensorAnn)
        assert ann.dtype == "f32"
