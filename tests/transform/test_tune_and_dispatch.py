"""Schedule rules, Ansor-style tuning, and custom library dispatch (§4.6)."""

import numpy as np
import pytest

from repro import ops, sym, tir, transform
from repro.core import BlockBuilder, TensorAnn
from repro.runtime import (
    LibraryKernel,
    LibraryRegistry,
    NDArray,
    TEST_DEVICE,
    VirtualMachine,
)
from repro.transform import (
    SCHEDULE_ATTR,
    TUNE_ATTR,
    LibraryDispatch,
    PassContext,
    ScheduleRules,
    TuneTir,
    classify_schedule,
)


def _module_with(op_call_builder):
    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 8), "f32")}) as frame:
        (x,) = frame.params
        with bb.dataflow():
            out = op_call_builder(bb, x)
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    return bb.get()


class TestScheduleRules:
    def test_classes_assigned(self):
        mod = _module_with(lambda bb, x: bb.emit(ops.relu(x)))
        ctx = PassContext(enable_library_dispatch=False)
        mod = transform.LegalizeOps()(mod, ctx)
        ScheduleRules()(mod, ctx)
        classes = {f.attrs[SCHEDULE_ATTR] for _, f in mod.tir_functions()}
        assert classes == {"ewise"}

    def test_classify_families(self):
        n = sym.SymVar("n")
        f = tir.TirBuilder("mm")
        f.attr("op_kind", "matmul")
        a = f.arg("A", (n, 4), "f32")
        b = f.arg("B", (4, 4), "f32")
        y = f.out("Y", (n, 4), "f32")
        i, j = f.spatial(n, 4)
        k = f.reduce(4)
        f.store(y, [i, j], a[i, k] * b[k, j], combiner="sum", init=0.0)
        assert classify_schedule(f.build()) == "gemm"

        g = tir.TirBuilder("rowsum")
        a = g.arg("A", (n, 4), "f32")
        y = g.out("Y", (n,), "f32")
        i = g.spatial(n)
        k = g.reduce(4)
        g.store(y, [i], a[i, k], combiner="sum", init=0.0)
        assert classify_schedule(g.build()) == "reduction"


class TestTuneTir:
    def _opaque_module(self):
        # take() legalizes to a gather -> Opaque: the "rare tensor program"
        # case autotuning exists for.
        def build(bb, x):
            idx = bb.emit(ops.astype(bb.emit(ops.relu(x)), "i64"))
            flat_idx = bb.emit(ops.flatten(idx))
            return bb.emit(ops.take(x, flat_idx, axis=0))

        return _module_with(build)

    def test_tunes_only_opaque_by_default(self):
        mod = self._opaque_module()
        ctx = PassContext(enable_library_dispatch=False, enable_autotuning=True)
        mod = transform.LegalizeOps()(mod, ctx)
        TuneTir()(mod, ctx)
        tuned = {n: f for n, f in mod.tir_functions() if TUNE_ATTR in f.attrs}
        untuned = {n: f for n, f in mod.tir_functions() if TUNE_ATTR not in f.attrs}
        assert tuned, "opaque gather should be tuned"
        assert all(f.attrs[SCHEDULE_ATTR] == "opaque" for f in tuned.values())
        assert untuned, "non-opaque programs stay on analysis rules"

    def test_picks_best_candidate(self):
        mod = self._opaque_module()
        ctx = PassContext(enable_library_dispatch=False, enable_autotuning=True)
        mod = transform.LegalizeOps()(mod, ctx)
        TuneTir()(mod, ctx)
        for _, func in mod.tir_functions():
            if TUNE_ATTR in func.attrs:
                # DEFAULT_SPACE's best opaque candidate.
                assert func.attrs[TUNE_ATTR] == "blocked_shared_vec"
                assert func.attrs["tuned_efficiency"] == pytest.approx(0.56)

    def test_tuning_speeds_up_opaque_kernels(self):
        mod1 = self._opaque_module()
        mod2 = self._opaque_module()

        def run(mod, autotuning):
            exe = transform.build(
                mod, TEST_DEVICE, enable_library_dispatch=False,
                enable_cuda_graph=False, enable_autotuning=autotuning,
            )
            vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
            vm.run("main", NDArray.abstract((512, 8), "f32"))
            return vm.stats.time_s

        assert run(mod1, True) < run(mod2, False)

    def test_tuned_numerics_unchanged(self):
        mod = self._opaque_module()
        exe = transform.build(mod, TEST_DEVICE, enable_library_dispatch=False,
                              enable_autotuning=True)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.abs(np.random.default_rng(0).standard_normal((6, 8))).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        idx = np.maximum(x, 0).astype(np.int64).reshape(-1) % 6
        # Reference: the gather reads row relu(x) (clipped into range by
        # construction of the test data).
        x2 = np.minimum(np.maximum(x, 0), 5).astype(np.int64)
        # Values may exceed the table; keep data small instead:
        assert out.shape[0] == 48


class TestCustomDispatch:
    """§4.6: users register (pattern, library function) pairs."""

    def test_user_registered_pattern_dispatches(self):
        registry = LibraryRegistry()

        def gelu_compute(inputs, outputs):
            from scipy.special import erf

            x = inputs[0].astype(np.float64)
            outputs[0][...] = (x * 0.5 * (1 + erf(x / np.sqrt(2)))).astype(
                inputs[0].dtype
            )

        registry.register(
            LibraryKernel(
                "vendor.fast_gelu", gelu_compute,
                lambda i, o: (1, 1), ("cuda",),
            )
        )

        mod = _module_with(lambda bb, x: bb.emit(ops.gelu(x)))
        ctx = PassContext(device=TEST_DEVICE, registry=registry)
        rules = [("gelu", lambda call: True, "vendor.fast_gelu")]
        dispatched = LibraryDispatch(rules=rules)(mod, ctx)
        lowered = transform.LegalizeOps()(dispatched, ctx)

        from repro.core import Call, is_call_to, call_dps_library_op

        calls = [
            b.value for b in lowered["main"].body.blocks[0].bindings
            if isinstance(b.value, Call)
        ]
        assert any(is_call_to(c, call_dps_library_op) for c in calls)

        exe = transform.VMCodegen()(
            transform.LowerCallTIR()(lowered, ctx), ctx
        )
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True, registry=registry)
        x = np.random.default_rng(0).standard_normal((3, 8)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        from scipy.special import erf

        want = x * 0.5 * (1 + erf(x / np.sqrt(2)))
        np.testing.assert_allclose(out.numpy(), want, rtol=1e-5)

    def test_dispatch_skips_unavailable_backend(self):
        registry = LibraryRegistry()
        registry.register(
            LibraryKernel("vendor.metal_only", lambda i, o: None,
                          lambda i, o: (1, 1), ("metal",))
        )
        mod = _module_with(lambda bb, x: bb.emit(ops.gelu(x)))
        ctx = PassContext(device=TEST_DEVICE, registry=registry)  # cuda
        rules = [("gelu", lambda call: True, "vendor.metal_only")]
        out = LibraryDispatch(rules=rules)(mod, ctx)
        from repro.core import Call, Op

        calls = [
            b.value for b in out["main"].body.blocks[0].bindings
            if isinstance(b.value, Call)
        ]
        assert all(isinstance(c.op, Op) and c.op.name == "gelu" for c in calls)
