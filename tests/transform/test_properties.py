"""Property-based tests on the optimization pipeline.

The random programs come from the fuzzing subsystem's structured
generator (``repro.fuzz``) — symbolic shapes, match_cast, control flow,
tuples, subgraph calls — rather than a private toy vocabulary.  On top
of them we check the invariants the paper's incremental-transformation
design depends on:

* every pipeline configuration (each ``enable_*`` flag toggled both
  ways) computes the same values as the unoptimized reference
  (``repro.fuzz.run_plan`` runs the whole matrix and raises on any
  divergence, ill-formed intermediate, or replay mismatch);
* memory planning never assigns two simultaneously-live tensors to the
  same storage (the Algorithm 3 correctness invariant);
* after lowering, no high-level op survives and every DPS call's
  outputs are allocated before the call.
"""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import transform
from repro.core import Call, Function, Op, SeqExpr, well_formed
from repro.fuzz import build_module, generate, run_plan
from repro.fuzz.oracle import plan_aliasing_violations
from repro.runtime import TEST_DEVICE
from repro.transform import (
    PassContext,
    call_lib_dps_op,
    call_tir_dps_op,
    dps_parts,
)

# Seeds beyond the tier-1 pinned batch in tests/fuzz (which covers
# range(12)); hypothesis shrinks to the smallest failing seed.
_SEED = st.integers(100, 400)


@settings(max_examples=15, deadline=None)
@given(seed=_SEED)
def test_pipeline_configs_agree_with_reference(seed):
    # run_plan raises FuzzFailure (with the offending config and detail)
    # if any ablation disagrees with the full-off reference.
    report = run_plan(generate(seed))
    assert len(report["configs"]) >= 10
    assert report["configs"][0] == "full-off"


@settings(max_examples=15, deadline=None)
@given(seed=_SEED)
def test_planner_never_overlaps_live_tensors(seed):
    """No two simultaneously-live tensors may share a storage."""
    assert plan_aliasing_violations(generate(seed)) == []


def _walk_calls(func: Function):
    """Yield every Call in the function, in execution order (top-level
    bindings plus If branches, which the lowered VM runs inline)."""

    def from_seq(seq: SeqExpr):
        from repro.core import If

        for block in seq.blocks:
            for binding in block.bindings:
                value = binding.value
                if isinstance(value, If):
                    for branch in (value.true_branch, value.false_branch):
                        if isinstance(branch, SeqExpr):
                            yield from from_seq(branch)
                elif isinstance(value, Call):
                    yield binding.var, value

    if isinstance(func.body, SeqExpr):
        yield from from_seq(func.body)


@settings(max_examples=10, deadline=None)
@given(seed=_SEED)
def test_lowered_module_structure(seed):
    """After lowering: no high-level ops remain; every DPS call's outputs
    are allocated before the call."""
    plan = generate(seed)
    ctx = PassContext(device=TEST_DEVICE,
                      sym_var_upper_bounds=dict(plan.dims))
    lowered = transform.optimize(build_module(plan), ctx)
    well_formed(lowered, check_sym_scope=False)

    for name, func in lowered.functions():
        if not isinstance(func, Function):
            continue
        seen_allocated = set()
        for var, value in _walk_calls(func):
            if isinstance(value.op, Op):
                assert value.op.name.startswith(("memory.", "vm.")), (
                    f"unlowered op {value.op.name} in {name}"
                )
            if value.op in (call_tir_dps_op, call_lib_dps_op):
                _, _, outputs, _ = dps_parts(value)
                for out in outputs:
                    assert out._id in seen_allocated, (
                        f"DPS output not allocated before use in {name}"
                    )
            if isinstance(value.op, Op) and value.op.name in (
                "memory.alloc_tensor",
                "memory.alloc_tensor_from_storage",
            ):
                seen_allocated.add(var._id)
