"""Property-based tests on the optimization pipeline.

Random programs over a small op vocabulary check the invariants that the
paper's incremental-transformation design depends on:

* every pipeline configuration (fusion on/off, planning on/off, library
  on/off) computes the same values as the unoptimized reference;
* memory planning never assigns two simultaneously-live tensors to the
  same storage (the Algorithm 3 correctness invariant);
* the well-formedness checker passes after every stage.
"""

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import ops, sym, transform
from repro.core import BlockBuilder, Call, TensorAnn, well_formed
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.transform import (
    PassContext,
    alloc_storage_op,
    alloc_tensor_from_storage_op,
    call_lib_dps_op,
    call_tir_dps_op,
    dps_parts,
)

# A vocabulary of unary graph transformations that preserve (n, 8) shape.
_UNARY = [
    ("relu", lambda bb, x: bb.emit(ops.relu(x))),
    ("exp", lambda bb, x: bb.emit(ops.exp(x))),
    ("sigmoid", lambda bb, x: bb.emit(ops.sigmoid(x))),
    ("permute2", lambda bb, x: bb.emit(
        ops.permute_dims(bb.emit(ops.permute_dims(x, (1, 0))), (1, 0))
    )),
    ("reshape_roundtrip", lambda bb, x: _reshape_roundtrip(bb, x)),
]

_BINARY = [
    ("add", lambda bb, a, b: bb.emit(ops.add(a, b))),
    ("mul", lambda bb, a, b: bb.emit(ops.multiply(a, b))),
    ("max", lambda bb, a, b: bb.emit(ops.maximum(a, b))),
]

_NP_UNARY = {
    "relu": lambda x: np.maximum(x, 0),
    "exp": np.exp,
    "sigmoid": lambda x: 1 / (1 + np.exp(-x)),
    "permute2": lambda x: x,
    "reshape_roundtrip": lambda x: x,
}

_NP_BINARY = {
    "add": np.add,
    "mul": np.multiply,
    "max": np.maximum,
}


def _reshape_roundtrip(bb, x):
    n = sym.free_vars(x.ann.shape[0])
    from repro.core import shape

    dim0 = x.ann.shape[0]
    flat = bb.emit(ops.flatten(x))
    return bb.emit(ops.reshape(flat, shape(dim0, 8)))


@st.composite
def _programs(draw):
    """A random DAG: list of (op, input indices) over live values."""
    steps = draw(st.lists(st.integers(0, 7), min_size=1, max_size=8))
    program = []
    live = 1  # value 0 is the input
    for choice in steps:
        if choice < 5:
            name, _ = _UNARY[choice]
            src = draw(st.integers(0, live - 1))
            program.append(("u", name, src, None))
        else:
            name, _ = _BINARY[choice - 5]
            a = draw(st.integers(0, live - 1))
            b = draw(st.integers(0, live - 1))
            program.append(("b", name, a, b))
        live += 1
    return program


def _build(program):
    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 8), "f32")}) as frame:
        (x,) = frame.params
        with bb.dataflow():
            values = [x]
            for kind, name, a, b in program:
                if kind == "u":
                    fn = dict(_UNARY)[name]
                    values.append(fn(bb, values[a]))
                else:
                    fn = dict(_BINARY)[name]
                    values.append(fn(bb, values[a], values[b]))
            gv = bb.emit_output(values[-1])
        bb.emit_func_output(gv)
    return bb.get()


def _reference(program, x):
    # float32, like the compiled kernels: exp chains may saturate to inf,
    # and both paths must saturate identically.
    values = [x.astype(np.float32)]
    with np.errstate(over="ignore", invalid="ignore"):
        for kind, name, a, b in program:
            if kind == "u":
                values.append(_NP_UNARY[name](values[a]).astype(np.float32))
            else:
                values.append(
                    _NP_BINARY[name](values[a], values[b]).astype(np.float32)
                )
    return values[-1]


@settings(max_examples=20, deadline=None)
@given(program=_programs(), seed=st.integers(0, 100))
def test_pipeline_configs_agree_with_reference(program, seed):
    mod_builder = lambda: _build(program)
    x = np.random.default_rng(seed).standard_normal((3, 8)).astype(np.float32)
    want = _reference(program, x)

    for kwargs in (
        {"enable_fusion": False, "enable_library_dispatch": False},
        {"enable_fusion": True, "enable_library_dispatch": False},
        {"enable_fusion": True, "enable_library_dispatch": True},
        {"enable_memory_planning": False, "enable_cuda_graph": False},
    ):
        exe = transform.build(mod_builder(), TEST_DEVICE, **kwargs)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        out = vm.run("main", NDArray.from_numpy(x))
        with np.errstate(over="ignore", invalid="ignore"):
            np.testing.assert_allclose(out.numpy(), want, rtol=2e-3, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(program=_programs())
def test_planner_never_overlaps_live_tensors(program):
    """No two simultaneously-live tensors may share a storage."""
    mod = _build(program)
    ctx = PassContext(device=TEST_DEVICE, enable_library_dispatch=False,
                      sym_var_upper_bounds={"n": 32})
    lowered = transform.optimize(mod, ctx)
    func = lowered["main"]
    well_formed(lowered, check_sym_scope=False)

    bindings = [b for block in func.body.blocks for b in block.bindings]
    storage_of = {}  # tensor var id -> storage var id
    born_at = {}
    for idx, binding in enumerate(bindings):
        value = binding.value
        if isinstance(value, Call) and value.op is alloc_tensor_from_storage_op:
            storage_of[binding.var._id] = value.args[0]._id
            born_at[binding.var._id] = idx

    # Last use of each tensor.
    last_use = {}

    def scan(expr, idx):
        from repro.core import Tuple, TupleGetItem, Var

        if isinstance(expr, Var):
            last_use[expr._id] = idx
        elif isinstance(expr, Call):
            for a in expr.args:
                scan(a, idx)
        elif isinstance(expr, Tuple):
            for f in expr.fields:
                scan(f, idx)
        elif isinstance(expr, TupleGetItem):
            scan(expr.tuple_value, idx)

    for idx, binding in enumerate(bindings):
        scan(binding.value, idx)
    scan(func.body.body, len(bindings) + 1)

    tensors = list(storage_of)
    for i, t1 in enumerate(tensors):
        for t2 in tensors[i + 1:]:
            if storage_of[t1] != storage_of[t2]:
                continue
            live1 = (born_at[t1], last_use.get(t1, born_at[t1]))
            live2 = (born_at[t2], last_use.get(t2, born_at[t2]))
            overlap = not (live1[1] <= live2[0] or live2[1] <= live1[0])
            assert not overlap, (
                f"tensors with overlapping live ranges {live1} / {live2} "
                "share a storage"
            )


@settings(max_examples=10, deadline=None)
@given(program=_programs())
def test_lowered_module_structure(program):
    """After lowering: no high-level ops remain; every DPS call's outputs
    are allocated before the call."""
    mod = _build(program)
    ctx = PassContext(device=TEST_DEVICE, enable_library_dispatch=False)
    lowered = transform.optimize(mod, ctx)
    func = lowered["main"]
    seen_allocated = set()
    for block in func.body.blocks:
        for binding in block.bindings:
            value = binding.value
            if not isinstance(value, Call):
                continue
            from repro.core import Op

            if isinstance(value.op, Op):
                assert value.op.name.startswith(("memory.", "vm.")), (
                    f"unlowered op {value.op.name}"
                )
            if value.op in (call_tir_dps_op, call_lib_dps_op):
                _, _, outputs, _ = dps_parts(value)
                for out in outputs:
                    assert out._id in seen_allocated
            if value.op is alloc_tensor_from_storage_op or (
                isinstance(value.op, Op) and value.op.name == "memory.alloc_tensor"
            ):
                seen_allocated.add(binding.var._id)
