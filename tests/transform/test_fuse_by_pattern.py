"""Custom fusion patterns (§4.2's composability story).

The headline case: fusing *all sub-operators of scaled dot-product
attention* — matmul, mask add, softmax (Opaque! FuseOps would never touch
it), matmul — into one kernel via a user-registered pattern, with
FuseTensorIR handling the merged result exactly as it does for standard
fusion groups.
"""

import numpy as np
import pytest

from repro import ops, sym, transform
from repro.core import BlockBuilder, TensorAnn, const
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.transform import FuseByPattern, PassContext


def _composed_attention_module(d=8, m=6):
    """scores = softmax(q @ k_t + mask); out = scores @ v — all as separate
    high-level ops (no fused attention operator)."""
    rng = np.random.default_rng(0)
    mask = np.where(np.tril(np.ones((m, m))), 0.0, -1e9).astype(np.float32)

    bb = BlockBuilder()
    with bb.function(
        "attn",
        {
            "q": TensorAnn((m, d), "f32"),
            "k_t": TensorAnn((d, m), "f32"),
            "v": TensorAnn((m, d), "f32"),
        },
    ) as frame:
        q, k_t, v = frame.params
        with bb.dataflow():
            scores = bb.emit(ops.matmul(q, k_t))
            masked = bb.emit(ops.add(scores, const(mask)))
            probs = bb.emit(ops.softmax(masked))
            out = bb.emit(ops.matmul(probs, v))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    return bb.get(), mask


ATTENTION_PATTERN = [["matmul", "add", "softmax", "matmul"]]


def _prepare(mod, ctx):
    mod = transform.LegalizeOps()(mod, ctx)
    mod = transform.AnnotatePatternKind()(mod, ctx)
    return mod


class TestFuseByPattern:
    def test_standard_fuseops_skips_softmax(self):
        mod, _ = _composed_attention_module()
        ctx = PassContext(enable_library_dispatch=False)
        mod = _prepare(mod, ctx)
        fused = transform.FuseOps()(mod, ctx)
        # Softmax is Opaque: the 4-op chain must NOT become one group.
        groups = [n for n, f in fused.relax_functions()
                  if getattr(f, "attrs", {}).get("fusion_group")]
        for name in groups:
            assert "softmax" not in name

    def test_custom_pattern_fuses_whole_chain(self):
        mod, _ = _composed_attention_module()
        ctx = PassContext(enable_library_dispatch=False)
        mod = _prepare(mod, ctx)
        fused = transform.FuseByPattern(ATTENTION_PATTERN)(mod, ctx)
        groups = [f for _, f in fused.relax_functions()
                  if f.attrs.get("fusion_group")]
        assert len(groups) == 1
        # The group carries all four operators.
        assert len(groups[0].body.blocks[0].bindings) == 4 + 1  # + output alias

    def test_fuse_tensorir_merges_custom_group(self):
        mod, _ = _composed_attention_module()
        ctx = PassContext(enable_library_dispatch=False)
        mod = _prepare(mod, ctx)
        fused = transform.FuseByPattern(ATTENTION_PATTERN)(mod, ctx)
        merged = transform.FuseTensorIR()(fused, ctx)
        prims = [f for _, f in merged.tir_functions() if f.attrs.get("fused")]
        assert len(prims) == 1
        # One kernel for the whole attention block.
        from repro.core import Call, call_tir_op, is_call_to

        main_calls = [
            b.value for b in merged["attn"].body.blocks[0].bindings
            if isinstance(b.value, Call)
        ]
        assert len(main_calls) == 1
        assert is_call_to(main_calls[0], call_tir_op)

    def test_numerics_preserved(self):
        mod, mask = _composed_attention_module()
        ctx = PassContext(enable_library_dispatch=False)
        prepared = _prepare(mod, ctx)
        fused = transform.FuseByPattern(ATTENTION_PATTERN)(prepared, ctx)
        merged = transform.FuseTensorIR()(fused, ctx)
        lowered = transform.LowerCallTIR()(merged, ctx)
        lowered = transform.MemoryPlan()(lowered, ctx)
        lowered = transform.InsertKills()(lowered, ctx)
        exe = transform.VMCodegen()(lowered, ctx)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)

        rng = np.random.default_rng(1)
        q = rng.standard_normal((6, 8)).astype(np.float32)
        k_t = rng.standard_normal((8, 6)).astype(np.float32)
        v = rng.standard_normal((6, 8)).astype(np.float32)
        out = vm.run("attn", NDArray.from_numpy(q), NDArray.from_numpy(k_t),
                     NDArray.from_numpy(v))

        scores = q @ k_t + mask
        e = np.exp(scores - scores.max(-1, keepdims=True))
        probs = e / e.sum(-1, keepdims=True)
        np.testing.assert_allclose(out.numpy(), probs @ v, rtol=1e-4)

    def test_fewer_kernels_than_unfused(self):
        def kernels(use_pattern):
            mod, _ = _composed_attention_module()
            ctx = PassContext(enable_library_dispatch=False)
            prepared = _prepare(mod, ctx)
            if use_pattern:
                prepared = transform.FuseByPattern(ATTENTION_PATTERN)(prepared, ctx)
            merged = transform.FuseTensorIR()(prepared, ctx)
            lowered = transform.InsertKills()(
                transform.MemoryPlan()(
                    transform.LowerCallTIR()(merged, ctx), ctx), ctx)
            exe = transform.VMCodegen()(lowered, ctx)
            vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
            vm.run("attn", NDArray.abstract((6, 8), "f32"),
                   NDArray.abstract((8, 6), "f32"),
                   NDArray.abstract((6, 8), "f32"))
            return vm.stats.kernel_launches

        assert kernels(True) == 1
        assert kernels(False) == 4

    def test_rejects_trivial_pattern(self):
        with pytest.raises(ValueError):
            FuseByPattern([["matmul"]])

    def test_multi_use_breaks_chain(self):
        """A chain value used twice cannot be absorbed."""
        bb = BlockBuilder()
        with bb.function("f", {"x": TensorAnn((4, 4), "f32")}) as frame:
            (x,) = frame.params
            with bb.dataflow():
                a = bb.emit(ops.exp(x))
                b = bb.emit(ops.relu(a))
                c = bb.emit(ops.add(a, b))  # `a` used twice
                gv = bb.emit_output(c)
            bb.emit_func_output(gv)
        ctx = PassContext(enable_library_dispatch=False)
        mod = _prepare(bb.get(), ctx)
        fused = transform.FuseByPattern([["exp", "relu"]])(mod, ctx)
        assert not any(
            f.attrs.get("fusion_group") for _, f in fused.relax_functions()
        )
