"""Differential fuzzing: fixed-seed corpus + regression repros (tier 1).

Two layers run by default:

* a pinned batch of generator seeds goes through the full oracle
  (every pipeline-ablation config vs. the unoptimized reference, the
  replay check, and the Algorithm-3 aliasing invariant);
* every repro file in ``tests/fuzz_corpus/`` — each one a bug the fuzzer
  actually found and we fixed — is replayed and must stay fixed.

Set ``FUZZ_SEEDS=N`` to additionally run N fresh random seeds (slow;
meant for nightly/CI-smoke use, not the default suite).
"""

import glob
import os

import pytest

from repro.fuzz import failure_of, generate, load_repro, replay_repro, run_plan
from repro.fuzz.gen import ParamSpec, Plan, Step

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "fuzz_corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

# Small but feature-dense pinned batch; failures here are regressions,
# never flakes (generation and inputs both derive from the seed).
PINNED_SEEDS = list(range(12))


@pytest.mark.parametrize("seed", PINNED_SEEDS)
def test_pinned_seed_passes_oracle(seed):
    plan = generate(seed)
    failure = failure_of(plan)
    assert failure is None, f"seed {seed}: {failure}"


# First generator seed whose plan contains a paged_attention step; keeps
# the paged lowering (gather legalization + library dispatch) inside the
# default pinned batch even if the seed stream shifts the others.
PAGED_SEED = 28

# First generator seed whose plan contains a paged_prefill step (the
# chunked-prefill entry into the paged pool).
PAGED_PREFILL_SEED = 18

# First generator seed whose plan contains a paged_verify step (ragged
# speculative-decode verification over the paged pool).
PAGED_VERIFY_SEED = 7

# First generator seed whose plan contains a paged_cross_attention step.
PAGED_CROSS_SEED = 70

# First generator seed containing each collective (single-VM replica
# semantics: all-reduce sums ``world`` identical replicas, gather tiles,
# scatter sums-then-chunks, broadcast is the identity).
CCL_SEEDS = {
    "ccl.reduce_scatter": 1,
    "ccl.all_gather": 3,
    "ccl.broadcast": 4,
    "ccl.all_reduce": 10,
}


def test_pinned_paged_attention_seed_passes_oracle():
    plan = generate(PAGED_SEED)
    assert any(s.kind == "paged_attention" for s in plan.steps)
    failure = failure_of(plan)
    assert failure is None, f"seed {PAGED_SEED}: {failure}"


def test_pinned_paged_prefill_seed_passes_oracle():
    plan = generate(PAGED_PREFILL_SEED)
    assert any(s.kind == "paged_prefill" for s in plan.steps)
    failure = failure_of(plan)
    assert failure is None, f"seed {PAGED_PREFILL_SEED}: {failure}"


def test_pinned_paged_verify_seed_passes_oracle():
    plan = generate(PAGED_VERIFY_SEED)
    assert any(s.kind == "paged_verify" for s in plan.steps)
    failure = failure_of(plan)
    assert failure is None, f"seed {PAGED_VERIFY_SEED}: {failure}"


def test_pinned_paged_cross_attention_seed_passes_oracle():
    plan = generate(PAGED_CROSS_SEED)
    assert any(s.kind == "paged_cross_attention" for s in plan.steps)
    failure = failure_of(plan)
    assert failure is None, f"seed {PAGED_CROSS_SEED}: {failure}"


@pytest.mark.parametrize("op,seed", sorted(CCL_SEEDS.items()))
def test_pinned_ccl_seed_passes_oracle(op, seed):
    plan = generate(seed)
    assert any(s.op == op for s in plan.steps)
    failure = failure_of(plan)
    assert failure is None, f"seed {seed} ({op}): {failure}"


def test_handwritten_ccl_plan_passes_oracle():
    """Oracle case chaining all four collectives over a symbolic dim:
    all_gather doubles ``n`` symbolically (``n*2``), reduce_scatter
    divides it back down (``n*2 // 4`` with divisibility only provable
    at runtime), all_reduce sums world=3 replicas, broadcast from a
    non-zero root is the identity.  Pins the symbolic shape deduction
    *and* the single-VM replica execution of every ``vm.builtin.ccl.*``
    builtin through every pipeline ablation."""
    plan = Plan(
        seed=0,
        dims={"n": 4},
        params=[ParamSpec("x", ["n", 3], "f32")],
        steps=[
            Step("ccl", "ccl.all_gather", [0], {"world": 2, "axis": 0}),
            Step("ccl", "ccl.all_reduce", [1], {"world": 3}),
            Step("ccl", "ccl.reduce_scatter", [2], {"world": 4, "axis": 0}),
            Step("ccl", "ccl.broadcast", [3], {"world": 2, "root": 1}),
            Step("unary", "exp", [4]),
        ],
        outputs=[4, 5],
    )
    failure = failure_of(plan)
    assert failure is None, f"handwritten ccl plan: {failure}"


def test_handwritten_paged_cross_attention_plan_passes_oracle():
    """Oracle case for the cross-attention paged lowering: grouped query
    heads (h = 2 over h_kv = 1) reading t = 3 pool-resident encoder
    positions through the block table, with the last page only half
    full — the reduce extent must stop at t, never touch the padding
    slot."""
    plan = Plan(
        seed=0,
        dims={},
        params=[
            ParamSpec("pq", [2, 2, 2, 4], "f32"),
            ParamSpec("kp", [3, 2, 1, 4], "f32"),
            ParamSpec("vp", [3, 2, 1, 4], "f32"),
            ParamSpec("bt", [2, 2], "i64", role="index", index_bound=3),
            ParamSpec("enc", [3], "i64", role="index", index_bound=3),
        ],
        steps=[
            Step("paged_cross_attention", "paged_cross_attention",
                 [0, 1, 2, 3, 4]),
            Step("unary", "exp", [5]),
        ],
        outputs=[5, 6],
    )
    failure = failure_of(plan)
    assert failure is None, f"handwritten paged cross plan: {failure}"


def test_handwritten_paged_attention_plan_passes_oracle():
    """Dedicated oracle case for the paged KV-cache attention lowering:
    ragged lengths (one empty sequence), block-table indirection into a
    shared page pool, and padding slots pointing at a real page."""
    plan = Plan(
        seed=0,
        dims={},
        params=[
            ParamSpec("pq", [2, 2, 2, 4], "f32"),
            ParamSpec("kp", [3, 2, 1, 4], "f32"),
            ParamSpec("vp", [3, 2, 1, 4], "f32"),
            ParamSpec("bt", [2, 2], "i64", role="index", index_bound=3),
            ParamSpec("ln", [2], "i64", role="index", index_bound=5),
            ParamSpec("kc", [2, 2, 1, 4], "f32"),
            ParamSpec("vc", [2, 2, 1, 4], "f32"),
        ],
        steps=[
            Step("paged_attention", "paged_attention", [0, 1, 2, 3, 4, 5, 6]),
            Step("unary", "exp", [7]),
        ],
        outputs=[7, 8],
    )
    failure = failure_of(plan)
    assert failure is None, f"handwritten paged plan: {failure}"


def test_handwritten_paged_verify_plan_passes_oracle():
    """Oracle case for the speculative-verify lowering: s = 3 query rows
    per sequence but ragged valid widths via spec_lens (index bound 4
    lets the inputs hit the fully-padded sl = 0 edge), grouped query
    heads over a shared page pool, one sequence with zero cached
    context — the self-position escape must keep every row's softmax
    non-empty."""
    plan = Plan(
        seed=0,
        dims={},
        params=[
            ParamSpec("pq", [2, 3, 2, 4], "f32"),
            ParamSpec("kp", [3, 2, 1, 4], "f32"),
            ParamSpec("vp", [3, 2, 1, 4], "f32"),
            ParamSpec("bt", [2, 2], "i64", role="index", index_bound=3),
            ParamSpec("ln", [2], "i64", role="index", index_bound=5),
            ParamSpec("sl", [2], "i64", role="index", index_bound=4),
            ParamSpec("kc", [2, 3, 1, 4], "f32"),
            ParamSpec("vc", [2, 3, 1, 4], "f32"),
        ],
        steps=[
            Step("paged_verify", "paged_verify", [0, 1, 2, 3, 4, 5, 6, 7]),
            Step("unary", "exp", [8]),
        ],
        outputs=[8, 9],
    )
    failure = failure_of(plan)
    assert failure is None, f"handwritten paged_verify plan: {failure}"


def test_handwritten_paged_prefill_plan_passes_oracle():
    """Oracle case for the chunked paged-prefill lowering: s=2 new tokens
    attend over m=2 pooled past tokens through the block table plus the
    in-flight current chunk, exercising the past/current select and the
    cross-page gather in one plan."""
    plan = Plan(
        seed=0,
        dims={},
        params=[
            ParamSpec("pq", [2, 2, 2, 4], "f32"),
            ParamSpec("kp", [3, 2, 1, 4], "f32"),
            ParamSpec("vp", [3, 2, 1, 4], "f32"),
            ParamSpec("bt", [2, 2], "i64", role="index", index_bound=3),
            ParamSpec("mp", [2], "i64", role="index", index_bound=3),
            ParamSpec("kc", [2, 2, 1, 4], "f32"),
            ParamSpec("vc", [2, 2, 1, 4], "f32"),
        ],
        steps=[
            Step("paged_prefill", "paged_prefill", [0, 1, 2, 3, 4, 5, 6]),
            Step("unary", "exp", [7]),
        ],
        outputs=[7, 8],
    )
    failure = failure_of(plan)
    assert failure is None, f"handwritten paged_prefill plan: {failure}"


def test_corpus_exists():
    # The corpus documents every fuzzer-found bug; losing it silently
    # would gut the regression coverage below.
    assert len(CORPUS) >= 4


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_corpus_repro_stays_fixed(path):
    # replay_repro also asserts the stored printed IR matches what the
    # builder produces today (printer/builder drift detection).
    failure = replay_repro(path)
    assert failure is None, f"regressed: {failure}"


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_corpus_repro_records_failure(path):
    plan, doc = load_repro(path)
    assert doc["failure"]["kind"] in {
        "compile-error", "ill-formed", "runtime-error",
        "divergence", "replay-divergence", "aliasing",
    }
    assert plan.seed == doc["seed"]
    # The full oracle must also pass on the minimized plan (not just the
    # single config the failure was recorded under).
    result = run_plan(plan)
    assert result["configs"], "oracle ran no configs"


def test_env_gated_random_batch():
    budget = int(os.environ.get("FUZZ_SEEDS", "0"))
    if budget <= 0:
        pytest.skip("set FUZZ_SEEDS=N to fuzz N fresh seeds")
    start = int(os.environ.get("FUZZ_START_SEED", "1000"))
    bad = []
    for seed in range(start, start + budget):
        failure = failure_of(generate(seed))
        if failure is not None:
            bad.append((seed, failure))
    assert not bad, bad
