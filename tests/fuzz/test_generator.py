"""Generator quality gates: well-formedness and feature coverage.

A structured fuzzer earns its keep only if the programs it emits (a)
always pass the front end — otherwise the oracle chases generator bugs —
and (b) actually exercise the interesting IR constructs (symbolic
shapes, match_cast, control flow, subgraph calls, tuples).  These tests
pin both properties over a fixed seed range so a generator refactor that
silently stops emitting some construct fails loudly.
"""

from repro.core import well_formed
from repro.fuzz import build_module, generate, make_inputs

COVERAGE_SEEDS = range(70)


def test_generated_modules_are_well_formed():
    for seed in COVERAGE_SEEDS:
        mod = build_module(generate(seed))
        assert well_formed(mod), f"seed {seed} generated ill-formed IR"


def test_feature_coverage():
    kinds = set()
    ops = set()
    saw_symbolic = False
    saw_subfunc = False
    saw_multi_output = False
    for seed in COVERAGE_SEEDS:
        plan = generate(seed)
        kinds.update(step.kind for step in plan.steps)
        ops.update(step.op for step in plan.steps if step.op)
        saw_symbolic = saw_symbolic or bool(plan.dims)
        saw_subfunc = saw_subfunc or bool(plan.subfuncs)
        saw_multi_output = saw_multi_output or len(plan.outputs) > 1
    # Structural features the differential oracle is supposed to stress.
    for kind in ("match_cast", "if", "call", "split", "tuple_get",
                 "concat", "matmul", "reduce", "shape_of", "ccl"):
        assert kind in kinds, f"no seed in range generated a {kind!r} step"
    assert saw_symbolic, "no seed used symbolic dims"
    assert saw_subfunc, "no seed generated a callable subgraph"
    assert saw_multi_output, "no seed produced a multi-output function"
    assert len(ops) >= 15, f"op vocabulary too narrow: {sorted(ops)}"


def test_inputs_derive_from_plan():
    import numpy as np

    for seed in (0, 5, 9):
        plan = generate(seed)
        a = make_inputs(plan)
        b = make_inputs(plan)
        assert len(a) == len(plan.params)
        for x, y in zip(a, b):
            x, y = np.asarray(x), np.asarray(y)
            assert x.dtype == y.dtype and x.shape == y.shape
            assert (x == y).all()
