"""Divergence localization: align by provenance, name the first bad op."""

import numpy as np

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, const
from repro.fuzz import build_module, generate
from repro.fuzz.localize import first_divergent_op
from repro.fuzz.oracle import _localized
from repro.runtime import TEST_DEVICE


def _exe(scale, **flags):
    """Same structure and var names; only a constant differs."""
    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn((4, 4), "f32")}) as frame:
        (x,) = frame.params
        w = const(np.full((4,), scale, np.float32))
        with bb.dataflow():
            h = bb.emit(ops.add(x, w))
            h = bb.emit(ops.relu(h))
            gv = bb.emit_output(h)
        bb.emit_func_output(gv)
    return transform.build(bb.get(), TEST_DEVICE, **flags)


INPUTS = [np.ones((4, 4), np.float32)]


def test_identical_programs_localize_to_none():
    assert first_divergent_op(_exe(1.0), _exe(1.0), INPUTS) is None


def test_differing_constant_names_first_divergent_op():
    where = first_divergent_op(_exe(1.0), _exe(2.0), INPUTS)
    assert where is not None
    assert "first divergent op" in where
    # The add is the first op whose value changes; its site leads the report.
    assert "add@" in where


def test_ablation_configs_agree_on_fuzz_plan():
    plan = generate(0)
    mod = build_module(plan)
    ref = transform.build(
        mod, TEST_DEVICE, sym_var_upper_bounds=dict(plan.dims),
        enable_library_dispatch=False, enable_fusion=False,
        enable_memory_planning=False, enable_cuda_graph=False,
    )
    opt = transform.build(
        build_module(plan), TEST_DEVICE,
        sym_var_upper_bounds=dict(plan.dims),
    )
    from repro.fuzz.gen import make_inputs

    assert first_divergent_op(ref, opt, make_inputs(plan)) is None


def test_oracle_localization_never_masks_the_diff():
    # A broken executable must not turn the divergence into a new error.
    diff = "leaf 0: max abs err 1.0"
    out = _localized(diff, object(), object(), INPUTS)
    assert out == diff

    out = _localized(diff, _exe(1.0), _exe(2.0), INPUTS)
    assert out.startswith(diff)
    assert "first divergent op" in out
