"""End-to-end determinism (satellite of the fuzzing subsystem).

The whole fuzz workflow depends on three reproducibility guarantees:

1. the generator is a pure function of its seed (same seed → identical
   plan JSON → byte-identical printed IR);
2. compilation is deterministic (same module compiled twice → identical
   disassembly — any set/dict-ordering nondeterminism in fusion or
   memory planning shows up here);
3. execution is deterministic (same executable, same inputs, run twice
   → bit-identical outputs).

Without these, shrinking and corpus replay would chase moving targets.
"""

import numpy as np
import pytest

from repro import transform
from repro.core import well_formed
from repro.core.printer import format_module
from repro.fuzz import Plan, build_module, generate, make_inputs
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine, disassemble

SEEDS = [0, 3, 7, 11, 19]


@pytest.mark.parametrize("seed", SEEDS)
def test_generate_is_pure(seed):
    a, b = generate(seed), generate(seed)
    assert a.to_json() == b.to_json()
    assert format_module(build_module(a)) == format_module(build_module(b))


@pytest.mark.parametrize("seed", SEEDS)
def test_plan_json_round_trip(seed):
    plan = generate(seed)
    clone = Plan.from_json(plan.to_json())
    assert clone.to_json() == plan.to_json()
    assert format_module(build_module(clone)) == format_module(
        build_module(plan)
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_compile_is_deterministic(seed):
    plan = generate(seed)

    def compile_once():
        mod = build_module(plan)
        assert well_formed(mod)
        exe = transform.build(
            mod, TEST_DEVICE, sym_var_upper_bounds=dict(plan.dims)
        )
        return disassemble(exe)

    # Fresh module each time: shared mutable state between builds would
    # hide ordering bugs, not exercise them.
    assert compile_once() == compile_once()


@pytest.mark.parametrize("seed", SEEDS)
def test_run_is_deterministic(seed):
    plan = generate(seed)
    exe = transform.build(
        build_module(plan), TEST_DEVICE, sym_var_upper_bounds=dict(plan.dims)
    )

    def run_once():
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        args = [NDArray.from_numpy(np.asarray(a)) for a in make_inputs(plan)]
        return vm.run("main", *args)

    def flatten(value, out):
        if isinstance(value, (tuple, list)):
            for v in value:
                flatten(v, out)
        elif hasattr(value, "numpy"):
            out.append(value.numpy())
        else:
            out.append(np.asarray(value))
        return out

    first = flatten(run_once(), [])
    second = flatten(run_once(), [])
    assert len(first) == len(second)
    for x, y in zip(first, second):
        np.testing.assert_array_equal(x, y)
