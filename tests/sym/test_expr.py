"""Unit tests for the symbolic expression tree."""

import pytest

from repro import sym
from repro.sym import IntImm, SymVar


def test_convert_int():
    e = sym.PrimExpr.convert(5)
    assert isinstance(e, IntImm)
    assert e.value == 5


def test_convert_rejects_bool():
    with pytest.raises(TypeError):
        sym.PrimExpr.convert(True)


def test_convert_rejects_float():
    with pytest.raises(TypeError):
        sym.PrimExpr.convert(1.5)


def test_operator_overloading_builds_tree():
    n = SymVar("n")
    e = n * 4 + 1
    assert isinstance(e, sym.Add)
    assert isinstance(e.a, sym.Mul)


def test_reflected_operators():
    n = SymVar("n")
    assert sym.evaluate(3 + n, {n: 2}) == 5
    assert sym.evaluate(3 - n, {n: 2}) == 1
    assert sym.evaluate(3 * n, {n: 2}) == 6
    assert sym.evaluate(7 // n, {n: 2}) == 3
    assert sym.evaluate(7 % n, {n: 2}) == 1


def test_evaluate_all_ops():
    n, m = SymVar("n"), SymVar("m")
    env = {n: 10, m: 3}
    assert sym.evaluate(n + m, env) == 13
    assert sym.evaluate(n - m, env) == 7
    assert sym.evaluate(n * m, env) == 30
    assert sym.evaluate(n // m, env) == 3
    assert sym.evaluate(n % m, env) == 1
    assert sym.evaluate(sym.Min(n, m), env) == 3
    assert sym.evaluate(sym.Max(n, m), env) == 10
    assert sym.evaluate(-n, env) == -10


def test_evaluate_unbound_raises():
    n = SymVar("n")
    with pytest.raises(KeyError):
        sym.evaluate(n + 1, {})


def test_distinct_vars_same_name():
    a, b = SymVar("n"), SymVar("n")
    assert a.key() != b.key()
    assert sym.evaluate(a + b, {a: 1, b: 2}) == 3


def test_free_vars_order_and_dedup():
    n, m = SymVar("n"), SymVar("m")
    e = (n + m) * n
    fv = sym.free_vars(e)
    assert fv == [n, m]


def test_free_vars_constant():
    assert sym.free_vars(IntImm(3)) == []


def test_substitute():
    n, m = SymVar("n"), SymVar("m")
    e = n * 4 + m
    out = sym.substitute(e, {n: IntImm(2)})
    assert sym.evaluate(out, {m: 1}) == 9


def test_substitute_with_expression():
    n, m, k = SymVar("n"), SymVar("m"), SymVar("k")
    e = n + 1
    out = sym.substitute(e, {n: m * k})
    assert sym.evaluate(out, {m: 3, k: 4}) == 13


def test_substitute_no_match_returns_same_tree():
    n, m = SymVar("n"), SymVar("m")
    e = n + 2
    assert sym.substitute(e, {m: IntImm(5)}) is e


def test_is_static():
    n = SymVar("n")
    assert sym.is_static(IntImm(4) * 2)
    assert not sym.is_static(n + 1)


def test_as_static_int():
    assert sym.as_static_int(IntImm(6) * 7) == 42


def test_shape_product():
    n = SymVar("n")
    prod = sym.shape_product([n, 4, 2])
    assert sym.evaluate(prod, {n: 3}) == 24


def test_str_forms():
    n = SymVar("n")
    assert str(n * 4) == "(n * 4)"
    assert str(sym.Min(n, IntImm(2))) == "min(n, 2)"
    assert str(sym.Max(n, IntImm(2))) == "max(n, 2)"
