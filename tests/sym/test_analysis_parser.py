"""Tests for interval analysis and the quoted-expression parser."""

import pytest

from repro import sym
from repro.sym import Interval, ShapeVarContext, SymVar


class TestInterval:
    def test_point(self):
        it = Interval.point(5)
        assert it.lo == it.hi == 5
        assert it.is_bounded()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_add_sub(self):
        a, b = Interval(1, 3), Interval(10, 20)
        assert (a + b).lo == 11 and (a + b).hi == 23
        assert (b - a).lo == 7 and (b - a).hi == 19

    def test_unbounded_add(self):
        a = Interval(0, None)
        b = Interval(1, 5)
        out = a + b
        assert out.lo == 1 and out.hi is None

    def test_mul(self):
        a, b = Interval(-2, 3), Interval(4, 5)
        out = a * b
        assert out.lo == -10 and out.hi == 15

    def test_mul_by_zero_point(self):
        assert (Interval.point(0) * Interval.everything()).hi == 0

    def test_union(self):
        out = Interval(0, 2).union(Interval(5, 9))
        assert out.lo == 0 and out.hi == 9


class TestInferBound:
    def test_default_nonnegative_vars(self):
        n = SymVar("n")
        it = sym.infer_bound(n * 4 + 1)
        assert it.lo == 1 and it.hi is None

    def test_declared_upper_bound(self):
        # The LLM context-length case from §4.3: declared upper bounds make
        # dynamic allocation sizes statically plannable.
        n = SymVar("seq_len")
        bounds = {n: Interval(0, 2048)}
        assert sym.upper_bound(n * 4096 * 2, bounds) == 2048 * 4096 * 2

    def test_unbounded_gives_none(self):
        n = SymVar("n")
        assert sym.upper_bound(n * 2) is None

    def test_floordiv_bound(self):
        n = SymVar("n")
        it = sym.infer_bound(n // 4, {n: Interval(0, 100)})
        assert it.lo == 0 and it.hi == 25

    def test_floormod_bound(self):
        n = SymVar("n")
        it = sym.infer_bound(n % 8)
        assert it.lo == 0 and it.hi == 7

    def test_min_max_bounds(self):
        n = SymVar("n")
        it = sym.infer_bound(sym.Min(n, sym.IntImm(16)))
        assert it.hi == 16
        it = sym.infer_bound(sym.Max(n, sym.IntImm(16)), {n: Interval(0, 64)})
        assert it.lo == 16 and it.hi == 64

    def test_prove_nonnegative(self):
        n = SymVar("n")
        assert sym.prove_nonnegative(n * 4)
        assert not sym.prove_nonnegative(n - 5)


class TestParser:
    def test_single_var(self):
        ctx = ShapeVarContext()
        e = sym.parse_expr("n", ctx)
        assert isinstance(e, SymVar)
        assert e is ctx.get("n")

    def test_same_name_same_var(self):
        ctx = ShapeVarContext()
        a = sym.parse_expr("n * 4", ctx)
        b = sym.parse_expr("n + 1", ctx)
        assert sym.free_vars(a)[0] is sym.free_vars(b)[0]

    def test_arith(self):
        ctx = ShapeVarContext()
        e = sym.parse_expr("n * 4 + m - 2", ctx)
        n, m = ctx.get("n"), ctx.get("m")
        assert sym.evaluate(e, {n: 3, m: 10}) == 20

    def test_floordiv_mod(self):
        ctx = ShapeVarContext()
        e = sym.parse_expr("(n + 7) // 8 % 4", ctx)
        assert sym.evaluate(e, {ctx.get("n"): 30}) == 0

    def test_min_max_calls(self):
        ctx = ShapeVarContext()
        e = sym.parse_expr("min(n, 16) + max(m, 2)", ctx)
        assert sym.evaluate(e, {ctx.get("n"): 100, ctx.get("m"): 1}) == 18

    def test_unary_minus(self):
        ctx = ShapeVarContext()
        e = sym.parse_expr("-n + 5", ctx)
        assert sym.evaluate(e, {ctx.get("n"): 2}) == 3

    def test_declared_var_reused(self):
        ctx = ShapeVarContext()
        n = SymVar("n")
        ctx.declare("n", n)
        e = sym.parse_expr("n * 2", ctx)
        assert sym.free_vars(e)[0] is n

    def test_rejects_floats(self):
        with pytest.raises(ValueError):
            sym.parse_expr("n * 1.5", ShapeVarContext())

    def test_rejects_calls(self):
        with pytest.raises(ValueError):
            sym.parse_expr("foo(n)", ShapeVarContext())

    def test_rejects_syntax_error(self):
        with pytest.raises(ValueError):
            sym.parse_expr("n +", ShapeVarContext())

    def test_parse_dim(self):
        ctx = ShapeVarContext()
        assert sym.as_static_int(sym.parse_dim(4, ctx)) == 4
        n = sym.parse_dim("n", ctx)
        assert isinstance(n, SymVar)
        e = sym.PrimExpr.convert(7)
        assert sym.parse_dim(e, ctx) is e
        with pytest.raises(TypeError):
            sym.parse_dim(1.5, ctx)
