"""Unit and property tests for canonical simplification / equality proving."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import sym
from repro.sym import FloorDiv, FloorMod, IntImm, Max, Min, SymVar


def test_prove_equal_basic():
    n = SymVar("n")
    assert sym.prove_equal(n + n, 2 * n)
    assert sym.prove_equal((n + 1) * 4, 4 * n + 4)
    assert not sym.prove_equal(n + 1, n + 2)


def test_prove_equal_flatten_case():
    # The paper's Figure 3: flatten of an (n, 4) tensor has n*4 elements,
    # same as reshape of the (n, 2, 2) input.
    n = SymVar("n")
    assert sym.prove_equal(sym.shape_product([n, 2, 2]), sym.shape_product([n, 4]))


def test_prove_equal_memory_planning_case():
    # Figure 10: a (2, n) f32 tensor and an (n, 2) f32 tensor have equal
    # element counts, so their storage can be shared.
    n = SymVar("n")
    assert sym.prove_equal(sym.shape_product([2, n]), sym.shape_product([n, 2]))


def test_prove_equal_distinct_vars():
    n, m = SymVar("n"), SymVar("m")
    assert not sym.prove_equal(n, m)
    assert sym.prove_equal(n * m, m * n)


def test_simplify_constant_fold():
    e = sym.simplify(IntImm(3) * 4 + 5)
    assert isinstance(e, IntImm)
    assert e.value == 17


def test_simplify_cancellation():
    n = SymVar("n")
    e = sym.simplify(n + 1 - n)
    assert isinstance(e, IntImm) and e.value == 1


def test_simplify_zero():
    n = SymVar("n")
    e = sym.simplify(n - n)
    assert isinstance(e, IntImm) and e.value == 0


def test_floordiv_exact():
    n = SymVar("n")
    assert sym.prove_equal((n * 4) // 4, n)
    assert sym.prove_equal((n * 4 + 8) // 4, n + 2)


def test_floordiv_split():
    n = SymVar("n")
    # (4n + n) // 4 = n + n//4
    assert sym.prove_equal((n * 5) // 4, n + n // 4)


def test_floormod():
    n = SymVar("n")
    assert sym.prove_equal((n * 4) % 4, 0)
    assert sym.prove_equal((n * 4 + 3) % 4, 3)
    assert sym.prove_equal((n * 4 + 5) % 4, (n * 4 + 1) % 4)


def test_floordiv_constants():
    assert sym.as_static_int(sym.simplify(IntImm(7) // 2)) == 3
    assert sym.as_static_int(sym.simplify(IntImm(-7) // 2)) == -4
    assert sym.as_static_int(sym.simplify(IntImm(7) % 2)) == 1


def test_minmax_fold():
    n = SymVar("n")
    assert sym.prove_equal(Min(IntImm(3), IntImm(5)), 3)
    assert sym.prove_equal(Max(IntImm(3), IntImm(5)), 5)
    assert sym.prove_equal(Min(n, n), n)
    assert sym.prove_equal(Max(n + n, 2 * n), 2 * n)


def test_minmax_opaque_but_canonical():
    n, m = SymVar("n"), SymVar("m")
    assert sym.prove_equal(Min(n, m) + 1, 1 + Min(n, m))
    assert not sym.prove_equal(Min(n, m), Max(n, m))


def test_prove_divisible():
    n = SymVar("n")
    assert sym.prove_divisible(n * 4, 4)
    assert sym.prove_divisible(n * 4, 2)
    assert not sym.prove_divisible(n * 4 + 1, 2)
    assert sym.prove_divisible(n * 6 + m9(), 3)


def m9():
    return IntImm(9)


def test_canonical_key_stable():
    n = SymVar("n")
    assert sym.canonical_key(n * 2 + 2) == sym.canonical_key(2 * (n + 1))
    assert sym.canonical_key(n) != sym.canonical_key(n + 1)


# --- property-based tests -------------------------------------------------

_VARS = [SymVar(name) for name in "nmk"]


def _exprs(depth):
    if depth == 0:
        return st.one_of(
            st.integers(min_value=-8, max_value=8).map(IntImm),
            st.sampled_from(_VARS),
        )
    sub = _exprs(depth - 1)
    return st.one_of(
        sub,
        st.tuples(sub, sub).map(lambda ab: ab[0] + ab[1]),
        st.tuples(sub, sub).map(lambda ab: ab[0] - ab[1]),
        st.tuples(sub, sub).map(lambda ab: ab[0] * ab[1]),
        st.tuples(sub, st.integers(min_value=1, max_value=7)).map(
            lambda ab: ab[0] // ab[1]
        ),
        st.tuples(sub, st.integers(min_value=1, max_value=7)).map(
            lambda ab: ab[0] % ab[1]
        ),
        st.tuples(sub, sub).map(lambda ab: Min(ab[0], ab[1])),
        st.tuples(sub, sub).map(lambda ab: Max(ab[0], ab[1])),
    )


_ENV = st.fixed_dictionaries(
    {var: st.integers(min_value=0, max_value=50) for var in _VARS}
)


@settings(max_examples=200, deadline=None)
@given(expr=_exprs(3), env=_ENV)
def test_simplify_preserves_value(expr, env):
    """simplify() must never change the value of an expression."""
    assert sym.evaluate(sym.simplify(expr), env) == sym.evaluate(expr, env)


@settings(max_examples=200, deadline=None)
@given(expr=_exprs(3), env=_ENV)
def test_simplify_idempotent(expr, env):
    once = sym.simplify(expr)
    twice = sym.simplify(once)
    assert sym.canonical_key(once) == sym.canonical_key(twice)
    assert sym.evaluate(twice, env) == sym.evaluate(expr, env)


@settings(max_examples=200, deadline=None)
@given(a=_exprs(2), b=_exprs(2), env=_ENV)
def test_prove_equal_sound(a, b, env):
    """If prove_equal says yes, the expressions agree on every assignment."""
    if sym.prove_equal(a, b):
        assert sym.evaluate(a, env) == sym.evaluate(b, env)


@settings(max_examples=100, deadline=None)
@given(expr=_exprs(2), env=_ENV)
def test_substitute_then_evaluate(expr, env):
    """Substituting constants then evaluating == evaluating directly."""
    mapping = {var: IntImm(val) for var, val in env.items()}
    substituted = sym.substitute(expr, mapping)
    assert sym.is_static(substituted)
    assert sym.as_static_int(sym.simplify(substituted)) == sym.evaluate(expr, env)


@settings(max_examples=100, deadline=None)
@given(expr=_exprs(2), env=_ENV)
def test_bounds_sound(expr, env):
    """Any concrete value lies inside the inferred interval."""
    bounds = {var: sym.Interval(0, 50) for var in _VARS}
    interval = sym.infer_bound(expr, bounds)
    value = sym.evaluate(expr, env)
    if interval.lo is not None:
        assert interval.lo <= value
    if interval.hi is not None:
        assert value <= interval.hi
