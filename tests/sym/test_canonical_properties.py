"""Canonicalization properties: key equality coincides with provable
equality, and the simplifier handles nested division/modulo soundly."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import sym
from repro.sym import IntImm, SymVar

_VARS = [SymVar(name) for name in "xyz"]


def _linear_exprs():
    """Random affine expressions over three variables."""

    @st.composite
    def build(draw):
        expr = sym.IntImm(draw(st.integers(-5, 5)))
        for var in _VARS:
            coeff = draw(st.integers(-4, 4))
            expr = expr + coeff * var
        return expr

    return build()


@settings(max_examples=150, deadline=None)
@given(a=_linear_exprs(), b=_linear_exprs())
def test_key_equality_iff_provable_equality(a, b):
    same_key = sym.canonical_key(a) == sym.canonical_key(b)
    assert same_key == sym.prove_equal(a, b)


@settings(max_examples=100, deadline=None)
@given(
    a=_linear_exprs(),
    c=st.integers(min_value=1, max_value=8),
    env=st.fixed_dictionaries(
        {var: st.integers(min_value=0, max_value=60) for var in _VARS}
    ),
)
def test_div_mod_reconstruction(a, c, env):
    """a == c * (a // c) + (a % c) must hold after simplification."""
    reconstructed = sym.simplify(c * (a // c) + (a % c))
    assert sym.evaluate(reconstructed, env) == sym.evaluate(a, env)


@settings(max_examples=100, deadline=None)
@given(
    a=_linear_exprs(),
    c=st.integers(min_value=1, max_value=6),
    d=st.integers(min_value=1, max_value=6),
    env=st.fixed_dictionaries(
        {var: st.integers(min_value=0, max_value=60) for var in _VARS}
    ),
)
def test_nested_floordiv_sound(a, c, d, env):
    expr = (a // c) // d
    assert sym.evaluate(sym.simplify(expr), env) == sym.evaluate(expr, env)
    expr = (a % c) % d
    assert sym.evaluate(sym.simplify(expr), env) == sym.evaluate(expr, env)


class TestCanonicalEdgeCases:
    def test_negative_coefficient_mod(self):
        x = _VARS[0]
        # (-x) % 4 == (3x) % 4 for all integer x?  No — only equal mod 4
        # coefficient-wise; the canonicalizer uses divmod so both reduce to
        # (3x) % 4, which is sound: -x ≡ 3x (mod 4).
        assert sym.prove_equal((-1 * x) % 4, (3 * x) % 4)

    def test_mod_of_multiple_plus_const(self):
        x = _VARS[0]
        assert sym.prove_equal((8 * x + 13) % 4, 1)

    def test_div_distributes_over_exact_terms(self):
        x, y = _VARS[0], _VARS[1]
        assert sym.prove_equal((4 * x + 8 * y + 3) // 4, x + 2 * y)

    def test_opaque_atoms_compare_structurally(self):
        x, y = _VARS[0], _VARS[1]
        a = (x + y) // 3
        b = (y + x) // 3
        assert sym.prove_equal(a, b)  # operands canonicalized first
        assert not sym.prove_equal((x + y) // 3, (x + y) // 2)

    def test_shape_product_canonical(self):
        n = SymVar("n")
        a = sym.shape_product([n, 2, 4])
        b = sym.shape_product([8, n])
        assert sym.prove_equal(a, b)

    def test_large_expression_terminates_quickly(self):
        import time

        n = SymVar("n")
        expr = IntImm(0)
        for i in range(200):
            expr = expr + (i % 7) * n + i
        start = time.time()
        sym.simplify(expr)
        assert time.time() - start < 1.0
