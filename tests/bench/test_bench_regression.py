"""The serving KPI regression gate (benchmarks/bench_regression.py).

Gate logic is pinned pure-python (direction awareness, zero baselines,
tolerance edges, the injected-regression self-test), and one live
scenario is re-measured and compared against the *committed*
``BENCH_serving.json`` — the same check CI runs, so a scheduler change
that shifts serving KPIs fails here first with a readable diff.
"""

import importlib.util
import json
import os
import sys

import pytest

_BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                          "benchmarks")


def _load():
    spec = importlib.util.spec_from_file_location(
        "bench_regression", os.path.join(_BENCH_DIR, "bench_regression.py"))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


br = _load()

BASE = {
    "plain": {
        "throughput_tokens_per_s": 100.0,
        "ttft_p50_s": 0.010,
        "peak_required_blocks": 40,
        "preemptions": 0,
    }
}


def _measured(**over):
    vals = dict(BASE["plain"])
    vals.update(over)
    return {"plain": vals}


# ---------------------------------------------------------------------------
# compare(): direction-aware gate logic
# ---------------------------------------------------------------------------


def test_identical_measurements_pass():
    reg, imp = br.compare(BASE, _measured(), tolerance=0.02)
    assert reg == [] and imp == []


def test_within_tolerance_passes_both_directions():
    reg, _ = br.compare(
        BASE, _measured(throughput_tokens_per_s=99.0, ttft_p50_s=0.0101),
        tolerance=0.02)
    assert reg == []


def test_throughput_drop_is_a_regression():
    reg, _ = br.compare(
        BASE, _measured(throughput_tokens_per_s=90.0), tolerance=0.02)
    assert [(r[0], r[1]) for r in reg] == [("plain",
                                           "throughput_tokens_per_s")]


def test_latency_rise_is_a_regression():
    reg, _ = br.compare(BASE, _measured(ttft_p50_s=0.012), tolerance=0.02)
    assert [(r[0], r[1]) for r in reg] == [("plain", "ttft_p50_s")]


def test_improvements_never_fail():
    reg, imp = br.compare(
        BASE,
        _measured(throughput_tokens_per_s=150.0, ttft_p50_s=0.005,
                  peak_required_blocks=30),
        tolerance=0.02)
    assert reg == []
    assert len(imp) == 3


def test_zero_baseline_bad_direction_trips():
    # preemptions baseline 0: any preemption is a regression (relative
    # tolerance is meaningless against a zero denominator).
    reg, _ = br.compare(BASE, _measured(preemptions=3), tolerance=0.5)
    assert [(r[0], r[1]) for r in reg] == [("plain", "preemptions")]


def test_missing_scenario_is_a_regression():
    reg, _ = br.compare(BASE, {}, tolerance=0.02)
    assert reg and reg[0][1] == "<missing>"


def test_inject_regression_perturbs_bad_direction_only():
    injected = br.inject_regression(_measured(), factor=2.0)["plain"]
    assert injected["throughput_tokens_per_s"] == 50.0   # higher-better / 2
    assert injected["ttft_p50_s"] == 0.020               # lower-better * 2
    reg, _ = br.compare(BASE, {"plain": injected}, tolerance=0.02)
    assert len(reg) >= 2


def test_every_kpi_has_a_direction():
    # A KPI added to kpis() without a direction entry would silently
    # escape the gate.
    assert set(br.KPI_DIRECTION) == {
        "throughput_tokens_per_s", "goodput_requests_per_s", "makespan_s",
        "ttft_p50_s", "ttft_p99_s", "tpot_p50_s", "peak_required_blocks",
        "preemptions", "prefix_cache_hit_rate", "load_balance_entropy",
    }


# ---------------------------------------------------------------------------
# Committed baseline: format + one live scenario
# ---------------------------------------------------------------------------


def _baseline():
    with open(br.BASELINE_PATH) as f:
        return json.load(f)


def test_committed_baseline_shape():
    doc = _baseline()
    assert doc["version"] == 1
    assert set(doc["scenarios"]) == set(br.SCENARIOS)
    cluster_only = {"prefix_cache_hit_rate", "load_balance_entropy"}
    for name, vals in doc["scenarios"].items():
        expected = set(br.KPI_DIRECTION)
        if name != "dp":
            expected -= cluster_only
        assert set(vals) == expected, name
    # The pressure scenario is only load-bearing if it actually preempts.
    assert doc["scenarios"]["pressure"]["preemptions"] > 0


def test_live_plain_scenario_matches_committed_baseline():
    baseline = {"plain": _baseline()["scenarios"]["plain"]}
    measured = {"plain": br.kpis(br.SCENARIOS["plain"]())}
    reg, imp = br.compare(baseline, measured, tolerance=0.02)
    assert reg == [], f"plain serving KPIs regressed: {reg}"
    # The simulation is deterministic: same platform, same numbers.
    assert imp == [], (
        f"plain serving KPIs drifted (improved): {imp}; "
        f"refresh benchmarks/BENCH_serving.json with --update"
    )


def test_gate_main_trips_on_injected_regression():
    rc = br.main(["--scenario", "plain", "--inject-regression", "1.5"])
    assert rc == 1


def test_gate_main_passes_clean():
    rc = br.main(["--scenario", "plain"])
    assert rc == 0
