"""Bench harness utilities and the Relax runners on tiny configs."""

import numpy as np
import pytest

from repro.bench import (
    RelaxLLM,
    RelaxLlava,
    RelaxWhisper,
    best_competitor,
    fmt_value,
    geomean_ratio,
    print_table,
    speedup,
)
from repro.models import TINY_LLAMA, TINY_LLAVA, TINY_WHISPER
from repro.runtime import TEST_DEVICE


class TestFormatting:
    def test_fmt_value(self):
        assert fmt_value(None) == "—"
        assert fmt_value(123.4) == "123"
        assert fmt_value(3.14159) == "3.14"
        assert fmt_value(0.01234, "ms") == "0.012ms"
        assert fmt_value(7) == "7"

    def test_print_table_smoke(self, capsys):
        print_table("T", "x", [1, 2], {"A": [1.0, 2.0], "B": [None, 4.0]},
                    "ms", notes=["hello"])
        out = capsys.readouterr().out
        assert "=== T ===" in out
        assert "A" in out and "B" in out and "—" in out
        assert "note: hello" in out

    def test_speedup_and_best(self):
        assert speedup(2.0, 1.0) == 2.0
        rows = {"A": [2.0], "B": [3.0], "Relax": [1.0]}
        assert best_competitor(rows, 0, exclude="Relax") == 2.0

    def test_geomean(self):
        assert geomean_ratio([2.0, 8.0], [1.0, 2.0]) == pytest.approx(
            np.sqrt(2 * 4)
        )
        assert np.isnan(geomean_ratio([], []))


class TestRelaxRunners:
    def test_llm_runner_tiny(self):
        runner = RelaxLLM(TINY_LLAMA, TEST_DEVICE,
                          sym_var_upper_bounds={"b": 4, "s": 32, "m": 32})
        t1 = runner.decode_step_time(1, 8)
        t2 = runner.decode_step_time(2, 8)
        assert 0 < t1 <= t2
        assert runner.decode_throughput(1, 8) == pytest.approx(1 / t1, rel=0.2)
        assert runner.prefill_time(1, 8) > 0

    def test_whisper_runner_tiny(self):
        runner = RelaxWhisper(TINY_WHISPER, TEST_DEVICE)
        enc = runner.encode_time(1, 8)
        step = runner.decode_step_time(1, 2, 4)
        total = runner.transcribe_time(8, 4)
        assert enc > 0 and step > 0
        assert total > enc

    def test_llava_runner_tiny(self):
        runner = RelaxLlava(TINY_LLAVA, TEST_DEVICE)
        total = runner.generation_time(n_tokens=4)
        assert total > 0

    def test_decode_time_grows_with_context(self):
        runner = RelaxLLM(TINY_LLAMA, TEST_DEVICE,
                          sym_var_upper_bounds={"b": 2, "s": 48, "m": 48})
        short = runner.decode_step_time(1, 4)
        long = runner.decode_step_time(1, 40)
        assert long > short

    def test_op_profile_leaves_cached_vm_untouched(self):
        runner = RelaxLLM(TINY_LLAMA, TEST_DEVICE,
                          sym_var_upper_bounds={"b": 4, "s": 32, "m": 32})
        before = runner.decode_step_time(1, 8)
        pvm = runner.op_profile(1, 8)
        # The traced step reproduces the measured step exactly...
        assert pvm.stats.time_s == before
        # ...accounts for every simulated second, with full provenance...
        assert abs(pvm.tracer.total_time_s() - pvm.stats.time_s) < 1e-9
        kernel_rows = [r for r in pvm.op_table().rows
                       if r["kind"] in ("kernel", "library")]
        assert kernel_rows and all(r["provenance"] for r in kernel_rows)
        # ...and the runner's own VM keeps measuring bit-identically.
        assert runner.decode_step_time(1, 8) == before

    def test_op_profile_prefill_and_payload(self):
        from repro.bench import results_payload

        runner = RelaxLLM(TINY_LLAMA, TEST_DEVICE,
                          sym_var_upper_bounds={"b": 4, "s": 32, "m": 32})
        pvm = runner.op_profile(1, 0, fn="prefill", seq=8)
        payload = results_payload(
            "t", [1], {"Relax": [1.0]},
            op_profiles={"Relax": pvm.op_table()},
        )
        import json

        d = json.loads(json.dumps(payload))
        assert d["op_profiles"]["Relax"]["rows"]
