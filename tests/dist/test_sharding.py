"""PropagateSharding / LowerSharding: rules, plan validation, and the
acceptance bar — tp=N logits bitwise-equal to tp=1 on both lowering
paths for every exported llama entry."""

import functools

import numpy as np
import pytest

from repro import ops, sym, transform
from repro.core import BlockBuilder, TensorAnn
from repro.core.expr import Call, Op
from repro.dist import (
    MeshExecutor,
    NVLINK,
    Replicated,
    ShardingPlan,
    Split,
    make_llama_tp_plan,
    shard_slice,
)
from repro.frontend.nn import ExportedModule, ShardedExportedModule
from repro.models import TINY_QWEN, build_llama, empty_caches
from repro.models.llama import TINY_LLAMA_TP
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.transform import LowerSharding, PropagateSharding, ShardingError

RNG = np.random.default_rng(61)
PAGE = 4
KV_SPLIT = Split(2)


def _plan(world, **params):
    return ShardingPlan(world, tuple(params.items()))


def _mlp_mod():
    """x @ w1 (column) @ w2 (row): the Megatron two-matmul cell."""
    bb = BlockBuilder()
    anns = {
        "x": TensorAnn((4, 8), "f32"),
        "w1": TensorAnn((8, 16), "f32"),
        "w2": TensorAnn((16, 8), "f32"),
    }
    with bb.function("mlp", anns) as frame:
        x, w1, w2 = frame.params
        with bb.dataflow():
            h = bb.emit(ops.matmul(x, w1))
            h = bb.emit(ops.silu(h))
            out = bb.emit(ops.matmul(h, w2))
            gv = bb.emit_output(out)
        bb.emit_func_output(gv)
    return bb.get()


class TestPropagation:
    def test_column_then_row_parallel(self):
        mod = _mlp_mod()
        plan = _plan(2, x=Replicated(), w1=Split(1), w2=Split(0))
        out = PropagateSharding(plan)(mod)
        fn = dict(out.relax_functions())["mlp"]
        binds = fn.body.blocks[0].bindings
        # x@w1 column-parallel: output split on the feature dim.
        assert binds[0].var.ann.shard == Split(1)
        # silu preserves the split.
        assert binds[1].var.ann.shard == Split(1)
        # h@w2 row-parallel: partial sum awaiting an all-reduce.
        assert binds[2].var.ann.shard.partial

    def test_world_one_is_identity(self):
        mod = _mlp_mod()
        plan = _plan(1, x=Replicated(), w1=Split(1), w2=Split(0))
        assert PropagateSharding(plan)(mod) is mod
        assert LowerSharding(plan)(mod) is mod

    def test_norm_of_split_tensor_rejected(self):
        bb = BlockBuilder()
        anns = {"x": TensorAnn((4, 8), "f32"), "g": TensorAnn((8,), "f32")}
        with bb.function("f", anns) as frame:
            x, g = frame.params
            with bb.dataflow():
                gv = bb.emit_output(bb.emit(ops.rms_norm(x, g)))
            bb.emit_func_output(gv)
        plan = _plan(2, x=Split(1), g=Replicated())
        with pytest.raises(ShardingError):
            PropagateSharding(plan)(bb.get())

    def test_indivisible_param_dim_rejected(self):
        mod = _mlp_mod()
        plan = _plan(3, x=Replicated(), w1=Split(1), w2=Split(0))
        with pytest.raises(ShardingError, match="divis"):
            PropagateSharding(plan)(mod)


class TestLowering:
    def test_row_parallel_lowering_inserts_one_all_reduce(self):
        mod = _mlp_mod()
        plan = _plan(2, x=Replicated(), w1=Split(1), w2=Split(0))
        out = LowerSharding(plan)(PropagateSharding(plan)(mod))
        fn = dict(out.relax_functions())["mlp"]
        names = [
            b.value.op.name
            for b in fn.body.blocks[0].bindings
            if isinstance(b.value, Call) and isinstance(b.value.op, Op)
        ]
        assert names.count("ccl.all_reduce") == 1
        # Partial matmul accumulates in f64, rounded once after the reduce.
        assert names == ["matmul", "silu", "matmul", "ccl.all_reduce", "astype"]
        # Split param anns narrowed to the per-shard slice.
        w1 = fn.params[1]
        assert sym.as_static_int(w1.ann.shape[1]) == 8

    def test_lowered_mlp_matches_dense(self):
        mod = _mlp_mod()
        world = 2
        plan = _plan(world, x=Replicated(), w1=Split(1), w2=Split(0))
        x = RNG.standard_normal((4, 8)).astype(np.float32)
        w1 = RNG.standard_normal((8, 16)).astype(np.float32)
        w2 = RNG.standard_normal((16, 8)).astype(np.float32)

        exe = transform.build(mod, TEST_DEVICE)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        ref = vm.run("mlp", *[NDArray.from_numpy(a) for a in (x, w1, w2)])

        sharded = LowerSharding(plan)(PropagateSharding(plan)(mod))
        sexe = transform.build(sharded, TEST_DEVICE)
        mesh = MeshExecutor(sexe, TEST_DEVICE, world, concrete=True)
        outs = mesh.run("mlp", [
            [NDArray.from_numpy(x),
             NDArray.from_numpy(shard_slice(w1, Split(1), world, r)),
             NDArray.from_numpy(shard_slice(w2, Split(0), world, r))]
            for r in range(world)
        ])
        for r in range(world):
            assert np.array_equal(ref.numpy(), outs[r].numpy())


class TestPlan:
    def test_tp_plan_shards_attention_and_mlp(self):
        plan = make_llama_tp_plan(TINY_LLAMA_TP, 2)
        assert plan.spec_for("p_layers_0_attn_q_proj_weight") == Split(1)
        assert plan.spec_for("p_layers_0_attn_o_proj_weight") == Split(0)
        assert plan.spec_for("p_layers_0_mlp_down_proj_weight") == Split(0)
        assert plan.spec_for("p_embed_weight").is_replicated
        assert plan.spec_for("k_pages_0") == Split(2)

    def test_plan_rejects_indivisible_heads(self):
        with pytest.raises(ValueError, match="divide"):
            make_llama_tp_plan(TINY_LLAMA_TP, 3)
        with pytest.raises(ValueError, match="num_kv_heads"):
            make_llama_tp_plan(TINY_LLAMA_TP, 8)

    def test_qkv_bias_sharded_with_qwen(self):
        plan = make_llama_tp_plan(TINY_QWEN, 2)
        assert plan.spec_for("p_layers_0_attn_q_proj_bias") == Split(0)
        assert plan.spec_for("p_layers_0_attn_o_proj_weight") == Split(0)


class TestShardedExport:
    def test_tp1_returns_plain_export(self):
        exp = build_llama(TINY_LLAMA_TP, page_size=PAGE, tp=1)
        assert type(exp) is ExportedModule

    def test_sharded_export_params_and_bytes(self):
        exp = build_llama(TINY_LLAMA_TP, page_size=PAGE, tp=2)
        assert isinstance(exp, ShardedExportedModule)
        exp.module.initialize(seed=0)
        full = build_llama(TINY_LLAMA_TP, page_size=PAGE)
        # Split params hold half; replicated (embed, norms) the whole.
        assert exp.param_bytes() < full.param_bytes()
        p0 = exp.concrete_params(0)
        p1 = exp.concrete_params(1)
        order = [name for name, _ in exp.param_order]
        qi = order.index("layers.0.attn.q_proj.weight")
        cfg = TINY_LLAMA_TP
        assert p0[qi].shape == (cfg.hidden_size, cfg.hidden_size // 2)
        assert not np.array_equal(p0[qi].numpy(), p1[qi].numpy())
        ei = order.index("embed.weight")
        assert np.array_equal(p0[ei].numpy(), p1[ei].numpy())


# ---------------------------------------------------------------------------
# End-to-end: every exported entry, both lowering paths, tp in {2, 4}.
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def _dense(cfg_name, dispatch):
    cfg = TINY_LLAMA_TP if cfg_name == "tp" else TINY_QWEN
    exp = build_llama(cfg, page_size=PAGE)
    exp.module.initialize(seed=5, scale=0.1)
    exe = transform.build(exp.mod, TEST_DEVICE, enable_library_dispatch=dispatch)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    return cfg, vm, exp.concrete_params()


@functools.lru_cache(maxsize=None)
def _mesh(cfg_name, world, dispatch):
    cfg = TINY_LLAMA_TP if cfg_name == "tp" else TINY_QWEN
    exp = build_llama(cfg, page_size=PAGE, tp=world)
    exp.module.initialize(seed=5, scale=0.1)
    exe = transform.build(exp.mod, TEST_DEVICE, enable_library_dispatch=dispatch)
    mesh = MeshExecutor(exe, TEST_DEVICE, world, interconnect=NVLINK,
                        concrete=True)
    return cfg, mesh, [exp.concrete_params(r) for r in range(world)]


def _pools(cfg, num_pages=8):
    kv, d = cfg.num_kv_heads, cfg.head_dim
    return [
        RNG.standard_normal((num_pages, PAGE, kv, d)).astype(np.float32)
        for _ in range(2 * cfg.num_layers)
    ]


def _shard_pools(pools, world, rank):
    return [
        NDArray.from_numpy(shard_slice(p, KV_SPLIT, world, rank))
        for p in pools
    ]


def _assert_tuple_equal(ref, outs, world):
    """Logits (entry 0) replicated; K/V slices (rest) split on heads."""
    assert np.array_equal(ref[0].numpy(), outs[0][0].numpy())
    for j in range(1, len(ref)):
        merged = np.concatenate(
            [outs[r][j].numpy() for r in range(world)], axis=2
        )
        assert np.array_equal(ref[j].numpy(), merged)


CASES = [(w, d) for w in (2, 4) for d in (False, True)]
IDS = [f"tp{w}-{'library' if d else 'codegen'}" for w, d in CASES]


@pytest.mark.parametrize("world,dispatch", CASES, ids=IDS)
def test_prefill_and_decode_dense(world, dispatch):
    cfg, vm, params = _dense("tp", dispatch)
    _, mesh, shard_params = _mesh("tp", world, dispatch)
    prompt = RNG.integers(0, cfg.vocab_size, size=(1, 6), dtype=np.int64)
    tok = RNG.integers(0, cfg.vocab_size, size=(1, 1), dtype=np.int64)

    ref = vm.run("prefill", NDArray.from_numpy(prompt),
                 *empty_caches(cfg, 1, True), *params)
    outs = mesh.run("prefill", [
        [NDArray.from_numpy(prompt)]
        + [NDArray.from_numpy(shard_slice(c.numpy(), KV_SPLIT, world, r))
           for c in empty_caches(cfg, 1, True)]
        + shard_params[r]
        for r in range(world)
    ])
    _assert_tuple_equal(ref, outs, world)

    # Decode from the prefill caches each rank produced (cache flow).
    ref_d = vm.run("decode", NDArray.from_numpy(tok), *ref[1:], *params)
    outs_d = mesh.run("decode", [
        [NDArray.from_numpy(tok)] + list(outs[r][1:]) + shard_params[r]
        for r in range(world)
    ])
    _assert_tuple_equal(ref_d, outs_d, world)


@pytest.mark.parametrize("world,dispatch", CASES, ids=IDS)
def test_decode_paged(world, dispatch):
    cfg, vm, params = _dense("tp", dispatch)
    _, mesh, shard_params = _mesh("tp", world, dispatch)
    lens = [3, 6]
    b = len(lens)
    toks = RNG.integers(0, cfg.vocab_size, size=(b, 1), dtype=np.int64)
    table = np.array([[1, 0], [2, 3]], np.int64)
    pools = _pools(cfg)
    head = [NDArray.from_numpy(toks), NDArray.from_numpy(table),
            NDArray.from_numpy(np.asarray(lens, np.int64))]

    ref = vm.run("decode_paged", *head,
                 *[NDArray.from_numpy(p) for p in pools], *params)
    outs = mesh.run("decode_paged", [
        head + _shard_pools(pools, world, r) + shard_params[r]
        for r in range(world)
    ])
    _assert_tuple_equal(ref, outs, world)


@pytest.mark.parametrize("world,dispatch", CASES, ids=IDS)
def test_prefill_paged(world, dispatch):
    cfg, vm, params = _dense("tp", dispatch)
    _, mesh, shard_params = _mesh("tp", world, dispatch)
    past = 2
    toks = RNG.integers(0, cfg.vocab_size, size=(1, 3), dtype=np.int64)
    table = np.array([[1, 2]], np.int64)
    pools = _pools(cfg)
    head = [NDArray.from_numpy(toks), NDArray.from_numpy(table),
            NDArray.from_numpy(np.zeros(past, np.int64))]

    ref = vm.run("prefill_paged", *head,
                 *[NDArray.from_numpy(p) for p in pools], *params)
    outs = mesh.run("prefill_paged", [
        head + _shard_pools(pools, world, r) + shard_params[r]
        for r in range(world)
    ])
    _assert_tuple_equal(ref, outs, world)


@pytest.mark.parametrize("world,dispatch", CASES, ids=IDS)
def test_verify_paged(world, dispatch):
    cfg, vm, params = _dense("tp", dispatch)
    _, mesh, shard_params = _mesh("tp", world, dispatch)
    lens = [4, 5]
    spec = [2, 3]
    b, s = len(lens), max(spec) + 1
    toks = RNG.integers(0, cfg.vocab_size, size=(b, s), dtype=np.int64)
    table = np.array([[1, 2], [3, 4]], np.int64)
    pools = _pools(cfg)
    head = [NDArray.from_numpy(toks), NDArray.from_numpy(table),
            NDArray.from_numpy(np.asarray(lens, np.int64)),
            NDArray.from_numpy(np.asarray(spec, np.int64))]

    ref = vm.run("verify_paged", *head,
                 *[NDArray.from_numpy(p) for p in pools], *params)
    outs = mesh.run("verify_paged", [
        head + _shard_pools(pools, world, r) + shard_params[r]
        for r in range(world)
    ])
    _assert_tuple_equal(ref, outs, world)


@pytest.mark.parametrize("dispatch", [False, True], ids=["codegen", "library"])
def test_qwen_attention_bias_sharded(dispatch):
    """GQA + qkv bias (Split(0) bias slices) through the full stack."""
    world = 2
    cfg, vm, params = _dense("qwen", dispatch)
    _, mesh, shard_params = _mesh("qwen", world, dispatch)
    prompt = RNG.integers(0, cfg.vocab_size, size=(1, 5), dtype=np.int64)

    ref = vm.run("prefill", NDArray.from_numpy(prompt),
                 *empty_caches(cfg, 1, True), *params)
    outs = mesh.run("prefill", [
        [NDArray.from_numpy(prompt)]
        + [NDArray.from_numpy(shard_slice(c.numpy(), KV_SPLIT, world, r))
           for c in empty_caches(cfg, 1, True)]
        + shard_params[r]
        for r in range(world)
    ])
    _assert_tuple_equal(ref, outs, world)


def test_mesh_run_is_deterministic():
    cfg, mesh, shard_params = _mesh("tp", 2, True)[0], None, None
    cfg, mesh, shard_params = _mesh("tp", 2, True)
    prompt = np.arange(6, dtype=np.int64).reshape(1, 6) % cfg.vocab_size

    def run():
        outs = mesh.run("prefill", [
            [NDArray.from_numpy(prompt)]
            + [NDArray.from_numpy(shard_slice(c.numpy(), KV_SPLIT, 2, r))
               for c in empty_caches(cfg, 1, True)]
            + shard_params[r]
            for r in range(2)
        ])
        return outs[0][0].numpy()

    a, b, c = run(), run(), run()
    assert np.array_equal(a, b) and np.array_equal(b, c)


def test_tp_build_charges_comm_time():
    cfg, mesh, shard_params = _mesh("tp", 2, False)
    prompt = np.zeros((1, 4), np.int64)
    base = mesh.stats.comm_time_s
    mesh.run("prefill", [
        [NDArray.from_numpy(prompt)]
        + [NDArray.from_numpy(shard_slice(c.numpy(), KV_SPLIT, 2, r))
           for c in empty_caches(cfg, 1, True)]
        + shard_params[r]
        for r in range(2)
    ])
    assert mesh.stats.comm_time_s > base
    assert "comm_time_s" in mesh.stats.summary()
