"""ccl.* ops: symbolic deduction + the extern lowering path end-to-end.

The end-to-end tests run on a single VM with no mesh attached, which
exercises the degenerate replica semantics (every peer holds this VM's
value) — the contract the differential fuzzer relies on.
"""

import numpy as np
import pytest

from repro import ops, sym, transform
from repro.core import BlockBuilder, TensorAnn
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.runtime.vm import ccl_combine


def var_of(arr, shape=None):
    bb = BlockBuilder()
    ann = TensorAnn(shape if shape is not None else arr.shape,
                    "f32" if arr.dtype == np.float32 else "i64")
    from repro.core.expr import Var
    return Var("x", ann)


def _deduced(call):
    return call.op.deduce(call)


def _static(shape):
    return tuple(sym.as_static_int(d) for d in shape)


class TestDeduce:
    def test_all_reduce_preserves_shape(self):
        x = var_of(np.zeros((2, 8), np.float32))
        ann = _deduced(ops.ccl.all_reduce(x, world=4))
        assert _static(ann.shape) == (2, 8) and ann.dtype == "f32"

    def test_all_gather_multiplies_static_dim(self):
        x = var_of(np.zeros((2, 8), np.float32))
        ann = _deduced(ops.ccl.all_gather(x, world=4, axis=1))
        assert _static(ann.shape) == (2, 32)

    def test_all_gather_symbolic_dim(self):
        n = sym.SymVar("n")
        x = var_of(np.zeros((3, 8), np.float32), shape=(n, 8))
        ann = _deduced(ops.ccl.all_gather(x, world=4, axis=0))
        want = sym.Mul(n, sym.IntImm(4))
        assert sym.prove_equal(ann.shape[0], want)

    def test_reduce_scatter_divides_static_dim(self):
        x = var_of(np.zeros((2, 8), np.float32))
        ann = _deduced(ops.ccl.reduce_scatter(x, world=4, axis=1))
        assert _static(ann.shape) == (2, 2)

    def test_reduce_scatter_rejects_indivisible(self):
        x = var_of(np.zeros((2, 6), np.float32))
        with pytest.raises(ValueError, match="divisible"):
            _deduced(ops.ccl.reduce_scatter(x, world=4, axis=1))

    def test_broadcast_validates_root(self):
        x = var_of(np.zeros((4,), np.float32))
        with pytest.raises(ValueError, match="root"):
            _deduced(ops.ccl.broadcast(x, world=2, root=5))

    def test_axis_out_of_range(self):
        x = var_of(np.zeros((2, 8), np.float32))
        with pytest.raises(ValueError, match="axis"):
            _deduced(ops.ccl.all_gather(x, world=2, axis=3))

    def test_extern_not_legalized(self):
        assert ops.ccl.all_reduce_op.legalize is None
        assert ops.ccl.all_reduce_op.extern_name == "vm.builtin.ccl.all_reduce"


def _build(make_call, in_shape):
    bb = BlockBuilder()
    with bb.function("f", {"x": TensorAnn(in_shape, "f32")}) as frame:
        (x,) = frame.params
        with bb.dataflow():
            gv = bb.emit_output(bb.emit(make_call(x)))
        bb.emit_func_output(gv)
    return transform.build(bb.get(), TEST_DEVICE)


class TestDegenerateExecution:
    """Single VM, no mesh: collectives act on `world` replicas of x."""

    def test_all_reduce_sums_replicas_in_rank_order(self):
        exe = _build(lambda x: ops.ccl.all_reduce(x, world=4), (2, 8))
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.random.default_rng(0).standard_normal((2, 8)).astype(np.float32)
        out = vm.run("f", NDArray.from_numpy(x)).numpy()
        want = ccl_combine("all_reduce", [x] * 4, 0, 0)
        np.testing.assert_array_equal(out, want)
        assert out.dtype == np.float32

    def test_all_gather_tiles(self):
        exe = _build(lambda x: ops.ccl.all_gather(x, world=3, axis=1), (2, 4))
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.arange(8, dtype=np.float32).reshape(2, 4)
        out = vm.run("f", NDArray.from_numpy(x)).numpy()
        np.testing.assert_array_equal(out, np.tile(x, (1, 3)))

    def test_reduce_scatter_chunks(self):
        exe = _build(lambda x: ops.ccl.reduce_scatter(x, world=2, axis=0),
                     (4, 3))
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.arange(12, dtype=np.float32).reshape(4, 3)
        out = vm.run("f", NDArray.from_numpy(x)).numpy()
        np.testing.assert_array_equal(out, x[:2] + x[:2])

    def test_broadcast_identity(self):
        exe = _build(lambda x: ops.ccl.broadcast(x, world=2, root=1), (5,))
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.arange(5, dtype=np.float32)
        out = vm.run("f", NDArray.from_numpy(x)).numpy()
        np.testing.assert_array_equal(out, x)

    def test_abstract_shapes(self):
        exe = _build(lambda x: ops.ccl.all_gather(x, world=4, axis=1), (2, 4))
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        out = vm.run("f", NDArray.abstract((2, 4), "f32"))
        assert out.shape == (2, 16)

    def test_abstract_reduce_scatter_shape(self):
        exe = _build(lambda x: ops.ccl.reduce_scatter(x, world=4, axis=1),
                     (2, 8))
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        out = vm.run("f", NDArray.abstract((2, 8), "f32"))
        assert out.shape == (2, 2)

    def test_no_interconnect_no_comm_time(self):
        exe = _build(lambda x: ops.ccl.all_reduce(x, world=4), (2, 8))
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        vm.run("f", NDArray.from_numpy(np.ones((2, 8), np.float32)))
        assert vm.stats.comm_time_s == 0.0
        assert "comm_time_s" not in vm.stats.summary()

    def test_interconnect_charges_comm_time(self):
        from repro.dist import NVLINK
        exe = _build(lambda x: ops.ccl.all_reduce(x, world=4), (2, 8))
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        vm.interconnect = NVLINK
        t0 = vm.stats.time_s
        vm.run("f", NDArray.from_numpy(np.ones((2, 8), np.float32)))
        want = NVLINK.all_reduce_s(4, 2 * 8 * 4)
        assert vm.stats.comm_time_s == pytest.approx(want)
        assert vm.stats.time_s - t0 > want  # comm is part of wall time
        assert vm.stats.summary()["comm_time_s"] == pytest.approx(want)


class TestCombine:
    def test_rank_order_accumulation(self):
        # Strict rank order: ((c0 + c1) + c2), never a tree.
        rng = np.random.default_rng(7)
        chunks = [rng.standard_normal(64).astype(np.float32).astype(np.float64)
                  for _ in range(3)]
        want = (chunks[0] + chunks[1]) + chunks[2]
        np.testing.assert_array_equal(
            ccl_combine("all_reduce", chunks, 0, 0), want)

    def test_reduce_scatter_keeps_rank_chunk(self):
        chunks = [np.arange(8, dtype=np.float64) for _ in range(2)]
        total = chunks[0] + chunks[1]
        np.testing.assert_array_equal(
            ccl_combine("reduce_scatter", chunks, 1, 0), total[4:])

    def test_broadcast_takes_root(self):
        chunks = [np.full(3, r, np.float32) for r in range(4)]
        np.testing.assert_array_equal(
            ccl_combine("broadcast", chunks, 0, 2), chunks[2])
