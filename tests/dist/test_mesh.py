"""MeshExecutor: lockstep clock, merged stats, threaded collectives."""

import numpy as np
import pytest

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn
from repro.dist import MeshExecutor, NVLINK
from repro.runtime import NDArray, TEST_DEVICE
from repro.runtime.vm import VMError


def _collective_exe(make_call, in_shape):
    bb = BlockBuilder()
    with bb.function("f", {"x": TensorAnn(in_shape, "f32")}) as frame:
        (x,) = frame.params
        with bb.dataflow():
            gv = bb.emit_output(bb.emit(make_call(x)))
        bb.emit_func_output(gv)
    return transform.build(bb.get(), TEST_DEVICE)


def _rank_arrays(world, shape, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape).astype(np.float32)
            for _ in range(world)]


class TestConcreteCollectives:
    @pytest.mark.parametrize("world", [2, 4])
    def test_all_reduce_across_real_shards(self, world):
        exe = _collective_exe(
            lambda x: ops.ccl.all_reduce(x, world=world), (2, 8))
        mesh = MeshExecutor(exe, TEST_DEVICE, world, concrete=True)
        xs = _rank_arrays(world, (2, 8))
        outs = mesh.run("f", [[NDArray.from_numpy(x)] for x in xs])
        acc = xs[0].astype(np.float64)
        for x in xs[1:]:
            acc = acc + x.astype(np.float64)
        want = acc.astype(np.float32)
        for out in outs:  # result replicated, bitwise identical
            np.testing.assert_array_equal(out.numpy(), want)

    def test_all_gather_rank_order(self):
        world = 3
        exe = _collective_exe(
            lambda x: ops.ccl.all_gather(x, world=world, axis=0), (2, 4))
        mesh = MeshExecutor(exe, TEST_DEVICE, world, concrete=True)
        xs = [np.full((2, 4), r, np.float32) for r in range(world)]
        outs = mesh.run("f", [[NDArray.from_numpy(x)] for x in xs])
        want = np.concatenate(xs, axis=0)
        for out in outs:
            np.testing.assert_array_equal(out.numpy(), want)

    def test_reduce_scatter_each_rank_gets_its_chunk(self):
        world = 2
        exe = _collective_exe(
            lambda x: ops.ccl.reduce_scatter(x, world=world, axis=0), (4, 3))
        mesh = MeshExecutor(exe, TEST_DEVICE, world, concrete=True)
        xs = _rank_arrays(world, (4, 3), seed=3)
        outs = mesh.run("f", [[NDArray.from_numpy(x)] for x in xs])
        total = (xs[0].astype(np.float64) + xs[1].astype(np.float64))
        total = total.astype(np.float32)
        np.testing.assert_array_equal(outs[0].numpy(), total[:2])
        np.testing.assert_array_equal(outs[1].numpy(), total[2:])

    def test_broadcast_sends_root_value(self):
        world = 3
        exe = _collective_exe(
            lambda x: ops.ccl.broadcast(x, world=world, root=1), (4,))
        mesh = MeshExecutor(exe, TEST_DEVICE, world, concrete=True)
        xs = [np.full(4, 10.0 * r, np.float32) for r in range(world)]
        outs = mesh.run("f", [[NDArray.from_numpy(x)] for x in xs])
        for out in outs:
            np.testing.assert_array_equal(out.numpy(), xs[1])

    def test_deterministic_across_runs(self):
        world = 4
        exe = _collective_exe(
            lambda x: ops.ccl.all_reduce(x, world=world), (8, 8))
        xs = _rank_arrays(world, (8, 8), seed=11)
        runs = []
        for _ in range(3):
            mesh = MeshExecutor(exe, TEST_DEVICE, world, concrete=True)
            outs = mesh.run("f", [[NDArray.from_numpy(x)] for x in xs])
            runs.append([o.numpy().copy() for o in outs])
        for later in runs[1:]:
            for a, b in zip(runs[0], later):
                np.testing.assert_array_equal(a, b)

    def test_world_mismatch_fails_all_shards(self):
        # Program says world=4, mesh has 2 shards: every rank errors.
        exe = _collective_exe(lambda x: ops.ccl.all_reduce(x, world=4), (2,))
        mesh = MeshExecutor(exe, TEST_DEVICE, 2, concrete=True)
        xs = _rank_arrays(2, (2,))
        with pytest.raises(VMError, match="world"):
            mesh.run("f", [[NDArray.from_numpy(x)] for x in xs])

    def test_wrong_shard_arg_count(self):
        exe = _collective_exe(lambda x: ops.ccl.all_reduce(x, world=2), (2,))
        mesh = MeshExecutor(exe, TEST_DEVICE, 2, concrete=True)
        with pytest.raises(ValueError, match="per-shard"):
            mesh.run("f", [[NDArray.from_numpy(np.zeros(2, np.float32))]])


class TestClockAndStats:
    def _mesh(self, world, interconnect=NVLINK, concrete=False):
        exe = _collective_exe(
            lambda x: ops.ccl.all_reduce(x, world=world), (64, 64))
        return MeshExecutor(exe, TEST_DEVICE, world,
                            interconnect=interconnect, concrete=concrete)

    def test_lockstep_clock(self):
        mesh = self._mesh(2)
        mesh.run("f", [[NDArray.abstract((64, 64), "f32")]] * 2)
        times = [vm.stats.time_s for vm in mesh.vms]
        assert times[0] == times[1] > 0.0

    def test_merged_stats_conventions(self):
        world = 2
        mesh = self._mesh(world)
        mesh.run("f", [[NDArray.abstract((64, 64), "f32")]] * world)
        merged = mesh.stats
        shards = mesh.shard_stats
        assert merged.time_s == max(s.time_s for s in shards)
        assert merged.builtin_calls == sum(s.builtin_calls for s in shards)
        assert merged.allocated_bytes_total == sum(
            s.allocated_bytes_total for s in shards)
        assert merged.peak_bytes == max(s.peak_bytes for s in shards)
        assert merged.comm_time_s > 0.0

    def test_comm_time_charged_per_shard(self):
        world = 4
        mesh = self._mesh(world)
        mesh.run("f", [[NDArray.abstract((64, 64), "f32")]] * world)
        want = NVLINK.all_reduce_s(world, 64 * 64 * 4)
        for s in mesh.shard_stats:
            assert s.comm_time_s == pytest.approx(want)

    def test_world_one_has_no_comm(self):
        mesh = self._mesh(1)
        mesh.run("f", [[NDArray.abstract((64, 64), "f32")]])
        assert mesh.stats.comm_time_s == 0.0

    def test_stats_windows_compose(self):
        mesh = self._mesh(2)
        args = [[NDArray.abstract((64, 64), "f32")]] * 2
        before = mesh.stats.copy()
        mesh.run("f", args)
        delta = mesh.stats.delta(before)
        assert delta.time_s > 0.0
        assert delta.builtin_calls == 2  # one collective per shard


class TestTracer:
    def test_tracer_fans_out_and_merges(self):
        from repro.obs.trace import TraceRecorder
        world = 2
        exe = _collective_exe(
            lambda x: ops.ccl.all_reduce(x, world=world), (8, 8))
        mesh = MeshExecutor(exe, TEST_DEVICE, world, interconnect=NVLINK)
        mesh.tracer = TraceRecorder()
        mesh.run("f", [[NDArray.abstract((8, 8), "f32")]] * world)
        assert mesh.tracer is not None
        assert len(mesh.tracer.events) > 0  # shard-0 stream
        merged = mesh.merged_events()
        ranks = {r for r, _ in merged}
        assert ranks == {0, 1}
        ts = [e.ts_s for _, e in merged]
        assert ts == sorted(ts)
        mesh.tracer = None
        assert all(vm.tracer is None for vm in mesh.vms)
