"""Property tests for the analytical interconnect cost model."""

import pytest

from repro.dist import Interconnect, LOOPBACK, NVLINK, PCIE

LINKS = [NVLINK, PCIE]
COLLECTIVES = ["all_reduce_s", "all_gather_s", "reduce_scatter_s",
               "broadcast_s"]


class TestZeroCases:
    @pytest.mark.parametrize("fn", COLLECTIVES)
    @pytest.mark.parametrize("link", LINKS)
    def test_world_one_is_free(self, link, fn):
        assert getattr(link, fn)(1, 1 << 20) == 0.0

    @pytest.mark.parametrize("fn", COLLECTIVES)
    @pytest.mark.parametrize("link", LINKS)
    def test_zero_bytes_is_free(self, link, fn):
        assert getattr(link, fn)(8, 0) == 0.0

    @pytest.mark.parametrize("fn", COLLECTIVES)
    def test_loopback_is_free(self, fn):
        assert getattr(LOOPBACK, fn)(8, 1 << 30) == 0.0


class TestMonotonicity:
    @pytest.mark.parametrize("fn", COLLECTIVES)
    @pytest.mark.parametrize("link", LINKS)
    def test_increasing_in_bytes(self, link, fn):
        costs = [getattr(link, fn)(4, b) for b in (1 << 10, 1 << 20, 1 << 30)]
        assert costs[0] < costs[1] < costs[2]

    @pytest.mark.parametrize("fn", COLLECTIVES)
    @pytest.mark.parametrize("link", LINKS)
    def test_nondecreasing_in_world(self, link, fn):
        costs = [getattr(link, fn)(n, 1 << 24) for n in (2, 4, 8, 16)]
        assert all(a <= b for a, b in zip(costs, costs[1:]))

    def test_ring_all_reduce_bandwidth_term_saturates(self):
        # 2(N-1)/N -> 2: chunked rings approach twice the buffer transfer.
        lat_free = Interconnect("ideal", 100e9, 0.0)
        limit = 2 * (1 << 24) / 100e9
        c8 = lat_free.all_reduce_s(8, 1 << 24)
        c1024 = lat_free.all_reduce_s(1024, 1 << 24)
        assert c8 < c1024 < limit


class TestDuality:
    @pytest.mark.parametrize("link", LINKS)
    @pytest.mark.parametrize("world", [2, 4, 8])
    def test_all_gather_equals_reduce_scatter(self, link, world):
        b = 3 << 20
        assert link.all_gather_s(world, b) == link.reduce_scatter_s(world, b)

    @pytest.mark.parametrize("link", LINKS)
    @pytest.mark.parametrize("world", [2, 4, 8])
    def test_all_reduce_is_rs_plus_ag(self, link, world):
        # Ring all-reduce == reduce-scatter then all-gather, exactly.
        b = 3 << 20
        got = link.all_reduce_s(world, b)
        want = link.reduce_scatter_s(world, b) + link.all_gather_s(world, b)
        assert got == pytest.approx(want, rel=1e-12)


class TestPresetsAndValidation:
    def test_nvlink_beats_pcie(self):
        assert (NVLINK.all_reduce_s(8, 1 << 26)
                < PCIE.all_reduce_s(8, 1 << 26))

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            NVLINK.all_reduce_s(0, 1024)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            NVLINK.all_gather_s(2, -1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Interconnect("bad", 0.0, 1e-6)
        with pytest.raises(ValueError):
            Interconnect("bad", 1e9, -1.0)
