"""ExecutionStats windowing on a shared VM (the serving-engine contract).

One VM serves many scheduler iterations; per-iteration metering must not
perturb allocator state or double-count anything.  The bar matches the
obs-trace invariant (sum of slice durations == stats.time_s): summed
per-iteration deltas reproduce the end-to-end totals, and an
uninterrupted run measures identically to a windowed one.
"""

import math

import numpy as np

from repro import transform
from repro.models import TINY_LLAMA, build_llama
from repro.runtime import NDArray, TEST_DEVICE, VirtualMachine
from repro.runtime.profiler import ExecutionStats


def _vm(**kwargs):
    exported = build_llama(TINY_LLAMA)
    exe = transform.build(exported.mod, TEST_DEVICE, **kwargs)
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
    return vm, exported.abstract_params()


def _decode(vm, params, batch, context):
    cfg = TINY_LLAMA
    caches = [
        NDArray.abstract((batch, context, cfg.num_kv_heads, cfg.head_dim),
                         cfg.dtype)
        for _ in range(2 * cfg.num_layers)
    ]
    vm.run("decode", NDArray.abstract((batch, 1), "i64"), *caches, *params)


COUNTER_FIELDS = [
    "kernel_launches", "lib_calls", "builtin_calls", "graph_captures",
    "graph_replays", "replayed_kernels", "allocations",
    "allocated_bytes_total", "escaping_bytes_total", "current_bytes",
]


def test_deltas_sum_to_end_to_end_totals():
    vm, params = _vm()
    start = vm.stats.copy()
    merged = ExecutionStats()
    contexts = [4, 4, 8, 8, 4, 16]
    for i, ctx in enumerate(contexts):
        before = vm.stats.copy()
        _decode(vm, params, batch=1 + i % 2, context=ctx)
        merged.merge(vm.stats.delta(before))
    total = vm.stats.delta(start)
    for field in COUNTER_FIELDS:
        assert getattr(merged, field) == getattr(total, field), field
    assert math.isclose(merged.time_s, total.time_s, rel_tol=0, abs_tol=1e-9)
    assert math.isclose(merged.kernel_time_s, total.kernel_time_s,
                        rel_tol=0, abs_tol=1e-9)
    assert merged.peak_bytes == total.peak_bytes


def test_windowed_metering_equals_uninterrupted_run():
    """copy()/delta() must be invisible: same totals as never snapshotting.

    This is the regression for the historical footgun where splitting a
    workload with reset_stats() dropped the pool free list and re-counted
    allocations an uninterrupted run would have recycled.
    """
    plain_vm, params = _vm(enable_memory_planning=False)
    for i in range(4):
        _decode(plain_vm, params, batch=2, context=8)

    windowed_vm, params2 = _vm(enable_memory_planning=False)
    deltas = []
    for i in range(4):
        before = windowed_vm.stats.copy()
        _decode(windowed_vm, params2, batch=2, context=8)
        deltas.append(windowed_vm.stats.delta(before))

    assert windowed_vm.stats.allocations == plain_vm.stats.allocations
    assert (
        windowed_vm.stats.allocated_bytes_total
        == plain_vm.stats.allocated_bytes_total
    )
    assert windowed_vm.stats.time_s == plain_vm.stats.time_s
    # Steady state: later windows recycle instead of allocating afresh.
    assert deltas[-1].allocations < deltas[0].allocations


def test_reset_stats_keep_pool_preserves_recycling():
    """reset_stats(reset_pool=False) re-binds the live pool: counters
    restart but the free list survives, so no re-allocation storm."""
    vm, params = _vm(enable_memory_planning=False)
    _decode(vm, params, batch=2, context=8)
    first = vm.reset_stats(reset_pool=False)
    assert first.allocations > 0
    _decode(vm, params, batch=2, context=8)
    kept_pool_allocs = vm.stats.allocations

    vm2, params2 = _vm(enable_memory_planning=False)
    _decode(vm2, params2, batch=2, context=8)
    vm2.reset_stats()  # default: pool dropped (historical behaviour)
    _decode(vm2, params2, batch=2, context=8)
    dropped_pool_allocs = vm2.stats.allocations

    assert kept_pool_allocs < dropped_pool_allocs


def test_delta_peak_is_absolute_high_water_mark():
    stats = ExecutionStats()
    stats.record_alloc(100)
    snap = stats.copy()
    stats.record_free(100)
    stats.record_alloc(40)
    delta = stats.delta(snap)
    assert delta.peak_bytes == 100  # absolute peak, not a difference
    assert delta.current_bytes == -60
    assert delta.allocations == 1
