"""Device model and library registry tests."""

import numpy as np
import pytest

from repro.runtime import (
    ALL_DEVICES,
    LibraryKernel,
    LibraryRegistry,
    REGISTRY,
    RTX_4090,
    TEST_DEVICE,
)


class TestDeviceModel:
    def test_kernel_time_monotone_in_flops(self):
        t1 = TEST_DEVICE.kernel_time(1e9, 0, 0.5)
        t2 = TEST_DEVICE.kernel_time(2e9, 0, 0.5)
        assert t2 > t1

    def test_kernel_time_monotone_in_bytes(self):
        t1 = TEST_DEVICE.kernel_time(0, 1e6, 0.5)
        t2 = TEST_DEVICE.kernel_time(0, 2e6, 0.5)
        assert t2 > t1

    def test_higher_efficiency_is_faster(self):
        slow = TEST_DEVICE.kernel_time(1e12, 1e9, 0.3)
        fast = TEST_DEVICE.kernel_time(1e12, 1e9, 0.9)
        assert fast < slow

    def test_roofline_max(self):
        # Memory-bound kernel: time set by bytes, not flops.
        mem = TEST_DEVICE.kernel_time(1, 1e9, 1.0, include_launch=False)
        both = TEST_DEVICE.kernel_time(1e3, 1e9, 1.0, include_launch=False)
        assert mem == both

    def test_launch_overhead_toggle(self):
        with_l = TEST_DEVICE.kernel_time(1e6, 1e6, 0.5, include_launch=True)
        without = TEST_DEVICE.kernel_time(1e6, 1e6, 0.5, include_launch=False)
        assert with_l - without == pytest.approx(TEST_DEVICE.kernel_launch_overhead)

    def test_with_overrides(self):
        faster = TEST_DEVICE.with_overrides(mem_bandwidth=2e11)
        assert faster.mem_bandwidth == 2e11
        assert TEST_DEVICE.mem_bandwidth == 1e11  # original untouched

    def test_all_devices_well_formed(self):
        for device in ALL_DEVICES.values():
            assert device.peak_flops > 0
            assert device.mem_bandwidth > 0
            assert device.vram_bytes > 0
            assert 0 < device.gen_efficiency <= 1
            assert 0 < device.lib_efficiency <= 1
            assert device.kernel_launch_overhead >= 0

    def test_paper_device_set_complete(self):
        names = set(ALL_DEVICES)
        for fragment in ("4090", "7900", "M2 Ultra", "iPhone", "S23", "S24",
                         "Orange Pi", "Steam Deck", "Jetson", "WebGPU"):
            assert any(fragment in n for n in names), fragment


class TestRegistry:
    def test_default_entries(self):
        for name in ("cublas.matmul", "cublas.matmul_nt", "cutlass.rms_norm",
                     "cudnn.softmax", "flashinfer.attention"):
            assert name in REGISTRY

    def test_availability_by_backend(self):
        assert REGISTRY.available("cublas.matmul", "cuda")
        assert REGISTRY.available("cublas.matmul", "metal")
        assert not REGISTRY.available("cublas.matmul", "opencl")
        assert not REGISTRY.available("flashinfer.attention", "metal")

    def test_duplicate_registration_rejected(self):
        reg = LibraryRegistry()
        k = LibraryKernel("x", lambda i, o: None, lambda i, o: (0, 0), ("cuda",))
        reg.register(k)
        with pytest.raises(ValueError):
            reg.register(k)
        reg.register(k, override=True)  # explicit override allowed

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            REGISTRY.get("nope.kernel")

    def test_matmul_nt_compute(self):
        kernel = REGISTRY.get("cublas.matmul_nt")
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((5, 4)).astype(np.float32)  # stored (N, K)
        out = np.zeros((3, 5), dtype=np.float32)
        kernel.compute([a, b], [out])
        np.testing.assert_allclose(out, a @ b.T, rtol=1e-5)

    def test_matvec_runtime_specialization(self):
        kernel = REGISTRY.get("cublas.matmul")
        # rows == 1 -> compiler matvec; rows > 1 -> vendor library.
        assert kernel.efficiency_class(
            [((1, 64), "f16"), ((64, 32), "f16")], [((1, 32), "f16")]
        ) == "gen_matvec"
        assert kernel.efficiency_class(
            [((8, 64), "f16"), ((64, 32), "f16")], [((8, 32), "f16")]
        ) == "lib"

    def test_attention_cost_scales_with_context(self):
        kernel = REGISTRY.get("flashinfer.attention")
        small = kernel.cost(
            [((1, 1, 8, 64), "f16"), ((1, 128, 8, 64), "f16"),
             ((1, 128, 8, 64), "f16")],
            [((1, 1, 8, 64), "f16")],
        )
        large = kernel.cost(
            [((1, 1, 8, 64), "f16"), ((1, 1024, 8, 64), "f16"),
             ((1, 1024, 8, 64), "f16")],
            [((1, 1, 8, 64), "f16")],
        )
        assert large[0] > small[0] and large[1] > small[1]

    def test_custom_registration(self):
        from repro.runtime import register_custom

        name = "test.custom_gelu"
        if name not in REGISTRY:
            register_custom(
                name,
                compute=lambda i, o: None,
                cost=lambda i, o: (1, 1),
                backends=("cuda",),
            )
        assert REGISTRY.available(name, "cuda")
        assert not REGISTRY.available(name, "metal")
