"""NDArray/Storage/ShapeTuple basics and the everything-on integration."""

import dataclasses

import numpy as np
import pytest

from repro import transform
from repro.models import TINY_LLAMA, build_llama, empty_caches
from repro.runtime import NDArray, ShapeTuple, Storage, TEST_DEVICE, VirtualMachine


class TestNDArray:
    def test_from_numpy_preserves_0d(self):
        a = NDArray.from_numpy(np.float32(3.5))
        assert a.shape == ()
        assert a.numpy() == np.float32(3.5)

    def test_from_numpy_makes_contiguous(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4).T  # non-contiguous
        a = NDArray.from_numpy(x)
        assert a.data.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(a.numpy(), x)

    def test_abstract_has_no_data(self):
        a = NDArray.abstract((2, 3), "f16")
        assert not a.is_concrete
        assert a.size_bytes() == 12
        with pytest.raises(ValueError):
            a.numpy()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NDArray((2, 3), "f32", data=np.zeros((3, 2), np.float32))

    def test_empty_modes(self):
        concrete = NDArray.empty((2,), "i32", concrete=True)
        assert concrete.is_concrete and concrete.numpy().sum() == 0
        abstract = NDArray.empty((2,), "i32", concrete=False)
        assert not abstract.is_concrete

    def test_storage_ids_unique(self):
        a, b = Storage(16, True), Storage(16, True)
        assert a.id != b.id

    def test_shape_tuple_semantics(self):
        s = ShapeTuple([2, 3])
        assert len(s) == 2 and s[1] == 3 and list(s) == [2, 3]
        assert s == ShapeTuple((2, 3))
        assert hash(s) == hash(ShapeTuple((2, 3)))
        assert s != ShapeTuple((3, 2))


class TestKitchenSink:
    def test_all_optimizations_together_quantized(self):
        """4-bit weights + fusion + library dispatch + static planning +
        CUDA graph + autotuning, decoding three tokens correctly."""
        cfg = dataclasses.replace(
            TINY_LLAMA, name="tiny-q4", quantize_bits=4, quantize_group=8
        )
        exported = build_llama(cfg)
        exported.module.initialize(seed=11, scale=0.1)
        exe = transform.build(
            exported.mod, TEST_DEVICE,
            sym_var_upper_bounds={"b": 2, "s": 16, "m": 16},
            enable_autotuning=True,
        )
        assert exe.functions["decode"].attrs.get("cuda_graph") is True

        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        params = exported.concrete_params()
        caches = empty_caches(cfg, 1, True)
        tokens = np.array([[3, 1, 4]], dtype=np.int64)
        out = vm.run("prefill", NDArray.from_numpy(tokens), *caches, *params)
        logits, caches = out[0], list(out[1:])
        produced = []
        for _ in range(3):
            tok = int(logits.numpy()[0, -1].argmax())
            produced.append(tok)
            out = vm.run(
                "decode",
                NDArray.from_numpy(np.array([[tok]], dtype=np.int64)),
                *caches, *params,
            )
            logits, caches = out[0], list(out[1:])
        assert all(0 <= t < cfg.vocab_size for t in produced)
        assert np.isfinite(logits.numpy()).all()
        assert vm.stats.graph_captures >= 1

        # Determinism: a fresh VM reproduces the same tokens.
        vm2 = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        caches = empty_caches(cfg, 1, True)
        out = vm2.run("prefill", NDArray.from_numpy(tokens), *caches, *params)
        logits2, caches2 = out[0], list(out[1:])
        produced2 = []
        for _ in range(3):
            tok = int(logits2.numpy()[0, -1].argmax())
            produced2.append(tok)
            out = vm2.run(
                "decode",
                NDArray.from_numpy(np.array([[tok]], dtype=np.int64)),
                *caches2, *params,
            )
            logits2, caches2 = out[0], list(out[1:])
        assert produced == produced2
