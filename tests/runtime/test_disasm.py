"""Executable disassembly."""

import numpy as np

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, const
from repro.runtime import disassemble, disassemble_function


def _exe():
    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 4), "f32")}) as frame:
        (x,) = frame.params
        w = const(np.ones((4, 4), np.float32))
        with bb.dataflow():
            h = bb.emit(ops.matmul(x, w))
            h = bb.emit(ops.relu(h))
            gv = bb.emit_output(h)
        bb.emit_func_output(gv)
    from repro.runtime import TEST_DEVICE

    return transform.build(bb.get(), TEST_DEVICE,
                           sym_var_upper_bounds={"n": 64})


def test_disassemble_contains_instruction_forms():
    text = disassemble(_exe())
    assert "func @main(" in text
    assert "match_shape r0" in text
    assert "alloc_storage" in text
    assert "alloc_tensor" in text
    assert "call_lib" in text or "call_tir" in text
    assert "ret r" in text
    assert "tensor programs:" in text or "constants:" in text


def test_disassemble_shape_heap_ops():
    exe = _exe()
    text = disassemble_function(exe.functions["main"])
    assert "shape_heap=" in text
    # Symbolic n flows through the heap.
    assert "heap[0]" in text


def test_cuda_graph_attr_visible():
    exe = _exe()
    text = disassemble_function(exe.functions["main"])
    assert "cuda_graph" in text
