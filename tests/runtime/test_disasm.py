"""Executable disassembly."""

import numpy as np

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, const
from repro.runtime import disassemble, disassemble_function


def _exe():
    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 4), "f32")}) as frame:
        (x,) = frame.params
        w = const(np.ones((4, 4), np.float32))
        with bb.dataflow():
            h = bb.emit(ops.matmul(x, w))
            h = bb.emit(ops.relu(h))
            gv = bb.emit_output(h)
        bb.emit_func_output(gv)
    from repro.runtime import TEST_DEVICE

    return transform.build(bb.get(), TEST_DEVICE,
                           sym_var_upper_bounds={"n": 64})


def test_disassemble_contains_instruction_forms():
    text = disassemble(_exe())
    assert "func @main(" in text
    assert "match_shape r0" in text
    assert "alloc_storage" in text
    assert "alloc_tensor" in text
    assert "call_lib" in text or "call_tir" in text
    assert "ret r" in text
    assert "tensor programs:" in text or "constants:" in text


def test_disassemble_shape_heap_ops():
    exe = _exe()
    text = disassemble_function(exe.functions["main"])
    assert "shape_heap=" in text
    # Symbolic n flows through the heap.
    assert "heap[0]" in text


def test_cuda_graph_attr_visible():
    exe = _exe()
    text = disassemble_function(exe.functions["main"])
    assert "cuda_graph" in text


def test_provenance_annotations_in_disassembly():
    text = disassemble(_exe())
    # Kernel/library calls carry the source-op chain they descend from...
    call_lines = [
        l for l in text.splitlines()
        if "call_tir" in l or "call_lib" in l
    ]
    assert call_lines
    assert all("; from " in l for l in call_lines), call_lines
    assert any("matmul@" in l for l in call_lines)
    # ...and so do the storage allocations feeding them.
    alloc_lines = [l for l in text.splitlines() if "alloc_storage" in l]
    assert alloc_lines
    assert all("; from " in l for l in alloc_lines), alloc_lines


# ---------------------------------------------------------------------------
# Opcode coverage: every emittable instruction round-trips through the
# disassembler.  The modules come from the fuzzing subsystem's generator;
# the (seed, build flags) pairs below were chosen so their executables
# jointly exercise the complete instruction set.
# ---------------------------------------------------------------------------

from repro import runtime
from repro.fuzz import build_module, generate
from repro.runtime import vm as rvm

_COVERAGE_BUILDS = [
    (0, {}),
    (1, {}),
    (2, {}),
    (2, {"enable_memory_planning": False}),
    (4, {}),
    (5, {}),
    (7, {}),
    (10, {}),
    (18, {}),
    (18, {"enable_memory_planning": False}),
    (21, {"enable_memory_planning": False}),
    (31, {}),
    (32, {}),
    (37, {}),
    (38, {}),
    (41, {}),
    (61, {}),
]


def _all_instr_classes():
    return {
        cls
        for cls in vars(rvm).values()
        if isinstance(cls, type)
        and issubclass(cls, rvm.Instr)
        and cls is not rvm.Instr
    }


def _collect(instrs, out):
    for instr in instrs:
        out.add(type(instr))
        if isinstance(instr, rvm.If):
            _collect(instr.then_body, out)
            _collect(instr.else_body, out)


def _coverage_exes():
    for seed, flags in _COVERAGE_BUILDS:
        plan = generate(seed)
        yield transform.build(
            build_module(plan), runtime.TEST_DEVICE,
            sym_var_upper_bounds=dict(plan.dims), **flags,
        )


def test_every_opcode_is_emitted_and_disassembles():
    seen = set()
    for exe in _coverage_exes():
        for func in exe.functions.values():
            _collect(func.body, seen)
        # Disassembly must render every function without hitting the
        # "<Unknown>" fallback line.
        text = disassemble(exe)
        assert "<" not in text.replace("->", ""), text
    missing = _all_instr_classes() - seen
    assert not missing, (
        f"opcodes never emitted by the coverage builds: "
        f"{sorted(c.__name__ for c in missing)}"
    )


def test_disassembly_is_deterministic():
    for exe in _coverage_exes():
        assert disassemble(exe) == disassemble(exe)


def test_disassembly_mentions_each_function():
    for exe in _coverage_exes():
        text = disassemble(exe)
        for name in exe.functions:
            assert f"func @{name}(" in text
