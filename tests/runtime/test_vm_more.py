"""VM coverage: builtins, nested functions, control flow, constants."""

import numpy as np
import pytest

from repro import sym, tir
from repro.runtime import (
    AllocTensor,
    CallBuiltin,
    CallFunc,
    CallTir,
    Executable,
    GetItemI,
    If,
    LoadConst,
    MakeTupleI,
    NDArray,
    Ret,
    TEST_DEVICE,
    VMError,
    VMFunction,
    VirtualMachine,
    const_dim,
)


def _identity_tir():
    n = sym.SymVar("n")
    f = tir.TirBuilder("copy")
    a = f.arg("A", (n,), "f32")
    b = f.out("B", (n,), "f32")
    i = f.spatial(n)
    f.store(b, [i], a[i])
    return f.build()


class TestBuiltins:
    def _exe(self, builtin):
        exe = Executable()
        body = [CallBuiltin(dst=1, name=builtin, args=[0]), Ret(reg=1)]
        exe.functions["main"] = VMFunction("main", ["x"], body, 2, 0)
        return exe

    def test_unique_concrete(self):
        vm = VirtualMachine(self._exe("vm.builtin.unique"), TEST_DEVICE)
        x = np.array([3.0, 1.0, 3.0, 2.0], dtype=np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_array_equal(out.numpy(), np.unique(x))
        assert vm.stats.builtin_calls == 1

    def test_unique_abstract_upper_bound(self):
        vm = VirtualMachine(self._exe("vm.builtin.unique"), TEST_DEVICE,
                            concrete=False)
        out = vm.run("main", NDArray.abstract((7,), "f32"))
        assert out.shape == (7,)  # worst case: all distinct

    def test_nonzero(self):
        vm = VirtualMachine(self._exe("vm.builtin.nonzero"), TEST_DEVICE)
        x = np.array([0.0, 2.0, 0.0, 5.0], dtype=np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_array_equal(out.numpy(), np.array([1, 3]))

    def test_unknown_builtin(self):
        vm = VirtualMachine(self._exe("vm.builtin.bogus"), TEST_DEVICE)
        with pytest.raises(VMError, match="unknown builtin"):
            vm.run("main", NDArray.from_numpy(np.zeros(1, np.float32)))


class TestNestedCalls:
    def test_call_func(self):
        exe = Executable()
        exe.tir_funcs["copy"] = _identity_tir()
        inner = [
            AllocTensor(dst=1, dims=[const_dim(3)], dtype="f32"),
            CallTir(func="copy", args=[0], outs=[1]),
            Ret(reg=1),
        ]
        exe.functions["inner"] = VMFunction("inner", ["x"], inner, 2, 0)
        outer = [CallFunc(dst=1, func="inner", args=[0]), Ret(reg=1)]
        exe.functions["main"] = VMFunction("main", ["x"], outer, 2, 0)
        vm = VirtualMachine(exe, TEST_DEVICE)
        x = np.arange(3, dtype=np.float32)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_array_equal(out.numpy(), x)

    def test_missing_function(self):
        exe = Executable()
        exe.functions["main"] = VMFunction(
            "main", [], [CallFunc(dst=0, func="ghost", args=[]), Ret(reg=0)], 1, 0
        )
        vm = VirtualMachine(exe, TEST_DEVICE)
        with pytest.raises(VMError, match="no VM function"):
            vm.run("main")


class TestControlFlowAndValues:
    def test_if_instruction(self):
        exe = Executable()
        idx_a = exe.add_constant(np.float32(1.0))
        idx_b = exe.add_constant(np.float32(2.0))
        body = [
            If(
                cond=0,
                then_body=[LoadConst(dst=1, const_idx=idx_a)],
                then_out=1,
                else_body=[LoadConst(dst=2, const_idx=idx_b)],
                else_out=2,
                dst=3,
            ),
            Ret(reg=3),
        ]
        exe.functions["main"] = VMFunction("main", ["c"], body, 4, 0)
        vm = VirtualMachine(exe, TEST_DEVICE)
        assert vm.run("main", 1).numpy() == np.float32(1.0)
        assert vm.run("main", 0).numpy() == np.float32(2.0)

    def test_if_abstract_cond_rejected(self):
        exe = Executable()
        body = [
            If(cond=0, then_body=[], then_out=0, else_body=[], else_out=0, dst=1),
            Ret(reg=1),
        ]
        exe.functions["main"] = VMFunction("main", ["c"], body, 2, 0)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        with pytest.raises(VMError, match="abstract mode"):
            vm.run("main", NDArray.abstract((), "bool"))

    def test_tuple_instructions(self):
        exe = Executable()
        idx = exe.add_constant(np.arange(4, dtype=np.float32))
        body = [
            LoadConst(dst=0, const_idx=idx),
            MakeTupleI(dst=1, srcs=[0, 0]),
            GetItemI(dst=2, src=1, index=1),
            Ret(reg=2),
        ]
        exe.functions["main"] = VMFunction("main", [], body, 3, 0)
        vm = VirtualMachine(exe, TEST_DEVICE)
        out = vm.run("main")
        np.testing.assert_array_equal(out.numpy(), np.arange(4, dtype=np.float32))

    def test_const_cache(self):
        exe = Executable()
        idx = exe.add_constant(np.ones(2, dtype=np.float32))
        body = [
            LoadConst(dst=0, const_idx=idx),
            LoadConst(dst=1, const_idx=idx),
            MakeTupleI(dst=2, srcs=[0, 1]),
            Ret(reg=2),
        ]
        exe.functions["main"] = VMFunction("main", [], body, 3, 0)
        vm = VirtualMachine(exe, TEST_DEVICE)
        a, b = vm.run("main")
        assert a is b  # loaded once, cached

    def test_reset_stats_returns_old(self):
        exe = Executable()
        exe.functions["main"] = VMFunction(
            "main", [], [AllocTensor(dst=0, dims=[const_dim(4)], dtype="f32"),
                         Ret(reg=0)], 1, 0,
        )
        vm = VirtualMachine(exe, TEST_DEVICE)
        vm.run("main")
        old = vm.reset_stats()
        assert old.allocations == 1
        assert vm.stats.allocations == 0

    def test_fall_through_without_ret(self):
        exe = Executable()
        exe.functions["main"] = VMFunction("main", [], [], 0, 0)
        vm = VirtualMachine(exe, TEST_DEVICE)
        with pytest.raises(VMError, match="fell through"):
            vm.run("main")


class TestKernelAccounting:
    def test_sym_args_passed_to_kernel(self):
        m = sym.SymVar("m")
        f = tir.TirBuilder("fill")
        out = f.out("O", (4,), "i64")
        f.sym_param(m)
        i = f.spatial(4)
        f.store(out, [i], tir.IndexValue(m))
        exe = Executable()
        exe.tir_funcs["fill"] = f.build()
        from repro.runtime import ComputeShape, MatchShape, slot_dim

        body = [
            MatchShape(reg=0, actions=[(0, "store", 0)], ndim=1, context="x"),
            AllocTensor(dst=1, dims=[const_dim(4)], dtype="i64"),
            CallTir(func="fill", args=[], outs=[1], sym_args=[slot_dim(0)]),
            Ret(reg=1),
        ]
        exe.functions["main"] = VMFunction("main", ["x"], body, 2, 1)
        vm = VirtualMachine(exe, TEST_DEVICE)
        out = vm.run("main", NDArray.from_numpy(np.zeros(9, np.float32)))
        np.testing.assert_array_equal(out.numpy(), np.full(4, 9, dtype=np.int64))

    def test_cost_cache_hit(self):
        exe = Executable()
        exe.tir_funcs["copy"] = _identity_tir()
        body = [
            AllocTensor(dst=1, dims=[const_dim(8)], dtype="f32"),
            CallTir(func="copy", args=[0], outs=[1]),
            CallTir(func="copy", args=[0], outs=[1]),
            Ret(reg=1),
        ]
        exe.functions["main"] = VMFunction("main", ["x"], body, 2, 0)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("main", NDArray.abstract((8,), "f32"))
        assert len(vm._cost_cache) == 1  # same shapes -> one entry
        assert vm.stats.kernel_launches == 2
