"""VM instruction set: shape heap, allocation, kernels, graph capture."""

import numpy as np
import pytest

from repro import sym, tir
from repro.runtime import (
    AllocStorage,
    AllocTensor,
    CallLib,
    CallTir,
    ComputeShape,
    Executable,
    KillTensor,
    MakeShape,
    MatchShape,
    NDArray,
    Ret,
    ShapeTuple,
    TEST_DEVICE,
    VMError,
    VMFunction,
    VirtualMachine,
    const_dim,
    slot_dim,
)


def _scale_prim_func():
    """Y = X * 2 over (n, 4)."""
    n = sym.SymVar("n")
    f = tir.TirBuilder("scale")
    x = f.arg("X", (n, 4), "f32")
    y = f.out("Y", (n, 4), "f32")
    i, j = f.spatial(n, 4)
    f.store(y, [i, j], x[i, j] * 2.0)
    return f.build()


def _build_scale_exe():
    """main(x: (n,4) f32) -> scale(x), hand-assembled instructions."""
    exe = Executable()
    exe.tir_funcs["scale"] = _scale_prim_func()
    n_var = sym.SymVar("n")
    body = [
        # slot0 <- x.shape[0]; assert x.shape[1] == 4
        MatchShape(reg=0, actions=[(0, "store", 0), (1, "assert_const", 4)],
                   ndim=2, dtype="f32", context="main: x"),
        # slot1 <- n * 4 * 4  (output byte size)
        ComputeShape(dst_slot=1, expr=n_var * 16, var_slots=[(n_var, 0)]),
        AllocStorage(dst=1, size=slot_dim(1)),
        AllocTensor(dst=2, dims=[slot_dim(0), const_dim(4)], dtype="f32", storage=1),
        CallTir(func="scale", args=[0], outs=[2]),
        Ret(reg=2),
    ]
    exe.functions["main"] = VMFunction("main", ["x"], body, num_regs=3, num_slots=2)
    return exe


class TestBasicExecution:
    def test_concrete_numerics(self):
        exe = _build_scale_exe()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.arange(8, dtype=np.float32).reshape(2, 4)
        out = vm.run("main", NDArray.from_numpy(x))
        np.testing.assert_allclose(out.numpy(), x * 2)

    def test_dynamic_batch_reuses_code(self):
        exe = _build_scale_exe()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        for n in (1, 3, 8):
            x = np.ones((n, 4), dtype=np.float32)
            out = vm.run("main", NDArray.from_numpy(x))
            assert out.shape == (n, 4)
            np.testing.assert_allclose(out.numpy(), 2.0)

    def test_abstract_mode_no_data(self):
        exe = _build_scale_exe()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        out = vm.run("main", NDArray.abstract((5, 4), "f32"))
        assert out.shape == (5, 4)
        assert not out.is_concrete
        assert vm.stats.kernel_launches == 1
        assert vm.stats.time_s > 0

    def test_shape_check_fires(self):
        exe = _build_scale_exe()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        bad = NDArray.from_numpy(np.zeros((2, 5), dtype=np.float32))
        with pytest.raises(VMError, match="dim 1 expected 4"):
            vm.run("main", bad)

    def test_dtype_check_fires(self):
        exe = _build_scale_exe()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        bad = NDArray.from_numpy(np.zeros((2, 4), dtype=np.int32))
        with pytest.raises(VMError, match="dtype mismatch"):
            vm.run("main", bad)

    def test_rank_check_fires(self):
        exe = _build_scale_exe()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        bad = NDArray.from_numpy(np.zeros((2, 4, 1), dtype=np.float32))
        with pytest.raises(VMError, match="rank mismatch"):
            vm.run("main", bad)

    def test_wrong_arity(self):
        exe = _build_scale_exe()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        with pytest.raises(VMError, match="expected 1 arguments"):
            vm.run("main")


class TestStorageCaching:
    def test_same_size_storage_reused_across_calls(self):
        exe = _build_scale_exe()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        x = NDArray.abstract((4, 4), "f32")
        vm.run("main", x)
        allocs_after_first = vm.stats.allocations
        vm.run("main", x)
        vm.run("main", x)
        assert vm.stats.allocations == allocs_after_first  # reused

    def test_size_change_reallocates(self):
        exe = _build_scale_exe()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("main", NDArray.abstract((4, 4), "f32"))
        first = vm.stats.allocations
        vm.run("main", NDArray.abstract((8, 4), "f32"))
        assert vm.stats.allocations == first + 1


class TestPool:
    def test_pool_recycles_exact_sizes(self):
        exe = Executable()
        body = [
            AllocTensor(dst=0, dims=[const_dim(8)], dtype="f32"),
            KillTensor(reg=0),
            AllocTensor(dst=1, dims=[const_dim(8)], dtype="f32"),
            Ret(reg=1),
        ]
        exe.functions["main"] = VMFunction("main", [], body, num_regs=2, num_slots=0)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("main")
        assert vm.stats.allocations == 1  # second allocation recycled

    def test_pool_cannot_recycle_different_size(self):
        exe = Executable()
        body = [
            AllocTensor(dst=0, dims=[const_dim(8)], dtype="f32"),
            KillTensor(reg=0),
            AllocTensor(dst=1, dims=[const_dim(16)], dtype="f32"),
            Ret(reg=1),
        ]
        exe.functions["main"] = VMFunction("main", [], body, num_regs=2, num_slots=0)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("main")
        assert vm.stats.allocations == 2


class TestLibraryCalls:
    def test_cublas_matmul(self):
        exe = Executable()
        body = [
            AllocTensor(dst=2, dims=[const_dim(2), const_dim(3)], dtype="f32"),
            CallLib(name="cublas.matmul", args=[0, 1], outs=[2]),
            Ret(reg=2),
        ]
        exe.functions["main"] = VMFunction("main", ["a", "b"], body, 3, 0)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        a = np.random.default_rng(0).standard_normal((2, 4)).astype(np.float32)
        b = np.random.default_rng(1).standard_normal((4, 3)).astype(np.float32)
        out = vm.run("main", NDArray.from_numpy(a), NDArray.from_numpy(b))
        np.testing.assert_allclose(out.numpy(), a @ b, rtol=1e-5)
        assert vm.stats.lib_calls == 1

    def test_backend_gating(self):
        from repro.runtime import ORANGE_PI_5

        exe = Executable()
        body = [
            AllocTensor(dst=2, dims=[const_dim(2), const_dim(2)], dtype="f32"),
            CallLib(name="cublas.matmul", args=[0, 1], outs=[2]),
            Ret(reg=2),
        ]
        exe.functions["main"] = VMFunction("main", ["a", "b"], body, 3, 0)
        vm = VirtualMachine(exe, ORANGE_PI_5, concrete=False)
        with pytest.raises(VMError, match="unavailable on backend"):
            vm.run("main", NDArray.abstract((2, 2), "f32"), NDArray.abstract((2, 2), "f32"))


class TestGraphCapture:
    def _exe_with_graph_func(self):
        exe = _build_scale_exe()
        exe.functions["main"].attrs["cuda_graph"] = True
        return exe

    def test_capture_then_replay(self):
        exe = self._exe_with_graph_func()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
        x = np.ones((2, 4), dtype=np.float32)
        out1 = vm.run("main", NDArray.from_numpy(x))
        assert vm.stats.graph_captures == 1
        assert vm.stats.graph_replays == 0
        out2 = vm.run("main", NDArray.from_numpy(x * 3))
        assert vm.stats.graph_replays == 1
        np.testing.assert_allclose(out2.numpy(), x * 6)  # replay still computes

    def test_new_shape_triggers_new_capture(self):
        exe = self._exe_with_graph_func()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        vm.run("main", NDArray.abstract((2, 4), "f32"))
        vm.run("main", NDArray.abstract((3, 4), "f32"))
        assert vm.stats.graph_captures == 2
        vm.run("main", NDArray.abstract((2, 4), "f32"))
        assert vm.stats.graph_replays == 1

    def test_replay_reduces_time(self):
        exe = self._exe_with_graph_func()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        x = NDArray.abstract((2, 4), "f32")
        vm.run("main", x)  # capture
        vm.reset_stats()
        vm.run("main", x)  # replay
        replay_time = vm.stats.time_s

        vm_plain = VirtualMachine(exe, TEST_DEVICE, concrete=False,
                                  enable_cuda_graph=False)
        vm_plain.run("main", x)
        vm_plain.reset_stats()
        vm_plain.run("main", x)
        plain_time = vm_plain.stats.time_s
        # Replay pays one graph launch instead of one kernel launch per
        # kernel; with a single kernel the graph overhead dominates, so
        # compare launch accounting instead of total time.
        assert vm.stats.launch_overhead_s == 0.0
        assert vm_plain.stats.launch_overhead_s > 0.0
        del replay_time, plain_time

    def test_disabled_graph_never_captures(self):
        exe = self._exe_with_graph_func()
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False, enable_cuda_graph=False)
        vm.run("main", NDArray.abstract((2, 4), "f32"))
        assert vm.stats.graph_captures == 0


class TestShapeValues:
    def test_make_shape(self):
        exe = Executable()
        n_var = sym.SymVar("n")
        body = [
            MatchShape(reg=0, actions=[(0, "store", 0)], ndim=1, context="x"),
            ComputeShape(dst_slot=1, expr=n_var * 2 + 1, var_slots=[(n_var, 0)]),
            MakeShape(dst=1, dims=[slot_dim(1), const_dim(7)]),
            Ret(reg=1),
        ]
        exe.functions["main"] = VMFunction("main", ["x"], body, 2, 2)
        vm = VirtualMachine(exe, TEST_DEVICE, concrete=False)
        out = vm.run("main", NDArray.abstract((5,), "f32"))
        assert out == ShapeTuple([11, 7])
