"""ExecutionStats merging/summary, RuntimePool recycling, ProfileReport."""

import json

import numpy as np
import pytest

from repro import ops, transform
from repro.core import BlockBuilder, TensorAnn, const
from repro.runtime import TEST_DEVICE, VirtualMachine
from repro.runtime.ndarray import NDArray
from repro.runtime.profiler import ExecutionStats, ProfileReport, RuntimePool


class TestExecutionStats:
    def test_merge_accumulates_current_bytes(self):
        # Regression: merge() used to drop current_bytes, so merging two
        # snapshots with live storage under-reported residency.
        a = ExecutionStats()
        a.record_alloc(100)
        b = ExecutionStats()
        b.record_alloc(300)
        b.record_free(100)
        a.merge(b)
        assert a.current_bytes == 300
        assert a.allocations == 2
        assert a.peak_bytes == 300

    def test_merge_sums_every_counter(self):
        a = ExecutionStats(time_s=1.0, kernel_launches=2, lib_calls=1,
                           builtin_calls=3, kernel_time_s=0.5,
                           launch_overhead_s=0.1)
        b = ExecutionStats(time_s=2.0, kernel_launches=5, lib_calls=4,
                           builtin_calls=7, kernel_time_s=1.5,
                           launch_overhead_s=0.3)
        a.merge(b)
        assert a.time_s == 3.0
        assert a.kernel_launches == 7
        assert a.lib_calls == 5
        assert a.builtin_calls == 10
        assert a.kernel_time_s == 2.0
        assert abs(a.launch_overhead_s - 0.4) < 1e-12

    def test_merge_serial_sums_times_and_maxes_peak(self):
        # Back-to-back work on one clock: every time field sums
        # (including the comm breakout), peak_bytes is a high-water
        # mark across distinct pools and takes the max.
        a = ExecutionStats(time_s=1.0, kernel_time_s=0.5,
                           launch_overhead_s=0.1, comm_time_s=0.25,
                           kernel_launches=3)
        a.record_alloc(200)
        b = ExecutionStats(time_s=2.0, kernel_time_s=1.0,
                           launch_overhead_s=0.2, comm_time_s=0.5,
                           kernel_launches=4)
        b.record_alloc(500)
        merged = ExecutionStats.merge_serial([a, b])
        assert merged.time_s == 3.0
        assert merged.kernel_time_s == 1.5
        assert abs(merged.launch_overhead_s - 0.3) < 1e-12
        assert merged.comm_time_s == 0.75
        assert merged.kernel_launches == 7
        assert merged.peak_bytes == 500
        assert merged.current_bytes == 700

    def test_merge_serial_single_part_returned_as_is(self):
        a = ExecutionStats(time_s=1.0)
        assert ExecutionStats.merge_serial([a]) is a

    def test_merge_parallel_maxes_wall_time_sums_counters(self):
        # Lockstep shards/replicas: wall-time fields take the max
        # (nobody leaves the barrier before the slowest), counters and
        # byte totals sum, peak_bytes stays per-device.
        fast = ExecutionStats(time_s=1.0, kernel_time_s=0.4,
                              launch_overhead_s=0.1, comm_time_s=0.2,
                              kernel_launches=10, lib_calls=2,
                              builtin_calls=5)
        fast.record_alloc(300)
        slow = ExecutionStats(time_s=4.0, kernel_time_s=3.0,
                              launch_overhead_s=0.5, comm_time_s=0.9,
                              kernel_launches=1, lib_calls=1,
                              builtin_calls=2)
        slow.record_alloc(100)
        merged = ExecutionStats.merge_parallel([fast, slow])
        assert merged.time_s == 4.0
        assert merged.kernel_time_s == 3.0
        assert merged.launch_overhead_s == 0.5
        assert merged.comm_time_s == 0.9
        assert merged.kernel_launches == 11
        assert merged.lib_calls == 3
        assert merged.builtin_calls == 7
        assert merged.allocated_bytes_total == 400
        assert merged.current_bytes == 400
        assert merged.peak_bytes == 300
        # Fresh snapshot, inputs untouched.
        assert fast.time_s == 1.0 and slow.kernel_launches == 1

    def test_merge_parallel_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one part"):
            ExecutionStats.merge_parallel([])

    def test_summary_includes_builtin_and_time_split(self):
        stats = ExecutionStats(time_s=1.0, builtin_calls=4,
                               kernel_time_s=0.7, launch_overhead_s=0.2)
        summary = stats.summary()
        assert summary["builtin_calls"] == 4
        assert summary["kernel_time_s"] == 0.7
        assert summary["launch_overhead_s"] == 0.2


class TestRuntimePool:
    def test_recycle_exact_size(self):
        stats = ExecutionStats()
        pool = RuntimePool(stats)
        assert pool.allocate(128) is False  # fresh
        pool.release(128)
        assert pool.allocate(128) is True  # recycled, no new allocation
        assert stats.allocations == 1
        assert stats.current_bytes == 128

    def test_different_size_misses(self):
        pool = RuntimePool(ExecutionStats())
        pool.allocate(128)
        pool.release(128)
        assert pool.allocate(256) is False, "exact-size pool must miss"

    def test_release_then_double_allocate(self):
        stats = ExecutionStats()
        pool = RuntimePool(stats)
        pool.allocate(64)
        pool.release(64)
        assert pool.allocate(64) is True
        assert pool.allocate(64) is False, "bucket count must deplete"
        assert stats.allocations == 2

    def test_free_table_counts(self):
        pool = RuntimePool(ExecutionStats())
        for _ in range(3):
            pool.allocate(32)
        for _ in range(3):
            pool.release(32)
        assert pool._free[32] == 3
        pool.allocate(32)
        assert pool._free[32] == 2

    def test_peak_tracks_recycled_blocks(self):
        stats = ExecutionStats()
        pool = RuntimePool(stats)
        pool.allocate(100)
        pool.release(100)
        pool.allocate(100)
        assert stats.peak_bytes == 100
        assert stats.current_bytes == 100


def _vm():
    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 4), "f32")}) as frame:
        (x,) = frame.params
        w = const(np.ones((4, 4), np.float32))
        with bb.dataflow():
            h = bb.emit(ops.matmul(x, w))
            gv = bb.emit_output(bb.emit(ops.relu(h)))
        bb.emit_func_output(gv)
    exe = transform.build(bb.get(), TEST_DEVICE,
                          sym_var_upper_bounds={"n": 64})
    vm = VirtualMachine(exe, TEST_DEVICE, concrete=True)
    vm.run("main", NDArray.from_numpy(np.ones((8, 4), np.float32)))
    return vm


class TestProfileReport:
    def test_to_dict_round_trip_without_pipeline(self):
        report = ProfileReport(stats=ExecutionStats(time_s=1.5, lib_calls=2))
        d = json.loads(json.dumps(report.to_dict()))
        assert d["execution"]["time_s"] == 1.5
        assert "pipeline" not in d
        assert report.pass_timings() == {}

    def test_to_dict_round_trip_with_pipeline(self):
        vm = _vm()
        report = ProfileReport.from_vm(vm)
        d = json.loads(json.dumps(report.to_dict(), default=str))
        assert d["execution"]["kernel_launches"] == vm.stats.kernel_launches
        if report.pipeline_report is not None:
            assert "pipeline" in d
