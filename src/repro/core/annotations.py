"""Structural annotations — Relax's "static types plus shapes" (paper §3.1).

Each Relax value carries an annotation conveying structural information at
compile time (Table 1 of the paper):

=============  =========================================================
``ObjectAnn``  any runtime value
``PrimAnn``    a scalar integer value, possibly a known symbolic expr
``ShapeAnn``   a symbolic shape value, e.g. ``Shape([n, 4])``
``TensorAnn``  tensor with symbolic shape and dtype, e.g.
               ``Tensor((n, 4), "f32")``
``TupleAnn``   tuple of other annotations
``CallableAnn``  function annotation: parameter and result annotations
=============  =========================================================

Shape dimensions are symbolic integer expressions (:mod:`repro.sym`).  They
may also be written as *quoted strings* (``"n * 4"``) in signatures, as the
paper does when the symbolic variables are not declared yet; such
annotations must be :meth:`resolved <Annotation.resolve>` against a
:class:`~repro.sym.ShapeVarContext` before analysis uses them.

The lattice operations used throughout the compiler live here too:

* :func:`erase_to_coarse` — forget symbolic values but keep structure
  (the "safety net" of forward deduction, §4.1);
* :meth:`Annotation.is_base_of` — can a value with annotation B flow where
  A is expected (possibly needing a runtime check);
* :func:`unify_call` — bind the symbolic variables of a callee signature
  against argument annotations and derive the return annotation (Fig. 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import dtypes, sym

DimLike = Union[int, str, sym.PrimExpr]


class Annotation:
    """Base class of all structural annotations."""

    #: Tensor-parallel placement struct info, attached per-instance by
    #: ``repro.transform.sharding.PropagateSharding``: a
    #: ``repro.dist.shard.ShardSpec`` (or a tuple of them for tuple
    #: annotations).  ``None`` means "not analyzed" — distinct from an
    #: explicit replicated spec.  A class-level default keeps annotation
    #: construction and structural comparison entirely unchanged.
    shard = None

    def resolve(self, ctx: sym.ShapeVarContext) -> "Annotation":
        """Replace quoted string dimensions with symbolic expressions."""
        return self

    def is_resolved(self) -> bool:
        return True

    def free_sym_vars(self) -> List[sym.SymVar]:
        return []

    def substitute_syms(self, mapping: Dict[sym.SymVar, sym.ExprLike]) -> "Annotation":
        """Substitute symbolic variables in every embedded expression."""
        return self

    def erased(self) -> "Annotation":
        """Coarse version: same structure, symbolic values forgotten."""
        return self

    def is_base_of(self, other: "Annotation") -> bool:
        """True when a value annotated ``other`` always fits this annotation.

        This is the static direction; passing a *coarser* value into a finer
        annotation is still allowed at function boundaries but requires the
        lightweight runtime check of §4.1.
        """
        raise NotImplementedError

    def possibly_matches(self, other: "Annotation") -> bool:
        """True unless the two annotations are provably incompatible."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


def _as_dim(dim: DimLike) -> Union[str, sym.PrimExpr]:
    if isinstance(dim, str):
        return dim
    return sym.PrimExpr.convert(dim)


def _resolve_dims(dims, ctx: sym.ShapeVarContext) -> Tuple[sym.PrimExpr, ...]:
    return tuple(sym.parse_dim(d, ctx) for d in dims)


def _dims_resolved(dims) -> bool:
    return all(isinstance(d, sym.PrimExpr) for d in dims)


def _require_resolved(ann: Annotation) -> None:
    if not ann.is_resolved():
        raise ValueError(
            f"annotation {ann} contains unresolved quoted dimensions; "
            "resolve it against a ShapeVarContext first"
        )


def _dims_equal(a: Sequence[sym.PrimExpr], b: Sequence[sym.PrimExpr]) -> bool:
    return len(a) == len(b) and all(sym.prove_equal(x, y) for x, y in zip(a, b))


def _dims_possibly_equal(a, b) -> bool:
    # Incompatible only when two static dims are provably different.
    for x, y in zip(a, b):
        if sym.is_static(x) and sym.is_static(y):
            if sym.as_static_int(sym.simplify(x)) != sym.as_static_int(sym.simplify(y)):
                return False
    return len(a) == len(b)


class ObjectAnn(Annotation):
    """Any runtime value — the top of the annotation lattice."""

    def is_base_of(self, other: Annotation) -> bool:
        return True

    def possibly_matches(self, other: Annotation) -> bool:
        return True

    def __str__(self) -> str:
        return "Object"


class PrimAnn(Annotation):
    """A scalar (host) integer value, optionally a known symbolic expr."""

    def __init__(self, dtype: str = "i64", value: Optional[sym.ExprLike] = None):
        self.dtype = dtypes.check_dtype(dtype)
        self.value = None if value is None else sym.PrimExpr.convert(value)

    def free_sym_vars(self) -> List[sym.SymVar]:
        return [] if self.value is None else sym.free_vars(self.value)

    def substitute_syms(self, mapping) -> "PrimAnn":
        if self.value is None:
            return self
        return PrimAnn(self.dtype, sym.substitute(self.value, mapping))

    def erased(self) -> "PrimAnn":
        return PrimAnn(self.dtype)

    def is_base_of(self, other: Annotation) -> bool:
        if not isinstance(other, PrimAnn) or other.dtype != self.dtype:
            return False
        if self.value is None:
            return True
        return other.value is not None and sym.prove_equal(self.value, other.value)

    def possibly_matches(self, other: Annotation) -> bool:
        if isinstance(other, ObjectAnn):
            return True
        return isinstance(other, PrimAnn) and other.dtype == self.dtype

    def __str__(self) -> str:
        if self.value is None:
            return f"Prim({self.dtype})"
        return f"Prim({self.dtype}, {self.value})"


class ShapeAnn(Annotation):
    """A symbolic shape value: ``Shape([n, 4])`` or ``Shape(ndim=2)``."""

    def __init__(self, values: Optional[Sequence[DimLike]] = None, ndim: Optional[int] = None):
        if values is not None:
            self.values: Optional[Tuple] = tuple(_as_dim(v) for v in values)
            self.ndim = len(self.values)
            if ndim is not None and ndim != self.ndim:
                raise ValueError("ndim conflicts with explicit shape values")
        else:
            self.values = None
            self.ndim = -1 if ndim is None else ndim

    def resolve(self, ctx: sym.ShapeVarContext) -> "ShapeAnn":
        if self.values is None or _dims_resolved(self.values):
            return self
        return ShapeAnn(_resolve_dims(self.values, ctx))

    def is_resolved(self) -> bool:
        return self.values is None or _dims_resolved(self.values)

    def free_sym_vars(self) -> List[sym.SymVar]:
        _require_resolved(self)
        out, seen = [], set()
        for dim in self.values or ():
            for var in sym.free_vars(dim):
                if var.key() not in seen:
                    seen.add(var.key())
                    out.append(var)
        return out

    def substitute_syms(self, mapping) -> "ShapeAnn":
        if self.values is None:
            return self
        _require_resolved(self)
        return ShapeAnn([sym.substitute(v, mapping) for v in self.values])

    def erased(self) -> "ShapeAnn":
        return ShapeAnn(ndim=self.ndim) if self.values is not None else self

    def is_base_of(self, other: Annotation) -> bool:
        if not isinstance(other, ShapeAnn):
            return False
        if self.values is None:
            return self.ndim == -1 or self.ndim == other.ndim
        if other.values is None:
            return False
        _require_resolved(self)
        _require_resolved(other)
        return _dims_equal(self.values, other.values)

    def possibly_matches(self, other: Annotation) -> bool:
        if isinstance(other, ObjectAnn):
            return True
        if not isinstance(other, ShapeAnn):
            return False
        if self.ndim != -1 and other.ndim != -1 and self.ndim != other.ndim:
            return False
        if self.values is not None and other.values is not None:
            return _dims_possibly_equal(self.values, other.values)
        return True

    def __str__(self) -> str:
        if self.values is not None:
            inner = ", ".join(str(v) for v in self.values)
            return f"Shape([{inner}])"
        if self.ndim == -1:
            return "Shape"
        return f"Shape(ndim={self.ndim})"


class TensorAnn(Annotation):
    """Tensor annotation: symbolic shape plus dtype.

    ``TensorAnn((n, 4), "f32")``, ``TensorAnn(ndim=2, dtype="f32")``, or
    fully unknown ``TensorAnn()``.
    """

    def __init__(
        self,
        shape: Optional[Sequence[DimLike]] = None,
        dtype: Optional[str] = None,
        ndim: Optional[int] = None,
    ):
        if shape is not None:
            self.shape: Optional[Tuple] = tuple(_as_dim(d) for d in shape)
            self.ndim = len(self.shape)
            if ndim is not None and ndim != self.ndim:
                raise ValueError("ndim conflicts with explicit shape")
        else:
            self.shape = None
            self.ndim = -1 if ndim is None else ndim
        self.dtype = None if dtype is None else dtypes.check_dtype(dtype)

    def resolve(self, ctx: sym.ShapeVarContext) -> "TensorAnn":
        if self.shape is None or _dims_resolved(self.shape):
            return self
        return TensorAnn(_resolve_dims(self.shape, ctx), self.dtype)

    def is_resolved(self) -> bool:
        return self.shape is None or _dims_resolved(self.shape)

    def free_sym_vars(self) -> List[sym.SymVar]:
        _require_resolved(self)
        out, seen = [], set()
        for dim in self.shape or ():
            for var in sym.free_vars(dim):
                if var.key() not in seen:
                    seen.add(var.key())
                    out.append(var)
        return out

    def substitute_syms(self, mapping) -> "TensorAnn":
        if self.shape is None:
            return self
        _require_resolved(self)
        return TensorAnn([sym.substitute(d, mapping) for d in self.shape], self.dtype)

    def erased(self) -> "TensorAnn":
        return TensorAnn(dtype=self.dtype, ndim=self.ndim) if self.shape is not None else self

    def num_elements(self) -> sym.PrimExpr:
        """Element count as a symbolic expression (shape must be known)."""
        if self.shape is None:
            raise ValueError(f"cannot count elements of {self}")
        _require_resolved(self)
        return sym.shape_product(self.shape)

    def size_bytes(self) -> sym.PrimExpr:
        """Byte size as a symbolic expression (shape and dtype known)."""
        if self.dtype is None:
            raise ValueError(f"cannot size {self} without dtype")
        return self.num_elements() * dtypes.itemsize(self.dtype)

    def is_base_of(self, other: Annotation) -> bool:
        if not isinstance(other, TensorAnn):
            return False
        if self.dtype is not None and other.dtype != self.dtype:
            return False
        if self.shape is None:
            return self.ndim == -1 or self.ndim == other.ndim
        if other.shape is None:
            return False
        _require_resolved(self)
        _require_resolved(other)
        return _dims_equal(self.shape, other.shape)

    def possibly_matches(self, other: Annotation) -> bool:
        if isinstance(other, ObjectAnn):
            return True
        if not isinstance(other, TensorAnn):
            return False
        if self.dtype is not None and other.dtype is not None and self.dtype != other.dtype:
            return False
        if self.ndim != -1 and other.ndim != -1 and self.ndim != other.ndim:
            return False
        if self.shape is not None and other.shape is not None:
            return _dims_possibly_equal(self.shape, other.shape)
        return True

    def __str__(self) -> str:
        if self.shape is not None:
            dims = ", ".join(str(d) for d in self.shape)
            return f"Tensor(({dims}), {self.dtype!r})"
        if self.ndim == -1:
            return f"Tensor(ndim=None, dtype={self.dtype!r})"
        return f"Tensor(ndim={self.ndim}, dtype={self.dtype!r})"


class TupleAnn(Annotation):
    """Tuple of annotations."""

    def __init__(self, fields: Sequence[Annotation]):
        self.fields: Tuple[Annotation, ...] = tuple(fields)
        for field in self.fields:
            if not isinstance(field, Annotation):
                raise TypeError(f"tuple field must be an Annotation, got {field!r}")

    def resolve(self, ctx: sym.ShapeVarContext) -> "TupleAnn":
        return TupleAnn([f.resolve(ctx) for f in self.fields])

    def is_resolved(self) -> bool:
        return all(f.is_resolved() for f in self.fields)

    def free_sym_vars(self) -> List[sym.SymVar]:
        out, seen = [], set()
        for field in self.fields:
            for var in field.free_sym_vars():
                if var.key() not in seen:
                    seen.add(var.key())
                    out.append(var)
        return out

    def substitute_syms(self, mapping) -> "TupleAnn":
        return TupleAnn([f.substitute_syms(mapping) for f in self.fields])

    def erased(self) -> "TupleAnn":
        return TupleAnn([f.erased() for f in self.fields])

    def is_base_of(self, other: Annotation) -> bool:
        return (
            isinstance(other, TupleAnn)
            and len(self.fields) == len(other.fields)
            and all(a.is_base_of(b) for a, b in zip(self.fields, other.fields))
        )

    def possibly_matches(self, other: Annotation) -> bool:
        if isinstance(other, ObjectAnn):
            return True
        return (
            isinstance(other, TupleAnn)
            and len(self.fields) == len(other.fields)
            and all(a.possibly_matches(b) for a, b in zip(self.fields, other.fields))
        )

    def __str__(self) -> str:
        return "Tuple[" + ", ".join(str(f) for f in self.fields) + "]"


class CallableAnn(Annotation):
    """Function annotation: parameter and return annotations.

    Symbolic relations are isolated at function boundaries (§4.1): the
    variables appearing here are the callee's own, and calls are deduced by
    unifying against them (Fig. 7).
    """

    def __init__(self, params: Optional[Sequence[Annotation]], ret: Annotation, pure: bool = True):
        self.params = None if params is None else tuple(params)
        self.ret = ret
        self.pure = pure

    def resolve(self, ctx: sym.ShapeVarContext) -> "CallableAnn":
        # A callable's symbolic scope is its own: resolve against a fresh
        # context so signature vars never leak into the enclosing function.
        inner = sym.ShapeVarContext()
        params = None if self.params is None else [p.resolve(inner) for p in self.params]
        return CallableAnn(params, self.ret.resolve(inner), self.pure)

    def is_resolved(self) -> bool:
        params_ok = self.params is None or all(p.is_resolved() for p in self.params)
        return params_ok and self.ret.is_resolved()

    def erased(self) -> "CallableAnn":
        return self

    def substitute_syms(self, mapping) -> "CallableAnn":
        # Callee-scope variables are not the caller's; nothing to substitute.
        return self

    def is_base_of(self, other: Annotation) -> bool:
        if not isinstance(other, CallableAnn):
            return False
        if self.params is None:
            return True
        if other.params is None or len(self.params) != len(other.params):
            return False
        # Conservative: require identical structure.
        params_ok = all(
            a.possibly_matches(b) for a, b in zip(self.params, other.params)
        )
        return params_ok and self.ret.possibly_matches(other.ret)

    def possibly_matches(self, other: Annotation) -> bool:
        return isinstance(other, (ObjectAnn, CallableAnn))

    def __str__(self) -> str:
        if self.params is None:
            return f"Callable(..., {self.ret})"
        params = ", ".join(str(p) for p in self.params)
        return f"Callable([{params}], {self.ret})"


def unify_call(
    callee: CallableAnn, arg_anns: Sequence[Annotation]
) -> Annotation:
    """Derive the return annotation of a call from the callee signature.

    Implements the paper's interprocedural deduction (Fig. 7): bind each
    symbolic variable appearing *alone* as a dimension of a parameter
    annotation to the corresponding argument expression, substitute the
    bindings into the return annotation, and erase any return dimension
    whose variables remain unbound (the coarse-grained safety net).
    """
    if callee.params is None:
        return callee.ret.erased()
    if len(callee.params) != len(arg_anns):
        raise ValueError(
            f"call arity mismatch: signature has {len(callee.params)} params, "
            f"got {len(arg_anns)} arguments"
        )

    bindings: Dict[sym.SymVar, sym.PrimExpr] = {}

    def bind_dims(param_dims, arg_dims) -> None:
        for p_dim, a_dim in zip(param_dims, arg_dims):
            if isinstance(p_dim, sym.SymVar) and p_dim not in bindings:
                bindings[p_dim] = sym.PrimExpr.convert(a_dim)

    for param, arg in zip(callee.params, arg_anns):
        if isinstance(param, TensorAnn) and isinstance(arg, TensorAnn):
            if param.shape is not None and arg.shape is not None:
                _require_resolved(param)
                _require_resolved(arg)
                bind_dims(param.shape, arg.shape)
        elif isinstance(param, ShapeAnn) and isinstance(arg, ShapeAnn):
            if param.values is not None and arg.values is not None:
                _require_resolved(param)
                _require_resolved(arg)
                bind_dims(param.values, arg.values)
        elif isinstance(param, PrimAnn) and isinstance(arg, PrimAnn):
            if (
                param.value is not None
                and isinstance(param.value, sym.SymVar)
                and arg.value is not None
                and param.value not in bindings
            ):
                bindings[param.value] = arg.value
        elif isinstance(param, TupleAnn) and isinstance(arg, TupleAnn):
            for p_field, a_field in zip(param.fields, arg.fields):
                if isinstance(p_field, TensorAnn) and isinstance(a_field, TensorAnn):
                    if p_field.shape is not None and a_field.shape is not None:
                        bind_dims(p_field.shape, a_field.shape)
                elif isinstance(p_field, ShapeAnn) and isinstance(a_field, ShapeAnn):
                    if p_field.values is not None and a_field.values is not None:
                        bind_dims(p_field.values, a_field.values)

    return _substitute_or_erase(callee.ret, bindings)


def _substitute_or_erase(ann: Annotation, bindings) -> Annotation:
    """Substitute bindings into ``ann``; erase dims with unbound vars."""
    bound_keys = {var.key() for var in bindings}

    def dim_ok(dim: sym.PrimExpr) -> bool:
        return all(v.key() in bound_keys for v in sym.free_vars(dim))

    if isinstance(ann, TensorAnn):
        if ann.shape is None:
            return ann
        _require_resolved(ann)
        if all(dim_ok(d) for d in ann.shape):
            return TensorAnn(
                [sym.simplify(sym.substitute(d, bindings)) for d in ann.shape],
                ann.dtype,
            )
        return ann.erased()
    if isinstance(ann, ShapeAnn):
        if ann.values is None:
            return ann
        _require_resolved(ann)
        if all(dim_ok(v) for v in ann.values):
            return ShapeAnn(
                [sym.simplify(sym.substitute(v, bindings)) for v in ann.values]
            )
        return ann.erased()
    if isinstance(ann, PrimAnn):
        if ann.value is None:
            return ann
        if dim_ok(ann.value):
            return PrimAnn(ann.dtype, sym.simplify(sym.substitute(ann.value, bindings)))
        return ann.erased()
    if isinstance(ann, TupleAnn):
        return TupleAnn([_substitute_or_erase(f, bindings) for f in ann.fields])
    return ann
