"""BlockBuilder: the programmatic construction API for Relax IR.

Front-ends (the nn.Module interface, model importers) and compiler passes
build IR through this class.  It mirrors the ergonomics of the paper's
examples::

    bb = BlockBuilder()
    with bb.function("main", {"x": TensorAnn(("n", 128), "f32")}) as frame:
        x, = frame.params
        with bb.dataflow():
            lv0 = bb.emit(op.matmul(x, w))
            gv = bb.emit_output(lv0)
        bb.emit_func_output(gv)
    mod = bb.get()

Every ``emit`` runs forward deduction immediately, so annotations are
always present — construction-time deduction is half of the paper's §4.1
(the other half being re-deduction between passes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .. import sym
from .annotations import Annotation, ObjectAnn
from .deduction import check_match_cast, deduce_annotation
from .expr import (
    Binding,
    BindingBlock,
    Call,
    DataflowBlock,
    DataflowVar,
    Expr,
    Function,
    GlobalVar,
    MatchCast,
    SeqExpr,
    ShapeExpr,
    Var,
    VarBinding,
)
from .ir_module import IRModule
from . import op as _op
from ..obs import provenance as _prov


def _seed_provenance(expr: Expr, var: Var) -> None:
    """Stamp a freshly emitted operator call with its source-op site.

    Only user-facing graph-level ops are sites; the cross-level and memory
    primitives inherit provenance from the ops they lower.
    """
    from .expr import Op

    if not isinstance(expr, Call) or expr.provenance:
        return
    op = expr.op
    if not isinstance(op, Op):
        return
    if op.name.startswith(("memory.", "vm.")) or op in (
        _op.call_tir_op, _op.call_dps_library_op,
    ):
        return
    expr.provenance = (_prov.site(op.name, var.name_hint),)


class _FunctionFrame:
    """State for one function under construction."""

    def __init__(self, builder: "BlockBuilder", name: str, params: List[Var],
                 shape_ctx: sym.ShapeVarContext, ret_ann: Optional[Annotation]):
        self.builder = builder
        self.name = name
        self.params = params
        self.shape_ctx = shape_ctx
        self.ret_ann = ret_ann
        self.blocks: List[BindingBlock] = []
        self.pending: List[Binding] = []
        self.in_dataflow = False
        self.output: Optional[Expr] = None
        self.attrs: Dict = {}

    def __enter__(self) -> "_FunctionFrame":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.builder._abort_function()
            return
        self.builder._finish_function()


class _DataflowFrame:
    def __init__(self, builder: "BlockBuilder"):
        self.builder = builder

    def __enter__(self) -> "_DataflowFrame":
        self.builder._begin_dataflow()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.builder._end_dataflow()


class BlockBuilder:
    """Builds Relax functions binding-by-binding into an IRModule."""

    def __init__(self, mod: Optional[IRModule] = None):
        self.mod = mod if mod is not None else IRModule()
        self._frame: Optional[_FunctionFrame] = None
        self._name_counter: Dict[str, int] = {}

    # -- function scope ---------------------------------------------------------

    def function(
        self,
        name: str,
        params: Union[Dict[str, Annotation], Sequence[Var]],
        ret_ann: Optional[Annotation] = None,
        attrs: Optional[Dict] = None,
    ) -> _FunctionFrame:
        """Open a function scope (use as a context manager).

        ``params`` is either a dict of name → annotation (annotations may
        contain quoted string dims, resolved against this function's shape
        context) or a prebuilt list of Vars.
        """
        if self._frame is not None:
            raise RuntimeError("BlockBuilder does not support nested functions")
        ctx = sym.ShapeVarContext()
        if isinstance(params, dict):
            param_vars = [
                Var(pname, ann.resolve(ctx)) for pname, ann in params.items()
            ]
        else:
            param_vars = list(params)
            for var in param_vars:
                if var.ann is not None:
                    var.ann = var.ann.resolve(ctx)
        if ret_ann is not None:
            ret_ann = ret_ann.resolve(ctx)
        self._frame = _FunctionFrame(self, name, param_vars, ctx, ret_ann)
        if attrs:
            self._frame.attrs.update(attrs)
        return self._frame

    def shape_var(self, name: str) -> sym.SymVar:
        """The symbolic variable bound to ``name`` in the current signature."""
        return self._current_frame().shape_ctx.get(name)

    def dataflow(self) -> _DataflowFrame:
        """Open a dataflow block (side effect-free region, paper §3.1)."""
        return _DataflowFrame(self)

    # -- emission -----------------------------------------------------------------

    def emit(self, expr: Expr, name_hint: str = "lv") -> Var:
        """Bind ``expr`` to a fresh variable; runs forward deduction."""
        frame = self._current_frame()
        self._normalize(expr)
        ann = deduce_annotation(expr, self.lookup_signature)
        var_cls = DataflowVar if frame.in_dataflow else Var
        var = var_cls(self._fresh_name(name_hint), ann)
        _seed_provenance(expr, var)
        frame.pending.append(VarBinding(var, expr))
        return var

    def match_cast(self, value: Expr, target_ann: Annotation, name_hint: str = "lv") -> Var:
        """Emit a ``match_cast`` asserting ``target_ann`` for ``value``."""
        frame = self._current_frame()
        self._normalize(value)
        target_ann = target_ann.resolve(frame.shape_ctx)
        var_cls = DataflowVar if frame.in_dataflow else Var
        var = var_cls(self._fresh_name(name_hint), target_ann)
        binding = MatchCast(var, value, target_ann)
        check_match_cast(binding)
        frame.pending.append(binding)
        return var

    def emit_output(self, expr: Expr, name_hint: str = "gv") -> Var:
        """Bind a dataflow-block output (visible outside the block)."""
        frame = self._current_frame()
        if not frame.in_dataflow:
            raise RuntimeError("emit_output is only valid inside a dataflow block")
        self._normalize(expr)
        ann = deduce_annotation(expr, self.lookup_signature)
        var = Var(self._fresh_name(name_hint), ann)
        _seed_provenance(expr, var)
        frame.pending.append(VarBinding(var, expr))
        return var

    def emit_func_output(self, expr: Expr) -> None:
        """Set the function result (closes the last binding block)."""
        frame = self._current_frame()
        if frame.in_dataflow:
            raise RuntimeError("close the dataflow block before emitting the output")
        self._flush_block(dataflow=False)
        self._normalize(expr)
        frame.output = expr

    def call_tir(self, tir_func: GlobalVar, args: Sequence[Expr], out_ann,
                 sym_args: Optional[ShapeExpr] = None, name_hint: str = "lv") -> Var:
        """Convenience: build + emit a ``call_tir``."""
        return self.emit(_op.call_tir(tir_func, args, out_ann, sym_args), name_hint)

    def call_dps_library(self, func_name: str, args: Sequence[Expr], out_ann,
                         name_hint: str = "lv") -> Var:
        """Convenience: build + emit a ``call_dps_library``."""
        return self.emit(_op.call_dps_library(func_name, args, out_ann), name_hint)

    # -- module-level -----------------------------------------------------------

    def add_func(self, func: object, name: str) -> GlobalVar:
        """Add a function (Relax or TensorIR) to the module being built."""
        return self.mod.add_unique(name, func)

    def lookup_signature(self, gvar: GlobalVar):
        """Signature annotation of a module function (for call deduction)."""
        name = gvar.name_hint
        if name not in self.mod:
            return None
        func = self.mod[name]
        if isinstance(func, Function):
            return func.signature_ann()
        from ..tir.function import PrimFunc

        if isinstance(func, PrimFunc):
            return None
        return None

    def get(self) -> IRModule:
        """The built IRModule."""
        if self._frame is not None:
            raise RuntimeError("a function is still under construction")
        return self.mod

    # -- internals ----------------------------------------------------------------

    def _current_frame(self) -> _FunctionFrame:
        if self._frame is None:
            raise RuntimeError("no function scope open; use bb.function(...)")
        return self._frame

    def _fresh_name(self, hint: str) -> str:
        count = self._name_counter.get(hint, 0)
        self._name_counter[hint] = count + 1
        return hint if count == 0 else f"{hint}{count}"

    def _normalize(self, expr: Expr) -> None:
        """Fill in annotations of a freshly constructed expression tree."""
        if expr.ann is not None:
            return
        if isinstance(expr, Call):
            for arg in expr.args:
                self._normalize(arg)
            expr.ann = deduce_annotation(expr, self.lookup_signature)
            return
        from .expr import Tuple, TupleGetItem, If

        if isinstance(expr, Tuple):
            for field in expr.fields:
                self._normalize(field)
        elif isinstance(expr, TupleGetItem):
            self._normalize(expr.tuple_value)
        elif isinstance(expr, If):
            self._normalize(expr.cond)
            self._normalize(expr.true_branch)
            self._normalize(expr.false_branch)
        expr.ann = deduce_annotation(expr, self.lookup_signature)

    def _begin_dataflow(self) -> None:
        frame = self._current_frame()
        if frame.in_dataflow:
            raise RuntimeError("dataflow blocks do not nest")
        self._flush_block(dataflow=False)
        frame.in_dataflow = True

    def _end_dataflow(self) -> None:
        frame = self._current_frame()
        frame.in_dataflow = False
        self._flush_block(dataflow=True)

    def _flush_block(self, dataflow: bool) -> None:
        frame = self._current_frame()
        if not frame.pending:
            return
        cls = DataflowBlock if dataflow else BindingBlock
        frame.blocks.append(cls(frame.pending))
        frame.pending = []

    def _finish_function(self) -> None:
        frame = self._frame
        self._frame = None
        if frame.output is None:
            raise RuntimeError(
                f"function {frame.name!r} closed without emit_func_output"
            )
        body = SeqExpr(frame.blocks, frame.output)
        body.ann = frame.output.ann if frame.output.ann is not None else ObjectAnn()
        ret_ann = frame.ret_ann
        if ret_ann is None:
            ret_ann = body.ann
        func = Function(frame.params, body, ret_ann, frame.attrs, frame.name)
        func.ann = func.signature_ann()
        self.mod.add(frame.name, func)
        self._name_counter = {}

    def _abort_function(self) -> None:
        self._frame = None
