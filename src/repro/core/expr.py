"""Relax IR expressions — the graph-level language constructs (paper §3.1).

Relax is an imperative abstraction with first-class functions operating on
whole tensors.  The constructs here map one-to-one onto the paper's
elements:

* annotations on every value (``expr.ann``);
* **dataflow blocks** — side-effect-free straight-line regions that make
  transformations such as dead code elimination trivially safe;
* **function calls** within the graph level (``Call`` of a ``GlobalVar`` or
  closure ``Var``) and *across* levels: ``call_tir`` into loop-level tensor
  programs and ``call_dps_library`` into external libraries (§3.3);
* ``match_cast`` — the dynamic fallback that introduces fresh symbolic
  variables for data-dependent shapes (§3.2, Fig. 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import dtypes, sym
from .annotations import (
    Annotation,
    CallableAnn,
    ObjectAnn,
    PrimAnn,
    ShapeAnn,
    TensorAnn,
)


class Expr:
    """Base class of Relax expressions.

    ``ann`` is the structural annotation; the normalizer / deduction engine
    fills it in, and compiler passes keep it up to date so that symbolic
    shape information is preserved across every transformation.
    """

    def __init__(self):
        self.ann: Optional[Annotation] = None
        #: Source-op provenance chain (see :mod:`repro.obs.provenance`):
        #: site strings like ``"matmul@lv0"`` naming the graph-level op
        #: call(s) this expression descends from.  Seeded by the block
        #: builder, preserved by every pass, stamped onto VM instructions.
        self.provenance: Tuple[str, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover
        from .printer import format_expr

        return format_expr(self)


class Var(Expr):
    """A named graph-level variable."""

    _counter = 0

    def __init__(self, name_hint: str, ann: Optional[Annotation] = None):
        super().__init__()
        self.name_hint = name_hint
        self.ann = ann
        Var._counter += 1
        self._id = Var._counter


class DataflowVar(Var):
    """A variable bound inside a dataflow block (not visible outside it)."""


class GlobalVar(Expr):
    """Reference to a function in the enclosing IRModule."""

    def __init__(self, name_hint: str):
        super().__init__()
        self.name_hint = name_hint


class ExternFunc(Expr):
    """A named external (library) function, resolved by the runtime registry."""

    def __init__(self, global_symbol: str):
        super().__init__()
        self.global_symbol = global_symbol
        self.ann = ObjectAnn()


class Constant(Expr):
    """A tensor constant holding a NumPy array."""

    def __init__(self, data):
        super().__init__()
        self.data = np.asarray(data)
        dtype = dtypes.from_numpy(self.data.dtype)
        self.ann = TensorAnn(tuple(int(d) for d in self.data.shape), dtype)


class ShapeExpr(Expr):
    """A first-class symbolic shape value, e.g. ``shape(n, 4)``."""

    def __init__(self, values: Sequence[sym.ExprLike]):
        super().__init__()
        self.values: Tuple[sym.PrimExpr, ...] = tuple(
            sym.PrimExpr.convert(v) for v in values
        )
        self.ann = ShapeAnn(self.values)


class PrimValue(Expr):
    """A scalar integer value lifted into the graph level."""

    def __init__(self, value: sym.ExprLike, dtype: str = "i64"):
        super().__init__()
        self.value = sym.PrimExpr.convert(value)
        self.dtype = dtypes.check_dtype(dtype)
        self.ann = PrimAnn(dtype, self.value)


class Tuple(Expr):
    """Tuple construction."""

    def __init__(self, fields: Sequence[Expr]):
        super().__init__()
        self.fields: List[Expr] = list(fields)


class TupleGetItem(Expr):
    """Projection out of a tuple value."""

    def __init__(self, tuple_value: Expr, index: int):
        super().__init__()
        self.tuple_value = tuple_value
        self.index = index


class Call(Expr):
    """A call — to an operator, a graph-level function, or across levels.

    ``op`` may be an :class:`Op` (graph-level operator, including the
    cross-level primitives ``call_tir`` / ``call_dps_library``), a
    ``GlobalVar`` (subgraph function call), a ``Var`` with a Callable
    annotation (first-class function value), or an ``ExternFunc``.

    ``sinfo_args`` carries annotation arguments; for the cross-level call
    primitives this is the output annotation that flows shape information
    from the graph level into tensor programs (paper Fig. 4/5).
    """

    def __init__(
        self,
        op: Expr,
        args: Sequence[Expr],
        attrs: Optional[Dict] = None,
        sinfo_args: Sequence[Annotation] = (),
    ):
        super().__init__()
        self.op = op
        self.args: List[Expr] = list(args)
        self.attrs: Dict = dict(attrs) if attrs else {}
        self.sinfo_args: Tuple[Annotation, ...] = tuple(sinfo_args)


class Op(Expr):
    """A graph-level operator (registered in :mod:`repro.ops.registry`)."""

    _registry: Dict[str, "Op"] = {}

    def __init__(self, name: str, *, deduce=None, legalize=None, attrs_schema=()):
        super().__init__()
        self.name = name
        self.deduce = deduce
        self.legalize = legalize
        self.attrs_schema = tuple(attrs_schema)
        self.ann = ObjectAnn()

    @staticmethod
    def register(name: str, *, deduce=None, legalize=None, attrs_schema=()) -> "Op":
        if name in Op._registry:
            raise ValueError(f"operator {name!r} already registered")
        op = Op(name, deduce=deduce, legalize=legalize, attrs_schema=attrs_schema)
        Op._registry[name] = op
        return op

    @staticmethod
    def get(name: str) -> "Op":
        if name not in Op._registry:
            raise KeyError(f"unknown operator {name!r}")
        return Op._registry[name]

    @staticmethod
    def exists(name: str) -> bool:
        return name in Op._registry


class Binding:
    """Base class for bindings inside binding blocks."""

    var: Var
    value: Expr


class VarBinding(Binding):
    """``var = value``"""

    def __init__(self, var: Var, value: Expr):
        self.var = var
        self.value = value


class MatchCast(Binding):
    """``var = match_cast(value, ann)`` — assert a finer annotation.

    New symbolic variables may be introduced by the target annotation; the
    compiler emits a runtime check that the value actually matches (§3.2).
    """

    def __init__(self, var: Var, value: Expr, target_ann: Annotation):
        self.var = var
        self.value = value
        self.target_ann = target_ann


class BindingBlock:
    """Straight-line sequence of bindings (may contain impure calls)."""

    is_dataflow = False

    def __init__(self, bindings: Sequence[Binding]):
        self.bindings: List[Binding] = list(bindings)


class DataflowBlock(BindingBlock):
    """A side-effect-free region without control flow (paper §3.1).

    Inside a dataflow block every binding is pure, so passes may freely
    reorder or delete unused computations.
    """

    is_dataflow = True


class SeqExpr(Expr):
    """A sequence of binding blocks followed by a result expression."""

    def __init__(self, blocks: Sequence[BindingBlock], body: Expr):
        super().__init__()
        self.blocks: List[BindingBlock] = list(blocks)
        self.body = body


class If(Expr):
    """Conditional at the graph level (outside dataflow blocks)."""

    def __init__(self, cond: Expr, true_branch: Expr, false_branch: Expr):
        super().__init__()
        self.cond = cond
        self.true_branch = true_branch
        self.false_branch = false_branch


class Function(Expr):
    """A graph-level function.

    The signature (parameter and return annotations) is the unit of
    interprocedural shape deduction: calls are deduced from the signature
    alone, and the signature generates lightweight runtime checks at the
    boundary (§4.1).
    """

    def __init__(
        self,
        params: Sequence[Var],
        body: Expr,
        ret_ann: Optional[Annotation] = None,
        attrs: Optional[Dict] = None,
        name: Optional[str] = None,
    ):
        super().__init__()
        self.params: List[Var] = list(params)
        self.body = body
        self.ret_ann = ret_ann
        self.attrs: Dict = dict(attrs) if attrs else {}
        self.name = name

    def signature_ann(self) -> CallableAnn:
        params = [p.ann if p.ann is not None else ObjectAnn() for p in self.params]
        ret = self.ret_ann if self.ret_ann is not None else ObjectAnn()
        return CallableAnn(params, ret)


# --- convenience constructors mirroring the paper's surface syntax ---------


def const(data, dtype: Optional[str] = None) -> Constant:
    """Create a tensor constant (optionally casting to ``dtype``)."""
    array = np.asarray(data)
    if dtype is not None:
        array = array.astype(dtypes.to_numpy(dtype))
    return Constant(array)


def shape(*values: sym.ExprLike) -> ShapeExpr:
    """``shape(n, 4)`` — a first-class symbolic shape value."""
    return ShapeExpr(values)


def sym_var(name: str = "v") -> sym.SymVar:
    """Introduce a symbolic shape variable (paper's ``sym_var()``)."""
    return sym.SymVar(name)
