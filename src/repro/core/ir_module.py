"""IRModule: the unit of cross-level compilation.

An IRModule maps global names to functions of *different abstraction
levels* side by side — graph-level Relax :class:`~repro.core.expr.Function`
and loop-level :class:`~repro.tir.PrimFunc` — which is what makes the
paper's cross-level transformations (partial lowering, analysis feedback,
joint graph/tensor-program rewrites) expressible as ordinary passes over a
single object.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .expr import Function, GlobalVar


class IRModule:
    """Mapping from global names to functions (Relax or TensorIR)."""

    def __init__(self, functions: Optional[Dict[str, object]] = None):
        self._functions: Dict[str, object] = {}
        self._global_vars: Dict[str, GlobalVar] = {}
        if functions:
            for name, func in functions.items():
                self.add(name, func)

    # -- construction --------------------------------------------------------

    def add(self, name: str, func: object) -> GlobalVar:
        """Add (or replace) a function under ``name``; returns its GlobalVar."""
        self._functions[name] = func
        if name not in self._global_vars:
            self._global_vars[name] = GlobalVar(name)
        if isinstance(func, Function) and func.name is None:
            func.name = name
        return self._global_vars[name]

    def add_unique(self, name_hint: str, func: object) -> GlobalVar:
        """Add under a fresh name derived from ``name_hint``."""
        name = name_hint
        counter = 1
        while name in self._functions:
            name = f"{name_hint}_{counter}"
            counter += 1
        return self.add(name, func)

    def remove(self, name: str) -> None:
        if name not in self._functions:
            raise KeyError(f"no function named {name!r}")
        del self._functions[name]
        del self._global_vars[name]

    # -- lookup ----------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __getitem__(self, key) -> object:
        if isinstance(key, GlobalVar):
            key = key.name_hint
        if key not in self._functions:
            raise KeyError(f"no function named {key!r}")
        return self._functions[key]

    def get_global_var(self, name: str) -> GlobalVar:
        if name not in self._global_vars:
            raise KeyError(f"no function named {name!r}")
        return self._global_vars[name]

    def functions(self) -> Iterator[Tuple[str, object]]:
        """Iterate (name, function) pairs in deterministic (sorted) order."""
        for name in sorted(self._functions):
            yield name, self._functions[name]

    def relax_functions(self) -> Iterator[Tuple[str, Function]]:
        for name, func in self.functions():
            if isinstance(func, Function):
                yield name, func

    def tir_functions(self) -> Iterator[Tuple[str, object]]:
        from ..tir.function import PrimFunc

        for name, func in self.functions():
            if isinstance(func, PrimFunc):
                yield name, func

    def __len__(self) -> int:
        return len(self._functions)

    # -- copying ----------------------------------------------------------------

    def copy(self) -> "IRModule":
        """Shallow copy: new tables, shared function objects.

        Passes follow a functional discipline: they build new function
        objects rather than mutating, so a shallow copy is the right unit.
        """
        new = IRModule()
        new._functions = dict(self._functions)
        new._global_vars = dict(self._global_vars)
        return new

    def __repr__(self) -> str:  # pragma: no cover
        from .printer import format_module

        return format_module(self)
