"""Text printer for Relax IR, in the paper's surface syntax.

Produces output close to the paper's figures::

    def main(x: Tensor((n, 128), "f32"), w: Tensor((128, 256), "f32")):
      with dataflow():
        lv0: Tensor((n, 256), "f32") = call_tir(mm, [x, w], Tensor((n, 256), "f32"))
        gv: Tensor((n, 256), "f32") = lv0
      return gv

Printing is for humans (examples, debugging, docs); tests assert on
structure, not on exact text.
"""

from __future__ import annotations

from typing import List

from .expr import (
    BindingBlock,
    Call,
    Constant,
    Expr,
    ExternFunc,
    Function,
    GlobalVar,
    If,
    MatchCast,
    Op,
    PrimValue,
    SeqExpr,
    ShapeExpr,
    Tuple,
    TupleGetItem,
    Var,
    VarBinding,
)


def format_expr(expr: Expr) -> str:
    """One-line textual form of an expression."""
    if isinstance(expr, Var):
        return expr.name_hint
    if isinstance(expr, GlobalVar):
        return f"@{expr.name_hint}"
    if isinstance(expr, ExternFunc):
        return f'"{expr.global_symbol}"'
    if isinstance(expr, Op):
        return expr.name
    if isinstance(expr, Constant):
        if expr.data.ndim == 0:
            return f"const({expr.data.item()!r}, {expr.ann.dtype!r})"
        dims = "x".join(str(d) for d in expr.data.shape)
        return f"const(<{dims} {expr.ann.dtype}>)"
    if isinstance(expr, ShapeExpr):
        inner = ", ".join(str(v) for v in expr.values)
        return f"shape({inner})"
    if isinstance(expr, PrimValue):
        return f"prim({expr.value})"
    if isinstance(expr, Tuple):
        return "(" + ", ".join(format_expr(f) for f in expr.fields) + ")"
    if isinstance(expr, TupleGetItem):
        return f"{format_expr(expr.tuple_value)}[{expr.index}]"
    if isinstance(expr, Call):
        head = format_expr(expr.op)
        args = ", ".join(format_expr(a) for a in expr.args)
        parts = [args] if args else []
        if expr.sinfo_args:
            parts.append(", ".join(str(s) for s in expr.sinfo_args))
        if expr.attrs:
            attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(expr.attrs.items()))
            parts.append(attrs)
        return f"{head}(" + ", ".join(parts) + ")"
    if isinstance(expr, If):
        return (
            f"if {format_expr(expr.cond)} then {{...}} else {{...}}"
        )
    if isinstance(expr, SeqExpr):
        return "{...}"
    if isinstance(expr, Function):
        return format_function(expr)
    return f"<{type(expr).__name__}>"


def format_function(func: Function, name: str = None) -> str:
    """Multi-line textual form of a function."""
    name = name or func.name or "fn"
    params = ", ".join(
        f"{p.name_hint}: {p.ann}" if p.ann is not None else p.name_hint
        for p in func.params
    )
    header = f"def {name}({params})"
    if func.ret_ann is not None:
        header += f" -> {func.ret_ann}"
    header += ":"
    lines = [header]
    if func.attrs:
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(func.attrs.items()))
        lines.append(f"  # attrs: {attrs}")
    body = func.body
    if isinstance(body, SeqExpr):
        for block in body.blocks:
            lines.extend(_format_block(block, indent=2))
        lines.append(f"  return {format_expr(body.body)}")
    else:
        lines.append(f"  return {format_expr(body)}")
    return "\n".join(lines)


def _prov_comment(binding) -> str:
    """Provenance annotation for a binding, shown once lowering has made
    the source op non-obvious (fused groups, call_tir, memory ops)."""
    value = binding.value
    chain = getattr(value, "provenance", ())
    if not chain:
        return ""
    if (
        len(chain) == 1
        and isinstance(value, Call)
        and isinstance(value.op, Op)
        and chain[0] == f"{value.op.name}@{binding.var.name_hint}"
    ):
        return ""  # freshly emitted op call: the binding already says it
    return f"  # from {'+'.join(chain)}"


def _format_block(block: BindingBlock, indent: int) -> List[str]:
    pad = " " * indent
    lines = []
    if block.is_dataflow:
        lines.append(f"{pad}with dataflow():")
        inner = pad + "  "
    else:
        inner = pad
    for binding in block.bindings:
        if isinstance(binding, MatchCast):
            rhs = f"match_cast({format_expr(binding.value)}, {binding.target_ann})"
        elif isinstance(binding, VarBinding):
            rhs = format_expr(binding.value)
        else:  # pragma: no cover - future binding kinds
            rhs = f"<{type(binding).__name__}>"
        var = binding.var
        ann = f": {var.ann}" if var.ann is not None else ""
        lines.append(f"{inner}{var.name_hint}{ann} = {rhs}{_prov_comment(binding)}")
    if block.is_dataflow and len(lines) == 1:
        lines.append(f"{pad}  pass")
    return lines


def format_module(mod) -> str:
    """Multi-line textual form of a whole IRModule (all levels)."""
    from ..tir.function import PrimFunc
    from ..tir.printer import format_prim_func

    chunks = []
    for name, func in mod.functions():
        if isinstance(func, Function):
            chunks.append(format_function(func, name))
        elif isinstance(func, PrimFunc):
            chunks.append("@tensorir_function\n" + format_prim_func(func, name))
        else:  # pragma: no cover
            chunks.append(f"# <{type(func).__name__}> {name}")
    return "\n\n".join(chunks)
