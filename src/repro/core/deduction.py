"""Forward shape-annotation deduction (paper §4.1).

Relax deduces the annotation of every expression from its inputs — forward,
local, and linear in program size — so it can rerun cheaply between compiler
passes and keep symbolic shape information alive through every incremental
transformation.  The rules:

* each operator has a registered deduction rule taking input annotations
  (and values, e.g. the target shape of ``reshape``);
* ``call_tir`` / ``call_dps_library`` read the output annotation off their
  arguments;
* subgraph-function calls are deduced from the callee *signature only*
  (isolated symbolic relations at function boundaries), by unifying the
  signature's symbolic variables against argument annotations (Fig. 7);
* coarse-grained annotations are the safety net whenever more specific
  information cannot be inferred;
* ``match_cast`` installs the asserted annotation (the runtime check is
  generated at lowering).
"""

from __future__ import annotations

from typing import Callable, Optional

from .annotations import (
    Annotation,
    CallableAnn,
    ObjectAnn,
    TensorAnn,
    TupleAnn,
    unify_call,
)
from .expr import (
    Call,
    Constant,
    Expr,
    ExternFunc,
    Function,
    GlobalVar,
    If,
    MatchCast,
    Op,
    PrimValue,
    SeqExpr,
    ShapeExpr,
    Tuple,
    TupleGetItem,
    Var,
)

#: Resolves a GlobalVar to the signature annotation of the named function.
SignatureLookup = Callable[[GlobalVar], Optional[CallableAnn]]


class DeductionError(Exception):
    """Raised when an expression's annotation cannot be deduced at all."""


def join_annotations(a: Annotation, b: Annotation) -> Annotation:
    """Least informative annotation covering both (used for If branches)."""
    if a.is_base_of(b):
        return a
    if b.is_base_of(a):
        return b
    if isinstance(a, TensorAnn) and isinstance(b, TensorAnn):
        dtype = a.dtype if a.dtype == b.dtype else None
        ndim = a.ndim if a.ndim == b.ndim else -1
        if ndim == -1:
            return TensorAnn(dtype=dtype)
        return TensorAnn(dtype=dtype, ndim=ndim)
    if isinstance(a, TupleAnn) and isinstance(b, TupleAnn) and len(a.fields) == len(b.fields):
        return TupleAnn([join_annotations(x, y) for x, y in zip(a.fields, b.fields)])
    return ObjectAnn()


def deduce_annotation(
    expr: Expr, lookup: Optional[SignatureLookup] = None
) -> Annotation:
    """Annotation of ``expr``, assuming sub-expression annotations are set."""
    if isinstance(expr, (Constant, ShapeExpr, PrimValue, ExternFunc)):
        return expr.ann
    if isinstance(expr, Var):
        if expr.ann is None:
            return ObjectAnn()
        return expr.ann
    if isinstance(expr, GlobalVar):
        if lookup is not None:
            signature = lookup(expr)
            if signature is not None:
                return signature
        return ObjectAnn()
    if isinstance(expr, Tuple):
        return TupleAnn([_ann_of(f) for f in expr.fields])
    if isinstance(expr, TupleGetItem):
        tup_ann = _ann_of(expr.tuple_value)
        if isinstance(tup_ann, TupleAnn):
            if not 0 <= expr.index < len(tup_ann.fields):
                raise DeductionError(
                    f"tuple index {expr.index} out of range for {tup_ann}"
                )
            return tup_ann.fields[expr.index]
        return ObjectAnn()
    if isinstance(expr, Call):
        return deduce_call(expr, lookup)
    if isinstance(expr, If):
        return join_annotations(_ann_of(expr.true_branch), _ann_of(expr.false_branch))
    if isinstance(expr, SeqExpr):
        return _ann_of(expr.body)
    if isinstance(expr, Function):
        return expr.signature_ann()
    if isinstance(expr, Op):
        return ObjectAnn()
    raise DeductionError(f"cannot deduce annotation for {type(expr).__name__}")


def deduce_call(call: Call, lookup: Optional[SignatureLookup] = None) -> Annotation:
    """Forward deduction for a call expression."""
    op = call.op
    if isinstance(op, Op):
        if op.deduce is None:
            return ObjectAnn()
        return op.deduce(call)
    if isinstance(op, GlobalVar):
        signature = lookup(op) if lookup is not None else None
        if signature is None:
            return ObjectAnn()
        return unify_call(signature, [_ann_of(a) for a in call.args])
    if isinstance(op, Var):
        callee_ann = op.ann
        if isinstance(callee_ann, CallableAnn):
            return unify_call(callee_ann, [_ann_of(a) for a in call.args])
        return ObjectAnn()
    if isinstance(op, ExternFunc):
        # Raw extern calls (not DPS) are opaque unless annotated explicitly.
        if call.sinfo_args:
            if len(call.sinfo_args) == 1:
                return call.sinfo_args[0]
            return TupleAnn(call.sinfo_args)
        return ObjectAnn()
    if isinstance(op, Function):
        return unify_call(op.signature_ann(), [_ann_of(a) for a in call.args])
    raise DeductionError(f"cannot deduce call with callee {type(op).__name__}")


def check_match_cast(binding: MatchCast) -> None:
    """Static sanity check for a match_cast (the dynamic check comes later).

    A match_cast may *refine* (assert more) or *coarsen*; it is rejected
    only when the value's annotation and the target are provably
    incompatible, e.g. casting an f32 tensor to an i32 tensor.
    """
    value_ann = _ann_of(binding.value)
    if not binding.target_ann.possibly_matches(value_ann):
        raise DeductionError(
            f"match_cast target {binding.target_ann} is provably incompatible "
            f"with value annotation {value_ann}"
        )


def _ann_of(expr: Expr) -> Annotation:
    return expr.ann if expr.ann is not None else ObjectAnn()


def rededuce_function(
    func: Function, lookup: Optional[SignatureLookup] = None
) -> None:
    """Recompute binding annotations through ``func`` in place.

    Used between passes so newly introduced variables get annotations
    deduced locally (§4.1: deduction runs for every pass, hence forward and
    linear-time).
    """

    def visit_expr(expr: Expr) -> None:
        if isinstance(expr, SeqExpr):
            for block in expr.blocks:
                for binding in block.bindings:
                    visit_expr(binding.value)
                    if isinstance(binding, MatchCast):
                        check_match_cast(binding)
                        binding.var.ann = binding.target_ann
                    else:
                        binding.var.ann = deduce_annotation(binding.value, lookup)
            visit_expr(expr.body)
            expr.ann = _ann_of(expr.body)
            return
        if isinstance(expr, Call):
            for arg in expr.args:
                visit_expr(arg)
            expr.ann = deduce_call(expr, lookup)
            return
        if isinstance(expr, Tuple):
            for field in expr.fields:
                visit_expr(field)
            expr.ann = deduce_annotation(expr, lookup)
            return
        if isinstance(expr, TupleGetItem):
            visit_expr(expr.tuple_value)
            expr.ann = deduce_annotation(expr, lookup)
            return
        if isinstance(expr, If):
            visit_expr(expr.cond)
            visit_expr(expr.true_branch)
            visit_expr(expr.false_branch)
            expr.ann = deduce_annotation(expr, lookup)
            return
        if expr.ann is None:
            expr.ann = deduce_annotation(expr, lookup)

    visit_expr(func.body)
