"""Visitor / mutator infrastructure for Relax IR.

Passes are written against these two classes: :class:`ExprVisitor` for
analyses and :class:`ExprMutator` for transformations.  The mutator keeps a
variable remap table so rebuilt bindings rewire uses automatically, and
preserves annotations on unchanged nodes — keeping symbolic shape
information alive through every transformation is a core requirement of the
paper's design (§3.1).
"""

from __future__ import annotations

from typing import Dict

from .expr import (
    Binding,
    BindingBlock,
    Call,
    Constant,
    DataflowBlock,
    DataflowVar,
    Expr,
    ExternFunc,
    Function,
    GlobalVar,
    If,
    MatchCast,
    Op,
    PrimValue,
    SeqExpr,
    ShapeExpr,
    Tuple,
    TupleGetItem,
    Var,
    VarBinding,
)


class ExprVisitor:
    """Read-only traversal; override ``visit_*`` methods as needed."""

    def visit(self, expr: Expr) -> None:
        method = getattr(self, f"visit_{type(expr).__name__.lower()}", None)
        if method is not None:
            method(expr)
        else:
            self.generic_visit(expr)

    def generic_visit(self, expr: Expr) -> None:
        if isinstance(expr, Call):
            self.visit(expr.op)
            for arg in expr.args:
                self.visit(arg)
        elif isinstance(expr, Tuple):
            for field in expr.fields:
                self.visit(field)
        elif isinstance(expr, TupleGetItem):
            self.visit(expr.tuple_value)
        elif isinstance(expr, SeqExpr):
            for block in expr.blocks:
                self.visit_block(block)
            self.visit(expr.body)
        elif isinstance(expr, If):
            self.visit(expr.cond)
            self.visit(expr.true_branch)
            self.visit(expr.false_branch)
        elif isinstance(expr, Function):
            for param in expr.params:
                self.visit(param)
            self.visit(expr.body)
        # Leaves: Var, GlobalVar, Constant, ShapeExpr, PrimValue, Op, ExternFunc.

    def visit_block(self, block: BindingBlock) -> None:
        for binding in block.bindings:
            self.visit_binding(binding)

    def visit_binding(self, binding: Binding) -> None:
        self.visit(binding.value)
        self.visit(binding.var)


class ExprMutator:
    """Rebuild-on-change traversal with automatic variable rewiring.

    ``visit(expr)`` returns the (possibly new) expression.  When a binding's
    value changes, the mutator creates a fresh bound variable with the same
    name hint and records it in ``var_remap`` so later uses resolve to the
    new variable.  Subclasses typically override ``visit_call`` (rewrites)
    or ``rewrite_binding_value``.
    """

    def __init__(self):
        self.var_remap: Dict[int, Var] = {}

    # -- public entry points ---------------------------------------------------

    def visit(self, expr: Expr) -> Expr:
        method = getattr(self, f"visit_{type(expr).__name__.lower()}", None)
        if method is not None:
            return method(expr)
        return self.generic_visit(expr)

    def visit_function(self, func: Function) -> Function:
        new_params = [self.visit(p) for p in func.params]
        new_body = self.visit(func.body)
        if new_body is func.body and all(
            a is b for a, b in zip(new_params, func.params)
        ):
            return func
        out = Function(new_params, new_body, func.ret_ann, func.attrs, func.name)
        out.ann = func.ann
        return out

    # -- default traversals ------------------------------------------------------

    def generic_visit(self, expr: Expr) -> Expr:
        if isinstance(expr, (Var,)):
            return self.var_remap.get(expr._id, expr)
        if isinstance(expr, (GlobalVar, Constant, ShapeExpr, PrimValue, Op, ExternFunc)):
            return expr
        if isinstance(expr, Call):
            return self.visit_call(expr)
        if isinstance(expr, Tuple):
            new_fields = [self.visit(f) for f in expr.fields]
            if all(a is b for a, b in zip(new_fields, expr.fields)):
                return expr
            out = Tuple(new_fields)
            out.ann = expr.ann
            out.provenance = expr.provenance
            return out
        if isinstance(expr, TupleGetItem):
            new_tuple = self.visit(expr.tuple_value)
            if new_tuple is expr.tuple_value:
                return expr
            out = TupleGetItem(new_tuple, expr.index)
            out.ann = expr.ann
            return out
        if isinstance(expr, SeqExpr):
            return self.visit_seq(expr)
        if isinstance(expr, If):
            new_cond = self.visit(expr.cond)
            new_true = self.visit(expr.true_branch)
            new_false = self.visit(expr.false_branch)
            if (
                new_cond is expr.cond
                and new_true is expr.true_branch
                and new_false is expr.false_branch
            ):
                return expr
            out = If(new_cond, new_true, new_false)
            out.ann = expr.ann
            return out
        if isinstance(expr, Function):
            return self.visit_function(expr)
        raise TypeError(f"unhandled expression type {type(expr).__name__}")

    def visit_call(self, call: Call) -> Expr:
        new_op = self.visit(call.op)
        new_args = [self.visit(a) for a in call.args]
        if new_op is call.op and all(a is b for a, b in zip(new_args, call.args)):
            return call
        out = Call(new_op, new_args, call.attrs, call.sinfo_args)
        out.ann = call.ann
        out.provenance = call.provenance
        return out

    def visit_seq(self, seq: SeqExpr) -> Expr:
        new_blocks = [self.visit_block(b) for b in seq.blocks]
        new_body = self.visit(seq.body)
        if new_body is seq.body and all(a is b for a, b in zip(new_blocks, seq.blocks)):
            return seq
        out = SeqExpr(new_blocks, new_body)
        out.ann = seq.ann
        return out

    def visit_block(self, block: BindingBlock) -> BindingBlock:
        new_bindings = []
        changed = False
        for binding in block.bindings:
            new_binding = self.visit_binding(binding)
            if new_binding is None:
                changed = True
                continue
            if isinstance(new_binding, list):
                new_bindings.extend(new_binding)
                changed = True
                continue
            new_bindings.append(new_binding)
            if new_binding is not binding:
                changed = True
        if not changed:
            return block
        cls = DataflowBlock if block.is_dataflow else BindingBlock
        return cls(new_bindings)

    def visit_binding(self, binding: Binding):
        """Return the new binding, a list of bindings, or None to drop it."""
        if isinstance(binding, VarBinding):
            new_value = self.visit(binding.value)
            if new_value is binding.value:
                return binding
            new_var = self.rebind(binding.var, new_value)
            return VarBinding(new_var, new_value)
        if isinstance(binding, MatchCast):
            new_value = self.visit(binding.value)
            if new_value is binding.value:
                return binding
            new_var = self.rebind(binding.var, new_value, ann=binding.target_ann)
            return MatchCast(new_var, new_value, binding.target_ann)
        raise TypeError(f"unhandled binding type {type(binding).__name__}")

    def rebind(self, old_var: Var, new_value: Expr, ann=None) -> Var:
        """Fresh variable for a changed binding, recorded for later uses."""
        cls = DataflowVar if isinstance(old_var, DataflowVar) else Var
        new_ann = ann if ann is not None else (
            new_value.ann if new_value.ann is not None else old_var.ann
        )
        new_var = cls(old_var.name_hint, new_ann)
        self.var_remap[old_var._id] = new_var
        return new_var
