"""Well-formedness checker for Relax IR.

Verifies the structural invariants the paper's abstraction relies on, so
that every pass can assume (and tests can assert) them:

* every variable use is dominated by its binding (or is a parameter);
* DataflowVars never escape their dataflow block;
* dataflow blocks contain only pure operations — no ``If``, no calls to
  impure externs (purity is what licenses free rewriting, §3.1);
* cross-level calls are structurally sound: ``call_tir`` callees name
  tensor programs in the module, output annotations have shape+dtype;
* every symbolic variable used in a binding annotation is *in scope*:
  introduced by the function signature, a match_cast, or a prior binding.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .. import sym
from .annotations import Annotation
from .expr import (
    Call,
    Constant,
    DataflowVar,
    Expr,
    ExternFunc,
    Function,
    GlobalVar,
    If,
    MatchCast,
    Op,
    PrimValue,
    SeqExpr,
    ShapeExpr,
    Tuple,
    TupleGetItem,
    Var,
)
from .ir_module import IRModule
from .op import call_dps_library_op, call_tir_op


class WellFormedError(Exception):
    """An IR invariant is violated."""


def well_formed(mod: IRModule, check_sym_scope: bool = True) -> bool:
    """Check the module; raises :class:`WellFormedError` on violation."""
    for name, func in mod.relax_functions():
        _check_function(mod, name, func, check_sym_scope)
    return True


def _check_function(mod, name: str, func: Function, check_sym_scope: bool) -> None:
    in_scope: Set[int] = {p._id for p in func.params}
    sym_scope: Set = set()
    for param in func.params:
        if param.ann is not None:
            for var in param.ann.free_sym_vars():
                sym_scope.add(var.key())

    def err(msg: str) -> None:
        raise WellFormedError(f"in function {name!r}: {msg}")

    def check_ann_scope(ann: Optional[Annotation], where: str) -> None:
        if not check_sym_scope or ann is None:
            return
        if not ann.is_resolved():
            err(f"{where}: annotation {ann} has unresolved quoted dims")
        for var in ann.free_sym_vars():
            if var.key() not in sym_scope:
                err(f"{where}: symbolic variable '{var.name}' is not in scope")

    def visit_value(expr: Expr, in_dataflow: bool) -> None:
        if isinstance(expr, Var):
            if expr._id not in in_scope:
                err(f"use of unbound variable '{expr.name_hint}'")
            return
        if isinstance(expr, GlobalVar):
            if expr.name_hint not in mod:
                err(f"reference to unknown global '@{expr.name_hint}'")
            return
        if isinstance(expr, (Constant, ShapeExpr, PrimValue, Op, ExternFunc)):
            if check_sym_scope and isinstance(expr, ShapeExpr):
                for value in expr.values:
                    for var in sym.free_vars(value):
                        if var.key() not in sym_scope:
                            err(
                                f"shape expression uses out-of-scope symbolic "
                                f"variable '{var.name}'"
                            )
            return
        if isinstance(expr, Tuple):
            for field in expr.fields:
                visit_value(field, in_dataflow)
            return
        if isinstance(expr, TupleGetItem):
            visit_value(expr.tuple_value, in_dataflow)
            return
        if isinstance(expr, Call):
            _check_call(expr, err)
            visit_value(expr.op, in_dataflow)
            for arg in expr.args:
                visit_value(arg, in_dataflow)
            return
        if isinstance(expr, If):
            if in_dataflow:
                err("control flow (If) is not allowed inside a dataflow block")
            visit_value(expr.cond, in_dataflow)
            visit_seq_or_leaf(expr.true_branch)
            visit_seq_or_leaf(expr.false_branch)
            return
        if isinstance(expr, SeqExpr):
            err("nested SeqExpr must appear only as If branches or function body")
        if isinstance(expr, Function):
            err("nested function literals are not supported")

    def visit_seq_or_leaf(expr: Expr) -> None:
        if isinstance(expr, SeqExpr):
            visit_seq(expr)
        else:
            visit_value(expr, in_dataflow=False)

    def visit_seq(seq: SeqExpr) -> None:
        dataflow_vars_here: List[int] = []
        for block in seq.blocks:
            for binding in block.bindings:
                visit_value(binding.value, block.is_dataflow)
                if isinstance(binding.var, DataflowVar) and not block.is_dataflow:
                    err(
                        f"DataflowVar '{binding.var.name_hint}' bound outside "
                        "a dataflow block"
                    )
                in_scope.add(binding.var._id)
                if isinstance(binding.var, DataflowVar):
                    dataflow_vars_here.append(binding.var._id)
                if isinstance(binding, MatchCast):
                    # match_cast introduces new symbolic variables (§3.2).
                    if binding.target_ann is not None:
                        if check_sym_scope and not binding.target_ann.is_resolved():
                            err("match_cast target has unresolved quoted dims")
                        for var in binding.target_ann.free_sym_vars():
                            sym_scope.add(var.key())
                elif binding.var.ann is not None:
                    check_ann_scope(
                        binding.var.ann, f"binding of '{binding.var.name_hint}'"
                    )
            if block.is_dataflow:
                # DataflowVars die at the end of their block.
                for var_id in dataflow_vars_here:
                    in_scope.discard(var_id)
                dataflow_vars_here = []
        visit_value(seq.body, in_dataflow=False)

    if isinstance(func.body, SeqExpr):
        visit_seq(func.body)
    else:
        visit_value(func.body, in_dataflow=False)
    # Checked last: match_cast bindings in the body may introduce the
    # symbolic variables the return annotation mentions (§3.2).
    check_ann_scope(func.ret_ann, "return annotation")


def _check_call(call: Call, err) -> None:
    if call.op is call_tir_op or call.op is call_dps_library_op:
        if len(call.args) < 2 or not isinstance(call.args[1], Tuple):
            err(f"malformed {call.op.name}: expected (callee, Tuple(args), ...)")
        callee = call.args[0]
        if call.op is call_tir_op and not isinstance(callee, GlobalVar):
            err("call_tir callee must be a GlobalVar")
        if call.op is call_dps_library_op and not isinstance(callee, ExternFunc):
            err("call_dps_library callee must be an ExternFunc")
        if not call.sinfo_args:
            err(f"{call.op.name} requires an output annotation")
        if len(call.args) > 2 and not isinstance(call.args[2], ShapeExpr):
            err(f"{call.op.name} trailing symbolic args must be a ShapeExpr")
