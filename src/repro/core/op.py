"""Cross-level call primitives: ``call_tir`` and ``call_dps_library``.

These two primitives are the bridge between abstraction levels (paper §3.3,
Figures 4–5).  Both follow destination-passing style (DPS): the callee
receives its output buffer(s) as trailing arguments and mutates them, while
the *graph level* sees a pure call returning a fresh tensor.  The output
annotation is passed explicitly (``sinfo_args``), flowing symbolic shape
information from the graph level down into tensor programs, plus optional
extra symbolic arguments (Fig. 8's fused-function pattern).

Lowering expands them per Figure 5::

    def call_tir(tir_func, args, annotation, sym_args):
        output = alloc_tensor(annotation.shape, annotation.dtype)
        tir_func(*args, output, *sym_args)
        return output
"""

from __future__ import annotations

from typing import Optional, Sequence

from .annotations import Annotation, TensorAnn, TupleAnn
from .expr import Call, Expr, ExternFunc, GlobalVar, Op, ShapeExpr, Tuple


def _deduce_from_sinfo(call: Call) -> Annotation:
    if not call.sinfo_args:
        raise ValueError(f"{call.op.name} requires an output annotation")
    if len(call.sinfo_args) == 1:
        return call.sinfo_args[0]
    return TupleAnn(call.sinfo_args)


call_tir_op = Op.register("call_tir", deduce=_deduce_from_sinfo)
call_dps_library_op = Op.register("call_dps_library", deduce=_deduce_from_sinfo)


def call_tir(
    tir_func: GlobalVar,
    args: Sequence[Expr],
    out_ann,
    sym_args: Optional[ShapeExpr] = None,
) -> Call:
    """Invoke a loop-level tensor program from the graph level.

    ``out_ann`` is one TensorAnn or a sequence of them (multi-output).
    ``sym_args`` optionally passes extra symbolic values (a ShapeExpr) when
    the tensor program's symbolic variables cannot all be inferred from the
    argument shapes — the extra-parameter pattern of Figure 8.
    """
    if not isinstance(tir_func, GlobalVar):
        raise TypeError("call_tir callee must be a GlobalVar naming a tensor program")
    sinfo = _normalize_out_ann(out_ann)
    call_args = [tir_func, Tuple(list(args))]
    if sym_args is not None:
        if not isinstance(sym_args, ShapeExpr):
            raise TypeError("sym_args must be a ShapeExpr")
        call_args.append(sym_args)
    return Call(call_tir_op, call_args, sinfo_args=sinfo)


def call_dps_library(
    func_name: str,
    args: Sequence[Expr],
    out_ann,
    attrs: Optional[dict] = None,
) -> Call:
    """Invoke an external library function (by registry name) in DPS.

    Mirrors ``call_tir``: the callee is the name of a library routine
    supplied by the runtime registry and linked into the final module.
    """
    sinfo = _normalize_out_ann(out_ann)
    return Call(
        call_dps_library_op,
        [ExternFunc(func_name), Tuple(list(args))],
        attrs=attrs,
        sinfo_args=sinfo,
    )


def _normalize_out_ann(out_ann) -> Sequence[Annotation]:
    if isinstance(out_ann, Annotation):
        anns = (out_ann,)
    else:
        anns = tuple(out_ann)
    for ann in anns:
        if not isinstance(ann, TensorAnn):
            raise TypeError(f"DPS output annotation must be a TensorAnn, got {ann}")
        if not ann.is_resolved():
            raise ValueError(f"output annotation {ann} has unresolved dimensions")
        if ann.shape is None:
            raise ValueError(
                "DPS calls require a known (possibly symbolic) output shape; "
                "use match_cast for data-dependent outputs"
            )
        if ann.dtype is None:
            raise ValueError("DPS output annotation requires a dtype")
    return anns


def is_call_to(expr: Expr, op: Op) -> bool:
    """True when ``expr`` is a Call to exactly ``op``."""
    return isinstance(expr, Call) and expr.op is op


def call_tir_parts(call: Call):
    """Destructure a call_tir / call_dps_library into (callee, args, sym_args).

    ``sym_args`` is the optional trailing ShapeExpr (None when absent).
    """
    callee = call.args[0]
    args = call.args[1]
    if not isinstance(args, Tuple):
        raise TypeError("malformed cross-level call: second argument must be a Tuple")
    sym_args = call.args[2] if len(call.args) > 2 else None
    return callee, args.fields, sym_args
