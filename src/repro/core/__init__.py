"""Relax core: cross-level IR with first-class symbolic shapes.

This package is the paper's primary contribution: structural annotations
(Table 1), dataflow blocks, cross-level function calls (``call_tir`` /
``call_dps_library``), first-class symbolic shapes with forward deduction,
and the construction / traversal / verification infrastructure that the
optimization passes in :mod:`repro.transform` are written against.
"""

from .annotations import (
    Annotation,
    CallableAnn,
    ObjectAnn,
    PrimAnn,
    ShapeAnn,
    TensorAnn,
    TupleAnn,
    unify_call,
)
from .block_builder import BlockBuilder
from .deduction import (
    DeductionError,
    deduce_annotation,
    deduce_call,
    join_annotations,
    rededuce_function,
)
from .expr import (
    Binding,
    BindingBlock,
    Call,
    Constant,
    DataflowBlock,
    DataflowVar,
    Expr,
    ExternFunc,
    Function,
    GlobalVar,
    If,
    MatchCast,
    Op,
    PrimValue,
    SeqExpr,
    ShapeExpr,
    Tuple,
    TupleGetItem,
    Var,
    VarBinding,
    const,
    shape,
    sym_var,
)
from .ir_module import IRModule
from .op import (
    call_dps_library,
    call_dps_library_op,
    call_tir,
    call_tir_op,
    call_tir_parts,
    is_call_to,
)
from .printer import format_expr, format_function, format_module
from .visitor import ExprMutator, ExprVisitor
from .well_formed import WellFormedError, well_formed

# Short aliases matching the paper's annotation syntax (Table 1).
Object = ObjectAnn
Shape = ShapeAnn
Tensor = TensorAnn
TupleA = TupleAnn
Callable = CallableAnn

__all__ = [
    "Annotation",
    "Binding",
    "BindingBlock",
    "BlockBuilder",
    "Call",
    "Callable",
    "CallableAnn",
    "Constant",
    "DataflowBlock",
    "DataflowVar",
    "DeductionError",
    "Expr",
    "ExternFunc",
    "Function",
    "GlobalVar",
    "IRModule",
    "If",
    "MatchCast",
    "Object",
    "ObjectAnn",
    "Op",
    "PrimAnn",
    "PrimValue",
    "SeqExpr",
    "Shape",
    "ShapeAnn",
    "ShapeExpr",
    "Tensor",
    "TensorAnn",
    "Tuple",
    "TupleA",
    "TupleAnn",
    "TupleGetItem",
    "Var",
    "VarBinding",
    "WellFormedError",
    "call_dps_library",
    "call_dps_library_op",
    "call_tir",
    "call_tir_op",
    "call_tir_parts",
    "const",
    "deduce_annotation",
    "deduce_call",
    "ExprMutator",
    "ExprVisitor",
    "format_expr",
    "format_function",
    "format_module",
    "is_call_to",
    "join_annotations",
    "rededuce_function",
    "shape",
    "sym_var",
    "unify_call",
    "well_formed",
]
