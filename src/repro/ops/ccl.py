"""Collective communication ops (``ccl.*``) for sharded execution.

Collectives are graph-level ops whose *values* couple the shards of a
device mesh, so they cannot be DPS tensor programs on one device: like
``unique`` they take the extern lowering path and are served by VM
builtins (``vm.builtin.ccl.*``) that consult the VM's mesh context and
charge the modeled :class:`~repro.dist.interconnect.Interconnect`.

Shape deduction is fully symbolic (§4.1): ``all_gather`` multiplies the
gathered dim by the mesh size, ``reduce_scatter`` divides it — symbolic
dims flow through as ``d*N`` / ``d//N`` expressions, so sharded
functions keep the paper's cross-function symbolic-shape relations.

Integer operands (mesh size, axis, root) ride as ``PrimValue`` trailing
args: the VM compiles a ``PrimValue`` to a one-element shape tuple, so
they arrive at the builtin as ordinary arguments with no new
instruction fields.  They are *also* recorded as call attrs, which is
what deduction reads.

On a single VM with no mesh attached the builtins degrade to replica
semantics — the VM acts as one rank of a mesh on which every peer holds
the same value (all-reduce sums ``world`` replicas in rank order,
all-gather tiles, reduce-scatter sums then keeps the rank's chunk,
broadcast is the identity).  That keeps the ops total functions of
their inputs, which is what the differential fuzz oracle requires.
"""

from __future__ import annotations

from .. import sym
from ..core.annotations import TensorAnn
from ..core.expr import Call, Expr, PrimValue
from .registry import register_fuzz, register_op, tensor_ann_of


def _check_world(world: int, op: str) -> int:
    world = int(world)
    if world < 1:
        raise ValueError(f"{op}: world must be >= 1, got {world}")
    return world


def _split_dim(dim, world: int, op: str):
    """``dim / world`` with static divisibility checking."""
    if sym.is_static(dim):
        size = sym.as_static_int(sym.simplify(dim))
        if size % world:
            raise ValueError(
                f"{op}: dim of size {size} is not divisible by world {world}"
            )
        return size // world
    # Symbolic dims divide symbolically; divisibility is the caller's
    # obligation, checked at runtime like every §4.1 shape check.
    return sym.simplify(sym.FloorDiv(dim, sym.IntImm(world)))


def _gather_dim(dim, world: int):
    if sym.is_static(dim):
        return sym.as_static_int(sym.simplify(dim)) * world
    return sym.simplify(sym.Mul(dim, sym.IntImm(world)))


def _axis_of(call: Call, ndim: int, op: str) -> int:
    axis = int(call.attrs.get("axis", 0))
    if not 0 <= axis < ndim:
        raise ValueError(f"{op}: axis {axis} out of range for rank {ndim}")
    return axis


def _all_reduce_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "ccl.all_reduce", 0)
    return TensorAnn(x.shape, x.dtype)


def _all_gather_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "ccl.all_gather", 0)
    world = _check_world(call.attrs.get("world", 1), "ccl.all_gather")
    if x.shape is None:
        return TensorAnn(dtype=x.dtype)
    axis = _axis_of(call, len(x.shape), "ccl.all_gather")
    shape = list(x.shape)
    shape[axis] = _gather_dim(shape[axis], world)
    return TensorAnn(tuple(shape), x.dtype)


def _reduce_scatter_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "ccl.reduce_scatter", 0)
    world = _check_world(call.attrs.get("world", 1), "ccl.reduce_scatter")
    if x.shape is None:
        return TensorAnn(dtype=x.dtype)
    axis = _axis_of(call, len(x.shape), "ccl.reduce_scatter")
    shape = list(x.shape)
    shape[axis] = _split_dim(shape[axis], world, "ccl.reduce_scatter")
    return TensorAnn(tuple(shape), x.dtype)


def _broadcast_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "ccl.broadcast", 0)
    world = _check_world(call.attrs.get("world", 1), "ccl.broadcast")
    root = int(call.attrs.get("root", 0))
    if not 0 <= root < world:
        raise ValueError(f"ccl.broadcast: root {root} out of range for "
                         f"world {world}")
    return TensorAnn(x.shape, x.dtype)


all_reduce_op = register_op("ccl.all_reduce", _all_reduce_deduce)
all_reduce_op.extern_name = "vm.builtin.ccl.all_reduce"

all_gather_op = register_op("ccl.all_gather", _all_gather_deduce)
all_gather_op.extern_name = "vm.builtin.ccl.all_gather"

reduce_scatter_op = register_op("ccl.reduce_scatter", _reduce_scatter_deduce)
reduce_scatter_op.extern_name = "vm.builtin.ccl.reduce_scatter"

broadcast_op = register_op("ccl.broadcast", _broadcast_deduce)
broadcast_op.extern_name = "vm.builtin.ccl.broadcast"


def all_reduce(x: Expr, world: int) -> Call:
    """Elementwise sum over all mesh shards, result replicated.

    The reduction order is fixed (rank 0, 1, ..., N−1) so sharded
    execution is deterministic down to the last float bit."""
    world = _check_world(world, "ccl.all_reduce")
    return Call(all_reduce_op, [x, PrimValue(world)],
                attrs={"world": world})


def all_gather(x: Expr, world: int, axis: int = 0) -> Call:
    """Concatenate every shard's chunk along ``axis`` in rank order."""
    world = _check_world(world, "ccl.all_gather")
    return Call(all_gather_op, [x, PrimValue(world), PrimValue(axis)],
                attrs={"world": world, "axis": int(axis)})


def reduce_scatter(x: Expr, world: int, axis: int = 0) -> Call:
    """Sum over shards (rank order), keep this rank's chunk of ``axis``."""
    world = _check_world(world, "ccl.reduce_scatter")
    return Call(reduce_scatter_op, [x, PrimValue(world), PrimValue(axis)],
                attrs={"world": world, "axis": int(axis)})


def broadcast(x: Expr, world: int, root: int = 0) -> Call:
    """Every shard receives the root shard's value."""
    world = _check_world(world, "ccl.broadcast")
    return Call(broadcast_op, [x, PrimValue(world), PrimValue(root)],
                attrs={"world": world, "root": int(root)})


register_fuzz("ccl.all_reduce", "ccl", all_reduce, weight=0.6)
register_fuzz("ccl.all_gather", "ccl", all_gather, weight=0.5)
register_fuzz("ccl.reduce_scatter", "ccl", reduce_scatter, weight=0.5)
register_fuzz("ccl.broadcast", "ccl", broadcast, weight=0.4)
