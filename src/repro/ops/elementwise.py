"""Elementwise and broadcast operators.

Unary: exp, sqrt, rsqrt, tanh, erf, sigmoid, silu, gelu, relu, neg, abs,
log, sin, cos, astype.  Binary (NumPy-style broadcasting over symbolic
shapes): add, subtract, multiply, divide, maximum, minimum, power.

Broadcast deduction over symbolic dims: dimensions unify when provably
equal; a static 1 broadcasts against anything; otherwise the two dims must
be provably equal or deduction fails loudly (silent ``any`` erasure is
exactly what the paper's first-class symbolic shapes avoid).
"""

from __future__ import annotations

from typing import Callable, List

from .. import sym, tir
from ..core.annotations import TensorAnn
from ..core.expr import Call, Expr
from .registry import (
    Legalized,
    register_fuzz,
    register_op,
    require_known_shape,
    tensor_ann_of,
)


def broadcast_shapes(a, b, op_name: str) -> List[sym.PrimExpr]:
    """NumPy-style broadcast of two symbolic shapes."""
    out = []
    la, lb = len(a), len(b)
    for i in range(max(la, lb)):
        dim_a = a[la - 1 - i] if i < la else sym.IntImm(1)
        dim_b = b[lb - 1 - i] if i < lb else sym.IntImm(1)
        a_is_one = sym.is_static(dim_a) and sym.as_static_int(sym.simplify(dim_a)) == 1
        b_is_one = sym.is_static(dim_b) and sym.as_static_int(sym.simplify(dim_b)) == 1
        if a_is_one:
            out.append(dim_b)
        elif b_is_one:
            out.append(dim_a)
        elif sym.prove_equal(dim_a, dim_b):
            out.append(dim_a)
        else:
            raise ValueError(
                f"{op_name}: cannot broadcast dims {dim_a} and {dim_b}"
            )
    out.reverse()
    return out


def _unary_deduce(name: str, dtype_override=None):
    def deduce(call: Call):
        ann = tensor_ann_of(call.args[0], name, 0)
        dtype = dtype_override(call) if dtype_override else ann.dtype
        if ann.shape is None:
            return TensorAnn(dtype=dtype, ndim=ann.ndim)
        return TensorAnn(ann.shape, dtype)

    return deduce


def _unary_legalize(name: str, value_fn: Callable, dtype_override=None):
    def legalize(call: Call) -> Legalized:
        ann = tensor_ann_of(call.args[0], name, 0)
        shape = require_known_shape(ann, name)
        out_dtype = dtype_override(call) if dtype_override else ann.dtype
        f = tir.TirBuilder(name.replace(".", "_"))
        x = f.arg("X", shape, ann.dtype)
        y = f.out("Y", shape, out_dtype)
        axes = f.spatial(*shape)
        if len(shape) == 1:
            axes = (axes,)
        f.store(y, list(axes), value_fn(x[tuple(axes)], call))
        return Legalized(f.build(), [call.args[0]], TensorAnn(shape, out_dtype))

    return legalize


def _register_unary(name: str, value_fn: Callable, dtype_override=None):
    return register_op(
        f"{name}",
        deduce=_unary_deduce(name, dtype_override),
        legalize=_unary_legalize(name, value_fn, dtype_override),
    )


def _binary_deduce(name: str):
    def deduce(call: Call):
        a = tensor_ann_of(call.args[0], name, 0)
        b = tensor_ann_of(call.args[1], name, 1)
        dtype = a.dtype if a.dtype is not None else b.dtype
        if a.dtype and b.dtype and a.dtype != b.dtype:
            raise TypeError(f"{name}: dtype mismatch {a.dtype} vs {b.dtype}")
        if a.shape is None or b.shape is None:
            ndim = max(a.ndim, b.ndim) if (a.ndim != -1 and b.ndim != -1) else -1
            return TensorAnn(dtype=dtype, ndim=ndim)
        return TensorAnn(broadcast_shapes(a.shape, b.shape, name), dtype)

    return deduce


def _binary_legalize(name: str, value_fn: Callable):
    def legalize(call: Call) -> Legalized:
        a = tensor_ann_of(call.args[0], name, 0)
        b = tensor_ann_of(call.args[1], name, 1)
        sa = require_known_shape(a, name)
        sb = require_known_shape(b, name)
        out_shape = broadcast_shapes(sa, sb, name)
        f = tir.TirBuilder(name.replace(".", "_"))
        x = f.arg("A", sa, a.dtype)
        y = f.arg("B", sb, b.dtype)
        out = f.out("C", out_shape, a.dtype or b.dtype)
        axes = f.spatial(*out_shape)
        if len(out_shape) == 1:
            axes = (axes,)
        axes = list(axes)

        def read(buf, shape):
            # Map output axes onto this operand's axes, collapsing
            # broadcast (static-1) dimensions to index 0.
            idx = []
            offset = len(out_shape) - len(shape)
            for d, dim in enumerate(shape):
                is_one = sym.is_static(dim) and sym.as_static_int(sym.simplify(dim)) == 1
                idx.append(sym.IntImm(0) if is_one else axes[offset + d])
            return buf[tuple(idx)] if idx else buf[()]

        f.store(out, axes, value_fn(read(x, sa), read(y, sb)))
        return Legalized(
            f.build(), [call.args[0], call.args[1]], TensorAnn(out_shape, a.dtype or b.dtype)
        )

    return legalize


def _register_binary(name: str, value_fn: Callable):
    return register_op(
        name,
        deduce=_binary_deduce(name),
        legalize=_binary_legalize(name, value_fn),
    )


# -- unary operators ----------------------------------------------------------

_SILU = lambda v, call: v * tir.sigmoid(v)
_GELU = lambda v, call: v * 0.5 * (1.0 + tir.erf(v * 0.7071067811865475))

exp_op = _register_unary("exp", lambda v, call: tir.exp(v))
log_op = _register_unary("log", lambda v, call: tir.log(v))
sqrt_op = _register_unary("sqrt", lambda v, call: tir.sqrt(v))
rsqrt_op = _register_unary("rsqrt", lambda v, call: tir.rsqrt(v))
tanh_op = _register_unary("tanh", lambda v, call: tir.tanh(v))
erf_op = _register_unary("erf", lambda v, call: tir.erf(v))
sigmoid_op = _register_unary("sigmoid", lambda v, call: tir.sigmoid(v))
silu_op = _register_unary("silu", _SILU)
gelu_op = _register_unary("gelu", _GELU)
relu_op = _register_unary("relu", lambda v, call: tir.vmax(v, 0.0))
neg_op = _register_unary("negative", lambda v, call: -v)
abs_op = _register_unary("abs", lambda v, call: tir.UnaryValue("abs", v))

astype_op = _register_unary(
    "astype",
    lambda v, call: tir.cast(call.attrs["dtype"], v),
    dtype_override=lambda call: call.attrs["dtype"],
)

# -- binary operators ----------------------------------------------------------

add_op = _register_binary("add", lambda a, b: a + b)
subtract_op = _register_binary("subtract", lambda a, b: a - b)
multiply_op = _register_binary("multiply", lambda a, b: a * b)
divide_op = _register_binary("divide", lambda a, b: a / b)
maximum_op = _register_binary("maximum", tir.vmax)
minimum_op = _register_binary("minimum", tir.vmin)
power_op = _register_binary("power", lambda a, b: tir.BinValue("pow", a, b))


# -- user-facing constructors ---------------------------------------------------


def _unary_call(op):
    def make(x: Expr) -> Call:
        return Call(op, [x])

    return make


def _binary_call(op):
    def make(a: Expr, b: Expr) -> Call:
        return Call(op, [a, b])

    return make


exp = _unary_call(exp_op)
log = _unary_call(log_op)
sqrt = _unary_call(sqrt_op)
rsqrt = _unary_call(rsqrt_op)
tanh = _unary_call(tanh_op)
erf = _unary_call(erf_op)
sigmoid = _unary_call(sigmoid_op)
silu = _unary_call(silu_op)
gelu = _unary_call(gelu_op)
relu = _unary_call(relu_op)
negative = _unary_call(neg_op)
abs_ = _unary_call(abs_op)

add = _binary_call(add_op)
subtract = _binary_call(subtract_op)
multiply = _binary_call(multiply_op)
divide = _binary_call(divide_op)
maximum = _binary_call(maximum_op)
minimum = _binary_call(minimum_op)
power = _binary_call(power_op)


def astype(x: Expr, dtype: str) -> Call:
    return Call(astype_op, [x], attrs={"dtype": dtype})


# -- fuzz metadata ------------------------------------------------------------
# Shape-preserving unary ops get full weight; ops with partial domains
# (log/sqrt of negatives is NaN — still deterministic across configs, but
# less interesting) are down-weighted.  astype is excluded: mixed-precision
# chains would need per-dtype tolerances in the differential oracle.

register_fuzz("relu", "unary", relu)
register_fuzz("sigmoid", "unary", sigmoid)
register_fuzz("tanh", "unary", tanh)
register_fuzz("erf", "unary", erf)
register_fuzz("gelu", "unary", gelu)
register_fuzz("silu", "unary", silu)
register_fuzz("negative", "unary", negative)
register_fuzz("abs", "unary", abs_)
register_fuzz("exp", "unary", exp, weight=0.5)
register_fuzz("log", "unary", log, weight=0.4, domain="pos")
register_fuzz("sqrt", "unary", sqrt, weight=0.4, domain="pos")
register_fuzz("rsqrt", "unary", rsqrt, weight=0.3, domain="pos")

register_fuzz("add", "binary", add)
register_fuzz("subtract", "binary", subtract)
register_fuzz("multiply", "binary", multiply)
register_fuzz("maximum", "binary", maximum)
register_fuzz("minimum", "binary", minimum)
register_fuzz("divide", "binary", divide, weight=0.5)
register_fuzz("power", "binary", power, weight=0.25)
