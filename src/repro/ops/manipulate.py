"""Shape manipulation operators: reshape, flatten, permute, concat, split,
broadcast_to, expand_dims, squeeze, take (gather / embedding lookup).

``reshape`` takes its target as a *first-class symbolic shape value* — a
``ShapeExpr`` argument, exactly as in the paper's Figure 3 — and its
deduction rule consumes that value, demonstrating the "shape as value"
side of the symbolic shape design.
"""

from __future__ import annotations

from typing import List, Sequence

from .. import sym, tir
from ..core.annotations import ShapeAnn, TensorAnn, TupleAnn
from ..core.expr import Call, Expr, ShapeExpr
from .registry import (
    Legalized,
    register_fuzz,
    register_op,
    require_known_shape,
    tensor_ann_of,
)


def _shape_values_of(expr: Expr, op_name: str):
    """Target shape values from a ShapeExpr arg (or its Shape annotation)."""
    if isinstance(expr, ShapeExpr):
        return expr.values
    ann = expr.ann
    if isinstance(ann, ShapeAnn) and ann.values is not None:
        return ann.values
    return None


def _row_major_index(flat: sym.PrimExpr, shape) -> List[sym.PrimExpr]:
    """Decompose a flat index into row-major multi-dim indices."""
    idx = []
    remaining = flat
    for d in range(len(shape) - 1, -1, -1):
        if d == 0:
            idx.append(remaining)
        else:
            idx.append(remaining % shape[d])
            remaining = remaining // shape[d]
    idx.reverse()
    return idx


def _flatten_index(indices, shape) -> sym.PrimExpr:
    """Row-major flat index from multi-dim indices."""
    flat: sym.PrimExpr = sym.IntImm(0)
    for idx, dim in zip(indices, shape):
        flat = flat * dim + idx
    return flat


# -- reshape ---------------------------------------------------------------------


def _reshape_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "reshape", 0)
    target = _shape_values_of(call.args[1], "reshape")
    if target is None:
        ann = call.args[1].ann
        ndim = ann.ndim if isinstance(ann, ShapeAnn) else -1
        return TensorAnn(dtype=x.dtype, ndim=ndim)
    if x.shape is not None and not sym.prove_equal(
        sym.shape_product(x.shape), sym.shape_product(target)
    ):
        # Cannot *disprove* either for symbolic dims; only reject when both
        # sides are static and different.
        if sym.is_static(sym.shape_product(x.shape)) and sym.is_static(
            sym.shape_product(target)
        ):
            raise ValueError(
                f"reshape: element count mismatch {x.shape} -> {tuple(target)}"
            )
    return TensorAnn(target, x.dtype)


def _reshape_legalize(call: Call) -> Legalized:
    x = tensor_ann_of(call.args[0], "reshape", 0)
    in_shape = require_known_shape(x, "reshape")
    target = _shape_values_of(call.args[1], "reshape")
    if target is None:
        raise ValueError("reshape: target shape must be a ShapeExpr to legalize")
    f = tir.TirBuilder("reshape")
    src = f.arg("X", in_shape, x.dtype)
    dst = f.out("Y", target, x.dtype)
    axes = f.spatial(*target)
    if len(target) == 1:
        axes = (axes,)
    axes = list(axes)
    flat = _flatten_index(axes, target)
    f.store(dst, axes, src[tuple(_row_major_index(flat, in_shape))])
    return Legalized(f.build(), [call.args[0]], TensorAnn(target, x.dtype))


reshape_op = register_op("reshape", deduce=_reshape_deduce, legalize=_reshape_legalize)


def reshape(x: Expr, target) -> Call:
    if not isinstance(target, (ShapeExpr, Expr)):
        target = ShapeExpr(target)
    return Call(reshape_op, [x, target])


# -- flatten ---------------------------------------------------------------------


def _flatten_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "flatten", 0)
    if x.shape is None:
        return TensorAnn(dtype=x.dtype, ndim=1)
    return TensorAnn((sym.simplify(sym.shape_product(x.shape)),), x.dtype)


def _flatten_legalize(call: Call) -> Legalized:
    x = tensor_ann_of(call.args[0], "flatten", 0)
    in_shape = require_known_shape(x, "flatten")
    total = sym.simplify(sym.shape_product(in_shape))
    f = tir.TirBuilder("flatten")
    src = f.arg("X", in_shape, x.dtype)
    dst = f.out("Y", (total,), x.dtype)
    k = f.spatial(total)
    f.store(dst, [k], src[tuple(_row_major_index(k, in_shape))])
    return Legalized(f.build(), [call.args[0]], TensorAnn((total,), x.dtype))


flatten_op = register_op("flatten", deduce=_flatten_deduce, legalize=_flatten_legalize)


def flatten(x: Expr) -> Call:
    return Call(flatten_op, [x])


# -- permute_dims -------------------------------------------------------------------


def _permute_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "permute_dims", 0)
    axes = call.attrs["axes"]
    if x.shape is None:
        return TensorAnn(dtype=x.dtype, ndim=x.ndim)
    if sorted(axes) != list(range(len(x.shape))):
        raise ValueError(f"permute_dims: invalid axes {axes} for {x}")
    return TensorAnn(tuple(x.shape[a] for a in axes), x.dtype)


def _permute_legalize(call: Call) -> Legalized:
    x = tensor_ann_of(call.args[0], "permute_dims", 0)
    in_shape = require_known_shape(x, "permute_dims")
    axes = call.attrs["axes"]
    out_shape = tuple(in_shape[a] for a in axes)
    f = tir.TirBuilder("permute_dims")
    src = f.arg("X", in_shape, x.dtype)
    dst = f.out("Y", out_shape, x.dtype)
    loop = f.spatial(*out_shape)
    if len(out_shape) == 1:
        loop = (loop,)
    loop = list(loop)
    src_idx = [None] * len(in_shape)
    for out_pos, in_pos in enumerate(axes):
        src_idx[in_pos] = loop[out_pos]
    f.store(dst, loop, src[tuple(src_idx)])
    return Legalized(f.build(), [call.args[0]], TensorAnn(out_shape, x.dtype))


permute_dims_op = register_op(
    "permute_dims", deduce=_permute_deduce, legalize=_permute_legalize
)


def permute_dims(x: Expr, axes: Sequence[int]) -> Call:
    return Call(permute_dims_op, [x], attrs={"axes": tuple(axes)})


# -- expand_dims / squeeze --------------------------------------------------------------


def _expand_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "expand_dims", 0)
    axis = call.attrs["axis"]
    if x.shape is None:
        ndim = x.ndim + 1 if x.ndim != -1 else -1
        return TensorAnn(dtype=x.dtype, ndim=ndim)
    shape = list(x.shape)
    shape.insert(axis if axis >= 0 else axis + len(shape) + 1, sym.IntImm(1))
    return TensorAnn(shape, x.dtype)


def _squeeze_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "squeeze", 0)
    axis = call.attrs["axis"]
    if x.shape is None:
        ndim = x.ndim - 1 if x.ndim != -1 else -1
        return TensorAnn(dtype=x.dtype, ndim=ndim)
    shape = list(x.shape)
    dim = shape[axis]
    if sym.is_static(dim) and sym.as_static_int(sym.simplify(dim)) != 1:
        raise ValueError(f"squeeze: axis {axis} has extent {dim} != 1")
    shape.pop(axis)
    return TensorAnn(shape, x.dtype)


def _reindex_legalize(name, out_shape_fn, src_idx_fn):
    def legalize(call: Call) -> Legalized:
        x = tensor_ann_of(call.args[0], name, 0)
        in_shape = require_known_shape(x, name)
        out_shape = out_shape_fn(call, in_shape)
        f = tir.TirBuilder(name)
        src = f.arg("X", in_shape, x.dtype)
        dst = f.out("Y", out_shape, x.dtype)
        loop = f.spatial(*out_shape)
        if len(out_shape) == 1:
            loop = (loop,)
        loop = list(loop)
        f.store(dst, loop, src[tuple(src_idx_fn(call, loop, in_shape))])
        return Legalized(f.build(), [call.args[0]], TensorAnn(out_shape, x.dtype))

    return legalize


def _expand_out_shape(call, in_shape):
    axis = call.attrs["axis"]
    shape = list(in_shape)
    shape.insert(axis if axis >= 0 else axis + len(shape) + 1, sym.IntImm(1))
    return tuple(shape)


def _expand_src_idx(call, loop, in_shape):
    axis = call.attrs["axis"]
    axis = axis if axis >= 0 else axis + len(in_shape) + 1
    return [v for d, v in enumerate(loop) if d != axis]


def _squeeze_out_shape(call, in_shape):
    shape = list(in_shape)
    shape.pop(call.attrs["axis"])
    return tuple(shape)


def _squeeze_src_idx(call, loop, in_shape):
    axis = call.attrs["axis"]
    axis = axis if axis >= 0 else axis + len(in_shape)
    idx = list(loop)
    idx.insert(axis, sym.IntImm(0))
    return idx


expand_dims_op = register_op(
    "expand_dims",
    deduce=_expand_deduce,
    legalize=_reindex_legalize("expand_dims", _expand_out_shape, _expand_src_idx),
)
squeeze_op = register_op(
    "squeeze",
    deduce=_squeeze_deduce,
    legalize=_reindex_legalize("squeeze", _squeeze_out_shape, _squeeze_src_idx),
)


def expand_dims(x: Expr, axis: int) -> Call:
    return Call(expand_dims_op, [x], attrs={"axis": axis})


def squeeze(x: Expr, axis: int) -> Call:
    return Call(squeeze_op, [x], attrs={"axis": axis})


# -- broadcast_to -------------------------------------------------------------------


def _broadcast_to_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "broadcast_to", 0)
    target = _shape_values_of(call.args[1], "broadcast_to")
    if target is None:
        return TensorAnn(dtype=x.dtype)
    return TensorAnn(target, x.dtype)


def _broadcast_to_legalize(call: Call) -> Legalized:
    x = tensor_ann_of(call.args[0], "broadcast_to", 0)
    in_shape = require_known_shape(x, "broadcast_to")
    target = _shape_values_of(call.args[1], "broadcast_to")
    f = tir.TirBuilder("broadcast_to")
    src = f.arg("X", in_shape, x.dtype)
    dst = f.out("Y", target, x.dtype)
    loop = f.spatial(*target)
    if len(target) == 1:
        loop = (loop,)
    loop = list(loop)
    offset = len(target) - len(in_shape)
    idx = []
    for d, dim in enumerate(in_shape):
        is_one = sym.is_static(dim) and sym.as_static_int(sym.simplify(dim)) == 1
        idx.append(sym.IntImm(0) if is_one else loop[offset + d])
    f.store(dst, loop, src[tuple(idx)])
    return Legalized(f.build(), [call.args[0]], TensorAnn(target, x.dtype))


broadcast_to_op = register_op(
    "broadcast_to", deduce=_broadcast_to_deduce, legalize=_broadcast_to_legalize
)


def broadcast_to(x: Expr, target) -> Call:
    if not isinstance(target, (ShapeExpr, Expr)):
        target = ShapeExpr(target)
    return Call(broadcast_to_op, [x, target])


# -- concat / split -------------------------------------------------------------------


def _concat_deduce(call: Call):
    anns = [tensor_ann_of(a, "concat", i) for i, a in enumerate(call.args)]
    axis = call.attrs["axis"]
    dtype = anns[0].dtype
    if any(a.shape is None for a in anns):
        return TensorAnn(dtype=dtype, ndim=anns[0].ndim)
    out = list(anns[0].shape)
    total = out[axis]
    for ann in anns[1:]:
        for d in range(len(out)):
            if d != axis and not sym.prove_equal(out[d], ann.shape[d]):
                raise ValueError(
                    f"concat: non-axis dim {d} mismatch {out[d]} vs {ann.shape[d]}"
                )
        total = total + ann.shape[axis]
    out[axis] = sym.simplify(total)
    return TensorAnn(out, dtype)


def _concat_legalize(call: Call) -> Legalized:
    anns = [tensor_ann_of(a, "concat", i) for i, a in enumerate(call.args)]
    axis = call.attrs["axis"]
    out_ann = _concat_deduce(call)
    f = tir.TirBuilder("concat")
    srcs = [f.arg(f"X{i}", ann.shape, ann.dtype) for i, ann in enumerate(anns)]
    dst = f.out("Y", out_ann.shape, out_ann.dtype)
    # One copy stage per input, writing into its slice along `axis`.
    offset: sym.PrimExpr = sym.IntImm(0)
    for src, ann in zip(srcs, anns):
        loop = f.spatial(*ann.shape)
        if len(ann.shape) == 1:
            loop = (loop,)
        loop = list(loop)
        out_idx = list(loop)
        out_idx[axis] = sym.simplify(loop[axis] + offset)
        f.store(dst, out_idx, src[tuple(loop)])
        offset = offset + ann.shape[axis]
    return Legalized(f.build(), list(call.args), out_ann)


concat_op = register_op("concat", deduce=_concat_deduce, legalize=_concat_legalize)


def concat(tensors: Sequence[Expr], axis: int = 0) -> Call:
    return Call(concat_op, list(tensors), attrs={"axis": axis})


def _split_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "split", 0)
    sections = call.attrs["sections"]
    axis = call.attrs["axis"]
    if x.shape is None:
        return TupleAnn([TensorAnn(dtype=x.dtype, ndim=x.ndim)] * sections)
    dim = x.shape[axis]
    part = sym.simplify(dim // sections)
    fields = []
    for _ in range(sections):
        shape = list(x.shape)
        shape[axis] = part
        fields.append(TensorAnn(shape, x.dtype))
    return TupleAnn(fields)


def _split_legalize(call: Call) -> Legalized:
    # Multi-output DPS: one copy stage per section (exercises call_tir's
    # tuple-result path end to end).
    x = tensor_ann_of(call.args[0], "split", 0)
    in_shape = require_known_shape(x, "split")
    sections = call.attrs["sections"]
    axis = call.attrs["axis"]
    part = sym.simplify(in_shape[axis] // sections)
    out_shape = list(in_shape)
    out_shape[axis] = part

    f = tir.TirBuilder("split")
    src = f.arg("X", in_shape, x.dtype)
    outs = [f.out(f"Y{k}", out_shape, x.dtype) for k in range(sections)]
    for k, out in enumerate(outs):
        loop = f.spatial(*out_shape)
        if len(out_shape) == 1:
            loop = (loop,)
        loop = list(loop)
        src_idx = list(loop)
        src_idx[axis] = sym.simplify(loop[axis] + part * k)
        f.store(out, loop, src[tuple(src_idx)])
    out_anns = tuple(TensorAnn(out_shape, x.dtype) for _ in range(sections))
    legalized = Legalized(f.build(), [call.args[0]], out_anns[0])
    legalized.out_anns = out_anns
    return legalized


split_op = register_op("split", deduce=_split_deduce, legalize=_split_legalize)


def split(x: Expr, sections: int, axis: int = 0) -> Call:
    """Split into ``sections`` equal parts along ``axis`` (tuple result)."""
    return Call(split_op, [x], attrs={"sections": sections, "axis": axis})


# -- take (gather / embedding lookup) -----------------------------------------------------


def _take_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "take", 0)
    idx = tensor_ann_of(call.args[1], "take", 1)
    axis = call.attrs["axis"]
    if x.shape is None or idx.shape is None:
        return TensorAnn(dtype=x.dtype)
    out = list(x.shape[:axis]) + list(idx.shape) + list(x.shape[axis + 1:])
    return TensorAnn(out, x.dtype)


def _take_legalize(call: Call) -> Legalized:
    # Gather reads a data-dependent index, so the read index is not a pure
    # function of the loop vars; we model it with an extern-style tensor
    # program using an index read per output element.
    x = tensor_ann_of(call.args[0], "take", 0)
    idx = tensor_ann_of(call.args[1], "take", 1)
    axis = call.attrs["axis"]
    in_shape = require_known_shape(x, "take")
    idx_shape = require_known_shape(idx, "take")
    out_ann = _take_deduce(call)

    f = tir.TirBuilder("take")
    src = f.arg("X", in_shape, x.dtype)
    indices = f.arg("I", idx_shape, idx.dtype)
    dst = f.out("Y", out_ann.shape, x.dtype)
    loop = f.spatial(*out_ann.shape)
    if len(out_ann.shape) == 1:
        loop = (loop,)
    loop = list(loop)
    pre = loop[:axis]
    mid = loop[axis: axis + len(idx_shape)]
    post = loop[axis + len(idx_shape):]
    # Gather is expressed with an IndirectRead (read index from buffer).
    gathered = tir.GatherRead(src, indices, tuple(pre), tuple(mid), tuple(post))
    f.store(dst, loop, gathered)
    return Legalized(f.build(), [call.args[0], call.args[1]], out_ann)


take_op = register_op("take", deduce=_take_deduce, legalize=_take_legalize)


def take(x: Expr, indices: Expr, axis: int = 0) -> Call:
    """Gather along ``axis`` (embedding lookup when axis=0)."""
    return Call(take_op, [x, indices], attrs={"axis": axis})


register_fuzz("reshape", "reshape", reshape)
register_fuzz("flatten", "flatten", flatten)
register_fuzz("permute_dims", "permute", permute_dims)
register_fuzz("expand_dims", "expand_dims", expand_dims)
register_fuzz("squeeze", "squeeze", squeeze)
register_fuzz("broadcast_to", "broadcast_to", broadcast_to, weight=0.7)
register_fuzz("concat", "concat", concat)
register_fuzz("split", "split", split, weight=0.8)
register_fuzz("take", "take", take, weight=0.8)
