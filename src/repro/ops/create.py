"""Tensor creation operators: zeros, ones, full, arange.

Creation ops take their shape as a first-class symbolic shape value
(ShapeExpr).  Their generated tensor programs have *no input buffers*, so
any symbolic dims become explicit symbolic parameters on the tensor program
— another natural appearance of the Fig. 8 extra-symbolic-argument pattern.
"""

from __future__ import annotations

from .. import sym, tir
from ..core.annotations import TensorAnn
from ..core.expr import Call, Expr, ShapeExpr
from .registry import Legalized, register_fuzz, register_op, spatial_axes


def _create_deduce(call: Call):
    target = call.args[0]
    dtype = call.attrs["dtype"]
    if isinstance(target, ShapeExpr):
        return TensorAnn(target.values, dtype)
    ann = target.ann
    from ..core.annotations import ShapeAnn

    if isinstance(ann, ShapeAnn):
        if ann.values is not None:
            return TensorAnn(ann.values, dtype)
        return TensorAnn(dtype=dtype, ndim=ann.ndim)
    return TensorAnn(dtype=dtype)


def _fill_legalize(call: Call) -> Legalized:
    target = call.args[0]
    if not isinstance(target, ShapeExpr):
        raise ValueError("creation ops require a ShapeExpr to legalize")
    dtype = call.attrs["dtype"]
    value = float(call.attrs["fill_value"])
    f = tir.TirBuilder("full")
    dst = f.out("Y", target.values, dtype)
    axes = spatial_axes(f, target.values)
    f.store(dst, axes, tir.cast(dtype, value))
    return Legalized(f.build(), [], TensorAnn(target.values, dtype))


full_op = register_op("full", _create_deduce, _fill_legalize)


def full(shape, fill_value: float, dtype: str = "f32") -> Call:
    if not isinstance(shape, (ShapeExpr, Expr)):
        shape = ShapeExpr(shape)
    return Call(full_op, [shape], attrs={"dtype": dtype, "fill_value": fill_value})


def zeros(shape, dtype: str = "f32") -> Call:
    return full(shape, 0.0, dtype)


def ones(shape, dtype: str = "f32") -> Call:
    return full(shape, 1.0, dtype)


def _arange_deduce(call: Call):
    target = call.args[0]
    dtype = call.attrs["dtype"]
    if isinstance(target, ShapeExpr):
        return TensorAnn(target.values, dtype)
    return TensorAnn(dtype=dtype, ndim=1)


def _arange_legalize(call: Call) -> Legalized:
    target = call.args[0]
    if not isinstance(target, ShapeExpr) or len(target.values) != 1:
        raise ValueError("arange requires a 1-d ShapeExpr")
    dtype = call.attrs["dtype"]
    start = sym.PrimExpr.convert(call.attrs["start"])
    f = tir.TirBuilder("arange")
    dst = f.out("Y", target.values, dtype)
    i = f.spatial(target.values[0])
    f.store(dst, [i], tir.cast(dtype, tir.IndexValue(i + start)))
    return Legalized(f.build(), [], TensorAnn(target.values, dtype))


arange_op = register_op("arange", _arange_deduce, _arange_legalize)


def arange(extent: sym.ExprLike, start: sym.ExprLike = 0, dtype: str = "i64") -> Call:
    """``[start, start + extent)`` as a 1-d tensor; both ends may be symbolic."""
    return Call(
        arange_op,
        [ShapeExpr([extent])],
        attrs={"dtype": dtype, "start": sym.PrimExpr.convert(start)},
    )


register_fuzz("full", "create", full, weight=0.6, fill="any")
register_fuzz("arange", "arange", arange, weight=0.6)
