"""Fused scaled-dot-product attention operator.

The paper (§4.2) notes fusion passes can cover "all sub-operators in scaled
dot-product attention"; we expose the result directly as an ``attention``
operator whose legalization generates one multi-stage tensor program
(scores → online max → exp-sum → weighted value), with grouped-query head
sharing expressed as pure index arithmetic (``h // group``) and the causal
mask folded into the score reads.  Library dispatch (§4.6) can instead
lower causal attention to the FlashAttention-style registry kernel on
backends that ship one.

Layout: q is (b, s, h, d); k and v are (b, m, h_kv, d) with the full
(cached) sequence; output is (b, s, h, d).
"""

from __future__ import annotations

from .. import sym, tir
from ..core.annotations import TensorAnn
from ..core.expr import Call, Expr
from .registry import (
    Legalized,
    register_fuzz,
    register_op,
    require_known_shape,
    tensor_ann_of,
)


def _deduce(call: Call):
    q = tensor_ann_of(call.args[0], "attention", 0)
    if q.shape is None:
        return TensorAnn(dtype=q.dtype, ndim=4)
    return TensorAnn(q.shape, q.dtype)


def _legalize(call: Call) -> Legalized:
    q_ann = tensor_ann_of(call.args[0], "attention", 0)
    k_ann = tensor_ann_of(call.args[1], "attention", 1)
    v_ann = tensor_ann_of(call.args[2], "attention", 2)
    q_shape = require_known_shape(q_ann, "attention")
    k_shape = require_known_shape(k_ann, "attention")
    causal = call.attrs.get("causal", True)

    b, s, h, d = q_shape
    m, h_kv = k_shape[1], k_shape[2]
    if not (sym.is_static(h) and sym.is_static(h_kv) and sym.is_static(d)):
        raise ValueError("attention: head counts and head_dim must be static")
    group = sym.as_static_int(sym.simplify(h)) // sym.as_static_int(
        sym.simplify(h_kv)
    )
    scale = 1.0 / (sym.as_static_int(sym.simplify(d)) ** 0.5)

    f = tir.TirBuilder("attention")
    f.attr("op_kind", "attention")
    qb = f.arg("Q", q_shape, q_ann.dtype)
    kb = f.arg("K", k_shape, k_ann.dtype)
    vb = f.arg("V", v_ann.shape, v_ann.dtype)
    ob = f.out("O", q_shape, q_ann.dtype)

    acc = q_ann.dtype if q_ann.dtype == "f32" else "f32"
    scores = f.alloc("S", (b, h, s, m), acc)
    row_max = f.alloc("M", (b, h, s), acc)
    row_sum = f.alloc("E", (b, h, s), acc)

    def masked(expr, i, j):
        if not causal:
            return expr
        # Query i (aligned to the end of the keys) may attend key j iff
        # j <= i + (m - s).
        allowed = tir.Cmp("le", tir.IndexValue(j), tir.IndexValue(i + (m - s)))
        return tir.select(allowed, expr, -1e9)

    # Stage 1: scaled (masked) scores.
    bi, hi, si, ji = f.spatial(b, h, s, m)
    di = f.reduce(d)
    prod = tir.cast(acc, qb[bi, si, hi, di]) * tir.cast(
        acc, kb[bi, ji, hi // group, di]
    )
    f.store(scores, [bi, hi, si, ji], prod * scale, combiner="sum", init=0.0)

    # Stage 2: row max of masked scores.
    bi, hi, si = f.spatial(b, h, s)
    ji = f.reduce(m)
    f.store(row_max, [bi, hi, si], masked(scores[bi, hi, si, ji], si, ji),
            combiner="max")

    # Stage 3: exp-sum.
    bi, hi, si = f.spatial(b, h, s)
    ji = f.reduce(m)
    f.store(
        row_sum,
        [bi, hi, si],
        tir.exp(masked(scores[bi, hi, si, ji], si, ji) - row_max[bi, hi, si]),
        combiner="sum",
        init=0.0,
    )

    # Stage 4: probability-weighted values.
    bi, si, hi, di = f.spatial(b, s, h, d)
    ji = f.reduce(m)
    prob = tir.exp(
        masked(scores[bi, hi, si, ji], si, ji) - row_max[bi, hi, si]
    ) / row_sum[bi, hi, si]
    weighted = prob * tir.cast(acc, vb[bi, ji, hi // group, di])
    f.store(ob, [bi, si, hi, di], tir.cast(q_ann.dtype, weighted),
            combiner="sum", init=0.0)

    return Legalized(
        f.build(),
        [call.args[0], call.args[1], call.args[2]],
        TensorAnn(q_shape, q_ann.dtype),
    )


attention_op = register_op("attention", _deduce, _legalize)


def attention(q: Expr, k: Expr, v: Expr, causal: bool = True) -> Call:
    """Fused attention over cached keys/values (GQA via head grouping)."""
    return Call(attention_op, [q, k, v], attrs={"causal": causal})


register_fuzz("attention", "attention", attention, weight=2.0)
