"""Matrix multiplication (batched, broadcasting, symbolic-shape aware)."""

from __future__ import annotations

from typing import Optional

from .. import sym, tir
from ..core.annotations import TensorAnn
from ..core.expr import Call, Expr
from .elementwise import broadcast_shapes
from .registry import (
    Legalized,
    register_fuzz,
    register_op,
    require_known_shape,
    tensor_ann_of,
)


def _matmul_shapes(a_shape, b_shape):
    """Output shape of a (batched) matmul; raises on contraction mismatch."""
    if len(a_shape) < 1 or len(b_shape) < 1:
        raise ValueError("matmul requires at least 1-d operands")
    if len(a_shape) == 1:
        a_shape = (sym.IntImm(1),) + tuple(a_shape)
        squeeze_front = True
    else:
        squeeze_front = False
    if len(b_shape) == 1:
        b_shape = tuple(b_shape) + (sym.IntImm(1),)
        squeeze_back = True
    else:
        squeeze_back = False
    k_a, k_b = a_shape[-1], b_shape[-2]
    if not sym.prove_equal(k_a, k_b):
        raise ValueError(f"matmul: contraction mismatch {k_a} vs {k_b}")
    batch = broadcast_shapes(a_shape[:-2], b_shape[:-2], "matmul")
    out = list(batch) + [a_shape[-2], b_shape[-1]]
    if squeeze_front:
        out.pop(-2)
    if squeeze_back:
        out.pop(-1)
    return tuple(a_shape), tuple(b_shape), tuple(out), squeeze_front, squeeze_back


def _b_shape(call: Call, b_ann):
    """Effective shape of the second operand (transpose_b swaps the last
    two dims; the kernel reads the stored layout directly, so tied-embedding
    LM heads never materialize a transposed copy)."""
    shape = b_ann.shape
    if call.attrs.get("transpose_b") and shape is not None and len(shape) >= 2:
        shape = tuple(shape[:-2]) + (shape[-1], shape[-2])
    return shape


def _deduce(call: Call):
    a = tensor_ann_of(call.args[0], "matmul", 0)
    b = tensor_ann_of(call.args[1], "matmul", 1)
    out_dtype = call.attrs.get("out_dtype") or a.dtype or b.dtype
    if a.shape is None or b.shape is None:
        return TensorAnn(dtype=out_dtype)
    _, _, out_shape, _, _ = _matmul_shapes(a.shape, _b_shape(call, b))
    return TensorAnn(out_shape, out_dtype)


def _legalize(call: Call) -> Legalized:
    a = tensor_ann_of(call.args[0], "matmul", 0)
    b = tensor_ann_of(call.args[1], "matmul", 1)
    sa = require_known_shape(a, "matmul")
    sb = require_known_shape(b, "matmul")
    transpose_b = bool(call.attrs.get("transpose_b"))
    eff_sb = _b_shape(call, b)
    out_dtype = call.attrs.get("out_dtype") or a.dtype or b.dtype
    a2, b2, out_shape, squeeze_front, squeeze_back = _matmul_shapes(sa, eff_sb)

    # Work in the padded (>=2-d) space; the output buffer uses out_shape.
    batch = broadcast_shapes(a2[:-2], b2[:-2], "matmul")
    m, n, k = a2[-2], b2[-1], a2[-1]

    f = tir.TirBuilder("matmul")
    f.attr("op_kind", "matmul")
    x = f.arg("X", sa, a.dtype)
    w = f.arg("W", sb, b.dtype)
    y = f.out("Y", out_shape, out_dtype)

    padded_out = list(batch) + [m, n]
    axes = f.spatial(*padded_out)
    if len(padded_out) == 1:
        axes = (axes,)
    axes = list(axes)
    kv = f.reduce(k)

    batch_axes = axes[:-2]
    mi, ni = axes[-2], axes[-1]

    def operand_idx(shape_full, row, col):
        # Map padded batch axes onto the operand, collapsing broadcasts.
        idx = []
        obatch = shape_full[:-2]
        offset = len(batch) - len(obatch)
        for d, dim in enumerate(obatch):
            is_one = sym.is_static(dim) and sym.as_static_int(sym.simplify(dim)) == 1
            idx.append(sym.IntImm(0) if is_one else batch_axes[offset + d])
        idx.extend([row, col])
        return idx

    a_idx = operand_idx(a2, mi, kv)
    b_idx = operand_idx(b2, ni, kv) if transpose_b else operand_idx(b2, kv, ni)
    if len(sa) == 1:
        a_idx = [kv]
    if len(sb) == 1:
        b_idx = [kv]

    a_read = x[tuple(a_idx)]
    b_read = w[tuple(b_idx)]
    if out_dtype and out_dtype != a.dtype:
        a_read = tir.cast(out_dtype, a_read)
        b_read = tir.cast(out_dtype, b_read)

    out_idx = list(axes)
    if squeeze_front:
        out_idx.pop(-2)
    if squeeze_back:
        out_idx.pop(-1)
    f.store(y, out_idx, a_read * b_read, combiner="sum", init=0.0)
    return Legalized(
        f.build(), [call.args[0], call.args[1]], TensorAnn(out_shape, out_dtype)
    )


matmul_op = register_op("matmul", deduce=_deduce, legalize=_legalize)


def matmul(a: Expr, b: Expr, out_dtype: Optional[str] = None,
           transpose_b: bool = False) -> Call:
    """Batched matrix multiplication with NumPy broadcasting semantics.

    ``transpose_b`` contracts against the *rows* of ``b`` (reading the
    stored layout directly), so tied-embedding LM heads avoid materializing
    a transposed weight copy."""
    attrs = {}
    if out_dtype:
        attrs["out_dtype"] = out_dtype
    if transpose_b:
        attrs["transpose_b"] = True
    return Call(matmul_op, [a, b], attrs=attrs)


register_fuzz("matmul", "matmul", matmul, weight=1.5)
