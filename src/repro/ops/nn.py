"""Neural-network operators: softmax, rms_norm, layer_norm, rotary
embeddings (RoPE), and causal attention masks.

These are the operators the paper's LLM evaluation leans on: RMSNorm is one
of the fusion examples in §5.2, and RoPE with a *symbolic position offset*
exercises the Fig. 8 pattern — the offset is a symbolic variable not
inferable from any buffer shape, so legalization threads it through
``call_tir``'s extra symbolic arguments.
"""

from __future__ import annotations

from typing import Optional

from .. import sym, tir
from ..core.annotations import TensorAnn
from ..core.expr import Call, Expr, ShapeExpr
from .registry import (
    Legalized,
    register_fuzz,
    register_op,
    require_known_shape,
    spatial_axes,
    tensor_ann_of,
)


def _last_axis(shape):
    return len(shape) - 1


# -- softmax ----------------------------------------------------------------------


def _softmax_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "softmax", 0)
    return TensorAnn(x.shape, x.dtype) if x.shape is not None else x


def _softmax_legalize(call: Call) -> Legalized:
    x = tensor_ann_of(call.args[0], "softmax", 0)
    shape = require_known_shape(x, "softmax")
    axis = _last_axis(shape)
    outer = list(shape[:axis])
    inner = shape[axis]

    f = tir.TirBuilder("softmax")
    src = f.arg("X", shape, x.dtype)
    dst = f.out("Y", shape, x.dtype)
    mx = f.alloc("mx", outer or (1,), x.dtype)
    sm = f.alloc("sm", outer or (1,), x.dtype)

    def outer_idx(axes):
        return axes if outer else [sym.IntImm(0)]

    axes = spatial_axes(f, outer)
    r = f.reduce(inner)
    f.store(mx, outer_idx(axes), src[tuple(axes + [r])], combiner="max")

    axes = spatial_axes(f, outer)
    r = f.reduce(inner)
    f.store(
        sm,
        outer_idx(axes),
        tir.exp(src[tuple(axes + [r])] - mx[tuple(outer_idx(axes))]),
        combiner="sum",
        init=0.0,
    )

    axes = spatial_axes(f, outer)
    j = f.spatial(inner)
    f.store(
        dst,
        axes + [j],
        tir.exp(src[tuple(axes + [j])] - mx[tuple(outer_idx(axes))])
        / sm[tuple(outer_idx(axes))],
    )
    return Legalized(f.build(), [call.args[0]], TensorAnn(shape, x.dtype))


softmax_op = register_op("softmax", _softmax_deduce, _softmax_legalize)


def softmax(x: Expr) -> Call:
    """Softmax over the last axis."""
    return Call(softmax_op, [x])


register_fuzz("softmax", "unary", softmax, float_only=True)


# -- rms_norm ---------------------------------------------------------------------


def _rms_norm_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "rms_norm", 0)
    return TensorAnn(x.shape, x.dtype) if x.shape is not None else x


def _rms_norm_legalize(call: Call) -> Legalized:
    x = tensor_ann_of(call.args[0], "rms_norm", 0)
    w = tensor_ann_of(call.args[1], "rms_norm", 1)
    shape = require_known_shape(x, "rms_norm")
    eps = call.attrs.get("eps", 1e-5)
    axis = _last_axis(shape)
    outer = list(shape[:axis])
    inner = shape[axis]

    f = tir.TirBuilder("rms_norm")
    src = f.arg("X", shape, x.dtype)
    weight = f.arg("W", w.shape, w.dtype)
    dst = f.out("Y", shape, x.dtype)
    ss = f.alloc("ss", outer or (1,), x.dtype)

    def outer_idx(axes):
        return axes if outer else [sym.IntImm(0)]

    axes = spatial_axes(f, outer)
    r = f.reduce(inner)
    val = src[tuple(axes + [r])]
    f.store(ss, outer_idx(axes), val * val, combiner="sum", init=0.0)

    axes = spatial_axes(f, outer)
    j = f.spatial(inner)
    denom = tir.rsqrt(
        ss[tuple(outer_idx(axes))] / tir.cast(x.dtype, tir.IndexValue(inner)) + eps
    )
    f.store(dst, axes + [j], src[tuple(axes + [j])] * denom * weight[j])
    return Legalized(
        f.build(), [call.args[0], call.args[1]], TensorAnn(shape, x.dtype)
    )


rms_norm_op = register_op("rms_norm", _rms_norm_deduce, _rms_norm_legalize)


def rms_norm(x: Expr, weight: Expr, eps: float = 1e-5) -> Call:
    """RMS normalization over the last axis, scaled by ``weight``."""
    return Call(rms_norm_op, [x, weight], attrs={"eps": eps})


# -- layer_norm --------------------------------------------------------------------


def _layer_norm_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "layer_norm", 0)
    return TensorAnn(x.shape, x.dtype) if x.shape is not None else x


def _layer_norm_legalize(call: Call) -> Legalized:
    x = tensor_ann_of(call.args[0], "layer_norm", 0)
    g = tensor_ann_of(call.args[1], "layer_norm", 1)
    b = tensor_ann_of(call.args[2], "layer_norm", 2)
    shape = require_known_shape(x, "layer_norm")
    eps = call.attrs.get("eps", 1e-5)
    axis = _last_axis(shape)
    outer = list(shape[:axis])
    inner = shape[axis]

    f = tir.TirBuilder("layer_norm")
    src = f.arg("X", shape, x.dtype)
    gamma = f.arg("G", g.shape, g.dtype)
    beta = f.arg("B", b.shape, b.dtype)
    dst = f.out("Y", shape, x.dtype)
    mu = f.alloc("mu", outer or (1,), x.dtype)
    var = f.alloc("var", outer or (1,), x.dtype)

    def outer_idx(axes):
        return axes if outer else [sym.IntImm(0)]

    inner_count = tir.cast(x.dtype, tir.IndexValue(inner))

    axes = spatial_axes(f, outer)
    r = f.reduce(inner)
    f.store(
        mu, outer_idx(axes), src[tuple(axes + [r])] / inner_count,
        combiner="sum", init=0.0,
    )

    axes = spatial_axes(f, outer)
    r = f.reduce(inner)
    diff = src[tuple(axes + [r])] - mu[tuple(outer_idx(axes))]
    f.store(
        var, outer_idx(axes), diff * diff / inner_count, combiner="sum", init=0.0
    )

    axes = spatial_axes(f, outer)
    j = f.spatial(inner)
    norm = (src[tuple(axes + [j])] - mu[tuple(outer_idx(axes))]) * tir.rsqrt(
        var[tuple(outer_idx(axes))] + eps
    )
    f.store(dst, axes + [j], norm * gamma[j] + beta[j])
    return Legalized(
        f.build(),
        [call.args[0], call.args[1], call.args[2]],
        TensorAnn(shape, x.dtype),
    )


layer_norm_op = register_op("layer_norm", _layer_norm_deduce, _layer_norm_legalize)


def layer_norm(x: Expr, gamma: Expr, beta: Expr, eps: float = 1e-5) -> Call:
    """Layer normalization over the last axis."""
    return Call(layer_norm_op, [x, gamma, beta], attrs={"eps": eps})


# -- rotary position embedding ---------------------------------------------------------


def _rope_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "rope", 0)
    return TensorAnn(x.shape, x.dtype) if x.shape is not None else x


def _rope_legalize(call: Call) -> Legalized:
    x = tensor_ann_of(call.args[0], "rope", 0)
    shape = require_known_shape(x, "rope")
    if len(shape) != 4:
        raise ValueError("rope expects (batch, seq, heads, head_dim)")
    offset = sym.PrimExpr.convert(call.attrs["offset"])
    theta_base = float(call.attrs.get("theta", 10000.0))
    bsz, seq, heads, dim = shape
    if not sym.is_static(dim):
        raise ValueError("rope head_dim must be static")
    half = sym.as_static_int(sym.simplify(dim)) // 2

    f = tir.TirBuilder("rope")
    src = f.arg("X", shape, x.dtype)
    offs = None
    if len(call.args) > 1:
        # Per-sequence position offsets (ragged decode batches: every
        # sequence sits at its own cache length).
        off_ann = tensor_ann_of(call.args[1], "rope", 1)
        offs = f.arg("P", off_ann.shape, off_ann.dtype)
    dst = f.out("Y", shape, x.dtype)
    b, s, h, d = f.spatial(bsz, seq, heads, dim)
    if offs is not None:
        pos = tir.cast("f32", tir.IndexValue(s + offset)) + tir.cast(
            "f32", offs[b]
        )
    else:
        pos = tir.cast("f32", tir.IndexValue(s + offset))
    freq_idx = tir.cast("f32", tir.IndexValue(d % half))
    inv_freq = tir.BinValue(
        "pow", tir.FloatConst(theta_base), freq_idx * (-2.0 / (2 * half))
    )
    angle = pos * inv_freq
    # Both select branches are evaluated over the full grid, so indices are
    # wrapped with mod to stay in range; select discards the wrong branch.
    dim_int = 2 * half
    rotated = tir.select(
        tir.lt(tir.IndexValue(d), half),
        -src[b, s, h, (d + half) % dim_int],
        src[b, s, h, (d + half) % dim_int],
    )
    out_val = src[b, s, h, d] * tir.cos(angle) + rotated * tir.sin(angle)
    if x.dtype != "f32":
        out_val = tir.cast(x.dtype, out_val)
    f.store(dst, [b, s, h, d], out_val)
    return Legalized(f.build(), list(call.args), TensorAnn(shape, x.dtype))


rope_op = register_op("rope", _rope_deduce, _rope_legalize)


def rope(x: Expr, offset: sym.ExprLike = 0, theta: float = 10000.0,
         offsets: Optional[Expr] = None) -> Call:
    """Rotary position embedding; ``offset`` may be a symbolic expression
    (the KV-cache length during decode).  ``offsets`` — a (batch,) integer
    tensor — adds a *per-sequence* position base on top of ``offset``, for
    ragged decode batches where every sequence has its own cache length."""
    args = [x] if offsets is None else [x, offsets]
    return Call(rope_op, args, attrs={"offset": sym.PrimExpr.convert(offset),
                                      "theta": theta})


# -- causal mask -----------------------------------------------------------------------


def _causal_mask_deduce(call: Call):
    target = call.args[0]
    if isinstance(target, ShapeExpr):
        return TensorAnn(target.values, call.attrs["dtype"])
    return TensorAnn(dtype=call.attrs["dtype"], ndim=2)


def _causal_mask_legalize(call: Call) -> Legalized:
    target = call.args[0]
    if not isinstance(target, ShapeExpr):
        raise ValueError("causal_mask requires a ShapeExpr target")
    s, m = target.values
    dtype = call.attrs["dtype"]
    fill = float(call.attrs["fill_value"])
    offset = sym.PrimExpr.convert(call.attrs["offset"])

    f = tir.TirBuilder("causal_mask")
    dst = f.out("M", (s, m), dtype)
    i, j = f.spatial(s, m)
    allowed = tir.Cmp("le", tir.IndexValue(j), tir.IndexValue(i + offset))
    f.store(dst, [i, j], tir.select(allowed, tir.cast(dtype, 0.0), tir.cast(dtype, fill)))
    return Legalized(f.build(), [], TensorAnn((s, m), dtype))


causal_mask_op = register_op("causal_mask", _causal_mask_deduce, _causal_mask_legalize)


def causal_mask(
    seq_q: sym.ExprLike,
    seq_k: sym.ExprLike,
    offset: Optional[sym.ExprLike] = None,
    dtype: str = "f32",
    fill_value: float = -1e9,
) -> Call:
    """Additive causal mask of shape (seq_q, seq_k).

    Query ``i`` may attend key ``j`` iff ``j <= i + offset``; the default
    offset ``seq_k - seq_q`` aligns the query block to the end of the keys
    (the standard prefill/decode layout).
    """
    seq_q = sym.PrimExpr.convert(seq_q)
    seq_k = sym.PrimExpr.convert(seq_k)
    if offset is None:
        offset = sym.simplify(seq_k - seq_q)
    return Call(
        causal_mask_op,
        [ShapeExpr([seq_q, seq_k])],
        attrs={
            "offset": sym.PrimExpr.convert(offset),
            "dtype": dtype,
            "fill_value": fill_value,
        },
    )
