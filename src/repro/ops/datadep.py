"""Data-dependent operators: unique, nonzero, argmax sampling.

``unique`` is the paper's running example (Fig. 3): its output shape
depends on runtime *values*, so forward deduction returns the coarse
annotation ``Tensor(ndim=1, dtype=...)`` and programs refine it with
``match_cast``.  These ops cannot be DPS tensor programs (no compile-time
output shape), so they legalize to opaque extern calls that the VM serves
with allocating builtins.
"""

from __future__ import annotations

from ..core.annotations import TensorAnn
from ..core.expr import Call, Expr
from .registry import register_fuzz, register_op, tensor_ann_of


def _unique_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "unique", 0)
    # Output length is data-dependent: coarse-grained annotation (§3.2).
    return TensorAnn(dtype=x.dtype, ndim=1)


def _unique_legalize(call: Call):
    # Not a DPS tensor program: handled by the extern lowering path (the
    # LegalizeOps pass rewrites it to an allocating extern call).
    return None


unique_op = register_op("unique", _unique_deduce)
unique_op.extern_name = "vm.builtin.unique"


def unique(x: Expr) -> Call:
    return Call(unique_op, [x])


def _nonzero_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "nonzero", 0)
    return TensorAnn(dtype="i64", ndim=1)


nonzero_op = register_op("nonzero", _nonzero_deduce)
nonzero_op.extern_name = "vm.builtin.nonzero"


def nonzero(x: Expr) -> Call:
    """Flat indices of nonzero elements (data-dependent output length)."""
    return Call(nonzero_op, [x])


def _argmax_deduce(call: Call):
    x = tensor_ann_of(call.args[0], "argmax", 0)
    if x.shape is None:
        return TensorAnn(dtype="i64")
    outer = x.shape[:-1]
    # 1-d inputs produce a length-1 vector (scalar tensors stay out of the
    # DPS path, which wants at least one dimension).
    return TensorAnn(outer if outer else (1,), "i64")


def _argmax_legalize(call: Call):
    from .. import sym, tir
    from .registry import Legalized, require_known_shape

    # argmax via two stages: rowmax then first matching index (a reduction
    # with min over matching positions).
    x = tensor_ann_of(call.args[0], "argmax", 0)
    shape = require_known_shape(x, "argmax")
    outer = list(shape[:-1])
    inner = shape[-1]
    f = tir.TirBuilder("argmax")
    src = f.arg("X", shape, x.dtype)
    dst = f.out("Y", outer or (1,), "i64")
    mx = f.alloc("mx", outer or (1,), x.dtype)

    from .registry import spatial_axes

    def outer_idx(axes):
        return axes if outer else [sym.IntImm(0)]

    axes = spatial_axes(f, outer)
    r = f.reduce(inner)
    f.store(mx, outer_idx(axes), src[tuple(axes + [r])], combiner="max")

    axes = spatial_axes(f, outer)
    r = f.reduce(inner)
    big = tir.IndexValue(inner)
    candidate = tir.select(
        tir.eq(src[tuple(axes + [r])], mx[tuple(outer_idx(axes))]),
        tir.IndexValue(r),
        big,
    )
    f.store(dst, outer_idx(axes), tir.cast("i64", candidate), combiner="min")
    out_ann = TensorAnn(tuple(outer) if outer else (1,), "i64")
    return Legalized(f.build(), [call.args[0]], out_ann)


argmax_op = register_op("argmax", _argmax_deduce, _argmax_legalize)


def argmax(x: Expr) -> Call:
    """Argmax over the last axis (greedy sampling in the LLM examples)."""
    return Call(argmax_op, [x])


register_fuzz("unique", "datadep", unique, weight=0.8)
register_fuzz("nonzero", "datadep", nonzero, weight=0.5)
register_fuzz("argmax", "argmax", argmax, weight=0.8)
