"""Graph-level operators with registered shape deduction and legalization.

Importing this package registers every operator with the core Op registry;
each operator carries a forward shape-deduction rule (§4.1) and, for all
but the data-dependent ops, a legalization rule generating the loop-level
tensor program (§4.7 "generate tensor programs for all high-level operator
calls").
"""

from .registry import (
    FuzzOpSpec,
    Legalized,
    finalize_prim_func,
    fuzz_spec,
    fuzz_specs,
    needed_sym_params,
    register_fuzz,
    register_op,
    spatial_axes,
)
from .elementwise import (
    abs_,
    add,
    astype,
    broadcast_shapes,
    divide,
    erf,
    exp,
    gelu,
    log,
    maximum,
    minimum,
    multiply,
    negative,
    power,
    relu,
    rsqrt,
    sigmoid,
    silu,
    sqrt,
    subtract,
    tanh,
)
from .matmul import matmul
from .manipulate import (
    broadcast_to,
    concat,
    expand_dims,
    flatten,
    permute_dims,
    reshape,
    split,
    squeeze,
    take,
)
from .reduce import max_, mean, min_, sum_
from .nn import causal_mask, layer_norm, rms_norm, rope, softmax
from .attention import attention
from .paged import (
    paged_attention,
    paged_cross_attention,
    paged_prefill,
    paged_verify,
)
from .create import arange, full, ones, zeros
from .datadep import argmax, nonzero, unique, unique_op
from .shape_of import shape_of, shape_of_op
from . import ccl

__all__ = [
    "FuzzOpSpec",
    "Legalized",
    "abs_",
    "add",
    "arange",
    "attention",
    "argmax",
    "astype",
    "broadcast_shapes",
    "broadcast_to",
    "causal_mask",
    "ccl",
    "concat",
    "divide",
    "erf",
    "exp",
    "expand_dims",
    "finalize_prim_func",
    "flatten",
    "full",
    "fuzz_spec",
    "fuzz_specs",
    "gelu",
    "layer_norm",
    "log",
    "matmul",
    "max_",
    "maximum",
    "mean",
    "min_",
    "minimum",
    "multiply",
    "needed_sym_params",
    "negative",
    "nonzero",
    "ones",
    "paged_attention",
    "paged_cross_attention",
    "paged_prefill",
    "paged_verify",
    "permute_dims",
    "power",
    "register_fuzz",
    "register_op",
    "relu",
    "reshape",
    "rms_norm",
    "rope",
    "rsqrt",
    "sigmoid",
    "shape_of",
    "silu",
    "softmax",
    "spatial_axes",
    "split",
    "sqrt",
    "squeeze",
    "subtract",
    "sum_",
    "take",
    "tanh",
    "unique",
    "unique_op",
    "zeros",
]
