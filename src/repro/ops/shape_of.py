"""``shape_of`` — read a tensor's shape as a first-class value.

The paper's Figure 3 opens with ``n = get_shape_value(x, axis=0)``:
shapes are values that can flow through the program (and e.g. feed
``reshape``).  When the operand's symbolic shape is known, legalization
replaces the call with a plain ``ShapeExpr`` over the same symbolic
expressions — a purely static rewrite.  For coarse operands the VM builtin
reads the shape at runtime.
"""

from __future__ import annotations

from ..core.annotations import ShapeAnn
from ..core.expr import Call, Expr
from .registry import register_fuzz, register_op, tensor_ann_of


def _deduce(call: Call):
    x = tensor_ann_of(call.args[0], "shape_of", 0)
    if x.shape is not None:
        return ShapeAnn(x.shape)
    return ShapeAnn(ndim=x.ndim)


shape_of_op = register_op("shape_of", _deduce)
shape_of_op.extern_name = "vm.builtin.shape_of"


def shape_of(x: Expr) -> Call:
    """The tensor's shape as a first-class Shape value."""
    return Call(shape_of_op, [x])


register_fuzz("shape_of", "shape_of", shape_of, weight=0.6)
