"""Reduction operators: sum, max, min, mean (over one axis or all axes)."""

from __future__ import annotations

from typing import Optional

from .. import sym, tir
from ..core.annotations import TensorAnn
from ..core.expr import Call, Expr
from .registry import (
    Legalized,
    register_fuzz,
    register_op,
    require_known_shape,
    spatial_axes,
    tensor_ann_of,
)


def _norm_axis(axis: Optional[int], ndim: int) -> Optional[int]:
    if axis is None:
        return None
    axis = axis if axis >= 0 else axis + ndim
    if not 0 <= axis < ndim:
        raise ValueError(f"reduction axis {axis} out of range for ndim {ndim}")
    return axis


def _reduce_out_shape(shape, axis: Optional[int], keepdims: bool):
    if axis is None:
        return (sym.IntImm(1),) * len(shape) if keepdims else ()
    out = list(shape)
    if keepdims:
        out[axis] = sym.IntImm(1)
    else:
        out.pop(axis)
    return tuple(out)


def _reduce_deduce(name: str):
    def deduce(call: Call):
        x = tensor_ann_of(call.args[0], name, 0)
        axis = call.attrs["axis"]
        keepdims = call.attrs["keepdims"]
        if x.shape is None:
            return TensorAnn(dtype=x.dtype)
        axis = _norm_axis(axis, len(x.shape))
        return TensorAnn(_reduce_out_shape(x.shape, axis, keepdims), x.dtype)

    return deduce


def _reduce_legalize(name: str, combiner: str, mean: bool = False):
    def legalize(call: Call) -> Legalized:
        x = tensor_ann_of(call.args[0], name, 0)
        shape = require_known_shape(x, name)
        axis = _norm_axis(call.attrs["axis"], len(shape))
        keepdims = call.attrs["keepdims"]
        out_shape = _reduce_out_shape(shape, axis, keepdims)

        f = tir.TirBuilder(name)
        src = f.arg("X", shape, x.dtype)
        dst = f.out("Y", out_shape, x.dtype)

        if axis is None:
            spatial = []
            reduce_axes = list(range(len(shape)))
        else:
            spatial = [d for d in range(len(shape)) if d != axis]
            reduce_axes = [axis]

        s_vars = spatial_axes(f, [shape[d] for d in spatial])
        r_vars = [f.reduce(shape[d]) for d in reduce_axes]

        src_idx = [None] * len(shape)
        for pos, d in enumerate(spatial):
            src_idx[d] = s_vars[pos]
        for pos, d in enumerate(reduce_axes):
            src_idx[d] = r_vars[pos]

        out_idx = list(s_vars)
        if keepdims:
            full = []
            pos = 0
            for d in range(len(shape)):
                if axis is None or d == axis:
                    full.append(sym.IntImm(0))
                else:
                    full.append(s_vars[pos])
                    pos += 1
            out_idx = full

        value = src[tuple(src_idx)]
        reduce_count = sym.shape_product([shape[d] for d in reduce_axes])
        init = 0.0 if combiner == "sum" else None
        if mean:
            value = value / tir.cast(x.dtype, tir.IndexValue(reduce_count))
        f.store(dst, out_idx, value, combiner=combiner, init=init)
        return Legalized(f.build(), [call.args[0]], TensorAnn(out_shape, x.dtype))

    return legalize


sum_op = register_op("sum", _reduce_deduce("sum"), _reduce_legalize("sum", "sum"))
max_op = register_op("max", _reduce_deduce("max"), _reduce_legalize("max", "max"))
min_op = register_op("min", _reduce_deduce("min"), _reduce_legalize("min", "min"))
mean_op = register_op(
    "mean", _reduce_deduce("mean"), _reduce_legalize("mean", "sum", mean=True)
)


def _make(op):
    def make(x: Expr, axis: Optional[int] = None, keepdims: bool = False) -> Call:
        return Call(op, [x], attrs={"axis": axis, "keepdims": keepdims})

    return make


sum_ = _make(sum_op)
max_ = _make(max_op)
min_ = _make(min_op)
mean = _make(mean_op)

register_fuzz("sum", "reduce", sum_)
register_fuzz("max", "reduce", max_)
register_fuzz("min", "reduce", min_)
register_fuzz("mean", "reduce", mean)
