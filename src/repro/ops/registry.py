"""Operator registration utilities.

Every graph-level operator registers (paper §4.1, §4.7):

* a **shape deduction rule** — forward deduction from input annotations
  (and input *values*, e.g. the target ShapeExpr of ``reshape``);
* a **legalization rule** — emit the loop-level tensor program implementing
  the operator, so the pipeline can lower every remaining high-level call
  to ``call_tir``.

A legalization returns a :class:`Legalized` bundle; the LegalizeOps pass
adds the PrimFunc to the module and rewrites the call site, wiring up the
extra symbolic arguments (Fig. 8) when the tensor program has symbolic
variables not inferable from its buffer shapes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from .. import sym
from ..core.annotations import Annotation, TensorAnn
from ..core.expr import Call, Expr, Op
from ..tir.function import PrimFunc


class Legalized:
    """Result of legalizing one operator call."""

    def __init__(
        self,
        prim_func: PrimFunc,
        args: Sequence[Expr],
        out_ann: TensorAnn,
        extern: Optional[str] = None,
    ):
        self.prim_func = prim_func
        self.args = list(args)
        self.out_ann = out_ann
        self.extern = extern  # set when legalizing to a library call instead


def register_op(
    name: str,
    deduce: Callable[[Call], Annotation],
    legalize: Optional[Callable[[Call], Legalized]] = None,
) -> Op:
    """Register a graph-level operator."""
    return Op.register(name, deduce=deduce, legalize=legalize)


class FuzzOpSpec:
    """Generator metadata for one operator (consumed by :mod:`repro.fuzz`).

    ``kind`` selects the generation strategy (how inputs/attrs are drawn);
    ``make`` is the user-facing constructor the generator calls; ``weight``
    biases how often the op is attempted; ``meta`` carries per-op hints
    (e.g. ``fill="any"`` for ``full``).
    """

    def __init__(self, name: str, kind: str, make: Callable[..., Call],
                 weight: float = 1.0, meta: Optional[Mapping] = None):
        self.name = name
        self.kind = kind
        self.make = make
        self.weight = float(weight)
        self.meta = dict(meta or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FuzzOpSpec({self.name!r}, kind={self.kind!r})"


_FUZZ_SPECS: Dict[str, FuzzOpSpec] = {}


def register_fuzz(name: str, kind: str, make: Callable[..., Call],
                  weight: float = 1.0, **meta) -> FuzzOpSpec:
    """Register generator metadata for operator ``name``.

    Op modules call this next to :func:`register_op`; the structured
    program generator draws its vocabulary from this table, so an op
    without a spec is simply never generated (safe default for ops whose
    preconditions the generator cannot satisfy).
    """
    spec = FuzzOpSpec(name, kind, make, weight, meta)
    _FUZZ_SPECS[name] = spec
    return spec


def fuzz_spec(name: str) -> FuzzOpSpec:
    """The registered spec for ``name`` (KeyError when absent)."""
    return _FUZZ_SPECS[name]


def fuzz_specs(kind: Optional[str] = None) -> List[FuzzOpSpec]:
    """All registered specs, deterministically ordered by (kind, name)."""
    specs = sorted(_FUZZ_SPECS.values(), key=lambda s: (s.kind, s.name))
    if kind is not None:
        specs = [s for s in specs if s.kind == kind]
    return specs


def tensor_ann_of(expr: Expr, op_name: str, arg_idx: int) -> TensorAnn:
    """Input annotation as a TensorAnn, or raise a clear error."""
    ann = expr.ann
    if not isinstance(ann, TensorAnn):
        raise TypeError(
            f"{op_name}: argument {arg_idx} must be a tensor, got {ann}"
        )
    return ann


def require_known_shape(ann: TensorAnn, op_name: str) -> tuple:
    if ann.shape is None:
        raise ValueError(
            f"{op_name}: requires a known (symbolic) input shape, got {ann}; "
            "insert a match_cast to provide one"
        )
    return ann.shape


def spatial_axes(builder, extents) -> list:
    """Declare spatial loops and always get back a list of variables."""
    extents = list(extents)
    if not extents:
        return []
    got = builder.spatial(*extents)
    return [got] if len(extents) == 1 else list(got)


def needed_sym_params(func: PrimFunc) -> List[sym.SymVar]:
    """Symbolic variables of ``func`` not inferable from its buffer shapes.

    A variable is inferable when it appears *alone* as a dimension of some
    parameter buffer (inputs or the DPS outputs).  The rest must be passed
    explicitly — the extra symbolic arguments of Fig. 8.
    """
    inferable = set()
    for buf in func.params:
        for dim in buf.shape:
            if isinstance(dim, sym.SymVar):
                inferable.add(dim.key())
    return [v for v in func.free_sym_vars() if v.key() not in inferable]


def finalize_prim_func(func: PrimFunc) -> PrimFunc:
    """Attach the required explicit symbolic parameters to ``func``."""
    needed = needed_sym_params(func)
    if not needed:
        return func
    return PrimFunc(
        name=func.name,
        params=func.params,
        stages=func.stages,
        num_outputs=func.num_outputs,
        sym_params=needed,
        attrs=dict(func.attrs),
    )
