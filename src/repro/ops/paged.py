"""Paged attention: decode over a block-table-indexed KV pool.

The serving engine (``repro.serve``) keeps KV caches in fixed-size pages
shared by all sequences; a decode batch carries a per-sequence *block
table* mapping logical cache positions to pages.  The ``paged_attention``
operator makes that layout a first-class IR citizen: legalization emits a
multi-stage tensor program whose key/value reads are data-dependent
``GatherRead``s through the block table (the same Opaque-gather machinery
as ``take``), and library dispatch can instead lower the call to the
FlashAttention-style paged kernel in the registry on CUDA/ROCm.

Layout (``B`` = static page size, ``p``/``w``/``b`` symbolic):

* ``q``            — (b, s, h, d) queries (decode: s == 1);
* ``k_pages``      — (p, B, h_kv, d) pooled keys, all sequences mixed;
* ``v_pages``      — (p, B, h_kv, d) pooled values;
* ``block_table``  — (b, w) int64, logical block ``j`` of sequence ``i``
  lives in page ``block_table[i, j]``;
* ``lengths``      — (b,) int64, valid *past* positions per sequence;
* ``k_cur``/``v_cur`` — (b, s, h_kv, d) keys/values of the current query
  positions (functional IR cannot write the pool in place, so the freshly
  projected K/V ride along and the host appends them after the call).

Query ``i`` of sequence ``bi`` attends every paged position
``j < lengths[bi]`` plus current positions ``t <= i`` (causal inside the
query block).  Because select evaluates both branches over the full grid
(``np.where`` semantics), *padding entries of the block table must hold a
valid page index* — 0 works — even though the mask discards them.
"""

from __future__ import annotations

from .. import sym, tir
from ..core.annotations import TensorAnn
from ..core.expr import Call, Expr
from .registry import (
    Legalized,
    register_fuzz,
    register_op,
    require_known_shape,
    tensor_ann_of,
)

_ARG_NAMES = ("q", "k_pages", "v_pages", "block_table", "lengths",
              "k_cur", "v_cur")


def _deduce(call: Call):
    q = tensor_ann_of(call.args[0], "paged_attention", 0)
    lengths = tensor_ann_of(call.args[4], "paged_attention", 4)
    if lengths.dtype not in ("i64", "i32"):
        raise TypeError("paged_attention: lengths must be an integer tensor")
    table = tensor_ann_of(call.args[3], "paged_attention", 3)
    if table.dtype not in ("i64", "i32"):
        raise TypeError("paged_attention: block_table must be an integer tensor")
    if q.shape is None:
        return TensorAnn(dtype=q.dtype, ndim=4)
    return TensorAnn(q.shape, q.dtype)


def _legalize(call: Call) -> Legalized:
    anns = [tensor_ann_of(a, "paged_attention", i)
            for i, a in enumerate(call.args)]
    q_ann, kp_ann, vp_ann, bt_ann, len_ann, kc_ann, vc_ann = anns
    q_shape = require_known_shape(q_ann, "paged_attention")
    kp_shape = require_known_shape(kp_ann, "paged_attention")
    bt_shape = require_known_shape(bt_ann, "paged_attention")
    kc_shape = require_known_shape(kc_ann, "paged_attention")

    b, s, h, d = q_shape
    page = kp_shape[1]
    h_kv = kp_shape[2]
    w = bt_shape[1]
    if not (sym.is_static(h) and sym.is_static(h_kv) and sym.is_static(d)
            and sym.is_static(page)):
        raise ValueError(
            "paged_attention: head counts, head_dim and the page size must "
            "be static"
        )
    page_i = sym.as_static_int(sym.simplify(page))
    group = sym.as_static_int(sym.simplify(h)) // sym.as_static_int(
        sym.simplify(h_kv)
    )
    scale = 1.0 / (sym.as_static_int(sym.simplify(d)) ** 0.5)
    wb = sym.simplify(w * page_i)  # paged key positions per sequence

    f = tir.TirBuilder("paged_attention")
    f.attr("op_kind", "attention")
    qb = f.arg("Q", q_shape, q_ann.dtype)
    kpb = f.arg("KP", kp_shape, kp_ann.dtype)
    vpb = f.arg("VP", vp_ann.shape, vp_ann.dtype)
    btb = f.arg("BT", bt_shape, bt_ann.dtype)
    lnb = f.arg("LN", len_ann.shape, len_ann.dtype)
    kcb = f.arg("KC", kc_shape, kc_ann.dtype)
    vcb = f.arg("VC", vc_ann.shape, vc_ann.dtype)
    ob = f.out("O", q_shape, q_ann.dtype)

    acc = "f32"
    s_page = f.alloc("SP", (b, h, s, wb), acc)   # paged scores
    s_cur = f.alloc("SC", (b, h, s, s), acc)     # current-block scores
    m_page = f.alloc("MP", (b, h, s), acc)
    m_cur = f.alloc("MC", (b, h, s), acc)
    m_all = f.alloc("M", (b, h, s), acc)
    e_page = f.alloc("EP", (b, h, s), acc)
    e_cur = f.alloc("EC", (b, h, s), acc)
    e_all = f.alloc("E", (b, h, s), acc)
    acc_page = f.alloc("AP", (b, s, h, d), acc)
    acc_cur = f.alloc("AC", (b, s, h, d), acc)

    def gather(data, bi, ji, kv_head, di):
        # data[block_table[bi, ji // B], ji % B, kv_head, di]
        return tir.GatherRead(
            data, btb, (), (bi, ji // page_i),
            (ji % page_i, kv_head, di),
        )

    def masked_page(expr, bi, ji):
        # Paged position ji is valid iff ji < lengths[bi]; both branches
        # evaluate, so padding pages are read then discarded.
        valid = tir.Cmp("lt", tir.IndexValue(ji), lnb[bi])
        return tir.select(valid, expr, -1e9)

    def masked_cur(expr, si, ti):
        # Causal inside the current query block.
        allowed = tir.Cmp("le", tir.IndexValue(ti), tir.IndexValue(si))
        return tir.select(allowed, expr, -1e9)

    # Stage 1: scaled scores against the paged keys (gather via the table).
    bi, hi, si, ji = f.spatial(b, h, s, wb)
    di = f.reduce(d)
    prod = tir.cast(acc, qb[bi, si, hi, di]) * tir.cast(
        acc, gather(kpb, bi, ji, hi // group, di)
    )
    f.store(s_page, [bi, hi, si, ji], prod * scale, combiner="sum", init=0.0)

    # Stage 2: scaled scores against the current-block keys.
    bi, hi, si, ti = f.spatial(b, h, s, s)
    di = f.reduce(d)
    prod = tir.cast(acc, qb[bi, si, hi, di]) * tir.cast(
        acc, kcb[bi, ti, hi // group, di]
    )
    f.store(s_cur, [bi, hi, si, ti], prod * scale, combiner="sum", init=0.0)

    # Stages 3-5: running max over both score groups.
    bi, hi, si = f.spatial(b, h, s)
    ji = f.reduce(wb)
    f.store(m_page, [bi, hi, si],
            masked_page(s_page[bi, hi, si, ji], bi, ji), combiner="max")

    bi, hi, si = f.spatial(b, h, s)
    ti = f.reduce(s)
    f.store(m_cur, [bi, hi, si],
            masked_cur(s_cur[bi, hi, si, ti], si, ti), combiner="max")

    bi, hi, si = f.spatial(b, h, s)
    f.store(m_all, [bi, hi, si],
            tir.vmax(m_page[bi, hi, si], m_cur[bi, hi, si]))

    # Stages 6-8: exp-sums (masked positions contribute exp(-1e9 - M) ~ 0).
    bi, hi, si = f.spatial(b, h, s)
    ji = f.reduce(wb)
    f.store(
        e_page, [bi, hi, si],
        tir.exp(masked_page(s_page[bi, hi, si, ji], bi, ji)
                - m_all[bi, hi, si]),
        combiner="sum", init=0.0,
    )

    bi, hi, si = f.spatial(b, h, s)
    ti = f.reduce(s)
    f.store(
        e_cur, [bi, hi, si],
        tir.exp(masked_cur(s_cur[bi, hi, si, ti], si, ti)
                - m_all[bi, hi, si]),
        combiner="sum", init=0.0,
    )

    bi, hi, si = f.spatial(b, h, s)
    f.store(e_all, [bi, hi, si], e_page[bi, hi, si] + e_cur[bi, hi, si])

    # Stage 9: probability-weighted paged values (gather again).
    bi, si, hi, di = f.spatial(b, s, h, d)
    ji = f.reduce(wb)
    prob = tir.exp(
        masked_page(s_page[bi, hi, si, ji], bi, ji) - m_all[bi, hi, si]
    ) / e_all[bi, hi, si]
    f.store(acc_page, [bi, si, hi, di],
            prob * tir.cast(acc, gather(vpb, bi, ji, hi // group, di)),
            combiner="sum", init=0.0)

    # Stage 10: probability-weighted current-block values.
    bi, si, hi, di = f.spatial(b, s, h, d)
    ti = f.reduce(s)
    prob = tir.exp(
        masked_cur(s_cur[bi, hi, si, ti], si, ti) - m_all[bi, hi, si]
    ) / e_all[bi, hi, si]
    f.store(acc_cur, [bi, si, hi, di],
            prob * tir.cast(acc, vcb[bi, ti, hi // group, di]),
            combiner="sum", init=0.0)

    # Stage 11: combine the two softmax halves and cast out.
    bi, si, hi, di = f.spatial(b, s, h, d)
    f.store(
        ob, [bi, si, hi, di],
        tir.cast(q_ann.dtype,
                 acc_page[bi, si, hi, di] + acc_cur[bi, si, hi, di]),
    )

    return Legalized(
        f.build(), list(call.args), TensorAnn(q_shape, q_ann.dtype)
    )


paged_attention_op = register_op("paged_attention", _deduce, _legalize)


def paged_attention(q: Expr, k_pages: Expr, v_pages: Expr, block_table: Expr,
                    lengths: Expr, k_cur: Expr, v_cur: Expr) -> Call:
    """Attention over a paged KV pool plus the current query block."""
    return Call(
        paged_attention_op,
        [q, k_pages, v_pages, block_table, lengths, k_cur, v_cur],
    )


register_fuzz("paged_attention", "paged_attention", paged_attention,
              weight=1.5)


# ---------------------------------------------------------------------------
# paged_prefill: chunked prefill over the page pool, bit-exact vs. dense.
# ---------------------------------------------------------------------------

_PREFILL_ARG_NAMES = ("q", "k_pages", "v_pages", "block_table", "past",
                      "k_cur", "v_cur")


def _prefill_deduce(call: Call):
    q = tensor_ann_of(call.args[0], "paged_prefill", 0)
    table = tensor_ann_of(call.args[3], "paged_prefill", 3)
    if table.dtype not in ("i64", "i32"):
        raise TypeError("paged_prefill: block_table must be an integer tensor")
    past = tensor_ann_of(call.args[4], "paged_prefill", 4)
    if past.dtype not in ("i64", "i32"):
        raise TypeError("paged_prefill: past must be an integer tensor")
    if past.shape is not None and len(past.shape) != 1:
        raise TypeError("paged_prefill: past must be rank 1 (its length "
                        "anchors the cached-context dim)")
    if q.shape is None:
        return TensorAnn(dtype=q.dtype, ndim=4)
    return TensorAnn(q.shape, q.dtype)


def _prefill_legalize(call: Call) -> Legalized:
    anns = [tensor_ann_of(a, "paged_prefill", i)
            for i, a in enumerate(call.args)]
    q_ann, kp_ann, vp_ann, bt_ann, past_ann, kc_ann, vc_ann = anns
    q_shape = require_known_shape(q_ann, "paged_prefill")
    kp_shape = require_known_shape(kp_ann, "paged_prefill")
    bt_shape = require_known_shape(bt_ann, "paged_prefill")
    past_shape = require_known_shape(past_ann, "paged_prefill")
    kc_shape = require_known_shape(kc_ann, "paged_prefill")

    b, s, h, d = q_shape
    page = kp_shape[1]
    h_kv = kp_shape[2]
    m = past_shape[0]  # cached context length (anchor argument's extent)
    if not (sym.is_static(h) and sym.is_static(h_kv) and sym.is_static(d)
            and sym.is_static(page)):
        raise ValueError(
            "paged_prefill: head counts, head_dim and the page size must "
            "be static"
        )
    page_i = sym.as_static_int(sym.simplify(page))
    group = sym.as_static_int(sym.simplify(h)) // sym.as_static_int(
        sym.simplify(h_kv)
    )
    scale = 1.0 / (sym.as_static_int(sym.simplify(d)) ** 0.5)
    # Total key positions: m cached + s current.  The block table must
    # cover all of them (w * page >= m + s): column j < m gathers page
    # j // page of the sequence, and the gather evaluates over the whole
    # grid (np.where semantics), so even current-column reads index it.
    mk = sym.simplify(m + s)

    # The tensor program mirrors the dense ``attention`` legalization
    # stage for stage — same four reductions over the same m + s key
    # columns — so the interpreter's pairwise summations group floats
    # identically and the outputs are bit-exact against the dense
    # prefill reference (unlike paged_attention's two-group online
    # softmax, which only matches to rounding).
    f = tir.TirBuilder("paged_prefill")
    f.attr("op_kind", "attention")
    qb = f.arg("Q", q_shape, q_ann.dtype)
    kpb = f.arg("KP", kp_shape, kp_ann.dtype)
    vpb = f.arg("VP", vp_ann.shape, vp_ann.dtype)
    btb = f.arg("BT", bt_shape, bt_ann.dtype)
    f.arg("PAST", past_shape, past_ann.dtype)  # anchor only: binds m
    kcb = f.arg("KC", kc_shape, kc_ann.dtype)
    vcb = f.arg("VC", vc_ann.shape, vc_ann.dtype)
    ob = f.out("O", q_shape, q_ann.dtype)

    acc = q_ann.dtype if q_ann.dtype == "f32" else "f32"
    scores = f.alloc("S", (b, h, s, mk), acc)
    row_max = f.alloc("M", (b, h, s), acc)
    row_sum = f.alloc("E", (b, h, s), acc)

    def kv_read(pool, cur, bi, ji, kv_head, di):
        # Key/value column ji: cached columns (ji < m) gather their page
        # through the block table; current columns read this chunk's
        # freshly projected K/V.  Both branches evaluate, so the current
        # read clamps ji - m at zero to stay in bounds.
        paged = tir.GatherRead(
            pool, btb, (), (bi, ji // page_i),
            (ji % page_i, kv_head, di),
        )
        local = cur[bi, sym.Max(ji - m, sym.IntImm(0)), kv_head, di]
        is_past = tir.Cmp("lt", tir.IndexValue(ji), tir.IndexValue(m))
        return tir.select(is_past, paged, local)

    def masked(expr, i, j):
        # Query i sits at absolute position m + i; causal over cached
        # plus current keys is j <= i + m — the same predicate the dense
        # kernel uses with key length m + s (j <= i + (mk - s)).
        allowed = tir.Cmp("le", tir.IndexValue(j), tir.IndexValue(i + m))
        return tir.select(allowed, expr, -1e9)

    # Stage 1: scaled (masked) scores.
    bi, hi, si, ji = f.spatial(b, h, s, mk)
    di = f.reduce(d)
    prod = tir.cast(acc, qb[bi, si, hi, di]) * tir.cast(
        acc, kv_read(kpb, kcb, bi, ji, hi // group, di)
    )
    f.store(scores, [bi, hi, si, ji], prod * scale, combiner="sum", init=0.0)

    # Stage 2: row max of masked scores.
    bi, hi, si = f.spatial(b, h, s)
    ji = f.reduce(mk)
    f.store(row_max, [bi, hi, si], masked(scores[bi, hi, si, ji], si, ji),
            combiner="max")

    # Stage 3: exp-sum.
    bi, hi, si = f.spatial(b, h, s)
    ji = f.reduce(mk)
    f.store(
        row_sum,
        [bi, hi, si],
        tir.exp(masked(scores[bi, hi, si, ji], si, ji) - row_max[bi, hi, si]),
        combiner="sum",
        init=0.0,
    )

    # Stage 4: probability-weighted values.
    bi, si, hi, di = f.spatial(b, s, h, d)
    ji = f.reduce(mk)
    prob = tir.exp(
        masked(scores[bi, hi, si, ji], si, ji) - row_max[bi, hi, si]
    ) / row_sum[bi, hi, si]
    weighted = prob * tir.cast(
        acc, kv_read(vpb, vcb, bi, ji, hi // group, di)
    )
    f.store(ob, [bi, si, hi, di], tir.cast(q_ann.dtype, weighted),
            combiner="sum", init=0.0)

    return Legalized(
        f.build(), list(call.args), TensorAnn(q_shape, q_ann.dtype)
    )


paged_prefill_op = register_op("paged_prefill", _prefill_deduce,
                               _prefill_legalize)


def paged_prefill(q: Expr, k_pages: Expr, v_pages: Expr, block_table: Expr,
                  past: Expr, k_cur: Expr, v_cur: Expr) -> Call:
    """Chunked prefill attention over a paged KV pool.

    The query chunk (``s`` positions starting at offset ``m``) attends
    every cached position of its sequence — gathered from the page pool
    via the block table — plus itself, causally.  ``past`` is a rank-1
    integer *anchor*: only its length matters, binding the symbolic
    cached-context dim ``m`` at the function boundary.  The block table
    must cover ``m + s`` positions (the pages this chunk's K/V will be
    written into are already allocated).  Output is bit-exact against
    the dense ``attention`` op over the concatenated cache.
    """
    return Call(
        paged_prefill_op,
        [q, k_pages, v_pages, block_table, past, k_cur, v_cur],
    )


register_fuzz("paged_prefill", "paged_prefill", paged_prefill, weight=1.0)


# ---------------------------------------------------------------------------
# paged_verify: ragged multi-token decode for speculative verification.
# ---------------------------------------------------------------------------

_VERIFY_ARG_NAMES = ("q", "k_pages", "v_pages", "block_table", "lengths",
                     "spec_lens", "k_cur", "v_cur")


def _verify_deduce(call: Call):
    q = tensor_ann_of(call.args[0], "paged_verify", 0)
    table = tensor_ann_of(call.args[3], "paged_verify", 3)
    if table.dtype not in ("i64", "i32"):
        raise TypeError("paged_verify: block_table must be an integer tensor")
    lengths = tensor_ann_of(call.args[4], "paged_verify", 4)
    if lengths.dtype not in ("i64", "i32"):
        raise TypeError("paged_verify: lengths must be an integer tensor")
    spec = tensor_ann_of(call.args[5], "paged_verify", 5)
    if spec.dtype not in ("i64", "i32"):
        raise TypeError("paged_verify: spec_lens must be an integer tensor")
    if q.shape is None:
        return TensorAnn(dtype=q.dtype, ndim=4)
    return TensorAnn(q.shape, q.dtype)


def _verify_legalize(call: Call) -> Legalized:
    anns = [tensor_ann_of(a, "paged_verify", i)
            for i, a in enumerate(call.args)]
    (q_ann, kp_ann, vp_ann, bt_ann, len_ann, spec_ann, kc_ann,
     vc_ann) = anns
    q_shape = require_known_shape(q_ann, "paged_verify")
    kp_shape = require_known_shape(kp_ann, "paged_verify")
    bt_shape = require_known_shape(bt_ann, "paged_verify")
    kc_shape = require_known_shape(kc_ann, "paged_verify")

    b, s, h, d = q_shape
    page = kp_shape[1]
    h_kv = kp_shape[2]
    w = bt_shape[1]
    if not (sym.is_static(h) and sym.is_static(h_kv) and sym.is_static(d)
            and sym.is_static(page)):
        raise ValueError(
            "paged_verify: head counts, head_dim and the page size must "
            "be static"
        )
    page_i = sym.as_static_int(sym.simplify(page))
    group = sym.as_static_int(sym.simplify(h)) // sym.as_static_int(
        sym.simplify(h_kv)
    )
    scale = 1.0 / (sym.as_static_int(sym.simplify(d)) ** 0.5)
    wb = sym.simplify(w * page_i)  # paged key positions per sequence

    # Same two-group online softmax as ``paged_attention`` — the only
    # difference is the current-block mask, which must handle rows padded
    # past a sequence's ragged speculative width s_i <= s.
    f = tir.TirBuilder("paged_verify")
    f.attr("op_kind", "attention")
    qb = f.arg("Q", q_shape, q_ann.dtype)
    kpb = f.arg("KP", kp_shape, kp_ann.dtype)
    vpb = f.arg("VP", vp_ann.shape, vp_ann.dtype)
    btb = f.arg("BT", bt_shape, bt_ann.dtype)
    lnb = f.arg("LN", len_ann.shape, len_ann.dtype)
    slb = f.arg("SL", spec_ann.shape, spec_ann.dtype)
    kcb = f.arg("KC", kc_shape, kc_ann.dtype)
    vcb = f.arg("VC", vc_ann.shape, vc_ann.dtype)
    ob = f.out("O", q_shape, q_ann.dtype)

    acc = "f32"
    s_page = f.alloc("SP", (b, h, s, wb), acc)   # paged scores
    s_cur = f.alloc("SC", (b, h, s, s), acc)     # current-block scores
    m_page = f.alloc("MP", (b, h, s), acc)
    m_cur = f.alloc("MC", (b, h, s), acc)
    m_all = f.alloc("M", (b, h, s), acc)
    e_page = f.alloc("EP", (b, h, s), acc)
    e_cur = f.alloc("EC", (b, h, s), acc)
    e_all = f.alloc("E", (b, h, s), acc)
    acc_page = f.alloc("AP", (b, s, h, d), acc)
    acc_cur = f.alloc("AC", (b, s, h, d), acc)

    def gather(data, bi, ji, kv_head, di):
        # data[block_table[bi, ji // B], ji % B, kv_head, di]
        return tir.GatherRead(
            data, btb, (), (bi, ji // page_i),
            (ji % page_i, kv_head, di),
        )

    def masked_page(expr, bi, ji):
        # Paged position ji is valid iff ji < lengths[bi]; both branches
        # evaluate, so padding pages are read then discarded.
        valid = tir.Cmp("lt", tir.IndexValue(ji), lnb[bi])
        return tir.select(valid, expr, -1e9)

    def masked_cur(expr, bi, si, ti):
        # Current key ti is attendable from query si iff ti <= si AND
        # (ti < spec_lens[bi] OR ti == si): causal over the valid ragged
        # width, with the self term kept unconditionally so padded rows
        # (si >= spec_lens[bi]) still have a non-empty softmax and never
        # read K columns beyond their own.  For valid rows the self term
        # is already inside the width, so the escape is a no-op there.
        causal = tir.Cmp("le", tir.IndexValue(ti), tir.IndexValue(si))
        in_spec = tir.Cmp("lt", tir.IndexValue(ti), slb[bi])
        is_self = tir.Cmp("eq", tir.IndexValue(ti), tir.IndexValue(si))
        inner = tir.select(in_spec, expr, tir.select(is_self, expr, -1e9))
        return tir.select(causal, inner, -1e9)

    # Stage 1: scaled scores against the paged keys (gather via the table).
    bi, hi, si, ji = f.spatial(b, h, s, wb)
    di = f.reduce(d)
    prod = tir.cast(acc, qb[bi, si, hi, di]) * tir.cast(
        acc, gather(kpb, bi, ji, hi // group, di)
    )
    f.store(s_page, [bi, hi, si, ji], prod * scale, combiner="sum", init=0.0)

    # Stage 2: scaled scores against the current-block keys.
    bi, hi, si, ti = f.spatial(b, h, s, s)
    di = f.reduce(d)
    prod = tir.cast(acc, qb[bi, si, hi, di]) * tir.cast(
        acc, kcb[bi, ti, hi // group, di]
    )
    f.store(s_cur, [bi, hi, si, ti], prod * scale, combiner="sum", init=0.0)

    # Stages 3-5: running max over both score groups.
    bi, hi, si = f.spatial(b, h, s)
    ji = f.reduce(wb)
    f.store(m_page, [bi, hi, si],
            masked_page(s_page[bi, hi, si, ji], bi, ji), combiner="max")

    bi, hi, si = f.spatial(b, h, s)
    ti = f.reduce(s)
    f.store(m_cur, [bi, hi, si],
            masked_cur(s_cur[bi, hi, si, ti], bi, si, ti), combiner="max")

    bi, hi, si = f.spatial(b, h, s)
    f.store(m_all, [bi, hi, si],
            tir.vmax(m_page[bi, hi, si], m_cur[bi, hi, si]))

    # Stages 6-8: exp-sums (masked positions contribute exp(-1e9 - M) ~ 0).
    bi, hi, si = f.spatial(b, h, s)
    ji = f.reduce(wb)
    f.store(
        e_page, [bi, hi, si],
        tir.exp(masked_page(s_page[bi, hi, si, ji], bi, ji)
                - m_all[bi, hi, si]),
        combiner="sum", init=0.0,
    )

    bi, hi, si = f.spatial(b, h, s)
    ti = f.reduce(s)
    f.store(
        e_cur, [bi, hi, si],
        tir.exp(masked_cur(s_cur[bi, hi, si, ti], bi, si, ti)
                - m_all[bi, hi, si]),
        combiner="sum", init=0.0,
    )

    bi, hi, si = f.spatial(b, h, s)
    f.store(e_all, [bi, hi, si], e_page[bi, hi, si] + e_cur[bi, hi, si])

    # Stage 9: probability-weighted paged values (gather again).
    bi, si, hi, di = f.spatial(b, s, h, d)
    ji = f.reduce(wb)
    prob = tir.exp(
        masked_page(s_page[bi, hi, si, ji], bi, ji) - m_all[bi, hi, si]
    ) / e_all[bi, hi, si]
    f.store(acc_page, [bi, si, hi, di],
            prob * tir.cast(acc, gather(vpb, bi, ji, hi // group, di)),
            combiner="sum", init=0.0)

    # Stage 10: probability-weighted current-block values.
    bi, si, hi, di = f.spatial(b, s, h, d)
    ti = f.reduce(s)
    prob = tir.exp(
        masked_cur(s_cur[bi, hi, si, ti], bi, si, ti) - m_all[bi, hi, si]
    ) / e_all[bi, hi, si]
    f.store(acc_cur, [bi, si, hi, di],
            prob * tir.cast(acc, vcb[bi, ti, hi // group, di]),
            combiner="sum", init=0.0)

    # Stage 11: combine the two softmax halves and cast out.
    bi, si, hi, di = f.spatial(b, s, h, d)
    f.store(
        ob, [bi, si, hi, di],
        tir.cast(q_ann.dtype,
                 acc_page[bi, si, hi, di] + acc_cur[bi, si, hi, di]),
    )

    return Legalized(
        f.build(), list(call.args), TensorAnn(q_shape, q_ann.dtype)
    )


paged_verify_op = register_op("paged_verify", _verify_deduce,
                              _verify_legalize)


def paged_verify(q: Expr, k_pages: Expr, v_pages: Expr, block_table: Expr,
                 lengths: Expr, spec_lens: Expr, k_cur: Expr,
                 v_cur: Expr) -> Call:
    """Ragged multi-token paged decode for speculative verification.

    Generalizes ``paged_attention`` from s == 1 to a block of ``s``
    speculative query positions per sequence, where sequence ``bi``
    only carries ``spec_lens[bi] <= s`` valid rows (the draft proposed
    k_i tokens, plus the last accepted token, ragged across the batch).
    Query ``i`` attends every paged position ``j < lengths[bi]`` plus
    current positions ``t`` with ``t <= i`` and ``t < spec_lens[bi]``
    (self always attendable, keeping padded rows' softmax non-empty).
    Rows at or past ``spec_lens[bi]`` are padding: computed over their
    own key only, discarded by the host.
    """
    return Call(
        paged_verify_op,
        [q, k_pages, v_pages, block_table, lengths, spec_lens, k_cur, v_cur],
    )


register_fuzz("paged_verify", "paged_verify", paged_verify, weight=1.0)


# ---------------------------------------------------------------------------
# paged_cross_attention: encoder-decoder cross-attention over pool-resident
# encoder K/V, bit-exact vs. the dense non-causal ``attention`` op.
# ---------------------------------------------------------------------------

_CROSS_ARG_NAMES = ("q", "k_pages", "v_pages", "block_table", "enc")


def _cross_deduce(call: Call):
    q = tensor_ann_of(call.args[0], "paged_cross_attention", 0)
    table = tensor_ann_of(call.args[3], "paged_cross_attention", 3)
    if table.dtype not in ("i64", "i32"):
        raise TypeError(
            "paged_cross_attention: block_table must be an integer tensor"
        )
    enc = tensor_ann_of(call.args[4], "paged_cross_attention", 4)
    if enc.dtype not in ("i64", "i32"):
        raise TypeError("paged_cross_attention: enc must be an integer tensor")
    if enc.shape is not None and len(enc.shape) != 1:
        raise TypeError("paged_cross_attention: enc must be rank 1 (its "
                        "length anchors the encoder-context dim)")
    if q.shape is None:
        return TensorAnn(dtype=q.dtype, ndim=4)
    return TensorAnn(q.shape, q.dtype)


def _cross_legalize(call: Call) -> Legalized:
    anns = [tensor_ann_of(a, "paged_cross_attention", i)
            for i, a in enumerate(call.args)]
    q_ann, kp_ann, vp_ann, bt_ann, enc_ann = anns
    q_shape = require_known_shape(q_ann, "paged_cross_attention")
    kp_shape = require_known_shape(kp_ann, "paged_cross_attention")
    bt_shape = require_known_shape(bt_ann, "paged_cross_attention")
    enc_shape = require_known_shape(enc_ann, "paged_cross_attention")

    b, s, h, d = q_shape
    page = kp_shape[1]
    h_kv = kp_shape[2]
    t = enc_shape[0]  # encoder positions (anchor argument's extent)
    if not (sym.is_static(h) and sym.is_static(h_kv) and sym.is_static(d)
            and sym.is_static(page)):
        raise ValueError(
            "paged_cross_attention: head counts, head_dim and the page size "
            "must be static"
        )
    page_i = sym.as_static_int(sym.simplify(page))
    group = sym.as_static_int(sym.simplify(h)) // sym.as_static_int(
        sym.simplify(h_kv)
    )
    scale = 1.0 / (sym.as_static_int(sym.simplify(d)) ** 0.5)

    # The tensor program mirrors the dense non-causal ``attention``
    # legalization stage for stage — same four reductions over exactly the
    # t encoder columns, no mask (every encoder position is attendable and
    # the reduce extent is t, so no padding positions enter the softmax) —
    # which makes the output bit-exact against dense cross-attention over
    # the contiguous encoder K/V.  Dense non-causal attention never
    # library-dispatches, so the two lowering paths agree as well.
    f = tir.TirBuilder("paged_cross_attention")
    f.attr("op_kind", "attention")
    qb = f.arg("Q", q_shape, q_ann.dtype)
    kpb = f.arg("KP", kp_shape, kp_ann.dtype)
    vpb = f.arg("VP", vp_ann.shape, vp_ann.dtype)
    btb = f.arg("BT", bt_shape, bt_ann.dtype)
    f.arg("ENC", enc_shape, enc_ann.dtype)  # anchor only: binds t
    ob = f.out("O", q_shape, q_ann.dtype)

    acc = q_ann.dtype if q_ann.dtype == "f32" else "f32"
    scores = f.alloc("S", (b, h, s, t), acc)
    row_max = f.alloc("M", (b, h, s), acc)
    row_sum = f.alloc("E", (b, h, s), acc)

    def gather(data, bi, ji, kv_head, di):
        # data[block_table[bi, ji // B], ji % B, kv_head, di]
        return tir.GatherRead(
            data, btb, (), (bi, ji // page_i),
            (ji % page_i, kv_head, di),
        )

    # Stage 1: scaled scores.
    bi, hi, si, ji = f.spatial(b, h, s, t)
    di = f.reduce(d)
    prod = tir.cast(acc, qb[bi, si, hi, di]) * tir.cast(
        acc, gather(kpb, bi, ji, hi // group, di)
    )
    f.store(scores, [bi, hi, si, ji], prod * scale, combiner="sum", init=0.0)

    # Stage 2: row max.
    bi, hi, si = f.spatial(b, h, s)
    ji = f.reduce(t)
    f.store(row_max, [bi, hi, si], scores[bi, hi, si, ji], combiner="max")

    # Stage 3: exp-sum.
    bi, hi, si = f.spatial(b, h, s)
    ji = f.reduce(t)
    f.store(
        row_sum,
        [bi, hi, si],
        tir.exp(scores[bi, hi, si, ji] - row_max[bi, hi, si]),
        combiner="sum",
        init=0.0,
    )

    # Stage 4: probability-weighted values.
    bi, si, hi, di = f.spatial(b, s, h, d)
    ji = f.reduce(t)
    prob = tir.exp(
        scores[bi, hi, si, ji] - row_max[bi, hi, si]
    ) / row_sum[bi, hi, si]
    weighted = prob * tir.cast(acc, gather(vpb, bi, ji, hi // group, di))
    f.store(ob, [bi, si, hi, di], tir.cast(q_ann.dtype, weighted),
            combiner="sum", init=0.0)

    return Legalized(
        f.build(), list(call.args), TensorAnn(q_shape, q_ann.dtype)
    )


paged_cross_attention_op = register_op(
    "paged_cross_attention", _cross_deduce, _cross_legalize
)


def paged_cross_attention(q: Expr, k_pages: Expr, v_pages: Expr,
                          block_table: Expr, enc: Expr) -> Call:
    """Cross-attention over pool-resident encoder K/V.

    Every query attends all ``t`` encoder positions of its sequence,
    gathered from the page pool through the block table (the encoder K/V
    was projected once and written to pages; it never grows).  ``enc`` is
    a rank-1 integer *anchor*: only its length matters, binding the
    symbolic encoder-context dim ``t``.  The block table must cover
    ``t`` positions.  No mask and no current block — unlike
    ``paged_attention``, whose current-block causal term would be wrong
    for cross-attention.  Output is bit-exact against the dense
    ``attention(q, k, v, causal=False)`` over contiguous encoder K/V.
    """
    return Call(
        paged_cross_attention_op,
        [q, k_pages, v_pages, block_table, enc],
    )


register_fuzz("paged_cross_attention", "paged_cross_attention",
              paged_cross_attention, weight=0.75)
