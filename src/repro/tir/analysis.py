"""Analyses over tensor programs.

The centerpiece is :func:`pattern_kind` — the *analysis feedback* pass of
the paper (Algorithm 1): classify a tensor program by inspecting its read
and write indices, so the graph level learns fusion-relevant operator
properties without manual per-operator annotation.  Pattern kinds, from
most to least fusable:

``ELEMENT_WISE < BROADCAST < INJECTIVE < REDUCTION / OUT_EWISE_FUSIBLE < OPAQUE``

Also here: workspace detection (feeding §4.4 lifting) and FLOP / byte
estimation used by schedule decisions and the device cost model.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from .. import dtypes, sym
from .expr import BinValue, BufferRead, Cast, Value, contains_gather, count_arith_ops
from .function import Buffer, PrimFunc, Stage


class PatternKind(enum.IntEnum):
    """Compute pattern of a tensor program (Algorithm 1's ``kind``)."""

    ELEMENT_WISE = 0
    BROADCAST = 1
    INJECTIVE = 2
    REDUCTION = 3
    OUT_EWISE_FUSIBLE = 4
    OPAQUE = 5


def _is_element_wise(read_idx, write_idx) -> bool:
    """Read indices identical to write indices (``A[i,j]`` -> ``C[i,j]``)."""
    if len(read_idx) != len(write_idx):
        return False
    return all(sym.prove_equal(r, w) for r, w in zip(read_idx, write_idx))


def _is_broadcast(read_idx, write_idx) -> bool:
    """Read indices are an order-preserving subsequence of the write indices
    (``B[j]`` -> ``C[i,j]``)."""
    if len(read_idx) >= len(write_idx):
        return False
    pos = 0
    for r in read_idx:
        while pos < len(write_idx) and not sym.prove_equal(r, write_idx[pos]):
            pos += 1
        if pos == len(write_idx):
            return False
        pos += 1
    return True


def _is_injective(read_idx, write_vars) -> bool:
    """Each output element reads from a (single) input position determined
    injectively by the write loop variables — permutations (``A[j,i]``) and
    index remappings built from floordiv/mod (reshape) both qualify.

    We accept reads whose indices use only the write loop variables; this
    is the practical approximation TVM-style fusion uses.
    """
    write_keys = {v.key() for v in write_vars}
    for r in read_idx:
        for var in sym.free_vars(r):
            if var.key() not in write_keys:
                return False
    return True


def _is_fused_multiply_add(stage: Stage) -> bool:
    """Detect the matmul/conv pattern: sum-reduction of a product.

    Each factor must contain at least one buffer read; the factors may be
    compound expressions (e.g. an inlined quantization decode, Fig. 9),
    not just bare reads.
    """
    if stage.combiner != "sum":
        return False

    def strip_cast(v: Value) -> Value:
        while isinstance(v, Cast):
            v = v.a
        return v

    def has_read(v: Value) -> bool:
        if isinstance(v, BufferRead):
            return True
        return any(has_read(c) for c in v.children())

    value = strip_cast(stage.value)
    if not (isinstance(value, BinValue) and value.op == "mul"):
        return False
    return has_read(value.a) and has_read(value.b)


def stage_pattern_kind(stage: Stage) -> PatternKind:
    """Algorithm 1 applied to one stage."""
    if contains_gather(stage.value):
        # Data-dependent reads: not a pure function of loop vars (Alg. 1's
        # fallback).
        return PatternKind.OPAQUE

    write_idx = list(stage.output_indices)
    write_vars = [v for v, _ in stage.loop_vars]
    reads = stage.reads()

    if stage.is_reduction():
        if _is_fused_multiply_add(stage):
            return PatternKind.OUT_EWISE_FUSIBLE
        return PatternKind.REDUCTION

    # Write indices must be plain loop variables in order for the
    # elementwise/broadcast classification to be meaningful.
    writes_canonical = len(write_idx) == len(write_vars) and all(
        isinstance(w, sym.SymVar) and w.key() == v.key()
        for w, v in zip(write_idx, write_vars)
    )

    if not reads:
        # Pure generator (fill/iota): injective by construction.
        return PatternKind.INJECTIVE if writes_canonical else PatternKind.OPAQUE
    kind = PatternKind.ELEMENT_WISE  # neutral floor; raised by each read
    has_elem_wise = False
    for read in reads:
        r_idx = list(read.indices)
        if writes_canonical and _is_element_wise(r_idx, write_idx):
            has_elem_wise = True
            read_kind = PatternKind.ELEMENT_WISE
        elif writes_canonical and _is_broadcast(r_idx, write_idx):
            read_kind = PatternKind.BROADCAST
        elif _is_injective(r_idx, write_vars):
            read_kind = PatternKind.INJECTIVE
        else:
            return PatternKind.OPAQUE
        kind = max(kind, read_kind)
    if kind == PatternKind.BROADCAST and has_elem_wise:
        # C[i,j] = A[i,j] + B[j] behaves elementwise for fusion purposes.
        kind = PatternKind.ELEMENT_WISE
    return kind


def pattern_kind(func: PrimFunc) -> PatternKind:
    """Pattern kind of a whole tensor program (Algorithm 1).

    Multi-stage programs: a chain of elementwise/broadcast/injective stages
    is as fusable as its worst stage; anything containing a reduction ends
    at the reduction's classification; mixtures fall back to Opaque.
    """
    if not func.stages:
        return PatternKind.OPAQUE
    if len(func.stages) == 1:
        return stage_pattern_kind(func.stages[0])

    kinds = [stage_pattern_kind(s) for s in func.stages]
    if all(k <= PatternKind.INJECTIVE for k in kinds):
        return max(kinds)
    # One producer chain ending in a single FMA reduction stays fusable at
    # its output (e.g. decode + matmul after FuseTensorIR).
    if kinds[-1] == PatternKind.OUT_EWISE_FUSIBLE and all(
        k <= PatternKind.INJECTIVE for k in kinds[:-1]
    ):
        return PatternKind.OUT_EWISE_FUSIBLE
    return PatternKind.OPAQUE


def detect_workspaces(func: PrimFunc) -> List[Buffer]:
    """Global-memory intermediate allocations (workspace-lifting targets)."""
    return func.workspace_buffers()


def count_flops(func: PrimFunc, bindings: Optional[Dict[sym.SymVar, int]] = None) -> int:
    """Estimated arithmetic operations for one execution."""
    bindings = bindings or {}
    total = 0
    for stage in func.stages:
        iters = 1
        for _, extent in stage.iter_domain():
            iters *= sym.evaluate(extent, bindings)
        ops = max(1, count_arith_ops(stage.value))
        if stage.is_reduction():
            ops += 1  # the combiner update
        total += iters * ops
    return total


def count_bytes(
    func: PrimFunc, bindings: Optional[Dict[sym.SymVar, int]] = None
) -> int:
    """Estimated global-memory traffic for one execution.

    Parameters and ``global``-scope intermediates (workspaces) count;
    ``local`` intermediates are assumed to stay on chip — this is exactly
    why fusing elementwise stages into their producer reduces memory
    traffic in the model, mirroring the paper's fusion motivation (§4.2).
    """
    bindings = bindings or {}

    def buf_bytes(buf: Buffer) -> int:
        elems = 1
        for dim in buf.shape:
            elems *= sym.evaluate(dim, bindings)
        return elems * dtypes.itemsize(buf.dtype)

    # Buffers read only through gathers touch one element per iteration,
    # not their full extent (an embedding lookup reads b rows of the
    # (vocab, hidden) table, not the whole gigabyte).
    from .expr import GatherRead

    gather_elems: Dict[int, int] = {}
    plain_read_ids = set()
    for stage in func.stages:
        iters = 1
        for _, extent in stage.iter_domain():
            iters *= sym.evaluate(extent, bindings)

        def scan(value, iters=iters):
            if isinstance(value, GatherRead):
                gather_elems[value.data._id] = (
                    gather_elems.get(value.data._id, 0) + iters
                )
                plain_read_ids.add(value.index_buffer._id)
                return
            from .expr import BufferRead

            if isinstance(value, BufferRead):
                plain_read_ids.add(value.buffer._id)
            for child in value.children():
                scan(child, iters)

        scan(stage.value)
        plain_read_ids.add(stage.output._id)

    total = 0
    for buf in func.params:
        if buf._id in gather_elems and buf._id not in plain_read_ids:
            total += gather_elems[buf._id] * dtypes.itemsize(buf.dtype)
        else:
            total += buf_bytes(buf)
    for buf in func.intermediate_buffers():
        if buf.scope == "global":
            total += 2 * buf_bytes(buf)  # written then read back
    return total


def symbolic_flops(func: PrimFunc) -> sym.PrimExpr:
    """FLOPs as a symbolic expression of the function's free variables."""
    total: sym.PrimExpr = sym.IntImm(0)
    for stage in func.stages:
        iters: sym.PrimExpr = sym.IntImm(1)
        for _, extent in stage.iter_domain():
            iters = iters * extent
        ops = max(1, count_arith_ops(stage.value))
        if stage.is_reduction():
            ops += 1
        total = total + iters * ops
    return sym.simplify(total)
