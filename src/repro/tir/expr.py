"""Scalar value expressions for tensor program bodies.

A tensor program stage computes one scalar value per output index from
buffer reads and arithmetic.  *Index* expressions (loop-variable
arithmetic) reuse :mod:`repro.sym` — the same expression system as shape
annotations, which is precisely the paper's design (§3.1): one expression
system spans shapes and tensor programs so analyses are shared.

*Value* expressions (this module) are the floating point / integer scalar
computation: buffer reads, arithmetic, intrinsics (exp, tanh, ...), casts,
comparisons, selects, and the bit operations needed for quantization decode
(Fig. 9's ``(data[k, j//8] >> (k%8*4)) & 15``).
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from .. import dtypes, sym

ValueLike = Union["Value", int, float]


class Value:
    """Base class of scalar value expressions."""

    __slots__ = ()

    @staticmethod
    def convert(value: ValueLike) -> "Value":
        if isinstance(value, Value):
            return value
        if isinstance(value, bool):
            raise TypeError("bool is not a scalar value; use Cmp")
        if isinstance(value, int):
            return IntConst(value)
        if isinstance(value, float):
            return FloatConst(value)
        if isinstance(value, sym.PrimExpr):
            return IndexValue(value)
        raise TypeError(f"cannot convert {type(value).__name__} to a Value")

    def __add__(self, other: ValueLike) -> "Value":
        return BinValue("add", self, Value.convert(other))

    def __radd__(self, other: ValueLike) -> "Value":
        return BinValue("add", Value.convert(other), self)

    def __sub__(self, other: ValueLike) -> "Value":
        return BinValue("sub", self, Value.convert(other))

    def __rsub__(self, other: ValueLike) -> "Value":
        return BinValue("sub", Value.convert(other), self)

    def __mul__(self, other: ValueLike) -> "Value":
        return BinValue("mul", self, Value.convert(other))

    def __rmul__(self, other: ValueLike) -> "Value":
        return BinValue("mul", Value.convert(other), self)

    def __truediv__(self, other: ValueLike) -> "Value":
        return BinValue("div", self, Value.convert(other))

    def __rtruediv__(self, other: ValueLike) -> "Value":
        return BinValue("div", Value.convert(other), self)

    def __rshift__(self, other: ValueLike) -> "Value":
        return BinValue("shr", self, Value.convert(other))

    def __lshift__(self, other: ValueLike) -> "Value":
        return BinValue("shl", self, Value.convert(other))

    def __and__(self, other: ValueLike) -> "Value":
        return BinValue("bitand", self, Value.convert(other))

    def __or__(self, other: ValueLike) -> "Value":
        return BinValue("bitor", self, Value.convert(other))

    def __neg__(self) -> "Value":
        return BinValue("sub", IntConst(0), self)

    def children(self) -> Tuple["Value", ...]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


class IntConst(Value):
    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def __str__(self) -> str:
        return str(self.value)


class FloatConst(Value):
    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def __str__(self) -> str:
        return repr(self.value)


class IndexValue(Value):
    """A symbolic index expression used as a scalar value (e.g. iota)."""

    __slots__ = ("expr",)

    def __init__(self, expr: sym.ExprLike):
        self.expr = sym.PrimExpr.convert(expr)

    def __str__(self) -> str:
        return str(self.expr)


class BufferRead(Value):
    """``A[i, j]`` — read one element of a buffer."""

    __slots__ = ("buffer", "indices")

    def __init__(self, buffer, indices: Sequence[sym.ExprLike]):
        self.buffer = buffer
        self.indices: Tuple[sym.PrimExpr, ...] = tuple(
            sym.PrimExpr.convert(i) for i in indices
        )
        if len(self.indices) != len(buffer.shape):
            raise ValueError(
                f"buffer {buffer.name} has {len(buffer.shape)} dims, "
                f"got {len(self.indices)} indices"
            )

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.indices)
        return f"{self.buffer.name}[{inner}]"


_BIN_OPS = {
    "add", "sub", "mul", "div", "min", "max", "pow",
    "shr", "shl", "bitand", "bitor",
}

_UNARY_OPS = {
    "exp", "log", "sqrt", "rsqrt", "tanh", "erf", "sigmoid", "neg", "abs",
    "sin", "cos", "floor", "ceil", "round",
}

_CMP_OPS = {"lt", "le", "gt", "ge", "eq", "ne"}


class BinValue(Value):
    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: ValueLike, b: ValueLike):
        if op not in _BIN_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self.a = Value.convert(a)
        self.b = Value.convert(b)

    def children(self) -> Tuple[Value, ...]:
        return (self.a, self.b)

    def __str__(self) -> str:
        return f"{self.op}({self.a}, {self.b})"


class UnaryValue(Value):
    __slots__ = ("op", "a")

    def __init__(self, op: str, a: ValueLike):
        if op not in _UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        self.a = Value.convert(a)

    def children(self) -> Tuple[Value, ...]:
        return (self.a,)

    def __str__(self) -> str:
        return f"{self.op}({self.a})"


class Cast(Value):
    __slots__ = ("dtype", "a")

    def __init__(self, dtype: str, a: ValueLike):
        self.dtype = dtypes.check_dtype(dtype)
        self.a = Value.convert(a)

    def children(self) -> Tuple[Value, ...]:
        return (self.a,)

    def __str__(self) -> str:
        return f"cast[{self.dtype}]({self.a})"


class Cmp(Value):
    """Comparison producing a boolean (used as Select condition)."""

    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: ValueLike, b: ValueLike):
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.op = op
        self.a = Value.convert(a)
        self.b = Value.convert(b)

    def children(self) -> Tuple[Value, ...]:
        return (self.a, self.b)

    def __str__(self) -> str:
        return f"{self.op}({self.a}, {self.b})"


class Select(Value):
    __slots__ = ("cond", "true_value", "false_value")

    def __init__(self, cond: ValueLike, true_value: ValueLike, false_value: ValueLike):
        self.cond = Value.convert(cond)
        self.true_value = Value.convert(true_value)
        self.false_value = Value.convert(false_value)

    def children(self) -> Tuple[Value, ...]:
        return (self.cond, self.true_value, self.false_value)

    def __str__(self) -> str:
        return f"select({self.cond}, {self.true_value}, {self.false_value})"


class GatherRead(Value):
    """Data-dependent read: ``data[pre..., I[mid...], post...]``.

    The gather index comes from a buffer *value*, so the read position is
    not a pure function of the loop variables — which is exactly why
    Algorithm 1 classifies stages containing gathers as Opaque.
    """

    __slots__ = ("data", "index_buffer", "pre", "mid", "post")

    def __init__(self, data, index_buffer, pre, mid, post):
        self.data = data
        self.index_buffer = index_buffer
        self.pre = tuple(sym.PrimExpr.convert(i) for i in pre)
        self.mid = tuple(sym.PrimExpr.convert(i) for i in mid)
        self.post = tuple(sym.PrimExpr.convert(i) for i in post)
        if len(self.mid) != len(index_buffer.shape):
            raise ValueError("gather index rank mismatch")
        if len(self.pre) + 1 + len(self.post) != len(data.shape):
            raise ValueError("gather data rank mismatch")

    def __str__(self) -> str:
        pre = "".join(f"{i}, " for i in self.pre)
        mid = ", ".join(str(i) for i in self.mid)
        post = "".join(f", {i}" for i in self.post)
        return f"{self.data.name}[{pre}{self.index_buffer.name}[{mid}]{post}]"


def contains_gather(value: Value) -> bool:
    """True when the value tree contains a data-dependent read."""
    if isinstance(value, GatherRead):
        return True
    return any(contains_gather(c) for c in value.children())


# -- convenience constructors -------------------------------------------------


def vmin(a: ValueLike, b: ValueLike) -> Value:
    return BinValue("min", a, b)


def vmax(a: ValueLike, b: ValueLike) -> Value:
    return BinValue("max", a, b)


def exp(a: ValueLike) -> Value:
    return UnaryValue("exp", a)


def log(a: ValueLike) -> Value:
    return UnaryValue("log", a)


def sqrt(a: ValueLike) -> Value:
    return UnaryValue("sqrt", a)


def rsqrt(a: ValueLike) -> Value:
    return UnaryValue("rsqrt", a)


def tanh(a: ValueLike) -> Value:
    return UnaryValue("tanh", a)


def erf(a: ValueLike) -> Value:
    return UnaryValue("erf", a)


def sigmoid(a: ValueLike) -> Value:
    return UnaryValue("sigmoid", a)


def sin(a: ValueLike) -> Value:
    return UnaryValue("sin", a)


def cos(a: ValueLike) -> Value:
    return UnaryValue("cos", a)


def cast(dtype: str, a: ValueLike) -> Value:
    return Cast(dtype, a)


def select(cond: ValueLike, t: ValueLike, f: ValueLike) -> Value:
    return Select(cond, t, f)


def lt(a: ValueLike, b: ValueLike) -> Value:
    return Cmp("lt", a, b)


def ge(a: ValueLike, b: ValueLike) -> Value:
    return Cmp("ge", a, b)


def eq(a: ValueLike, b: ValueLike) -> Value:
    return Cmp("eq", a, b)


def count_arith_ops(value: Value) -> int:
    """Number of arithmetic operations in a value tree (FLOP estimation)."""
    count = 1 if isinstance(value, (BinValue, UnaryValue, Cmp, Select)) else 0
    return count + sum(count_arith_ops(c) for c in value.children())


def collect_reads(value: Value) -> "list[BufferRead]":
    """All buffer reads in a value tree, in traversal order.

    Gathers contribute a read of their index buffer; the data buffer read
    is surfaced with the *pre/post* indices and a zero placeholder for the
    gathered axis (its true index is data-dependent).  Callers that care
    about data-dependence should check :func:`contains_gather`.
    """
    reads = []

    def visit(v: Value) -> None:
        if isinstance(v, BufferRead):
            reads.append(v)
        elif isinstance(v, GatherRead):
            reads.append(BufferRead(v.index_buffer, v.mid))
            placeholder = list(v.pre) + [sym.IntImm(0)] + list(v.post)
            reads.append(BufferRead(v.data, placeholder))
        for child in v.children():
            visit(child)

    visit(value)
    return reads
