"""Transformations on tensor programs.

These are the TIR-side mechanics behind the paper's cross-level passes:

* :func:`substitute_stage` — re-instantiate a stage with new buffers /
  symbolic bindings (used when merging tensor programs, FuseTensorIR §4.2);
* :func:`inline_producers` — inline spatial (non-reduction) producer stages
  into their consumers, eliminating intermediate buffers: this is where
  fused kernels actually stop touching global memory;
* :func:`replace_workspace_with_param` — rewrite a tensor program to take a
  lifted workspace as an explicit parameter (workspace lifting §4.4);
* :func:`bind_symbolic` — specialize a tensor program for concrete values
  of some symbolic variables (static-dimension specialization, §3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import sym
from .expr import (
    BinValue,
    BufferRead,
    Cast,
    Cmp,
    FloatConst,
    GatherRead,
    IndexValue,
    IntConst,
    Select,
    UnaryValue,
    Value,
)
from .function import Buffer, PrimFunc, Stage


def substitute_value(
    value: Value,
    buffer_map: Dict[int, Buffer],
    var_map: Dict[sym.SymVar, sym.ExprLike],
    read_rewrites: Optional[Dict[int, "ProducerInfo"]] = None,
) -> Value:
    """Rebuild a value tree with buffers remapped and index vars substituted.

    ``read_rewrites`` optionally maps buffer ids to producer info; reads of
    those buffers are replaced by the producer's value expression with the
    producer's loop variables bound to the read indices (inlining).
    """
    if isinstance(value, (IntConst, FloatConst)):
        return value
    if isinstance(value, IndexValue):
        return IndexValue(sym.substitute(value.expr, var_map))
    if isinstance(value, BufferRead):
        indices = [sym.substitute(i, var_map) for i in value.indices]
        if read_rewrites and value.buffer._id in read_rewrites:
            producer = read_rewrites[value.buffer._id]
            inline_map = {
                var: idx for var, idx in zip(producer.loop_vars, indices)
            }
            return substitute_value(producer.value, {}, inline_map, read_rewrites)
        buffer = buffer_map.get(value.buffer._id, value.buffer)
        return BufferRead(buffer, indices)
    if isinstance(value, GatherRead):
        # Never inlined into: gather reads stay materialized.
        return GatherRead(
            buffer_map.get(value.data._id, value.data),
            buffer_map.get(value.index_buffer._id, value.index_buffer),
            [sym.substitute(i, var_map) for i in value.pre],
            [sym.substitute(i, var_map) for i in value.mid],
            [sym.substitute(i, var_map) for i in value.post],
        )
    if isinstance(value, BinValue):
        return BinValue(
            value.op,
            substitute_value(value.a, buffer_map, var_map, read_rewrites),
            substitute_value(value.b, buffer_map, var_map, read_rewrites),
        )
    if isinstance(value, UnaryValue):
        return UnaryValue(
            value.op, substitute_value(value.a, buffer_map, var_map, read_rewrites)
        )
    if isinstance(value, Cast):
        return Cast(
            value.dtype, substitute_value(value.a, buffer_map, var_map, read_rewrites)
        )
    if isinstance(value, Cmp):
        return Cmp(
            value.op,
            substitute_value(value.a, buffer_map, var_map, read_rewrites),
            substitute_value(value.b, buffer_map, var_map, read_rewrites),
        )
    if isinstance(value, Select):
        return Select(
            substitute_value(value.cond, buffer_map, var_map, read_rewrites),
            substitute_value(value.true_value, buffer_map, var_map, read_rewrites),
            substitute_value(value.false_value, buffer_map, var_map, read_rewrites),
        )
    raise TypeError(f"unknown value node {type(value).__name__}")


def substitute_stage(
    stage: Stage,
    buffer_map: Dict[int, Buffer],
    var_map: Dict[sym.SymVar, sym.ExprLike],
) -> Stage:
    """New stage with buffers remapped and symbolic variables substituted.

    Loop variables are renewed (alpha-renamed) so stages from different
    functions never collide when merged into one PrimFunc.
    """
    full_map = dict(var_map)
    new_spatial = []
    for var, extent in stage.loop_vars:
        fresh = sym.SymVar(var.name)
        full_map[var] = fresh
        new_spatial.append((fresh, sym.substitute(extent, var_map)))
    new_reduce = []
    for var, extent in stage.reduce_vars:
        fresh = sym.SymVar(var.name)
        full_map[var] = fresh
        new_reduce.append((fresh, sym.substitute(extent, var_map)))

    return Stage(
        loop_vars=new_spatial,
        output=buffer_map.get(stage.output._id, stage.output),
        output_indices=[sym.substitute(i, full_map) for i in stage.output_indices],
        value=substitute_value(stage.value, buffer_map, full_map),
        reduce_vars=new_reduce,
        combiner=stage.combiner,
        init=stage.init,
    )


class ProducerInfo:
    """A spatial producer stage eligible for inlining into its readers."""

    def __init__(self, loop_vars: List[sym.SymVar], value: Value):
        self.loop_vars = loop_vars
        self.value = value


def _inlinable_producer(stage: Stage) -> Optional[ProducerInfo]:
    """Inlinable iff spatial-only with canonical writes (B[i,j] = f(i,j))."""
    if stage.is_reduction():
        return None
    if len(stage.output_indices) != len(stage.loop_vars):
        return None
    for idx, (var, _) in zip(stage.output_indices, stage.loop_vars):
        if not (isinstance(idx, sym.SymVar) and idx.key() == var.key()):
            return None
    return ProducerInfo([var for var, _ in stage.loop_vars], stage.value)


def inline_producers(func: PrimFunc) -> PrimFunc:
    """Inline every inlinable intermediate producer into its consumers.

    An intermediate buffer disappears when its producer stage is spatial
    with canonical writes: each read ``B[e...]`` becomes the producer value
    with loop variables bound to ``e...``.  Reduction producers stay; their
    outputs remain materialized.  Explicit ``global`` workspaces are never
    inlined (they exist to be lifted, not folded away).
    """
    param_ids = {b._id for b in func.params}
    producers: Dict[int, ProducerInfo] = {}
    new_stages: List[Stage] = []

    # A buffer written by several stages (e.g. concat fills its output one
    # slice per stage) has no single defining expression: none of its
    # writers may be folded into readers.
    write_counts: Dict[int, int] = {}
    for stage in func.stages:
        write_counts[stage.output._id] = write_counts.get(stage.output._id, 0) + 1

    for stage in func.stages:
        new_value = substitute_value(stage.value, {}, {}, read_rewrites=producers)
        new_stage = Stage(
            loop_vars=stage.loop_vars,
            output=stage.output,
            output_indices=stage.output_indices,
            value=new_value,
            reduce_vars=stage.reduce_vars,
            combiner=stage.combiner,
            init=stage.init,
        )
        out_buf = stage.output
        if (out_buf._id not in param_ids and out_buf.scope != "global"
                and write_counts[out_buf._id] == 1):
            info = _inlinable_producer(new_stage)
            if info is not None:
                producers[out_buf._id] = info
                continue  # fully inlined: do not materialize this stage
        new_stages.append(new_stage)

    # Drop producers whose buffers are still read somewhere (safety): if a
    # read remains (e.g. consumed before the producer ran — impossible in
    # SSA order), we would have inlined it above, so nothing to re-add.
    return PrimFunc(
        name=func.name,
        params=func.params,
        stages=new_stages,
        num_outputs=func.num_outputs,
        sym_params=func.sym_params,
        attrs=dict(func.attrs),
    )


def replace_workspace_with_param(func: PrimFunc, workspace: Buffer) -> PrimFunc:
    """Turn a global workspace allocation into an explicit parameter.

    The new parameter is inserted *before* the output buffers, matching the
    call-site rewrite in workspace lifting (Fig. 11: the lifted allocation
    is passed explicitly via call_tir).
    """
    if workspace not in func.workspace_buffers():
        raise ValueError(f"{workspace.name} is not a workspace of {func.name}")
    param = Buffer(workspace.name, workspace.shape, workspace.dtype, scope="param")
    buffer_map = {workspace._id: param}
    new_stages = [substitute_stage(s, buffer_map, {}) for s in func.stages]
    inputs = func.input_buffers()
    outputs = func.output_buffers()
    return PrimFunc(
        name=func.name,
        params=inputs + [param] + outputs,
        stages=new_stages,
        num_outputs=func.num_outputs,
        sym_params=func.sym_params,
        attrs=dict(func.attrs),
    )


def bind_symbolic(func: PrimFunc, bindings: Dict[sym.SymVar, int],
                  name: Optional[str] = None) -> PrimFunc:
    """Specialize a tensor program for concrete symbolic values.

    This is how Relax generates code specialized to static dimensions while
    staying dynamic only where necessary (§3.3): known dims get folded into
    constants; remaining variables stay symbolic.
    """
    var_map: Dict[sym.SymVar, sym.ExprLike] = {
        var: sym.IntImm(int(val)) for var, val in bindings.items()
    }
    bound_keys = {var.key() for var in bindings}
    buffer_map: Dict[int, Buffer] = {}
    new_params = []
    for buf in func.params:
        new_buf = Buffer(
            buf.name,
            [sym.simplify(sym.substitute(d, var_map)) for d in buf.shape],
            buf.dtype,
            scope="param",
        )
        buffer_map[buf._id] = new_buf
        new_params.append(new_buf)
    for buf in func.intermediate_buffers():
        buffer_map[buf._id] = Buffer(
            buf.name,
            [sym.simplify(sym.substitute(d, var_map)) for d in buf.shape],
            buf.dtype,
            scope=buf.scope,
        )
    new_stages = [substitute_stage(s, buffer_map, var_map) for s in func.stages]
    return PrimFunc(
        name=name or func.name,
        params=new_params,
        stages=new_stages,
        num_outputs=func.num_outputs,
        sym_params=[v for v in func.sym_params if v.key() not in bound_keys],
        attrs=dict(func.attrs),
    )
