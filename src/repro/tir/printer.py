"""Text printer for tensor programs (paper's ``@tensorir_function`` style)."""

from __future__ import annotations

from .function import PrimFunc, Stage


def _format_stage(stage: Stage, indent: int = 2) -> str:
    pad = " " * indent
    lines = []
    spatial = ", ".join(str(v) for v, _ in stage.loop_vars)
    extents = ", ".join(str(e) for _, e in stage.loop_vars)
    if stage.loop_vars:
        lines.append(f"{pad}for {spatial} in grid({extents}):")
        inner = pad + "  "
    else:
        inner = pad
    out_idx = ", ".join(str(i) for i in stage.output_indices)
    target = f"{stage.output.name}[{out_idx}]"
    if stage.is_reduction():
        rvars = ", ".join(str(v) for v, _ in stage.reduce_vars)
        rexts = ", ".join(str(e) for _, e in stage.reduce_vars)
        lines.append(f"{inner}for {rvars} in grid({rexts}):  # reduce")
        inner2 = inner + "  "
        if stage.init is not None:
            lines.append(f"{inner2}with init(): {target} = {stage.init}")
        op = {"sum": "+=", "prod": "*=", "max": "max=", "min": "min="}[stage.combiner]
        lines.append(f"{inner2}{target} {op} {stage.value}")
    else:
        lines.append(f"{inner}{target} = {stage.value}")
    return "\n".join(lines)


def format_prim_func(func: PrimFunc, name: str = None) -> str:
    name = name or func.name
    params = ", ".join(
        f"{b.name}: Buffer(({', '.join(str(d) for d in b.shape)}), {b.dtype!r})"
        for b in func.params
    )
    lines = [f"def {name}({params}):"]
    if func.sym_params:
        syms = ", ".join(v.name for v in func.sym_params)
        lines.append(f"  # symbolic params: {syms}")
    if func.attrs:
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(func.attrs.items()))
        lines.append(f"  # attrs: {attrs}")
    for buf in func.intermediate_buffers():
        dims = ", ".join(str(d) for d in buf.shape)
        lines.append(
            f"  {buf.name} = alloc_buffer(({dims}), {buf.dtype!r}, scope={buf.scope!r})"
        )
    for stage in func.stages:
        lines.append(_format_stage(stage))
    return "\n".join(lines)
