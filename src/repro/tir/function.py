"""Loop-level tensor programs: buffers, stages, and PrimFuncs.

We use a TensorIR-like abstraction (paper §3.1 uses TensorIR [16]) in
*stage form*: a PrimFunc is a destination-passing-style function over
:class:`Buffer` parameters whose body is an ordered list of
:class:`Stage` s.  Each stage is a perfectly nested loop over spatial (and
optionally reduction) iteration variables, storing one scalar expression
per output index::

    for i, j in grid(n, 256):        # spatial loop_vars
        for k in grid(128):          # reduce_vars
            with init(): Y[i, j] = 0
            Y[i, j] += X[i, k] * W[k, j]

Stage form is regular enough for everything the paper needs from the
tensor-program level — Algorithm 1's read/write-index pattern analysis,
NumPy interpretation, fusion by stage concatenation + producer inlining,
workspace (global intermediate buffer) detection for §4.4 lifting, and
roofline cost analysis — while staying honest loop-level IR with explicit
iteration spaces and indexed buffer accesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .. import dtypes, sym
from .expr import BufferRead, Value, collect_reads

#: Valid combiners for reduction stages.
REDUCE_COMBINERS = ("sum", "max", "min", "prod")


class Buffer:
    """A typed multi-dimensional memory region.

    ``scope`` distinguishes where the buffer lives:

    * ``"param"`` — function parameter (caller-provided, DPS);
    * ``"local"`` — intermediate kept on-chip after fusion (free in the
      memory-traffic cost model);
    * ``"global"`` — intermediate in device global memory.  A ``global``
      allocation inside a tensor program is a *workspace* — exactly what
      the cross-level workspace-lifting pass (§4.4) detects and lifts to
      the graph level.
    """

    _counter = 0

    def __init__(self, name: str, shape: Sequence[sym.ExprLike], dtype: str,
                 scope: str = "param"):
        if scope not in ("param", "local", "global"):
            raise ValueError(f"unknown buffer scope {scope!r}")
        self.name = name
        self.shape: Tuple[sym.PrimExpr, ...] = tuple(
            sym.PrimExpr.convert(d) for d in shape
        )
        self.dtype = dtypes.check_dtype(dtype)
        self.scope = scope
        Buffer._counter += 1
        self._id = Buffer._counter

    def __getitem__(self, indices) -> BufferRead:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return BufferRead(self, indices)

    def num_elements(self) -> sym.PrimExpr:
        return sym.shape_product(self.shape)

    def size_bytes(self) -> sym.PrimExpr:
        return self.num_elements() * dtypes.itemsize(self.dtype)

    def __str__(self) -> str:
        dims = ", ".join(str(d) for d in self.shape)
        return f"Buffer({self.name}, ({dims}), {self.dtype!r})"

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


class Stage:
    """One perfectly nested compute loop writing a single buffer."""

    def __init__(
        self,
        loop_vars: Sequence[Tuple[sym.SymVar, sym.ExprLike]],
        output: Buffer,
        output_indices: Sequence[sym.ExprLike],
        value: Value,
        reduce_vars: Sequence[Tuple[sym.SymVar, sym.ExprLike]] = (),
        combiner: Optional[str] = None,
        init: Optional[float] = None,
    ):
        self.loop_vars: List[Tuple[sym.SymVar, sym.PrimExpr]] = [
            (var, sym.PrimExpr.convert(extent)) for var, extent in loop_vars
        ]
        self.reduce_vars: List[Tuple[sym.SymVar, sym.PrimExpr]] = [
            (var, sym.PrimExpr.convert(extent)) for var, extent in reduce_vars
        ]
        self.output = output
        self.output_indices: Tuple[sym.PrimExpr, ...] = tuple(
            sym.PrimExpr.convert(i) for i in output_indices
        )
        if len(self.output_indices) != len(output.shape):
            raise ValueError(
                f"stage writes {len(self.output_indices)} indices into "
                f"{len(output.shape)}-d buffer {output.name}"
            )
        self.value = value
        if self.reduce_vars:
            if combiner not in REDUCE_COMBINERS:
                raise ValueError(
                    f"reduction stage requires a combiner from {REDUCE_COMBINERS}"
                )
            self.combiner = combiner
            self.init = init
        else:
            if combiner is not None:
                raise ValueError("combiner given but no reduction loops")
            self.combiner = None
            self.init = None

    def reads(self) -> List[BufferRead]:
        return collect_reads(self.value)

    def read_buffers(self) -> List[Buffer]:
        out, seen = [], set()
        for read in self.reads():
            if read.buffer._id not in seen:
                seen.add(read.buffer._id)
                out.append(read.buffer)
        return out

    def iter_domain(self) -> List[Tuple[sym.SymVar, sym.PrimExpr]]:
        return list(self.loop_vars) + list(self.reduce_vars)

    def is_reduction(self) -> bool:
        return bool(self.reduce_vars)


class PrimFunc:
    """A destination-passing-style loop-level tensor program.

    ``params`` are the buffer parameters in DPS order: inputs first, then
    outputs (``num_outputs`` of them at the end).  ``sym_params`` lists
    symbolic variables that must be supplied explicitly by the caller (the
    extra symbolic arguments of Fig. 8) *in addition to* those inferable
    from the parameter buffer shapes.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[Buffer],
        stages: Sequence[Stage],
        num_outputs: int = 1,
        sym_params: Sequence[sym.SymVar] = (),
        attrs: Optional[Dict] = None,
    ):
        self.name = name
        self.params: List[Buffer] = list(params)
        self.stages: List[Stage] = list(stages)
        self.num_outputs = num_outputs
        self.sym_params: List[sym.SymVar] = list(sym_params)
        self.attrs: Dict = dict(attrs) if attrs else {}
        for buf in self.params:
            if buf.scope != "param":
                raise ValueError(f"parameter buffer {buf.name} must have scope 'param'")
        if not 0 < num_outputs <= len(self.params):
            raise ValueError("num_outputs out of range")

    # -- structure -----------------------------------------------------------

    def input_buffers(self) -> List[Buffer]:
        return self.params[: len(self.params) - self.num_outputs]

    def output_buffers(self) -> List[Buffer]:
        return self.params[len(self.params) - self.num_outputs:]

    def intermediate_buffers(self) -> List[Buffer]:
        """Buffers written by stages that are not parameters."""
        param_ids = {b._id for b in self.params}
        out, seen = [], set()
        for stage in self.stages:
            buf = stage.output
            if buf._id not in param_ids and buf._id not in seen:
                seen.add(buf._id)
                out.append(buf)
        return out

    def workspace_buffers(self) -> List[Buffer]:
        """Global-scope intermediates — targets of workspace lifting (§4.4)."""
        return [b for b in self.intermediate_buffers() if b.scope == "global"]

    def free_sym_vars(self) -> List[sym.SymVar]:
        """Symbolic variables appearing anywhere in the function."""
        seen, out = set(), []

        # Exclude loop variables: they are bound by their stage.
        bound = set()
        for stage in self.stages:
            for var, _ in stage.iter_domain():
                bound.add(var.key())

        def add_filtered(expr: sym.PrimExpr) -> None:
            for var in sym.free_vars(expr):
                if var.key() not in bound and var.key() not in seen:
                    seen.add(var.key())
                    out.append(var)

        for var in self.sym_params:
            if var.key() not in seen:
                seen.add(var.key())
                out.append(var)
        for buf in list(self.params) + self.intermediate_buffers():
            for dim in buf.shape:
                add_filtered(dim)

        def scan_value(value) -> None:
            from .expr import BufferRead, IndexValue

            if isinstance(value, IndexValue):
                add_filtered(value.expr)
            elif isinstance(value, BufferRead):
                for idx in value.indices:
                    add_filtered(idx)
            for child in value.children():
                scan_value(child)

        for stage in self.stages:
            for _, extent in stage.iter_domain():
                add_filtered(extent)
            for idx in stage.output_indices:
                add_filtered(idx)
            scan_value(stage.value)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        from .printer import format_prim_func

        return format_prim_func(self)
