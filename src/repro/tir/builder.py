"""Concise construction DSL for tensor programs.

Operator legalization (:mod:`repro.ops`) and tests build PrimFuncs through
this builder::

    f = TirBuilder("mm")
    X = f.arg("X", (n, 128), "f16")
    W = f.arg("W", (128, 256), "f16")
    Y = f.out("Y", (n, 256), "f16")
    i, j = f.spatial(n, 256)
    k = f.reduce(128)
    f.store(Y, [i, j], X[i, k] * W[k, j], combiner="sum", init=0.0)
    func = f.build()

Each ``store`` closes the pending iteration variables into one
:class:`~repro.tir.function.Stage`; a builder can emit several stages (e.g.
softmax: max, sum-exp, normalize).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .. import sym
from .expr import Value
from .function import Buffer, PrimFunc, Stage


class TirBuilder:
    """Accumulates buffers and stages for one PrimFunc."""

    def __init__(self, name: str):
        self.name = name
        self._inputs: List[Buffer] = []
        self._outputs: List[Buffer] = []
        self._stages: List[Stage] = []
        self._pending_spatial: List[Tuple[sym.SymVar, sym.PrimExpr]] = []
        self._pending_reduce: List[Tuple[sym.SymVar, sym.PrimExpr]] = []
        self._sym_params: List[sym.SymVar] = []
        self._attrs = {}
        self._var_counter = 0

    # -- buffers -------------------------------------------------------------

    def arg(self, name: str, shape: Sequence[sym.ExprLike], dtype: str) -> Buffer:
        buf = Buffer(name, shape, dtype, scope="param")
        self._inputs.append(buf)
        return buf

    def out(self, name: str, shape: Sequence[sym.ExprLike], dtype: str) -> Buffer:
        buf = Buffer(name, shape, dtype, scope="param")
        self._outputs.append(buf)
        return buf

    def alloc(self, name: str, shape: Sequence[sym.ExprLike], dtype: str,
              scope: str = "local") -> Buffer:
        """Intermediate buffer; ``scope="global"`` declares a workspace."""
        return Buffer(name, shape, dtype, scope=scope)

    # -- iteration variables ---------------------------------------------------

    def spatial(self, *extents: sym.ExprLike):
        """Fresh spatial loop variables over the given extents."""
        out = []
        for extent in extents:
            var = self._fresh_var("i")
            self._pending_spatial.append((var, sym.PrimExpr.convert(extent)))
            out.append(var)
        return out[0] if len(out) == 1 else tuple(out)

    def reduce(self, *extents: sym.ExprLike):
        """Fresh reduction loop variables over the given extents."""
        out = []
        for extent in extents:
            var = self._fresh_var("k")
            self._pending_reduce.append((var, sym.PrimExpr.convert(extent)))
            out.append(var)
        return out[0] if len(out) == 1 else tuple(out)

    def _fresh_var(self, prefix: str) -> sym.SymVar:
        self._var_counter += 1
        return sym.SymVar(f"{prefix}{self._var_counter}")

    # -- stages ----------------------------------------------------------------

    def store(
        self,
        output: Buffer,
        indices: Sequence[sym.ExprLike],
        value: Union[Value, int, float],
        combiner: Optional[str] = None,
        init: Optional[float] = None,
    ) -> None:
        """Close the pending loops into a stage writing ``output[indices]``."""
        stage = Stage(
            loop_vars=self._pending_spatial,
            output=output,
            output_indices=indices,
            value=Value.convert(value),
            reduce_vars=self._pending_reduce,
            combiner=combiner,
            init=init,
        )
        self._stages.append(stage)
        self._pending_spatial = []
        self._pending_reduce = []

    # -- misc -------------------------------------------------------------------

    def sym_param(self, var: sym.SymVar) -> sym.SymVar:
        """Declare an explicit symbolic parameter (Fig. 8 extra argument)."""
        self._sym_params.append(var)
        return var

    def attr(self, key: str, value) -> None:
        self._attrs[key] = value

    def build(self) -> PrimFunc:
        if self._pending_spatial or self._pending_reduce:
            raise RuntimeError("loop variables declared but never stored")
        if not self._outputs:
            raise RuntimeError(f"tensor program {self.name!r} has no outputs")
        return PrimFunc(
            name=self.name,
            params=self._inputs + self._outputs,
            stages=self._stages,
            num_outputs=len(self._outputs),
            sym_params=self._sym_params,
            attrs=self._attrs,
        )
