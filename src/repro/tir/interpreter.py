"""NumPy reference interpreter for tensor programs.

Executes a :class:`~repro.tir.function.PrimFunc` on concrete NumPy arrays.
Evaluation is vectorized: each stage materializes its full iteration grid
(spatial × reduction), evaluates index and value expressions as arrays,
reduces over the reduction axes with the stage combiner, and scatters into
the output via (possibly fancy) indexing.  This is the ground truth the
test suite compares the compiled VM and every fusion/lowering pass against.
"""

from __future__ import annotations

from math import erf as _erf
from typing import Dict, List, Sequence

import numpy as np

from .. import dtypes, sym
from .expr import (
    BinValue,
    BufferRead,
    Cast,
    Cmp,
    FloatConst,
    GatherRead,
    IndexValue,
    IntConst,
    Select,
    UnaryValue,
    Value,
)
from .function import PrimFunc, Stage

_erf_vec = np.vectorize(_erf, otypes=[np.float64])


class TirInterpreterError(Exception):
    pass


def _eval_index(expr: sym.PrimExpr, env: Dict) -> np.ndarray:
    """Evaluate a symbolic index expression over grid arrays."""
    if isinstance(expr, sym.IntImm):
        return np.int64(expr.value)
    if isinstance(expr, sym.SymVar):
        if expr.key() not in env:
            raise TirInterpreterError(f"unbound index variable '{expr.name}'")
        return env[expr.key()]
    if isinstance(expr, sym.Add):
        return _eval_index(expr.a, env) + _eval_index(expr.b, env)
    if isinstance(expr, sym.Sub):
        return _eval_index(expr.a, env) - _eval_index(expr.b, env)
    if isinstance(expr, sym.Mul):
        return _eval_index(expr.a, env) * _eval_index(expr.b, env)
    if isinstance(expr, sym.FloorDiv):
        return _eval_index(expr.a, env) // _eval_index(expr.b, env)
    if isinstance(expr, sym.FloorMod):
        return _eval_index(expr.a, env) % _eval_index(expr.b, env)
    if isinstance(expr, sym.Min):
        return np.minimum(_eval_index(expr.a, env), _eval_index(expr.b, env))
    if isinstance(expr, sym.Max):
        return np.maximum(_eval_index(expr.a, env), _eval_index(expr.b, env))
    raise TirInterpreterError(f"unknown index node {type(expr).__name__}")


def _widen(a: np.ndarray):
    """Float buffer reads compute in f64 — the same internal-precision
    convention the library kernels use — and :func:`run_stage` rounds
    exactly once at the output write.  This is what makes row-parallel
    sharding bit-exact: per-shard f64 partial sums combined by a
    rank-ordered all-reduce round to the same low-precision result as
    the unsharded reduction."""
    if a.dtype.kind == "f" and a.dtype != np.float64:
        return a.astype(np.float64)
    return a


def _eval_value(value: Value, env: Dict, buffers: Dict[int, np.ndarray]):
    if isinstance(value, IntConst):
        return np.int64(value.value)
    if isinstance(value, FloatConst):
        return np.float64(value.value)
    if isinstance(value, IndexValue):
        return _eval_index(value.expr, env)
    if isinstance(value, BufferRead):
        data = buffers.get(value.buffer._id)
        if data is None:
            raise TirInterpreterError(f"buffer {value.buffer.name} not materialized")
        idx = tuple(_eval_index(i, env) for i in value.indices)
        return _widen(data[idx])
    if isinstance(value, GatherRead):
        data = buffers.get(value.data._id)
        index = buffers.get(value.index_buffer._id)
        if data is None or index is None:
            raise TirInterpreterError("gather buffers not materialized")
        mid = tuple(_eval_index(i, env) for i in value.mid)
        gathered = index[mid].astype(np.int64)
        idx = tuple(
            [_eval_index(i, env) for i in value.pre]
            + [gathered]
            + [_eval_index(i, env) for i in value.post]
        )
        return _widen(data[idx])
    if isinstance(value, BinValue):
        a = _eval_value(value.a, env, buffers)
        b = _eval_value(value.b, env, buffers)
        op = value.op
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "div":
            return a / b
        if op == "min":
            return np.minimum(a, b)
        if op == "max":
            return np.maximum(a, b)
        if op == "pow":
            return np.power(a, b)
        if op == "shr":
            return a >> b
        if op == "shl":
            return a << b
        if op == "bitand":
            return a & b
        if op == "bitor":
            return a | b
        raise TirInterpreterError(f"unknown binary op {op!r}")
    if isinstance(value, UnaryValue):
        a = _eval_value(value.a, env, buffers)
        op = value.op
        if op == "exp":
            return np.exp(a)
        if op == "log":
            return np.log(a)
        if op == "sqrt":
            return np.sqrt(a)
        if op == "rsqrt":
            return 1.0 / np.sqrt(a)
        if op == "tanh":
            return np.tanh(a)
        if op == "erf":
            return _erf_vec(a)
        if op == "sigmoid":
            return 1.0 / (1.0 + np.exp(-a))
        if op == "neg":
            return -a
        if op == "abs":
            return np.abs(a)
        if op == "sin":
            return np.sin(a)
        if op == "cos":
            return np.cos(a)
        if op == "floor":
            return np.floor(a)
        if op == "ceil":
            return np.ceil(a)
        if op == "round":
            return np.round(a)
        raise TirInterpreterError(f"unknown unary op {op!r}")
    if isinstance(value, Cast):
        a = _eval_value(value.a, env, buffers)
        return np.asarray(a).astype(dtypes.to_numpy(value.dtype))
    if isinstance(value, Cmp):
        a = _eval_value(value.a, env, buffers)
        b = _eval_value(value.b, env, buffers)
        return {
            "lt": np.less, "le": np.less_equal, "gt": np.greater,
            "ge": np.greater_equal, "eq": np.equal, "ne": np.not_equal,
        }[value.op](a, b)
    if isinstance(value, Select):
        cond = _eval_value(value.cond, env, buffers)
        t = _eval_value(value.true_value, env, buffers)
        f = _eval_value(value.false_value, env, buffers)
        return np.where(cond, t, f)
    raise TirInterpreterError(f"unknown value node {type(value).__name__}")


def _eval_extent(extent: sym.PrimExpr, sym_env: Dict) -> int:
    value = _eval_index(extent, sym_env)
    return int(value)


def run_stage(stage: Stage, buffers: Dict[int, np.ndarray], sym_env: Dict) -> None:
    domain = stage.iter_domain()
    extents = [_eval_extent(extent, sym_env) for _, extent in domain]
    env = dict(sym_env)
    ndim = len(extents)
    for axis, (var, _) in enumerate(domain):
        shape = [1] * ndim
        shape[axis] = extents[axis]
        env[var.key()] = np.arange(extents[axis], dtype=np.int64).reshape(shape)

    values = _eval_value(stage.value, env, buffers)
    full_shape = tuple(extents)
    values = np.broadcast_to(np.asarray(values), full_shape)

    n_spatial = len(stage.loop_vars)
    if stage.reduce_vars:
        reduce_axes = tuple(range(n_spatial, ndim))
        if stage.combiner == "sum":
            values = values.sum(axis=reduce_axes)
        elif stage.combiner == "max":
            values = values.max(axis=reduce_axes)
        elif stage.combiner == "min":
            values = values.min(axis=reduce_axes)
        elif stage.combiner == "prod":
            values = values.prod(axis=reduce_axes)
        else:  # pragma: no cover
            raise TirInterpreterError(f"unknown combiner {stage.combiner!r}")
        if stage.init is not None:
            if stage.combiner == "sum":
                values = values + stage.init
            elif stage.combiner == "prod":
                values = values * stage.init
            elif stage.combiner == "max":
                values = np.maximum(values, stage.init)
            elif stage.combiner == "min":
                values = np.minimum(values, stage.init)

    out = buffers.get(stage.output._id)
    if out is None:
        raise TirInterpreterError(f"output buffer {stage.output.name} not materialized")
    out_dtype = dtypes.to_numpy(stage.output.dtype)
    values = np.asarray(values).astype(out_dtype)

    # Spatial-only index environment for the write side.
    spatial_env = dict(sym_env)
    for axis, (var, _) in enumerate(stage.loop_vars):
        shape = [1] * n_spatial
        shape[axis] = extents[axis]
        spatial_env[var.key()] = np.arange(extents[axis], dtype=np.int64).reshape(shape)

    spatial_shape = tuple(extents[:n_spatial])
    write_idx = []
    trivial = True
    for dim, idx_expr in enumerate(stage.output_indices):
        arr = _eval_index(idx_expr, spatial_env)
        arr = np.broadcast_to(np.asarray(arr), spatial_shape)
        write_idx.append(arr)
        var_match = (
            dim < n_spatial
            and isinstance(idx_expr, sym.SymVar)
            and idx_expr.key() == stage.loop_vars[dim][0].key()
        )
        trivial = trivial and var_match
    if trivial and len(stage.output_indices) == n_spatial:
        out[tuple(slice(0, e) for e in spatial_shape)] = values
    else:
        out[tuple(write_idx)] = values


def run_prim_func(
    func: PrimFunc,
    args: Sequence[np.ndarray],
    sym_bindings: Dict[sym.SymVar, int] = None,
) -> None:
    """Execute ``func`` in DPS: ``args`` maps to params; outputs are mutated.

    ``sym_bindings`` supplies values for symbolic variables that cannot be
    inferred from the argument shapes (explicit sym params).  Variables
    inferable from shapes are bound automatically by matching parameter
    buffer shapes against argument shapes.
    """
    if len(args) != len(func.params):
        raise TirInterpreterError(
            f"{func.name}: expected {len(func.params)} buffers, got {len(args)}"
        )
    sym_env: Dict = {}
    if sym_bindings:
        for var, value in sym_bindings.items():
            sym_env[var.key()] = np.int64(int(value))

    # Infer symbolic dims from argument shapes (single-variable dims only;
    # composite dims are checked afterwards).
    for buf, arr in zip(func.params, args):
        if arr.ndim != len(buf.shape):
            raise TirInterpreterError(
                f"{func.name}: buffer {buf.name} expects {len(buf.shape)} dims, "
                f"got array with {arr.ndim}"
            )
        for dim_expr, actual in zip(buf.shape, arr.shape):
            if isinstance(dim_expr, sym.SymVar) and dim_expr.key() not in sym_env:
                sym_env[dim_expr.key()] = np.int64(actual)

    # Shape checks (the lightweight runtime checks of §4.1).
    for buf, arr in zip(func.params, args):
        for dim_expr, actual in zip(buf.shape, arr.shape):
            expected = _eval_extent(dim_expr, sym_env)
            if expected != actual:
                raise TirInterpreterError(
                    f"{func.name}: buffer {buf.name} dim mismatch: "
                    f"expected {expected} ({dim_expr}), got {actual}"
                )

    buffers: Dict[int, np.ndarray] = {
        buf._id: arr for buf, arr in zip(func.params, args)
    }
    for buf in func.intermediate_buffers():
        shape = tuple(_eval_extent(d, sym_env) for d in buf.shape)
        buffers[buf._id] = np.zeros(shape, dtype=dtypes.to_numpy(buf.dtype))

    for stage in func.stages:
        run_stage(stage, buffers, sym_env)


def call_prim_func(
    func: PrimFunc,
    inputs: Sequence[np.ndarray],
    out_shapes: Sequence[Sequence[int]],
    sym_bindings: Dict[sym.SymVar, int] = None,
) -> List[np.ndarray]:
    """Allocate outputs, run in DPS, return the outputs (test convenience)."""
    outputs = [
        np.zeros(tuple(shape), dtype=dtypes.to_numpy(buf.dtype))
        for shape, buf in zip(out_shapes, func.output_buffers())
    ]
    run_prim_func(func, list(inputs) + outputs, sym_bindings)
    return outputs
