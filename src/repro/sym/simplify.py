"""Canonical simplification and equality proving for symbolic expressions.

The simplifier normalizes an expression into a polynomial form: an integer
linear combination of *terms*, each term a product of *atoms* raised to
positive integer powers.  Atoms are symbolic variables or opaque
sub-expressions (floordiv / floormod / min / max) whose operands have been
recursively canonicalized.

This canonical form is what makes the paper's dynamic-shape machinery
practical: ``prove_equal(2*n + 2*n, n*4)`` (buffer-reuse decisions in memory
planning, Alg. 3) reduces to checking that the difference's canonical form
is the zero polynomial, in time linear in expression size.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .expr import (
    Add,
    ExprLike,
    FloorDiv,
    FloorMod,
    IntImm,
    Max,
    Min,
    Mul,
    PrimExpr,
    Sub,
    SymVar,
)

# A monomial maps atom-key -> (power, atom expression).
_Monomial = Tuple[Tuple[Tuple, int], ...]


class _Poly:
    """Σ coeff · Π atom^power, in canonical sorted order."""

    __slots__ = ("terms", "atoms")

    def __init__(self):
        # monomial-key -> integer coefficient
        self.terms: Dict[_Monomial, int] = {}
        # atom-key -> atom expression (for rebuilding)
        self.atoms: Dict[Tuple, PrimExpr] = {}

    @staticmethod
    def constant(value: int) -> "_Poly":
        poly = _Poly()
        if value != 0:
            poly.terms[()] = value
        return poly

    @staticmethod
    def atom(expr: PrimExpr) -> "_Poly":
        poly = _Poly()
        akey = expr.key()
        poly.atoms[akey] = expr
        poly.terms[((akey, 1),)] = 1
        return poly

    def _merge_atoms(self, other: "_Poly") -> None:
        for akey, expr in other.atoms.items():
            self.atoms.setdefault(akey, expr)

    def add(self, other: "_Poly", sign: int = 1) -> "_Poly":
        result = _Poly()
        result.terms = dict(self.terms)
        result.atoms = dict(self.atoms)
        result._merge_atoms(other)
        for mono, coeff in other.terms.items():
            new = result.terms.get(mono, 0) + sign * coeff
            if new == 0:
                result.terms.pop(mono, None)
            else:
                result.terms[mono] = new
        return result

    def mul(self, other: "_Poly") -> "_Poly":
        result = _Poly()
        result.atoms = dict(self.atoms)
        result._merge_atoms(other)
        for mono_a, coeff_a in self.terms.items():
            for mono_b, coeff_b in other.terms.items():
                mono = _merge_monomials(mono_a, mono_b)
                new = result.terms.get(mono, 0) + coeff_a * coeff_b
                if new == 0:
                    result.terms.pop(mono, None)
                else:
                    result.terms[mono] = new
        return result

    def is_zero(self) -> bool:
        return not self.terms

    def as_constant(self):
        """Return the int value if the poly is constant, else None."""
        if self.is_zero():
            return 0
        if len(self.terms) == 1 and () in self.terms:
            return self.terms[()]
        return None

    def constant_part(self) -> int:
        return self.terms.get((), 0)

    def key(self) -> Tuple:
        """Hashable canonical key for the whole polynomial."""
        return tuple(sorted((mono, coeff) for mono, coeff in self.terms.items()))

    def split_divisible(self, divisor: int) -> Tuple["_Poly", "_Poly"]:
        """Split into (quotient_part, remainder_part) for a constant divisor.

        Each coefficient is split with divmod: ``P == divisor*quot + rem``
        with every remainder coefficient in ``[0, divisor)``.  This backs the
        identity ``(x + a*c) // c == x // c + a`` (valid for any integer x
        and positive c), e.g. ``(5n)//4 == n + n//4``.
        """
        quot, rem = _Poly(), _Poly()
        quot.atoms = dict(self.atoms)
        rem.atoms = dict(self.atoms)
        for mono, coeff in self.terms.items():
            q, r = divmod(coeff, divisor)
            if q:
                quot.terms[mono] = q
            if r:
                rem.terms[mono] = r
        return quot, rem

    def to_expr(self) -> PrimExpr:
        """Rebuild a PrimExpr from the canonical form (deterministic order)."""
        if self.is_zero():
            return IntImm(0)
        parts = []
        for mono, coeff in sorted(self.terms.items()):
            factor: PrimExpr = None
            for akey, power in mono:
                atom = self.atoms[akey]
                for _ in range(power):
                    factor = atom if factor is None else Mul(factor, atom)
            if factor is None:
                parts.append(IntImm(coeff))
            elif coeff == 1:
                parts.append(factor)
            else:
                parts.append(Mul(IntImm(coeff), factor))
        result = parts[0]
        for part in parts[1:]:
            result = Add(result, part)
        return result


def _merge_monomials(a: _Monomial, b: _Monomial) -> _Monomial:
    powers: Dict[Tuple, int] = {}
    for akey, power in a:
        powers[akey] = powers.get(akey, 0) + power
    for akey, power in b:
        powers[akey] = powers.get(akey, 0) + power
    return tuple(sorted(powers.items()))


def _canonicalize(expr: PrimExpr) -> _Poly:
    if isinstance(expr, IntImm):
        return _Poly.constant(expr.value)
    if isinstance(expr, SymVar):
        return _Poly.atom(expr)
    if isinstance(expr, Add):
        return _canonicalize(expr.a).add(_canonicalize(expr.b))
    if isinstance(expr, Sub):
        return _canonicalize(expr.a).add(_canonicalize(expr.b), sign=-1)
    if isinstance(expr, Mul):
        return _canonicalize(expr.a).mul(_canonicalize(expr.b))
    if isinstance(expr, FloorDiv):
        return _canonicalize_floordiv(expr)
    if isinstance(expr, FloorMod):
        return _canonicalize_floormod(expr)
    if isinstance(expr, (Min, Max)):
        return _canonicalize_minmax(expr)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _canonicalize_floordiv(expr: FloorDiv) -> _Poly:
    num = _canonicalize(expr.a)
    den = _canonicalize(expr.b)
    den_const = den.as_constant()
    num_const = num.as_constant()
    if den_const is not None and den_const != 0 and num_const is not None:
        return _Poly.constant(num_const // den_const)
    if den_const is not None and den_const > 0:
        quot, rem = num.split_divisible(den_const)
        if rem.is_zero():
            return quot
        rem_const = rem.as_constant()
        if rem_const is not None:
            # Remainder coefficients are in [0, c), so a constant remainder
            # folds directly (e.g. (4x + 3) // 4 == x).
            return quot.add(_Poly.constant(rem_const // den_const))
        # (rem + quot*c) // c  ==  rem // c + quot
        atom = FloorDiv(rem.to_expr(), IntImm(den_const))
        return quot.add(_Poly.atom(atom))
    return _Poly.atom(FloorDiv(num.to_expr(), den.to_expr()))


def _canonicalize_floormod(expr: FloorMod) -> _Poly:
    num = _canonicalize(expr.a)
    den = _canonicalize(expr.b)
    den_const = den.as_constant()
    num_const = num.as_constant()
    if den_const is not None and den_const != 0 and num_const is not None:
        return _Poly.constant(num_const % den_const)
    if den_const is not None and den_const > 0:
        _, rem = num.split_divisible(den_const)
        if rem.is_zero():
            return _Poly.constant(0)
        rem_const = rem.as_constant()
        if rem_const is not None:
            return _Poly.constant(rem_const % den_const)
        return _Poly.atom(FloorMod(rem.to_expr(), IntImm(den_const)))
    return _Poly.atom(FloorMod(num.to_expr(), den.to_expr()))


def _canonicalize_minmax(expr: PrimExpr) -> _Poly:
    cls = type(expr)
    a = _canonicalize(expr.a)
    b = _canonicalize(expr.b)
    a_const, b_const = a.as_constant(), b.as_constant()
    if a_const is not None and b_const is not None:
        pick = min if cls is Min else max
        return _Poly.constant(pick(a_const, b_const))
    if a.add(b, sign=-1).is_zero():
        return a
    return _Poly.atom(cls(a.to_expr(), b.to_expr()))


def simplify(expr: ExprLike) -> PrimExpr:
    """Canonicalize ``expr`` into a deterministic simplified form."""
    return _canonicalize(PrimExpr.convert(expr)).to_expr()


def canonical_key(expr: ExprLike) -> Tuple:
    """Hashable canonical key: equal keys <=> provably equal expressions
    (within the fragment the canonicalizer decides)."""
    return _canonicalize(PrimExpr.convert(expr)).key()


def prove_equal(a: ExprLike, b: ExprLike) -> bool:
    """Prove ``a == b`` symbolically (sound; may return False on hard cases).

    This is the workhorse of dynamic shape-aware memory planning (Alg. 3,
    ``RequestReuseWithSymShape``) and of annotation compatibility checks.
    """
    a = PrimExpr.convert(a)
    b = PrimExpr.convert(b)
    diff = _canonicalize(Sub(a, b))
    return diff.is_zero()


def prove_divisible(expr: ExprLike, divisor: int) -> bool:
    """Prove ``expr`` is an integer multiple of a positive constant."""
    if divisor <= 0:
        raise ValueError("divisor must be positive")
    poly = _canonicalize(PrimExpr.convert(expr))
    _, rem = poly.split_divisible(divisor)
    return rem.is_zero()
