"""Interval (bounds) analysis over symbolic expressions.

Memory planning (paper §4.3) statically allocates storage for dynamic-shape
tensors by taking the *upper bound* of symbolic shape values when the bounds
are known (e.g. the context length of an LLM, annotated by the user).  This
module provides the interval arithmetic behind that: given per-variable
bounds, compute a sound bound for any expression.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

_INF = math.inf

from .expr import (
    Add,
    ExprLike,
    FloorDiv,
    FloorMod,
    IntImm,
    Max,
    Min,
    Mul,
    PrimExpr,
    Sub,
    SymVar,
)


class Interval:
    """Closed integer interval; ``None`` endpoints mean unbounded."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[int], hi: Optional[int]):
        if lo is not None and hi is not None and lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    @staticmethod
    def point(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def everything() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def nonnegative() -> "Interval":
        return Interval(0, None)

    def is_bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def __add__(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def __neg__(self) -> "Interval":
        lo = None if self.hi is None else -self.hi
        hi = None if self.lo is None else -self.lo
        return Interval(lo, hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def __mul__(self, other: "Interval") -> "Interval":
        # Extended-real corner products; lo=None means -inf, hi=None +inf.
        # inf * 0 is taken as 0, which is sound for interval endpoints.
        def corner(a, a_inf_sign, b, b_inf_sign):
            a_val = a if a is not None else a_inf_sign * _INF
            b_val = b if b is not None else b_inf_sign * _INF
            if a_val in (_INF, -_INF) and b_val == 0:
                return 0
            if b_val in (_INF, -_INF) and a_val == 0:
                return 0
            return a_val * b_val

        corners = [
            corner(self.lo, -1, other.lo, -1),
            corner(self.lo, -1, other.hi, +1),
            corner(self.hi, +1, other.lo, -1),
            corner(self.hi, +1, other.hi, +1),
        ]
        lo, hi = min(corners), max(corners)
        return Interval(
            None if lo == -_INF else int(lo), None if hi == _INF else int(hi)
        )

    def floordiv(self, other: "Interval") -> "Interval":
        if other.lo is not None and other.lo > 0:
            # Positive divisor: monotone in numerator.
            divisors = [d for d in (other.lo, other.hi) if d is not None]
            los = [] if self.lo is None else [self.lo // d for d in divisors]
            his = [] if self.hi is None else [self.hi // d for d in divisors]
            lo = min(los) if self.lo is not None else None
            hi = max(his) if self.hi is not None else None
            return Interval(lo, hi)
        return Interval.everything()

    def floormod(self, other: "Interval") -> "Interval":
        if other.lo is not None and other.lo > 0 and other.hi is not None:
            return Interval(0, other.hi - 1)
        return Interval.everything()

    def union(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def intersect_min(self, other: "Interval") -> "Interval":
        lo = None
        if self.lo is not None and other.lo is not None:
            lo = min(self.lo, other.lo)
        hi = None
        if self.hi is not None and other.hi is not None:
            hi = min(self.hi, other.hi)
        elif self.hi is not None:
            hi = self.hi
        elif other.hi is not None:
            hi = other.hi
        return Interval(lo, hi)

    def intersect_max(self, other: "Interval") -> "Interval":
        hi = None
        if self.hi is not None and other.hi is not None:
            hi = max(self.hi, other.hi)
        lo = None
        if self.lo is not None and other.lo is not None:
            lo = max(self.lo, other.lo)
        elif self.lo is not None:
            lo = self.lo
        elif other.lo is not None:
            lo = other.lo
        return Interval(lo, hi)

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"

    def __repr__(self) -> str:  # pragma: no cover
        return f"Interval({self.lo}, {self.hi})"


#: Map from symbolic variable to its declared interval.
VarBounds = Dict[SymVar, Interval]


def infer_bound(expr: ExprLike, var_bounds: Optional[VarBounds] = None) -> Interval:
    """Sound interval for ``expr`` given per-variable bounds.

    Variables without declared bounds are assumed nonnegative (shape
    dimensions are sizes), which keeps products of shape dims monotone.
    """
    expr = PrimExpr.convert(expr)
    table = {}
    if var_bounds:
        table = {var.key(): bound for var, bound in var_bounds.items()}

    def visit(e: PrimExpr) -> Interval:
        if isinstance(e, IntImm):
            return Interval.point(e.value)
        if isinstance(e, SymVar):
            return table.get(e.key(), Interval.nonnegative())
        if isinstance(e, Add):
            return visit(e.a) + visit(e.b)
        if isinstance(e, Sub):
            return visit(e.a) - visit(e.b)
        if isinstance(e, Mul):
            return visit(e.a) * visit(e.b)
        if isinstance(e, FloorDiv):
            return visit(e.a).floordiv(visit(e.b))
        if isinstance(e, FloorMod):
            return visit(e.a).floormod(visit(e.b))
        if isinstance(e, Min):
            return visit(e.a).intersect_min(visit(e.b))
        if isinstance(e, Max):
            return visit(e.a).intersect_max(visit(e.b))
        raise TypeError(f"unknown expression node {type(e).__name__}")

    return visit(expr)


def upper_bound(expr: ExprLike, var_bounds: Optional[VarBounds] = None) -> Optional[int]:
    """Upper bound of ``expr`` or None if unbounded (static planning gate)."""
    return infer_bound(expr, var_bounds).hi


def prove_nonnegative(expr: ExprLike, var_bounds: Optional[VarBounds] = None) -> bool:
    bound = infer_bound(expr, var_bounds)
    return bound.lo is not None and bound.lo >= 0
