"""Symbolic integer expressions.

Relax reuses the loop-level tensor-program expression system for shape
annotations (paper §3.1), so that shape annotations support every integer
expression tensor programs support and a single analysis layer (equality
proving, bounds) serves both levels.  This module is that shared expression
system: a small integer expression tree with operator overloading.

Every node is immutable.  Structural identity is exposed through
:meth:`PrimExpr.key`, a hashable tuple used by the canonical simplifier and
by dict-based analyses (memory planning keys storage requests by the
canonical form of the size expression).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

ExprLike = Union["PrimExpr", int]


class PrimExpr:
    """Base class of all symbolic integer expressions."""

    __slots__ = ()

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def convert(value: ExprLike) -> "PrimExpr":
        """Coerce an int (or PrimExpr) into a PrimExpr."""
        if isinstance(value, PrimExpr):
            return value
        if isinstance(value, bool):
            raise TypeError("bool is not a valid symbolic integer")
        if isinstance(value, int):
            return IntImm(value)
        raise TypeError(f"cannot convert {type(value).__name__} to PrimExpr")

    # -- operator overloading ------------------------------------------------

    def __add__(self, other: ExprLike) -> "PrimExpr":
        return Add(self, PrimExpr.convert(other))

    def __radd__(self, other: ExprLike) -> "PrimExpr":
        return Add(PrimExpr.convert(other), self)

    def __sub__(self, other: ExprLike) -> "PrimExpr":
        return Sub(self, PrimExpr.convert(other))

    def __rsub__(self, other: ExprLike) -> "PrimExpr":
        return Sub(PrimExpr.convert(other), self)

    def __mul__(self, other: ExprLike) -> "PrimExpr":
        return Mul(self, PrimExpr.convert(other))

    def __rmul__(self, other: ExprLike) -> "PrimExpr":
        return Mul(PrimExpr.convert(other), self)

    def __floordiv__(self, other: ExprLike) -> "PrimExpr":
        return FloorDiv(self, PrimExpr.convert(other))

    def __rfloordiv__(self, other: ExprLike) -> "PrimExpr":
        return FloorDiv(PrimExpr.convert(other), self)

    def __mod__(self, other: ExprLike) -> "PrimExpr":
        return FloorMod(self, PrimExpr.convert(other))

    def __rmod__(self, other: ExprLike) -> "PrimExpr":
        return FloorMod(PrimExpr.convert(other), self)

    def __neg__(self) -> "PrimExpr":
        return Mul(IntImm(-1), self)

    # NOTE: __eq__ stays identity-based so expressions can live in sets and
    # dicts; use ``sym.prove_equal`` for semantic equality and ``key()`` for
    # structural equality.

    def key(self) -> Tuple:
        """Hashable structural key (subclasses override)."""
        raise NotImplementedError

    def children(self) -> Tuple["PrimExpr", ...]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


class IntImm(PrimExpr):
    """Integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"IntImm requires int, got {type(value).__name__}")
        self.value = value

    def key(self) -> Tuple:
        return ("int", self.value)

    def __str__(self) -> str:
        return str(self.value)


class SymVar(PrimExpr):
    """Symbolic integer variable (a dynamic shape dimension).

    Two SymVars with the same name are distinct variables; identity is the
    variable's identity.  This mirrors the paper's ``sym_var()`` construct,
    where variables are introduced explicitly and scoped per function.
    """

    __slots__ = ("name", "_id")

    _counter = 0

    def __init__(self, name: str = "v"):
        self.name = name
        SymVar._counter += 1
        self._id = SymVar._counter

    def key(self) -> Tuple:
        return ("var", self._id)

    def __str__(self) -> str:
        return self.name


class _BinaryOp(PrimExpr):
    __slots__ = ("a", "b")

    _opname = "?"
    _symbol = "?"

    def __init__(self, a: ExprLike, b: ExprLike):
        self.a = PrimExpr.convert(a)
        self.b = PrimExpr.convert(b)

    def key(self) -> Tuple:
        return (self._opname, self.a.key(), self.b.key())

    def children(self) -> Tuple[PrimExpr, ...]:
        return (self.a, self.b)

    def __str__(self) -> str:
        return f"({self.a} {self._symbol} {self.b})"


class Add(_BinaryOp):
    __slots__ = ()
    _opname = "add"
    _symbol = "+"


class Sub(_BinaryOp):
    __slots__ = ()
    _opname = "sub"
    _symbol = "-"


class Mul(_BinaryOp):
    __slots__ = ()
    _opname = "mul"
    _symbol = "*"


class FloorDiv(_BinaryOp):
    __slots__ = ()
    _opname = "floordiv"
    _symbol = "//"


class FloorMod(_BinaryOp):
    __slots__ = ()
    _opname = "floormod"
    _symbol = "%"


class Min(_BinaryOp):
    __slots__ = ()
    _opname = "min"

    def __str__(self) -> str:
        return f"min({self.a}, {self.b})"


class Max(_BinaryOp):
    __slots__ = ()
    _opname = "max"

    def __str__(self) -> str:
        return f"max({self.a}, {self.b})"


def free_vars(expr: PrimExpr) -> "list[SymVar]":
    """All symbolic variables in ``expr``, in first-occurrence order."""
    seen: Dict[Tuple, SymVar] = {}
    order = []

    def visit(e: PrimExpr) -> None:
        if isinstance(e, SymVar):
            if e.key() not in seen:
                seen[e.key()] = e
                order.append(e)
            return
        for child in e.children():
            visit(child)

    visit(expr)
    return order


def substitute(expr: PrimExpr, mapping: Dict[SymVar, ExprLike]) -> PrimExpr:
    """Replace variables in ``expr`` per ``mapping`` (keyed by identity)."""
    table = {var.key(): PrimExpr.convert(val) for var, val in mapping.items()}

    def visit(e: PrimExpr) -> PrimExpr:
        if isinstance(e, SymVar):
            return table.get(e.key(), e)
        if isinstance(e, IntImm):
            return e
        if isinstance(e, _BinaryOp):
            a, b = visit(e.a), visit(e.b)
            if a is e.a and b is e.b:
                return e
            return type(e)(a, b)
        raise TypeError(f"unknown expression node {type(e).__name__}")

    return visit(expr)


def evaluate(expr: ExprLike, bindings: Dict[SymVar, int]) -> int:
    """Evaluate ``expr`` to a concrete integer under ``bindings``.

    Raises ``KeyError`` if a free variable is unbound — the runtime uses this
    to surface missing symbolic shape information early.
    """
    expr = PrimExpr.convert(expr)
    table = {var.key(): int(val) for var, val in bindings.items()}

    def visit(e: PrimExpr) -> int:
        if isinstance(e, IntImm):
            return e.value
        if isinstance(e, SymVar):
            if e.key() not in table:
                raise KeyError(f"unbound symbolic variable '{e.name}'")
            return table[e.key()]
        if isinstance(e, Add):
            return visit(e.a) + visit(e.b)
        if isinstance(e, Sub):
            return visit(e.a) - visit(e.b)
        if isinstance(e, Mul):
            return visit(e.a) * visit(e.b)
        if isinstance(e, FloorDiv):
            return visit(e.a) // visit(e.b)
        if isinstance(e, FloorMod):
            return visit(e.a) % visit(e.b)
        if isinstance(e, Min):
            return min(visit(e.a), visit(e.b))
        if isinstance(e, Max):
            return max(visit(e.a), visit(e.b))
        raise TypeError(f"unknown expression node {type(e).__name__}")

    return visit(expr)


def is_static(expr: ExprLike) -> bool:
    """True when ``expr`` contains no symbolic variables."""
    return not free_vars(PrimExpr.convert(expr))


def as_static_int(expr: ExprLike) -> int:
    """Evaluate a variable-free expression to an int."""
    return evaluate(PrimExpr.convert(expr), {})


def shape_product(dims: Iterable[ExprLike]) -> PrimExpr:
    """Product of shape dimensions (number of elements)."""
    result: PrimExpr = IntImm(1)
    for dim in dims:
        result = result * PrimExpr.convert(dim)
    return result
