"""Symbolic integer expression system shared by shapes and tensor programs.

Relax's first-class symbolic shapes (paper §3.2) reuse the tensor-program
expression system so that one analysis layer — canonical simplification,
equality proving, interval bounds — serves shape annotations at the graph
level and loop extents / buffer indices at the tensor-program level alike.
"""

from .expr import (
    Add,
    ExprLike,
    FloorDiv,
    FloorMod,
    IntImm,
    Max,
    Min,
    Mul,
    PrimExpr,
    Sub,
    SymVar,
    as_static_int,
    evaluate,
    free_vars,
    is_static,
    shape_product,
    substitute,
)
from .simplify import canonical_key, prove_divisible, prove_equal, simplify
from .analysis import Interval, VarBounds, infer_bound, prove_nonnegative, upper_bound
from .parser import ShapeVarContext, parse_dim, parse_expr

__all__ = [
    "Add",
    "ExprLike",
    "FloorDiv",
    "FloorMod",
    "IntImm",
    "Interval",
    "Max",
    "Min",
    "Mul",
    "PrimExpr",
    "ShapeVarContext",
    "Sub",
    "SymVar",
    "VarBounds",
    "as_static_int",
    "canonical_key",
    "evaluate",
    "free_vars",
    "infer_bound",
    "is_static",
    "parse_dim",
    "parse_expr",
    "prove_divisible",
    "prove_equal",
    "prove_nonnegative",
    "shape_product",
    "simplify",
    "substitute",
    "upper_bound",
]
