"""Parse quoted symbolic shape expressions.

The paper's annotation syntax quotes symbolic expressions into strings in
function signatures — ``Tensor(("n", 4), "f32")``, ``Tensor(("n * 4",), ...)``
— because the symbolic variables are not yet declared at the point of
annotation (paper §3.1, footnote 2).  This module resolves those strings to
:class:`~repro.sym.expr.PrimExpr` against a variable environment, creating
fresh variables for names seen for the first time.
"""

from __future__ import annotations

import ast
from typing import Dict

from .expr import FloorDiv, FloorMod, Max, Min, PrimExpr, SymVar


class ShapeVarContext:
    """Environment mapping names to symbolic variables.

    A context is scoped to one function signature, matching the paper's rule
    that symbolic relations are isolated at function boundaries (§4.1).
    """

    def __init__(self):
        self.vars: Dict[str, SymVar] = {}

    def get(self, name: str) -> SymVar:
        """Variable for ``name``, created on first use."""
        if name not in self.vars:
            self.vars[name] = SymVar(name)
        return self.vars[name]

    def declare(self, name: str, var: SymVar) -> None:
        """Bind an externally created variable (e.g. from ``sym_var()``)."""
        self.vars[name] = var


_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.FloorDiv: FloorDiv,
    ast.Mod: FloorMod,
}

_CALLS = {"min": Min, "max": Max}


def parse_expr(text: str, ctx: ShapeVarContext) -> PrimExpr:
    """Parse a quoted symbolic expression like ``"n * 4 + m"``.

    Only integer arithmetic is accepted: names, integer literals, ``+ - *``,
    ``//``, ``%``, unary minus, and ``min``/``max`` calls.
    """
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as err:
        raise ValueError(f"invalid symbolic expression {text!r}: {err}") from err

    def visit(node: ast.AST) -> PrimExpr:
        if isinstance(node, ast.Expression):
            return visit(node.body)
        if isinstance(node, ast.Name):
            return ctx.get(node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) and not isinstance(node.value, bool):
                return PrimExpr.convert(node.value)
            raise ValueError(f"non-integer constant in shape expression: {node.value!r}")
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise ValueError(f"unsupported operator in {text!r}")
            return op(visit(node.left), visit(node.right))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -visit(node.operand)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            ctor = _CALLS.get(node.func.id)
            if ctor is None or len(node.args) != 2 or node.keywords:
                raise ValueError(f"unsupported call in shape expression {text!r}")
            return ctor(visit(node.args[0]), visit(node.args[1]))
        raise ValueError(f"unsupported construct in shape expression {text!r}")

    return visit(tree)


def parse_dim(dim, ctx: ShapeVarContext) -> PrimExpr:
    """Coerce one annotation dimension: int, str (quoted expr) or PrimExpr."""
    if isinstance(dim, PrimExpr):
        return dim
    if isinstance(dim, str):
        return parse_expr(dim, ctx)
    if isinstance(dim, int) and not isinstance(dim, bool):
        return PrimExpr.convert(dim)
    raise TypeError(f"invalid shape dimension {dim!r}")
