"""Source-op provenance for Relax expressions and VM instructions.

After legalization, fusion and lowering, a single VM instruction (one
kernel launch, one storage allocation) may descend from several
graph-level operator calls — a fused "dequant → matmul → add" kernel, or
the storage backing its output.  Provenance is the thread that survives
all of those rewrites: a tuple of *site strings*, each naming the original
graph-level op and the variable it was bound to::

    ("matmul@lv0", "add@lv1")

Sites are seeded when the frontend emits an operator call
(:meth:`BlockBuilder.emit`), carried across every pass by the
:class:`~repro.core.visitor.ExprMutator` infrastructure plus explicit
threading in the rewriting passes (legalize, fusion, lowering, memory
planning), and finally stamped onto VM instructions by codegen — so the
disassembly and every runtime trace event can point back at the op(s)
that produced it (the Relay/TensorIR-profiler lineage the evaluation
tooling needs).

This module is dependency-free on purpose: core and transform import it
without dragging in the runtime.
"""

from __future__ import annotations

from typing import Iterable, Tuple

#: A provenance chain: ordered, de-duplicated source-op sites.
Provenance = Tuple[str, ...]


def site(op_name: str, var_hint: str = "") -> str:
    """Format one provenance site: ``"matmul@lv0"`` (or bare op name)."""
    return f"{op_name}@{var_hint}" if var_hint else op_name


def site_op(entry: str) -> str:
    """The op-name half of a site string (``"matmul@lv0"`` → ``"matmul"``)."""
    return entry.split("@", 1)[0]


def of(expr) -> Provenance:
    """The provenance chain of an expression (``()`` when untracked)."""
    return getattr(expr, "provenance", ()) or ()


def merge(*sources) -> Provenance:
    """Union of provenance chains / raw tuples, first-seen order."""
    out = []
    seen = set()
    for source in sources:
        chain = source if isinstance(source, (tuple, list)) else of(source)
        for entry in chain:
            if entry not in seen:
                seen.add(entry)
                out.append(entry)
    return tuple(out)


def tag(expr, *sources):
    """Attach merged provenance to ``expr`` (no-op when empty); returns it."""
    chain = merge(*sources)
    if chain:
        expr.provenance = chain
    return expr


def render(chain: Iterable[str]) -> str:
    """Human-readable form of a chain: ``"matmul@lv0+add@lv1"``."""
    return "+".join(chain)
