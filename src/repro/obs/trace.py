"""Structured runtime traces on the simulated device-model clock.

The VM owns at most one :class:`TraceRecorder` (``vm.tracer``); when it is
``None`` — the default — tracing costs a single attribute check per
instruction and the simulated results are bit-identical to an untraced
run.  When attached, every time-advancing site in the interpreter emits
one :class:`TraceEvent`:

=================  ==========================================================
kind               emitted for
=================  ==========================================================
``kernel``         a TensorIR kernel launch (``CallTir``)
``library``        a library offload (``CallLib``)
``builtin``        a time-charging VM builtin (``unique``, ``nonzero``)
``alloc``          a storage allocation (``AllocStorage`` or a pooled
                   ``AllocTensor`` miss)
``free``           a storage death (``KillTensor`` releasing pool bytes);
                   carries no duration
``graph_capture``  recording a CUDA-graph region (charged capture overhead)
``graph_replay``   replaying a captured region (graph launch overhead; the
                   per-kernel costs inside are separate events)
=================  ==========================================================

Durations are attributed exactly: the sum of ``dur_s`` over all events of
a trace equals the ``ExecutionStats.time_s`` accumulated while recording
(each ``stats.time_s`` increment in the VM maps to exactly one event).
Timestamps are the simulated clock *before* the event's cost is charged.

Kernel/library events carry the provenance chain stamped on the
instruction, the concrete argument shapes, the symbolic shape bindings in
effect (``{"n": 7}``), and the roofline vs. launch-overhead split from the
device model — everything the report layer (per-op tables, memory
timeline, Chrome trace export) and the fuzz localizer consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class TraceEvent:
    """One attributed slice of simulated time (or an instant, for frees)."""

    kind: str
    name: str
    #: Simulated clock when the event began (seconds).
    ts_s: float
    #: Simulated duration charged by this event (seconds; 0.0 for instants).
    dur_s: float
    #: Source-op provenance chain of the originating instruction.
    prov: Tuple[str, ...] = ()
    #: Kind-specific payload: shapes, symbolic bindings, flops/bytes,
    #: roofline/launch split, storage sizes and lifetimes, ...
    args: Dict[str, Any] = field(default_factory=dict)
    #: NumPy copies of kernel outputs (only when ``capture_outputs``);
    #: kept out of ``args`` so exports stay JSON-serializable.
    outputs: Optional[list] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (outputs intentionally omitted)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "ts_s": self.ts_s,
            "dur_s": self.dur_s,
            "prov": list(self.prov),
            "args": self.args,
        }


class TraceRecorder:
    """Collects :class:`TraceEvent` objects from a tracing VM run.

    Attach with ``vm.tracer = TraceRecorder()`` (or
    ``VirtualMachineProfiler``, which wires it up for you), run, then hand
    ``recorder.events`` to the report layer.

    ``capture_outputs=True`` additionally stores NumPy copies of every
    kernel/library output on the event — the fuzz oracle uses this to
    localize divergences to the first differing op.  It is memory-hungry;
    leave it off for profiling.
    """

    def __init__(self, capture_outputs: bool = False):
        self.capture_outputs = capture_outputs
        self.events: List[TraceEvent] = []

    def emit(
        self,
        kind: str,
        name: str,
        ts_s: float,
        dur_s: float,
        prov: Tuple[str, ...] = (),
        outputs: Optional[list] = None,
        **args: Any,
    ) -> TraceEvent:
        event = TraceEvent(kind, name, ts_s, dur_s, prov, args, outputs)
        self.events.append(event)
        return event

    # -- convenience views ------------------------------------------------------

    def total_time_s(self) -> float:
        """Sum of all event durations (equals the traced ``time_s`` delta)."""
        return sum(event.dur_s for event in self.events)

    def kernel_events(self) -> List[TraceEvent]:
        """Just the compute events (kernel + library + builtin)."""
        return [e for e in self.events if e.kind in ("kernel", "library", "builtin")]

    def clear(self) -> None:
        self.events.clear()
