"""Runtime observability: provenance, tracing, per-op profiling, export.

The subsystem has three layers, mirroring the compile→run→report flow:

* :mod:`repro.obs.provenance` — source-op spans attached to Relax
  expressions and threaded through every pass down to VM instructions;
* :mod:`repro.obs.trace` — a :class:`TraceRecorder` hook the VM drives,
  emitting structured events on the simulated device-model clock
  (zero-cost when no recorder is attached);
* :mod:`repro.obs.report` — per-op aggregate tables, the memory
  timeline, and Chrome trace-event / Perfetto JSON export, plus the
  :class:`VirtualMachineProfiler` convenience wrapper.

``python -m repro.obs`` runs a model end-to-end and renders all of the
above (see :mod:`repro.obs.cli`).

Core and the transform passes import :mod:`~repro.obs.provenance`
through this package, so the report layer (which reaches into the
runtime) is loaded lazily to keep the import graph acyclic.
"""

from .provenance import Provenance, merge, of, render, site, site_op, tag
from .spans import Span, SpanRecorder
from .stats import dist, extended_dist, percentile
from .trace import TraceEvent, TraceRecorder

_REPORT_NAMES = (
    "MemoryTimeline",
    "OpTable",
    "VirtualMachineProfiler",
    "chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
)

__all__ = [
    "Provenance",
    "merge",
    "of",
    "render",
    "site",
    "site_op",
    "tag",
    "Span",
    "SpanRecorder",
    "TraceEvent",
    "TraceRecorder",
    "dist",
    "extended_dist",
    "percentile",
    *_REPORT_NAMES,
]


def __getattr__(name: str):
    if name in _REPORT_NAMES:
        from . import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
