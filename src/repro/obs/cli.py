"""``python -m repro.obs`` — trace a model end-to-end and report.

Compiles an LLM with the full pipeline, runs prefill + decode steps under
the tracing VM on the analytical device clock, then prints the per-op
table and memory timeline and (optionally) writes the Chrome trace JSON —
open it at https://ui.perfetto.dev or in ``chrome://tracing``.

Examples::

    python -m repro.obs                           # tiny llama, RTX 4090
    python -m repro.obs --model llama3-8b --batch 8 --context 1024
    python -m repro.obs --out trace.json --table-out ops.txt --by op
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from ..models import llama as llama_models
from ..runtime.device import ALL_DEVICES, RTX_4090

#: CLI name -> LlamaConfig; tiny models keep the default run under a second.
MODELS = {
    "tiny-llama": llama_models.TINY_LLAMA,
    "tiny-neox": llama_models.TINY_NEOX,
    "tiny-gemma": llama_models.TINY_GEMMA,
    "tiny-qwen": llama_models.TINY_QWEN,
    "llama3-8b": llama_models.LLAMA3_8B,
    "llama2-7b": llama_models.LLAMA2_7B,
}

#: CLI name -> Device (short keys for the paper's evaluation boards).
DEVICES = {
    "rtx4090": "NVIDIA RTX 4090",
    "7900xtx": "AMD Radeon 7900 XTX",
    "m2ultra": "Apple M2 Ultra",
    "jetson-orin": "NVIDIA Jetson Orin (CUDA)",
    "steam-deck": "Steam Deck (AMD APU, Vulkan)",
    "test": "test-device",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace a compiled model on the simulated VM and "
                    "report per-op time, memory, and a Perfetto trace.",
    )
    parser.add_argument("--model", choices=sorted(MODELS), default="tiny-llama")
    parser.add_argument("--device", choices=sorted(DEVICES), default="rtx4090")
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--context", type=int, default=32,
                        help="KV-cache length for the traced decode step")
    parser.add_argument("--prefill", type=int, default=8,
                        help="prompt length for the traced prefill (0 skips)")
    parser.add_argument("--by", choices=("name", "op"), default="name",
                        help="aggregate the op table by kernel name or by "
                             "source-op provenance chain")
    parser.add_argument("--rows", type=int, default=24,
                        help="max rows of the op table to print")
    parser.add_argument("--out", metavar="TRACE.json", default=None,
                        help="write the Chrome trace-event JSON here")
    parser.add_argument("--report-out", metavar="REPORT.json", default=None,
                        help="write the full JSON report (stats, op table, "
                             "memory, events) here")
    parser.add_argument("--table-out", metavar="TABLE.txt", default=None,
                        help="write the rendered op table here")
    parser.add_argument("--no-cuda-graph", action="store_true")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    cfg = MODELS[args.model]
    device = ALL_DEVICES.get(DEVICES[args.device], RTX_4090)

    # Import after arg parsing so ``--help`` stays instant.
    from ..bench.relax_runner import RelaxLLM

    print(f"compiling {args.model} for {device.name} ...", file=sys.stderr)
    runner = RelaxLLM(cfg, device,
                      enable_cuda_graph=not args.no_cuda_graph)

    pvm = runner.op_profile(args.batch, args.context, fn="decode")
    if args.prefill > 0:
        # Trace the prefill on the same profiler VM, after the decode —
        # a second function on one timeline, like a real serving step.
        tokens_events = len(pvm.events)
        from ..runtime import NDArray

        prompt = NDArray.abstract((args.batch, args.prefill), "i64")
        pvm.run("prefill", prompt, *runner._caches(args.batch, 0),
                *runner.params)
        print(f"prefill added {len(pvm.events) - tokens_events} events",
              file=sys.stderr)

    table = pvm.op_table(by=args.by)
    timeline = pvm.memory_timeline()

    title = (f"{args.model} on {device.name} — batch {args.batch}, "
             f"context {args.context}")
    print(f"=== per-op profile: {title} ===")
    print(table.render(max_rows=args.rows))
    print()
    print("=== memory timeline ===")
    print(timeline.render())
    print()
    stats = pvm.stats.summary()
    print("=== execution stats ===")
    for key, value in stats.items():
        print(f"  {key}: {value}")

    for path in (args.table_out, args.out, args.report_out):
        dirname = os.path.dirname(path) if path else ""
        if dirname:
            os.makedirs(dirname, exist_ok=True)
    if args.table_out:
        with open(args.table_out, "w") as fh:
            fh.write(f"{title}\n{table.render()}\n\n{timeline.render()}\n")
        print(f"wrote {args.table_out}", file=sys.stderr)
    if args.out:
        pvm.export_chrome_trace(args.out)
        print(f"wrote {args.out} (open at https://ui.perfetto.dev)",
              file=sys.stderr)
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(pvm.report(by=args.by), fh, indent=2)
        print(f"wrote {args.report_out}", file=sys.stderr)

    # The invariant the trace guarantees: every event maps to exactly one
    # clock increment, so the trace accounts for all simulated time.
    drift = abs(pvm.tracer.total_time_s() - pvm.stats.time_s)
    if drift > 1e-9:
        print(f"WARNING: trace drift {drift:.3g}s vs stats clock",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
