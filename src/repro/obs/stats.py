"""Shared deterministic summary statistics (nearest-rank percentiles).

One implementation of the percentile/distribution helpers every report
surface uses — the serving metrics (:mod:`repro.serve.metrics`), the
serve-layer telemetry registry (:mod:`repro.serve.telemetry`), the SLO
monitor and the per-op report layer — so "p99" means the same thing in
every artifact this repo emits.

Percentiles use the **nearest-rank** definition: the returned value is
always an actual observed data point, never an interpolation.  That
matters for determinism pinning — a nearest-rank percentile of a
deterministic series is bit-exactly reproducible, with no dependence on
floating-point interpolation order.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

#: The canonical percentile set summaries report.
DEFAULT_PERCENTILES: Dict[str, float] = {"p50": 50.0, "p90": 90.0, "p99": 99.0}


def percentile(values: Sequence[float], p: float) -> Optional[float]:
    """Nearest-rank percentile (``p`` in [0, 100]).

    Returns ``None`` on an empty series (NaN poisons JSON artifacts and
    forced every caller to guard).  A single-sample series is well
    defined under nearest-rank: every percentile is that sample.
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def dist(values: Sequence[float],
         percentiles: Optional[Dict[str, float]] = None,
         ) -> Dict[str, Optional[float]]:
    """Mean + nearest-rank percentile summary of a series.

    The shape every latency distribution in the serving summaries uses:
    ``{"mean": ..., "p50": ..., "p90": ..., "p99": ...}``, with ``None``
    entries for an empty series.
    """
    pct = DEFAULT_PERCENTILES if percentiles is None else percentiles
    ordered = sorted(values)
    # Mean over the *original* order: float addition is not associative,
    # and historical summaries (pinned byte-for-byte by baseline-hash
    # tests) summed the series as observed, not sorted.
    out: Dict[str, Optional[float]] = {
        "mean": sum(values) / len(values) if ordered else None
    }
    for key, p in pct.items():
        if not ordered:
            out[key] = None
        else:
            rank = max(1, math.ceil(p / 100.0 * len(ordered)))
            out[key] = ordered[min(rank, len(ordered)) - 1]
    return out


def extended_dist(values: Sequence[float],
                  percentiles: Optional[Dict[str, float]] = None,
                  ) -> Dict[str, Any]:
    """:func:`dist` plus count/sum/min/max — the histogram-snapshot shape
    the telemetry registry serializes."""
    out: Dict[str, Any] = {
        "count": len(values),
        "sum": math.fsum(values),
        "min": min(values) if values else None,
        "max": max(values) if values else None,
    }
    out.update(dist(values, percentiles))
    return out
