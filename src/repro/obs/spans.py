"""Request-lifecycle spans for the serving engine.

:mod:`repro.obs.trace` answers "what did the *device* do" — one event
per kernel on the VM clock.  This module answers "what happened to each
*request*": a :class:`SpanRecorder` builds nested spans over the
engine's discrete-event clock —

* ``queued`` — arrival → admission (scheduler backlog);
* ``request`` — admission → finish (the root span; survives
  preemption, so wall-clock-under-management is one slice);
* phase segments — ``prefill`` / ``decode`` / ``spec_decode`` /
  ``encode`` / ``cross_project`` / ``denoise`` activity windows nested
  inside the root span (contiguous same-phase iterations merge into
  one segment);
* ``preempted[swap]`` / ``preempted[recompute]`` — eviction →
  resume/readmission, nested inside the root span.

Because every timestamp is the engine's analytical clock, the spans
line up exactly with the per-iteration slices the engine already emits
and — when kernel capture is on — with the VM's per-op
:class:`~repro.obs.trace.TraceEvent` stream re-based onto the same
clock.  One Perfetto file then shows scheduler decisions stacked above
the kernels they caused.

Export is Chrome trace-event JSON: complete (``"X"``) slices whose
nesting Perfetto infers from containment, which
:func:`repro.obs.report.validate_chrome_trace` checks structurally and
``tests/obs`` checks semantically (children lie inside parents).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class Span:
    """One closed interval of a request's life on the engine clock."""

    name: str
    req_id: int
    start_s: float
    end_s: float
    #: Nesting depth: 0 = root (``request``), 1 = phase/preemption
    #: segments.  ``queued`` sits at depth 0 before the root span.
    depth: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def dur_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "req_id": self.req_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "depth": self.depth,
            "args": self.args,
        }


class SpanRecorder:
    """Builds request-lifecycle spans from engine scheduling decisions.

    The engine drives it with one call per scheduler event; the recorder
    owns all segment bookkeeping (open phase windows, open preemption
    windows, the root span) so the engine loop stays declarative.
    Determinism: spans are appended in engine-iteration order, which is
    itself deterministic, so two same-seed runs produce byte-identical
    span lists.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        #: req_id -> (admit_ts, root args) for requests whose root span
        #: is still open.
        self._open_root: Dict[int, Tuple[float, Dict[str, Any]]] = {}
        #: req_id -> (phase label, start, args) open activity segment.
        self._open_phase: Dict[int, Tuple[str, float, Dict[str, Any]]] = {}
        #: req_id -> (mode, start) open preemption window.
        self._open_preempt: Dict[int, Tuple[str, float]] = {}
        #: req_id -> latest activity end for the open phase segment.
        self._phase_end: Dict[int, float] = {}

    # -- lifecycle events --------------------------------------------------------

    def admitted(self, req_id: int, arrival_s: float, t: float,
                 **args: Any) -> None:
        """Request entered the running set at ``t``.

        First admission opens the ``queued`` and root spans; a
        *re*-admission after recompute preemption just closes the
        preemption window (the root span never closed).
        """
        if req_id in self._open_root:
            self._close_preempt(req_id, t)
            return
        if t > arrival_s:
            self.spans.append(Span("queued", req_id, arrival_s, t))
        self._open_root[req_id] = (t, dict(args))

    def resumed(self, req_id: int, t: float, **args: Any) -> None:
        """Swapped-out request restored to the device at ``t``."""
        self._close_preempt(req_id, t, **args)

    def activity(self, req_id: int, phase: str, t0: float, t1: float,
                 **args: Any) -> None:
        """The request did ``phase`` work over ``[t0, t1]`` — contiguous
        or gapped same-phase windows merge into one segment."""
        open_seg = self._open_phase.get(req_id)
        if open_seg is not None and open_seg[0] == phase:
            self._phase_end[req_id] = t1
            return
        if open_seg is not None:
            self._close_phase(req_id, t0)
        self._open_phase[req_id] = (phase, t0, dict(args))
        self._phase_end[req_id] = t1

    def preempted(self, req_id: int, t: float, mode: str,
                  **args: Any) -> None:
        self._close_phase(req_id, t)
        self._open_preempt[req_id] = (mode, t)

    def finished(self, req_id: int, t: float, **args: Any) -> None:
        self._close_phase(req_id, t)
        self._close_preempt(req_id, t)
        root = self._open_root.pop(req_id, None)
        if root is not None:
            admit_ts, root_args = root
            root_args.update(args)
            self.spans.append(
                Span("request", req_id, admit_ts, t, depth=0,
                     args=root_args))

    def finalize(self, t: float) -> None:
        """Close every dangling span at the end-of-run clock."""
        for req_id in sorted(self._open_phase):
            self._close_phase(req_id, t)
        for req_id in sorted(self._open_preempt):
            self._close_preempt(req_id, t)
        for req_id in sorted(self._open_root):
            admit_ts, root_args = self._open_root[req_id]
            root_args["unfinished"] = True
            self.spans.append(
                Span("request", req_id, admit_ts, t, depth=0,
                     args=root_args))
        self._open_root.clear()

    # -- internals ---------------------------------------------------------------

    def _close_phase(self, req_id: int, t: float) -> None:
        seg = self._open_phase.pop(req_id, None)
        if seg is None:
            return
        phase, start, args = seg
        end = min(max(self._phase_end.pop(req_id, t), start), max(t, start))
        self.spans.append(Span(phase, req_id, start, end, depth=1, args=args))

    def _close_preempt(self, req_id: int, t: float, **args: Any) -> None:
        win = self._open_preempt.pop(req_id, None)
        if win is None:
            return
        mode, start = win
        self.spans.append(
            Span(f"preempted[{mode}]", req_id, start, t, depth=1,
                 args=dict(args)))

    # -- export ------------------------------------------------------------------

    def chrome_events(self, pid: int = 1) -> List[Dict[str, Any]]:
        """Complete-slice trace events, one track per request.

        Emitted root-first per request so Perfetto's containment-based
        nesting resolves deterministically; zero-duration segments get an
        epsilon-free 0 ``dur`` (valid per the spec).
        """
        us = 1e6
        ordered = sorted(
            self.spans,
            key=lambda s: (s.req_id, s.depth, s.start_s, s.name),
        )
        out: List[Dict[str, Any]] = []
        for span in ordered:
            out.append({
                "name": span.name,
                "cat": "lifecycle",
                "ph": "X",
                "pid": pid,
                "tid": span.req_id,
                "ts": span.start_s * us,
                "dur": span.dur_s * us,
                "args": span.args,
            })
        return out

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self.spans]
