"""Per-op reports, memory timelines, and Chrome trace / Perfetto export.

The consumers of :mod:`repro.obs.trace` events:

* :class:`OpTable` — the VirtualMachineProfiler-style aggregate: time,
  calls, flops/bytes and % of total per kernel (or per source-op chain);
* :class:`MemoryTimeline` — live-byte curve over the simulated clock,
  attributing ``peak_bytes`` to the storages alive at the peak and the
  graph-level ops that allocated them;
* :func:`chrome_trace` / :func:`export_chrome_trace` — the Chrome
  trace-event JSON form (loads in ``chrome://tracing`` and Perfetto),
  with a memory counter track alongside the kernel slices;
* :class:`VirtualMachineProfiler` — a VM subclass with the recorder
  attached and one-call access to all of the above.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .provenance import render
from .stats import extended_dist
from .trace import TraceEvent, TraceRecorder

#: Event kinds that represent device compute (the rows of an OpTable).
COMPUTE_KINDS = ("kernel", "library", "builtin")


def duration_summary(events: Sequence[TraceEvent]) -> Dict[str, Any]:
    """Nearest-rank duration distribution of the compute events in a
    trace (count/sum/mean/min/max/p50/p90/p99) — the same shared
    implementation (:mod:`repro.obs.stats`) the serving metrics and the
    telemetry registry use, so kernel-level and request-level percentiles
    are directly comparable."""
    return extended_dist(
        [e.dur_s for e in events if e.kind in COMPUTE_KINDS]
    )


# -- per-op aggregate table ------------------------------------------------------


class OpTable:
    """Aggregate per-op statistics over a trace.

    ``by="name"`` groups by kernel/library symbol; ``by="op"`` groups by
    the rendered provenance chain, so a fused kernel shows up as the ops
    it descends from (``"add@lv+relu@lv1"``).  Non-compute time (graph
    capture/replay, allocator overhead) is aggregated per kind under
    bracketed names so percentages always total 100.
    """

    def __init__(self, rows: List[Dict[str, Any]], total_time_s: float):
        self.rows = rows
        self.total_time_s = total_time_s

    @classmethod
    def from_events(cls, events: Sequence[TraceEvent], by: str = "name") -> "OpTable":
        if by not in ("name", "op"):
            raise ValueError(f"unknown grouping {by!r}; use 'name' or 'op'")
        total = sum(e.dur_s for e in events)
        groups: Dict[str, Dict[str, Any]] = {}
        for event in events:
            if event.kind in COMPUTE_KINDS:
                key = render(event.prov) or event.name if by == "op" else event.name
                prov = render(event.prov)
            else:
                key = f"[{event.kind}]"
                prov = ""  # aggregated overhead: no single originating op
            row = groups.get(key)
            if row is None:
                row = groups[key] = {
                    "name": key,
                    "kind": event.kind,
                    "calls": 0,
                    "time_s": 0.0,
                    "flops": 0,
                    "bytes": 0,
                    "provenance": prov,
                }
            row["calls"] += 1
            row["time_s"] += event.dur_s
            row["flops"] += int(event.args.get("flops", 0))
            row["bytes"] += int(event.args.get("bytes", 0))
        rows = sorted(groups.values(), key=lambda r: -r["time_s"])
        for row in rows:
            row["pct"] = 100.0 * row["time_s"] / total if total else 0.0
        return cls(rows, total)

    def to_dict(self) -> Dict[str, Any]:
        return {"total_time_s": self.total_time_s, "rows": self.rows}

    def render(self, max_rows: Optional[int] = None) -> str:
        """Aligned text table, hottest first."""
        header = ("op", "calls", "time_ms", "%", "GFLOP", "MiB", "from")
        body = []
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        for row in rows:
            body.append((
                row["name"],
                str(row["calls"]),
                f"{row['time_s'] * 1e3:.4f}",
                f"{row['pct']:.1f}",
                f"{row['flops'] / 1e9:.3f}",
                f"{row['bytes'] / (1 << 20):.2f}",
                row["provenance"],
            ))
        widths = [
            max(len(header[c]), *(len(r[c]) for r in body)) if body else len(header[c])
            for c in range(len(header))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip(),
            "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)).rstrip())
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... {len(self.rows) - max_rows} more rows")
        lines.append(f"total: {self.total_time_s * 1e3:.4f} ms")
        return "\n".join(lines)


# -- memory timeline -------------------------------------------------------------


class MemoryTimeline:
    """Live device bytes over the simulated clock, from alloc/free events.

    Pool recycling follows the VM's accounting: a reused block counts as
    live again (its release subtracted it), so the curve matches
    ``ExecutionStats.current_bytes`` / ``peak_bytes`` evolution during
    the traced run.
    """

    def __init__(self, points, peak_bytes, peak_ts_s, live_at_peak):
        #: (ts_s, live_bytes) after every alloc/free event.
        self.points: List = points
        self.peak_bytes: int = peak_bytes
        self.peak_ts_s: float = peak_ts_s
        #: Allocations live at the peak: (size, provenance chain).
        self.live_at_peak: List = live_at_peak

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "MemoryTimeline":
        live: List = []  # (size, prov), insertion order
        current = 0
        points: List = []
        peak = 0
        peak_ts = 0.0
        live_at_peak: List = []
        for event in events:
            if event.kind == "alloc":
                size = int(event.args.get("size", 0))
                current += size
                live.append((size, event.prov))
                if current > peak:
                    peak = current
                    peak_ts = event.ts_s
                    live_at_peak = list(live)
            elif event.kind == "free":
                size = int(event.args.get("size", 0))
                current -= size
                # Retire the latest matching live entry (prefer same origin).
                idx = None
                for i in range(len(live) - 1, -1, -1):
                    if live[i][0] == size and live[i][1] == event.prov:
                        idx = i
                        break
                if idx is None:
                    for i in range(len(live) - 1, -1, -1):
                        if live[i][0] == size:
                            idx = i
                            break
                if idx is not None:
                    live.pop(idx)
            else:
                continue
            points.append((event.ts_s, current))
        return cls(points, peak, peak_ts, live_at_peak)

    def peak_by_op(self) -> Dict[str, int]:
        """peak_bytes attributed to originating op chains (desc by bytes)."""
        by_op: Dict[str, int] = {}
        for size, prov in self.live_at_peak:
            key = render(prov) or "<untracked>"
            by_op[key] = by_op.get(key, 0) + size
        return dict(sorted(by_op.items(), key=lambda kv: -kv[1]))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "peak_bytes": self.peak_bytes,
            "peak_ts_s": self.peak_ts_s,
            "points": [[ts, b] for ts, b in self.points],
            "live_at_peak": [
                {"size": size, "prov": list(prov)} for size, prov in self.live_at_peak
            ],
        }

    def render(self, max_rows: int = 10) -> str:
        lines = [
            f"peak {self.peak_bytes / (1 << 20):.2f} MiB "
            f"at t={self.peak_ts_s * 1e3:.4f} ms "
            f"({len(self.live_at_peak)} live allocations)"
        ]
        for key, nbytes in list(self.peak_by_op().items())[:max_rows]:
            lines.append(f"  {nbytes / (1 << 20):8.2f} MiB  {key}")
        return "\n".join(lines)


# -- Chrome trace-event / Perfetto export ----------------------------------------


def chrome_trace(events: Sequence[TraceEvent],
                 process_name: str = "repro-vm") -> Dict[str, Any]:
    """Chrome trace-event JSON object format (Perfetto-compatible).

    Timed events become complete (``"ph": "X"``) slices on one thread
    track; frees become instants; a ``device memory`` counter track
    carries the live-byte curve.  Timestamps are microseconds, per the
    format spec.
    """
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    current = 0
    for event in events:
        ts_us = event.ts_s * 1e6
        args = dict(event.args)
        if event.prov:
            args["provenance"] = render(event.prov)
        if event.kind == "free":
            trace_events.append({
                "name": event.name,
                "cat": event.kind,
                "ph": "i",
                "s": "t",
                "ts": ts_us,
                "pid": 0,
                "tid": 0,
                "args": args,
            })
        else:
            trace_events.append({
                "name": event.name,
                "cat": event.kind,
                "ph": "X",
                "ts": ts_us,
                "dur": event.dur_s * 1e6,
                "pid": 0,
                "tid": 0,
                "args": args,
            })
        if event.kind in ("alloc", "free"):
            size = int(event.args.get("size", 0))
            current += size if event.kind == "alloc" else -size
            trace_events.append({
                "name": "device memory",
                "cat": "memory",
                "ph": "C",
                "ts": ts_us,
                "pid": 0,
                "tid": 0,
                "args": {"bytes": current},
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: Dict[str, Any]) -> Dict[str, Any]:
    """Check ``trace`` against the Chrome trace-event object format.

    Raises ``ValueError`` on the first violation; returns the trace so it
    can be chained into ``json.dump``.
    """
    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        raise ValueError("trace must be an object with a 'traceEvents' array")
    for i, event in enumerate(trace["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        ph = event.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"):
            raise ValueError(f"{where}: unknown phase {ph!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: missing string 'name'")
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                raise ValueError(f"{where}: missing numeric 'ts'")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                raise ValueError(f"{where}: '{key}' must be an integer")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: complete event needs 'dur' >= 0")
        if ph in ("i", "I") and event.get("s") not in (None, "g", "p", "t"):
            raise ValueError(f"{where}: instant scope must be g/p/t")
        if ph == "C" and not isinstance(event.get("args"), dict):
            raise ValueError(f"{where}: counter event needs an 'args' object")
        if "args" in event:
            try:
                json.dumps(event["args"])
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{where}: args not JSON-serializable: {exc}")
    return trace


def export_chrome_trace(events: Sequence[TraceEvent], path: str,
                        process_name: str = "repro-vm") -> Dict[str, Any]:
    """Validate and write the Chrome trace JSON for ``events`` to ``path``."""
    trace = validate_chrome_trace(chrome_trace(events, process_name))
    with open(path, "w") as f:
        json.dump(trace, f)
    return trace


# -- the profiler VM --------------------------------------------------------------


from ..runtime.vm import Executable, VirtualMachine  # noqa: E402  (after helpers)


class VirtualMachineProfiler(VirtualMachine):
    """A VirtualMachine with the trace recorder attached.

    Mirrors TVM's profiler VM: run functions normally, then pull per-op
    tables, the memory timeline, or the exported Chrome trace.  The
    simulated results are identical to the plain VM — tracing only reads
    the clock.
    """

    def __init__(self, executable: Executable, device, *,
                 capture_outputs: bool = False, **kwargs):
        super().__init__(executable, device, **kwargs)
        self.tracer = TraceRecorder(capture_outputs=capture_outputs)

    @property
    def events(self) -> List[TraceEvent]:
        return self.tracer.events

    def op_table(self, by: str = "name") -> OpTable:
        return OpTable.from_events(self.events, by=by)

    def memory_timeline(self) -> MemoryTimeline:
        return MemoryTimeline.from_events(self.events)

    def chrome_trace(self) -> Dict[str, Any]:
        return chrome_trace(self.events)

    def export_chrome_trace(self, path: str) -> Dict[str, Any]:
        return export_chrome_trace(self.events, path)

    def report(self, by: str = "name") -> Dict[str, Any]:
        """Everything at once, JSON-ready (what the CLI serializes)."""
        return {
            "stats": self.stats.summary(),
            "op_table": self.op_table(by=by).to_dict(),
            "kernel_dur_s": duration_summary(self.events),
            "memory": self.memory_timeline().to_dict(),
            "events": [e.to_dict() for e in self.events],
        }

    def reset(self) -> None:
        """Clear both the stats and the recorded events."""
        self.reset_stats()
        self.tracer.clear()
