"""Relax-side runner for the benchmark harness.

Unlike the baselines (trace policies), the Relax numbers come from the real
compiled artifact: the model is exported through the nn frontend, compiled
by the full pipeline at paper configuration, and executed by the VM in
abstract mode — the actual instruction stream runs, kernels meter on the
device model, allocations and graph capture/replay happen for real.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from .. import transform
from ..models.llama import LlamaConfig, build_llama
from ..runtime import NDArray, VirtualMachine
from ..runtime.device import Device
from ..runtime.profiler import ExecutionStats, ProfileReport
from ..transform import IRStats, PassContext, Timing

#: Compiled-artifact cache: building the same (config, device, flags,
#: bounds) twice — e.g. two serving-engine instantiations, or a benchmark
#: sweeping request rates — reuses the Executable instead of re-running
#: the pipeline.  Keyed structurally, never by object identity.
_COMPILE_CACHE: Dict[Tuple, Tuple] = {}
_COMPILE_CACHE_STATS = {"hits": 0, "misses": 0}


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss counters for the RelaxLLM compile cache (copy)."""
    return dict(_COMPILE_CACHE_STATS)


def clear_compile_cache() -> None:
    """Drop cached executables and zero the hit/miss counters."""
    _COMPILE_CACHE.clear()
    _COMPILE_CACHE_STATS["hits"] = 0
    _COMPILE_CACHE_STATS["misses"] = 0


def _cache_key(cfg, device: Device, bounds: Dict[str, int],
               flags: Dict[str, bool], page_size: Optional[int],
               family: str = "llama", tp: int = 1) -> Tuple:
    return (
        family,
        dataclasses.astuple(cfg),
        device.name,
        tuple(sorted(bounds.items())),
        tuple(sorted(flags.items())),
        page_size,
        tp,
    )


class RelaxLLM:
    """A compiled LLM plus helpers to meter decode/prefill steps."""

    def __init__(
        self,
        cfg: LlamaConfig,
        device: Device,
        *,
        sym_var_upper_bounds: Optional[Dict[str, int]] = None,
        enable_library_dispatch: bool = True,
        enable_fusion: bool = True,
        enable_memory_planning: bool = True,
        enable_cuda_graph: bool = True,
        page_size: Optional[int] = None,
        use_compile_cache: bool = True,
        tp: int = 1,
        interconnect=None,
        _precompiled: Optional[Tuple] = None,
    ):
        self.cfg = cfg
        self.device = device
        self.page_size = page_size
        self.tp = tp
        self.interconnect = interconnect
        self.exported = build_llama(cfg, page_size=page_size, tp=tp)
        if sym_var_upper_bounds is None:
            bounds = {"b": 64, "s": cfg.context_length, "m": cfg.context_length}
            if page_size is not None:
                bounds["w"] = -(-cfg.context_length // page_size)
        else:
            bounds = sym_var_upper_bounds  # {} means: no declared bounds
        flags = {
            "enable_library_dispatch": enable_library_dispatch,
            "enable_fusion": enable_fusion,
            "enable_memory_planning": enable_memory_planning,
            "enable_cuda_graph": enable_cuda_graph,
        }
        key = _cache_key(cfg, device, bounds, flags, page_size, tp=tp)
        if _precompiled is not None:
            # Injected by RelaxSpecPair: the executable was built (or
            # cache-hit) under the *pair's* cache entry; no stats here.
            self.exe, self.compile_report, self.enable_cuda_graph = _precompiled
        elif use_compile_cache and key in _COMPILE_CACHE:
            _COMPILE_CACHE_STATS["hits"] += 1
            self.exe, self.compile_report, self.enable_cuda_graph = (
                _COMPILE_CACHE[key]
            )
        else:
            _COMPILE_CACHE_STATS["misses"] += 1
            # One instrumented context drives both the compiler and the VM,
            # so every benchmark artifact carries per-pass compile cost for
            # free.
            ctx = PassContext(
                device=device,
                sym_var_upper_bounds=dict(bounds),
                instruments=[Timing(), IRStats()],
                **flags,
            )
            self.exe = transform.build(self.exported.mod, ctx=ctx)
            self.compile_report = ctx.report
            self.enable_cuda_graph = ctx.enable_cuda_graph
            if use_compile_cache:
                _COMPILE_CACHE[key] = (
                    self.exe, self.compile_report, self.enable_cuda_graph
                )
        if tp > 1:
            from ..dist import MeshExecutor, MeshVM, NVLINK

            self.mesh = MeshExecutor(
                self.exe, device, tp,
                interconnect=interconnect or NVLINK,
                concrete=False,
                enable_cuda_graph=self.enable_cuda_graph,
            )
            self.vm = MeshVM(self.mesh)
        else:
            self.mesh = None
            self.vm = VirtualMachine(
                self.exe, device, concrete=False,
                enable_cuda_graph=self.enable_cuda_graph,
            )
        self.params = self.exported.abstract_params()

    # -- workload helpers -------------------------------------------------------

    def _caches(self, batch: int, length: int) -> List[NDArray]:
        cfg = self.cfg
        shape = (batch, length, cfg.num_kv_heads // self.tp, cfg.head_dim)
        return [
            NDArray.abstract(shape, cfg.dtype)
            for _ in range(2 * cfg.num_layers)
        ]

    def run_decode(self, batch: int, context: int) -> None:
        tokens = NDArray.abstract((batch, 1), "i64")
        self.vm.run("decode", tokens, *self._caches(batch, context), *self.params)

    def run_prefill(self, batch: int, seq: int, past: int = 0) -> None:
        tokens = NDArray.abstract((batch, seq), "i64")
        self.vm.run("prefill", tokens, *self._caches(batch, past), *self.params)

    def decode_step_time(self, batch: int, context: int, warmup: int = 1) -> float:
        """Steady-state simulated time of one decode step."""
        for _ in range(max(warmup, 0)):
            self.run_decode(batch, context)
        self.vm.reset_stats()
        self.run_decode(batch, context)
        return self.vm.stats.time_s

    def prefill_time(self, batch: int, seq: int, warmup: int = 1) -> float:
        for _ in range(max(warmup, 0)):
            self.run_prefill(batch, seq)
        self.vm.reset_stats()
        self.run_prefill(batch, seq)
        return self.vm.stats.time_s

    def decode_throughput(self, batch: int, context: int) -> float:
        """Tokens per second per sequence at steady state."""
        return batch / self.decode_step_time(batch, context)

    def stats_snapshot(self) -> ExecutionStats:
        return self.vm.stats

    def profile_report(self) -> ProfileReport:
        """Execution stats joined with the compile-time pipeline report."""
        return ProfileReport.from_vm(self.vm)

    def op_profile(self, batch: int, context: int, *, fn: str = "decode",
                   seq: int = 16, warmup: int = 1):
        """Trace one steady-state step on a *fresh* profiler VM.

        Builds a :class:`repro.obs.VirtualMachineProfiler` from the same
        executable (``self.vm`` and its captured graphs are untouched, so
        cached runners stay bit-identical), warms it, then records one
        ``fn`` step.  Returns the profiler VM; pull ``op_table()``,
        ``memory_timeline()`` or ``export_chrome_trace()`` off it.
        """
        from ..obs import VirtualMachineProfiler

        pvm = VirtualMachineProfiler(
            self.exe, self.device, concrete=False,
            enable_cuda_graph=self.enable_cuda_graph,
        )
        if fn == "decode":
            args = [NDArray.abstract((batch, 1), "i64")]
            args += self._caches(batch, context)
        elif fn == "prefill":
            args = [NDArray.abstract((batch, seq), "i64")]
            args += self._caches(batch, context)
        else:
            raise ValueError(f"unknown function {fn!r}")
        args += self.params
        for _ in range(max(warmup, 0)):
            pvm.run(fn, *args)
        pvm.reset()
        pvm.run(fn, *args)
        return pvm


class RelaxSpecPair:
    """A compiled (target, draft) model pair for speculative serving.

    The pair shares **one** compile-cache entry: a benchmark sweeping
    acceptance rates or request rates re-instantiates the serving engine
    per point, and keying the cache on the pair means the second engine
    (and every one after) costs zero compilation for *both* models —
    hit/miss accounting sees one pair entry, not two stray singles.

    The draft defaults to :func:`repro.models.draft_config` applied to
    the target (same vocabulary and context length — token streams and
    block tables line up — but a fraction of the width and depth, which
    is what makes drafting cheap on the analytical clock).
    """

    def __init__(
        self,
        cfg: LlamaConfig,
        draft_cfg: Optional[LlamaConfig],
        device: Device,
        *,
        sym_var_upper_bounds: Optional[Dict[str, int]] = None,
        draft_upper_bounds: Optional[Dict[str, int]] = None,
        enable_library_dispatch: bool = True,
        enable_cuda_graph: bool = True,
        page_size: Optional[int] = None,
        use_compile_cache: bool = True,
        tp: int = 1,
        interconnect=None,
    ):
        from ..models.llama import draft_config

        if draft_cfg is None:
            draft_cfg = draft_config(cfg)
        if draft_cfg.vocab_size != cfg.vocab_size:
            raise ValueError(
                "draft and target must share a vocabulary "
                f"({draft_cfg.vocab_size} != {cfg.vocab_size})"
            )
        flags = {
            "enable_library_dispatch": enable_library_dispatch,
            "enable_cuda_graph": enable_cuda_graph,
        }
        tb = sym_var_upper_bounds or {}
        db = draft_upper_bounds or dict(tb)
        key = (
            "llama-spec-pair",
            _cache_key(cfg, device, tb, flags, page_size, tp=tp),
            _cache_key(draft_cfg, device, db, flags, page_size),
        )
        target_pre = draft_pre = None
        if use_compile_cache and key in _COMPILE_CACHE:
            _COMPILE_CACHE_STATS["hits"] += 1
            target_pre, draft_pre = _COMPILE_CACHE[key]
        self.target = RelaxLLM(
            cfg, device,
            sym_var_upper_bounds=sym_var_upper_bounds,
            enable_library_dispatch=enable_library_dispatch,
            enable_cuda_graph=enable_cuda_graph,
            page_size=page_size,
            use_compile_cache=False,
            tp=tp,
            interconnect=interconnect,
            _precompiled=target_pre,
        )
        # The draft stays unsharded: it is already a fraction of the
        # target's width, so splitting it buys nothing but collectives.
        self.draft = RelaxLLM(
            draft_cfg, device,
            sym_var_upper_bounds=draft_upper_bounds or sym_var_upper_bounds,
            enable_library_dispatch=enable_library_dispatch,
            enable_cuda_graph=enable_cuda_graph,
            page_size=page_size,
            use_compile_cache=False,
            _precompiled=draft_pre,
        )
        if target_pre is None and use_compile_cache:
            _COMPILE_CACHE[key] = (
                (self.target.exe, self.target.compile_report,
                 self.target.enable_cuda_graph),
                (self.draft.exe, self.draft.compile_report,
                 self.draft.enable_cuda_graph),
            )

    @property
    def cfg(self) -> LlamaConfig:
        return self.target.cfg

    @property
    def draft_cfg(self) -> LlamaConfig:
        return self.draft.cfg


class RelaxWhisper:
    """Compiled Whisper encoder-decoder on the analytical device model.

    With ``page_size`` set, the paged serving entry points
    (``encode_chunk`` / ``cross_project`` / ``decode_paged``) are compiled
    in as well — the serving engine drives Whisper requests through this
    runner.  Compilation goes through the same instrumented
    :class:`PassContext` and compile cache as :class:`RelaxLLM`, so
    Whisper benchmark artifacts carry per-pass timings too.
    """

    def __init__(self, cfg, device: Device,
                 sym_var_upper_bounds: Optional[Dict[str, int]] = None,
                 *,
                 page_size: Optional[int] = None,
                 enable_library_dispatch: bool = True,
                 enable_fusion: bool = True,
                 enable_memory_planning: bool = True,
                 use_compile_cache: bool = True):
        from ..models.whisper import build_whisper

        self.cfg = cfg
        self.device = device
        self.page_size = page_size
        self.exported = build_whisper(cfg, page_size=page_size)
        if sym_var_upper_bounds is None:
            bounds = {
                "b": 8, "f": cfg.max_frames, "m": cfg.max_target,
                "t": cfg.enc_positions,
            }
            if page_size is not None:
                bounds["w"] = -(-cfg.max_target // page_size)
                bounds["u"] = -(-cfg.enc_positions // page_size)
        else:
            bounds = sym_var_upper_bounds
        flags = {
            "enable_library_dispatch": enable_library_dispatch,
            "enable_fusion": enable_fusion,
            "enable_memory_planning": enable_memory_planning,
        }
        key = _cache_key(cfg, device, bounds, flags, page_size,
                         family="whisper")
        if use_compile_cache and key in _COMPILE_CACHE:
            _COMPILE_CACHE_STATS["hits"] += 1
            self.exe, self.compile_report = _COMPILE_CACHE[key]
        else:
            _COMPILE_CACHE_STATS["misses"] += 1
            ctx = PassContext(
                device=device,
                sym_var_upper_bounds=dict(bounds),
                instruments=[Timing(), IRStats()],
                **flags,
            )
            self.exe = transform.build(self.exported.mod, ctx=ctx)
            self.compile_report = ctx.report
            if use_compile_cache:
                _COMPILE_CACHE[key] = (self.exe, self.compile_report)
        self.vm = VirtualMachine(self.exe, device, concrete=False)
        self.params = self.exported.abstract_params()

    def encode_time(self, batch: int, frames: int) -> float:
        mel = NDArray.abstract((batch, frames, self.cfg.n_mel), self.cfg.dtype)
        self.vm.run("encode", mel, *self.params)  # warm (capture)
        self.vm.reset_stats()
        self.vm.run("encode", mel, *self.params)
        return self.vm.stats.time_s

    def decode_step_time(self, batch: int, past: int, enc_len: int) -> float:
        cfg = self.cfg
        tokens = NDArray.abstract((batch, 1), "i64")
        self_caches = [
            NDArray.abstract((batch, past, cfg.num_heads, cfg.head_dim), cfg.dtype)
            for _ in range(2 * cfg.decoder_layers)
        ]
        cross = [
            NDArray.abstract((batch, enc_len, cfg.num_heads, cfg.head_dim), cfg.dtype)
            for _ in range(2 * cfg.decoder_layers)
        ]
        args = [tokens] + self_caches + cross + self.params
        self.vm.run("decode", *args)  # warm
        self.vm.reset_stats()
        self.vm.run("decode", *args)
        return self.vm.stats.time_s

    def transcribe_time(self, frames: int, n_tokens: int, batch: int = 1) -> float:
        """Encode once + ``n_tokens`` decode steps (trapezoid over cache
        growth: decode cost is affine in the cache length)."""
        enc_len = frames // 2
        total = self.encode_time(batch, frames)
        first = self.decode_step_time(batch, 1, enc_len)
        last = self.decode_step_time(batch, n_tokens, enc_len)
        total += n_tokens * (first + last) / 2.0
        return total


class RelaxDenoise:
    """Compiled iterative-denoise model on the analytical device model."""

    def __init__(self, cfg, device: Device,
                 sym_var_upper_bounds: Optional[Dict[str, int]] = None,
                 *, use_compile_cache: bool = True):
        from ..models.denoise import build_denoise

        self.cfg = cfg
        self.device = device
        self.exported = build_denoise(cfg)
        bounds = sym_var_upper_bounds or {"b": 64, "n": cfg.latent_tokens}
        key = _cache_key(cfg, device, bounds, {}, None, family="denoise")
        if use_compile_cache and key in _COMPILE_CACHE:
            _COMPILE_CACHE_STATS["hits"] += 1
            self.exe, self.compile_report = _COMPILE_CACHE[key]
        else:
            _COMPILE_CACHE_STATS["misses"] += 1
            ctx = PassContext(
                device=device,
                sym_var_upper_bounds=dict(bounds),
                instruments=[Timing(), IRStats()],
            )
            self.exe = transform.build(self.exported.mod, ctx=ctx)
            self.compile_report = ctx.report
            if use_compile_cache:
                _COMPILE_CACHE[key] = (self.exe, self.compile_report)
        self.vm = VirtualMachine(self.exe, device, concrete=False)
        self.params = self.exported.abstract_params()

    def step_time(self, batch: int = 1) -> float:
        """Steady-state simulated time of one denoise iteration."""
        latent = NDArray.abstract(
            (batch, self.cfg.latent_tokens, self.cfg.latent_dim),
            self.cfg.dtype,
        )
        self.vm.run("denoise_step", latent, *self.params)  # warm
        self.vm.reset_stats()
        self.vm.run("denoise_step", latent, *self.params)
        return self.vm.stats.time_s


class RelaxLlava:
    """Compiled LLaVA (vision tower + Vicuna) on the device model."""

    def __init__(self, cfg, device: Device,
                 sym_var_upper_bounds: Optional[Dict[str, int]] = None):
        from ..models.llava import build_llava

        self.cfg = cfg
        self.device = device
        self.exported = build_llava(cfg)
        bounds = sym_var_upper_bounds or {
            "b": 8, "s": cfg.vision.num_patches + 64,
            "m": cfg.llm.context_length, "t": cfg.vision.num_patches,
        }
        self.exe = transform.build(
            self.exported.mod, device, sym_var_upper_bounds=bounds
        )
        self.vm = VirtualMachine(self.exe, device, concrete=False)
        self.params = self.exported.abstract_params()

    def _llm_caches(self, batch: int, length: int):
        llm = self.cfg.llm
        return [
            NDArray.abstract((batch, length, llm.num_kv_heads, llm.head_dim),
                             llm.dtype)
            for _ in range(2 * llm.num_layers)
        ]

    def _timed(self, fn: str, *args) -> float:
        self.vm.run(fn, *args)  # warm
        self.vm.reset_stats()
        self.vm.run(fn, *args)
        return self.vm.stats.time_s

    def generation_time(self, n_tokens: int = 32, batch: int = 1) -> float:
        """Image encode + image prefill + ``n_tokens`` decode steps."""
        vis = self.cfg.vision
        patches = NDArray.abstract((batch, vis.num_patches, vis.patch_dim),
                                   vis.dtype)
        total = self._timed("encode_image", patches, *self.params)

        embeds = NDArray.abstract(
            (batch, vis.num_patches, self.cfg.llm.hidden_size), self.cfg.llm.dtype
        )
        total += self._timed(
            "prefill_embeds", embeds, *self._llm_caches(batch, 0), *self.params
        )

        tokens = NDArray.abstract((batch, 1), "i64")
        first = self._timed(
            "decode", tokens, *self._llm_caches(batch, vis.num_patches),
            *self.params,
        )
        last = self._timed(
            "decode", tokens,
            *self._llm_caches(batch, vis.num_patches + n_tokens), *self.params,
        )
        total += n_tokens * (first + last) / 2.0
        return total
