"""Benchmark harness shared by the scripts in ``benchmarks/``."""

from .harness import (
    best_competitor,
    fmt_value,
    geomean_ratio,
    print_table,
    speedup,
)
from .relax_runner import RelaxLLM, RelaxLlava, RelaxWhisper

__all__ = [
    "RelaxLLM",
    "RelaxLlava",
    "RelaxWhisper",
    "best_competitor",
    "fmt_value",
    "geomean_ratio",
    "print_table",
    "speedup",
]
