"""Benchmark harness shared by the scripts in ``benchmarks/``."""

from .harness import (
    best_competitor,
    dump_results,
    fmt_value,
    geomean_ratio,
    print_pass_timings,
    print_table,
    results_payload,
    speedup,
)
from .relax_runner import RelaxLLM, RelaxLlava, RelaxWhisper

__all__ = [
    "RelaxLLM",
    "RelaxLlava",
    "RelaxWhisper",
    "best_competitor",
    "dump_results",
    "fmt_value",
    "geomean_ratio",
    "print_pass_timings",
    "print_table",
    "results_payload",
    "speedup",
]
