"""Benchmark harness shared by the scripts in ``benchmarks/``."""

from .harness import (
    best_competitor,
    dump_results,
    fmt_value,
    geomean_ratio,
    print_pass_timings,
    print_table,
    results_payload,
    speedup,
)
from .relax_runner import (
    RelaxLLM,
    RelaxLlava,
    RelaxWhisper,
    clear_compile_cache,
    compile_cache_stats,
)

__all__ = [
    "RelaxLLM",
    "RelaxLlava",
    "RelaxWhisper",
    "best_competitor",
    "clear_compile_cache",
    "compile_cache_stats",
    "dump_results",
    "fmt_value",
    "geomean_ratio",
    "print_pass_timings",
    "print_table",
    "results_payload",
    "speedup",
]
