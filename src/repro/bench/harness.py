"""Table / series printing and shape-checking for the experiment harness.

Every benchmark regenerates one of the paper's tables or figures: it prints
the measured series in the same rows/columns the paper reports, alongside
the paper's qualitative expectations, and returns the data so the calling
test can assert the reproduction's *shape* (who wins, roughly by what
factor, where crossovers fall — DESIGN.md §4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def fmt_value(value, unit: str = "") -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if value >= 100:
            text = f"{value:.0f}"
        elif value >= 1:
            text = f"{value:.2f}"
        else:
            text = f"{value:.3f}"
    else:
        text = str(value)
    return f"{text}{unit}"


def print_table(
    title: str,
    col_header: str,
    columns: Sequence,
    rows: Dict[str, List],
    unit: str = "",
    notes: Optional[Sequence[str]] = None,
) -> None:
    """Print one experiment's series: rows = systems, columns = sweep."""
    width = max(18, max((len(name) for name in rows), default=10) + 2)
    col_w = max(10, max(len(fmt_value(c)) for c in columns) + 2)
    print()
    print(f"=== {title} ===")
    header = f"{col_header:<{width}}" + "".join(
        f"{fmt_value(c):>{col_w}}" for c in columns
    )
    print(header)
    print("-" * len(header))
    for name, values in rows.items():
        line = f"{name:<{width}}" + "".join(
            f"{fmt_value(v, unit):>{col_w}}" for v in values
        )
        print(line)
    for note in notes or ():
        print(f"  note: {note}")


def speedup(baseline: float, measured: float) -> float:
    """baseline / measured — >1 means `measured` is faster."""
    return baseline / measured


def best_competitor(rows: Dict[str, List], column: int, exclude: str) -> float:
    """Fastest (smallest) competitor value in one column."""
    values = [
        series[column]
        for name, series in rows.items()
        if name != exclude and series[column] is not None
    ]
    return min(values)


def geomean_ratio(a: Sequence[float], b: Sequence[float]) -> float:
    """Geometric mean of a_i / b_i over defined pairs."""
    import math

    logs = [
        math.log(x / y)
        for x, y in zip(a, b)
        if x is not None and y is not None and y > 0
    ]
    return math.exp(sum(logs) / len(logs)) if logs else float("nan")
