"""Table / series printing and shape-checking for the experiment harness.

Every benchmark regenerates one of the paper's tables or figures: it prints
the measured series in the same rows/columns the paper reports, alongside
the paper's qualitative expectations, and returns the data so the calling
test can assert the reproduction's *shape* (who wins, roughly by what
factor, where crossovers fall — DESIGN.md §4).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence


def fmt_value(value, unit: str = "") -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if value >= 100:
            text = f"{value:.0f}"
        elif value >= 1:
            text = f"{value:.2f}"
        else:
            text = f"{value:.3f}"
    else:
        text = str(value)
    return f"{text}{unit}"


def print_table(
    title: str,
    col_header: str,
    columns: Sequence,
    rows: Dict[str, List],
    unit: str = "",
    notes: Optional[Sequence[str]] = None,
) -> None:
    """Print one experiment's series: rows = systems, columns = sweep."""
    width = max(18, max((len(name) for name in rows), default=10) + 2)
    col_w = max(10, max(len(fmt_value(c)) for c in columns) + 2)
    print()
    print(f"=== {title} ===")
    header = f"{col_header:<{width}}" + "".join(
        f"{fmt_value(c):>{col_w}}" for c in columns
    )
    print(header)
    print("-" * len(header))
    for name, values in rows.items():
        line = f"{name:<{width}}" + "".join(
            f"{fmt_value(v, unit):>{col_w}}" for v in values
        )
        print(line)
    for note in notes or ():
        print(f"  note: {note}")


def print_pass_timings(title: str, reports: Dict[str, Any]) -> None:
    """Print per-pass compile wall time for each configuration.

    ``reports`` maps configuration label -> ``PipelineReport`` (from the
    ``Timing`` instrument); skipped passes show as ``—``.
    """
    names: List[str] = []
    for report in reports.values():
        for record in report:
            if record.name not in names:
                names.append(record.name)
    rows: Dict[str, List] = {}
    for name in names:
        rows[name] = []
        for report in reports.values():
            total: Optional[float] = None
            for record in report:
                if record.name == name and record.ran:
                    total = (total or 0.0) + (record.duration_s or 0.0)
            rows[name].append(total * 1000 if total is not None else None)
    print_table(title, "pass \\ config", list(reports), rows, "ms")


def results_payload(
    title: str,
    columns: Sequence,
    rows: Dict[str, List],
    *,
    unit: str = "",
    pipeline_reports: Optional[Dict[str, Any]] = None,
    op_profiles: Optional[Dict[str, Any]] = None,
    compile_cache: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Bundle one experiment's series (plus the per-configuration
    PipelineReports, per-op profiles, and compile-cache hit/miss counters,
    when given) into a JSON-serializable dict."""
    payload: Dict[str, Any] = {
        "title": title,
        "unit": unit,
        "columns": list(columns),
        "rows": {name: list(series) for name, series in rows.items()},
    }
    if compile_cache:
        payload["compile_cache"] = dict(compile_cache)
    if pipeline_reports:
        payload["pipeline"] = {
            label: report.to_dict() for label, report in pipeline_reports.items()
        }
    if op_profiles:
        # label -> OpTable.to_dict() (or any JSON-ready per-op breakdown):
        # the runtime half of the story, next to the compile-time pipeline.
        payload["op_profiles"] = {
            label: table.to_dict() if hasattr(table, "to_dict") else table
            for label, table in op_profiles.items()
        }
    return payload


def dump_results(path: str, payload: Dict[str, Any]) -> str:
    """Serialize a results payload to JSON; returns the path written."""
    import os

    dirname = os.path.dirname(path)
    if dirname:
        os.makedirs(dirname, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
    return path


def speedup(baseline: float, measured: float) -> float:
    """baseline / measured — >1 means `measured` is faster."""
    return baseline / measured


def best_competitor(rows: Dict[str, List], column: int, exclude: str) -> float:
    """Fastest (smallest) competitor value in one column."""
    values = [
        series[column]
        for name, series in rows.items()
        if name != exclude and series[column] is not None
    ]
    return min(values)


def geomean_ratio(a: Sequence[float], b: Sequence[float]) -> float:
    """Geometric mean of a_i / b_i over defined pairs."""
    import math

    logs = [
        math.log(x / y)
        for x, y in zip(a, b)
        if x is not None and y is not None and y > 0
    ]
    return math.exp(sum(logs) / len(logs)) if logs else float("nan")
