"""repro — reproduction of "Relax: Composable Abstractions for End-to-End
Dynamic Machine Learning" (ASPLOS 2025).

Layers (bottom up):

* :mod:`repro.sym` — symbolic integer expressions (shared by shapes and
  tensor programs);
* :mod:`repro.tir` — loop-level tensor programs (TensorIR-like);
* :mod:`repro.core` — the Relax cross-level IR with first-class symbolic
  shapes (the paper's contribution);
* :mod:`repro.ops` — graph-level operators with shape deduction and
  legalization rules;
* :mod:`repro.transform` — the optimization and lowering pipeline
  (fusion, workspace lifting, memory planning, graph offloading, VM
  code generation);
* :mod:`repro.runtime` — NDArrays, device models, the register VM, the
  library registry, and capture/replay graph execution;
* :mod:`repro.frontend` / :mod:`repro.models` — nn.Module-style model
  construction and the paper's evaluated model families;
* :mod:`repro.baselines` / :mod:`repro.bench` — baseline system simulators
  and the experiment harness regenerating the paper's tables and figures;
* :mod:`repro.obs` — observability: source-op provenance through the
  pipeline, VM tracing, per-op profiling, Perfetto export.
"""

__version__ = "0.1.0"

from . import dtypes, sym

__all__ = ["dtypes", "sym", "__version__"]
