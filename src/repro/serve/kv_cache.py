"""Paged KV-cache management for the serving engine.

The device-side KV cache is one fixed pool of equal-size blocks (pages)
per layer, shaped ``(p, page_size, h_kv, d)`` — the ``p`` dim is symbolic
in the compiled module, so one Executable serves any VRAM budget.  This
module is the *host-side* bookkeeping over that pool: a block allocator
with leak accounting, per-sequence block tables, and the padded batch
views the ``decode_paged`` VM function consumes.

Appends are copy-free in the vLLM sense: growing a sequence never moves
existing pages; at most one new block is allocated and the block table
gains one entry.  Eviction (scheduler preemption) releases a sequence's
blocks wholesale; whether the contents are swapped to host memory or
recomputed later is the scheduler's policy, not this module's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


class CacheError(RuntimeError):
    """Invariant violation in the block allocator or block tables."""


class OutOfBlocks(CacheError):
    """Allocation request exceeds the free pool (callers should evict)."""


class BlockAllocator:
    """Fixed pool of KV blocks with a LIFO free list.

    LIFO makes reuse deterministic — freeing blocks and re-allocating the
    same count always yields the same ids in the same order — which is
    what keeps same-seed serving runs bit-identical.
    """

    def __init__(self, num_blocks: int):
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        self.num_blocks = num_blocks
        # Stack of free ids; initialised so the first allocations hand out
        # 0, 1, 2, ... in order.
        self._free: List[int] = list(range(num_blocks - 1, -1, -1))
        self._allocated: set = set()

    @property
    def num_free(self) -> int:
        return len(self._free)

    @property
    def num_used(self) -> int:
        return len(self._allocated)

    def allocate(self) -> int:
        if not self._free:
            raise OutOfBlocks(
                f"all {self.num_blocks} KV blocks are in use"
            )
        block = self._free.pop()
        self._allocated.add(block)
        return block

    def free(self, block: int) -> None:
        if block not in self._allocated:
            raise CacheError(f"double free (or foreign id) of block {block}")
        self._allocated.remove(block)
        self._free.append(block)

    def check_no_leaks(self, expected_used: int = 0) -> None:
        """Raise unless exactly ``expected_used`` blocks remain allocated
        and the free list is consistent with the pool size."""
        if self.num_used != expected_used:
            raise CacheError(
                f"leaked blocks: {self.num_used} still allocated, "
                f"expected {expected_used}"
            )
        if self.num_free + self.num_used != self.num_blocks:
            raise CacheError(
                f"pool accounting broken: {self.num_free} free + "
                f"{self.num_used} used != {self.num_blocks}"
            )


@dataclass
class _Sequence:
    seq_id: int
    blocks: List[int] = field(default_factory=list)
    length: int = 0  # tokens stored in the paged cache


class PagedKVCache:
    """Per-sequence block tables over one shared :class:`BlockAllocator`.

    Block 0 is reserved as the *padding page*: the generated paged
    attention kernel evaluates both ``select`` branches (``np.where``
    semantics, see :mod:`repro.ops.paged`), so padded block-table slots
    must reference a real page — masked scores keep padded entries out of
    the softmax, but the gather itself has to stay in bounds.
    """

    def __init__(self, num_blocks: int, page_size: int):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.allocator = BlockAllocator(num_blocks)
        self.padding_block = self.allocator.allocate()  # block 0
        self._seqs: Dict[int, _Sequence] = {}
        #: Running max of used blocks (utilisation high-water mark).
        self.peak_used_blocks = self.allocator.num_used

    # -- capacity queries -------------------------------------------------------

    @property
    def num_free_blocks(self) -> int:
        return self.allocator.num_free

    def blocks_for_tokens(self, num_tokens: int) -> int:
        return -(-num_tokens // self.page_size)

    def blocks_needed(self, seq_id: int, num_tokens: int) -> int:
        """Extra blocks required to append ``num_tokens`` to ``seq_id``."""
        seq = self._seqs[seq_id]
        return self.blocks_for_tokens(seq.length + num_tokens) - len(seq.blocks)

    def can_append(self, seq_id: int, num_tokens: int) -> bool:
        return self.blocks_needed(seq_id, num_tokens) <= self.num_free_blocks

    def can_admit(self, num_tokens: int) -> bool:
        return self.blocks_for_tokens(num_tokens) <= self.num_free_blocks

    # -- sequence lifecycle -----------------------------------------------------

    def add_sequence(self, seq_id: int) -> None:
        if seq_id in self._seqs:
            raise CacheError(f"sequence {seq_id} already tracked")
        self._seqs[seq_id] = _Sequence(seq_id)

    def has_sequence(self, seq_id: int) -> bool:
        return seq_id in self._seqs

    def append(self, seq_id: int, num_tokens: int = 1) -> int:
        """Grow ``seq_id`` by ``num_tokens``; returns blocks allocated.

        All-or-nothing: raises :class:`OutOfBlocks` without side effects
        when the pool cannot cover the growth.
        """
        need = self.blocks_needed(seq_id, num_tokens)
        if need > self.num_free_blocks:
            raise OutOfBlocks(
                f"sequence {seq_id} needs {need} blocks, "
                f"{self.num_free_blocks} free"
            )
        seq = self._seqs[seq_id]
        for _ in range(need):
            seq.blocks.append(self.allocator.allocate())
        seq.length += num_tokens
        self.peak_used_blocks = max(self.peak_used_blocks,
                                    self.allocator.num_used)
        return need

    def evict(self, seq_id: int) -> int:
        """Release all blocks of a *preempted* sequence; returns the count.

        The sequence stops being tracked: resuming it (after swap-in or
        recompute) goes through :meth:`add_sequence` + :meth:`append`
        again.  Blocks are freed in reverse order so a LIFO re-allocation
        of the same sequence gets the same ids (determinism).
        """
        seq = self._seqs.pop(seq_id)
        for block in reversed(seq.blocks):
            self.allocator.free(block)
        return len(seq.blocks)

    def free_sequence(self, seq_id: int) -> int:
        """Release a *finished* sequence (same mechanics as evict)."""
        if seq_id not in self._seqs:
            raise CacheError(f"unknown sequence {seq_id}")
        return self.evict(seq_id)

    # -- batch views ------------------------------------------------------------

    def length(self, seq_id: int) -> int:
        return self._seqs[seq_id].length

    def blocks(self, seq_id: int) -> List[int]:
        return list(self._seqs[seq_id].blocks)

    def block_table(self, seq_ids: Sequence[int],
                    width: Optional[int] = None) -> np.ndarray:
        """Padded ``(b, w)`` int64 block table for one decode batch."""
        tables = [self._seqs[s].blocks for s in seq_ids]
        w = width if width is not None else max(
            (len(t) for t in tables), default=1
        )
        w = max(w, 1)
        out = np.full((len(tables), w), self.padding_block, dtype=np.int64)
        for i, t in enumerate(tables):
            if len(t) > w:
                raise CacheError(
                    f"sequence {seq_ids[i]} has {len(t)} blocks > width {w}"
                )
            out[i, : len(t)] = t
        return out

    def lengths(self, seq_ids: Sequence[int]) -> np.ndarray:
        return np.asarray([self._seqs[s].length for s in seq_ids],
                          dtype=np.int64)

    # -- accounting -------------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of pool blocks currently allocated (incl. padding)."""
        return self.allocator.num_used / self.allocator.num_blocks

    def fragmentation(self) -> float:
        """Internal fragmentation: fraction of *allocated* token slots
        (padding page excluded) not holding a token."""
        used = self.allocator.num_used - 1  # minus padding block
        if used <= 0:
            return 0.0
        slots = used * self.page_size
        tokens = sum(s.length for s in self._seqs.values())
        return 1.0 - tokens / slots

    def check_no_leaks(self) -> None:
        """After all sequences finish, only the padding block may remain."""
        if self._seqs:
            raise CacheError(
                f"sequences still tracked: {sorted(self._seqs)}"
            )
        self.allocator.check_no_leaks(expected_used=1)
