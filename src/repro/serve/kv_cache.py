"""Paged KV-cache management for the serving engine.

The device-side KV cache is one fixed pool of equal-size blocks (pages)
per layer, shaped ``(p, page_size, h_kv, d)`` — the ``p`` dim is symbolic
in the compiled module, so one Executable serves any VRAM budget.  This
module is the *host-side* bookkeeping over that pool: a refcounted block
allocator with leak accounting, per-sequence block tables, and the padded
batch views the ``decode_paged``/``prefill_paged`` VM functions consume.

Ownership is *shared*: a block may be referenced by several sequences at
once (common prompt prefixes, see :mod:`repro.serve.prefix_cache`) plus
the prefix cache itself.  Each owner holds one reference; a block returns
to the free pool only when its last reference drops.  Writes into a
shared page go through copy-on-write (:meth:`BlockAllocator.fork_for_write`):
the writer trades its reference for a private copy, never mutating pages
other owners still read.

Appends are copy-free in the vLLM sense: growing a sequence never moves
existing pages; at most one new block is allocated (plus one COW fork
when the tail page is shared) and the block table gains one entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .prefix_cache import PrefixCache


class CacheError(RuntimeError):
    """Invariant violation in the block allocator or block tables."""


class OutOfBlocks(CacheError):
    """Allocation request exceeds the free pool (callers should evict)."""


class BlockAllocator:
    """Fixed pool of KV blocks with a LIFO free list and per-block refcounts.

    LIFO makes reuse deterministic — freeing blocks and re-allocating the
    same count always yields the same ids in the same order — which is
    what keeps same-seed serving runs bit-identical.

    Refcounts implement shared ownership: :meth:`allocate` hands out a
    block with one reference, :meth:`share` adds an owner, :meth:`free`
    drops one; the block rejoins the free list only at zero references.
    :meth:`fork_for_write` is the copy-on-write primitive.
    """

    def __init__(self, num_blocks: int):
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        self.num_blocks = num_blocks
        # Stack of free ids; initialised so the first allocations hand out
        # 0, 1, 2, ... in order.
        self._free: List[int] = list(range(num_blocks - 1, -1, -1))
        self._refcount: Dict[int, int] = {}
        # Cumulative reference-traffic counters.  Plain ints bumped on
        # every operation (cheap) but only ever *serialized* behind the
        # telemetry flag — they must not perturb the telemetry-off
        # summary/trace byte format.
        self.allocated_total = 0
        self.freed_total = 0
        self.ref_drops_total = 0
        self.shares_total = 0

    @property
    def num_free(self) -> int:
        return len(self._free)

    @property
    def num_used(self) -> int:
        return len(self._refcount)

    @property
    def total_refs(self) -> int:
        """Sum of all live references (exact-accounting invariant base)."""
        return sum(self._refcount.values())

    def refcount(self, block: int) -> int:
        """Live references to ``block`` (0 = free)."""
        return self._refcount.get(block, 0)

    def allocate(self) -> int:
        if not self._free:
            raise OutOfBlocks(
                f"all {self.num_blocks} KV blocks are in use"
            )
        block = self._free.pop()
        self._refcount[block] = 1
        self.allocated_total += 1
        return block

    def share(self, block: int) -> int:
        """Add one owner to an allocated block; returns the new refcount."""
        if block not in self._refcount:
            raise CacheError(f"share of unallocated block {block}")
        self._refcount[block] += 1
        self.shares_total += 1
        return self._refcount[block]

    def free(self, block: int) -> int:
        """Drop one reference; returns refs remaining (0 = back in pool)."""
        refs = self._refcount.get(block)
        if refs is None:
            raise CacheError(f"double free (or foreign id) of block {block}")
        refs -= 1
        self.ref_drops_total += 1
        if refs == 0:
            del self._refcount[block]
            self._free.append(block)
            self.freed_total += 1
        else:
            self._refcount[block] = refs
        return refs

    def fork_for_write(self, block: int) -> int:
        """Copy-on-write: a block owned exclusively is returned unchanged;
        a shared one trades this owner's reference for a freshly allocated
        private block (the caller copies the page payload over)."""
        refs = self._refcount.get(block)
        if refs is None:
            raise CacheError(f"fork_for_write of unallocated block {block}")
        if refs == 1:
            return block
        self._refcount[block] = refs - 1
        self.ref_drops_total += 1
        return self.allocate()

    def check_no_leaks(self, expected_used: int = 0,
                       expected_refs: Optional[int] = None) -> None:
        """Raise unless exactly ``expected_used`` blocks remain allocated,
        references sum to ``expected_refs`` (defaults to ``expected_used``,
        i.e. every survivor singly owned), and the free list is consistent
        with the pool size."""
        if self.num_used != expected_used:
            raise CacheError(
                f"leaked blocks: {self.num_used} still allocated, "
                f"expected {expected_used}"
            )
        want_refs = expected_used if expected_refs is None else expected_refs
        if self.total_refs != want_refs:
            raise CacheError(
                f"leaked references: {self.total_refs} live refs across "
                f"{self.num_used} blocks, expected {want_refs}"
            )
        if any(r <= 0 for r in self._refcount.values()):
            raise CacheError("allocated block with non-positive refcount")
        if self.num_free + self.num_used != self.num_blocks:
            raise CacheError(
                f"pool accounting broken: {self.num_free} free + "
                f"{self.num_used} used != {self.num_blocks}"
            )


@dataclass
class _Sequence:
    seq_id: int
    blocks: List[int] = field(default_factory=list)
    length: int = 0  # tokens stored in the paged cache


@dataclass(frozen=True)
class ReleaseInfo:
    """What :meth:`PagedKVCache.release_sequence` actually gave back."""

    #: Blocks whose last reference dropped (returned to the free list).
    freed_blocks: int
    #: Tokens whose only KV copy lived in those freed blocks — the bytes
    #: a swap preemption must move to host memory.
    private_tokens: int
    #: Tokens in blocks that survived (still referenced by the prefix
    #: cache or other sequences); they stay resident on the device.
    shared_tokens: int


class PagedKVCache:
    """Per-sequence block tables over one shared :class:`BlockAllocator`.

    Block 0 is reserved as the *padding page*: the generated paged
    attention kernels evaluate both ``select`` branches (``np.where``
    semantics, see :mod:`repro.ops.paged`), so padded block-table slots
    must reference a real page — masked scores keep padded entries out of
    the softmax, but the gather itself has to stay in bounds.  It is
    allocated in ``__init__`` and *permanently pinned* (never shared,
    never freed): releasing it would let the allocator hand block 0 to a
    sequence while every padded table slot still points at it.

    A :class:`~repro.serve.prefix_cache.PrefixCache` may attach itself
    (``self.prefix_cache``); capacity queries then count its *evictable*
    blocks (cached, but unreferenced by any sequence) as available, and
    allocation reclaims them LRU-first under pressure.
    """

    def __init__(self, num_blocks: int, page_size: int):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.num_blocks = num_blocks
        self.allocator = BlockAllocator(num_blocks)
        self.padding_block = self.allocator.allocate()  # block 0
        self._seqs: Dict[int, _Sequence] = {}
        #: Attached by PrefixCache.__init__ (None = prefix caching off).
        self.prefix_cache: Optional["PrefixCache"] = None
        #: Copy-on-write forks performed (shared tail page written).
        self.cow_copies = 0
        #: Running max of allocated blocks (raw high-water mark).
        self.peak_used_blocks = self.allocator.num_used
        #: Running max of *required* blocks: allocated minus blocks the
        #: prefix cache could evict on demand.  This is the real pool
        #: pressure — cache-only blocks are reclaimable VRAM, not load.
        self.peak_required_blocks = self.allocator.num_used

    # -- capacity queries -------------------------------------------------------

    @property
    def num_free_blocks(self) -> int:
        return self.allocator.num_free

    @property
    def num_reclaimable_blocks(self) -> int:
        """Cached blocks no live sequence references (evictable on demand)."""
        if self.prefix_cache is None:
            return 0
        return self.prefix_cache.evictable_count()

    @property
    def num_available_blocks(self) -> int:
        return self.num_free_blocks + self.num_reclaimable_blocks

    @property
    def num_usable_blocks(self) -> int:
        """Pool capacity a single sequence could ever reach (total minus
        the permanently pinned padding page)."""
        return self.num_blocks - 1

    def blocks_for_tokens(self, num_tokens: int) -> int:
        return -(-num_tokens // self.page_size)

    def blocks_needed(self, seq_id: int, num_tokens: int) -> int:
        """Blocks a ``num_tokens`` append must allocate — page growth plus
        one copy-on-write fork when the partial tail page is shared."""
        seq = self._seqs[seq_id]
        need = self.blocks_for_tokens(seq.length + num_tokens) - len(seq.blocks)
        if (
            num_tokens > 0
            and seq.blocks
            and seq.length % self.page_size != 0
            and self.allocator.refcount(seq.blocks[-1]) > 1
        ):
            need += 1
        return need

    def can_append(self, seq_id: int, num_tokens: int) -> bool:
        return self.blocks_needed(seq_id, num_tokens) <= self.num_available_blocks

    def can_admit(self, num_tokens: int) -> bool:
        return self.blocks_for_tokens(num_tokens) <= self.num_available_blocks

    def can_admit_with_prefix(self, num_tokens: int,
                              matched_blocks: Sequence[int],
                              matched_tokens: int) -> bool:
        """Admission check for a sequence about to attach cached prefix
        blocks: only the *uncached* remainder needs fresh allocation (plus
        one copy-on-write fork when the match ends mid-page — the first
        append writes into that shared tail), and the matched blocks stop
        being reclaimable the moment they are attached, so they are
        excluded from the available count."""
        need = self.blocks_for_tokens(num_tokens) - len(matched_blocks)
        if (matched_blocks and matched_tokens % self.page_size != 0
                and num_tokens > matched_tokens):
            need += 1
        avail = self.num_free_blocks
        if self.prefix_cache is not None:
            avail += self.prefix_cache.evictable_count(exclude=matched_blocks)
        return need <= avail

    def _reserve(self, need: int) -> None:
        """Make ``need`` blocks allocatable, reclaiming cached blocks
        LRU-first when the free list alone cannot cover it."""
        short = need - self.num_free_blocks
        if short > 0:
            freed = (
                self.prefix_cache.reclaim(short)
                if self.prefix_cache is not None else 0
            )
            if freed < short:
                raise OutOfBlocks(
                    f"need {need} blocks, {self.num_free_blocks} free after "
                    f"reclaiming {freed} cached"
                )

    def _note_usage(self) -> None:
        used = self.allocator.num_used
        self.peak_used_blocks = max(self.peak_used_blocks, used)
        required = used - self.num_reclaimable_blocks
        self.peak_required_blocks = max(self.peak_required_blocks, required)

    # -- sequence lifecycle -----------------------------------------------------

    def add_sequence(self, seq_id: int) -> None:
        if seq_id in self._seqs:
            raise CacheError(f"sequence {seq_id} already tracked")
        self._seqs[seq_id] = _Sequence(seq_id)

    def has_sequence(self, seq_id: int) -> bool:
        return seq_id in self._seqs

    def attach_shared(self, seq_id: int, blocks: Sequence[int],
                      num_tokens: int) -> None:
        """Give a fresh sequence shared ownership of cached prefix blocks.

        The blocks hold ``num_tokens`` of already-computed KV (full pages,
        except possibly a partially-used last page); the sequence takes
        one reference on each and its first append into the partial page —
        if any — goes through copy-on-write.
        """
        seq = self._seqs[seq_id]
        if seq.blocks or seq.length:
            raise CacheError(
                f"attach_shared on non-empty sequence {seq_id}"
            )
        if num_tokens < 0 or self.blocks_for_tokens(num_tokens) != len(blocks):
            raise CacheError(
                f"attach_shared: {num_tokens} tokens do not fit "
                f"{len(blocks)} blocks of {self.page_size}"
            )
        for block in blocks:
            self.allocator.share(block)
        seq.blocks = list(blocks)
        seq.length = num_tokens
        self._note_usage()

    def append(self, seq_id: int, num_tokens: int = 1) -> int:
        """Grow ``seq_id`` by ``num_tokens``; returns blocks allocated
        (including a copy-on-write fork of a shared tail page, if any).

        All-or-nothing: raises :class:`OutOfBlocks` without side effects
        when the pool (free plus reclaimable) cannot cover the growth.
        """
        need = self.blocks_needed(seq_id, num_tokens)
        if need > self.num_available_blocks:
            raise OutOfBlocks(
                f"sequence {seq_id} needs {need} blocks, "
                f"{self.num_available_blocks} available"
            )
        self._reserve(need)
        seq = self._seqs[seq_id]
        if (
            num_tokens > 0
            and seq.blocks
            and seq.length % self.page_size != 0
            and self.allocator.refcount(seq.blocks[-1]) > 1
        ):
            # Copy-on-write: the partial tail page is shared, and this
            # append writes into it.  Trade our reference for a private
            # copy (the engine copies the page payload device-side).
            seq.blocks[-1] = self.allocator.fork_for_write(seq.blocks[-1])
            self.cow_copies += 1
        grow = self.blocks_for_tokens(seq.length + num_tokens) - len(seq.blocks)
        for _ in range(grow):
            seq.blocks.append(self.allocator.allocate())
        seq.length += num_tokens
        self._note_usage()
        return need

    def rollback(self, seq_id: int, num_tokens: int) -> int:
        """Pop ``num_tokens`` off the tail of ``seq_id``; returns blocks
        whose reference this sequence dropped.

        This is the speculative-decode rejection path: draft tokens the
        target model refused were appended optimistically and their KV
        must come back out *exactly*.  Tail blocks left without any of
        this sequence's tokens lose one reference each, in reverse block
        order — the mirror image of how :meth:`append` allocated them —
        so the allocator's LIFO free list ends up as if the rejected
        tokens were never appended (block-id reuse determinism).  A
        partially vacated tail page stays owned: its earlier slots still
        hold accepted tokens.

        Blocks this sequence shares with the prefix cache or a forked
        sibling survive a dropped reference; only the last owner's drop
        returns a page to the pool, matching :meth:`release_sequence`.
        """
        if num_tokens < 0:
            raise CacheError(f"rollback of {num_tokens} tokens")
        seq = self._seqs[seq_id]
        if num_tokens > seq.length:
            raise CacheError(
                f"rollback of {num_tokens} tokens exceeds sequence "
                f"{seq_id} length {seq.length}"
            )
        new_length = seq.length - num_tokens
        keep = self.blocks_for_tokens(new_length)
        released = 0
        for pos in reversed(range(keep, len(seq.blocks))):
            self.allocator.free(seq.blocks[pos])
            released += 1
        del seq.blocks[keep:]
        seq.length = new_length
        return released

    def release_sequence(self, seq_id: int) -> ReleaseInfo:
        """Release one sequence's ownership of all its blocks.

        This single code path serves both lifecycle exits — *preemption*
        (scheduler evicts a victim; the returned
        :attr:`~ReleaseInfo.private_tokens` drives swap costing, because
        only KV whose last copy was here leaves the device; tokens in
        still-shared blocks remain resident in the pool or prefix cache)
        and *completion* (a finished request; the release info is
        ignored).  Mechanically they are identical: drop one reference
        per block, returning fully-released blocks to the free list in
        reverse order so a LIFO re-allocation of the same count yields
        the same ids (determinism).  Either way the sequence stops being
        tracked; resuming a preempted one goes through
        :meth:`add_sequence` (+ :meth:`attach_shared`/:meth:`append`).
        """
        if seq_id not in self._seqs:
            raise CacheError(f"unknown sequence {seq_id}")
        seq = self._seqs.pop(seq_id)
        freed = private = shared = 0
        for pos in reversed(range(len(seq.blocks))):
            start = pos * self.page_size
            tokens = max(0, min(seq.length, start + self.page_size) - start)
            if self.allocator.free(seq.blocks[pos]) == 0:
                freed += 1
                private += tokens
            else:
                shared += tokens
        return ReleaseInfo(freed, private, shared)

    # -- batch views ------------------------------------------------------------

    def length(self, seq_id: int) -> int:
        return self._seqs[seq_id].length

    def blocks(self, seq_id: int) -> List[int]:
        return list(self._seqs[seq_id].blocks)

    def block_table(self, seq_ids: Sequence[int],
                    width: Optional[int] = None) -> np.ndarray:
        """Padded ``(b, w)`` int64 block table for one batch."""
        tables = [self._seqs[s].blocks for s in seq_ids]
        w = width if width is not None else max(
            (len(t) for t in tables), default=1
        )
        w = max(w, 1)
        out = np.full((len(tables), w), self.padding_block, dtype=np.int64)
        for i, t in enumerate(tables):
            if len(t) > w:
                raise CacheError(
                    f"sequence {seq_ids[i]} has {len(t)} blocks > width {w}"
                )
            out[i, : len(t)] = t
        return out

    def lengths(self, seq_ids: Sequence[int]) -> np.ndarray:
        return np.asarray([self._seqs[s].length for s in seq_ids],
                          dtype=np.int64)

    # -- accounting -------------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of pool blocks currently allocated (incl. padding)."""
        return self.allocator.num_used / self.allocator.num_blocks

    def required_utilization(self) -> float:
        """Utilization excluding reclaimable (cache-only) blocks."""
        used = self.allocator.num_used - self.num_reclaimable_blocks
        return used / self.allocator.num_blocks

    def fragmentation(self) -> float:
        """Internal fragmentation: fraction of *allocated* token slots
        (padding page excluded) not holding a token.  Shared blocks make
        this approximate (several sequences count the same slots), so the
        value is clamped at zero."""
        used = self.allocator.num_used - 1  # minus padding block
        if used <= 0:
            return 0.0
        slots = used * self.page_size
        tokens = sum(s.length for s in self._seqs.values())
        return max(0.0, 1.0 - tokens / slots)

    def refcount_audit(self) -> Dict[str, object]:
        """Structured snapshot of the allocator's exact-accounting state.

        The engine attaches this to every :class:`ServeReport` at
        teardown (after :meth:`check_no_leaks`), and folds it into the
        run *summary* only when telemetry is enabled — the summary's
        byte format with telemetry off is pinned by baseline hashes.
        """
        cached = (
            self.prefix_cache.cached_blocks()
            if self.prefix_cache is not None else []
        )
        expected = 1 + len(cached)  # padding page + cache-held blocks
        alloc = self.allocator
        return {
            "num_blocks": alloc.num_blocks,
            "used_blocks": alloc.num_used,
            "free_blocks": alloc.num_free,
            "total_refs": alloc.total_refs,
            "tracked_sequences": len(self._seqs),
            "cached_blocks": len(cached),
            "expected_used_blocks": expected,
            "leaked_blocks": alloc.num_used - expected,
            "allocated_total": alloc.allocated_total,
            "freed_total": alloc.freed_total,
            "ref_drops_total": alloc.ref_drops_total,
            "shares_total": alloc.shares_total,
            "cow_copies": self.cow_copies,
            "peak_used_blocks": self.peak_used_blocks,
            "peak_required_blocks": self.peak_required_blocks,
        }

    def check_no_leaks(self) -> None:
        """After all sequences finish, only the padding block plus blocks
        held by the prefix cache — each with *exactly one* reference —
        may remain (exact refcount accounting)."""
        if self._seqs:
            raise CacheError(
                f"sequences still tracked: {sorted(self._seqs)}"
            )
        cached: List[int] = (
            self.prefix_cache.cached_blocks()
            if self.prefix_cache is not None else []
        )
        if self.padding_block in cached:
            raise CacheError("padding block leaked into the prefix cache")
        if len(set(cached)) != len(cached):
            raise CacheError("prefix cache holds duplicate block references")
        for block in cached:
            refs = self.allocator.refcount(block)
            if refs != 1:
                raise CacheError(
                    f"cached block {block} has {refs} refs after drain"
                )
        if self.allocator.refcount(self.padding_block) != 1:
            raise CacheError(
                f"padding block has "
                f"{self.allocator.refcount(self.padding_block)} refs"
            )
        expected = 1 + len(cached)
        self.allocator.check_no_leaks(expected_used=expected,
                                      expected_refs=expected)
