"""Iteration-level (Orca-style) continuous-batching scheduler.

Each call to :meth:`ContinuousBatchingScheduler.schedule` plans exactly
one engine iteration: every running sequence past its chunked phases runs
one *step* of its stepped phase (an LLM/Whisper decode token, a denoise
iteration), and the leftover token budget (``max_num_batched_tokens``) is
filled with chunks of the *chunked* phases — LLM prefill, Whisper encode
and cross-KV projection — so chunked and stepped work interleave instead
of head-of-line blocking each other (chunked prefill, generalized).

The scheduler is generic over request types: all per-model structure
(which phases exist, their KV demand and budget cost, preemption
eligibility, the completion predicate) comes from the request's
:class:`~repro.serve.program.RequestProgram`.  The scheduler never
branches on ``request.kind``.

When the KV block pool cannot cover the next decode step, the scheduler
preempts the *latest-arrived* running sequence (FCFS priority) and either
swaps its blocks to host memory or discards them for recomputation,
the two recovery policies from the vLLM line of work.  Eviction always
goes through preemption — a sequence scheduled to decode in this
iteration is never the one whose blocks are taken.

With a :class:`~repro.serve.prefix_cache.PrefixCache` attached to the KV
pool, admission first matches the prompt's token ids against cached
prefixes: matched tokens attach as shared blocks and only the *uncached*
remainder charges the chunked-prefill token budget.  Preemption costing
is sharing-aware — swapping a victim moves only the tokens whose last KV
copy lived in its freed blocks (:class:`~repro.serve.kv_cache.ReleaseInfo`);
tokens in still-shared blocks stay resident and re-attach on swap-in.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from .kv_cache import CacheError, PagedKVCache
from .metrics import RequestMetrics
from .program import RequestProgram, program_for, stream_seq_id
from .workload import Request


class Phase(enum.Enum):
    """Coarse lifecycle state; fine-grained progress lives in the
    request's :class:`~repro.serve.program.RequestProgram`.  PREFILL
    means "still has chunked-phase work", DECODE means "in the stepped
    phase"."""

    WAITING = "waiting"
    PREFILL = "prefill"
    DECODE = "decode"
    SWAPPED = "swapped"
    FINISHED = "finished"


@dataclass
class RequestState:
    """Scheduler-side view of one request's progress."""

    request: Request
    metrics: RequestMetrics
    #: Phase-step program (built from ``request.kind`` when omitted).
    program: Optional[RequestProgram] = None
    phase: Phase = Phase.WAITING
    #: Output units produced so far (tokens, denoise iterations).
    generated: int = 0
    #: Tokens swapped to host at preemption time (private blocks only —
    #: the bytes a swap-in must copy back).
    swapped_tokens: int = 0
    #: Tokens left resident in shared blocks at preemption time; swap-in
    #: re-attaches them from the prefix cache (or falls back to
    #: recompute when the cache evicted them in the interim).
    shared_at_preempt: int = 0
    #: Total cached tokens at preemption time (restored sequence length).
    tokens_at_preempt: int = 0

    def __post_init__(self):
        if self.program is None:
            self.program = program_for(self.request)

    @property
    def seq_id(self) -> int:
        return self.request.req_id

    @property
    def done(self) -> bool:
        return self.program.is_complete(self.generated)

    # Chunked-phase progress, exposed under the historical prefill names
    # (for the LLM program these are exactly the old fields; recompute
    # preemption and swap-resume manipulate them through the setters).

    @property
    def prefilled(self) -> int:
        """Chunked-phase units already processed."""
        return sum(ph.done for ph in self.program.chunked)

    @prefilled.setter
    def prefilled(self, value: int) -> None:
        if value == 0:
            for ph in self.program.chunked:
                ph.done = 0
        else:
            self.program.chunked[0].done = value

    @property
    def prefill_target(self) -> int:
        """Total chunked-phase units (prompt tokens for the LLM program;
        on a recompute-resume the prompt plus generated tokens)."""
        return sum(ph.target for ph in self.program.chunked)

    @prefill_target.setter
    def prefill_target(self, value: int) -> None:
        self.program.chunked[0].target = value


@dataclass
class Iteration:
    """One scheduled engine step (already reflected in the KV cache)."""

    #: Sequences decoding one token each in the engine's *batched* LLM
    #: decode call; ``decode_lengths[i]`` is the cached context *before*
    #: this step's append.
    decode: List[RequestState] = field(default_factory=list)
    decode_lengths: List[int] = field(default_factory=list)
    #: ``(state, past_tokens, chunk_len)`` prefill chunks.
    prefill: List[Tuple[RequestState, int, int]] = field(default_factory=list)
    #: ``(state, ctx_len)`` stepped-phase steps of non-batched programs
    #: (Whisper decode tokens, denoise iterations); ``ctx_len`` is the
    #: self-stream context *before* this step's append (0 for programs
    #: that hold no KV).
    steps: List[Tuple[RequestState, int]] = field(default_factory=list)
    #: ``(state, phase_name, past_units, chunk_units)`` chunked-phase
    #: chunks of non-LLM programs (Whisper encode / cross-projection).
    chunks: List[Tuple[RequestState, str, int, int]] = field(default_factory=list)
    #: Sequences restored from host swap this step (tokens copied back).
    swapped_in: List[Tuple[RequestState, int]] = field(default_factory=list)
    #: ``(state, swapped_tokens, mode)`` preemptions performed while
    #: planning; ``swapped_tokens`` counts only private tokens (shared
    #: blocks stay resident and cost no host-link traffic).
    preempted: List[Tuple[RequestState, int, str]] = field(default_factory=list)
    #: ``(state, cached_tokens)`` admissions served from the prefix cache.
    cache_hits: List[Tuple[RequestState, int]] = field(default_factory=list)
    #: Sequences admitted from the waiting queue this step (includes
    #: recompute-preempted sequences re-entering the running set).
    admitted: List[RequestState] = field(default_factory=list)
    #: ``(state, ctx_len, k)`` speculative decode entries: the sequence
    #: runs one draft/verify step proposing ``k`` draft tokens on top of
    #: the mandatory bonus token; ``ctx_len`` is the cached context
    #: *before* this step's optimistic ``k + 1``-token append.  Empty
    #: unless the program's stepped phase enables speculation.
    spec_decode: List[Tuple[RequestState, int, int]] = field(default_factory=list)
    #: Filled by the engine after verification: ``seq_id -> accepted``
    #: draft count for this iteration's speculative entries.
    spec_accepted: Dict[int, int] = field(default_factory=dict)

    @property
    def num_batched_tokens(self) -> int:
        return (
            len(self.decode)
            + sum(n for _, _, n in self.prefill)
            + sum(s.program.stepped.budget_per_step for s, _ in self.steps)
            + sum(n for _, _, _, n in self.chunks)
            + sum(k + 1 for _, _, k in self.spec_decode)
        )

    @property
    def empty(self) -> bool:
        return not (self.decode or self.prefill or self.steps or self.chunks
                    or self.spec_decode or self.swapped_in or self.preempted)


@dataclass(frozen=True)
class SchedulerConfig:
    max_num_seqs: int = 16
    max_num_batched_tokens: int = 256
    #: Cap on prefill tokens per sequence per iteration (chunked prefill);
    #: ``None`` disables chunking — whole prompts must fit the budget.
    prefill_chunk: Optional[int] = 64
    #: Preemption recovery: "swap" (blocks copied to host and back) or
    #: "recompute" (blocks dropped, prompt + generated tokens re-prefilled).
    eviction: str = "swap"

    def __post_init__(self):
        if self.eviction not in ("swap", "recompute"):
            raise ValueError(f"unknown eviction policy {self.eviction!r}")


class ContinuousBatchingScheduler:
    def __init__(self, config: SchedulerConfig, kv: PagedKVCache):
        self.config = config
        self.kv = kv
        self.waiting: Deque[RequestState] = deque()
        self.running: List[RequestState] = []   # PREFILL or DECODE
        self.swapped: Deque[RequestState] = deque()
        self.num_preemptions = 0
        #: Pool blocks promised to admitted *unevictable* requests
        #: (worst-case lifetime demand).  Their KV cannot be preempted
        #: away once written, so admission must guarantee they all fit
        #: the pool together; evictable requests make room on demand.
        self.unevictable_blocks = 0
        #: Acceptance-aware cap on the speculative width, written by the
        #: engine's adaptive controller (``None`` = no cap).  Planning
        #: uses ``min(program k, cap)``; vanilla programs ignore it.
        self.spec_k_cap: Optional[int] = None

    # -- intake -----------------------------------------------------------------

    def add_request(self, state: RequestState) -> None:
        state.phase = Phase.WAITING
        self.waiting.append(state)

    def has_unfinished(self) -> bool:
        return bool(self.waiting or self.running or self.swapped)

    @property
    def queue_depth(self) -> int:
        return len(self.waiting) + len(self.swapped)

    @property
    def num_running(self) -> int:
        return len(self.running)

    # -- completion -------------------------------------------------------------

    def finish(self, state: RequestState) -> None:
        """Called by the engine once a request emitted all its output.

        Releases every KV stream the program owns — for Whisper both the
        self stream and the write-once cross stream."""
        state.phase = Phase.FINISHED
        self.running.remove(state)
        if not state.program.evictable:
            self.unevictable_blocks -= state.program.lifetime_kv_blocks(
                self.kv.page_size)
        for stream in state.program.streams():
            sid = stream_seq_id(state.seq_id, stream)
            if self.kv.has_sequence(sid):
                self.kv.release_sequence(sid)

    # -- preemption -------------------------------------------------------------

    def _preempt_one(self, it: Iteration,
                     protect: List[RequestState]) -> bool:
        """Evict the latest-arrived running sequence not in ``protect``.

        Returns False when no victim exists (callers then shrink their
        demand instead).  The victim's blocks are freed *after* it leaves
        the running list, so eviction can never touch a sequence that is
        part of the batch being planned.
        """
        for victim in reversed(self.running):
            if victim in protect:
                continue
            if not victim.program.evictable:
                # Write-once KV (e.g. Whisper's cross stream) cannot be
                # regrown by replaying a prefix: such programs are never
                # preemption victims.
                continue
            self.running.remove(victim)
            tokens = self.kv.length(victim.seq_id)
            rel = self.kv.release_sequence(victim.seq_id)
            victim.metrics.preemptions += 1
            self.num_preemptions += 1
            mode = self.config.eviction
            if mode == "swap":
                victim.phase = Phase.SWAPPED
                # Only private tokens leave the device; tokens in shared
                # blocks stay resident (the prefix cache keeps a ref) and
                # re-attach for free on swap-in.
                victim.swapped_tokens = rel.private_tokens
                victim.shared_at_preempt = rel.shared_tokens
                victim.tokens_at_preempt = tokens
                self.swapped.append(victim)
            else:  # recompute: all cached KV must be rebuilt from tokens
                victim.phase = Phase.WAITING
                if victim.prefilled == victim.prefill_target:
                    # Was decoding: the rebuilt prefix covers the prompt
                    # plus every generated token whose KV was cached.
                    victim.prefill_target = tokens
                # else: mid-prefill — keep the original target, restart it.
                victim.prefilled = 0
                self.waiting.appendleft(victim)
            it.preempted.append((victim, rel.private_tokens, mode))
            return True
        return False

    # -- planning ---------------------------------------------------------------

    def schedule(self) -> Iteration:
        it = Iteration()
        cfg = self.config

        # 1. One stepped-phase step for every running sequence past its
        #    chunked phases.  A step needing KV must have room to append;
        #    evict (other) sequences until it fits, else preempt the
        #    stepper itself.  Steps of KV-free programs (denoise) always
        #    place.
        for state in list(self.running):
            if state.phase is not Phase.DECODE:
                continue
            if state not in self.running:
                continue  # evicted as a victim earlier in this loop
            sp = state.program.stepped
            need = sp.kv_per_step
            if need == 0:
                it.steps.append((state, 0))
                continue
            # Speculative width for this step: the program's k, capped by
            # the adaptive controller and by the request's remaining
            # output (the step always emits at least the bonus token, so
            # proposing more than remaining - 1 drafts is pure waste).
            # k = 0 degenerates to the vanilla one-token step arithmetic.
            spec_k = 0
            if sp.max_spec_tokens > 0 and state.program.batched_decode:
                spec_k = min(sp.max_spec_tokens,
                             sp.target - state.generated - 1)
                if self.spec_k_cap is not None:
                    spec_k = min(spec_k, self.spec_k_cap)
                spec_k = max(spec_k, 0)
                # Never let the optimistic append push the sequence past
                # what an otherwise-empty pool could hold — the fail-fast
                # check below must fire only when the *vanilla* step
                # cannot fit, not because of shrinkable draft width.
                while spec_k > 0 and (
                    self.kv.blocks_for_tokens(
                        self.kv.length(state.seq_id)
                        + sp.kv_per_step * (1 + spec_k))
                    > self.kv.num_usable_blocks
                ):
                    spec_k -= 1
                need = sp.kv_per_step * (1 + spec_k)
            stepping = [s for s, _ in it.steps]
            speccing = [s for s, _, _ in it.spec_decode]
            placed = False
            while True:
                if self.kv.can_append(state.seq_id, need):
                    ctx = self.kv.length(state.seq_id)
                    self.kv.append(state.seq_id, need)
                    if sp.max_spec_tokens > 0 and state.program.batched_decode:
                        # Optimistic append: the engine verifies the k
                        # drafts and rolls back whatever the target
                        # rejects, so pool pressure here is the honest
                        # worst case for this step.
                        it.spec_decode.append((state, ctx, spec_k))
                    elif state.program.batched_decode:
                        it.decode_lengths.append(ctx)
                        it.decode.append(state)
                    else:
                        it.steps.append((state, ctx))
                    placed = True
                    break
                if not self._preempt_one(
                    it, protect=it.decode + stepping + speccing + [state]
                ):
                    break
            if not placed:
                # Could not make room even after evicting everyone else.
                # If the grown sequence exceeds what an otherwise-empty
                # pool could ever hold, no preemption will help: fail
                # fast instead of cycling through self-preempt/swap-in
                # forever (the recompute policy already fails fast — the
                # victim is never re-admitted and the run stalls out).
                grown = self.kv.length(state.seq_id) + need
                if (self.kv.blocks_for_tokens(grown)
                        > self.kv.num_usable_blocks):
                    raise CacheError(
                        f"request {state.seq_id} needs "
                        f"{self.kv.blocks_for_tokens(grown)} KV blocks to "
                        f"keep decoding but the pool only has "
                        f"{self.kv.num_usable_blocks} usable"
                    )
                # Otherwise preempt this sequence too rather than stall
                # with a half-planned step.
                self._preempt_one(it, protect=it.decode + stepping + speccing)

        budget = (
            cfg.max_num_batched_tokens
            - len(it.decode)
            - sum(s.program.stepped.budget_per_step for s, _ in it.steps)
            - sum(k + 1 for _, _, k in it.spec_decode)
        )

        # 2. Resume swapped sequences (oldest first) while seats, blocks
        #    and token budget allow.  A resumed sequence decodes starting
        #    next iteration; the swap-in itself costs host-link time which
        #    the engine charges off the Iteration record.
        while self.swapped and budget > 0:
            state = self.swapped[0]
            if len(self.running) + 1 > cfg.max_num_seqs:
                break
            cache = self.kv.prefix_cache
            prompt = state.request.prompt_tokens
            matched_blocks: List[int] = []
            matched = 0
            if cache is not None and prompt and state.shared_at_preempt:
                matched_blocks, matched = cache.match(
                    prompt, max_tokens=state.shared_at_preempt
                )
            total = max(state.prefill_target, state.tokens_at_preempt)
            if not self.kv.can_admit_with_prefix(total, matched_blocks,
                                                 matched):
                break
            self.swapped.popleft()
            self.kv.add_sequence(state.seq_id)
            if matched:
                cache.attach(state.seq_id, prompt,
                             max_tokens=state.shared_at_preempt,
                             record=False)
            if matched == state.shared_at_preempt:
                # Every shared token is still cached: re-attach them and
                # copy back only the private (swapped) tokens.
                if state.swapped_tokens:
                    self.kv.append(state.seq_id, state.swapped_tokens)
                copied = state.swapped_tokens
                # A victim caught mid-prefill resumes prefilling; one
                # caught decoding resumes decode.
                state.phase = (
                    Phase.PREFILL
                    if state.prefilled < state.prefill_target
                    else Phase.DECODE
                )
            else:
                # The cache evicted part of the shared prefix while this
                # sequence was swapped out — the host copy alone cannot
                # rebuild it.  Fall back to recompute from whatever prefix
                # still matched; the stale host copy is discarded (no
                # swap-in traffic).
                state.prefill_target = max(state.prefill_target,
                                           state.tokens_at_preempt)
                state.prefilled = matched
                state.phase = Phase.PREFILL
                copied = 0
            self.running.append(state)
            it.swapped_in.append((state, copied))
            state.swapped_tokens = 0
            state.shared_at_preempt = 0
            state.tokens_at_preempt = 0

        # 3. Admission control: bring in waiting sequences FCFS when the
        #    whole remaining prefill fits the free pool *now* (no partial
        #    admissions that could deadlock the pool).  Prompts with token
        #    ids first probe the prefix cache: matched tokens attach as
        #    shared blocks and are never prefilled (or charged to the
        #    budget) — only the uncached remainder needs fresh blocks.
        while (
            self.waiting
            and budget > 0
            and len(self.running) < cfg.max_num_seqs
        ):
            state = self.waiting[0]
            cache = self.kv.prefix_cache
            prompt = state.request.prompt_tokens
            probe = (cache is not None and prompt is not None
                     and state.program.prefix_cacheable
                     and state.prefilled == 0)
            matched_blocks: List[int] = []
            matched = 0
            if probe:
                # Cap at target - 1: even a fully-cached prompt must
                # prefill one token (the first logits come from somewhere).
                matched_blocks, matched = cache.match(
                    prompt, max_tokens=state.prefill_target - 1
                )
            if matched:
                fits = self.kv.can_admit_with_prefix(
                    state.prefill_target, matched_blocks, matched
                )
            else:
                # Admit only when the program's declared phase KV demand
                # (remaining prefill tokens; Whisper's cross KV; nothing
                # for denoise) fits the free pool now.
                fits = self.kv.can_admit(state.program.pending_kv_tokens())
            lifetime = 0
            if fits and not state.program.evictable:
                # Unevictable KV is a hard reservation for the request's
                # whole lifetime: over-admitting could wedge the pool
                # with blocks nobody may preempt (FCFS: later requests
                # wait behind this one rather than jump the queue).
                lifetime = state.program.lifetime_kv_blocks(
                    self.kv.page_size)
                fits = (self.unevictable_blocks + lifetime
                        <= self.kv.num_usable_blocks)
            if not fits:
                break
            self.unevictable_blocks += lifetime
            self.waiting.popleft()
            state.phase = (
                Phase.PREFILL if state.program.has_chunked_work()
                else Phase.DECODE
            )
            if state.program.uses_kv() and not self.kv.has_sequence(state.seq_id):
                self.kv.add_sequence(state.seq_id)
            if probe:
                got = cache.attach(state.seq_id, prompt,
                                   max_tokens=state.prefill_target - 1)
                state.prefilled = got
                if state.metrics.cached_prompt_tokens is None:
                    state.metrics.cached_prompt_tokens = got
                if got:
                    it.cache_hits.append((state, got))
            self.running.append(state)
            it.admitted.append(state)
            # A program with no chunked work (denoise) would otherwise
            # contribute nothing to its admission iteration — which the
            # engine reads as a stall.  Take its first KV-free step now,
            # mirroring how an LLM admission prefills its first chunk in
            # the same iteration.
            if (not state.program.has_chunked_work()
                    and state.program.stepped.kv_per_step == 0):
                it.steps.append((state, 0))
                budget -= state.program.stepped.budget_per_step

        # 4. Chunked-phase work over every PREFILL sequence, budget
        #    permitting: LLM prefill chunks, Whisper encode chunks and its
        #    atomic cross-KV projection.
        for state in self.running:
            if state.phase is not Phase.PREFILL or budget <= 0:
                continue
            prog = state.program
            ph = prog.current_chunked()
            if ph is None:
                continue
            remaining = ph.remaining
            chunk = min(remaining, budget)
            if ph.atomic:
                if chunk < remaining:
                    continue  # all-or-nothing, regardless of chunking
            elif cfg.prefill_chunk is not None:
                chunk = min(chunk, cfg.prefill_chunk)
            elif chunk < remaining:
                continue  # unchunked: all-or-nothing per iteration
            if ph.chunk_multiple > 1 and chunk < remaining:
                chunk -= chunk % ph.chunk_multiple
            if chunk <= 0:
                continue
            if ph.kv_per_unit > 0:
                # The phase appends KV to its declared stream (Whisper's
                # cross projection writes to the cross stream, created
                # here on first touch).
                sid = stream_seq_id(state.seq_id, ph.stream)
                if not self.kv.has_sequence(sid):
                    self.kv.add_sequence(sid)
                if not self.kv.can_append(sid, chunk * ph.kv_per_unit):
                    continue
                self.kv.append(sid, chunk * ph.kv_per_unit)
            past = ph.done
            ph.done += chunk
            budget -= chunk
            if prog.batched_decode:
                it.prefill.append((state, past, chunk))
            else:
                it.chunks.append((state, ph.name, past, chunk))
            if not prog.has_chunked_work():
                state.phase = Phase.DECODE
                # Prompt KV is fully cached now: publish its full pages
                # so later prompts sharing the prefix can reuse them.
                cache = self.kv.prefix_cache
                prompt = state.request.prompt_tokens
                if (cache is not None and prompt is not None
                        and prog.prefix_cacheable):
                    cache.insert(prompt, self.kv.blocks(state.seq_id))

        return it
