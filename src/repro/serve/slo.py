"""SLO monitoring over the serving engine's analytical clock.

Production engines track *attainment* — the fraction of recent requests
meeting their latency objectives — and alarm on pathologies the summary
statistics average away: stalls (iterations that commit nothing while
work is pending), preemption storms (the pool thrashing sequences in
and out without forward progress), and per-request SLO violations.

Everything here is deterministic: the monitor consumes only engine
quantities (the discrete-event clock, iteration commit counts, request
metrics), so two same-seed runs produce byte-identical anomaly records
and attainment curves.  Sliding windows are *exact* — bounded deques
over the most recent N finished requests, percentiles via the shared
nearest-rank implementation (:mod:`repro.obs.stats`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..obs.stats import dist
from .metrics import RequestMetrics


@dataclass(frozen=True)
class SLOConfig:
    """Knobs for the :class:`SLOMonitor` (TTFT/TPOT objectives come from
    the engine config; these shape the detection windows)."""

    #: Finished requests per sliding attainment window.
    window_requests: int = 32
    #: Consecutive scheduled iterations committing zero output units
    #: before a ``stall`` anomaly is recorded (livelock detector: the
    #: engine can spin planning/preempting without ever emitting).
    stall_iterations: int = 20
    #: Preemptions within one attainment window that trigger a
    #: ``preemption_storm`` anomaly when commits stay below preemptions
    #: (thrash: the pool churns sequences faster than they progress).
    storm_preemptions: int = 8
    #: Record a ``slo_violation`` anomaly per offending request.
    record_violations: bool = True

    def __post_init__(self):
        if self.window_requests < 1:
            raise ValueError("window_requests must be >= 1")
        if self.stall_iterations < 1:
            raise ValueError("stall_iterations must be >= 1")


class SLOMonitor:
    """Sliding-window TTFT/TPOT attainment + anomaly detection.

    Drive with :meth:`on_iteration` once per scheduled engine iteration
    and :meth:`on_finish` once per completed request; read
    :attr:`anomalies` (structured records, engine-clock-stamped) and
    :meth:`snapshot` (JSON-ready state) at any point.
    """

    def __init__(self, config: SLOConfig, *, slo_ttft_s: float,
                 slo_tpot_s: float):
        self.config = config
        self.slo_ttft_s = slo_ttft_s
        self.slo_tpot_s = slo_tpot_s
        w = config.window_requests
        #: (req_id, ttft, ttft_ok) for the last ``w`` finished requests.
        self._ttft: Deque[Tuple[int, float, bool]] = deque(maxlen=w)
        self._tpot: Deque[Tuple[int, float, bool]] = deque(maxlen=w)
        #: (iteration index, preemptions) within the recent window.
        self._preempts: Deque[Tuple[int, int]] = deque(maxlen=w)
        self._commits: Deque[int] = deque(maxlen=w)
        self._zero_commit_streak = 0
        self._storm_open = False
        self.finished = 0
        self.violations = 0
        #: Structured anomaly records: ``{"kind", "t_s", "iteration",
        #: ...detail fields}``, in detection order.
        self.anomalies: List[Dict[str, Any]] = []

    # -- feed --------------------------------------------------------------------

    def on_iteration(self, index: int, t_s: float, *, committed: int,
                     preemptions: int, queue_depth: int) -> None:
        """One scheduled (non-empty) engine iteration."""
        self._commits.append(committed)
        if preemptions:
            self._preempts.append((index, preemptions))
        if committed == 0:
            self._zero_commit_streak += 1
            if self._zero_commit_streak == self.config.stall_iterations:
                self.anomalies.append({
                    "kind": "stall",
                    "t_s": t_s,
                    "iteration": index,
                    "zero_commit_iterations": self._zero_commit_streak,
                    "queue_depth": queue_depth,
                })
        else:
            self._zero_commit_streak = 0
        window_preempts = sum(n for _, n in self._preempts)
        window_commits = sum(self._commits)
        storming = (window_preempts >= self.config.storm_preemptions
                    and window_preempts > window_commits)
        if storming and not self._storm_open:
            self._storm_open = True
            self.anomalies.append({
                "kind": "preemption_storm",
                "t_s": t_s,
                "iteration": index,
                "window_preemptions": window_preempts,
                "window_commits": window_commits,
            })
        elif not storming:
            self._storm_open = False

    def on_finish(self, metrics: RequestMetrics, t_s: float,
                  iteration: int) -> None:
        """One request completed at ``t_s``."""
        self.finished += 1
        ttft = metrics.ttft
        tpot = metrics.tpot
        ttft_ok = ttft is not None and ttft <= self.slo_ttft_s
        # A one-token request has no decode phase; it vacuously meets TPOT.
        tpot_ok = tpot is None or tpot <= self.slo_tpot_s
        if ttft is not None:
            self._ttft.append((metrics.req_id, ttft, ttft_ok))
        if tpot is not None:
            self._tpot.append((metrics.req_id, tpot, tpot_ok))
        if not (ttft_ok and tpot_ok):
            self.violations += 1
            if self.config.record_violations:
                self.anomalies.append({
                    "kind": "slo_violation",
                    "t_s": t_s,
                    "iteration": iteration,
                    "req_id": metrics.req_id,
                    "ttft_s": ttft,
                    "tpot_s": tpot,
                    "ttft_ok": ttft_ok,
                    "tpot_ok": tpot_ok,
                })

    # -- read --------------------------------------------------------------------

    @property
    def window_ttft_attainment(self) -> Optional[float]:
        if not self._ttft:
            return None
        return sum(1 for _, _, ok in self._ttft if ok) / len(self._ttft)

    @property
    def window_tpot_attainment(self) -> Optional[float]:
        if not self._tpot:
            return None
        return sum(1 for _, _, ok in self._tpot if ok) / len(self._tpot)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready monitor state (exact window contents summarised
        through the shared nearest-rank distribution helper)."""
        counts: Dict[str, int] = {}
        for record in self.anomalies:
            counts[record["kind"]] = counts.get(record["kind"], 0) + 1
        return {
            "slo": {"ttft_s": self.slo_ttft_s, "tpot_s": self.slo_tpot_s},
            "window_requests": self.config.window_requests,
            "finished": self.finished,
            "violations": self.violations,
            "window_ttft_attainment": self.window_ttft_attainment,
            "window_tpot_attainment": self.window_tpot_attainment,
            "window_ttft_s": dist([v for _, v, _ in self._ttft]),
            "window_tpot_s": dist([v for _, v, _ in self._tpot]),
            "anomaly_counts": counts,
            "anomalies": list(self.anomalies),
        }
