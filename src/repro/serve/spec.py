"""Speculative decoding: draft/target configuration and the token oracle.

The serving engine runs in *abstract* mode — VM calls meter cost on the
analytical device model but produce no logits — so token identity has to
come from somewhere deterministic.  The :class:`TokenOracle` is that
somewhere: a counter-mode splitmix64 hash that maps ``(seed, request,
position)`` to the target model's output token, and a second independent
hash channel that decides whether the draft model's proposal at that
position *agrees* with the target (with probability ``draft_quality``).

This factoring keeps the simulation honest in the way that matters for
scheduling research: speculation may change *when* tokens appear on the
clock, never *which* tokens appear.  A speculative run and a vanilla run
over the same workload and oracle seed emit byte-identical token
streams — the invariant ``tests/serve/test_spec_decode.py`` pins — while
acceptance statistics converge to ``draft_quality`` because each
position's agreement draw is an i.i.d. Bernoulli in hash space.

No ``random.Random`` objects anywhere: state-free hashing means token
identity is a pure function of (seed, request, position), immune to
iteration order, batching, preemption and rollback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..models.llama import LlamaConfig

_MASK64 = (1 << 64) - 1

# Domain-separation constants for the oracle's independent hash channels.
_TARGET_CHANNEL = 0x7441
_DRAFT_CHANNEL = 0xD4AF


def _splitmix64(x: int) -> int:
    """One splitmix64 finalization round (the PRNG's output function)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def _mix(*values: int) -> int:
    """Fold integers into one 64-bit hash (order-sensitive)."""
    h = 0
    for v in values:
        h = _splitmix64(h ^ (v & _MASK64))
    return h


def _unit(h: int) -> float:
    """Map a 64-bit hash to [0, 1) with 53-bit precision."""
    return (h >> 11) / float(1 << 53)


@dataclass(frozen=True)
class SpecConfig:
    """Speculative-decoding knobs for :class:`~repro.serve.EngineConfig`.

    ``None`` (the default on the engine config) means speculation is off
    and the engine byte-identically reproduces its vanilla behaviour.
    """

    #: Draft tokens proposed per speculative step (k).  Each step costs k
    #: draft decodes plus one target verify over k + 1 positions and
    #: emits between 1 and k + 1 tokens.
    num_spec_tokens: int = 4
    #: Per-position probability that the draft's proposal matches the
    #: target's token — the workload's configured draft quality.  The
    #: measured acceptance rate converges to this value.
    draft_quality: float = 0.8
    #: Oracle seed.  A vanilla run with the same seed emits the same
    #: token stream (the engine defaults to seed 0 when speculation is
    #: off, so comparisons pin ``seed=0`` here).
    seed: int = 0
    #: Draft model config; ``None`` derives one from the target via
    #: :func:`repro.models.draft_config`.
    draft: Optional["LlamaConfig"] = None
    #: Acceptance-aware k controller: shrink the speculative width when
    #: the measured acceptance rate over ``adapt_window`` proposals drops
    #: below ``adapt_low`` (drafting is wasted work), grow it back toward
    #: ``num_spec_tokens`` above ``adapt_high``.  Deterministic — driven
    #: only by oracle outcomes — so runs stay seeded-reproducible.
    adaptive: bool = False
    adapt_window: int = 64
    adapt_low: float = 0.5
    adapt_high: float = 0.8

    def __post_init__(self):
        if self.num_spec_tokens < 1:
            raise ValueError("num_spec_tokens must be >= 1")
        if not 0.0 <= self.draft_quality <= 1.0:
            raise ValueError("draft_quality must be in [0, 1]")
        if self.adapt_window < 1:
            raise ValueError("adapt_window must be >= 1")


class TokenOracle:
    """Deterministic token identity for abstract-mode serving.

    ``target_token`` is the token the target model would emit at output
    ``position`` of ``req_id`` — a pure hash, so any execution order
    (vanilla one-per-iteration, speculative bursts, recompute after
    preemption) reconstructs the identical stream.  ``draft_matches``
    draws the independent per-position Bernoulli that decides whether
    the draft proposed exactly that token.
    """

    def __init__(self, seed: int = 0, vocab_size: int = 32000,
                 draft_quality: float = 0.0):
        self.seed = seed
        self.vocab_size = vocab_size
        self.draft_quality = draft_quality

    def target_token(self, req_id: int, position: int) -> int:
        return _mix(self.seed, _TARGET_CHANNEL, req_id, position) % self.vocab_size

    def draft_matches(self, req_id: int, position: int) -> bool:
        """Does the draft's proposal for ``position`` agree with the
        target?  Independent of :meth:`target_token`'s hash channel."""
        h = _mix(self.seed, _DRAFT_CHANNEL, req_id, position)
        return _unit(h) < self.draft_quality

    def draft_token(self, req_id: int, position: int) -> int:
        """The draft's actual proposal: the target token when the
        agreement draw hits, any *other* vocab entry when it misses."""
        t = self.target_token(req_id, position)
        if self.draft_matches(req_id, position):
            return t
        h = _mix(self.seed, _DRAFT_CHANNEL, req_id, position, 1)
        return (t + 1 + h % (self.vocab_size - 1)) % self.vocab_size
