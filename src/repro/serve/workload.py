"""Seeded request-trace generation for the serving engine.

One integer seed reproduces the whole trace: arrival times (Poisson or
gamma renewal process), prompt lengths, and output lengths all come from
a single ``numpy`` Generator, so a workload is fully described by its
:class:`WorkloadConfig` — and round-trips through JSON so benchmark
artifacts can pin the exact trace they measured.

The *shared-prefix* mode (``prefix_families > 0``) additionally
materialises prompt token ids: requests are partitioned into families,
every prompt in a family opens with that family's common ``prefix_len``
tokens (a system prompt / few-shot template stand-in) followed by
per-request suffix tokens.  Token ids are what the engine's prefix cache
keys on, so this mode is how the cache gets exercised.  Prefix draws
happen *after* all legacy draws from the same generator, so legacy
workloads keep their exact per-seed traces.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Request:
    """One client request in the trace (times in seconds)."""

    req_id: int
    arrival_s: float
    prompt_len: int
    output_len: int
    #: Prompt token ids (shared-prefix workloads only; ``None`` for
    #: length-only traces — the engine then skips prefix caching).
    prompt_tokens: Optional[Tuple[int, ...]] = None
    #: Request type: "llm" (default), "whisper" (``prompt_len`` is mel
    #: frames, ``output_len`` is decoded tokens) or "denoise"
    #: (``output_len`` is sampling iterations; no prompt).
    kind: str = "llm"

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        if d["prompt_tokens"] is not None:
            d["prompt_tokens"] = list(d["prompt_tokens"])
        else:
            del d["prompt_tokens"]
        if d["kind"] == "llm":
            del d["kind"]  # legacy traces round-trip unchanged
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Request":
        tokens = d.get("prompt_tokens")
        return cls(
            req_id=int(d["req_id"]),
            arrival_s=float(d["arrival_s"]),
            prompt_len=int(d["prompt_len"]),
            output_len=int(d["output_len"]),
            prompt_tokens=(
                tuple(int(t) for t in tokens) if tokens is not None else None
            ),
            kind=str(d.get("kind", "llm")),
        )


@dataclass(frozen=True)
class WorkloadConfig:
    """Everything needed to regenerate a trace bit-for-bit."""

    num_requests: int = 64
    seed: int = 0
    #: Arrival process: "poisson" (exponential inter-arrivals) or "gamma"
    #: (renewal process with coefficient of variation ``arrival_cv`` —
    #: cv > 1 models bursty traffic, cv < 1 smoother-than-Poisson).
    arrival: str = "poisson"
    arrival_rate: float = 8.0  # requests / second
    arrival_cv: float = 2.0    # gamma only
    #: Prompt lengths: uniform integers in [prompt_min, prompt_max].
    prompt_min: int = 8
    prompt_max: int = 64
    #: Output lengths: uniform integers in [output_min, output_max].
    output_min: int = 4
    output_max: int = 32
    #: Shared-prefix mode: > 0 partitions requests into this many prompt
    #: families, each opening with a common ``prefix_len``-token prefix.
    #: 0 (default) keeps the legacy length-only trace (no token ids).
    prefix_families: int = 0
    #: Common prefix length per family; must be < ``prompt_min`` so every
    #: prompt has at least one private suffix token.
    prefix_len: int = 0
    #: Token-id range for materialised prompts.
    vocab_size: int = 32000
    #: Heterogeneous mix: fraction of requests that are Whisper transcribe
    #: jobs / iterative-denoise jobs (the rest stay LLM).  0.0 keeps the
    #: legacy single-type trace bit-for-bit.
    whisper_fraction: float = 0.0
    denoise_fraction: float = 0.0
    #: Whisper audio lengths in mel frames (rounded down to even — the
    #: frontend stacks frame pairs).
    whisper_frames_min: int = 8
    whisper_frames_max: int = 12
    #: Denoise sampling iterations per request.
    denoise_steps_min: int = 4
    denoise_steps_max: int = 16

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "WorkloadConfig":
        return cls(**d)


def _inter_arrivals(cfg: WorkloadConfig, rng: np.random.Generator) -> np.ndarray:
    if cfg.arrival_rate <= 0:
        return np.zeros(cfg.num_requests)
    if cfg.arrival == "poisson":
        return rng.exponential(1.0 / cfg.arrival_rate, size=cfg.num_requests)
    if cfg.arrival == "gamma":
        # Mean fixed at 1/rate; cv^2 = 1/shape.
        shape = 1.0 / (cfg.arrival_cv ** 2)
        scale = 1.0 / (cfg.arrival_rate * shape)
        return rng.gamma(shape, scale, size=cfg.num_requests)
    raise ValueError(f"unknown arrival process {cfg.arrival!r}")


def generate(cfg: WorkloadConfig) -> List[Request]:
    """The trace for ``cfg`` — deterministic in ``cfg`` alone."""
    if cfg.prompt_min < 1 or cfg.prompt_max < cfg.prompt_min:
        raise ValueError("invalid prompt length range")
    if cfg.output_min < 1 or cfg.output_max < cfg.output_min:
        raise ValueError("invalid output length range")
    if cfg.prefix_families > 0:
        if cfg.prefix_len < 1:
            raise ValueError("prefix_len must be >= 1 in shared-prefix mode")
        if cfg.prefix_len >= cfg.prompt_min:
            raise ValueError(
                "prefix_len must be < prompt_min (every prompt needs at "
                "least one private suffix token)"
            )
        if cfg.vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
    hetero = cfg.whisper_fraction > 0 or cfg.denoise_fraction > 0
    if hetero:
        if cfg.whisper_fraction < 0 or cfg.denoise_fraction < 0:
            raise ValueError("type fractions must be >= 0")
        if cfg.whisper_fraction + cfg.denoise_fraction > 1.0:
            raise ValueError("type fractions must sum to <= 1")
        if cfg.whisper_frames_min < 2 or cfg.whisper_frames_max < cfg.whisper_frames_min:
            raise ValueError("invalid whisper frame range")
        if cfg.denoise_steps_min < 1 or cfg.denoise_steps_max < cfg.denoise_steps_min:
            raise ValueError("invalid denoise step range")
        if cfg.prefix_families > 0:
            raise ValueError(
                "shared-prefix mode is LLM-only; it cannot be combined "
                "with a heterogeneous mix"
            )
    rng = np.random.default_rng(cfg.seed)
    gaps = _inter_arrivals(cfg, rng)
    arrivals = np.cumsum(gaps)
    prompts = rng.integers(cfg.prompt_min, cfg.prompt_max + 1,
                           size=cfg.num_requests)
    outputs = rng.integers(cfg.output_min, cfg.output_max + 1,
                           size=cfg.num_requests)
    # Shared-prefix draws come last so legacy (length-only) traces keep
    # their exact per-seed streams.
    tokens: List[Optional[Tuple[int, ...]]] = [None] * cfg.num_requests
    if cfg.prefix_families > 0:
        prefixes = rng.integers(
            0, cfg.vocab_size, size=(cfg.prefix_families, cfg.prefix_len)
        )
        families = rng.integers(0, cfg.prefix_families, size=cfg.num_requests)
        for i in range(cfg.num_requests):
            suffix = rng.integers(
                0, cfg.vocab_size, size=int(prompts[i]) - cfg.prefix_len
            )
            tokens[i] = tuple(
                int(t) for t in np.concatenate([prefixes[families[i]], suffix])
            )
    # Heterogeneous-mix draws come after *all* single-type draws (same
    # reason as the prefix block above: fractions of 0.0 must reproduce
    # legacy traces exactly).  Per-request type from one uniform draw;
    # whisper requests redraw prompt_len as an (even) mel-frame count,
    # denoise requests redraw output_len as an iteration count.
    kinds = ["llm"] * cfg.num_requests
    if hetero:
        rolls = rng.random(size=cfg.num_requests)
        frames = rng.integers(cfg.whisper_frames_min // 2,
                              cfg.whisper_frames_max // 2 + 1,
                              size=cfg.num_requests) * 2
        steps = rng.integers(cfg.denoise_steps_min, cfg.denoise_steps_max + 1,
                             size=cfg.num_requests)
        for i in range(cfg.num_requests):
            if rolls[i] < cfg.whisper_fraction:
                kinds[i] = "whisper"
                prompts[i] = frames[i]
            elif rolls[i] < cfg.whisper_fraction + cfg.denoise_fraction:
                kinds[i] = "denoise"
                prompts[i] = 0
                outputs[i] = steps[i]
    return [
        Request(
            req_id=i,
            arrival_s=float(arrivals[i]),
            prompt_len=int(prompts[i]),
            output_len=int(outputs[i]),
            prompt_tokens=tokens[i],
            kind=kinds[i],
        )
        for i in range(cfg.num_requests)
    ]


def workload_to_json(cfg: WorkloadConfig, requests: List[Request]) -> str:
    """Serialize config + trace; floats round-trip exactly (repr-based)."""
    return json.dumps(
        {
            "config": cfg.to_dict(),
            "requests": [r.to_dict() for r in requests],
        },
        indent=2,
    )


def workload_from_json(text: str):
    """Inverse of :func:`workload_to_json`."""
    obj = json.loads(text)
    cfg = WorkloadConfig.from_dict(obj["config"])
    requests = [Request.from_dict(d) for d in obj["requests"]]
    return cfg, requests
