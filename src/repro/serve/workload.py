"""Seeded request-trace generation for the serving engine.

One integer seed reproduces the whole trace: arrival times (Poisson or
gamma renewal process), prompt lengths, and output lengths all come from
a single ``numpy`` Generator, so a workload is fully described by its
:class:`WorkloadConfig` — and round-trips through JSON so benchmark
artifacts can pin the exact trace they measured.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List

import numpy as np


@dataclass(frozen=True)
class Request:
    """One client request in the trace (times in seconds)."""

    req_id: int
    arrival_s: float
    prompt_len: int
    output_len: int

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Request":
        return cls(
            req_id=int(d["req_id"]),
            arrival_s=float(d["arrival_s"]),
            prompt_len=int(d["prompt_len"]),
            output_len=int(d["output_len"]),
        )


@dataclass(frozen=True)
class WorkloadConfig:
    """Everything needed to regenerate a trace bit-for-bit."""

    num_requests: int = 64
    seed: int = 0
    #: Arrival process: "poisson" (exponential inter-arrivals) or "gamma"
    #: (renewal process with coefficient of variation ``arrival_cv`` —
    #: cv > 1 models bursty traffic, cv < 1 smoother-than-Poisson).
    arrival: str = "poisson"
    arrival_rate: float = 8.0  # requests / second
    arrival_cv: float = 2.0    # gamma only
    #: Prompt lengths: uniform integers in [prompt_min, prompt_max].
    prompt_min: int = 8
    prompt_max: int = 64
    #: Output lengths: uniform integers in [output_min, output_max].
    output_min: int = 4
    output_max: int = 32

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "WorkloadConfig":
        return cls(**d)


def _inter_arrivals(cfg: WorkloadConfig, rng: np.random.Generator) -> np.ndarray:
    if cfg.arrival_rate <= 0:
        return np.zeros(cfg.num_requests)
    if cfg.arrival == "poisson":
        return rng.exponential(1.0 / cfg.arrival_rate, size=cfg.num_requests)
    if cfg.arrival == "gamma":
        # Mean fixed at 1/rate; cv^2 = 1/shape.
        shape = 1.0 / (cfg.arrival_cv ** 2)
        scale = 1.0 / (cfg.arrival_rate * shape)
        return rng.gamma(shape, scale, size=cfg.num_requests)
    raise ValueError(f"unknown arrival process {cfg.arrival!r}")


def generate(cfg: WorkloadConfig) -> List[Request]:
    """The trace for ``cfg`` — deterministic in ``cfg`` alone."""
    if cfg.prompt_min < 1 or cfg.prompt_max < cfg.prompt_min:
        raise ValueError("invalid prompt length range")
    if cfg.output_min < 1 or cfg.output_max < cfg.output_min:
        raise ValueError("invalid output length range")
    rng = np.random.default_rng(cfg.seed)
    gaps = _inter_arrivals(cfg, rng)
    arrivals = np.cumsum(gaps)
    prompts = rng.integers(cfg.prompt_min, cfg.prompt_max + 1,
                           size=cfg.num_requests)
    outputs = rng.integers(cfg.output_min, cfg.output_max + 1,
                           size=cfg.num_requests)
    return [
        Request(
            req_id=i,
            arrival_s=float(arrivals[i]),
            prompt_len=int(prompts[i]),
            output_len=int(outputs[i]),
        )
        for i in range(cfg.num_requests)
    ]


def workload_to_json(cfg: WorkloadConfig, requests: List[Request]) -> str:
    """Serialize config + trace; floats round-trip exactly (repr-based)."""
    return json.dumps(
        {
            "config": cfg.to_dict(),
            "requests": [r.to_dict() for r in requests],
        },
        indent=2,
    )


def workload_from_json(text: str):
    """Inverse of :func:`workload_to_json`."""
    obj = json.loads(text)
    cfg = WorkloadConfig.from_dict(obj["config"])
    requests = [Request.from_dict(d) for d in obj["requests"]]
    return cfg, requests
